package cjdbc

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func newTestCluster(t *testing.T, n int, cfg VirtualDatabaseConfig) (*Controller, *VirtualDatabase) {
	t.Helper()
	ctrl := NewController("ctrl-test", 1)
	t.Cleanup(ctrl.Close)
	if cfg.Name == "" {
		cfg.Name = "mydb"
	}
	vdb, err := ctrl.CreateVirtualDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := vdb.AddInMemoryBackend(fmt.Sprintf("db%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return ctrl, vdb
}

func TestQuickstartFlow(t *testing.T) {
	_, vdb := newTestCluster(t, 2, VirtualDatabaseConfig{})
	sess, err := vdb.OpenSession("user", "")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	mustE := func(sql string, args ...any) *Rows {
		t.Helper()
		r, err := sess.Exec(sql, args...)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return r
	}
	mustE("CREATE TABLE users (id INTEGER PRIMARY KEY AUTO_INCREMENT, name VARCHAR NOT NULL, joined TIMESTAMP)")
	r := mustE("INSERT INTO users (name, joined) VALUES (?, ?)", "ada", time.Date(2004, 6, 27, 0, 0, 0, 0, time.UTC))
	if r.LastInsertID != 1 || r.RowsAffected != 1 {
		t.Fatalf("insert result: %+v", r)
	}
	mustE("INSERT INTO users (name) VALUES (?)", "grace")

	rows := mustE("SELECT id, name FROM users ORDER BY id")
	if rows.Len() != 2 {
		t.Fatalf("rows = %d", rows.Len())
	}
	var id int64
	var name string
	for rows.Next() {
		if err := rows.Scan(&id, &name); err != nil {
			t.Fatal(err)
		}
	}
	if id != 2 || name != "grace" {
		t.Errorf("last row: %d %q", id, name)
	}

	// Transactions through the interface methods.
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	mustE("UPDATE users SET name = ? WHERE id = ?", "ada lovelace", 1)
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	rows = mustE("SELECT name FROM users WHERE id = 1")
	rows.Next()
	var got string
	rows.Scan(&got)
	if got != "ada lovelace" {
		t.Errorf("name = %q", got)
	}
}

func TestScanDestinations(t *testing.T) {
	_, vdb := newTestCluster(t, 1, VirtualDatabaseConfig{})
	sess, _ := vdb.OpenSession("u", "")
	defer sess.Close()
	sess.Exec("CREATE TABLE t (i INTEGER, f FLOAT, s VARCHAR, b BOOLEAN, ts TIMESTAMP, bl BLOB)")
	when := time.Date(2004, 1, 2, 3, 4, 5, 0, time.UTC)
	sess.Exec("INSERT INTO t (i, f, s, b, ts, bl) VALUES (?, ?, ?, ?, ?, ?)",
		int64(7), 2.5, "str", true, when, []byte{1, 2})
	rows, err := sess.Query("SELECT i, f, s, b, ts, bl FROM t")
	if err != nil || !rows.Next() {
		t.Fatalf("query: %v", err)
	}
	var (
		i  int64
		f  float64
		s  string
		b  bool
		ts time.Time
		bl []byte
	)
	if err := rows.Scan(&i, &f, &s, &b, &ts, &bl); err != nil {
		t.Fatal(err)
	}
	if i != 7 || f != 2.5 || s != "str" || !b || !ts.Equal(when) || len(bl) != 2 {
		t.Errorf("scanned: %v %v %q %v %v %v", i, f, s, b, ts, bl)
	}
	// Generic access.
	rows.Reset()
	rows.Next()
	if rows.Value(0) != int64(7) {
		t.Errorf("Value(0) = %v", rows.Value(0))
	}
}

func TestNetworkDriverAndFailover(t *testing.T) {
	// Two controllers sharing the same two engine backends (the budget-HA
	// pattern of §5.1).
	ctrlA := NewController("A", 1)
	ctrlB := NewController("B", 2)
	defer ctrlA.Close()
	defer ctrlB.Close()

	mk := func(c *Controller, join bool) *VirtualDatabase {
		v, err := c.CreateVirtualDatabase(VirtualDatabaseConfig{Name: "ha"})
		if err != nil {
			t.Fatal(err)
		}
		if err := v.AddInMemoryBackend(c.Name() + "-db"); err != nil {
			t.Fatal(err)
		}
		if join {
			if err := v.JoinGroup("ha-group-failover", c.Name()); err != nil {
				t.Fatal(err)
			}
		}
		return v
	}
	va := mk(ctrlA, true)
	vb := mk(ctrlB, true)
	defer va.LeaveGroup()
	defer vb.LeaveGroup()

	addrA, err := ctrlA.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB, err := ctrlB.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	sess, err := Connect(fmt.Sprintf("cjdbc://%s,%s/ha?user=u", addrA, addrB))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if _, err := sess.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("INSERT INTO t (id, v) VALUES (1, 'before')"); err != nil {
		t.Fatal(err)
	}

	// Kill controller A; the driver must fail over to B transparently.
	ctrlA.Close()
	va.LeaveGroup()

	var rows *Rows
	deadline := time.Now().Add(2 * time.Second)
	for {
		rows, err = sess.Query("SELECT v FROM t WHERE id = 1")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover never succeeded: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	rows.Next()
	var v string
	rows.Scan(&v)
	if v != "before" {
		t.Errorf("value after failover: %q", v)
	}
	// Writes keep working against B.
	if _, err := sess.Exec("INSERT INTO t (id, v) VALUES (2, 'after')"); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
}

func TestFailoverAbortsOpenTransaction(t *testing.T) {
	ctrlA := NewController("A2", 1)
	ctrlB := NewController("B2", 2)
	defer ctrlA.Close()
	defer ctrlB.Close()
	for _, c := range []*Controller{ctrlA, ctrlB} {
		v, err := c.CreateVirtualDatabase(VirtualDatabaseConfig{Name: "ha"})
		if err != nil {
			t.Fatal(err)
		}
		if err := v.AddInMemoryBackend(c.Name() + "-db"); err != nil {
			t.Fatal(err)
		}
	}
	addrA, _ := ctrlA.ListenAndServe("127.0.0.1:0")
	addrB, _ := ctrlB.ListenAndServe("127.0.0.1:0")
	sess, err := Connect(fmt.Sprintf("cjdbc://%s,%s/ha", addrA, addrB))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.Exec("CREATE TABLE t (id INTEGER)")
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	sess.Exec("INSERT INTO t (id) VALUES (1)")
	ctrlA.Close()
	_, err = sess.Exec("INSERT INTO t (id) VALUES (2)")
	if !errors.Is(err, ErrTxLostOnFailover) {
		t.Fatalf("expected ErrTxLostOnFailover, got %v", err)
	}
	// Session is usable again in auto-commit mode on controller B.
	if _, err := sess.Exec("SELECT 1"); err != nil {
		t.Fatalf("session dead after tx failover: %v", err)
	}
}

func TestVerticalScalability(t *testing.T) {
	// Leaf controller with two real backends.
	leaf := NewController("leaf", 10)
	defer leaf.Close()
	leafVDB, err := leaf.CreateVirtualDatabase(VirtualDatabaseConfig{Name: "leafdb"})
	if err != nil {
		t.Fatal(err)
	}
	leafVDB.AddInMemoryBackend("l0")
	leafVDB.AddInMemoryBackend("l1")
	leafAddr, err := leaf.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Top controller whose only backend is the leaf controller, reached
	// through the re-injected driver (Figure 4).
	top := NewController("top", 11)
	defer top.Close()
	topVDB, err := top.CreateVirtualDatabase(VirtualDatabaseConfig{Name: "topdb"})
	if err != nil {
		t.Fatal(err)
	}
	if err := topVDB.AddClusterBackend("leaf-as-backend", fmt.Sprintf("cjdbc://%s/leafdb", leafAddr)); err != nil {
		t.Fatal(err)
	}

	sess, err := topVDB.OpenSession("u", "")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("INSERT INTO t (id, v) VALUES (1, 'deep')"); err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query("SELECT v FROM t WHERE id = 1")
	if err != nil || rows.Len() != 1 {
		t.Fatalf("query through two levels: %v", err)
	}
	// Transactions traverse the tree too.
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("UPDATE t SET v = 'deeper' WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, _ = sess.Query("SELECT v FROM t WHERE id = 1")
	rows.Next()
	var v string
	rows.Scan(&v)
	if v != "deeper" {
		t.Errorf("nested tx result: %q", v)
	}
	// Both leaf backends hold the data (write-all at the leaf).
	leafSess, _ := leafVDB.OpenSession("u", "")
	defer leafSess.Close()
	rows, _ = leafSess.Query("SELECT COUNT(*) FROM t")
	rows.Next()
	var n int64
	rows.Scan(&n)
	if n != 1 {
		t.Errorf("leaf rows = %d", n)
	}
}

func TestCacheConfigThroughPublicAPI(t *testing.T) {
	_, vdb := newTestCluster(t, 1, VirtualDatabaseConfig{
		Cache: &CacheConfig{Granularity: "column", MaxEntries: 10},
	})
	sess, _ := vdb.OpenSession("u", "")
	defer sess.Close()
	sess.Exec("CREATE TABLE t (a INTEGER, b INTEGER)")
	sess.Exec("INSERT INTO t (a, b) VALUES (1, 2)")
	if _, err := sess.Query("SELECT a FROM t WHERE a = 1"); err != nil {
		t.Fatal(err)
	}
	// Second identical read served from cache.
	before := vdb.Internal().StatsSnapshot().CacheHits
	sess.Query("SELECT a FROM t WHERE a = 1")
	if vdb.Internal().StatsSnapshot().CacheHits != before+1 {
		t.Error("cache hit not recorded")
	}
}

func TestPartialReplicationConfig(t *testing.T) {
	ctrl := NewController("pr", 3)
	defer ctrl.Close()
	vdb, err := ctrl.CreateVirtualDatabase(VirtualDatabaseConfig{
		Name:               "pr",
		PartialReplication: map[string][]string{"hot": {"db0", "db1"}, "cold": {"db1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb.AddInMemoryBackend("db0")
	vdb.AddInMemoryBackend("db1")
	sess, _ := vdb.OpenSession("u", "")
	defer sess.Close()
	// CREATE routes per the static map merged with dynamic discovery.
	if _, err := sess.Exec("CREATE TABLE hot (id INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("INSERT INTO hot (id) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query("SELECT COUNT(*) FROM hot")
	if err != nil || rows.Len() != 1 {
		t.Fatalf("read on partial table: %v", err)
	}
}

func TestCheckpointBackupRestorePublicAPI(t *testing.T) {
	_, vdb := newTestCluster(t, 2, VirtualDatabaseConfig{RecoveryLogPath: "memory"})
	sess, _ := vdb.OpenSession("u", "")
	defer sess.Close()
	sess.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)")
	sess.Exec("INSERT INTO t (id) VALUES (1), (2)")

	dump, err := vdb.BackupBackend("db0", "cp1")
	if err != nil {
		t.Fatal(err)
	}
	sess.Exec("INSERT INTO t (id) VALUES (3)")

	vdb.DisableBackend("db1")
	if got := vdb.BackendStates()["db1"]; got != "disabled" {
		t.Fatalf("state = %q", got)
	}
	if err := vdb.RestoreBackend("db1", dump); err != nil {
		t.Fatal(err)
	}
	if got := vdb.BackendStates()["db1"]; got != "enabled" {
		t.Fatalf("state after restore = %q", got)
	}
	rows, _ := sess.Query("SELECT COUNT(*) FROM t")
	rows.Next()
	var n int64
	rows.Scan(&n)
	if n != 3 {
		t.Errorf("rows = %d", n)
	}
}

func TestParseDSN(t *testing.T) {
	d, err := ParseDSN("cjdbc://h1:1000,h2:2000/mydb?user=alice&password=pw")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Controllers) != 2 || d.Controllers[1] != "h2:2000" {
		t.Errorf("controllers: %v", d.Controllers)
	}
	if d.VDB != "mydb" || d.User != "alice" || d.Password != "pw" {
		t.Errorf("parsed: %+v", d)
	}
	// Userinfo form.
	d, err = ParseDSN("cjdbc://bob:s3c@h1:1000/db")
	if err != nil || d.User != "bob" || d.Password != "s3c" {
		t.Errorf("userinfo form: %+v, %v", d, err)
	}
	for _, bad := range []string{
		"mysql://h/db", "cjdbc://h:1", "cjdbc:///db", "://",
	} {
		if _, err := ParseDSN(bad); err == nil {
			t.Errorf("ParseDSN(%q) should fail", bad)
		}
	}
}

func TestAuthOverNetwork(t *testing.T) {
	ctrl := NewController("auth", 5)
	defer ctrl.Close()
	vdb, err := ctrl.CreateVirtualDatabase(VirtualDatabaseConfig{
		Name:  "secure",
		Users: map[string]string{"alice": "pw"},
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb.AddInMemoryBackend("db0")
	addr, _ := ctrl.ListenAndServe("127.0.0.1:0")

	if _, err := Connect(fmt.Sprintf("cjdbc://%s/secure?user=alice&password=nope", addr)); err == nil {
		t.Fatal("bad password accepted")
	}
	sess, err := Connect(fmt.Sprintf("cjdbc://%s/secure?user=alice&password=pw", addr))
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	if _, err := Connect(fmt.Sprintf("cjdbc://%s/missing?user=alice&password=pw", addr)); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing vdb: %v", err)
	}
}

func TestBadConfigRejected(t *testing.T) {
	ctrl := NewController("bad", 9)
	defer ctrl.Close()
	if _, err := ctrl.CreateVirtualDatabase(VirtualDatabaseConfig{Name: "x", LoadBalancer: "psychic"}); err == nil {
		t.Error("unknown balancer accepted")
	}
	if _, err := ctrl.CreateVirtualDatabase(VirtualDatabaseConfig{Name: "x", EarlyResponse: "eventually"}); err == nil {
		t.Error("unknown early response accepted")
	}
	if _, err := ctrl.CreateVirtualDatabase(VirtualDatabaseConfig{Name: "x", Cache: &CacheConfig{Granularity: "row"}}); err == nil {
		t.Error("unknown granularity accepted")
	}
}
