// High availability on a budget (§5.1 of the paper): two controllers, each
// with its own backend, replicated through group communication; the client
// driver lists both controllers and fails over transparently when one dies.
// The system survives the failure of any single component.
package main

import (
	"fmt"
	"log"
	"time"

	"cjdbc"
)

func main() {
	// Two controllers hosting the same virtual database, synchronized via
	// totally ordered group communication (the paper uses JGroups).
	ctrlA := cjdbc.NewController("ctrl-a", 1)
	ctrlB := cjdbc.NewController("ctrl-b", 2)
	defer ctrlB.Close()

	mkVDB := func(c *cjdbc.Controller, backendName string) *cjdbc.VirtualDatabase {
		vdb, err := c.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{Name: "ha"})
		if err != nil {
			log.Fatal(err)
		}
		if err := vdb.AddInMemoryBackend(backendName); err != nil {
			log.Fatal(err)
		}
		if err := vdb.JoinGroup("budget-ha", c.Name()); err != nil {
			log.Fatal(err)
		}
		return vdb
	}
	vdbA := mkVDB(ctrlA, "postgres-a")
	vdbB := mkVDB(ctrlB, "postgres-b")
	defer vdbB.LeaveGroup()

	addrA, err := ctrlA.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addrB, err := ctrlB.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}

	// The application lists both controllers in its URL: no single point
	// of failure anywhere in the stack.
	sess, err := cjdbc.Connect(fmt.Sprintf("cjdbc://%s,%s/ha", addrA, addrB))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	if _, err := sess.Exec("CREATE TABLE visits (id INTEGER PRIMARY KEY, page VARCHAR)"); err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Exec("INSERT INTO visits (id, page) VALUES (1, '/home')"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote through controller A; both backends replicated the row")

	// Controller A crashes.
	vdbA.LeaveGroup()
	ctrlA.Close()
	fmt.Println("controller A killed")

	// The driver fails over to controller B transparently; controller B's
	// backend has the data because writes were broadcast in total order.
	var rows *cjdbc.Rows
	for attempt := 0; ; attempt++ {
		rows, err = sess.Query("SELECT page FROM visits WHERE id = 1")
		if err == nil {
			break
		}
		if attempt > 100 {
			log.Fatalf("failover never succeeded: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	rows.Next()
	var page string
	if err := rows.Scan(&page); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read after failover: %s (served by controller B)\n", page)

	// And the system still accepts writes.
	if _, err := sess.Exec("INSERT INTO visits (id, page) VALUES (2, '/checkout')"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("write after failover succeeded: no single point of failure")
}
