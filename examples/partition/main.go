// Partial replication (§2.4.3): tables are placed on subsets of the
// backends. The hot "session" table lives on two machines only, so its
// write broadcast does not consume capacity of the other replicas — the
// same mechanism that confines TPC-W's best-seller temporary tables to two
// backends in Figure 10.
package main

import (
	"fmt"
	"log"

	"cjdbc"
)

func main() {
	ctrl := cjdbc.NewController("ctrl0", 1)
	defer ctrl.Close()

	vdb, err := ctrl.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{
		Name: "app",
		PartialReplication: map[string][]string{
			"account": {"db0", "db1", "db2"}, // replicated everywhere
			"session": {"db0", "db1"},        // hot write table: two hosts only
			"archive": {"db2"},               // cold data: one host
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"db0", "db1", "db2"} {
		if err := vdb.AddInMemoryBackend(name); err != nil {
			log.Fatal(err)
		}
	}

	sess, err := vdb.OpenSession("app", "")
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	must := func(sql string, args ...any) *cjdbc.Rows {
		rows, err := sess.Exec(sql, args...)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return rows
	}
	must("CREATE TABLE account (id INTEGER PRIMARY KEY, name VARCHAR)")
	must("CREATE TABLE session (sid INTEGER PRIMARY KEY, aid INTEGER, ts TIMESTAMP)")
	must("CREATE TABLE archive (id INTEGER PRIMARY KEY, blob_data VARCHAR)")

	must("INSERT INTO account (id, name) VALUES (1, 'ada')")
	for i := 1; i <= 50; i++ {
		must("INSERT INTO session (sid, aid, ts) VALUES (?, 1, NOW())", i)
	}
	must("INSERT INTO archive (id, blob_data) VALUES (1, 'old stuff')")

	// Queries route to backends hosting every referenced table.
	rows := must("SELECT a.name, COUNT(*) FROM session s JOIN account a ON s.aid = a.id GROUP BY a.name")
	rows.Next()
	var name string
	var n int64
	rows.Scan(&name, &n)
	fmt.Printf("%s has %d sessions (query ran on db0 or db1: the only hosts of both tables)\n", name, n)

	// db2 never saw a session write: its op counter shows only account and
	// archive traffic.
	for _, b := range vdb.Internal().Backends() {
		fmt.Printf("backend %s executed %d operations\n", b.Name(), b.Ops())
	}

	// A query joining tables with no common host is refused.
	if _, err := sess.Query("SELECT * FROM session s JOIN archive ar ON s.sid = ar.id"); err != nil {
		fmt.Printf("join across disjoint partitions correctly refused: %v\n", err)
	}
}
