// Partial replication (RAIDb-2, §2.4.3): tables are placed on subsets of
// the backends. The hot "session" table lives on two machines only, so its
// write broadcast does not consume capacity of the other replicas — the
// same mechanism that confines TPC-W's best-seller temporary tables to two
// backends in Figure 10. Placement is declared per backend with WithTables
// (the controller JSON's "tables" field) and checked with
// ValidatePlacement.
package main

import (
	"errors"
	"fmt"
	"log"

	"cjdbc"
)

func main() {
	ctrl := cjdbc.NewController("ctrl0", 1)
	defer ctrl.Close()

	vdb, err := ctrl.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{
		Name: "app",
		// Placement comes entirely from the per-backend declarations below.
		PartialByTables: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// account is replicated everywhere; session (hot writes) lives on two
	// hosts; archive (cold data) on one.
	hosted := map[string][]string{
		"db0": {"account", "session"},
		"db1": {"account", "session"},
		"db2": {"account", "archive"},
	}
	for _, name := range []string{"db0", "db1", "db2"} {
		if err := vdb.AddInMemoryBackend(name, cjdbc.WithTables(hosted[name]...)); err != nil {
			log.Fatal(err)
		}
	}
	// Every declared table has a host and every host names a real backend.
	if err := vdb.ValidatePlacement(); err != nil {
		log.Fatal(err)
	}

	sess, err := vdb.OpenSession("app", "")
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	must := func(sql string, args ...any) *cjdbc.Rows {
		rows, err := sess.Exec(sql, args...)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return rows
	}
	// DDL routes to the declared hosts: db2 never materializes session.
	must("CREATE TABLE account (id INTEGER PRIMARY KEY, name VARCHAR)")
	must("CREATE TABLE session (sid INTEGER PRIMARY KEY, aid INTEGER, ts TIMESTAMP)")
	must("CREATE TABLE archive (id INTEGER PRIMARY KEY, blob_data VARCHAR)")

	must("INSERT INTO account (id, name) VALUES (1, 'ada')")
	for i := 1; i <= 50; i++ {
		must("INSERT INTO session (sid, aid, ts) VALUES (?, 1, NOW())", i)
	}
	must("INSERT INTO archive (id, blob_data) VALUES (1, 'old stuff')")

	// Queries route to backends hosting every referenced table.
	rows := must("SELECT a.name, COUNT(*) FROM session s JOIN account a ON s.aid = a.id GROUP BY a.name")
	rows.Next()
	var name string
	var n int64
	rows.Scan(&name, &n)
	fmt.Printf("%s has %d sessions (query ran on db0 or db1: the only hosts of both tables)\n", name, n)

	// db2 never saw a session write: its op counter shows only account and
	// archive traffic.
	for _, b := range vdb.Internal().Backends() {
		fmt.Printf("backend %s executed %d operations\n", b.Name(), b.Ops())
	}

	// A query joining tables with no common host fails with the typed
	// NoHostError naming the unservable footprint.
	_, err = sess.Query("SELECT * FROM session s JOIN archive ar ON s.sid = ar.id")
	var nh *cjdbc.NoHostError
	if errors.As(err, &nh) {
		fmt.Printf("join across disjoint partitions correctly refused; footprint %v has no common host\n", nh.Tables)
	} else {
		log.Fatalf("expected NoHostError, got %v", err)
	}
}
