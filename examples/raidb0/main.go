// RAIDb-0 (§2.4.1): full partitioning, zero redundancy. Every table lives
// on exactly one backend, so the cluster aggregates the capacity of all
// machines — each write lands on a single host instead of being broadcast —
// at the price of no fault tolerance: lose a backend and its tables are
// gone. This is the striping end of the RAIDb spectrum, and with dynamic
// placement (PR 10) a stripe can still be *migrated* between backends under
// live traffic: AddTableHost copies it to the new host and flips routing,
// RemoveTableHost drains and drops the old copy, and the copy count passes
// through 2 but starts and ends at 1. Removing the only host of a table is
// refused with the typed LastHostError.
package main

import (
	"errors"
	"fmt"
	"log"

	"cjdbc"
)

func main() {
	ctrl := cjdbc.NewController("ctrl0", 1)
	defer ctrl.Close()

	vdb, err := ctrl.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{
		Name:            "shop",
		PartialByTables: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Pure striping: three tables, three backends, no table on more than one.
	hosted := map[string][]string{
		"db0": {"users"},
		"db1": {"orders"},
		"db2": {"products"},
	}
	for _, name := range []string{"db0", "db1", "db2"} {
		if err := vdb.AddInMemoryBackend(name, cjdbc.WithTables(hosted[name]...)); err != nil {
			log.Fatal(err)
		}
	}
	if err := vdb.ValidatePlacement(); err != nil {
		log.Fatal(err)
	}

	sess, err := vdb.OpenSession("shop", "")
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	must := func(sql string, args ...any) *cjdbc.Rows {
		rows, err := sess.Exec(sql, args...)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return rows
	}
	must("CREATE TABLE users (id INTEGER PRIMARY KEY, name VARCHAR)")
	must("CREATE TABLE orders (id INTEGER PRIMARY KEY, uid INTEGER, total INTEGER)")
	must("CREATE TABLE products (id INTEGER PRIMARY KEY, title VARCHAR)")

	for i := 1; i <= 20; i++ {
		must("INSERT INTO users (id, name) VALUES (?, ?)", i, fmt.Sprintf("user%d", i))
		must("INSERT INTO orders (id, uid, total) VALUES (?, ?, ?)", i, i, i*10)
		must("INSERT INTO products (id, title) VALUES (?, ?)", i, fmt.Sprintf("widget%d", i))
	}

	// Zero redundancy: 20 inserts per table executed ~20 ops per backend,
	// not 60 — each write touched exactly its one stripe host.
	for _, b := range vdb.Internal().Backends() {
		fmt.Printf("backend %s executed %d operations (its stripe only)\n", b.Name(), b.Ops())
	}

	// No copy means no fault tolerance and no cross-stripe joins: a query
	// whose footprint spans two stripes has no single host that can run it.
	_, err = sess.Query("SELECT u.name, o.total FROM users u JOIN orders o ON u.id = o.uid")
	var nh *cjdbc.NoHostError
	if errors.As(err, &nh) {
		fmt.Printf("cross-stripe join refused: footprint %v has no common host\n", nh.Tables)
	} else {
		log.Fatalf("expected NoHostError, got %v", err)
	}

	// The floor of the placement invariant: a table may never lose its last
	// host, so in RAIDb-0 every RemoveTableHost without a prior add is refused.
	err = vdb.RemoveTableHost("users", "db0")
	var lh *cjdbc.LastHostError
	if errors.As(err, &lh) {
		fmt.Printf("removing the only host refused: %v\n", lh)
	} else {
		log.Fatalf("expected LastHostError, got %v", err)
	}

	// Live stripe migration: move users from db0 to db2. AddTableHost copies
	// the table under a write quiesce and only then flips routing;
	// RemoveTableHost flips routing away first, drains, then drops. The
	// stripe is never unhosted and never below one copy.
	if err := vdb.AddTableHost("users", "db2"); err != nil {
		log.Fatal(err)
	}
	if err := vdb.RemoveTableHost("users", "db0"); err != nil {
		log.Fatal(err)
	}
	if err := vdb.ValidatePlacement(); err != nil {
		log.Fatal(err)
	}
	rows := must("SELECT COUNT(*) FROM users")
	rows.Next()
	var n int64
	rows.Scan(&n)
	fmt.Printf("users migrated db0 -> db2 under live routing; %d rows intact\n", n)

	// db0 hosted only users, so after the migration it serves nothing: the
	// drain dropped its copy and post-flip writes route to db2 alone.
	must("INSERT INTO users (id, name) VALUES (100, 'late')")
	for _, b := range vdb.Internal().Backends() {
		fmt.Printf("backend %s total operations after migration: %d\n", b.Name(), b.Ops())
	}
}
