// Query result caching (§2.4.2, §6.6): even with a single backend, the
// controller's result cache absorbs repeated reads. This example shows a
// coherent cache invalidating on writes, then a relaxed cache serving stale
// data within its staleness limit.
package main

import (
	"fmt"
	"log"
	"time"

	"cjdbc"
)

func run(label string, cache *cjdbc.CacheConfig) {
	ctrl := cjdbc.NewController("ctrl-"+label, 1)
	defer ctrl.Close()
	vdb, err := ctrl.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{
		Name:  "shop",
		Cache: cache,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := vdb.AddInMemoryBackend("mysql"); err != nil {
		log.Fatal(err)
	}
	sess, err := vdb.OpenSession("app", "")
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	sess.Exec("CREATE TABLE product (id INTEGER PRIMARY KEY, name VARCHAR, stock INTEGER)")
	sess.Exec("INSERT INTO product (id, name, stock) VALUES (1, 'widget', 10)")

	query := "SELECT name, stock FROM product WHERE id = 1"
	readStock := func() int64 {
		rows, err := sess.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		rows.Next()
		var name string
		var stock int64
		rows.Scan(&name, &stock)
		return stock
	}

	readStock() // populate
	for i := 0; i < 99; i++ {
		readStock() // hits
	}
	backendOps := vdb.Internal().Backends()[0].Ops()
	stats := vdb.Internal().StatsSnapshot()
	fmt.Printf("[%s] 100 identical reads: %d cache hits, backend saw %d ops\n",
		label, stats.CacheHits, backendOps)

	// A write: the coherent cache invalidates, the relaxed one keeps
	// serving the stale entry until its staleness limit expires.
	sess.Exec("UPDATE product SET stock = 3 WHERE id = 1")
	fmt.Printf("[%s] stock after UPDATE reads as %d\n", label, readStock())
}

func main() {
	run("no-cache", nil)
	run("coherent", &cjdbc.CacheConfig{Granularity: "table"})
	run("relaxed-1m", &cjdbc.CacheConfig{Granularity: "table", Staleness: time.Minute})
	// StaleEpochs=1 keeps table-granularity coherence but writes bump an
	// epoch counter in O(1) instead of eagerly walking the cache shards;
	// stale entries are dropped lazily at their next lookup.
	run("epoch-lazy", &cjdbc.CacheConfig{Granularity: "table", StaleEpochs: 1})
	fmt.Println("note: the relaxed cache may report stale stock within its 1-minute window,")
	fmt.Println("trading freshness for the backend CPU reduction measured in Table 1;")
	fmt.Println("the epoch-lazy cache stays coherent while making writes O(1) in cache size")
}
