// Vertical scalability (§4.2, Figure 4): controllers nest by re-injecting
// the C-JDBC driver as a backend's native driver. Here a top-level
// controller fans out to two leaf controllers, each replicating over two
// real backends — a 2-level tree presenting six databases as one.
package main

import (
	"fmt"
	"log"

	"cjdbc"
)

func main() {
	// Two leaf controllers, each a full-replication cluster of two
	// in-memory backends.
	var leafAddrs []string
	for i := 0; i < 2; i++ {
		leaf := cjdbc.NewController(fmt.Sprintf("leaf%d", i), uint16(10+i))
		defer leaf.Close()
		vdb, err := leaf.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{Name: "leafdb"})
		if err != nil {
			log.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			if err := vdb.AddInMemoryBackend(fmt.Sprintf("leaf%d-db%d", i, j)); err != nil {
				log.Fatal(err)
			}
		}
		addr, err := leaf.ListenAndServe("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		leafAddrs = append(leafAddrs, addr)
		fmt.Printf("leaf controller %d serving on %s\n", i, addr)
	}

	// The top controller treats each leaf cluster as one backend, reached
	// through the same driver applications use.
	top := cjdbc.NewController("top", 1)
	defer top.Close()
	topVDB, err := top.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{Name: "tree"})
	if err != nil {
		log.Fatal(err)
	}
	for i, addr := range leafAddrs {
		dsn := fmt.Sprintf("cjdbc://%s/leafdb", addr)
		if err := topVDB.AddClusterBackend(fmt.Sprintf("leaf%d", i), dsn); err != nil {
			log.Fatal(err)
		}
	}

	sess, err := topVDB.OpenSession("app", "")
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	if _, err := sess.Exec("CREATE TABLE sensor (id INTEGER PRIMARY KEY, reading FLOAT)"); err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := sess.Exec("INSERT INTO sensor (id, reading) VALUES (?, ?)", i, float64(i)*1.5); err != nil {
			log.Fatal(err)
		}
	}
	rows, err := sess.Query("SELECT COUNT(*), AVG(reading) FROM sensor")
	if err != nil {
		log.Fatal(err)
	}
	rows.Next()
	var n int64
	var avg float64
	if err := rows.Scan(&n, &avg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query through the tree: %d rows, avg reading %.2f\n", n, avg)
	fmt.Println("every one of the 4 leaf backends holds the data (write-all down the tree)")
}
