// Quickstart: a single controller exposing one virtual database replicated
// over three in-memory backends. The application sees one database; reads
// are balanced across replicas, writes are broadcast, transactions span the
// cluster.
package main

import (
	"fmt"
	"log"

	"cjdbc"
)

func main() {
	ctrl := cjdbc.NewController("ctrl0", 1)
	defer ctrl.Close()

	vdb, err := ctrl.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{
		Name:         "bookstore",
		LoadBalancer: "lprf",
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"db0", "db1", "db2"} {
		if err := vdb.AddInMemoryBackend(name); err != nil {
			log.Fatal(err)
		}
	}

	sess, err := vdb.OpenSession("reader", "")
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	must := func(sql string, args ...any) *cjdbc.Rows {
		rows, err := sess.Exec(sql, args...)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return rows
	}

	must(`CREATE TABLE book (
		id INTEGER PRIMARY KEY AUTO_INCREMENT,
		title VARCHAR NOT NULL,
		price FLOAT)`)
	must("INSERT INTO book (title, price) VALUES (?, ?)", "Concurrency Control and Recovery", 79.0)
	must("INSERT INTO book (title, price) VALUES (?, ?)", "Transaction Processing", 120.0)

	// A transaction spanning all replicas.
	if err := sess.Begin(); err != nil {
		log.Fatal(err)
	}
	must("UPDATE book SET price = price * 0.9 WHERE price > ?", 100.0)
	if err := sess.Commit(); err != nil {
		log.Fatal(err)
	}

	rows := must("SELECT id, title, price FROM book ORDER BY id")
	fmt.Println("books in the virtual database:")
	for rows.Next() {
		var id int64
		var title string
		var price float64
		if err := rows.Scan(&id, &title, &price); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d: %-40s $%.2f\n", id, title, price)
	}

	// Each backend holds identical data; reads were spread across them.
	for name, state := range vdb.BackendStates() {
		fmt.Printf("backend %s: %s\n", name, state)
	}
	stats := vdb.Internal().StatsSnapshot()
	fmt.Printf("cluster stats: %d reads, %d writes, %d commits\n",
		stats.Reads, stats.Writes, stats.Commits)
}
