// Benchmarks regenerating the paper's evaluation (§6) plus ablations of the
// design choices and micro-benchmarks of the substrates.
//
//	go test -bench 'Figure10' -benchtime 1x .   # one figure
//	go test -bench . -benchmem .                # everything
//
// Macro benchmarks report rq/min (the paper's unit), ms/interaction and the
// backend CPU-load proxy as custom metrics; ns/op is meaningless for them.
// The full sweeps behind EXPERIMENTS.md run via cmd/tpcw-bench and
// cmd/rubis-bench.
package cjdbc_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"cjdbc"
	"cjdbc/internal/backend"
	"cjdbc/internal/cache"
	"cjdbc/internal/recovery"
	"cjdbc/internal/sqlengine"
	"cjdbc/internal/sqlparser"
	"cjdbc/internal/sqlval"
	"cjdbc/internal/workload/experiments"
	"cjdbc/internal/workload/rubis"
	"cjdbc/internal/workload/tpcw"
)

// benchTPCWConfig shrinks the sweep for bench time while keeping the same
// cost calibration as the full harness.
func benchTPCWConfig(mix tpcw.Mix) experiments.TPCWConfig {
	cfg := experiments.DefaultTPCWConfig(mix)
	cfg.Scale = tpcw.Scale{Items: 80, Customers: 80, Authors: 16}
	cfg.Warmup = 150 * time.Millisecond
	cfg.Duration = 500 * time.Millisecond
	return cfg
}

func reportPoint(b *testing.B, p experiments.TPCWPoint) {
	b.Helper()
	b.ReportMetric(p.ThroughputRPM, "rq/min")
	b.ReportMetric(p.AvgResponseMs, "ms/interaction")
	b.ReportMetric(p.BackendLoad*100, "DB%")
	if p.Errors > 0 {
		b.Logf("%s/%d: %d errors (first: %v)", p.Replication, p.Nodes, p.Errors, p.FirstError)
	}
}

// benchFigure runs the representative points of one TPC-W figure.
func benchFigure(b *testing.B, mix tpcw.Mix) {
	b.Run("single-1", func(b *testing.B) {
		cfg := benchTPCWConfig(mix)
		for i := 0; i < b.N; i++ {
			pts, err := experiments.RunTPCWFigure(experiments.TPCWConfig{
				Mix: cfg.Mix, MaxNodes: 0, Scale: cfg.Scale, CostScale: cfg.CostScale,
				ClientsPerNode: cfg.ClientsPerNode, BaseClients: cfg.BaseClients,
				Warmup: cfg.Warmup, Duration: cfg.Duration, Seed: cfg.Seed,
				EarlyResponse: cfg.EarlyResponse,
			})
			if err != nil {
				b.Fatal(err)
			}
			reportPoint(b, pts[0])
		}
	})
	for _, pt := range []struct {
		repl  string
		nodes int
	}{
		{"full", 1}, {"full", 2}, {"full", 4}, {"full", 6},
		{"partial", 2}, {"partial", 4}, {"partial", 6},
	} {
		b.Run(fmt.Sprintf("%s-%d", pt.repl, pt.nodes), func(b *testing.B) {
			cfg := benchTPCWConfig(mix)
			for i := 0; i < b.N; i++ {
				p, err := experiments.RunTPCWPoint(cfg, pt.repl, pt.nodes)
				if err != nil {
					b.Fatal(err)
				}
				reportPoint(b, p)
			}
		})
	}
}

// BenchmarkFigure10 regenerates Figure 10: TPC-W browsing mix throughput vs
// backends (full vs partial replication).
func BenchmarkFigure10(b *testing.B) { benchFigure(b, tpcw.Browsing) }

// BenchmarkFigure11 regenerates Figure 11: TPC-W shopping mix.
func BenchmarkFigure11(b *testing.B) { benchFigure(b, tpcw.Shopping) }

// BenchmarkFigure12 regenerates Figure 12: TPC-W ordering mix.
func BenchmarkFigure12(b *testing.B) { benchFigure(b, tpcw.Ordering) }

// BenchmarkTable1 regenerates Table 1: the RUBiS bidding mix on one backend
// with the result cache off, coherent, and relaxed.
func BenchmarkTable1(b *testing.B) {
	cfg := experiments.DefaultTable1Config()
	cfg.Scale = rubis.Scale{Users: 80, Items: 160, Categories: 10, Regions: 5}
	cfg.Warmup = 150 * time.Millisecond
	cfg.Duration = 500 * time.Millisecond
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Logf("%-16s %10.0f rq/min %8.2f ms  DB %3.0f%%  ctrl %3.0f%%",
				r.Config, r.ThroughputRPM, r.AvgResponseMs, r.BackendLoad*100, r.CtrlLoad*100)
		}
		// Headline metric: relaxed-cache throughput gain over no cache.
		if rows[0].ThroughputRPM > 0 {
			b.ReportMetric(rows[2].ThroughputRPM/rows[0].ThroughputRPM, "relaxed/no-cache")
			b.ReportMetric(rows[0].BackendLoad*100, "DB%-nocache")
			b.ReportMetric(rows[2].BackendLoad*100, "DB%-relaxed")
		}
	}
}

// BenchmarkAblationEarlyResponse compares early response "first" (the
// paper's TPC-W configuration) against fully synchronous "all" (§2.4.4).
func BenchmarkAblationEarlyResponse(b *testing.B) {
	for _, policy := range []string{"first", "all"} {
		b.Run(policy, func(b *testing.B) {
			cfg := benchTPCWConfig(tpcw.Ordering)
			cfg.EarlyResponse = policy
			for i := 0; i < b.N; i++ {
				p, err := experiments.RunTPCWPoint(cfg, "full", 4)
				if err != nil {
					b.Fatal(err)
				}
				reportPoint(b, p)
			}
		})
	}
}

// BenchmarkAblationParallelTx compares parallel transactions (§2.4.4)
// against a fully serialized scheduler.
func BenchmarkAblationParallelTx(b *testing.B) {
	for _, parallel := range []bool{true, false} {
		name := "parallel"
		if !parallel {
			name = "serialized"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchTPCWConfig(tpcw.Shopping)
			cfg.DisableParallelTx = !parallel
			for i := 0; i < b.N; i++ {
				p, err := experiments.RunTPCWPoint(cfg, "full", 2)
				if err != nil {
					b.Fatal(err)
				}
				reportPoint(b, p)
			}
		})
	}
}

// BenchmarkCacheGranularity compares the invalidation granularities of
// §2.4.2 on the RUBiS mix.
func BenchmarkCacheGranularity(b *testing.B) {
	for _, gran := range []string{"database", "table", "column"} {
		b.Run(gran, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := runRUBiSWithCache(gran)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ThroughputRPM, "rq/min")
				b.ReportMetric(res.AvgResponseMs, "ms/interaction")
			}
		})
	}
}

func runRUBiSWithCache(granularity string) (r struct {
	ThroughputRPM float64
	AvgResponseMs float64
}, err error) {
	cfg := experiments.DefaultTable1Config()
	cfg.Scale = rubis.Scale{Users: 80, Items: 160, Categories: 10, Regions: 5}
	cfg.Warmup = 150 * time.Millisecond
	cfg.Duration = 400 * time.Millisecond
	res, err := experiments.RunTable1Mode(cfg, "coherent cache", granularity)
	if err != nil {
		return r, err
	}
	r.ThroughputRPM = res.ThroughputRPM
	r.AvgResponseMs = res.AvgResponseMs
	return r, nil
}

// --- micro-benchmarks of the substrates ---

// BenchmarkParseSelect measures the SQL front end on a TPC-W query.
func BenchmarkParseSelect(b *testing.B) {
	q := "SELECT i_id, i_title, a_fname, a_lname FROM item JOIN author ON i_a_id = a_id WHERE i_subject = 'HISTORY' ORDER BY i_pub_date DESC, i_title LIMIT 50"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparser.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginePointRead measures an indexed single-row select.
func BenchmarkEnginePointRead(b *testing.B) {
	e := sqlengine.New("bench")
	s := e.NewSession()
	if _, err := s.ExecSQL("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := s.ExecSQL(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'v%d')", i, i)); err != nil {
			b.Fatal(err)
		}
	}
	st, _ := sqlparser.Parse("SELECT v FROM t WHERE id = 500")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec(st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineInsert measures single-row insert throughput.
func BenchmarkEngineInsert(b *testing.B) {
	e := sqlengine.New("bench")
	s := e.NewSession()
	if _, err := s.ExecSQL("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ExecSQL(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'x')", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineJoin measures an indexed two-table join.
func BenchmarkEngineJoin(b *testing.B) {
	e := sqlengine.New("bench")
	s := e.NewSession()
	s.ExecSQL("CREATE TABLE a (id INTEGER PRIMARY KEY, bid INTEGER)")
	s.ExecSQL("CREATE TABLE c (id INTEGER PRIMARY KEY, name VARCHAR)")
	for i := 0; i < 200; i++ {
		s.ExecSQL(fmt.Sprintf("INSERT INTO a (id, bid) VALUES (%d, %d)", i, i%50))
		if i < 50 {
			s.ExecSQL(fmt.Sprintf("INSERT INTO c (id, name) VALUES (%d, 'n%d')", i, i))
		}
	}
	st, _ := sqlparser.Parse("SELECT a.id, c.name FROM a JOIN c ON a.bid = c.id WHERE c.id = 7")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec(st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResultCache measures cache hit latency.
func BenchmarkResultCache(b *testing.B) {
	c := cache.New(cache.Config{Granularity: cache.GranTable})
	q := "SELECT a FROM t WHERE id = 1"
	st, _ := sqlparser.Parse(q)
	c.Put(q, st, &backend.Result{Columns: []string{"a"}, Rows: [][]sqlval.Value{{sqlval.Int(1)}}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Get(q) == nil {
			b.Fatal("miss")
		}
	}
}

// BenchmarkRecoveryLogAppend measures write-ahead logging cost.
func BenchmarkRecoveryLogAppend(b *testing.B) {
	l := recovery.NewMemoryLog()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(recovery.Entry{User: "u", TxID: 1, Class: recovery.ClassWrite,
			SQL: "INSERT INTO t (a) VALUES (1)"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepeatedStatement measures the controller hot path on a repeated
// statement served from the result cache — the per-request constant factor
// the parsing cache (§2.4.2) targets: with both caches warm, the request
// cost is pure controller overhead. "plancache" is the default
// configuration (plan reused, parse skipped); "parse-every-time" disables
// the parsing cache, i.e. the pre-parsing-cache baseline. The parameterized
// variants additionally bind values into a clone of the cached template and
// re-render the SQL for the result-cache key.
func BenchmarkRepeatedStatement(b *testing.B) {
	q := "SELECT i_id, i_title FROM item WHERE i_subject = 'HISTORY' ORDER BY i_title LIMIT 10"
	pq := "SELECT i_title FROM item WHERE i_id = ?"
	for _, mode := range []struct {
		name string
		size int
	}{
		{"plancache", 0},
		{"parse-every-time", -1},
	} {
		setup := func(b *testing.B) cjdbc.Session {
			ctrl := cjdbc.NewController("bench", 1)
			b.Cleanup(ctrl.Close)
			vdb, err := ctrl.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{
				Name: "b", PlanCacheSize: mode.size,
				Cache: &cjdbc.CacheConfig{Granularity: "table"},
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				vdb.AddInMemoryBackend(fmt.Sprintf("db%d", i))
			}
			sess, _ := vdb.OpenSession("u", "")
			b.Cleanup(func() { sess.Close() })
			sess.Exec("CREATE TABLE item (i_id INTEGER PRIMARY KEY, i_title VARCHAR, i_subject VARCHAR)")
			for i := 0; i < 50; i++ {
				sess.Exec(fmt.Sprintf("INSERT INTO item (i_id, i_title, i_subject) VALUES (%d, 't%d', 'HISTORY')", i, i))
			}
			// Warm both caches for every statement the loop issues.
			sess.Query(q)
			for i := 0; i < 50; i++ {
				sess.Query(pq, i)
			}
			return sess
		}
		b.Run(mode.name, func(b *testing.B) {
			sess := setup(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(mode.name+"-params", func(b *testing.B) {
			sess := setup(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Query(pq, i%50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterRead measures the full controller read path (no cost
// model): parse, route, balance, execute, serialize.
func BenchmarkClusterRead(b *testing.B) {
	ctrl := cjdbc.NewController("bench", 1)
	defer ctrl.Close()
	vdb, err := ctrl.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{Name: "b"})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		vdb.AddInMemoryBackend(fmt.Sprintf("db%d", i))
	}
	sess, _ := vdb.OpenSession("u", "")
	defer sess.Close()
	sess.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)")
	sess.Exec("INSERT INTO t (id, v) VALUES (1, 'x')")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Query("SELECT v FROM t WHERE id = 1"); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWriteVDB builds a one-backend virtual database with k disjoint
// tables t0..t(k-1), each seeded with `rows` rows, for the write-pipeline
// benchmarks (no cost model: real engine concurrency is what is measured).
func benchWriteVDB(b *testing.B, k, rows int, opts ...cjdbc.BackendOption) *cjdbc.VirtualDatabase {
	b.Helper()
	ctrl := cjdbc.NewController("bench", 1)
	b.Cleanup(ctrl.Close)
	vdb, err := ctrl.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{Name: "w"})
	if err != nil {
		b.Fatal(err)
	}
	vdb.AddInMemoryBackend("db0", opts...)
	sess, _ := vdb.OpenSession("u", "")
	defer sess.Close()
	for i := 0; i < k; i++ {
		if _, err := sess.Exec(fmt.Sprintf("CREATE TABLE t%d (id INTEGER PRIMARY KEY, v INTEGER)", i)); err != nil {
			b.Fatal(err)
		}
		for r := 0; r < rows; r++ {
			if _, err := sess.Exec(fmt.Sprintf("INSERT INTO t%d (id, v) VALUES (%d, 0)", i, r)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return vdb
}

// benchParallelWrites runs GOMAXPROCS writers, each assigned a table by
// worker index modulo `tables`, through the full controller write path.
func benchParallelWrites(b *testing.B, vdb *cjdbc.VirtualDatabase, tables, rows int) {
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tbl := int(next.Add(1)-1) % tables
		s, err := vdb.OpenSession("u", "")
		if err != nil {
			b.Error(err)
			return
		}
		defer s.Close()
		i := 0
		for pb.Next() {
			if _, err := s.Exec(fmt.Sprintf("UPDATE t%d SET v = %d WHERE id = %d", tbl, i, i%rows)); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkDisjointTableWrites drives parallel writers, each updating its
// own table, through the whole conflict-class pipeline (scheduler class
// locks, per-conflict backend lanes, per-table engine locks) on one
// backend. Compare with BenchmarkSameTableWrites, where every writer hits
// one table and the pipeline degenerates to the old total order: pre-PR
// both cases serialized three times over (global scheduler mutex, single
// FIFO backend lane, engine-global write lock), so disjoint writes could
// not scale past one lane.
func BenchmarkDisjointTableWrites(b *testing.B) {
	const tables, rows = 8, 64
	vdb := benchWriteVDB(b, tables, rows)
	benchParallelWrites(b, vdb, tables, rows)
}

// BenchmarkSameTableWrites is the conflicting baseline: every writer
// updates the same table.
func BenchmarkSameTableWrites(b *testing.B) {
	const rows = 64
	vdb := benchWriteVDB(b, 1, rows)
	benchParallelWrites(b, vdb, 1, rows)
}

// BenchmarkAutoCommitWorkerPool measures the auto-commit write path with
// the per-backend worker pool (the default): enqueue-time ticket
// reservation on a pre-bound connection, ready-task handoff, resident
// workers. Compare with BenchmarkAutoCommitGoroutinePerWrite, which runs
// the identical workload through the goroutine-per-write execution model
// the pool replaced (the PR-3/PR-4 lanes baseline).
func BenchmarkAutoCommitWorkerPool(b *testing.B) {
	const tables, rows = 4, 64
	vdb := benchWriteVDB(b, tables, rows)
	benchParallelWrites(b, vdb, tables, rows)
}

// BenchmarkAutoCommitGoroutinePerWrite is the spawn-a-goroutine-per-write
// baseline (WriteWorkers < 0), kept solely for this comparison.
func BenchmarkAutoCommitGoroutinePerWrite(b *testing.B) {
	const tables, rows = 4, 64
	vdb := benchWriteVDB(b, tables, rows, cjdbc.WithWriteWorkers(-1))
	benchParallelWrites(b, vdb, tables, rows)
}

// BenchmarkMixedAutoCommitTxContention drives auto-commit writers and
// short transactions over the same tables: the contended case where
// enqueue-time tickets, not each replica's lock queue, decide the order of
// every auto-commit/transactional pair.
func BenchmarkMixedAutoCommitTxContention(b *testing.B) {
	const tables, rows = 2, 64
	vdb := benchWriteVDB(b, tables, rows)
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(next.Add(1) - 1)
		tbl := id % tables
		s, err := vdb.OpenSession("u", "")
		if err != nil {
			b.Error(err)
			return
		}
		defer s.Close()
		i := 0
		for pb.Next() {
			// Alternate per iteration, not per goroutine, so the mix is
			// real even when RunParallel spawns a single goroutine
			// (GOMAXPROCS=1, the CI bench host).
			if i%2 == 0 {
				// Auto-commit writer.
				if _, err := s.Exec(fmt.Sprintf("UPDATE t%d SET v = %d WHERE id = %d", tbl, i, i%rows)); err != nil {
					b.Error(err)
					return
				}
			} else {
				// Transactional writer on the same tables.
				for _, q := range []string{
					"BEGIN",
					fmt.Sprintf("UPDATE t%d SET v = v + 1 WHERE id = %d", tbl, i%rows),
					"COMMIT",
				} {
					if _, err := s.Exec(q); err != nil {
						b.Error(err)
						return
					}
				}
			}
			i++
		}
	})
}

// BenchmarkClusterWrite measures the full write-all path on 3 backends.
func BenchmarkClusterWrite(b *testing.B) {
	ctrl := cjdbc.NewController("bench", 1)
	defer ctrl.Close()
	vdb, err := ctrl.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{Name: "b"})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		vdb.AddInMemoryBackend(fmt.Sprintf("db%d", i))
	}
	sess, _ := vdb.OpenSession("u", "")
	defer sess.Close()
	sess.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Exec(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'x')", i)); err != nil {
			b.Fatal(err)
		}
	}
}
