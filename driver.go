package cjdbc

import (
	"errors"
	"fmt"
	"net/url"
	"strings"

	"cjdbc/internal/netproto"
	"cjdbc/internal/sqlval"
)

// DSN is a parsed cjdbc:// connection URL:
//
//	cjdbc://host1:port1,host2:port2/vdbname?user=u&password=p
//
// Listing several controllers enables transparent failover (§2.3): when the
// current controller dies, the driver reconnects to the next one. An open
// transaction cannot survive a failover and is reported as an error; auto-
// commit statements retry transparently.
type DSN struct {
	Controllers []string
	VDB         string
	User        string
	Password    string
}

// ParseDSN parses a cjdbc:// URL.
func ParseDSN(dsn string) (*DSN, error) {
	u, err := url.Parse(dsn)
	if err != nil {
		return nil, fmt.Errorf("cjdbc: bad dsn: %w", err)
	}
	if u.Scheme != "cjdbc" {
		return nil, fmt.Errorf("cjdbc: dsn scheme must be cjdbc://, got %q", u.Scheme)
	}
	vdb := strings.TrimPrefix(u.Path, "/")
	if vdb == "" {
		return nil, errors.New("cjdbc: dsn is missing the virtual database name")
	}
	hosts := strings.Split(u.Host, ",")
	if len(hosts) == 0 || hosts[0] == "" {
		return nil, errors.New("cjdbc: dsn names no controller")
	}
	d := &DSN{Controllers: hosts, VDB: vdb}
	q := u.Query()
	d.User = q.Get("user")
	d.Password = q.Get("password")
	if u.User != nil {
		d.User = u.User.Username()
		if p, ok := u.User.Password(); ok {
			d.Password = p
		}
	}
	return d, nil
}

// ErrTxLostOnFailover is returned when the controller serving an open
// transaction dies: the transaction state died with it (backends roll the
// transaction back when the controller session disappears).
var ErrTxLostOnFailover = errors.New("cjdbc: controller failed with a transaction open; transaction rolled back")

// Connect dials a remote virtual database. The returned Session fails over
// transparently between the DSN's controllers.
func Connect(dsn string) (Session, error) {
	d, err := ParseDSN(dsn)
	if err != nil {
		return nil, err
	}
	rs := &remoteSession{dsn: d}
	if err := rs.redial(); err != nil {
		return nil, err
	}
	return rs, nil
}

type remoteSession struct {
	dsn    *DSN
	client *netproto.Client
	next   int // index of the next controller to try
	inTx   bool
	closed bool
}

// redial connects to the first reachable controller, round-robin from the
// last used index.
func (r *remoteSession) redial() error {
	var firstErr error
	for i := 0; i < len(r.dsn.Controllers); i++ {
		addr := r.dsn.Controllers[(r.next+i)%len(r.dsn.Controllers)]
		c, err := netproto.Dial(addr, r.dsn.VDB, r.dsn.User, r.dsn.Password)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		r.client = c
		r.next = (r.next + i) % len(r.dsn.Controllers)
		return nil
	}
	return fmt.Errorf("cjdbc: no controller reachable: %w", firstErr)
}

func (r *remoteSession) exec(sql string, params []sqlval.Value) (*Rows, error) {
	if r.closed {
		return nil, errors.New("cjdbc: session closed")
	}
	for attempt := 0; ; attempt++ {
		res, err := r.client.Exec(sql, params)
		if err == nil {
			return wrapResult(res), nil
		}
		if !netproto.IsConnLost(err) || attempt >= len(r.dsn.Controllers) {
			return nil, err
		}
		// Transparent failover to the next controller.
		_ = r.client.Close()
		r.next++
		if rerr := r.redial(); rerr != nil {
			return nil, rerr
		}
		if r.inTx {
			r.inTx = false
			return nil, ErrTxLostOnFailover
		}
	}
}

func (r *remoteSession) Exec(sql string, args ...any) (*Rows, error) {
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	rows, err := r.exec(sql, params)
	if err != nil {
		return nil, err
	}
	switch strings.ToUpper(firstWord(sql)) {
	case "BEGIN", "START":
		r.inTx = true
	case "COMMIT", "ROLLBACK", "ABORT":
		r.inTx = false
	}
	return rows, nil
}

func (r *remoteSession) Query(sql string, args ...any) (*Rows, error) { return r.Exec(sql, args...) }
func (r *remoteSession) Begin() error                                 { _, err := r.Exec("BEGIN"); return err }
func (r *remoteSession) Commit() error                                { _, err := r.Exec("COMMIT"); return err }
func (r *remoteSession) Rollback() error                              { _, err := r.Exec("ROLLBACK"); return err }

func (r *remoteSession) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	return r.client.Close()
}

func firstWord(s string) string {
	s = strings.TrimSpace(s)
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' || s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
