package cjdbc

import (
	"errors"
	"fmt"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/sqlval"
)

// Rows is a fully materialized result set. Like the paper's serialized
// ResultSet, it is browsed locally by the client after one round trip.
type Rows struct {
	Columns      []string
	RowsAffected int64
	LastInsertID int64
	rows         [][]sqlval.Value
	pos          int
}

// Len returns the number of rows.
func (r *Rows) Len() int { return len(r.rows) }

// Next advances the cursor, returning false past the last row.
func (r *Rows) Next() bool {
	if r.pos >= len(r.rows) {
		return false
	}
	r.pos++
	return true
}

// Reset rewinds the cursor.
func (r *Rows) Reset() { r.pos = 0 }

// Scan copies the current row into dest pointers (*int64, *float64,
// *string, *bool, *time.Time, *[]byte, or *any).
func (r *Rows) Scan(dest ...any) error {
	if r.pos == 0 || r.pos > len(r.rows) {
		return errors.New("cjdbc: Scan called without Next")
	}
	row := r.rows[r.pos-1]
	if len(dest) > len(row) {
		return fmt.Errorf("cjdbc: Scan of %d values into row of %d columns", len(dest), len(row))
	}
	for i, d := range dest {
		v := row[i]
		switch p := d.(type) {
		case *int64:
			n, err := v.AsInt()
			if err != nil {
				return err
			}
			*p = n
		case *int:
			n, err := v.AsInt()
			if err != nil {
				return err
			}
			*p = int(n)
		case *float64:
			f, err := v.AsFloat()
			if err != nil {
				return err
			}
			*p = f
		case *string:
			*p = v.AsString()
		case *bool:
			*p = v.AsBool()
		case *time.Time:
			*p = v.T
		case *[]byte:
			*p = append([]byte(nil), v.B...)
		case *any:
			*p = valueToAny(v)
		default:
			return fmt.Errorf("cjdbc: unsupported Scan destination %T", d)
		}
	}
	return nil
}

// Value returns the current row's i-th column as a generic value.
func (r *Rows) Value(i int) any {
	if r.pos == 0 || r.pos > len(r.rows) {
		return nil
	}
	return valueToAny(r.rows[r.pos-1][i])
}

func valueToAny(v sqlval.Value) any {
	switch v.K {
	case sqlval.KindNull:
		return nil
	case sqlval.KindInt:
		return v.I
	case sqlval.KindFloat:
		return v.F
	case sqlval.KindBool:
		return v.I != 0
	case sqlval.KindTime:
		return v.T
	case sqlval.KindBytes:
		return v.B
	default:
		return v.S
	}
}

// toValues converts driver arguments to SQL values.
func toValues(args []any) ([]sqlval.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]sqlval.Value, len(args))
	for i, a := range args {
		switch x := a.(type) {
		case nil:
			out[i] = sqlval.Null
		case int:
			out[i] = sqlval.Int(int64(x))
		case int32:
			out[i] = sqlval.Int(int64(x))
		case int64:
			out[i] = sqlval.Int(x)
		case uint64:
			out[i] = sqlval.Int(int64(x))
		case float32:
			out[i] = sqlval.Float(float64(x))
		case float64:
			out[i] = sqlval.Float(x)
		case string:
			out[i] = sqlval.String_(x)
		case bool:
			out[i] = sqlval.Bool(x)
		case time.Time:
			out[i] = sqlval.Time(x)
		case []byte:
			out[i] = sqlval.Bytes(x)
		case sqlval.Value:
			out[i] = x
		default:
			return nil, fmt.Errorf("cjdbc: unsupported argument type %T", a)
		}
	}
	return out, nil
}

// NewRows wraps a raw backend result into the public Rows type. It exists
// for the in-module benchmark harness; application code receives Rows from
// Session methods and never needs it.
func NewRows(res *backend.Result) *Rows { return wrapResult(res) }

func wrapResult(res *backend.Result) *Rows {
	if res == nil {
		return &Rows{}
	}
	return &Rows{
		Columns:      res.Columns,
		RowsAffected: res.RowsAffected,
		LastInsertID: res.LastInsertID,
		rows:         res.Rows,
	}
}

// Session is one client connection to a virtual database, local or remote,
// the analogue of a JDBC Connection. Sessions are not safe for concurrent
// use; open one per goroutine.
type Session interface {
	// Exec runs any SQL statement with optional ? parameters.
	Exec(sql string, args ...any) (*Rows, error)
	// Query is Exec restricted to reads, for readability at call sites.
	Query(sql string, args ...any) (*Rows, error)
	// Begin/Commit/Rollback demarcate a transaction.
	Begin() error
	Commit() error
	Rollback() error
	// Close releases the session, rolling back any open transaction.
	Close() error
}

// OpenSession opens an in-process session on the virtual database (the
// type-4 "local" flavour of the driver).
func (v *VirtualDatabase) OpenSession(user, password string) (Session, error) {
	s, err := v.inner.NewSession(user, password)
	if err != nil {
		return nil, err
	}
	return &localSession{s: s}, nil
}

type localSession struct {
	s interface {
		Exec(sql string, params []sqlval.Value) (*backend.Result, error)
		Close()
	}
}

func (l *localSession) Exec(sql string, args ...any) (*Rows, error) {
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	res, err := l.s.Exec(sql, params)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

func (l *localSession) Query(sql string, args ...any) (*Rows, error) { return l.Exec(sql, args...) }
func (l *localSession) Begin() error                                 { _, err := l.Exec("BEGIN"); return err }
func (l *localSession) Commit() error                                { _, err := l.Exec("COMMIT"); return err }
func (l *localSession) Rollback() error                              { _, err := l.Exec("ROLLBACK"); return err }
func (l *localSession) Close() error                                 { l.s.Close(); return nil }
