#!/bin/sh
# check_package_docs.sh — fail CI when any internal package (or a main
# package under cmd/ or examples/) is missing a package-level godoc
# comment. A package comment is a "// Package <name> ..." (or
# "// Command <name> ..." / a leading doc comment for main packages)
# block in at least one non-test file of the directory.
set -eu
cd "$(dirname "$0")/.."

fail=0
for d in $(find internal cmd examples -type d | sort); do
	set -- "$d"/*.go
	[ -e "$1" ] || continue
	ok=0
	for f in "$d"/*.go; do
		case "$f" in *_test.go) continue ;; esac
		# The doc comment must immediately precede the package clause.
		if awk 'prev ~ /^\/\// && /^package / { found = 1 } { prev = $0 } END { exit !found }' "$f"; then
			ok=1
			break
		fi
	done
	if [ "$ok" -eq 0 ]; then
		echo "missing package comment: $d" >&2
		fail=1
	fi
done
if [ "$fail" -ne 0 ]; then
	echo "every package needs a godoc package comment (// Package <name> ... above the package clause)" >&2
fi
exit "$fail"
