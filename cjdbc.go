// Package cjdbc is a Go reproduction of C-JDBC (Cecchet, Marguerite and
// Zwaenepoel, USENIX 2004): flexible database clustering middleware. It
// turns a collection of database backends into a single virtual database
// behind a uniform driver interface, using read-one/write-all replication
// with pluggable load balancing, an optional strongly- or loosely-consistent
// query result cache, a recovery log with checkpointing, horizontal
// scalability (controllers replicated over totally ordered group
// communication) and vertical scalability (controllers nested as each
// other's backends).
//
// Quick start:
//
//	ctrl := cjdbc.NewController("ctrl0", 1)
//	vdb, _ := ctrl.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{Name: "mydb"})
//	vdb.AddInMemoryBackend("db0")
//	vdb.AddInMemoryBackend("db1")
//	sess, _ := vdb.OpenSession("user", "")
//	sess.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)")
//	sess.Exec("INSERT INTO t (id, v) VALUES (?, ?)", 1, "hello")
//	rows, _ := sess.Query("SELECT v FROM t WHERE id = ?", 1)
package cjdbc

import (
	"fmt"
	"strings"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/balancer"
	"cjdbc/internal/cache"
	"cjdbc/internal/controller"
	"cjdbc/internal/distributed"
	"cjdbc/internal/groupcomm"
	"cjdbc/internal/netproto"
	"cjdbc/internal/recovery"
	"cjdbc/internal/sqlengine"
)

// Controller hosts virtual databases and optionally serves them over TCP.
type Controller struct {
	inner  *controller.Controller
	server *netproto.Server
}

// NewController creates a controller. The numeric id must be unique among
// controllers sharing a distributed virtual database.
func NewController(name string, id uint16) *Controller {
	return &Controller{inner: controller.New(name, id)}
}

// Name returns the controller name.
func (c *Controller) Name() string { return c.inner.Name() }

// VirtualDatabaseConfig configures one virtual database.
type VirtualDatabaseConfig struct {
	// Name identifies the virtual database to connecting drivers.
	Name string

	// Users maps virtual logins to passwords; empty accepts everyone.
	Users map[string]string

	// PartialReplication maps table -> backend names hosting it (RAIDb-2,
	// §2.4.3). Empty means full replication unless a backend declares a
	// hosted-table subset with WithTables. Declared tables keep their
	// placement authoritative: dynamic schema gathering never overrides it.
	// Tables found on backends at enable time are merged in (dynamic schema
	// gathering); tables in neither source replicate fully.
	PartialReplication map[string][]string

	// PartialByTables switches to partial replication even when
	// PartialReplication is empty, so placement can be declared entirely
	// per-backend through WithTables. Implied by a non-empty
	// PartialReplication map.
	PartialByTables bool

	// LoadBalancer is "lprf" (least pending requests first, the default),
	// "rr" (round robin) or "wrr" (weighted round robin).
	LoadBalancer string

	// Cache enables the query result cache when non-nil.
	Cache *CacheConfig

	// PlanCacheSize bounds the parsing cache, which reuses parsed
	// statements across executions (§2.4.2): 0 means the default capacity
	// (4096 plans), negative disables it so every request re-parses.
	PlanCacheSize int

	// RecoveryLogPath stores the recovery log in a flat file; "memory"
	// keeps it in process memory; "" disables logging (and with it
	// checkpointing).
	RecoveryLogPath string

	// RecoveryWorkers is the number of parallel appliers used to replay the
	// recovery log when a backend is backed up, restored or integrated:
	// disjoint conflict classes replay concurrently while each class keeps
	// its logged order. 0 means GOMAXPROCS; 1 replays sequentially (the
	// paper's §3.2 behavior).
	RecoveryWorkers int

	// EarlyResponse is "all" (default), "first" or "majority" (§2.4.4).
	EarlyResponse string

	// Health configures failure monitoring and automatic re-integration.
	// Nil keeps the classic behavior: one-strike disable on any failure, no
	// probing, and re-integration only through explicit RestoreBackend
	// calls.
	Health *HealthConfig

	// Placement configures the load-driven placement policy for partially
	// replicated virtual databases: hot tables gain replicas, cold tables
	// shed them, all under live traffic. Nil disables the policy; manual
	// AddTableHost/RemoveTableHost moves always work under partial
	// replication.
	Placement *PlacementConfig

	// DisableParallelTransactions turns off the parallel-transactions
	// optimization, serializing every operation (for ablation).
	DisableParallelTransactions bool

	// CtrlCostPerRequest etc. attribute virtual CPU time to the
	// controller for monitoring (used by the RUBiS harness).
	CtrlCostPerRequest      time.Duration
	CtrlCostPerCacheHit     time.Duration
	CtrlCostPerInvalidation time.Duration
}

// HealthConfig tunes the per-backend health monitor and the automatic
// re-integration supervisor. Failed reads and probes raise suspicion and
// disable a backend only at SuspectThreshold consecutive failures; failed
// writes always disable immediately (no 2PC — a backend that missed a write
// the others applied has already diverged, §2.4.1).
type HealthConfig struct {
	// SuspectThreshold is the number of consecutive read/probe failures
	// that disables a backend (default 1, the classic one-strike rule).
	SuspectThreshold int
	// ProbeInterval enables a periodic liveness ping of every enabled
	// backend; 0 disables probing.
	ProbeInterval time.Duration
	// AutoReintegrate starts a supervisor that brings disabled backends
	// back automatically: restore from the latest backup (taking one from a
	// healthy peer if none is cached), replay the recovery log, re-enable —
	// all under live traffic. Requires a recovery log.
	AutoReintegrate bool
	// ReintegrateBackoff is the delay before the first re-integration
	// attempt, doubled each failed attempt up to ReintegrateBackoffCap
	// (defaults 50ms / 2s).
	ReintegrateBackoff    time.Duration
	ReintegrateBackoffCap time.Duration
	// ReintegrateAttempts caps the attempts before the backend is marked
	// permanently failed; 0 means the default (8), negative retries
	// forever.
	ReintegrateAttempts int
}

// PlacementConfig tunes the load-driven placement policy. Once per
// ObserveWindow the policy snapshots per-table read/write counters; a table
// read at least HotTableThreshold times in the window gains a replica on the
// least-loaded enabled backend not hosting it, and a table whose total
// traffic stayed at or under ColdTableThreshold sheds one surplus replica.
// At most one move is in flight at a time.
type PlacementConfig struct {
	// HotTableThreshold is the per-window read count at or above which a
	// table is replicated onto one more backend; 0 disables replication
	// moves.
	HotTableThreshold uint64
	// ColdTableThreshold is the per-window total traffic at or below which a
	// table with two or more hosts sheds one; 0 disables shedding.
	ColdTableThreshold uint64
	// ObserveWindow is how often load is sampled; <= 0 disables the policy
	// goroutine entirely.
	ObserveWindow time.Duration
	// Cooldown is the minimum delay between two policy-driven moves.
	Cooldown time.Duration
}

// CacheConfig configures the query result cache (§2.4.2).
type CacheConfig struct {
	// Granularity is "database", "table" (default) or "column".
	Granularity string
	// MaxEntries bounds the cache (default 4096).
	MaxEntries int
	// MaxBytes bounds the cache by approximate result bytes, so one huge
	// result set cannot monopolize it (default 4 KiB per entry slot;
	// negative disables weight accounting).
	MaxBytes int
	// MaxRows is the deprecated row-count budget, honoured (as
	// MaxRows*cache.CompatRowBytes bytes) when MaxBytes is 0.
	MaxRows int
	// Staleness relaxes consistency: entries may serve stale data for up
	// to this duration; 0 keeps strong consistency.
	Staleness time.Duration
	// StaleEpochs switches the cache to epoch-tagged invalidation: a write
	// bumps a per-table epoch counter in O(1) instead of eagerly walking
	// every cache shard, and entries are dropped lazily at lookup once
	// their table has seen StaleEpochs or more writes since they were
	// cached. 1 keeps table-granularity strong consistency without the
	// write-side invalidation stampede; larger values relax consistency by
	// write count; 0 keeps eager invalidation.
	StaleEpochs int
}

// VirtualDatabase is the single-database view the middleware exposes.
type VirtualDatabase struct {
	inner *controller.VirtualDatabase
	dist  *distributed.VDB
}

// CreateVirtualDatabase registers a virtual database on the controller.
func (c *Controller) CreateVirtualDatabase(cfg VirtualDatabaseConfig) (*VirtualDatabase, error) {
	var repl balancer.Replication
	if len(cfg.PartialReplication) > 0 || cfg.PartialByTables {
		repl = balancer.NewPartialReplication(cfg.PartialReplication)
	}
	bal, err := balancer.New(cfg.LoadBalancer)
	if err != nil {
		return nil, err
	}
	var rc *cache.ResultCache
	if cfg.Cache != nil {
		gran := cache.GranTable
		switch strings.ToLower(cfg.Cache.Granularity) {
		case "", "table":
		case "database":
			gran = cache.GranDatabase
		case "column":
			gran = cache.GranColumn
		default:
			return nil, fmt.Errorf("cjdbc: unknown cache granularity %q", cfg.Cache.Granularity)
		}
		rc = cache.New(cache.Config{
			Granularity: gran,
			MaxEntries:  cfg.Cache.MaxEntries,
			MaxBytes:    cfg.Cache.MaxBytes,
			MaxRows:     cfg.Cache.MaxRows,
			Staleness:   cfg.Cache.Staleness,
			StaleEpochs: cfg.Cache.StaleEpochs,
		})
	}
	var log recovery.Log
	switch cfg.RecoveryLogPath {
	case "":
	case "memory":
		log = recovery.NewMemoryLog()
	default:
		log, err = recovery.OpenFileLog(cfg.RecoveryLogPath)
		if err != nil {
			return nil, err
		}
	}
	var early controller.ResponsePolicy
	switch strings.ToLower(cfg.EarlyResponse) {
	case "", "all":
		early = controller.ResponseAll
	case "first":
		early = controller.ResponseFirst
	case "majority":
		early = controller.ResponseMajority
	default:
		return nil, fmt.Errorf("cjdbc: unknown early-response policy %q", cfg.EarlyResponse)
	}
	auth := controller.NewAuthManager()
	for u, p := range cfg.Users {
		auth.AddUser(u, p)
	}
	var health controller.HealthConfig
	if cfg.Health != nil {
		health = controller.HealthConfig{
			SuspectThreshold:      cfg.Health.SuspectThreshold,
			ProbeInterval:         cfg.Health.ProbeInterval,
			AutoReintegrate:       cfg.Health.AutoReintegrate,
			ReintegrateBackoff:    cfg.Health.ReintegrateBackoff,
			ReintegrateBackoffCap: cfg.Health.ReintegrateBackoffCap,
			ReintegrateAttempts:   cfg.Health.ReintegrateAttempts,
		}
	}
	var placement controller.PlacementPolicy
	if cfg.Placement != nil {
		placement = controller.PlacementPolicy{
			HotTableThreshold:  cfg.Placement.HotTableThreshold,
			ColdTableThreshold: cfg.Placement.ColdTableThreshold,
			ObserveWindow:      cfg.Placement.ObserveWindow,
			Cooldown:           cfg.Placement.Cooldown,
		}
	}
	inner, err := c.inner.AddVirtualDatabase(controller.VDBConfig{
		Name:            cfg.Name,
		Replication:     repl,
		Balancer:        bal,
		Cache:           rc,
		RecoveryLog:     log,
		EarlyResponse:   early,
		ParallelTx:      !cfg.DisableParallelTransactions,
		Auth:            auth,
		PlanCacheSize:   cfg.PlanCacheSize,
		RecoveryWorkers: cfg.RecoveryWorkers,
		Health:          health,
		Placement:       placement,
		CtrlCost: controller.CtrlCost{
			PerRequest:      cfg.CtrlCostPerRequest,
			PerCacheHit:     cfg.CtrlCostPerCacheHit,
			PerInvalidation: cfg.CtrlCostPerInvalidation,
		},
	})
	if err != nil {
		return nil, err
	}
	return &VirtualDatabase{inner: inner}, nil
}

// VirtualDatabase looks up a previously created virtual database.
func (c *Controller) VirtualDatabase(name string) (*VirtualDatabase, error) {
	v, err := c.inner.VirtualDatabase(name)
	if err != nil {
		return nil, err
	}
	return &VirtualDatabase{inner: v}, nil
}

// ListenAndServe exposes the controller's virtual databases over TCP for
// remote drivers. addr may use port 0; the bound address is returned.
func (c *Controller) ListenAndServe(addr string) (string, error) {
	if c.server == nil {
		c.server = netproto.NewServer(c.inner)
	}
	return c.server.Listen(addr)
}

// Close shuts down the network server (if any) and every backend.
func (c *Controller) Close() {
	if c.server != nil {
		c.server.Close()
	}
	c.inner.Close()
}

// Internal exposes the underlying controller for advanced wiring (admin
// endpoint, benchmarks).
func (c *Controller) Internal() *controller.Controller { return c.inner }

// BackendOption tunes a backend added to a virtual database.
type BackendOption func(*backend.Config)

// WithWeight sets the weighted-round-robin weight.
func WithWeight(w int) BackendOption {
	return func(c *backend.Config) { c.Weight = w }
}

// WithMaxConns bounds the backend's connection pool.
func WithMaxConns(n int) BackendOption {
	return func(c *backend.Config) { c.MaxConns = n }
}

// WithServiceCost charges simulated service time per statement on this
// backend, standing in for the paper's physical database machines. scale is
// the wall-clock duration of one cost unit.
func WithServiceCost(scale time.Duration) BackendOption {
	return func(c *backend.Config) { c.Cost = backend.DefaultCostModel(scale) }
}

// WithCostParallelism sets how many statements the simulated backend
// machine serves concurrently (only meaningful with WithServiceCost).
func WithCostParallelism(n int) BackendOption {
	return func(c *backend.Config) { c.CostParallelism = n }
}

// WithWriteWorkers sizes the backend's auto-commit write worker pool: ready
// writes (lane dependencies satisfied, engine lock ticket granted) execute
// on this many resident workers with lane work-stealing. 0 means GOMAXPROCS
// (minimum 2); negative restores the goroutine-per-write execution model as
// a measurement baseline.
func WithWriteWorkers(n int) BackendOption {
	return func(c *backend.Config) { c.WriteWorkers = n }
}

// WithTables declares the subset of the virtual database's tables this
// backend hosts (RAIDb-2 partial replication). The virtual database must
// use partial replication (a non-empty PartialReplication map, or
// PartialByTables). Reads route to the backend only when it hosts the
// statement's whole footprint, writes and recovery streams reach it only
// for hosted tables, and backups and restores transfer only the hosted
// subset. Use ValidatePlacement after adding all backends to check that
// every declared table has at least one host.
func WithTables(tables ...string) BackendOption {
	return func(c *backend.Config) { c.Tables = append(c.Tables, tables...) }
}

// NoHostError is the typed failure of partial replication routing: no
// enabled backend hosts the statement's whole footprint (a read joining
// tables placed on disjoint backends, or a write whose every host is
// down). Extract it with errors.As to learn the offending tables.
type NoHostError = balancer.NoHostError

// LastHostError is the typed refusal of a placement move that would leave a
// table with no enabled host. Extract it with errors.As to learn the table
// and the host whose removal was refused.
type LastHostError = balancer.LastHostError

// AddInMemoryBackend creates a fresh in-process SQL engine and attaches it
// as a backend, returning the engine's name.
func (v *VirtualDatabase) AddInMemoryBackend(name string, opts ...BackendOption) error {
	eng := sqlengine.New(name)
	return v.addDriverBackend(name, &backend.EngineDriver{Engine: eng}, opts...)
}

// AddEngineBackend attaches an existing SQL engine as a backend (useful
// when several controllers share physical backends, as in the budget
// high-availability deployment of §5.1).
func (v *VirtualDatabase) AddEngineBackend(name string, eng *sqlengine.Engine, opts ...BackendOption) error {
	return v.addDriverBackend(name, &backend.EngineDriver{Engine: eng}, opts...)
}

// AddClusterBackend attaches another virtual database (reached through dsn,
// a cjdbc:// URL) as a backend: this is vertical scalability (§4.2), where
// the C-JDBC driver is re-injected into the controller as a native driver.
func (v *VirtualDatabase) AddClusterBackend(name, dsn string, opts ...BackendOption) error {
	return v.addDriverBackend(name, &clusterDriver{dsn: dsn}, opts...)
}

func (v *VirtualDatabase) addDriverBackend(name string, d backend.Driver, opts ...BackendOption) error {
	cfg := backend.Config{Name: name, Driver: d}
	for _, o := range opts {
		o(&cfg)
	}
	b := backend.New(cfg)
	return v.inner.AddBackend(b)
}

// Name returns the virtual database name.
func (v *VirtualDatabase) Name() string { return v.inner.Name() }

// Internal exposes the wrapped virtual database for benchmarks and tests.
func (v *VirtualDatabase) Internal() *controller.VirtualDatabase { return v.inner }

// JoinGroup attaches the virtual database to a named controller group for
// horizontal scalability (§4.1): writes are synchronized with total order
// across every controller in the group. Controllers in one process find
// groups by name; controllerName must be unique within the group.
func (v *VirtualDatabase) JoinGroup(groupName, controllerName string) error {
	g := groupcomm.DefaultRegistry.Get(groupName)
	d, err := distributed.Join(v.inner, g, controllerName)
	if err != nil {
		return err
	}
	v.dist = d
	return nil
}

// LeaveGroup detaches from the controller group.
func (v *VirtualDatabase) LeaveGroup() {
	if v.dist != nil {
		v.dist.Leave()
		v.dist = nil
	}
}

// ValidatePlacement checks the declared table placement against the
// attached backends: every declared table must be hosted by at least one of
// them and every host name must match a backend. Call it after the last
// AddBackend. A no-op under full replication.
func (v *VirtualDatabase) ValidatePlacement() error {
	return v.inner.ValidatePlacement()
}

// AddTableHost replicates one table onto one more backend under live
// traffic (RAIDb-2 dynamic placement): the copy is bootstrapped from an
// enabled donor and caught up through the recovery log, and routing flips to
// include the new host only once the copy is provably current. Requires
// partial replication.
func (v *VirtualDatabase) AddTableHost(table, backendName string) error {
	return v.inner.AddTableHost(table, backendName)
}

// RemoveTableHost sheds one replica of a table under live traffic: routing
// flips away first, in-flight work drains, then the copy is dropped.
// Removing the last enabled host is refused with a LastHostError.
func (v *VirtualDatabase) RemoveTableHost(table, backendName string) error {
	return v.inner.RemoveTableHost(table, backendName)
}

// Checkpoint writes a named marker into the recovery log.
func (v *VirtualDatabase) Checkpoint(name string) error {
	_, err := v.inner.Checkpoint(name)
	return err
}

// BackupBackend takes an online backup of one backend (§3.1) and returns a
// portable dump that can re-integrate failed or new backends.
func (v *VirtualDatabase) BackupBackend(backendName, checkpointName string) (*recovery.Dump, error) {
	return v.inner.BackupBackend(backendName, checkpointName)
}

// RestoreBackend re-integrates a backend from a dump plus log replay.
func (v *VirtualDatabase) RestoreBackend(backendName string, dump *recovery.Dump) error {
	return v.inner.RestoreBackend(backendName, dump)
}

// DisableBackend removes a backend from service.
func (v *VirtualDatabase) DisableBackend(name string) { v.inner.DisableBackend(name) }

// BackendStates reports each backend's lifecycle state.
func (v *VirtualDatabase) BackendStates() map[string]string {
	out := make(map[string]string)
	for _, b := range v.inner.Backends() {
		out[b.Name()] = b.State().String()
	}
	return out
}

// BackendHealth reports each backend's health-monitor status (healthy,
// suspect, down, recovering or failed).
func (v *VirtualDatabase) BackendHealth() map[string]string {
	out := make(map[string]string)
	for _, b := range v.inner.Backends() {
		out[b.Name()] = v.inner.BackendHealth(b.Name()).String()
	}
	return out
}
