package cjdbc

import (
	"cjdbc/internal/backend"
	"cjdbc/internal/sqlparser"
)

// clusterDriver is the C-JDBC driver re-injected as a backend native driver
// (§4.2 vertical scalability): the "database" behind this driver is another
// virtual database, reached through the normal cjdbc:// wire protocol.
// Arbitrary controller trees compose this way (Figures 4 and 5).
type clusterDriver struct {
	dsn string
}

var _ backend.Driver = (*clusterDriver)(nil)

// Open dials a new session on the nested virtual database.
func (d *clusterDriver) Open() (backend.Conn, error) {
	sess, err := Connect(d.dsn)
	if err != nil {
		return nil, err
	}
	return &clusterConn{sess: sess.(*remoteSession)}, nil
}

// clusterConn adapts a remote session to the backend.Conn interface.
type clusterConn struct {
	sess *remoteSession
}

func (c *clusterConn) Exec(st sqlparser.Statement, sql string) (*backend.Result, error) {
	if sql == "" && st != nil {
		sql = sqlparser.Render(st)
	}
	rows, err := c.sess.exec(sql, nil)
	if err != nil {
		return nil, err
	}
	return &backend.Result{
		Columns:      rows.Columns,
		Rows:         rows.rows,
		RowsAffected: rows.RowsAffected,
		LastInsertID: rows.LastInsertID,
	}, nil
}

func (c *clusterConn) Begin() error {
	_, err := c.sess.exec("BEGIN", nil)
	if err == nil {
		c.sess.inTx = true
	}
	return err
}

func (c *clusterConn) Commit() error {
	_, err := c.sess.exec("COMMIT", nil)
	c.sess.inTx = false
	return err
}

func (c *clusterConn) Rollback() error {
	_, err := c.sess.exec("ROLLBACK", nil)
	c.sess.inTx = false
	return err
}

func (c *clusterConn) Close() error { return c.sess.Close() }
