// Command rubis-bench regenerates Table 1 of the paper: the RUBiS bidding
// mix on a single backend with the query result cache disabled, coherent,
// and relaxed (1-minute staleness).
//
//	go run ./cmd/rubis-bench
//	go run ./cmd/rubis-bench -clients 90 -duration 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cjdbc/internal/workload/experiments"
	"cjdbc/internal/workload/rubis"
)

func main() {
	clients := flag.Int("clients", 45, "emulated clients (paper: 450 at full scale)")
	duration := flag.Duration("duration", time.Second, "measurement window per configuration")
	warmup := flag.Duration("warmup", 250*time.Millisecond, "warmup per configuration")
	costScale := flag.Duration("cost-scale", 1200*time.Microsecond, "wall time of one backend cost unit")
	users := flag.Int("users", 100, "RUBiS user count")
	items := flag.Int("items", 200, "RUBiS item count")
	staleness := flag.Duration("staleness", time.Minute, "relaxed-cache staleness limit")
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()

	cfg := experiments.DefaultTable1Config()
	cfg.Clients = *clients
	cfg.Duration = *duration
	cfg.Warmup = *warmup
	cfg.CostScale = *costScale
	cfg.Scale = rubis.Scale{Users: *users, Items: *items, Categories: 10, Regions: 5}
	cfg.Staleness = *staleness
	cfg.Seed = *seed

	rows, err := experiments.RunTable1(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rubis-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(experiments.FormatTable1(rows))
}
