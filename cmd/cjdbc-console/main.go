// Command cjdbc-console is a minimal interactive SQL console against a
// virtual database, the hand-driven counterpart of the paper's
// administration console.
//
//	go run ./cmd/cjdbc-console -dsn 'cjdbc://127.0.0.1:25322/mydb?user=app&password=secret'
//
// Type SQL statements terminated by newline; \q quits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"cjdbc"
)

func main() {
	dsn := flag.String("dsn", "", "cjdbc:// connection URL")
	flag.Parse()
	if *dsn == "" {
		fmt.Fprintln(os.Stderr, "cjdbc-console: -dsn is required")
		os.Exit(2)
	}
	sess, err := cjdbc.Connect(*dsn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cjdbc-console: %v\n", err)
		os.Exit(1)
	}
	defer sess.Close()
	fmt.Println("connected; \\q to quit")

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("cjdbc> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "\\q" || line == "quit" || line == "exit" {
			return
		}
		rows, err := sess.Exec(line)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		printRows(rows)
	}
}

func printRows(rows *cjdbc.Rows) {
	if len(rows.Columns) == 0 {
		fmt.Printf("ok (%d row(s) affected)\n", rows.RowsAffected)
		return
	}
	fmt.Println(strings.Join(rows.Columns, " | "))
	n := 0
	for rows.Next() {
		vals := make([]string, len(rows.Columns))
		for i := range rows.Columns {
			vals[i] = fmt.Sprint(rows.Value(i))
		}
		fmt.Println(strings.Join(vals, " | "))
		n++
	}
	fmt.Printf("(%d row(s))\n", n)
}
