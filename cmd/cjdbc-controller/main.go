// Command cjdbc-controller runs a standalone controller from a JSON
// configuration file, serving its virtual databases over the cjdbc:// wire
// protocol and its monitoring surface over HTTP (the paper's JMX console
// equivalent).
//
//	go run ./cmd/cjdbc-controller -config controller.json
//
// Example configuration:
//
//	{
//	  "name": "ctrl0",
//	  "id": 1,
//	  "listen": "127.0.0.1:25322",
//	  "admin": "127.0.0.1:8090",
//	  "virtualDatabases": [
//	    {
//	      "name": "mydb",
//	      "users": {"app": "secret"},
//	      "loadBalancer": "lprf",
//	      "earlyResponse": "first",
//	      "recoveryLog": "memory",
//	      "recoveryWorkers": 0,
//	      "cache": {"granularity": "table", "maxEntries": 4096},
//	      "health": {"suspectThreshold": 3, "probeIntervalMs": 1000,
//	                 "autoReintegrate": true, "reintegrateBackoffMs": 500,
//	                 "reintegrateBackoffCapMs": 30000, "reintegrateAttempts": 10},
//	      "backends": [{"name": "db0"}, {"name": "db1", "writeWorkers": 4}],
//	      "group": "mydb-group"
//	    }
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cjdbc"
	"cjdbc/internal/admin"
)

// fileConfig is the on-disk configuration schema.
type fileConfig struct {
	Name             string          `json:"name"`
	ID               uint16          `json:"id"`
	Listen           string          `json:"listen"`
	Admin            string          `json:"admin"`
	VirtualDatabases []vdbFileConfig `json:"virtualDatabases"`
}

type vdbFileConfig struct {
	Name               string              `json:"name"`
	Users              map[string]string   `json:"users"`
	LoadBalancer       string              `json:"loadBalancer"`
	EarlyResponse      string              `json:"earlyResponse"`
	RecoveryLog        string              `json:"recoveryLog"`
	RecoveryWorkers    int                 `json:"recoveryWorkers"`
	PartialReplication map[string][]string `json:"partialReplication"`
	Cache              *cacheFileConfig    `json:"cache"`
	Health             *healthFileConfig   `json:"health"`
	Backends           []backendFileConfig `json:"backends"`
	Group              string              `json:"group"`
}

// healthFileConfig configures failure monitoring and automatic
// re-integration; omitting the section keeps the classic one-strike
// behavior with no probing.
type healthFileConfig struct {
	SuspectThreshold        int  `json:"suspectThreshold"`
	ProbeIntervalMS         int  `json:"probeIntervalMs"`
	AutoReintegrate         bool `json:"autoReintegrate"`
	ReintegrateBackoffMS    int  `json:"reintegrateBackoffMs"`
	ReintegrateBackoffCapMS int  `json:"reintegrateBackoffCapMs"`
	ReintegrateAttempts     int  `json:"reintegrateAttempts"`
}

type cacheFileConfig struct {
	Granularity string `json:"granularity"`
	MaxEntries  int    `json:"maxEntries"`
	MaxBytes    int    `json:"maxBytes"`
	MaxRows     int    `json:"maxRows"`
	StalenessMS int    `json:"stalenessMs"`
	// StaleEpochs enables epoch-tagged invalidation: writes bump a
	// per-table counter instead of eagerly evicting, and entries older
	// than this many write epochs are dropped lazily at lookup.
	StaleEpochs int `json:"staleEpochs"`
}

type backendFileConfig struct {
	Name   string `json:"name"`
	DSN    string `json:"dsn"` // cjdbc:// URL for a nested controller; empty = in-memory engine
	Weight int    `json:"weight"`
	// WriteWorkers sizes the backend's auto-commit write worker pool
	// (0 = GOMAXPROCS, minimum 2; negative = goroutine-per-write baseline).
	WriteWorkers int `json:"writeWorkers"`
	// Tables declares the subset of the virtual database's tables this
	// backend hosts (RAIDb-2 partial replication); empty hosts everything.
	// Requires partial replication on the virtual database (a
	// "partialReplication" map, or any backend declaring tables).
	Tables []string `json:"tables"`
}

func main() {
	configPath := flag.String("config", "", "path to the controller configuration JSON")
	flag.Parse()
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "cjdbc-controller: -config is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		fatal(err)
	}
	var cfg fileConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *configPath, err))
	}

	ctrl := cjdbc.NewController(cfg.Name, cfg.ID)
	defer ctrl.Close()
	for _, vc := range cfg.VirtualDatabases {
		partialByTables := false
		for _, bc := range vc.Backends {
			if len(bc.Tables) > 0 {
				partialByTables = true
				break
			}
		}
		vcfg := cjdbc.VirtualDatabaseConfig{
			Name:               vc.Name,
			Users:              vc.Users,
			LoadBalancer:       vc.LoadBalancer,
			EarlyResponse:      vc.EarlyResponse,
			RecoveryLogPath:    vc.RecoveryLog,
			RecoveryWorkers:    vc.RecoveryWorkers,
			PartialReplication: vc.PartialReplication,
			PartialByTables:    partialByTables,
		}
		if vc.Cache != nil {
			vcfg.Cache = &cjdbc.CacheConfig{
				Granularity: vc.Cache.Granularity,
				MaxEntries:  vc.Cache.MaxEntries,
				MaxBytes:    vc.Cache.MaxBytes,
				MaxRows:     vc.Cache.MaxRows,
				Staleness:   time.Duration(vc.Cache.StalenessMS) * time.Millisecond,
				StaleEpochs: vc.Cache.StaleEpochs,
			}
		}
		if vc.Health != nil {
			vcfg.Health = &cjdbc.HealthConfig{
				SuspectThreshold:      vc.Health.SuspectThreshold,
				ProbeInterval:         time.Duration(vc.Health.ProbeIntervalMS) * time.Millisecond,
				AutoReintegrate:       vc.Health.AutoReintegrate,
				ReintegrateBackoff:    time.Duration(vc.Health.ReintegrateBackoffMS) * time.Millisecond,
				ReintegrateBackoffCap: time.Duration(vc.Health.ReintegrateBackoffCapMS) * time.Millisecond,
				ReintegrateAttempts:   vc.Health.ReintegrateAttempts,
			}
		}
		vdb, err := ctrl.CreateVirtualDatabase(vcfg)
		if err != nil {
			fatal(err)
		}
		for _, bc := range vc.Backends {
			var opts []cjdbc.BackendOption
			if bc.Weight > 0 {
				opts = append(opts, cjdbc.WithWeight(bc.Weight))
			}
			if bc.WriteWorkers != 0 {
				opts = append(opts, cjdbc.WithWriteWorkers(bc.WriteWorkers))
			}
			if len(bc.Tables) > 0 {
				opts = append(opts, cjdbc.WithTables(bc.Tables...))
			}
			if bc.DSN != "" {
				err = vdb.AddClusterBackend(bc.Name, bc.DSN, opts...)
			} else {
				err = vdb.AddInMemoryBackend(bc.Name, opts...)
			}
			if err != nil {
				fatal(err)
			}
		}
		if err := vdb.ValidatePlacement(); err != nil {
			fatal(err)
		}
		if vc.Group != "" {
			if err := vdb.JoinGroup(vc.Group, cfg.Name); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("virtual database %q loaded with %d backend(s)\n", vc.Name, len(vc.Backends))
	}

	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:25322"
	}
	addr, err := ctrl.ListenAndServe(cfg.Listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("controller %q serving cjdbc:// on %s\n", cfg.Name, addr)

	if cfg.Admin != "" {
		adm := admin.New(ctrl.Internal())
		adminAddr, err := adm.Listen(cfg.Admin)
		if err != nil {
			fatal(err)
		}
		defer adm.Close()
		fmt.Printf("admin console (JMX equivalent) on http://%s/vdbs\n", adminAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cjdbc-controller: %v\n", err)
	os.Exit(1)
}
