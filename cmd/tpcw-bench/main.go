// Command tpcw-bench regenerates Figures 10, 11 and 12 of the paper: TPC-W
// maximum throughput in SQL requests per minute as a function of the number
// of database backends, for full and partial replication, plus the
// single-database baseline.
//
//	go run ./cmd/tpcw-bench                 # all three mixes
//	go run ./cmd/tpcw-bench -mix browsing   # one figure
//	go run ./cmd/tpcw-bench -nodes 4 -duration 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cjdbc/internal/workload/experiments"
	"cjdbc/internal/workload/tpcw"
)

func main() {
	mix := flag.String("mix", "all", "browsing, shopping, ordering or all")
	nodes := flag.Int("nodes", 6, "maximum number of backends to sweep")
	duration := flag.Duration("duration", time.Second, "measurement window per point")
	warmup := flag.Duration("warmup", 250*time.Millisecond, "warmup per point")
	costScale := flag.Duration("cost-scale", 1200*time.Microsecond, "wall time of one backend cost unit")
	items := flag.Int("items", 100, "TPC-W item count")
	customers := flag.Int("customers", 100, "TPC-W customer count")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	var mixes []tpcw.Mix
	switch *mix {
	case "all":
		mixes = []tpcw.Mix{tpcw.Browsing, tpcw.Shopping, tpcw.Ordering}
	case "browsing", "shopping", "ordering":
		mixes = []tpcw.Mix{tpcw.Mix(*mix)}
	default:
		fmt.Fprintf(os.Stderr, "tpcw-bench: unknown mix %q\n", *mix)
		os.Exit(2)
	}

	figures := map[tpcw.Mix]string{
		tpcw.Browsing: "Figure 10", tpcw.Shopping: "Figure 11", tpcw.Ordering: "Figure 12",
	}
	for _, m := range mixes {
		cfg := experiments.DefaultTPCWConfig(m)
		cfg.MaxNodes = *nodes
		cfg.Duration = *duration
		cfg.Warmup = *warmup
		cfg.CostScale = *costScale
		cfg.Scale = tpcw.Scale{Items: *items, Customers: *customers, Authors: *items / 4}
		cfg.Seed = *seed

		fmt.Printf("=== %s: TPC-W %s mix ===\n", figures[m], m)
		pts, err := experiments.RunTPCWFigure(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpcw-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatTPCWPoints(m, pts))
		printSpeedups(pts)
		fmt.Println()
	}
}

// printSpeedups summarizes the figure the way the paper's text does.
func printSpeedups(pts []experiments.TPCWPoint) {
	byKey := map[string]experiments.TPCWPoint{}
	maxNodes := 0
	for _, p := range pts {
		byKey[fmt.Sprintf("%s/%d", p.Replication, p.Nodes)] = p
		if p.Nodes > maxNodes {
			maxNodes = p.Nodes
		}
	}
	full1, okF1 := byKey["full/1"]
	fullN, okFN := byKey[fmt.Sprintf("full/%d", maxNodes)]
	partN, okPN := byKey[fmt.Sprintf("partial/%d", maxNodes)]
	if okF1 && okFN && full1.ThroughputRPM > 0 {
		fmt.Printf("full replication speedup at %d nodes: %.1fx\n",
			maxNodes, fullN.ThroughputRPM/full1.ThroughputRPM)
	}
	if okFN && okPN && fullN.ThroughputRPM > 0 {
		fmt.Printf("partial over full at %d nodes: %+.0f%%\n",
			maxNodes, 100*(partN.ThroughputRPM/fullN.ThroughputRPM-1))
	}
}
