// Package senterr wraps errors with an errors.Is-able classification
// sentinel while preserving the wrapped error's exact message and chain.
// The engine, parser, value layer and backend all classify their statement
// errors through it so the clustering middleware can separate "the
// statement is wrong" (deterministic on every replica) from "this backend
// is broken" without sniffing message text.
package senterr

// Wrap returns an error that reports err's message, unwraps to err, and
// for which errors.Is(result, sentinel) holds.
func Wrap(sentinel, err error) error {
	return &wrapped{sentinel: sentinel, err: err}
}

type wrapped struct{ sentinel, err error }

func (w *wrapped) Error() string        { return w.err.Error() }
func (w *wrapped) Unwrap() error        { return w.err }
func (w *wrapped) Is(target error) bool { return target == w.sentinel }
