// Package cache implements the optional query result cache of the request
// manager (§2.4.2): it stores the result set associated with each read,
// provides strong consistency by invalidating entries that may contain
// stale data when an update executes, supports invalidation granularities
// from database-wide to table- and column-based, and can relax consistency
// with a staleness limit.
//
// The cache is sharded by key hash: each shard has its own mutex, LRU list
// and table index, so concurrent readers on the controller hot path do not
// serialize on a single lock. Statistics are atomic counters read without
// locking. Writes invalidate across all shards while holding one shard lock
// at a time; the scheduler's conflict-class sequencing serializes writes
// that share a table, so shard-by-shard invalidation cannot reorder
// conflicting updates (disjoint writes invalidate disjoint entries and may
// interleave freely). Config.StaleEpochs switches to epoch-tagged
// invalidation: a write bumps a per-table counter in O(1) and stale entries
// are dropped lazily at lookup, trading eager eviction (and its shard-walk
// stampede under write bursts) for bounded-epoch staleness.
package cache

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/shardutil"
	"cjdbc/internal/sqlparser"
)

// Granularity selects how precisely updates invalidate cached entries.
type Granularity int

// Invalidation granularities (§2.4.2).
const (
	// GranDatabase flushes the whole cache on any update.
	GranDatabase Granularity = iota
	// GranTable invalidates entries reading any written table.
	GranTable
	// GranColumn invalidates entries reading any written column of a
	// written table.
	GranColumn
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case GranDatabase:
		return "database"
	case GranTable:
		return "table"
	case GranColumn:
		return "column"
	}
	return "unknown"
}

// Weight accounting constants.
const (
	// MinEntryBytes is the per-entry weight floor: even an empty result
	// charges for its bookkeeping (entry struct, LRU element, map slots),
	// so unbounded numbers of tiny results cannot pile up.
	MinEntryBytes = 128
	// CompatRowBytes converts the deprecated MaxRows row budget into a
	// byte budget: one row slot buys this many bytes.
	CompatRowBytes = 64
	// defaultEntryBytes sizes the default byte budget per entry slot.
	defaultEntryBytes = 4096
)

// Config configures a ResultCache.
type Config struct {
	Granularity Granularity
	MaxEntries  int // LRU capacity; 0 means 4096
	// MaxBytes bounds the cache by weight: every entry charges its
	// approximate result size in bytes (ApproxBytes, floored at
	// MinEntryBytes), so one huge result set cannot monopolize a shard
	// that entry-count accounting would happily hand it. 0 derives a
	// budget of 4 KiB per entry slot (or honours MaxRows, below);
	// negative disables weight accounting. Results heavier than a whole
	// shard's budget are not admitted at all.
	MaxBytes int
	// MaxRows is the deprecated row-count budget, kept as a compat alias:
	// when MaxBytes is 0, a positive MaxRows sets MaxBytes to
	// MaxRows*CompatRowBytes and a negative one disables weight
	// accounting.
	MaxRows int
	// Staleness relaxes consistency: entries stay valid for this long
	// regardless of updates (0 keeps the cache strongly consistent).
	Staleness time.Duration
	// StaleEpochs switches invalidation from eager to epoch-tagged: when
	// positive, a write no longer walks every shard evicting entries (the
	// invalidation stampede) — it bumps a per-table epoch counter in O(1)
	// and entries are dropped lazily at lookup once their table has seen
	// StaleEpochs or more write bumps since they were cached. StaleEpochs=1
	// preserves table-granularity strong consistency (any later write hides
	// the entry); larger values relax consistency by allowed write count,
	// complementing the time-based Staleness limit. Column granularity
	// degrades to table granularity in this mode: epochs count writes per
	// table, not per column.
	StaleEpochs int
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// ApproxBytes estimates a result set's memory footprint: a base charge plus
// per-row and per-value overheads plus variable-width payloads. It is the
// unit entries are weighed in.
func ApproxBytes(res *backend.Result) int {
	n := 64
	for _, c := range res.Columns {
		n += 16 + len(c)
	}
	for _, row := range res.Rows {
		n += 24 + 40*len(row) // slice header + Value struct per cell
		for i := range row {
			n += len(row[i].S) + len(row[i].B)
		}
	}
	return n
}

// Stats counts cache activity.
type Stats struct {
	Hits          int64
	Misses        int64
	Puts          int64
	Invalidations int64
	Evictions     int64
}

// ResultCache is a strongly or loosely consistent query result cache.
type ResultCache struct {
	cfg    Config
	shards []rcShard
	mask   uint32

	hits          atomic.Int64
	misses        atomic.Int64
	puts          atomic.Int64
	invalidations atomic.Int64
	evictions     atomic.Int64

	// Epoch-tagged invalidation state (Config.StaleEpochs > 0): one counter
	// per written table plus a global counter for writes whose footprint
	// cannot be attributed to tables (database granularity, unknown tables).
	globalEpoch atomic.Uint64
	tableEpochs sync.Map // table name -> *atomic.Uint64
}

type rcShard struct {
	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recent
	byTable map[string]map[*entry]bool
	max     int
	weight  int // sum of entry weights (approximate bytes)
	maxW    int // byte budget; 0 disables weight accounting
}

type entry struct {
	key     string
	res     *backend.Result
	tables  []string
	cols    []string // read columns, when enumerable
	colsOK  bool
	weight  int // max(MinEntryBytes, ApproxBytes) against the byte budget
	created time.Time
	lruElem *list.Element

	// Epoch snapshot at Put time (StaleEpochs mode): gepoch mirrors the
	// global counter, epochs[i] the counter of tables[i].
	gepoch uint64
	epochs []uint64
}

// New creates a cache.
func New(cfg Config) *ResultCache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 4096
	}
	if cfg.MaxBytes == 0 {
		switch {
		case cfg.MaxRows > 0:
			cfg.MaxBytes = cfg.MaxRows * CompatRowBytes
		case cfg.MaxRows < 0:
			cfg.MaxBytes = -1
		default:
			cfg.MaxBytes = cfg.MaxEntries * defaultEntryBytes
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	n := shardutil.Count(cfg.MaxEntries)
	perShard := (cfg.MaxEntries + n - 1) / n
	perShardBytes := 0
	if cfg.MaxBytes > 0 {
		perShardBytes = (cfg.MaxBytes + n - 1) / n
	}
	c := &ResultCache{cfg: cfg, shards: make([]rcShard, n), mask: uint32(n - 1)}
	for i := range c.shards {
		s := &c.shards[i]
		s.entries = make(map[string]*entry)
		s.lru = list.New()
		s.byTable = make(map[string]map[*entry]bool)
		s.max = perShard
		s.maxW = perShardBytes
	}
	return c
}

// Key normalizes a SQL string into a cache key.
func Key(sql string) string { return strings.TrimSpace(sql) }

func (c *ResultCache) shardFor(key string) *rcShard {
	return &c.shards[shardutil.Hash(key)&c.mask]
}

// Get returns the cached result for a read, or nil on miss. Under a
// staleness limit, entries older than the limit are dropped here.
func (c *ResultCache) Get(sql string) *backend.Result {
	k := Key(sql)
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	if c.cfg.Staleness > 0 && c.cfg.Clock().Sub(e.created) > c.cfg.Staleness {
		s.removeLocked(e)
		s.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	if c.cfg.StaleEpochs > 0 && c.epochStale(e) {
		s.removeLocked(e)
		s.mu.Unlock()
		c.misses.Add(1)
		c.invalidations.Add(1)
		return nil
	}
	s.lru.MoveToFront(e.lruElem)
	res := e.res
	s.mu.Unlock()
	c.hits.Add(1)
	return res
}

// Put stores a read's result. The statement provides the table and column
// footprint used for invalidation.
func (c *ResultCache) Put(sql string, st sqlparser.Statement, res *backend.Result) {
	if res == nil || sqlparser.Classify(st) != sqlparser.ClassRead {
		return
	}
	cols, colsOK := sqlparser.ReadColumns(st)
	c.PutFootprint(sql, st.Tables(), cols, colsOK, res)
}

// PutFootprint stores a read's result with a precomputed invalidation
// footprint, letting callers that hold a cached plan skip re-analyzing the
// statement. tables and cols must be lower-cased; colsOK=false means the
// read's columns cannot be enumerated (SELECT *), so any write to a read
// table invalidates the entry.
func (c *ResultCache) PutFootprint(sql string, tables, cols []string, colsOK bool, res *backend.Result) {
	if res == nil {
		return
	}
	k := Key(sql)
	s := c.shardFor(k)
	w := ApproxBytes(res)
	if w < MinEntryBytes {
		w = MinEntryBytes
	}
	s.mu.Lock()
	if s.maxW > 0 && w > s.maxW {
		// Heavier than the shard's whole byte budget: admitting it would
		// evict everything else and still overflow, so skip caching.
		s.mu.Unlock()
		return
	}
	if old, dup := s.entries[k]; dup {
		s.removeLocked(old)
	}
	e := &entry{
		key:     k,
		res:     res,
		tables:  tables,
		cols:    cols,
		colsOK:  colsOK,
		weight:  w,
		created: c.cfg.Clock(),
	}
	if c.cfg.StaleEpochs > 0 {
		e.gepoch = c.globalEpoch.Load()
		e.epochs = make([]uint64, len(tables))
		for i, t := range tables {
			e.epochs[i] = c.tableEpoch(t)
		}
	}
	e.lruElem = s.lru.PushFront(e)
	s.entries[k] = e
	s.weight += w
	for _, t := range e.tables {
		set := s.byTable[t]
		if set == nil {
			set = make(map[*entry]bool)
			s.byTable[t] = set
		}
		set[e] = true
	}
	var evicted int64
	for len(s.entries) > s.max || (s.maxW > 0 && s.weight > s.maxW) {
		oldest := s.lru.Back()
		if oldest == nil {
			break
		}
		s.removeLocked(oldest.Value.(*entry))
		evicted++
	}
	s.mu.Unlock()
	c.puts.Add(1)
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// InvalidateWrite drops the entries a write may have made stale, honouring
// the configured granularity, and returns how many entries were dropped.
// Under a staleness limit nothing is dropped: entries expire by age instead
// (§2.4.2 relaxed consistency).
func (c *ResultCache) InvalidateWrite(st sqlparser.Statement) int {
	if c.cfg.Staleness > 0 {
		return 0
	}
	if c.cfg.StaleEpochs > 0 {
		// Epoch mode: an O(1) counter bump replaces the shard walk. Affected
		// entries stay resident and are dropped lazily at their next lookup
		// (or fall off the LRU), so a write burst never stampedes the shards.
		tables := st.Tables()
		if c.cfg.Granularity == GranDatabase || len(tables) == 0 {
			c.globalEpoch.Add(1)
			return 0
		}
		for _, t := range tables {
			c.bumpTableEpoch(t)
		}
		return 0
	}
	var dropped int64
	switch c.cfg.Granularity {
	case GranDatabase:
		for i := range c.shards {
			s := &c.shards[i]
			s.mu.Lock()
			n := len(s.entries)
			if n > 0 {
				s.reset()
				dropped += int64(n)
			}
			s.mu.Unlock()
		}
	case GranTable:
		for _, t := range st.Tables() {
			dropped += c.invalidateTableCols(t, nil, nil)
		}
	case GranColumn:
		written := sqlparser.WrittenColumns(st)
		var writtenSet map[string]bool
		if len(written) > 2 {
			writtenSet = make(map[string]bool, len(written))
			for _, w := range written {
				writtenSet[w] = true
			}
		}
		for _, t := range st.Tables() {
			dropped += c.invalidateTableCols(t, written, writtenSet)
		}
	}
	if dropped > 0 {
		c.invalidations.Add(dropped)
	}
	return int(dropped)
}

// tableEpoch returns table t's current write epoch (0 if never written).
func (c *ResultCache) tableEpoch(t string) uint64 {
	if v, ok := c.tableEpochs.Load(t); ok {
		return v.(*atomic.Uint64).Load()
	}
	return 0
}

// bumpTableEpoch advances table t's write epoch, creating the counter on
// the table's first write.
func (c *ResultCache) bumpTableEpoch(t string) {
	v, ok := c.tableEpochs.Load(t)
	if !ok {
		v, _ = c.tableEpochs.LoadOrStore(t, new(atomic.Uint64))
	}
	v.(*atomic.Uint64).Add(1)
}

// epochStale reports whether an entry has outlived its epoch allowance: any
// table it reads (or the global counter) has been bumped StaleEpochs or more
// times since the entry was cached.
func (c *ResultCache) epochStale(e *entry) bool {
	lim := uint64(c.cfg.StaleEpochs)
	if c.globalEpoch.Load()-e.gepoch >= lim {
		return true
	}
	for i, t := range e.tables {
		if c.tableEpoch(t)-e.epochs[i] >= lim {
			return true
		}
	}
	return false
}

// invalidateTableCols drops entries reading table t. When written (or its
// map form writtenSet, preferred for non-trivial column sets) is non-empty,
// only entries whose read columns intersect the written columns — or whose
// columns cannot be enumerated — are dropped.
func (c *ResultCache) invalidateTableCols(t string, written []string, writtenSet map[string]bool) int64 {
	var dropped int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		set := s.byTable[t]
		if len(set) == 0 {
			s.mu.Unlock()
			continue
		}
		var victims []*entry
		for e := range set {
			if written == nil && writtenSet == nil || !e.colsOK || colsIntersect(e.cols, written, writtenSet) {
				victims = append(victims, e)
			}
		}
		for _, e := range victims {
			s.removeLocked(e)
			dropped++
		}
		s.mu.Unlock()
	}
	return dropped
}

// colsIntersect reports whether any read column was written. Small sets use
// the direct O(n·m) scan (cheaper than hashing); larger written sets are
// probed through the prebuilt map.
func colsIntersect(cols, written []string, writtenSet map[string]bool) bool {
	if writtenSet != nil {
		for _, c := range cols {
			if writtenSet[c] {
				return true
			}
		}
		return false
	}
	for _, x := range cols {
		for _, y := range written {
			if x == y {
				return true
			}
		}
	}
	return false
}

// Flush empties the cache.
func (c *ResultCache) Flush() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.reset()
		s.mu.Unlock()
	}
}

func (s *rcShard) reset() {
	s.entries = make(map[string]*entry)
	s.lru.Init()
	s.byTable = make(map[string]map[*entry]bool)
	s.weight = 0
}

// WeightBytes returns the summed approximate byte weight of all cached
// entries, the quantity bounded by Config.MaxBytes.
func (c *ResultCache) WeightBytes() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.weight
		s.mu.Unlock()
	}
	return n
}

// RowWeight is a deprecated alias for WeightBytes, kept for compatibility
// with the row-count accounting era.
func (c *ResultCache) RowWeight() int { return c.WeightBytes() }

// Len returns the number of cached entries.
func (c *ResultCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// StatsSnapshot returns a copy of the counters.
func (c *ResultCache) StatsSnapshot() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Puts:          c.puts.Load(),
		Invalidations: c.invalidations.Load(),
		Evictions:     c.evictions.Load(),
	}
}

func (s *rcShard) removeLocked(e *entry) {
	delete(s.entries, e.key)
	s.lru.Remove(e.lruElem)
	s.weight -= e.weight
	for _, t := range e.tables {
		if set := s.byTable[t]; set != nil {
			delete(set, e)
			if len(set) == 0 {
				delete(s.byTable, t)
			}
		}
	}
}
