// Package cache implements the optional query result cache of the request
// manager (§2.4.2): it stores the result set associated with each read,
// provides strong consistency by invalidating entries that may contain
// stale data when an update executes, supports invalidation granularities
// from database-wide to table- and column-based, and can relax consistency
// with a staleness limit.
package cache

import (
	"container/list"
	"strings"
	"sync"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/sqlparser"
)

// Granularity selects how precisely updates invalidate cached entries.
type Granularity int

// Invalidation granularities (§2.4.2).
const (
	// GranDatabase flushes the whole cache on any update.
	GranDatabase Granularity = iota
	// GranTable invalidates entries reading any written table.
	GranTable
	// GranColumn invalidates entries reading any written column of a
	// written table.
	GranColumn
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case GranDatabase:
		return "database"
	case GranTable:
		return "table"
	case GranColumn:
		return "column"
	}
	return "unknown"
}

// Config configures a ResultCache.
type Config struct {
	Granularity Granularity
	MaxEntries  int // LRU capacity; 0 means 4096
	// Staleness relaxes consistency: entries stay valid for this long
	// regardless of updates (0 keeps the cache strongly consistent).
	Staleness time.Duration
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// Stats counts cache activity.
type Stats struct {
	Hits          int64
	Misses        int64
	Puts          int64
	Invalidations int64
	Evictions     int64
}

// ResultCache is a strongly or loosely consistent query result cache.
type ResultCache struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recent
	byTable map[string]map[*entry]bool
	stats   Stats
}

type entry struct {
	key     string
	res     *backend.Result
	tables  []string
	cols    []string // read columns, when enumerable
	colsOK  bool
	created time.Time
	lruElem *list.Element
}

// New creates a cache.
func New(cfg Config) *ResultCache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 4096
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &ResultCache{
		cfg:     cfg,
		entries: make(map[string]*entry),
		lru:     list.New(),
		byTable: make(map[string]map[*entry]bool),
	}
}

// Key normalizes a SQL string into a cache key.
func Key(sql string) string { return strings.TrimSpace(sql) }

// Get returns the cached result for a read, or nil on miss. Under a
// staleness limit, entries older than the limit are dropped here.
func (c *ResultCache) Get(sql string) *backend.Result {
	k := Key(sql)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		return nil
	}
	if c.cfg.Staleness > 0 && c.cfg.Clock().Sub(e.created) > c.cfg.Staleness {
		c.removeLocked(e)
		c.stats.Misses++
		return nil
	}
	c.lru.MoveToFront(e.lruElem)
	c.stats.Hits++
	return e.res
}

// Put stores a read's result. The statement provides the table and column
// footprint used for invalidation.
func (c *ResultCache) Put(sql string, st sqlparser.Statement, res *backend.Result) {
	if res == nil || sqlparser.Classify(st) != sqlparser.ClassRead {
		return
	}
	k := Key(sql)
	cols, colsOK := sqlparser.ReadColumns(st)
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, dup := c.entries[k]; dup {
		c.removeLocked(old)
	}
	e := &entry{
		key:     k,
		res:     res,
		tables:  st.Tables(),
		cols:    cols,
		colsOK:  colsOK,
		created: c.cfg.Clock(),
	}
	e.lruElem = c.lru.PushFront(e)
	c.entries[k] = e
	for _, t := range e.tables {
		set := c.byTable[t]
		if set == nil {
			set = make(map[*entry]bool)
			c.byTable[t] = set
		}
		set[e] = true
	}
	c.stats.Puts++
	for len(c.entries) > c.cfg.MaxEntries {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest.Value.(*entry))
		c.stats.Evictions++
	}
}

// InvalidateWrite drops the entries a write may have made stale, honouring
// the configured granularity. Under a staleness limit nothing is dropped:
// entries expire by age instead (§2.4.2 relaxed consistency).
func (c *ResultCache) InvalidateWrite(st sqlparser.Statement) {
	if c.cfg.Staleness > 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.cfg.Granularity {
	case GranDatabase:
		if len(c.entries) > 0 {
			c.stats.Invalidations += int64(len(c.entries))
			c.entries = make(map[string]*entry)
			c.lru.Init()
			c.byTable = make(map[string]map[*entry]bool)
		}
	case GranTable:
		for _, t := range st.Tables() {
			c.invalidateTableLocked(t, nil)
		}
	case GranColumn:
		written := sqlparser.WrittenColumns(st)
		for _, t := range st.Tables() {
			c.invalidateTableLocked(t, written)
		}
	}
}

// invalidateTableLocked drops entries reading table t. When writtenCols is
// non-nil, only entries whose read columns intersect it (or whose columns
// cannot be enumerated) are dropped.
func (c *ResultCache) invalidateTableLocked(t string, writtenCols []string) {
	set := c.byTable[t]
	if len(set) == 0 {
		return
	}
	var victims []*entry
	for e := range set {
		if writtenCols == nil || !e.colsOK || intersects(e.cols, writtenCols) {
			victims = append(victims, e)
		}
	}
	for _, e := range victims {
		c.removeLocked(e)
		c.stats.Invalidations++
	}
}

func intersects(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// Flush empties the cache.
func (c *ResultCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*entry)
	c.lru.Init()
	c.byTable = make(map[string]map[*entry]bool)
}

// Len returns the number of cached entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// StatsSnapshot returns a copy of the counters.
func (c *ResultCache) StatsSnapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *ResultCache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.lruElem)
	for _, t := range e.tables {
		if set := c.byTable[t]; set != nil {
			delete(set, e)
			if len(set) == 0 {
				delete(c.byTable, t)
			}
		}
	}
}
