package cache

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/shardutil"
	"cjdbc/internal/sqlparser"
	"cjdbc/internal/sqlval"
)

func res(n int) *backend.Result {
	r := &backend.Result{Columns: []string{"a"}}
	for i := 0; i < n; i++ {
		r.Rows = append(r.Rows, []sqlval.Value{sqlval.Int(int64(i))})
	}
	return r
}

func stmt(t *testing.T, sql string) sqlparser.Statement {
	t.Helper()
	st, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHitMiss(t *testing.T) {
	c := New(Config{Granularity: GranTable})
	q := "SELECT a FROM t WHERE id = 1"
	if c.Get(q) != nil {
		t.Fatal("unexpected hit")
	}
	c.Put(q, stmt(t, q), res(1))
	if got := c.Get(q); got == nil || len(got.Rows) != 1 {
		t.Fatal("expected hit")
	}
	// Whitespace-normalized key.
	if c.Get("  "+q+"  ") == nil {
		t.Fatal("normalized key should hit")
	}
	st := c.StatsSnapshot()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestOnlyReadsAreCached(t *testing.T) {
	c := New(Config{})
	w := "UPDATE t SET a = 1"
	c.Put(w, stmt(t, w), res(1))
	if c.Len() != 0 {
		t.Fatal("write cached")
	}
}

func TestDatabaseGranularityFlushesAll(t *testing.T) {
	c := New(Config{Granularity: GranDatabase})
	c.Put("SELECT a FROM t", stmt(t, "SELECT a FROM t"), res(1))
	c.Put("SELECT b FROM u", stmt(t, "SELECT b FROM u"), res(1))
	c.InvalidateWrite(stmt(t, "UPDATE unrelated SET x = 1"))
	if c.Len() != 0 {
		t.Fatal("database granularity must flush everything")
	}
}

func TestTableGranularity(t *testing.T) {
	c := New(Config{Granularity: GranTable})
	c.Put("SELECT a FROM t", stmt(t, "SELECT a FROM t"), res(1))
	c.Put("SELECT b FROM u", stmt(t, "SELECT b FROM u"), res(1))
	c.Put("SELECT t.a, u.b FROM t JOIN u ON t.id = u.id",
		stmt(t, "SELECT t.a, u.b FROM t JOIN u ON t.id = u.id"), res(1))
	c.InvalidateWrite(stmt(t, "UPDATE t SET a = 2"))
	if c.Get("SELECT a FROM t") != nil {
		t.Error("entry on written table survived")
	}
	if c.Get("SELECT t.a, u.b FROM t JOIN u ON t.id = u.id") != nil {
		t.Error("join entry reading written table survived")
	}
	if c.Get("SELECT b FROM u") == nil {
		t.Error("entry on unrelated table was invalidated")
	}
}

func TestColumnGranularity(t *testing.T) {
	c := New(Config{Granularity: GranColumn})
	c.Put("SELECT a FROM t WHERE id = 1", stmt(t, "SELECT a FROM t WHERE id = 1"), res(1))
	c.Put("SELECT b FROM t WHERE id = 1", stmt(t, "SELECT b FROM t WHERE id = 1"), res(1))
	c.Put("SELECT * FROM t", stmt(t, "SELECT * FROM t"), res(1))

	// Update touching only column b.
	c.InvalidateWrite(stmt(t, "UPDATE t SET b = 9 WHERE id = 1"))
	if c.Get("SELECT a FROM t WHERE id = 1") == nil {
		t.Error("column-disjoint entry invalidated")
	}
	if c.Get("SELECT b FROM t WHERE id = 1") != nil {
		t.Error("entry reading written column survived")
	}
	if c.Get("SELECT * FROM t") != nil {
		t.Error("star entry (not enumerable) survived")
	}

	// DELETE has no written-column list: everything on the table goes.
	c.Put("SELECT a FROM t WHERE id = 1", stmt(t, "SELECT a FROM t WHERE id = 1"), res(1))
	c.InvalidateWrite(stmt(t, "DELETE FROM t WHERE id = 1"))
	if c.Get("SELECT a FROM t WHERE id = 1") != nil {
		t.Error("entry survived DELETE")
	}
}

func TestColumnGranularityWhereColumns(t *testing.T) {
	// A query filtering on a written column must be invalidated even if it
	// does not select it: the row membership may change.
	c := New(Config{Granularity: GranColumn})
	q := "SELECT a FROM t WHERE b > 5"
	c.Put(q, stmt(t, q), res(1))
	c.InvalidateWrite(stmt(t, "UPDATE t SET b = 0"))
	if c.Get(q) != nil {
		t.Error("entry filtering on written column survived")
	}
}

func TestRelaxedStaleness(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := New(Config{Granularity: GranTable, Staleness: time.Minute, Clock: clock})
	q := "SELECT a FROM t"
	c.Put(q, stmt(t, q), res(1))

	// Updates do NOT invalidate under a staleness limit.
	c.InvalidateWrite(stmt(t, "UPDATE t SET a = 1"))
	if c.Get(q) == nil {
		t.Fatal("relaxed cache dropped entry on write")
	}
	// Entries expire by age.
	now = now.Add(61 * time.Second)
	if c.Get(q) != nil {
		t.Fatal("expired entry returned")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{Granularity: GranTable, MaxEntries: 3})
	for i := 0; i < 5; i++ {
		q := fmt.Sprintf("SELECT a FROM t WHERE id = %d", i)
		c.Put(q, stmt(t, q), res(1))
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	// Oldest entries evicted.
	if c.Get("SELECT a FROM t WHERE id = 0") != nil {
		t.Error("oldest entry survived eviction")
	}
	if c.Get("SELECT a FROM t WHERE id = 4") == nil {
		t.Error("newest entry evicted")
	}
	if st := c.StatsSnapshot(); st.Evictions != 2 {
		t.Errorf("evictions = %d", st.Evictions)
	}
}

func TestLRUTouchOnGet(t *testing.T) {
	c := New(Config{Granularity: GranTable, MaxEntries: 2})
	q1, q2, q3 := "SELECT a FROM t WHERE id = 1", "SELECT a FROM t WHERE id = 2", "SELECT a FROM t WHERE id = 3"
	c.Put(q1, stmt(t, q1), res(1))
	c.Put(q2, stmt(t, q2), res(1))
	c.Get(q1) // touch: q2 becomes LRU
	c.Put(q3, stmt(t, q3), res(1))
	if c.Get(q1) == nil {
		t.Error("touched entry evicted")
	}
	if c.Get(q2) != nil {
		t.Error("LRU entry survived")
	}
}

func TestFlush(t *testing.T) {
	c := New(Config{})
	q := "SELECT a FROM t"
	c.Put(q, stmt(t, q), res(1))
	c.Flush()
	if c.Len() != 0 || c.Get(q) != nil {
		t.Fatal("flush incomplete")
	}
}

func TestPutReplacesExisting(t *testing.T) {
	c := New(Config{Granularity: GranTable})
	q := "SELECT a FROM t"
	c.Put(q, stmt(t, q), res(1))
	c.Put(q, stmt(t, q), res(5))
	if got := c.Get(q); len(got.Rows) != 5 {
		t.Fatalf("replacement not visible: %d rows", len(got.Rows))
	}
	if c.Len() != 1 {
		t.Fatalf("duplicate entries: %d", c.Len())
	}
}

func TestGranularityString(t *testing.T) {
	if GranDatabase.String() != "database" || GranTable.String() != "table" || GranColumn.String() != "column" {
		t.Error("granularity names")
	}
}

func TestInvalidateWriteReturnsCount(t *testing.T) {
	c := New(Config{Granularity: GranTable})
	c.Put("SELECT a FROM t", stmt(t, "SELECT a FROM t"), res(1))
	c.Put("SELECT b FROM t", stmt(t, "SELECT b FROM t"), res(1))
	c.Put("SELECT b FROM u", stmt(t, "SELECT b FROM u"), res(1))
	if n := c.InvalidateWrite(stmt(t, "UPDATE t SET a = 1")); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if n := c.InvalidateWrite(stmt(t, "UPDATE t SET a = 1")); n != 0 {
		t.Fatalf("second invalidation dropped %d", n)
	}
	if st := c.StatsSnapshot(); st.Invalidations != 2 {
		t.Errorf("invalidation counter = %d", st.Invalidations)
	}
}

func TestColumnGranularityManyColumnsUsesMapPath(t *testing.T) {
	// More than two written columns exercises the map-probe intersection.
	c := New(Config{Granularity: GranColumn})
	c.Put("SELECT c3 FROM t", stmt(t, "SELECT c3 FROM t"), res(1))
	c.Put("SELECT z FROM t", stmt(t, "SELECT z FROM t"), res(1))
	n := c.InvalidateWrite(stmt(t, "UPDATE t SET c1 = 1, c2 = 2, c3 = 3, c4 = 4"))
	if n != 1 {
		t.Fatalf("invalidated %d, want 1", n)
	}
	if c.Get("SELECT z FROM t") == nil {
		t.Error("column-disjoint entry invalidated")
	}
}

func TestShardedCapacityBound(t *testing.T) {
	// Large capacity spreads over shards; total entries stay bounded by the
	// configured capacity plus per-shard rounding.
	c := New(Config{Granularity: GranTable, MaxEntries: 1024})
	for i := 0; i < 3000; i++ {
		q := fmt.Sprintf("SELECT a FROM t WHERE id = %d", i)
		c.Put(q, stmt(t, q), res(1))
	}
	if n := c.Len(); n > 1024+shardutil.MaxShards {
		t.Fatalf("len = %d exceeds capacity", n)
	}
}

// TestConcurrentStress hammers the sharded cache from 16 goroutines mixing
// Get, Put and InvalidateWrite; run with -race.
func TestConcurrentStress(t *testing.T) {
	c := New(Config{Granularity: GranColumn, MaxEntries: 512})
	tables := []string{"t0", "t1", "t2", "t3"}
	reads := make([]sqlparser.Statement, 64)
	readSQL := make([]string, 64)
	for i := range reads {
		readSQL[i] = fmt.Sprintf("SELECT a, b FROM %s WHERE id = %d", tables[i%len(tables)], i)
		reads[i] = stmt(t, readSQL[i])
	}
	writes := make([]sqlparser.Statement, len(tables))
	for i, tb := range tables {
		writes[i] = stmt(t, fmt.Sprintf("UPDATE %s SET a = 1 WHERE id = 0", tb))
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (g*37 + i) % len(reads)
				switch {
				case i%19 == 0:
					c.InvalidateWrite(writes[(g+i)%len(writes)])
				case c.Get(readSQL[k]) == nil:
					c.Put(readSQL[k], reads[k], res(1))
				}
				if i%101 == 0 {
					_ = c.Len()
					_ = c.StatsSnapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	// Strong consistency after the dust settles: a write to each table must
	// leave no entry reading it.
	for _, w := range writes {
		c.InvalidateWrite(w)
	}
	if c.Len() != 0 {
		t.Fatalf("%d entries survived invalidation of every table", c.Len())
	}
}

// TestByteWeightEviction: with a byte budget, admitting a heavy result
// evicts older entries until the summed byte weight fits again.
func TestByteWeightEviction(t *testing.T) {
	w4 := ApproxBytes(res(4))
	// Small MaxEntries keeps the cache on one shard with an exact budget;
	// budget exactly fits ten 4-row entries.
	c := New(Config{Granularity: GranTable, MaxEntries: 100, MaxBytes: 10 * w4})
	for i := 0; i < 10; i++ {
		q := fmt.Sprintf("SELECT a FROM t WHERE id = %d", i)
		c.Put(q, stmt(t, q), res(4))
	}
	if c.Len() != 10 || c.WeightBytes() != 10*w4 {
		t.Fatalf("len=%d weight=%d, want 10/%d", c.Len(), c.WeightBytes(), 10*w4)
	}
	// A result worth several slots must push out the oldest entries (LRU),
	// not fail.
	big := "SELECT a FROM t WHERE id < 1000"
	c.Put(big, stmt(t, big), res(30))
	if c.WeightBytes() > 10*w4 {
		t.Fatalf("weight = %d exceeds budget %d", c.WeightBytes(), 10*w4)
	}
	if c.Get(big) == nil {
		t.Fatal("heavy entry not admitted")
	}
	if c.Get("SELECT a FROM t WHERE id = 0") != nil {
		t.Error("oldest entry should have been evicted by weight")
	}
	if c.StatsSnapshot().Evictions == 0 {
		t.Error("weight evictions not counted")
	}
}

// TestByteWeightWideRowsWeighMore: byte accounting sees payload width, not
// just row count — a few wide rows outweigh many narrow ones.
func TestByteWeightWideRowsWeighMore(t *testing.T) {
	wide := &backend.Result{Columns: []string{"a"}}
	for i := 0; i < 4; i++ {
		wide.Rows = append(wide.Rows, []sqlval.Value{sqlval.String_(strings.Repeat("x", 4096))})
	}
	if ApproxBytes(wide) <= ApproxBytes(res(40)) {
		t.Fatalf("4 wide rows (%d B) should outweigh 40 narrow rows (%d B)",
			ApproxBytes(wide), ApproxBytes(res(40)))
	}
	// And the budget enforces it: a cache sized for narrow rows rejects
	// the wide result outright.
	c := New(Config{Granularity: GranTable, MaxEntries: 100, MaxBytes: ApproxBytes(res(40))})
	q := "SELECT a FROM t"
	c.Put(q, stmt(t, q), wide)
	if c.Get(q) != nil {
		t.Fatal("wide result admitted past a byte budget its row count fits")
	}
}

// TestByteWeightOversizedBypass: a result heavier than the whole budget is
// not admitted and does not wipe the cache to make room.
func TestByteWeightOversizedBypass(t *testing.T) {
	c := New(Config{Granularity: GranTable, MaxEntries: 100, MaxBytes: 4 * ApproxBytes(res(1))})
	q := "SELECT a FROM t WHERE id = 1"
	c.Put(q, stmt(t, q), res(1))
	huge := "SELECT a FROM t"
	c.Put(huge, stmt(t, huge), res(500))
	if c.Get(huge) != nil {
		t.Fatal("oversized entry admitted")
	}
	if c.Get(q) == nil {
		t.Fatal("oversized put evicted existing entries")
	}
}

// TestByteWeightDisabled: a negative MaxBytes turns weight accounting off.
func TestByteWeightDisabled(t *testing.T) {
	c := New(Config{Granularity: GranTable, MaxEntries: 100, MaxBytes: -1})
	huge := "SELECT a FROM t"
	c.Put(huge, stmt(t, huge), res(100000))
	if c.Get(huge) == nil {
		t.Fatal("entry rejected with weight accounting disabled")
	}
}

// TestByteWeightEmptyResultChargesFloor: zero-row results still charge the
// per-entry floor, so unbounded numbers of empty results cannot pile up.
func TestByteWeightEmptyResultChargesFloor(t *testing.T) {
	c := New(Config{Granularity: GranTable, MaxEntries: 1 << 20, MaxBytes: 10 * MinEntryBytes})
	for i := 0; i < 200; i++ {
		q := fmt.Sprintf("SELECT a FROM t WHERE id = %d", i)
		c.Put(q, stmt(t, q), &backend.Result{Columns: []string{"a"}})
	}
	if w := c.WeightBytes(); w > (10+shardutil.MaxShards)*MinEntryBytes {
		t.Fatalf("weight = %d exceeds budget", w)
	}
}

// TestMaxRowsCompatAlias: the deprecated MaxRows still bounds the cache,
// translated into bytes (and negative still disables accounting).
func TestMaxRowsCompatAlias(t *testing.T) {
	c := New(Config{Granularity: GranTable, MaxEntries: 100, MaxRows: 10})
	budget := 10 * CompatRowBytes
	huge := "SELECT a FROM t"
	c.Put(huge, stmt(t, huge), res(500))
	if c.Get(huge) != nil {
		t.Fatalf("a %d-byte result passed a %d-byte MaxRows-derived budget",
			ApproxBytes(res(500)), budget)
	}
	c = New(Config{Granularity: GranTable, MaxEntries: 100, MaxRows: -1})
	c.Put(huge, stmt(t, huge), res(500))
	if c.Get(huge) == nil {
		t.Fatal("negative MaxRows no longer disables weight accounting")
	}
}

// TestStaleEpochsLazyInvalidation: in epoch mode a write bumps a counter
// instead of evicting; the stale entry stays resident but is hidden (and
// dropped) at its next lookup, while entries on other tables keep hitting.
func TestStaleEpochsLazyInvalidation(t *testing.T) {
	c := New(Config{Granularity: GranTable, StaleEpochs: 1})
	qt := "SELECT a FROM t"
	qu := "SELECT a FROM u"
	c.Put(qt, stmt(t, qt), res(1))
	c.Put(qu, stmt(t, qu), res(1))
	if c.Get(qt) == nil || c.Get(qu) == nil {
		t.Fatal("expected hits before the write")
	}

	if n := c.InvalidateWrite(stmt(t, "UPDATE t SET a = 2")); n != 0 {
		t.Fatalf("epoch-mode invalidation eagerly dropped %d entries", n)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d after bump, want 2 (lazy mode keeps entries resident)", c.Len())
	}
	if c.Get(qt) != nil {
		t.Fatal("stale entry served after its table's epoch bump")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (stale entry dropped at lookup)", c.Len())
	}
	if c.Get(qu) == nil {
		t.Fatal("entry on an unwritten table lost its validity")
	}
	st := c.StatsSnapshot()
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1 (the lazy drop)", st.Invalidations)
	}

	// A re-put after the bump is valid again at the new epoch.
	c.Put(qt, stmt(t, qt), res(2))
	if c.Get(qt) == nil {
		t.Fatal("re-cached entry at the current epoch should hit")
	}
}

// TestStaleEpochsAllowsBoundedStaleness: StaleEpochs=N serves an entry
// through N-1 write bumps and hides it at the Nth.
func TestStaleEpochsAllowsBoundedStaleness(t *testing.T) {
	c := New(Config{Granularity: GranTable, StaleEpochs: 3})
	q := "SELECT a FROM t"
	c.Put(q, stmt(t, q), res(1))
	up := stmt(t, "UPDATE t SET a = 2")
	for i := 0; i < 2; i++ {
		c.InvalidateWrite(up)
		if c.Get(q) == nil {
			t.Fatalf("entry hidden after %d bumps, allowance is 3", i+1)
		}
	}
	c.InvalidateWrite(up)
	if c.Get(q) != nil {
		t.Fatal("entry served after exhausting its epoch allowance")
	}
}

// TestStaleEpochsJoinInvalidatedByEitherTable: an entry reading two tables
// goes stale when either table's epoch advances.
func TestStaleEpochsJoinInvalidatedByEitherTable(t *testing.T) {
	c := New(Config{Granularity: GranTable, StaleEpochs: 1})
	q := "SELECT t.a, u.a FROM t, u WHERE t.a = u.a"
	c.Put(q, stmt(t, q), res(1))
	c.InvalidateWrite(stmt(t, "UPDATE u SET a = 9"))
	if c.Get(q) != nil {
		t.Fatal("join entry served after its second table was written")
	}
}

// TestStaleEpochsDatabaseGranularity: database granularity bumps the global
// counter, hiding every entry.
func TestStaleEpochsDatabaseGranularity(t *testing.T) {
	c := New(Config{Granularity: GranDatabase, StaleEpochs: 1})
	qt := "SELECT a FROM t"
	qu := "SELECT a FROM u"
	c.Put(qt, stmt(t, qt), res(1))
	c.Put(qu, stmt(t, qu), res(1))
	c.InvalidateWrite(stmt(t, "UPDATE t SET a = 2"))
	if c.Get(qt) != nil || c.Get(qu) != nil {
		t.Fatal("global epoch bump must hide every entry")
	}
}

// TestStaleEpochsConcurrentStress drives readers, writers-as-bumps and puts
// concurrently (run with -race): epoch counters are lock-free and must not
// race with shard operations.
func TestStaleEpochsConcurrentStress(t *testing.T) {
	c := New(Config{Granularity: GranTable, StaleEpochs: 2, MaxEntries: 256})
	up := stmt(t, "UPDATE t0 SET a = 1")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				q := fmt.Sprintf("SELECT a FROM t%d WHERE id = %d", i%4, i%16)
				switch (g + i) % 3 {
				case 0:
					c.Put(q, stmt(t, q), res(1))
				case 1:
					c.Get(q)
				default:
					c.InvalidateWrite(up)
				}
			}
		}(g)
	}
	wg.Wait()
}
