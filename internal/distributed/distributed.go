// Package distributed implements C-JDBC's horizontal scalability (§4.1):
// the schedulers of a virtual database hosted by several controllers are
// synchronized through totally ordered group communication. Only write
// requests and transaction demarcation travel through the group; reads stay
// local to each controller. All other components (scheduler, cache, load
// balancer) are unchanged, exactly as the paper describes.
package distributed

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cjdbc/internal/backend"
	"cjdbc/internal/conflictsched"
	"cjdbc/internal/controller"
	"cjdbc/internal/groupcomm"
	"cjdbc/internal/sqlparser"
)

// ErrLeft is returned when submitting to a distributed vdb that left its group.
var ErrLeft = errors.New("distributed: controller has left the group")

// writeMsg is the payload of one ordered write broadcast.
type writeMsg struct {
	ReqID  uint64 `json:"req"`
	Origin string `json:"origin"`
	TxID   uint64 `json:"tx"`
	Class  uint8  `json:"class"`
	SQL    string `json:"sql"`
	User   string `json:"user"`
}

// configMsg announces a controller's backend configuration so that peers
// can recover its backends after a failure (§4.1: "at initialization time,
// the controllers exchange their respective backend configurations").
type configMsg struct {
	Origin   string   `json:"origin"`
	Backends []string `json:"backends"`
}

// PeerEvent reports a membership change observed by this controller.
type PeerEvent struct {
	Peer     string
	Joined   bool
	Backends []string // last known backend config of the peer
}

// VDB is one controller's participation in a distributed virtual database.
type VDB struct {
	vdb    *controller.VirtualDatabase
	member *groupcomm.Member
	name   string

	mu      sync.Mutex
	waiters map[uint64]chan submitResult
	peers   map[string][]string // peer -> backend names
	known   map[string]bool     // current view membership
	left    bool

	reqSeq atomic.Uint64
	events chan PeerEvent
	done   chan struct{}
}

type submitResult struct {
	res *backend.Result
	err error
}

// Join attaches a virtual database to a controller group. The returned VDB
// installs itself as the vdb's distributor: every write, commit and abort
// is broadcast with total order and applied by every member in the same
// sequence.
func Join(v *controller.VirtualDatabase, g *groupcomm.Group, controllerName string) (*VDB, error) {
	m, err := g.Join(controllerName)
	if err != nil {
		return nil, err
	}
	d := &VDB{
		vdb:     v,
		member:  m,
		name:    controllerName,
		waiters: make(map[uint64]chan submitResult),
		peers:   make(map[string][]string),
		known:   make(map[string]bool),
		events:  make(chan PeerEvent, 64),
		done:    make(chan struct{}),
	}
	go d.run()
	v.SetDistributor(d)

	// Announce our backend configuration for failure recovery.
	names := make([]string, 0)
	for _, b := range v.Backends() {
		names = append(names, b.Name())
	}
	payload, err := json.Marshal(configMsg{Origin: controllerName, Backends: names})
	if err != nil {
		return nil, err
	}
	if _, err := m.Broadcast("config", payload); err != nil {
		return nil, err
	}
	return d, nil
}

// Name returns the controller name inside the group.
func (d *VDB) Name() string { return d.name }

// Events delivers peer join/failure notifications, carrying the failed
// peer's last known backend configuration so the survivor can recover them.
func (d *VDB) Events() <-chan PeerEvent { return d.events }

// PeerBackends returns the last announced backend names of a peer.
func (d *VDB) PeerBackends(peer string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.peers[peer]...)
}

// Leave detaches from the group; the vdb reverts to purely local operation.
func (d *VDB) Leave() {
	d.mu.Lock()
	if d.left {
		d.mu.Unlock()
		return
	}
	d.left = true
	d.mu.Unlock()
	d.vdb.SetDistributor(nil)
	d.member.Leave()
	<-d.done
}

// SubmitWrite implements controller.Distributor: the operation is broadcast
// with total order and the call returns the local application's outcome.
func (d *VDB) SubmitWrite(txID uint64, class sqlparser.StatementClass, sql string) (*backend.Result, error) {
	d.mu.Lock()
	if d.left {
		d.mu.Unlock()
		return nil, ErrLeft
	}
	reqID := d.reqSeq.Add(1)
	ch := make(chan submitResult, 1)
	d.waiters[reqID] = ch
	d.mu.Unlock()

	payload, err := json.Marshal(writeMsg{
		ReqID: reqID, Origin: d.name, TxID: txID, Class: uint8(class), SQL: sql,
	})
	if err != nil {
		return nil, err
	}
	if _, err := d.member.Broadcast("write", payload); err != nil {
		d.mu.Lock()
		delete(d.waiters, reqID)
		d.mu.Unlock()
		return nil, fmt.Errorf("distributed: broadcast: %w", err)
	}
	r := <-ch
	return r.res, r.err
}

// run is the applier: deliveries arrive strictly in total order, and each
// is handed to a dispatch goroutine chained through a conflict-class
// dependency tracker — a delivery's ticket acquisition waits only for the
// newest earlier conflicting delivery to finish its own acquisition and
// enqueue, so disjoint classes sequence concurrently while every
// conflicting pair keeps its total-order position on all controllers
// (delivery order is the same everywhere, and so are the footprints, so
// every controller chains the same pairs). This removes the serial
// delivery window the old one-at-a-time applier imposed: a delivery stalled
// behind a held class lock no longer prevents disjoint deliveries behind it
// from sequencing. Dispatch is non-blocking past the enqueue (the backends'
// write lanes execute asynchronously), so a write stalled on database locks
// cannot prevent the commit that releases them from being delivered.
// applierBacklog bounds queued-plus-dispatching deliveries, mirroring the
// backpressure of the backends' bounded lane semaphore: when this many
// dispatch goroutines are in flight (e.g. every class is quiesced behind
// LockAllWrites during a re-integration catch-up), the applier stops
// consuming deliveries until some drain. Group members have unbounded
// mailboxes, so a paused applier never blocks the group.
const applierBacklog = 4096

func (d *VDB) run() {
	defer close(d.done)
	app := &applier{
		tracker: conflictsched.NewTracker(),
		slots:   make(chan struct{}, applierBacklog),
	}
	defer app.inflight.Wait()
	msgs := d.member.Deliver()
	views := d.member.Views()
	for {
		select {
		case msg, ok := <-msgs:
			if !ok {
				return
			}
			d.handleMessage(msg, app)
		case view, ok := <-views:
			if !ok {
				return
			}
			d.handleView(view)
		}
	}
}

// applier is the delivery-dispatch state owned by run.
type applier struct {
	tracker  *conflictsched.Tracker
	slots    chan struct{}
	inflight sync.WaitGroup
}

func (d *VDB) handleMessage(msg groupcomm.Message, app *applier) {
	switch msg.Kind {
	case "config":
		var cm configMsg
		if json.Unmarshal(msg.Payload, &cm) == nil && cm.Origin != d.name {
			d.mu.Lock()
			d.peers[cm.Origin] = cm.Backends
			d.mu.Unlock()
		}
	case "write":
		var wm writeMsg
		if err := json.Unmarshal(msg.Payload, &wm); err != nil {
			return
		}
		class := sqlparser.StatementClass(wm.Class)
		// Resolve the delivery's conflict footprint once, in delivery
		// order; DispatchPlanned sequences under exactly this footprint, so
		// the tracker's chains and the sequencer's class locks agree.
		st, tables, global, planErr := d.vdb.PlanWrite(class, wm.SQL)
		app.slots <- struct{}{}
		deps, fin := app.tracker.Enter(deliveryKeys(wm, class, tables, global, planErr))
		app.inflight.Add(1)
		go func() {
			defer func() {
				<-app.slots
				app.inflight.Done()
			}()
			conflictsched.Wait(deps)
			var outs backend.Outcomes
			err := planErr
			if err == nil {
				outs, err = d.vdb.DispatchPlanned(wm.TxID, class, st, wm.SQL, wm.User, tables, global)
			}
			// The class ticket is released: conflicting deliveries behind
			// this one may sequence now, without waiting for execution.
			close(fin)
			if wm.Origin != d.name {
				// Remote origin: outcomes drain here; local failures
				// disable local backends via their callbacks.
				if err == nil {
					_, _ = d.vdb.WaitPolicy(outs)
				}
				return
			}
			d.mu.Lock()
			ch := d.waiters[wm.ReqID]
			delete(d.waiters, wm.ReqID)
			d.mu.Unlock()
			if ch == nil {
				return
			}
			if err != nil {
				ch <- submitResult{err: err}
				return
			}
			res, werr := d.vdb.WaitPolicy(outs)
			ch <- submitResult{res: res, err: werr}
		}()
	}
}

// deliveryKeys maps one delivery to conflict-tracker keys: a write's table
// footprint plus the per-transaction key (a transaction's operations must
// sequence in delivery order even when their tables are disjoint).
// Demarcations are barriers — their conflict class is the transaction's
// accumulated footprint, known only inside the sequencer, so the applier
// conservatively orders them against everything. Global writes (DDL,
// unknown footprints) and deliveries whose SQL fails to parse are barriers
// too.
func deliveryKeys(wm writeMsg, class sqlparser.StatementClass, tables []string, global bool, planErr error) (keys []string, barrier bool) {
	if class == sqlparser.ClassCommit || class == sqlparser.ClassRollback || global || planErr != nil {
		return nil, true
	}
	return conflictsched.KeysWithTx(tables, wm.TxID), false
}

func (d *VDB) handleView(view groupcomm.View) {
	d.mu.Lock()
	prev := d.known
	cur := make(map[string]bool, len(view.Members))
	for _, m := range view.Members {
		cur[m] = true
	}
	d.known = cur
	var evs []PeerEvent
	for m := range cur {
		if m != d.name && !prev[m] {
			evs = append(evs, PeerEvent{Peer: m, Joined: true})
		}
	}
	for m := range prev {
		if m != d.name && !cur[m] {
			evs = append(evs, PeerEvent{Peer: m, Joined: false, Backends: append([]string(nil), d.peers[m]...)})
		}
	}
	d.mu.Unlock()
	for _, ev := range evs {
		select {
		case d.events <- ev:
		default: // never block the applier on a slow consumer
		}
	}
}
