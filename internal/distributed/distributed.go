// Package distributed implements C-JDBC's horizontal scalability (§4.1):
// the schedulers of a virtual database hosted by several controllers are
// synchronized through totally ordered group communication. Only write
// requests and transaction demarcation travel through the group; reads stay
// local to each controller. All other components (scheduler, cache, load
// balancer) are unchanged, exactly as the paper describes.
package distributed

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cjdbc/internal/backend"
	"cjdbc/internal/conflictsched"
	"cjdbc/internal/controller"
	"cjdbc/internal/groupcomm"
	"cjdbc/internal/sqlparser"
)

// ErrLeft is returned when submitting to a distributed vdb that left its group.
var ErrLeft = errors.New("distributed: controller has left the group")

// writeMsg is the payload of one ordered write broadcast. Demarcations
// (COMMIT/ROLLBACK) carry the transaction's accumulated write footprint
// (Tables/Global, with Footprint marking it present), so the appliers can
// chain them through the conflict tracker like ordinary writes instead of
// treating every demarcation as a conservative barrier — disjoint
// transactions' demarcations pipeline. The footprint travels for the
// tracker only; each controller's sequencer still locks its own accumulated
// footprint (identical everywhere, since every controller sequenced the
// same writes).
type writeMsg struct {
	ReqID     uint64   `json:"req"`
	Origin    string   `json:"origin"`
	TxID      uint64   `json:"tx"`
	Class     uint8    `json:"class"`
	SQL       string   `json:"sql"`
	User      string   `json:"user"`
	Tables    []string `json:"tables,omitempty"`
	Global    bool     `json:"global,omitempty"`
	Footprint bool     `json:"fp,omitempty"`
}

// configMsg announces a controller's backend configuration so that peers
// can recover its backends after a failure (§4.1: "at initialization time,
// the controllers exchange their respective backend configurations").
type configMsg struct {
	Origin   string   `json:"origin"`
	Backends []string `json:"backends"`
}

// PeerEvent reports a membership change observed by this controller.
type PeerEvent struct {
	Peer     string
	Joined   bool
	Backends []string // last known backend config of the peer
}

// VDB is one controller's participation in a distributed virtual database.
type VDB struct {
	vdb    *controller.VirtualDatabase
	member *groupcomm.Member
	name   string

	mu      sync.Mutex
	waiters map[uint64]chan submitResult
	peers   map[string][]string // peer -> backend names
	known   map[string]bool     // current view membership
	left    bool

	reqSeq atomic.Uint64
	events chan PeerEvent
	done   chan struct{}
}

// submitResult hands the local dispatch outcome back to the submitting
// client goroutine: the shared outcome channel of the enqueued cluster
// write, or the dispatch error. The client applies the early-response
// policy itself, so no applier-side goroutine ever blocks on execution.
type submitResult struct {
	outs backend.Outcomes
	err  error
}

// Join attaches a virtual database to a controller group. The returned VDB
// installs itself as the vdb's distributor: every write, commit and abort
// is broadcast with total order and applied by every member in the same
// sequence.
func Join(v *controller.VirtualDatabase, g *groupcomm.Group, controllerName string) (*VDB, error) {
	m, err := g.Join(controllerName)
	if err != nil {
		return nil, err
	}
	d := &VDB{
		vdb:     v,
		member:  m,
		name:    controllerName,
		waiters: make(map[uint64]chan submitResult),
		peers:   make(map[string][]string),
		known:   make(map[string]bool),
		events:  make(chan PeerEvent, 64),
		done:    make(chan struct{}),
	}
	go d.run()
	v.SetDistributor(d)

	// Announce our backend configuration for failure recovery.
	names := make([]string, 0)
	for _, b := range v.Backends() {
		names = append(names, b.Name())
	}
	payload, err := json.Marshal(configMsg{Origin: controllerName, Backends: names})
	if err != nil {
		return nil, err
	}
	if _, err := m.Broadcast("config", payload); err != nil {
		return nil, err
	}
	return d, nil
}

// Name returns the controller name inside the group.
func (d *VDB) Name() string { return d.name }

// Events delivers peer join/failure notifications, carrying the failed
// peer's last known backend configuration so the survivor can recover them.
func (d *VDB) Events() <-chan PeerEvent { return d.events }

// PeerBackends returns the last announced backend names of a peer.
func (d *VDB) PeerBackends(peer string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.peers[peer]...)
}

// Leave detaches from the group; the vdb reverts to purely local operation.
func (d *VDB) Leave() {
	d.mu.Lock()
	if d.left {
		d.mu.Unlock()
		return
	}
	d.left = true
	d.mu.Unlock()
	d.vdb.SetDistributor(nil)
	d.member.Leave()
	<-d.done
}

// SubmitWrite implements controller.Distributor: the operation is broadcast
// with total order and the call returns the local application's outcome.
func (d *VDB) SubmitWrite(txID uint64, class sqlparser.StatementClass, sql string) (*backend.Result, error) {
	d.mu.Lock()
	if d.left {
		d.mu.Unlock()
		return nil, ErrLeft
	}
	reqID := d.reqSeq.Add(1)
	ch := make(chan submitResult, 1)
	d.waiters[reqID] = ch
	d.mu.Unlock()

	wm := writeMsg{ReqID: reqID, Origin: d.name, TxID: txID, Class: uint8(class), SQL: sql}
	if class == sqlparser.ClassCommit || class == sqlparser.ClassRollback {
		// Attach the transaction's accumulated footprint. All of the tx's
		// writes have been sequenced locally before the client can demarcate
		// (SubmitWrite returns only after dispatch), so the snapshot is
		// complete — and identical on every controller, which sequenced the
		// same writes.
		wm.Tables, wm.Global = d.vdb.Scheduler().PeekTxFootprint(txID)
		wm.Footprint = true
	}
	payload, err := json.Marshal(wm)
	if err != nil {
		return nil, err
	}
	if _, err := d.member.Broadcast("write", payload); err != nil {
		d.mu.Lock()
		delete(d.waiters, reqID)
		d.mu.Unlock()
		return nil, fmt.Errorf("distributed: broadcast: %w", err)
	}
	r := <-ch
	if r.err != nil {
		return nil, r.err
	}
	return d.vdb.WaitPolicy(r.outs)
}

// run is the applier: deliveries arrive strictly in total order, and each
// is submitted to a dispatch worker pool chained through the conflict-class
// dependency rule — a delivery's ticket acquisition waits only for the
// newest earlier conflicting delivery to finish its own acquisition and
// enqueue, so disjoint classes sequence concurrently while every
// conflicting pair keeps its total-order position on all controllers
// (delivery order is the same everywhere, and so are the footprints, so
// every controller chains the same pairs). Ready deliveries are handed to a
// fixed set of dispatch workers instead of one goroutine per delivery; a
// dispatch ends at the enqueue (the backends' write pipeline executes
// asynchronously, and the submitting client applies the early-response
// policy itself), so a write stalled on database locks cannot prevent the
// commit that releases them from being delivered. A dispatch blocked inside
// LockClass (its class held by a local writer or quiesced by
// LockAllWrites) occupies one worker; disjoint deliveries keep flowing on
// the others.
//
// applierBacklog bounds queued-plus-dispatching deliveries, mirroring the
// backpressure of the backends' bounded lane semaphore: past it the applier
// stops consuming deliveries until some drain. Group members have unbounded
// mailboxes, so a paused applier never blocks the group.
const applierBacklog = 4096

// applierWorkers sizes the dispatch pool. Dispatch is enqueue-only and
// cheap, but can block on a held class lock; a few spare workers keep
// disjoint classes sequencing past a stalled one even on one-CPU hosts.
var applierWorkers = max(4, runtime.GOMAXPROCS(0))

func (d *VDB) run() {
	defer close(d.done)
	app := &applier{
		pool:  conflictsched.NewPool(applierWorkers),
		slots: make(chan struct{}, applierBacklog),
	}
	defer app.pool.Stop()
	msgs := d.member.Deliver()
	views := d.member.Views()
	for {
		select {
		case msg, ok := <-msgs:
			if !ok {
				return
			}
			d.handleMessage(msg, app)
		case view, ok := <-views:
			if !ok {
				return
			}
			d.handleView(view)
		}
	}
}

// applier is the delivery-dispatch state owned by run.
type applier struct {
	pool  *conflictsched.Pool
	slots chan struct{}
}

func (d *VDB) handleMessage(msg groupcomm.Message, app *applier) {
	switch msg.Kind {
	case "config":
		var cm configMsg
		if json.Unmarshal(msg.Payload, &cm) == nil && cm.Origin != d.name {
			d.mu.Lock()
			d.peers[cm.Origin] = cm.Backends
			d.mu.Unlock()
		}
	case "write":
		var wm writeMsg
		if err := json.Unmarshal(msg.Payload, &wm); err != nil {
			return
		}
		class := sqlparser.StatementClass(wm.Class)
		// Resolve the delivery's conflict footprint once, in delivery
		// order; DispatchPlanned sequences under exactly this footprint, so
		// the tracker's chains and the sequencer's class locks agree.
		st, tables, global, planErr := d.vdb.PlanWrite(class, wm.SQL)
		app.slots <- struct{}{}
		keys, barrier := deliveryKeys(wm, class, tables, global, planErr)
		app.pool.Submit(keys, barrier, func() {
			defer func() { <-app.slots }()
			var outs backend.Outcomes
			err := planErr
			if err == nil {
				outs, err = d.vdb.DispatchPlanned(wm.TxID, class, st, wm.SQL, wm.User, tables, global)
			}
			// Dispatch ends here — the class ticket is released and
			// conflicting deliveries behind this one may sequence without
			// waiting for execution. Remote-origin outcomes need no waiter:
			// the channel is buffered for every backend, and local failures
			// disable local backends via their own callbacks.
			if wm.Origin != d.name {
				return
			}
			d.mu.Lock()
			ch := d.waiters[wm.ReqID]
			delete(d.waiters, wm.ReqID)
			d.mu.Unlock()
			if ch != nil {
				ch <- submitResult{outs: outs, err: err}
			}
		})
	}
}

// deliveryKeys maps one delivery to conflict-tracker keys: a write's table
// footprint plus the per-transaction key (a transaction's operations must
// sequence in delivery order even when their tables are disjoint).
// Demarcations chain through the footprint their broadcast carries — the
// transaction's accumulated write footprint, identical on every controller
// — so disjoint transactions' demarcations pipeline; a demarcation whose
// footprint is global (the tx ran DDL) or missing (an old peer) is a
// barrier. Global writes (DDL, unknown footprints) and deliveries whose SQL
// fails to parse are barriers too.
func deliveryKeys(wm writeMsg, class sqlparser.StatementClass, tables []string, global bool, planErr error) (keys []string, barrier bool) {
	if class == sqlparser.ClassCommit || class == sqlparser.ClassRollback {
		if !wm.Footprint || wm.Global {
			return nil, true
		}
		return conflictsched.KeysWithTx(wm.Tables, wm.TxID), false
	}
	if global || planErr != nil {
		return nil, true
	}
	return conflictsched.KeysWithTx(tables, wm.TxID), false
}

func (d *VDB) handleView(view groupcomm.View) {
	d.mu.Lock()
	prev := d.known
	cur := make(map[string]bool, len(view.Members))
	for _, m := range view.Members {
		cur[m] = true
	}
	d.known = cur
	var evs []PeerEvent
	for m := range cur {
		if m != d.name && !prev[m] {
			evs = append(evs, PeerEvent{Peer: m, Joined: true})
		}
	}
	for m := range prev {
		if m != d.name && !cur[m] {
			evs = append(evs, PeerEvent{Peer: m, Joined: false, Backends: append([]string(nil), d.peers[m]...)})
		}
	}
	d.mu.Unlock()
	for _, ev := range evs {
		select {
		case d.events <- ev:
		default: // never block the applier on a slow consumer
		}
	}
}
