package distributed

import (
	"fmt"
	"testing"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/controller"
	"cjdbc/internal/groupcomm"
	"cjdbc/internal/sqlengine"
)

// node is one controller hosting the shared vdb with one local backend.
type node struct {
	ctrl   *controller.Controller
	vdb    *controller.VirtualDatabase
	dist   *VDB
	engine *sqlengine.Engine
}

func mkCluster(t *testing.T, g *groupcomm.Group, n int) []*node {
	t.Helper()
	nodes := make([]*node, n)
	for i := 0; i < n; i++ {
		c := controller.New(fmt.Sprintf("ctrl%d", i), uint16(i+1))
		v, err := c.AddVirtualDatabase(controller.VDBConfig{Name: "app", ParallelTx: true})
		if err != nil {
			t.Fatal(err)
		}
		e := sqlengine.New(fmt.Sprintf("db%d", i))
		s := e.NewSession()
		s.ExecSQL("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)")
		s.Close()
		b := backend.New(backend.Config{Name: fmt.Sprintf("db%d", i), Driver: &backend.EngineDriver{Engine: e}})
		t.Cleanup(b.Close)
		if err := v.AddBackend(b); err != nil {
			t.Fatal(err)
		}
		d, err := Join(v, g, c.Name())
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &node{ctrl: c, vdb: v, dist: d, engine: e}
	}
	return nodes
}

func count(t *testing.T, e *sqlengine.Engine, q string) int64 {
	t.Helper()
	s := e.NewSession()
	defer s.Close()
	res, err := s.ExecSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows[0][0].I
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestWritePropagatesToAllControllers(t *testing.T) {
	g := groupcomm.NewGroup("app")
	nodes := mkCluster(t, g, 3)
	defer func() {
		for _, n := range nodes {
			n.dist.Leave()
		}
	}()

	s, err := nodes[0].vdb.NewSession("u", "")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Exec("INSERT INTO t (id, v) VALUES (1, 'x')", nil); err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		n := n
		waitFor(t, func() bool { return count(t, n.engine, "SELECT COUNT(*) FROM t") == 1 },
			fmt.Sprintf("write on controller %d", i))
	}
}

func TestTransactionsAcrossControllers(t *testing.T) {
	g := groupcomm.NewGroup("app")
	nodes := mkCluster(t, g, 2)
	defer func() {
		for _, n := range nodes {
			n.dist.Leave()
		}
	}()

	s, _ := nodes[0].vdb.NewSession("u", "")
	defer s.Close()
	if _, err := s.Exec("BEGIN", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO t (id, v) VALUES (1, 'tx')", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("COMMIT", nil); err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		n := n
		waitFor(t, func() bool { return count(t, n.engine, "SELECT COUNT(*) FROM t") == 1 },
			fmt.Sprintf("commit on controller %d", i))
	}

	// Rollback leaves nothing anywhere.
	s.Exec("BEGIN", nil)
	s.Exec("INSERT INTO t (id, v) VALUES (2, 'gone')", nil)
	s.Exec("ROLLBACK", nil)
	time.Sleep(20 * time.Millisecond)
	for i, n := range nodes {
		if got := count(t, n.engine, "SELECT COUNT(*) FROM t"); got != 1 {
			t.Errorf("controller %d after rollback: %d rows", i, got)
		}
	}
}

func TestWritesFromBothControllersConverge(t *testing.T) {
	g := groupcomm.NewGroup("app")
	nodes := mkCluster(t, g, 2)
	defer func() {
		for _, n := range nodes {
			n.dist.Leave()
		}
	}()

	s0, _ := nodes[0].vdb.NewSession("u", "")
	s1, _ := nodes[1].vdb.NewSession("u", "")
	defer s0.Close()
	defer s1.Close()

	done := make(chan error, 2)
	go func() {
		for i := 0; i < 20; i++ {
			if _, err := s0.Exec(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'a')", i), nil); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 100; i < 120; i++ {
			if _, err := s1.Exec(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'b')", i), nil); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range nodes {
		n := n
		waitFor(t, func() bool { return count(t, n.engine, "SELECT COUNT(*) FROM t") == 40 },
			fmt.Sprintf("convergence on controller %d", i))
	}
}

func TestReadsStayLocal(t *testing.T) {
	g := groupcomm.NewGroup("app")
	nodes := mkCluster(t, g, 2)
	defer func() {
		for _, n := range nodes {
			n.dist.Leave()
		}
	}()

	s, _ := nodes[0].vdb.NewSession("u", "")
	defer s.Close()
	s.Exec("INSERT INTO t (id, v) VALUES (1, 'x')", nil)
	waitFor(t, func() bool { return count(t, nodes[1].engine, "SELECT COUNT(*) FROM t") == 1 }, "propagation")

	remoteOps := nodes[1].vdb.Backends()[0].Ops()
	for i := 0; i < 5; i++ {
		if _, err := s.Exec("SELECT v FROM t WHERE id = 1", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := nodes[1].vdb.Backends()[0].Ops(); got != remoteOps {
		t.Errorf("reads crossed controllers: ops %d -> %d", remoteOps, got)
	}
}

func TestControllerFailureEventCarriesBackendConfig(t *testing.T) {
	g := groupcomm.NewGroup("app")
	nodes := mkCluster(t, g, 2)
	defer nodes[0].dist.Leave()

	// Wait until ctrl0 learned ctrl1's config.
	waitFor(t, func() bool { return len(nodes[0].dist.PeerBackends("ctrl1")) == 1 }, "config exchange")

	nodes[1].dist.Leave() // simulate failure

	deadline := time.After(2 * time.Second)
	for {
		select {
		case ev := <-nodes[0].dist.Events():
			if ev.Joined {
				continue
			}
			if ev.Peer != "ctrl1" {
				t.Fatalf("unexpected peer: %+v", ev)
			}
			if len(ev.Backends) != 1 || ev.Backends[0] != "db1" {
				t.Fatalf("backend config not carried: %+v", ev)
			}
			return
		case <-deadline:
			t.Fatal("no failure event")
		}
	}
}

func TestSurvivorKeepsServingAfterPeerFailure(t *testing.T) {
	g := groupcomm.NewGroup("app")
	nodes := mkCluster(t, g, 2)
	defer nodes[0].dist.Leave()

	nodes[1].dist.Leave()

	s, _ := nodes[0].vdb.NewSession("u", "")
	defer s.Close()
	if _, err := s.Exec("INSERT INTO t (id, v) VALUES (5, 'alive')", nil); err != nil {
		t.Fatalf("write after peer failure: %v", err)
	}
	if got := count(t, nodes[0].engine, "SELECT COUNT(*) FROM t"); got != 1 {
		t.Errorf("rows = %d", got)
	}
}

// TestDisjointDeliveriesBypassStalledClass: the applier no longer hands
// deliveries to the sequencer one at a time — a delivery blocked on a held
// class lock must not prevent a later delivery of a disjoint class from
// sequencing and executing (the ROADMAP's "sequential delivery window").
func TestDisjointDeliveriesBypassStalledClass(t *testing.T) {
	g := groupcomm.NewGroup("app")
	nodes := mkCluster(t, g, 2)
	defer func() {
		for _, n := range nodes {
			n.dist.Leave()
		}
	}()

	// Both tables exist everywhere before the class lock is taken (DDL is a
	// barrier and must flush first).
	s, _ := nodes[0].vdb.NewSession("u", "")
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE hot (id INTEGER PRIMARY KEY)", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CREATE TABLE cold (id INTEGER PRIMARY KEY)", nil); err != nil {
		t.Fatal(err)
	}

	// Stall the "hot" conflict class on controller 0: the next delivery
	// touching hot blocks inside LockClass until the ticket is released.
	ticket := nodes[0].vdb.Scheduler().LockClass([]string{"hot"}, false)

	hotDone := make(chan error, 1)
	go func() {
		_, err := s.Exec("INSERT INTO hot (id) VALUES (1)", nil)
		hotDone <- err
	}()
	// The hot write must be stuck (its class is locked), not completed.
	select {
	case err := <-hotDone:
		ticket.Unlock()
		t.Fatalf("hot write completed under a held class lock (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}

	// A later delivery on a disjoint class sails past the stalled one.
	s2, _ := nodes[1].vdb.NewSession("u", "")
	defer s2.Close()
	coldDone := make(chan error, 1)
	go func() {
		_, err := s2.Exec("INSERT INTO cold (id) VALUES (1)", nil)
		coldDone <- err
	}()
	select {
	case err := <-coldDone:
		if err != nil {
			ticket.Unlock()
			t.Fatalf("cold write failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		ticket.Unlock()
		t.Fatal("disjoint delivery stuck behind a stalled class: applier still serializes deliveries")
	}

	// Releasing the class lets the hot write finish, and both rows land on
	// both controllers.
	ticket.Unlock()
	if err := <-hotDone; err != nil {
		t.Fatalf("hot write after release: %v", err)
	}
	for i, n := range nodes {
		n := n
		waitFor(t, func() bool {
			return count(t, n.engine, "SELECT COUNT(*) FROM hot") == 1 &&
				count(t, n.engine, "SELECT COUNT(*) FROM cold") == 1
		}, fmt.Sprintf("convergence on controller %d", i))
	}
}

func TestSubmitAfterLeaveFails(t *testing.T) {
	g := groupcomm.NewGroup("app")
	nodes := mkCluster(t, g, 1)
	nodes[0].dist.Leave()
	// The vdb reverted to local mode: writes still work locally.
	s, _ := nodes[0].vdb.NewSession("u", "")
	defer s.Close()
	if _, err := s.Exec("INSERT INTO t (id, v) VALUES (1, 'local')", nil); err != nil {
		t.Fatalf("local write after leave: %v", err)
	}
	nodes[0].dist.Leave() // idempotent
}

// TestDisjointTxDemarcationsPipeline: commit broadcasts carry the
// transaction's write footprint, so a commit stalled behind a held conflict
// class no longer acts as a barrier for demarcations of disjoint
// transactions — they pipeline through the applier. Before this PR every
// demarcation was a conservative barrier and txB's commit would have been
// stuck behind txA's.
func TestDisjointTxDemarcationsPipeline(t *testing.T) {
	g := groupcomm.NewGroup("app")
	nodes := mkCluster(t, g, 2)
	defer func() {
		for _, n := range nodes {
			n.dist.Leave()
		}
	}()

	s, _ := nodes[0].vdb.NewSession("u", "")
	defer s.Close()
	for _, q := range []string{
		"CREATE TABLE hot (id INTEGER PRIMARY KEY)",
		"CREATE TABLE cold (id INTEGER PRIMARY KEY)",
	} {
		if _, err := s.Exec(q, nil); err != nil {
			t.Fatal(err)
		}
	}

	// txA writes hot and fully sequences its write, then its commit is
	// stalled: the hot class is held on controller 0, so the commit's
	// dispatch blocks inside LockClass({hot}) there.
	sA, _ := nodes[0].vdb.NewSession("u", "")
	defer sA.Close()
	if _, err := sA.Exec("BEGIN", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sA.Exec("INSERT INTO hot (id) VALUES (1)", nil); err != nil {
		t.Fatal(err)
	}
	ticket := nodes[0].vdb.Scheduler().LockClass([]string{"hot"}, false)
	commitADone := make(chan error, 1)
	go func() {
		_, err := sA.Exec("COMMIT", nil)
		commitADone <- err
	}()
	select {
	case err := <-commitADone:
		ticket.Unlock()
		t.Fatalf("txA commit completed under a held class lock (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}

	// txB, also submitted on controller 0, touches only cold: its write and
	// its commit must sail past txA's stalled commit.
	sB, _ := nodes[0].vdb.NewSession("u", "")
	defer sB.Close()
	commitBDone := make(chan error, 1)
	go func() {
		var err error
		for _, q := range []string{"BEGIN", "INSERT INTO cold (id) VALUES (1)", "COMMIT"} {
			if _, err = sB.Exec(q, nil); err != nil {
				break
			}
		}
		commitBDone <- err
	}()
	select {
	case err := <-commitBDone:
		if err != nil {
			ticket.Unlock()
			t.Fatalf("txB failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		ticket.Unlock()
		t.Fatal("disjoint transaction's commit stuck behind a stalled demarcation: commits still act as barriers")
	}

	// Releasing the class completes txA everywhere.
	ticket.Unlock()
	if err := <-commitADone; err != nil {
		t.Fatalf("txA commit after release: %v", err)
	}
	for i, n := range nodes {
		n := n
		waitFor(t, func() bool {
			return count(t, n.engine, "SELECT COUNT(*) FROM hot") == 1 &&
				count(t, n.engine, "SELECT COUNT(*) FROM cold") == 1
		}, fmt.Sprintf("convergence on controller %d", i))
	}
}
