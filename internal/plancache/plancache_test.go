package plancache

import (
	"fmt"
	"sync"
	"testing"

	"cjdbc/internal/shardutil"
	"cjdbc/internal/sqlparser"
	"cjdbc/internal/sqlval"
)

func plan(t *testing.T, sql string) *Plan {
	t.Helper()
	key := Normalize(sql)
	st, err := sqlparser.Parse(key)
	if err != nil {
		t.Fatal(err)
	}
	return Build(key, st)
}

func TestBuildMetadata(t *testing.T) {
	p := plan(t, "SELECT a, b FROM t JOIN u ON t.id = u.id WHERE c = ?")
	if p.Class != sqlparser.ClassRead {
		t.Errorf("class = %v", p.Class)
	}
	if len(p.Tables) != 2 {
		t.Errorf("tables = %v", p.Tables)
	}
	if p.NumParams != 1 {
		t.Errorf("params = %d", p.NumParams)
	}
	if !p.ReadColsOK || len(p.ReadCols) == 0 {
		t.Errorf("read cols = %v ok=%v", p.ReadCols, p.ReadColsOK)
	}
	if p.HasMacros {
		t.Error("no macros expected")
	}

	w := plan(t, "INSERT INTO t (a, ts) VALUES (1, NOW())")
	if w.Class != sqlparser.ClassWrite || !w.HasMacros {
		t.Errorf("write plan: class=%v macros=%v", w.Class, w.HasMacros)
	}
}

func TestHitMissStats(t *testing.T) {
	c := New(0)
	q := "SELECT a FROM t"
	if c.Get(q) != nil {
		t.Fatal("unexpected hit")
	}
	c.Put(plan(t, q))
	if c.Get(q) == nil {
		t.Fatal("expected hit")
	}
	st := c.StatsSnapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats: %+v", st)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestNormalizeSharedWithResultCacheKey(t *testing.T) {
	c := New(0)
	c.Put(plan(t, "SELECT a FROM t"))
	if c.Get(Normalize("  SELECT a FROM t  ")) == nil {
		t.Fatal("normalized key should hit")
	}
}

func TestLRUEviction(t *testing.T) {
	// Small capacity stays on one shard: eviction is exact global LRU.
	c := New(3)
	for i := 0; i < 5; i++ {
		c.Put(plan(t, fmt.Sprintf("SELECT a FROM t WHERE id = %d", i)))
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if c.Get("SELECT a FROM t WHERE id = 0") != nil {
		t.Error("oldest entry survived")
	}
	if c.Get("SELECT a FROM t WHERE id = 4") == nil {
		t.Error("newest entry evicted")
	}
	if st := c.StatsSnapshot(); st.Evictions != 2 {
		t.Errorf("evictions = %d", st.Evictions)
	}
}

func TestShardedCapacity(t *testing.T) {
	// Large capacity spreads over shards; total admissions stay bounded by
	// roughly the configured capacity (per-shard rounding allowed).
	c := New(2048)
	for i := 0; i < 4096; i++ {
		c.Put(plan(t, fmt.Sprintf("SELECT a FROM t WHERE id = %d", i)))
	}
	if n := c.Len(); n > 2048+shardutil.MaxShards {
		t.Fatalf("len = %d exceeds capacity", n)
	}
}

func TestPutRefreshesDuplicate(t *testing.T) {
	c := New(0)
	q := "SELECT a FROM t"
	c.Put(plan(t, q))
	c.Put(plan(t, q))
	if c.Len() != 1 {
		t.Fatalf("duplicate admitted twice: len=%d", c.Len())
	}
}

func TestFlush(t *testing.T) {
	c := New(0)
	c.Put(plan(t, "SELECT a FROM t"))
	c.Flush()
	if c.Len() != 0 || c.Get("SELECT a FROM t") != nil {
		t.Fatal("flush incomplete")
	}
}

// TestCachedPlanNotMutatedByBinding is the immutability contract: binding
// parameters into a clone of the cached tree must never change the cached
// plan, which other goroutines may be reading concurrently.
func TestCachedPlanNotMutatedByBinding(t *testing.T) {
	c := New(0)
	q := "SELECT a FROM t WHERE id = ? AND v = ?"
	c.Put(plan(t, q))
	p := c.Get(q)
	before := sqlparser.Render(p.Stmt)

	for i := 0; i < 10; i++ {
		cl := p.Stmt.Clone()
		if err := sqlparser.BindParams(cl, []sqlval.Value{sqlval.Int(int64(i)), sqlval.String_("x")}); err != nil {
			t.Fatal(err)
		}
		bound := sqlparser.Render(cl)
		if bound == before {
			t.Fatal("binding had no effect on the clone")
		}
	}
	if after := sqlparser.Render(c.Get(q).Stmt); after != before {
		t.Fatalf("cached plan mutated by binding:\n before %s\n after  %s", before, after)
	}
	if got := sqlparser.NumParams(c.Get(q).Stmt); got != 2 {
		t.Fatalf("cached plan lost its placeholders: %d", got)
	}
}

// TestConcurrentStress hammers the cache from 16 goroutines; run with -race.
func TestConcurrentStress(t *testing.T) {
	c := New(256)
	queries := make([]*Plan, 64)
	for i := range queries {
		queries[i] = plan(t, fmt.Sprintf("SELECT a FROM t%d WHERE id = ?", i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				p := queries[(g*31+i)%len(queries)]
				if got := c.Get(p.SQL); got == nil {
					c.Put(p)
				} else {
					// Bind into a clone, as the request manager does.
					cl := got.Stmt.Clone()
					if err := sqlparser.BindParams(cl, []sqlval.Value{sqlval.Int(int64(i))}); err != nil {
						t.Error(err)
						return
					}
				}
				if i%97 == 0 {
					_ = c.Len()
					_ = c.StatsSnapshot()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestOfferDoorkeeperDefersOneOffs: a literal-bound text is admitted only
// on its second sighting, while a parameterized text admits immediately —
// the admission policy that keeps auto-generated one-off statements from
// churning the LRU.
func TestOfferDoorkeeperDefersOneOffs(t *testing.T) {
	c := New(64)

	lit := plan(t, "SELECT a FROM t WHERE id = 42")
	c.Offer(lit)
	if got := c.Get(lit.SQL); got != nil {
		t.Fatal("one-off literal text admitted on first sight")
	}
	c.Offer(lit)
	if got := c.Get(lit.SQL); got == nil {
		t.Fatal("repeating literal text not admitted on second sight")
	}

	param := plan(t, "SELECT a FROM t WHERE id = ?")
	c.Offer(param)
	if got := c.Get(param.SQL); got == nil {
		t.Fatal("parameterized text must admit immediately")
	}

	st := c.StatsSnapshot()
	if st.Deferred != 1 {
		t.Fatalf("deferred = %d, want 1", st.Deferred)
	}
}

// TestOfferDoorkeeperBoundsChurn: a stream of unique one-off texts leaves
// the cache (nearly) untouched, where Put would have cycled the whole LRU.
func TestOfferDoorkeeperBoundsChurn(t *testing.T) {
	c := New(64)
	hot := plan(t, "SELECT a FROM t WHERE id = 1")
	c.Offer(hot)
	c.Offer(hot) // admitted
	if c.Get(hot.SQL) == nil {
		t.Fatal("hot plan not cached")
	}
	for i := 0; i < 10000; i++ {
		c.Offer(plan(t, fmt.Sprintf("INSERT INTO t (id) VALUES (%d)", i)))
	}
	if c.Get(hot.SQL) == nil {
		t.Fatal("one-off flood evicted the hot plan through the doorkeeper")
	}
	if got := c.StatsSnapshot().Deferred; got < 9000 {
		t.Fatalf("deferred = %d, want most of the 10000 one-offs held out", got)
	}
}
