// Package plancache implements the request manager's parsing cache
// (§2.4.2): a statement is parsed and analyzed once, and every later
// execution of the same SQL text reuses the parsed tree and its precomputed
// routing metadata. Combined with the result cache this keeps the
// controller's per-request overhead to a hash lookup on repeat statements.
//
// Cached plans are immutable by contract: callers that need to mutate the
// tree (parameter binding, macro rewriting) clone it first via
// Statement.Clone. The cache itself is a sharded LRU — per-shard mutex and
// recency list — so concurrent sessions do not serialize on one lock.
package plancache

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"

	"cjdbc/internal/shardutil"
	"cjdbc/internal/sqlparser"
)

// DefaultMaxEntries bounds the cache when the configuration leaves the
// capacity at zero.
const DefaultMaxEntries = 4096

// Plan is one parsed, analyzed statement. All fields are computed once at
// admission and never written afterwards, so a Plan may be read from any
// goroutine without synchronization.
type Plan struct {
	// SQL is the normalized statement text, which is also the cache key.
	SQL string
	// Stmt is the shared parsed tree. Never mutate it: clone first.
	Stmt sqlparser.Statement
	// Class is the routing class (read / write / demarcation).
	Class sqlparser.StatementClass
	// Tables lists the referenced tables (lower-cased, deduplicated).
	Tables []string
	// ReadCols enumerates the columns a read references, when enumerable.
	ReadCols []string
	// ReadColsOK reports whether ReadCols is exhaustive (false for SELECT *).
	ReadColsOK bool
	// NumParams is the number of ? placeholders.
	NumParams int
	// HasMacros reports whether the tree contains NOW()/RAND()-style macros
	// the scheduler must rewrite per execution.
	HasMacros bool
	// ConflictTables / ConflictGlobal are the statement's precomputed
	// conflict class (sorted, deduplicated table footprint, or
	// conflicts-with-everything) for the scheduler's conflict-class write
	// sequencing.
	ConflictTables []string
	ConflictGlobal bool
	// Access is the statement's access-shape summary (indexable conjuncts,
	// ORDER BY elidability). Build also attaches it to the statement tree,
	// where clones inherit it, so engine cache hits skip re-planning the
	// shape per execution. nil for statement kinds without a WHERE clause.
	Access *sqlparser.AccessInfo
}

// Normalize turns SQL text into the cache key. It matches the result cache's
// key normalization so one statement text addresses both caches identically.
func Normalize(sql string) string { return strings.TrimSpace(sql) }

// Build analyzes a freshly parsed statement into an immutable Plan. sql must
// already be normalized.
func Build(sql string, st sqlparser.Statement) *Plan {
	cols, colsOK := sqlparser.ReadColumns(st)
	cTables, cGlobal := sqlparser.ConflictClass(st)
	var access *sqlparser.AccessInfo
	switch s := st.(type) {
	case *sqlparser.Select:
		access = sqlparser.AnalyzeAccess(s.Where, s.OrderBy, s.Items)
		s.Access = access
	case *sqlparser.Update:
		access = sqlparser.AnalyzeAccess(s.Where, nil, nil)
		s.Access = access
	case *sqlparser.Delete:
		access = sqlparser.AnalyzeAccess(s.Where, nil, nil)
		s.Access = access
	}
	return &Plan{
		SQL:            sql,
		Stmt:           st,
		Class:          sqlparser.Classify(st),
		Tables:         st.Tables(),
		ReadCols:       cols,
		ReadColsOK:     colsOK,
		NumParams:      sqlparser.NumParams(st),
		HasMacros:      sqlparser.HasMacros(st),
		ConflictTables: cTables,
		ConflictGlobal: cGlobal,
		Access:         access,
	}
}

// Stats counts cache activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Puts      int64
	Evictions int64
	// Deferred counts Offer calls that the doorkeeper held out of the LRU
	// (first sight of a literal-bound text).
	Deferred int64
}

// Cache is a sharded LRU of parsed plans, safe for concurrent use.
type Cache struct {
	shards []shard
	mask   uint32

	hits      atomic.Int64
	misses    atomic.Int64
	puts      atomic.Int64
	evictions atomic.Int64
	deferred  atomic.Int64
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*list.Element // value: *Plan wrapped in lruItem
	lru     *list.List               // front = most recent
	max     int
	// recent is the admission doorkeeper: one hash slot per recently missed
	// literal-bound statement text (0 = empty). A one-off statement leaves
	// only its hash here; only a second miss while the hash survives admits
	// the plan, so auto-generated never-repeating SQL cannot churn the LRU.
	recent []uint32
}

type lruItem struct {
	key  string
	plan *Plan
}

// New creates a cache holding up to maxEntries plans (0 means
// DefaultMaxEntries). Capacity is split evenly across shards.
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	n := shardutil.Count(maxEntries)
	perShard := (maxEntries + n - 1) / n
	c := &Cache{shards: make([]shard, n), mask: uint32(n - 1)}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*list.Element)
		c.shards[i].lru = list.New()
		c.shards[i].max = perShard
		c.shards[i].recent = make([]uint32, doorkeeperSlots)
	}
	return c
}

// doorkeeperSlots sizes each shard's recent-miss table. Collisions only
// admit a one-off early — never reject a repeater — so small is fine.
const doorkeeperSlots = 512

func (c *Cache) shardFor(key string) *shard {
	return &c.shards[shardutil.Hash(key)&c.mask]
}

// Get returns the cached plan for normalized SQL text, or nil on miss.
func (c *Cache) Get(sql string) *Plan {
	s := c.shardFor(sql)
	s.mu.Lock()
	el, ok := s.entries[sql]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	s.lru.MoveToFront(el)
	p := el.Value.(*lruItem).plan
	s.mu.Unlock()
	c.hits.Add(1)
	return p
}

// Offer submits a freshly built plan for admission. Parameterized plans
// (placeholders: the prepared-statement shape that repeats by construction)
// admit immediately; literal-bound plans pass the doorkeeper — admitted
// only on their second sighting — mirroring how the ordered/distributed
// write path bypasses admission for its literal-bound SQL. This keeps
// auto-generated one-off statements (unique literals baked into the text)
// from evicting the hot repeating plans the cache exists for.
func (c *Cache) Offer(p *Plan) {
	if p.NumParams > 0 {
		c.Put(p)
		return
	}
	h := shardutil.Hash(p.SQL)
	if h == 0 {
		h = 1 // 0 marks an empty doorkeeper slot
	}
	s := c.shardFor(p.SQL)
	slot := (h >> 7) % doorkeeperSlots
	s.mu.Lock()
	seen := s.recent[slot] == h
	if !seen {
		s.recent[slot] = h
	}
	s.mu.Unlock()
	if !seen {
		c.deferred.Add(1)
		return
	}
	c.Put(p)
}

// Put admits a plan, evicting the shard's least recently used entry when
// over capacity. Re-admitting an existing key refreshes its recency.
func (c *Cache) Put(p *Plan) {
	s := c.shardFor(p.SQL)
	s.mu.Lock()
	if el, dup := s.entries[p.SQL]; dup {
		el.Value.(*lruItem).plan = p
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		c.puts.Add(1)
		return
	}
	s.entries[p.SQL] = s.lru.PushFront(&lruItem{key: p.SQL, plan: p})
	var evicted int64
	for len(s.entries) > s.max {
		oldest := s.lru.Back()
		if oldest == nil {
			break
		}
		it := oldest.Value.(*lruItem)
		delete(s.entries, it.key)
		s.lru.Remove(oldest)
		evicted++
	}
	s.mu.Unlock()
	c.puts.Add(1)
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Flush empties the cache.
func (c *Cache) Flush() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[string]*list.Element)
		s.lru.Init()
		s.mu.Unlock()
	}
}

// StatsSnapshot returns a copy of the counters.
func (c *Cache) StatsSnapshot() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Puts:      c.puts.Load(),
		Evictions: c.evictions.Load(),
		Deferred:  c.deferred.Load(),
	}
}
