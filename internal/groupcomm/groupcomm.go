// Package groupcomm provides group membership and reliable totally ordered
// broadcast, the services C-JDBC takes from JGroups (§4.1) to synchronize
// the schedulers of a virtual database replicated over several controllers.
//
// The implementation is a sequencer protocol: a hub assigns a global
// sequence number to every message and delivers messages to every member in
// sequence order, including the sender. Membership changes (join, leave,
// failure) produce view events ordered relative to messages. Members have
// unbounded mailboxes so a slow member never blocks the group.
package groupcomm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by group operations.
var (
	// ErrLeft is returned when operating on a member that left the group.
	ErrLeft = errors.New("groupcomm: member has left the group")
)

// Message is one totally ordered broadcast.
type Message struct {
	Seq     uint64
	Sender  string
	Kind    string
	Payload []byte
}

// View is a membership snapshot. Members are sorted; the first member acts
// as coordinator when one is needed.
type View struct {
	ID      uint64
	Members []string
}

// Coordinator returns the first member of the view, or "".
func (v View) Coordinator() string {
	if len(v.Members) == 0 {
		return ""
	}
	return v.Members[0]
}

// Contains reports whether name is in the view.
func (v View) Contains(name string) bool {
	for _, m := range v.Members {
		if m == name {
			return true
		}
	}
	return false
}

// Group is one process group (one JGroups channel). Safe for concurrent use.
type Group struct {
	name string

	mu      sync.Mutex
	seq     uint64
	viewID  uint64
	members map[string]*Member
}

// NewGroup creates an empty group with the given name.
func NewGroup(name string) *Group {
	return &Group{name: name, members: make(map[string]*Member)}
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// event is either a message or a view change, queued in order.
type event struct {
	msg  *Message
	view *View
}

// Member is one group participant.
type Member struct {
	group *Group
	name  string

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []event
	closed bool

	msgs  chan Message
	views chan View
	done  chan struct{}
}

// Join adds a member to the group. The new member (and every existing one)
// receives the updated view.
func (g *Group) Join(name string) (*Member, error) {
	m := &Member{
		group: g,
		name:  name,
		msgs:  make(chan Message, 64),
		views: make(chan View, 16),
		done:  make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	g.mu.Lock()
	if _, dup := g.members[name]; dup {
		g.mu.Unlock()
		return nil, fmt.Errorf("groupcomm: member %q already in group %q", name, g.name)
	}
	g.members[name] = m
	g.bumpViewLocked()
	g.mu.Unlock()
	go m.pump()
	return m, nil
}

// bumpViewLocked emits a new view to all members; caller holds g.mu.
func (g *Group) bumpViewLocked() {
	g.viewID++
	names := make([]string, 0, len(g.members))
	for n := range g.members {
		names = append(names, n)
	}
	sort.Strings(names)
	v := View{ID: g.viewID, Members: names}
	for _, m := range g.members {
		m.enqueue(event{view: &v})
	}
}

// CurrentView returns the latest membership.
func (g *Group) CurrentView() View {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.members))
	for n := range g.members {
		names = append(names, n)
	}
	sort.Strings(names)
	return View{ID: g.viewID, Members: names}
}

// Name returns the member name.
func (m *Member) Name() string { return m.name }

// Deliver returns the totally ordered message stream. Every broadcast,
// including the member's own, appears here exactly once, in the same order
// at every member.
func (m *Member) Deliver() <-chan Message { return m.msgs }

// Views returns the membership change stream.
func (m *Member) Views() <-chan View { return m.views }

// Broadcast sends a message with total order to all members including the
// sender. It returns once the message has been sequenced (delivery to local
// mailboxes is atomic with sequencing, so ordering is identical everywhere).
func (m *Member) Broadcast(kind string, payload []byte) (uint64, error) {
	g := m.group
	g.mu.Lock()
	if _, ok := g.members[m.name]; !ok {
		g.mu.Unlock()
		return 0, ErrLeft
	}
	g.seq++
	msg := Message{Seq: g.seq, Sender: m.name, Kind: kind, Payload: payload}
	for _, dst := range g.members {
		dst.enqueue(event{msg: &msg})
	}
	g.mu.Unlock()
	return msg.Seq, nil
}

// Leave removes the member gracefully; remaining members observe a new view.
func (m *Member) Leave() {
	g := m.group
	g.mu.Lock()
	if _, ok := g.members[m.name]; !ok {
		g.mu.Unlock()
		return
	}
	delete(g.members, m.name)
	g.bumpViewLocked()
	g.mu.Unlock()
	m.close()
}

// Kill simulates a crash: the member stops consuming without announcing
// anything; the group's failure detector (immediate here, heartbeats in a
// real deployment) removes it and installs a new view.
func (m *Member) Kill() {
	m.Leave()
}

func (m *Member) enqueue(e event) {
	m.mu.Lock()
	if !m.closed {
		m.queue = append(m.queue, e)
		m.cond.Signal()
	}
	m.mu.Unlock()
}

func (m *Member) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.cond.Signal()
	m.mu.Unlock()
	<-m.done
	close(m.msgs)
	close(m.views)
}

// pump drains the unbounded mailbox into the typed channels, preserving
// order between messages and views.
func (m *Member) pump() {
	defer close(m.done)
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.queue) == 0 && m.closed {
			m.mu.Unlock()
			return
		}
		e := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		if e.msg != nil {
			m.msgs <- *e.msg
		} else {
			m.views <- *e.view
		}
	}
}

// Registry maps group names to groups, so controllers sharing a process
// find each other by name the way JGroups channels do by group name.
type Registry struct {
	mu     sync.Mutex
	groups map[string]*Group
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{groups: make(map[string]*Group)}
}

// DefaultRegistry is the process-wide registry.
var DefaultRegistry = NewRegistry()

// Get returns (creating if needed) the named group.
func (r *Registry) Get(name string) *Group {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.groups[name]
	if !ok {
		g = NewGroup(name)
		r.groups[name] = g
	}
	return g
}
