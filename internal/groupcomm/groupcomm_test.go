package groupcomm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func collectN(t *testing.T, m *Member, n int) []Message {
	t.Helper()
	out := make([]Message, 0, n)
	timeout := time.After(2 * time.Second)
	for len(out) < n {
		select {
		case msg := <-m.Deliver():
			out = append(out, msg)
		case <-timeout:
			t.Fatalf("timed out after %d/%d messages", len(out), n)
		}
	}
	return out
}

func drainViews(m *Member) {
	for {
		select {
		case <-m.Views():
		default:
			return
		}
	}
}

func TestBroadcastReachesAllIncludingSender(t *testing.T) {
	g := NewGroup("vdb")
	a, _ := g.Join("a")
	b, _ := g.Join("b")
	defer a.Leave()
	defer b.Leave()

	if _, err := a.Broadcast("write", []byte("w1")); err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Member{a, b} {
		msgs := collectN(t, m, 1)
		if msgs[0].Kind != "write" || string(msgs[0].Payload) != "w1" || msgs[0].Sender != "a" {
			t.Fatalf("member %s got %+v", m.Name(), msgs[0])
		}
	}
}

func TestTotalOrderUnderConcurrency(t *testing.T) {
	g := NewGroup("vdb")
	const members = 4
	const perSender = 50
	ms := make([]*Member, members)
	for i := range ms {
		m, err := g.Join(fmt.Sprintf("c%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}

	var wg sync.WaitGroup
	for i, m := range ms {
		wg.Add(1)
		go func(i int, m *Member) {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				if _, err := m.Broadcast("w", []byte(fmt.Sprintf("%d-%d", i, j))); err != nil {
					t.Errorf("broadcast: %v", err)
				}
			}
		}(i, m)
	}
	wg.Wait()

	total := members * perSender
	var reference []uint64
	for i, m := range ms {
		msgs := collectN(t, m, total)
		seqs := make([]uint64, total)
		for k, msg := range msgs {
			seqs[k] = msg.Seq
		}
		if i == 0 {
			reference = seqs
			continue
		}
		for k := range seqs {
			if seqs[k] != reference[k] {
				t.Fatalf("member %s delivery order diverges at %d: %d vs %d",
					m.Name(), k, seqs[k], reference[k])
			}
		}
	}
	// Sequence numbers are strictly increasing.
	for k := 1; k < len(reference); k++ {
		if reference[k] <= reference[k-1] {
			t.Fatalf("sequence not increasing at %d", k)
		}
	}
	for _, m := range ms {
		m.Leave()
	}
}

func TestFIFOPerSender(t *testing.T) {
	g := NewGroup("vdb")
	a, _ := g.Join("a")
	b, _ := g.Join("b")
	defer b.Leave()
	for j := 0; j < 20; j++ {
		a.Broadcast("w", []byte{byte(j)})
	}
	a.Leave()
	msgs := collectN(t, b, 20)
	for j, m := range msgs {
		if int(m.Payload[0]) != j {
			t.Fatalf("FIFO violated at %d: %d", j, m.Payload[0])
		}
	}
}

func TestViewsOnJoinAndLeave(t *testing.T) {
	g := NewGroup("vdb")
	a, _ := g.Join("a")
	v := <-a.Views()
	if v.Members[0] != "a" || len(v.Members) != 1 {
		t.Fatalf("initial view: %+v", v)
	}
	b, _ := g.Join("b")
	v = <-a.Views()
	if len(v.Members) != 2 || !v.Contains("b") {
		t.Fatalf("view after join: %+v", v)
	}
	if v.Coordinator() != "a" {
		t.Errorf("coordinator = %q", v.Coordinator())
	}
	drainViews(b)
	b.Leave()
	v = <-a.Views()
	if len(v.Members) != 1 || v.Contains("b") {
		t.Fatalf("view after leave: %+v", v)
	}
	a.Leave()
}

func TestCrashInstallsNewView(t *testing.T) {
	g := NewGroup("vdb")
	a, _ := g.Join("a")
	b, _ := g.Join("b")
	drainViews(a)
	b.Kill()
	select {
	case v := <-a.Views():
		if v.Contains("b") {
			t.Fatalf("crashed member still in view: %+v", v)
		}
	case <-time.After(time.Second):
		t.Fatal("no view change after crash")
	}
	// Group still works.
	if _, err := a.Broadcast("w", nil); err != nil {
		t.Fatal(err)
	}
	collectN(t, a, 1)
	a.Leave()
}

func TestBroadcastAfterLeaveFails(t *testing.T) {
	g := NewGroup("vdb")
	a, _ := g.Join("a")
	a.Leave()
	if _, err := a.Broadcast("w", nil); !errors.Is(err, ErrLeft) {
		t.Fatalf("broadcast after leave: %v", err)
	}
	a.Leave() // idempotent
}

func TestDuplicateJoinRejected(t *testing.T) {
	g := NewGroup("vdb")
	a, _ := g.Join("a")
	defer a.Leave()
	if _, err := g.Join("a"); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestViewOrderedRelativeToMessages(t *testing.T) {
	// A member joining after N broadcasts must not receive those messages:
	// its first event is its join view.
	g := NewGroup("vdb")
	a, _ := g.Join("a")
	defer a.Leave()
	for i := 0; i < 5; i++ {
		a.Broadcast("w", nil)
	}
	b, _ := g.Join("b")
	defer b.Leave()
	v := <-b.Views()
	if len(v.Members) != 2 {
		t.Fatalf("join view: %+v", v)
	}
	select {
	case m := <-b.Deliver():
		t.Fatalf("late joiner received pre-join message %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestRegistrySharesGroups(t *testing.T) {
	r := NewRegistry()
	g1 := r.Get("vdb")
	g2 := r.Get("vdb")
	if g1 != g2 {
		t.Fatal("registry returned distinct groups for one name")
	}
	if r.Get("other") == g1 {
		t.Fatal("distinct names share a group")
	}
}

func TestCurrentView(t *testing.T) {
	g := NewGroup("vdb")
	a, _ := g.Join("b-member")
	c, _ := g.Join("a-member")
	defer a.Leave()
	defer c.Leave()
	v := g.CurrentView()
	if len(v.Members) != 2 || v.Members[0] != "a-member" {
		t.Fatalf("current view: %+v", v)
	}
}
