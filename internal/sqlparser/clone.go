package sqlparser

// Clone deep-copies an expression tree. Literal values are copied by value:
// a Value's payloads are never mutated after parsing, so sharing the byte
// slice of a BLOB literal between clones is safe.
func (e *Expr) Clone() *Expr {
	if e == nil {
		return nil
	}
	c := *e
	c.Left = e.Left.Clone()
	c.Right = e.Right.Clone()
	c.Low = e.Low.Clone()
	c.High = e.High.Clone()
	c.Args = cloneExprs(e.Args)
	c.List = cloneExprs(e.List)
	return &c
}

func cloneExprs(es []*Expr) []*Expr {
	if es == nil {
		return nil
	}
	out := make([]*Expr, len(es))
	for i, e := range es {
		out[i] = e.Clone()
	}
	return out
}

func cloneStrings(ss []string) []string {
	if ss == nil {
		return nil
	}
	return append([]string(nil), ss...)
}

// Clone implementations. The parsing cache hands the same parsed Statement
// to every execution of a SQL text; any caller that needs to mutate the tree
// (parameter binding, macro rewriting) must clone first.

// Clone deep-copies the statement.
func (s *CreateTable) Clone() Statement {
	c := *s
	if s.Columns != nil {
		c.Columns = make([]ColumnDef, len(s.Columns))
		for i, col := range s.Columns {
			c.Columns[i] = col
			c.Columns[i].Default = col.Default.Clone()
		}
	}
	c.PrimaryKey = cloneStrings(s.PrimaryKey)
	if s.AsSelect != nil {
		c.AsSelect = s.AsSelect.Clone().(*Select)
	}
	return &c
}

// Clone deep-copies the statement.
func (s *DropTable) Clone() Statement { c := *s; return &c }

// Clone deep-copies the statement.
func (s *CreateIndex) Clone() Statement {
	c := *s
	c.Columns = cloneStrings(s.Columns)
	return &c
}

// Clone deep-copies the statement.
func (s *DropIndex) Clone() Statement { c := *s; return &c }

// Clone deep-copies the statement.
func (s *Insert) Clone() Statement {
	c := *s
	c.Columns = cloneStrings(s.Columns)
	if s.Rows != nil {
		c.Rows = make([][]*Expr, len(s.Rows))
		for i, row := range s.Rows {
			c.Rows[i] = cloneExprs(row)
		}
	}
	if s.Query != nil {
		c.Query = s.Query.Clone().(*Select)
	}
	return &c
}

// Clone deep-copies the statement.
func (s *Update) Clone() Statement {
	c := *s
	if s.Set != nil {
		c.Set = make([]Assignment, len(s.Set))
		for i, a := range s.Set {
			c.Set[i] = Assignment{Column: a.Column, Value: a.Value.Clone()}
		}
	}
	c.Where = s.Where.Clone()
	return &c
}

// Clone deep-copies the statement.
func (s *Delete) Clone() Statement {
	c := *s
	c.Where = s.Where.Clone()
	return &c
}

// Clone deep-copies the statement.
func (s *Select) Clone() Statement {
	c := *s
	if s.Items != nil {
		c.Items = make([]SelectItem, len(s.Items))
		for i, it := range s.Items {
			c.Items[i] = it
			c.Items[i].Expr = it.Expr.Clone()
		}
	}
	if s.From != nil {
		c.From = make([]TableRef, len(s.From))
		for i, tr := range s.From {
			c.From[i] = tr
			c.From[i].On = tr.On.Clone()
		}
	}
	c.Where = s.Where.Clone()
	c.GroupBy = cloneExprs(s.GroupBy)
	c.Having = s.Having.Clone()
	if s.OrderBy != nil {
		c.OrderBy = make([]OrderItem, len(s.OrderBy))
		for i, o := range s.OrderBy {
			c.OrderBy[i] = OrderItem{Expr: o.Expr.Clone(), Desc: o.Desc}
		}
	}
	c.Limit = s.Limit.Clone()
	c.Offset = s.Offset.Clone()
	return &c
}

// Clone returns the receiver: the statement has no mutable state.
func (s *Begin) Clone() Statement { return s }

// Clone returns the receiver: the statement has no mutable state.
func (s *Commit) Clone() Statement { return s }

// Clone returns the receiver: the statement has no mutable state.
func (s *Rollback) Clone() Statement { return s }

// Clone returns the receiver: the statement has no mutable state.
func (s *ShowTables) Clone() Statement { return s }
