package sqlparser

import (
	"strings"

	"cjdbc/internal/sqlval"
)

// Statement is implemented by every parsed SQL statement.
type Statement interface {
	stmt()
	// Tables returns the names of the tables the statement references,
	// lower-cased, without duplicates. Used for routing, partial
	// replication and cache invalidation.
	Tables() []string
	// Clone returns a deep copy of the statement. The parsing cache shares
	// one parsed tree across executions; mutating operations (parameter
	// binding, macro rewriting) work on a clone.
	Clone() Statement
}

// ColumnDef describes one column of CREATE TABLE.
type ColumnDef struct {
	Name          string
	Type          sqlval.Kind
	NotNull       bool
	PrimaryKey    bool
	AutoIncrement bool
	Default       *Expr // nil when no default
}

// CreateTable is CREATE [TEMPORARY] TABLE.
type CreateTable struct {
	Table       string
	Temporary   bool
	IfNotExists bool
	Columns     []ColumnDef
	PrimaryKey  []string // table-level PRIMARY KEY(...) constraint
	AsSelect    *Select  // CREATE TABLE ... AS SELECT, nil otherwise
}

// DropTable is DROP TABLE.
type DropTable struct {
	Table    string
	IfExists bool
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (col).
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// DropIndex is DROP INDEX name ON table.
type DropIndex struct {
	Name  string
	Table string
}

// Insert is INSERT INTO table [(cols)] VALUES (...)... or INSERT ... SELECT.
type Insert struct {
	Table   string
	Columns []string  // empty means table order
	Rows    [][]*Expr // VALUES form
	Query   *Select   // SELECT form, nil otherwise
}

// Assignment is one SET column = expr clause.
type Assignment struct {
	Column string
	Value  *Expr
}

// Update is UPDATE table SET ... [WHERE ...].
type Update struct {
	Table string
	Set   []Assignment
	Where *Expr
	// Access is the statement's precomputed access-shape summary (see
	// AnalyzeAccess). Shallow statement clones share the pointer: the
	// summary holds shapes, never literal values, so parameter binding does
	// not invalidate it. nil means "not analyzed" — planners fall back to
	// walking the AST.
	Access *AccessInfo
}

// Delete is DELETE FROM table [WHERE ...].
type Delete struct {
	Table  string
	Where  *Expr
	Access *AccessInfo // see Update.Access
}

// JoinKind distinguishes the supported join flavours.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

// TableRef is one entry of the FROM clause.
type TableRef struct {
	Table string
	Alias string // empty when none
	Join  JoinKind
	On    *Expr // nil for the first table and cross joins
}

// SelectItem is one projection of the select list.
type SelectItem struct {
	Expr  *Expr
	Alias string
	Star  bool   // SELECT * or t.*
	Table string // qualifier for t.*
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr *Expr
	Desc bool
}

// Select is a SELECT statement.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    *Expr
	GroupBy  []*Expr
	Having   *Expr
	OrderBy  []OrderItem
	Limit    *Expr // nil when absent
	Offset   *Expr
	Access   *AccessInfo // see Update.Access
}

// Begin starts a transaction.
type Begin struct{}

// Commit commits a transaction.
type Commit struct{}

// Rollback aborts a transaction.
type Rollback struct{}

// ShowTables lists the tables of the catalog (used by the console and by
// dynamic schema gathering).
type ShowTables struct{}

func (*CreateTable) stmt() {}
func (*DropTable) stmt()   {}
func (*CreateIndex) stmt() {}
func (*DropIndex) stmt()   {}
func (*Insert) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}
func (*Select) stmt()      {}
func (*Begin) stmt()       {}
func (*Commit) stmt()      {}
func (*Rollback) stmt()    {}
func (*ShowTables) stmt()  {}

// Tables implementations.

func one(t string) []string { return []string{strings.ToLower(t)} }

// Tables returns the created table plus any tables a CREATE ... AS SELECT reads.
func (s *CreateTable) Tables() []string {
	ts := one(s.Table)
	if s.AsSelect != nil {
		ts = mergeTables(ts, s.AsSelect.Tables())
	}
	return ts
}

// Tables returns the dropped table.
func (s *DropTable) Tables() []string { return one(s.Table) }

// Tables returns the indexed table.
func (s *CreateIndex) Tables() []string { return one(s.Table) }

// Tables returns the indexed table.
func (s *DropIndex) Tables() []string { return one(s.Table) }

// Tables returns the target table plus any tables an INSERT ... SELECT reads.
func (s *Insert) Tables() []string {
	ts := one(s.Table)
	if s.Query != nil {
		ts = mergeTables(ts, s.Query.Tables())
	}
	return ts
}

// Tables returns the updated table.
func (s *Update) Tables() []string { return one(s.Table) }

// Tables returns the table rows are deleted from.
func (s *Delete) Tables() []string { return one(s.Table) }

// Tables returns every table referenced in the FROM clause.
func (s *Select) Tables() []string {
	var ts []string
	for _, tr := range s.From {
		ts = mergeTables(ts, one(tr.Table))
	}
	return ts
}

// Tables returns nil: transaction demarcation touches no tables.
func (*Begin) Tables() []string { return nil }

// Tables returns nil.
func (*Commit) Tables() []string { return nil }

// Tables returns nil.
func (*Rollback) Tables() []string { return nil }

// Tables returns nil.
func (*ShowTables) Tables() []string { return nil }

func mergeTables(a, b []string) []string {
	for _, t := range b {
		found := false
		for _, x := range a {
			if x == t {
				found = true
				break
			}
		}
		if !found {
			a = append(a, t)
		}
	}
	return a
}

// ExprKind enumerates expression node types.
type ExprKind uint8

// Expression node kinds.
const (
	ExprLiteral ExprKind = iota
	ExprColumn
	ExprParam
	ExprUnary  // op in {-, NOT}
	ExprBinary // arithmetic, comparison, AND/OR, LIKE, ||
	ExprFunc   // function call, including aggregates
	ExprIn     // expr [NOT] IN (list)
	ExprBetween
	ExprIsNull // expr IS [NOT] NULL
	ExprStar   // COUNT(*) argument
)

// Expr is an expression tree node. A single struct with a kind tag keeps the
// evaluator compact and allocation-light.
type Expr struct {
	Kind ExprKind

	Lit sqlval.Value // ExprLiteral

	Table  string // ExprColumn qualifier (may be empty)
	Column string // ExprColumn name

	ParamIdx int // ExprParam: 0-based placeholder index

	Op    string // ExprUnary/ExprBinary operator, upper-cased
	Left  *Expr
	Right *Expr

	Func     string  // ExprFunc name, upper-cased
	Args     []*Expr // ExprFunc arguments
	Distinct bool    // COUNT(DISTINCT x)

	List []*Expr // ExprIn list
	Not  bool    // negates IN / BETWEEN / IS NULL / LIKE

	Low, High *Expr // ExprBetween bounds
}

// aggregateFuncs is the set of aggregate function names.
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
}

// IsAggregate reports whether the function name is an aggregate.
func IsAggregate(name string) bool { return aggregateFuncs[strings.ToUpper(name)] }

// HasAggregate reports whether the expression tree contains an aggregate call.
func (e *Expr) HasAggregate() bool {
	if e == nil {
		return false
	}
	if e.Kind == ExprFunc && IsAggregate(e.Func) {
		return true
	}
	for _, c := range e.children() {
		if c.HasAggregate() {
			return true
		}
	}
	return false
}

func (e *Expr) children() []*Expr {
	var out []*Expr
	add := func(x *Expr) {
		if x != nil {
			out = append(out, x)
		}
	}
	add(e.Left)
	add(e.Right)
	add(e.Low)
	add(e.High)
	for _, a := range e.Args {
		add(a)
	}
	for _, a := range e.List {
		add(a)
	}
	return out
}

// Walk applies f to every node of the expression tree rooted at e.
func (e *Expr) Walk(f func(*Expr)) {
	if e == nil {
		return
	}
	f(e)
	for _, c := range e.children() {
		c.Walk(f)
	}
}
