package sqlparser

import (
	"math/rand"
	"testing"
	"time"

	"cjdbc/internal/sqlval"
)

// cloneRoundTrip parses sql, clones it, and checks the clone renders
// identically to the original.
func cloneRoundTrip(t *testing.T, sql string) (orig, clone Statement) {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	cl := st.Clone()
	if got, want := Render(cl), Render(st); got != want {
		t.Fatalf("clone renders differently:\n orig  %s\n clone %s", want, got)
	}
	return st, cl
}

func TestCloneRendersIdentically(t *testing.T) {
	for _, sql := range []string{
		"SELECT DISTINCT a, b AS x, COUNT(*) FROM t AS s JOIN u ON s.id = u.id LEFT JOIN w ON u.k = w.k WHERE (a > 1 AND b IN (1, 2, 3)) OR c BETWEEN 4 AND 9 GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC, b LIMIT 10 OFFSET 5",
		"SELECT * FROM t WHERE name LIKE 'x%' AND v IS NOT NULL",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, NOW())",
		"INSERT INTO t (a) SELECT b FROM u WHERE b > ?",
		"UPDATE t SET a = a + 1, b = ? WHERE id = ?",
		"DELETE FROM t WHERE id NOT IN (1, 2)",
		"CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR NOT NULL, n INTEGER DEFAULT 0)",
		"CREATE TABLE t2 AS SELECT a FROM t",
		"DROP TABLE IF EXISTS t",
		"CREATE UNIQUE INDEX ix ON t (a, b)",
		"DROP INDEX ix ON t",
		"BEGIN", "COMMIT", "ROLLBACK", "SHOW TABLES",
	} {
		cloneRoundTrip(t, sql)
	}
}

func TestCloneIsolatesBinding(t *testing.T) {
	st, cl := cloneRoundTrip(t, "UPDATE t SET b = ? WHERE id = ? AND v IN (?, ?)")
	before := Render(st)
	params := []sqlval.Value{sqlval.Int(7), sqlval.Int(1), sqlval.String_("a"), sqlval.String_("b")}
	if err := BindParams(cl, params); err != nil {
		t.Fatal(err)
	}
	if Render(st) != before {
		t.Fatal("binding into the clone mutated the original")
	}
	if NumParams(st) != 4 {
		t.Fatal("original lost placeholders")
	}
	if NumParams(cl) != 0 {
		t.Fatal("clone kept placeholders after binding")
	}
}

func TestCloneIsolatesMacroRewrite(t *testing.T) {
	st, cl := cloneRoundTrip(t, "INSERT INTO t (a, ts, r) VALUES (1, NOW(), RAND())")
	before := Render(st)
	RewriteMacros(cl, time.Unix(1000, 0), rand.New(rand.NewSource(1)))
	if Render(st) != before {
		t.Fatal("macro rewrite on the clone mutated the original")
	}
	if !HasMacros(st) {
		t.Fatal("original lost its macros")
	}
	if HasMacros(cl) {
		t.Fatal("clone kept macros after rewrite")
	}
}

func TestCloneIsolatesInsertRows(t *testing.T) {
	st, cl := cloneRoundTrip(t, "INSERT INTO t (a) VALUES (?)")
	ins := cl.(*Insert)
	ins.Rows[0][0] = &Expr{Kind: ExprLiteral, Lit: sqlval.Int(42)}
	if NumParams(st) != 1 {
		t.Fatal("mutating clone rows affected the original")
	}
}
