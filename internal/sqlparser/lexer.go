// Package sqlparser implements the SQL dialect understood by the cluster:
// a lexer, an AST, a recursive-descent parser and the query analysis the
// controller needs for routing (statement class, referenced tables,
// deterministic-macro detection).
//
// The dialect covers what the TPC-W and RUBiS workloads and the recovery
// machinery require: CREATE/DROP TABLE and INDEX, temporary tables, INSERT
// (VALUES and SELECT forms), UPDATE, DELETE, SELECT with joins, aggregates,
// GROUP BY/HAVING, ORDER BY and LIMIT, and transaction demarcation.
package sqlparser

import (
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // operators and punctuation
	tokParam // ? placeholder
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep original case
	pos  int
}

// keywords recognised by the lexer. Identifiers matching these (case
// insensitively) become tokKeyword.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "DROP": true, "INDEX": true, "UNIQUE": true, "ON": true,
	"PRIMARY": true, "KEY": true, "NOT": true, "NULL": true, "DEFAULT": true,
	"AND": true, "OR": true, "IN": true, "IS": true, "LIKE": true,
	"BETWEEN": true, "ORDER": true, "BY": true, "GROUP": true, "HAVING": true,
	"LIMIT": true, "OFFSET": true, "ASC": true, "DESC": true, "AS": true,
	"DISTINCT": true, "JOIN": true, "INNER": true, "LEFT": true, "OUTER": true,
	"BEGIN": true, "START": true, "TRANSACTION": true, "COMMIT": true,
	"ROLLBACK": true, "ABORT": true, "TRUE": true, "FALSE": true,
	"TEMPORARY": true, "TEMP": true, "IF": true, "EXISTS": true,
	"INTEGER": true, "INT": true, "BIGINT": true, "FLOAT": true, "DOUBLE": true,
	"REAL": true, "VARCHAR": true, "TEXT": true, "CHAR": true, "BOOLEAN": true,
	"TIMESTAMP": true, "DATETIME": true, "BLOB": true, "NUMERIC": true,
	"DECIMAL": true, "AUTO_INCREMENT": true, "REFERENCES": true,
	"FOREIGN": true, "CROSS": true, "USE": true, "SHOW": true, "TABLES": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. It returns a descriptive error with byte offset on any
// malformed literal.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.toks = append(l.toks, token{kind: tokNumber, text: l.lexNumber(), pos: start})
		case isIdentStart(rune(c)), c == '`', c == '"':
			id, err := l.lexIdent()
			if err != nil {
				return nil, err
			}
			up := strings.ToUpper(id)
			if keywords[up] {
				l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				l.toks = append(l.toks, token{kind: tokIdent, text: id, pos: start})
			}
		case c == '?':
			l.pos++
			l.toks = append(l.toks, token{kind: tokParam, text: "?", pos: start})
		default:
			op, err := l.lexOp()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokOp, text: op, pos: start})
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || c >= '0' && c <= '9' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func (l *lexer) lexString() (string, error) {
	// Opening quote already seen.
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			// MySQL-style backslash escapes, needed because the workloads use them.
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(l.src[l.pos])
			}
			l.pos++
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", parseErrf("unterminated string literal at offset %d", l.pos)
}

func (l *lexer) lexNumber() string {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			return l.src[start:l.pos]
		}
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexIdent() (string, error) {
	c := l.src[l.pos]
	if c == '`' || c == '"' {
		quote := c
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return "", parseErrf("unterminated quoted identifier at offset %d", start)
		}
		id := l.src[start:l.pos]
		l.pos++
		return id, nil
	}
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos], nil
}

func (l *lexer) lexOp() (string, error) {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		l.pos += 2
		return two, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '=', '<', '>', '+', '-', '*', '/', '%', ';', '.':
		l.pos++
		return string(c), nil
	}
	return "", parseErrf("unexpected character %q at offset %d", c, l.pos)
}
