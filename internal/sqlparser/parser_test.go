package sqlparser

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"cjdbc/internal/sqlval"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, `CREATE TABLE item (
		i_id INTEGER PRIMARY KEY AUTO_INCREMENT,
		i_title VARCHAR(60) NOT NULL,
		i_cost FLOAT DEFAULT 0,
		i_pub_date TIMESTAMP,
		i_data BLOB,
		i_avail BOOLEAN
	)`)
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Table != "item" || len(ct.Columns) != 6 {
		t.Fatalf("table=%q cols=%d", ct.Table, len(ct.Columns))
	}
	if !ct.Columns[0].PrimaryKey || !ct.Columns[0].AutoIncrement {
		t.Error("i_id should be auto-increment primary key")
	}
	if !ct.Columns[1].NotNull || ct.Columns[1].Type != sqlval.KindString {
		t.Error("i_title should be NOT NULL VARCHAR")
	}
	if ct.Columns[2].Default == nil {
		t.Error("i_cost should have a default")
	}
	if got := ct.Tables(); !reflect.DeepEqual(got, []string{"item"}) {
		t.Errorf("Tables() = %v", got)
	}
}

func TestParseCreateTemporaryTableAsSelect(t *testing.T) {
	st := mustParse(t, `CREATE TEMPORARY TABLE best AS SELECT ol_i_id, SUM(ol_qty) AS total FROM order_line GROUP BY ol_i_id ORDER BY total DESC LIMIT 50`)
	ct := st.(*CreateTable)
	if !ct.Temporary || ct.AsSelect == nil {
		t.Fatal("expected temporary AS SELECT table")
	}
	ts := ct.Tables()
	if len(ts) != 2 || ts[0] != "best" || ts[1] != "order_line" {
		t.Errorf("Tables() = %v", ts)
	}
}

func TestParseCreateTableTableLevelPK(t *testing.T) {
	st := mustParse(t, `CREATE TABLE ol (o_id INTEGER, ol_num INTEGER, PRIMARY KEY (o_id, ol_num))`)
	ct := st.(*CreateTable)
	if !reflect.DeepEqual(ct.PrimaryKey, []string{"o_id", "ol_num"}) {
		t.Errorf("PrimaryKey = %v", ct.PrimaryKey)
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y''z')`)
	ins := st.(*Insert)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("bad insert: %+v", ins)
	}
	if ins.Rows[1][1].Lit.S != "y'z" {
		t.Errorf("escaped quote: %q", ins.Rows[1][1].Lit.S)
	}
}

func TestParseInsertSelect(t *testing.T) {
	st := mustParse(t, `INSERT INTO archive SELECT * FROM orders WHERE o_date < '2000-01-01'`)
	ins := st.(*Insert)
	if ins.Query == nil {
		t.Fatal("expected INSERT ... SELECT")
	}
	ts := ins.Tables()
	if len(ts) != 2 {
		t.Errorf("Tables() = %v", ts)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	st := mustParse(t, `UPDATE item SET i_cost = i_cost * 1.1, i_title = ? WHERE i_id = 7`)
	up := st.(*Update)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("bad update: %+v", up)
	}
	if NumParams(up) != 1 {
		t.Errorf("NumParams = %d", NumParams(up))
	}

	st = mustParse(t, `DELETE FROM cart WHERE sc_id = 3 AND sc_qty <= 0`)
	del := st.(*Delete)
	if del.Where == nil {
		t.Fatal("expected WHERE")
	}
}

func TestParseSelectJoinsAndClauses(t *testing.T) {
	st := mustParse(t, `SELECT i.i_id, a.a_fname, COUNT(*) AS n
		FROM item i JOIN author a ON i.i_a_id = a.a_id LEFT JOIN stock s ON s.s_i_id = i.i_id
		WHERE i.i_cost BETWEEN 10 AND 20 AND a.a_lname LIKE 'B%' OR i.i_id IN (1, 2, 3)
		GROUP BY i.i_id, a.a_fname HAVING COUNT(*) > 1
		ORDER BY n DESC, i.i_id LIMIT 10 OFFSET 5`)
	sel := st.(*Select)
	if len(sel.From) != 3 {
		t.Fatalf("from = %d", len(sel.From))
	}
	if sel.From[1].Join != JoinInner || sel.From[2].Join != JoinLeft {
		t.Error("join kinds wrong")
	}
	if len(sel.GroupBy) != 2 || sel.Having == nil || len(sel.OrderBy) != 2 {
		t.Error("clauses missing")
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Error("limit/offset missing")
	}
	ts := sel.Tables()
	if !reflect.DeepEqual(ts, []string{"item", "author", "stock"}) {
		t.Errorf("Tables() = %v", ts)
	}
}

func TestParseMySQLLimitForm(t *testing.T) {
	sel := mustParse(t, `SELECT a FROM t LIMIT 5, 10`).(*Select)
	if v := sel.Limit.Lit.I; v != 10 {
		t.Errorf("limit = %d, want 10", v)
	}
	if v := sel.Offset.Lit.I; v != 5 {
		t.Errorf("offset = %d, want 5", v)
	}
}

func TestParseTransactions(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*Begin); !ok {
		t.Error("BEGIN")
	}
	if _, ok := mustParse(t, "START TRANSACTION").(*Begin); !ok {
		t.Error("START TRANSACTION")
	}
	if _, ok := mustParse(t, "COMMIT;").(*Commit); !ok {
		t.Error("COMMIT")
	}
	if _, ok := mustParse(t, "ROLLBACK").(*Rollback); !ok {
		t.Error("ROLLBACK")
	}
	if _, ok := mustParse(t, "ABORT").(*Rollback); !ok {
		t.Error("ABORT")
	}
	if _, ok := mustParse(t, "SHOW TABLES").(*ShowTables); !ok {
		t.Error("SHOW TABLES")
	}
}

func TestParseIndexStatements(t *testing.T) {
	ci := mustParse(t, "CREATE UNIQUE INDEX idx_a ON t (a, b)").(*CreateIndex)
	if !ci.Unique || ci.Table != "t" || len(ci.Columns) != 2 {
		t.Fatalf("bad index: %+v", ci)
	}
	di := mustParse(t, "DROP INDEX idx_a ON t").(*DropIndex)
	if di.Name != "idx_a" || di.Table != "t" {
		t.Fatalf("bad drop index: %+v", di)
	}
}

func TestParseComments(t *testing.T) {
	sel := mustParse(t, "SELECT a -- trailing\nFROM t /* block */ WHERE a = 1").(*Select)
	if len(sel.From) != 1 || sel.Where == nil {
		t.Fatal("comments broke parsing")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"INSERT INTO t VALUES (1",
		"UPDATE t SET",
		"CREATE TABLE t (a INTEGER",
		"SELECT a FROM t WHERE 'unterminated",
		"SELECT a FROM t WHERE a @ 3",
		"DROP TABLE",
		"SELECT a FROM t; SELECT b FROM u",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := map[string]StatementClass{
		"SELECT 1":                   ClassRead,
		"SHOW TABLES":                ClassRead,
		"INSERT INTO t VALUES (1)":   ClassWrite,
		"UPDATE t SET a = 1":         ClassWrite,
		"DELETE FROM t":              ClassWrite,
		"CREATE TABLE t (a INTEGER)": ClassWrite,
		"DROP TABLE t":               ClassWrite,
		"CREATE INDEX i ON t (a)":    ClassWrite,
		"BEGIN":                      ClassBegin,
		"COMMIT":                     ClassCommit,
		"ROLLBACK":                   ClassRollback,
	}
	for sql, want := range cases {
		st := mustParse(t, sql)
		if got := Classify(st); got != want {
			t.Errorf("Classify(%q) = %v, want %v", sql, got, want)
		}
	}
}

func TestMacroDetectionAndRewrite(t *testing.T) {
	st := mustParse(t, "INSERT INTO orders (o_date, o_disc) VALUES (NOW(), RAND())")
	if !HasMacros(st) {
		t.Fatal("macros not detected")
	}
	now := time.Date(2004, 6, 27, 12, 0, 0, 0, time.UTC)
	RewriteMacros(st, now, rand.New(rand.NewSource(42)))
	if HasMacros(st) {
		t.Fatal("macros survived rewrite")
	}
	ins := st.(*Insert)
	if ins.Rows[0][0].Lit.K != sqlval.KindTime || !ins.Rows[0][0].Lit.T.Equal(now) {
		t.Error("NOW() not rewritten to fixed time")
	}
	if ins.Rows[0][1].Lit.K != sqlval.KindFloat {
		t.Error("RAND() not rewritten to float")
	}

	// Two rewrites with the same seed produce the same SQL: determinism
	// across replicas, the property §2.4.1 requires.
	st2 := mustParse(t, "INSERT INTO orders (o_date, o_disc) VALUES (NOW(), RAND())")
	RewriteMacros(st2, now, rand.New(rand.NewSource(42)))
	if Render(st) != Render(st2) {
		t.Error("macro rewriting is not deterministic")
	}
}

func TestBindParams(t *testing.T) {
	st := mustParse(t, "UPDATE t SET a = ?, b = ? WHERE c = ?")
	err := BindParams(st, []sqlval.Value{sqlval.Int(1), sqlval.String_("x"), sqlval.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if NumParams(st) != 0 {
		t.Error("params remain after bind")
	}
	rendered := Render(st)
	if !strings.Contains(rendered, "'x'") || !strings.Contains(rendered, "= 3") {
		t.Errorf("bound render: %s", rendered)
	}

	st = mustParse(t, "SELECT a FROM t WHERE b = ?")
	if err := BindParams(st, nil); err == nil {
		t.Error("missing param must fail")
	}
}

func TestWrittenColumns(t *testing.T) {
	st := mustParse(t, "UPDATE t SET A = 1, b = 2")
	if got := WrittenColumns(st); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("WrittenColumns = %v", got)
	}
	st = mustParse(t, "INSERT INTO t (X) VALUES (1)")
	if got := WrittenColumns(st); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("WrittenColumns = %v", got)
	}
	st = mustParse(t, "DELETE FROM t")
	if got := WrittenColumns(st); got != nil {
		t.Errorf("WrittenColumns(delete) = %v", got)
	}
}

func TestReadColumns(t *testing.T) {
	cols, ok := ReadColumns(mustParse(t, "SELECT a, b FROM t WHERE c = 1"))
	if !ok || len(cols) != 3 {
		t.Errorf("ReadColumns = %v, %v", cols, ok)
	}
	_, ok = ReadColumns(mustParse(t, "SELECT * FROM t"))
	if ok {
		t.Error("SELECT * must report not-enumerable")
	}
}

// Round-trip property: Render(Parse(sql)) parses to the same rendering.
func TestRenderRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT a, b AS x FROM t WHERE (a = 1 AND b < 2) OR c LIKE 'p%' ORDER BY a DESC LIMIT 3",
		"SELECT COUNT(*), SUM(a), MIN(b), MAX(c), AVG(d) FROM t GROUP BY e HAVING COUNT(*) > 2",
		"SELECT DISTINCT t.a FROM t JOIN u ON t.id = u.id LEFT JOIN v ON v.id = t.id",
		"INSERT INTO t (a, b) VALUES (1, 'it''s'), (NULL, TRUE)",
		"UPDATE t SET a = a + 1 WHERE b IN (1, 2, 3) AND c IS NOT NULL",
		"DELETE FROM t WHERE a BETWEEN 1 AND 10",
		"CREATE TABLE t (a INTEGER PRIMARY KEY AUTO_INCREMENT, b VARCHAR NOT NULL, c FLOAT DEFAULT 1.5)",
		"CREATE TEMPORARY TABLE tt AS SELECT a FROM t",
		"CREATE UNIQUE INDEX i ON t (a)",
		"DROP TABLE IF EXISTS t",
		"DROP INDEX i ON t",
		"BEGIN", "COMMIT", "ROLLBACK", "SHOW TABLES",
		"SELECT a FROM t WHERE b = ? AND c > ?",
		"SELECT -a, NOT (b = 1), a || b FROM t",
		"SELECT a FROM t WHERE x NOT LIKE 'a%' AND y NOT IN (1) AND z NOT BETWEEN 1 AND 2",
	}
	for _, q := range queries {
		st1 := mustParse(t, q)
		r1 := Render(st1)
		st2, err := Parse(r1)
		if err != nil {
			t.Errorf("re-parse of %q (rendered %q): %v", q, r1, err)
			continue
		}
		r2 := Render(st2)
		if r1 != r2 {
			t.Errorf("render not a fixpoint:\n  orig: %s\n  r1:   %s\n  r2:   %s", q, r1, r2)
		}
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	sel := mustParse(t, "SELECT `a` FROM `my table` WHERE \"b\" = 1").(*Select)
	if sel.From[0].Table != "my table" {
		t.Errorf("quoted table = %q", sel.From[0].Table)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	sel := mustParse(t, "select A from T where B = 1 order by A").(*Select)
	// Identifiers keep case for tables, columns lower-cased in expressions.
	if sel.From[0].Table != "T" {
		t.Errorf("table = %q", sel.From[0].Table)
	}
	if sel.Items[0].Expr.Column != "a" {
		t.Errorf("column = %q", sel.Items[0].Expr.Column)
	}
	if got := sel.Tables(); got[0] != "t" {
		t.Errorf("Tables() = %v", got)
	}
}
