package sqlparser

import (
	"strings"

	"cjdbc/internal/sqlval"
)

// Render turns a parsed statement back into SQL text. The output is
// accepted by Parse (round-trip property), which the recovery log, the wire
// protocol and macro rewriting rely on.
func Render(st Statement) string {
	var b strings.Builder
	renderStmt(&b, st)
	return b.String()
}

func renderStmt(b *strings.Builder, st Statement) {
	switch s := st.(type) {
	case *CreateTable:
		b.WriteString("CREATE ")
		if s.Temporary {
			b.WriteString("TEMPORARY ")
		}
		b.WriteString("TABLE ")
		if s.IfNotExists {
			b.WriteString("IF NOT EXISTS ")
		}
		b.WriteString(s.Table)
		if s.AsSelect != nil {
			b.WriteString(" AS ")
			renderStmt(b, s.AsSelect)
			return
		}
		b.WriteString(" (")
		for i, c := range s.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Name)
			b.WriteByte(' ')
			b.WriteString(typeName(c.Type))
			if c.PrimaryKey {
				b.WriteString(" PRIMARY KEY")
			} else if c.NotNull {
				b.WriteString(" NOT NULL")
			}
			if c.AutoIncrement {
				b.WriteString(" AUTO_INCREMENT")
			}
			if c.Default != nil {
				b.WriteString(" DEFAULT ")
				renderExpr(b, c.Default)
			}
		}
		if len(s.PrimaryKey) > 0 {
			b.WriteString(", PRIMARY KEY (")
			b.WriteString(strings.Join(s.PrimaryKey, ", "))
			b.WriteString(")")
		}
		b.WriteString(")")
	case *DropTable:
		b.WriteString("DROP TABLE ")
		if s.IfExists {
			b.WriteString("IF EXISTS ")
		}
		b.WriteString(s.Table)
	case *CreateIndex:
		b.WriteString("CREATE ")
		if s.Unique {
			b.WriteString("UNIQUE ")
		}
		b.WriteString("INDEX ")
		b.WriteString(s.Name)
		b.WriteString(" ON ")
		b.WriteString(s.Table)
		b.WriteString(" (")
		b.WriteString(strings.Join(s.Columns, ", "))
		b.WriteString(")")
	case *DropIndex:
		b.WriteString("DROP INDEX ")
		b.WriteString(s.Name)
		b.WriteString(" ON ")
		b.WriteString(s.Table)
	case *Insert:
		b.WriteString("INSERT INTO ")
		b.WriteString(s.Table)
		if len(s.Columns) > 0 {
			b.WriteString(" (")
			b.WriteString(strings.Join(s.Columns, ", "))
			b.WriteString(")")
		}
		if s.Query != nil {
			b.WriteByte(' ')
			renderStmt(b, s.Query)
			return
		}
		b.WriteString(" VALUES ")
		for i, row := range s.Rows {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("(")
			for j, e := range row {
				if j > 0 {
					b.WriteString(", ")
				}
				renderExpr(b, e)
			}
			b.WriteString(")")
		}
	case *Update:
		b.WriteString("UPDATE ")
		b.WriteString(s.Table)
		b.WriteString(" SET ")
		for i, a := range s.Set {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.Column)
			b.WriteString(" = ")
			renderExpr(b, a.Value)
		}
		if s.Where != nil {
			b.WriteString(" WHERE ")
			renderExpr(b, s.Where)
		}
	case *Delete:
		b.WriteString("DELETE FROM ")
		b.WriteString(s.Table)
		if s.Where != nil {
			b.WriteString(" WHERE ")
			renderExpr(b, s.Where)
		}
	case *Select:
		renderSelect(b, s)
	case *Begin:
		b.WriteString("BEGIN")
	case *Commit:
		b.WriteString("COMMIT")
	case *Rollback:
		b.WriteString("ROLLBACK")
	case *ShowTables:
		b.WriteString("SHOW TABLES")
	}
}

func typeName(k sqlval.Kind) string {
	switch k {
	case sqlval.KindInt:
		return "INTEGER"
	case sqlval.KindFloat:
		return "FLOAT"
	case sqlval.KindString:
		return "VARCHAR"
	case sqlval.KindBool:
		return "BOOLEAN"
	case sqlval.KindTime:
		return "TIMESTAMP"
	case sqlval.KindBytes:
		return "BLOB"
	}
	return "VARCHAR"
}

func renderSelect(b *strings.Builder, s *Select) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			if it.Table != "" {
				b.WriteString(it.Table)
				b.WriteString(".")
			}
			b.WriteString("*")
			continue
		}
		renderExpr(b, it.Expr)
		if it.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(it.Alias)
		}
	}
	for i, tr := range s.From {
		if i == 0 {
			b.WriteString(" FROM ")
		} else {
			switch tr.Join {
			case JoinCross:
				b.WriteString(" CROSS JOIN ")
			case JoinLeft:
				b.WriteString(" LEFT JOIN ")
			default:
				b.WriteString(" JOIN ")
			}
		}
		b.WriteString(tr.Table)
		if tr.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(tr.Alias)
		}
		if tr.On != nil {
			b.WriteString(" ON ")
			renderExpr(b, tr.On)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		renderExpr(b, s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, g)
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		renderExpr(b, s.Having)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, o.Expr)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT ")
		renderExpr(b, s.Limit)
		if s.Offset != nil {
			b.WriteString(" OFFSET ")
			renderExpr(b, s.Offset)
		}
	}
}

func renderExpr(b *strings.Builder, e *Expr) {
	if e == nil {
		return
	}
	switch e.Kind {
	case ExprLiteral:
		b.WriteString(e.Lit.SQLLiteral())
	case ExprColumn:
		if e.Table != "" {
			b.WriteString(e.Table)
			b.WriteString(".")
		}
		b.WriteString(e.Column)
	case ExprParam:
		b.WriteString("?")
	case ExprStar:
		b.WriteString("*")
	case ExprUnary:
		if e.Op == "NOT" {
			b.WriteString("NOT (")
			renderExpr(b, e.Left)
			b.WriteString(")")
		} else {
			b.WriteString(e.Op)
			b.WriteString("(")
			renderExpr(b, e.Left)
			b.WriteString(")")
		}
	case ExprBinary:
		b.WriteString("(")
		renderExpr(b, e.Left)
		b.WriteString(" ")
		if e.Not && e.Op == "LIKE" {
			b.WriteString("NOT ")
		}
		b.WriteString(e.Op)
		b.WriteString(" ")
		renderExpr(b, e.Right)
		b.WriteString(")")
	case ExprFunc:
		b.WriteString(e.Func)
		b.WriteString("(")
		if e.Distinct {
			b.WriteString("DISTINCT ")
		}
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, a)
		}
		b.WriteString(")")
	case ExprIn:
		b.WriteString("(")
		renderExpr(b, e.Left)
		if e.Not {
			b.WriteString(" NOT IN (")
		} else {
			b.WriteString(" IN (")
		}
		for i, a := range e.List {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, a)
		}
		b.WriteString("))")
	case ExprBetween:
		b.WriteString("(")
		renderExpr(b, e.Left)
		if e.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		renderExpr(b, e.Low)
		b.WriteString(" AND ")
		renderExpr(b, e.High)
		b.WriteString(")")
	case ExprIsNull:
		b.WriteString("(")
		renderExpr(b, e.Left)
		if e.Not {
			b.WriteString(" IS NOT NULL)")
		} else {
			b.WriteString(" IS NULL)")
		}
	}
}
