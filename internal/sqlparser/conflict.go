package sqlparser

import "sort"

// ConflictClass computes the conflict footprint of a statement for
// conflict-class write scheduling: the sorted, deduplicated, lower-cased set
// of tables the statement touches, and whether it conflicts with everything
// (global). Two writes conflict iff their footprints intersect or either is
// global; the cluster only needs conflicting writes to apply in the same
// order on every replica — disjoint footprints commute.
//
// DDL is always global: schema changes affect the planning and routing of
// every other statement (and the engine serializes DDL against everything
// anyway). A nil statement or one whose tables cannot be determined is
// global too — unknown footprints must be assumed to conflict with all.
// INSERT ... SELECT and CREATE TABLE ... AS SELECT footprints include their
// source tables, so a write ordering against the read side stays sequenced.
func ConflictClass(st Statement) (tables []string, global bool) {
	if st == nil || IsDDL(st) {
		return nil, true
	}
	ts := st.Tables()
	if len(ts) == 0 {
		return nil, true
	}
	tables = append(tables, ts...)
	sort.Strings(tables)
	dedup := tables[:1]
	for _, t := range tables[1:] {
		if t != dedup[len(dedup)-1] {
			dedup = append(dedup, t)
		}
	}
	return dedup, false
}

// IsDDL reports whether st changes the schema rather than table contents.
func IsDDL(st Statement) bool {
	switch st.(type) {
	case *CreateTable, *DropTable, *CreateIndex, *DropIndex:
		return true
	}
	return false
}
