package sqlparser

import (
	"errors"
	"fmt"

	"cjdbc/internal/senterr"
)

// ErrParse is the errors.Is sentinel for every parse-time failure: lexer
// errors, grammar errors and parameter-binding errors. Statement errors are
// deterministic — every replica rejects the same text identically — so the
// request manager must never treat them as a backend fault (no failover, no
// disable). Match with errors.Is(err, ErrParse) instead of sniffing message
// prefixes.
var ErrParse = errors.New("sql: statement parse error")

// parseErrf builds a parse error carrying the ErrParse sentinel. All parser
// and lexer failures are constructed through it.
func parseErrf(format string, args ...any) error {
	return senterr.Wrap(ErrParse, fmt.Errorf("sql: "+format, args...))
}

// Is marks bind errors as parse errors: an unbound placeholder fails the
// same way on every replica.
func (e *BindError) Is(target error) bool { return target == ErrParse }
