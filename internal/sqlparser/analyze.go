package sqlparser

import (
	"math/rand"
	"strings"
	"time"

	"cjdbc/internal/sqlval"
)

// StatementClass is the coarse classification the request manager routes on.
type StatementClass uint8

// Statement classes, per §2.4.1 of the paper: reads go to one backend,
// writes to all backends hosting the affected tables, and transaction
// demarcation to every backend with a started transaction.
const (
	ClassRead StatementClass = iota
	ClassWrite
	ClassBegin
	ClassCommit
	ClassRollback
)

// String names the class for logs and metrics.
func (c StatementClass) String() string {
	switch c {
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write"
	case ClassBegin:
		return "begin"
	case ClassCommit:
		return "commit"
	case ClassRollback:
		return "rollback"
	}
	return "unknown"
}

// Classify returns the statement class of st.
func Classify(st Statement) StatementClass {
	switch st.(type) {
	case *Select, *ShowTables:
		return ClassRead
	case *Begin:
		return ClassBegin
	case *Commit:
		return ClassCommit
	case *Rollback:
		return ClassRollback
	default:
		return ClassWrite
	}
}

// macroFuncs are the non-deterministic SQL functions the scheduler rewrites
// on the fly so that every backend stores exactly the same data (§2.4.1).
var macroFuncs = map[string]bool{
	"NOW": true, "RAND": true, "CURRENT_TIMESTAMP": true, "CURRENT_DATE": true,
}

// WalkExprs applies f to the root of every expression tree in st.
func WalkExprs(st Statement, f func(*Expr)) {
	walk := func(e *Expr) {
		if e != nil {
			e.Walk(f)
		}
	}
	switch s := st.(type) {
	case *CreateTable:
		for _, c := range s.Columns {
			walk(c.Default)
		}
		if s.AsSelect != nil {
			WalkExprs(s.AsSelect, f)
		}
	case *Insert:
		for _, row := range s.Rows {
			for _, e := range row {
				walk(e)
			}
		}
		if s.Query != nil {
			WalkExprs(s.Query, f)
		}
	case *Update:
		for _, a := range s.Set {
			walk(a.Value)
		}
		walk(s.Where)
	case *Delete:
		walk(s.Where)
	case *Select:
		for _, it := range s.Items {
			walk(it.Expr)
		}
		for _, tr := range s.From {
			walk(tr.On)
		}
		walk(s.Where)
		for _, g := range s.GroupBy {
			walk(g)
		}
		walk(s.Having)
		for _, o := range s.OrderBy {
			walk(o.Expr)
		}
		walk(s.Limit)
		walk(s.Offset)
	}
}

// HasMacros reports whether st contains a non-deterministic macro call.
func HasMacros(st Statement) bool {
	found := false
	WalkExprs(st, func(e *Expr) {
		if e.Kind == ExprFunc && macroFuncs[e.Func] {
			found = true
		}
	})
	return found
}

// RewriteMacros replaces every NOW()/CURRENT_TIMESTAMP with the fixed time
// now and every RAND() with a float drawn from rng, mutating st in place.
// The scheduler calls this once per write so that all replicas apply
// identical values.
func RewriteMacros(st Statement, now time.Time, rng *rand.Rand) {
	WalkExprs(st, func(e *Expr) {
		if e.Kind != ExprFunc || !macroFuncs[e.Func] {
			return
		}
		switch e.Func {
		case "NOW", "CURRENT_TIMESTAMP", "CURRENT_DATE":
			*e = Expr{Kind: ExprLiteral, Lit: sqlval.Time(now)}
		case "RAND":
			*e = Expr{Kind: ExprLiteral, Lit: sqlval.Float(rng.Float64())}
		}
	})
}

// WriteTarget returns the single table a write statement will take an
// exclusive lock on (its target), and ok=false for non-write statements.
// The clustering middleware reserves this lock at dispatch time.
func WriteTarget(st Statement) (string, bool) {
	switch s := st.(type) {
	case *Insert:
		return strings.ToLower(s.Table), true
	case *Update:
		return strings.ToLower(s.Table), true
	case *Delete:
		return strings.ToLower(s.Table), true
	case *CreateTable:
		return strings.ToLower(s.Table), true
	case *DropTable:
		return strings.ToLower(s.Table), true
	case *CreateIndex:
		return strings.ToLower(s.Table), true
	case *DropIndex:
		return strings.ToLower(s.Table), true
	}
	return "", false
}

// WrittenColumns returns the lower-cased columns a write statement modifies
// on its target table, or nil when the whole table must be assumed modified
// (DELETE, DDL, INSERT without a column list). Used by column-granularity
// cache invalidation.
func WrittenColumns(st Statement) []string {
	switch s := st.(type) {
	case *Insert:
		if len(s.Columns) == 0 {
			return nil
		}
		out := make([]string, len(s.Columns))
		for i, c := range s.Columns {
			out[i] = strings.ToLower(c)
		}
		return out
	case *Update:
		out := make([]string, len(s.Set))
		for i, a := range s.Set {
			out[i] = strings.ToLower(a.Column)
		}
		return out
	default:
		return nil
	}
}

// ReadColumns returns the lower-cased column names a SELECT references, and
// ok=false when the statement reads columns that cannot be enumerated
// (SELECT *). Used by column-granularity cache invalidation.
func ReadColumns(st Statement) (cols []string, ok bool) {
	sel, isSel := st.(*Select)
	if !isSel {
		return nil, false
	}
	seen := map[string]bool{}
	ok = true
	for _, it := range sel.Items {
		if it.Star {
			ok = false
		}
	}
	WalkExprs(sel, func(e *Expr) {
		if e.Kind == ExprColumn && !seen[e.Column] {
			seen[e.Column] = true
			cols = append(cols, e.Column)
		}
	})
	return cols, ok
}

// NumParams returns the number of ? placeholders in st.
func NumParams(st Statement) int {
	n := 0
	WalkExprs(st, func(e *Expr) {
		if e.Kind == ExprParam && e.ParamIdx+1 > n {
			n = e.ParamIdx + 1
		}
	})
	return n
}

// BindParams replaces every ? placeholder with the corresponding literal,
// mutating st in place. The request manager binds before logging so that
// recovery replay needs no parameter storage.
func BindParams(st Statement, params []sqlval.Value) error {
	var bindErr error
	WalkExprs(st, func(e *Expr) {
		if e.Kind != ExprParam {
			return
		}
		if e.ParamIdx >= len(params) {
			bindErr = &BindError{Index: e.ParamIdx, Have: len(params)}
			return
		}
		*e = Expr{Kind: ExprLiteral, Lit: params[e.ParamIdx]}
	})
	return bindErr
}

// BindError reports a placeholder without a bound value.
type BindError struct {
	Index int
	Have  int
}

// Error implements the error interface.
func (e *BindError) Error() string {
	return "sql: statement parameter " + itoa(e.Index+1) + " not bound (" + itoa(e.Have) + " provided)"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		n--
		b[n] = '-'
	}
	return string(b[n:])
}

// AccessInfo summarizes the statically knowable access shape of a
// statement: whether any top-level AND conjunct of its WHERE clause has an
// index-probeable form, and whether its ORDER BY has the shape an ordered
// index scan could satisfy. It is computed once per cached plan
// (plancache.Build) and shared by every clone of the statement — it records
// shapes, never literal values, so parameter binding does not invalidate
// it. The engine's access planner uses it as a fast bail-out: a cache hit
// whose statement cannot use any index skips the conjunct walk entirely,
// and one whose ORDER BY cannot be elided skips order planning.
type AccessInfo struct {
	// Indexable reports that some top-level conjunct is col = lit,
	// col IN (lits), col BETWEEN lit AND lit, or a </<=/>/>= comparison of
	// a column against a literal (parameters count as literals: they bind
	// to one before execution).
	Indexable bool
	// OrderElidable reports that every ORDER BY key resolves to a bare
	// column of the statement (directly, or through an integer position
	// into the select list) and that no select-list alias shadows such a
	// column with a different expression — the preconditions for replacing
	// the sort with an ordered-index scan. False when there is no ORDER BY.
	OrderElidable bool
}

// accessLit reports whether e can act as an index-probe operand: a literal
// now, or a parameter that becomes one at binding time.
func accessLit(e *Expr) bool {
	return e != nil && (e.Kind == ExprLiteral || e.Kind == ExprParam)
}

// AnalyzeAccess computes the AccessInfo of a WHERE clause plus (for SELECT)
// an ORDER BY over a select list. It is pure shape analysis over the AST —
// no catalog access — so it runs once at plan-cache build time.
func AnalyzeAccess(where *Expr, orderBy []OrderItem, items []SelectItem) *AccessInfo {
	ai := &AccessInfo{}
	var walk func(ex *Expr)
	walk = func(ex *Expr) {
		switch {
		case ex.Kind == ExprBinary && ex.Op == "AND":
			walk(ex.Left)
			walk(ex.Right)
		case ex.Kind == ExprBinary && (ex.Op == "=" || ex.Op == "<" || ex.Op == "<=" || ex.Op == ">" || ex.Op == ">="):
			col, lit := ex.Left, ex.Right
			if col.Kind != ExprColumn {
				col, lit = lit, col
			}
			if col.Kind == ExprColumn && accessLit(lit) {
				ai.Indexable = true
			}
		case ex.Kind == ExprIn && !ex.Not:
			if ex.Left == nil || ex.Left.Kind != ExprColumn {
				return
			}
			for _, item := range ex.List {
				if !accessLit(item) {
					return
				}
			}
			ai.Indexable = true
		case ex.Kind == ExprBetween && !ex.Not:
			if ex.Left != nil && ex.Left.Kind == ExprColumn && accessLit(ex.Low) && accessLit(ex.High) {
				ai.Indexable = true
			}
		}
	}
	if where != nil {
		walk(where)
	}
	if len(orderBy) > 0 {
		ai.OrderElidable = orderShapeElidable(orderBy, items)
	}
	return ai
}

// orderShapeElidable checks the AST-level preconditions for satisfying an
// ORDER BY by index scan: every key is a bare/qualified column or an integer
// position resolving to one, and no select-list alias captures a bare key's
// name for a different expression (orderRows would sort by that output
// column, so eliding the sort would diverge).
func orderShapeElidable(orderBy []OrderItem, items []SelectItem) bool {
	for _, oi := range orderBy {
		ex := oi.Expr
		if ex.Kind == ExprLiteral && ex.Lit.K == sqlval.KindInt {
			pos := int(ex.Lit.I) - 1
			if pos < 0 || pos >= len(items) {
				return false
			}
			// A star at or before the position expands to an unknown number
			// of output columns, so the positional reference cannot be
			// resolved against the select list here; orderRows resolves it
			// against the post-expansion output instead.
			for _, it := range items[:pos+1] {
				if it.Star {
					return false
				}
			}
			ex = items[pos].Expr
		}
		if ex == nil || ex.Kind != ExprColumn {
			return false
		}
		if ex.Table != "" {
			continue
		}
		for _, it := range items {
			if it.Star {
				continue // star output names are the columns themselves
			}
			name := strings.ToLower(it.Alias)
			if name == "" && it.Expr != nil && it.Expr.Kind == ExprColumn {
				name = it.Expr.Column
			}
			if name != ex.Column {
				continue
			}
			if it.Expr == nil || it.Expr.Kind != ExprColumn || it.Expr.Column != ex.Column {
				return false
			}
		}
	}
	return true
}
