package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"cjdbc/internal/sqlval"
)

// Parse parses a single SQL statement. A trailing semicolon is allowed.
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{src: sql, toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokOp, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected %q after statement", p.cur().text)
	}
	return st, nil
}

type parser struct {
	src     string
	toks    []token
	pos     int
	nparams int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokenKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

// atKw reports whether the current token is the given keyword.
func (p *parser) atKw(kw string) bool { return p.at(tokKeyword, kw) }

// accept consumes the current token when it matches.
func (p *parser) accept(k tokenKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKw(kw string) bool { return p.accept(tokKeyword, kw) }

func (p *parser) expect(k tokenKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokenKind]string{tokIdent: "identifier", tokNumber: "number", tokString: "string"}[k]
	}
	return token{}, p.errorf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) expectKw(kw string) error {
	_, err := p.expect(tokKeyword, kw)
	return err
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return parseErrf("%s (at offset %d in %q)", fmt.Sprintf(format, args...), p.cur().pos, truncate(p.src))
}

func truncate(s string) string {
	if len(s) > 80 {
		return s[:77] + "..."
	}
	return s
}

// ident accepts an identifier or a non-reserved keyword used as a name
// (type names like TEXT appear as column names in the wild).
func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	if t.kind == tokKeyword {
		switch t.text {
		case "KEY", "TEXT", "TIMESTAMP", "INDEX", "SHOW", "TABLES", "USE":
			p.pos++
			return strings.ToLower(t.text), nil
		}
	}
	return "", p.errorf("expected identifier, found %q", t.text)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.atKw("SELECT"):
		return p.parseSelect()
	case p.atKw("INSERT"):
		return p.parseInsert()
	case p.atKw("UPDATE"):
		return p.parseUpdate()
	case p.atKw("DELETE"):
		return p.parseDelete()
	case p.atKw("CREATE"):
		return p.parseCreate()
	case p.atKw("DROP"):
		return p.parseDrop()
	case p.acceptKw("BEGIN"):
		return &Begin{}, nil
	case p.acceptKw("START"):
		if err := p.expectKw("TRANSACTION"); err != nil {
			return nil, err
		}
		return &Begin{}, nil
	case p.acceptKw("COMMIT"):
		return &Commit{}, nil
	case p.acceptKw("ROLLBACK"):
		return &Rollback{}, nil
	case p.acceptKw("ABORT"):
		return &Rollback{}, nil
	case p.acceptKw("SHOW"):
		if err := p.expectKw("TABLES"); err != nil {
			return nil, err
		}
		return &ShowTables{}, nil
	}
	return nil, p.errorf("unsupported statement start %q", p.cur().text)
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	unique := p.acceptKw("UNIQUE")
	if p.acceptKw("INDEX") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &CreateIndex{Name: name, Table: table, Columns: cols, Unique: unique}, nil
	}
	if unique {
		return nil, p.errorf("expected INDEX after CREATE UNIQUE")
	}
	temp := p.acceptKw("TEMPORARY") || p.acceptKw("TEMP")
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	ct := &CreateTable{Temporary: temp}
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ct.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ct.Table = name
	if p.acceptKw("AS") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ct.AsSelect = sel
		return ct, nil
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	for {
		if p.acceptKw("PRIMARY") {
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			for {
				c, err := p.ident()
				if err != nil {
					return nil, err
				}
				ct.PrimaryKey = append(ct.PrimaryKey, c)
				if !p.accept(tokOp, ",") {
					break
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, col)
		}
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	var cd ColumnDef
	name, err := p.ident()
	if err != nil {
		return cd, err
	}
	cd.Name = name
	kind, err := p.parseType()
	if err != nil {
		return cd, err
	}
	cd.Type = kind
	for {
		switch {
		case p.acceptKw("NOT"):
			if err := p.expectKw("NULL"); err != nil {
				return cd, err
			}
			cd.NotNull = true
		case p.acceptKw("NULL"):
			// explicit NULL permission: nothing to record
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return cd, err
			}
			cd.PrimaryKey = true
			cd.NotNull = true
		case p.acceptKw("AUTO_INCREMENT"):
			cd.AutoIncrement = true
		case p.acceptKw("UNIQUE"):
			// accepted and ignored at column level
		case p.acceptKw("DEFAULT"):
			e, err := p.parseExpr()
			if err != nil {
				return cd, err
			}
			cd.Default = e
		case p.acceptKw("REFERENCES"):
			// REFERENCES table(col): parsed and ignored (no FK enforcement).
			if _, err := p.ident(); err != nil {
				return cd, err
			}
			if p.accept(tokOp, "(") {
				if _, err := p.ident(); err != nil {
					return cd, err
				}
				if _, err := p.expect(tokOp, ")"); err != nil {
					return cd, err
				}
			}
		default:
			return cd, nil
		}
	}
}

func (p *parser) parseType() (sqlval.Kind, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return sqlval.KindNull, p.errorf("expected type name, found %q", t.text)
	}
	p.pos++
	var k sqlval.Kind
	switch t.text {
	case "INTEGER", "INT", "BIGINT":
		k = sqlval.KindInt
	case "FLOAT", "DOUBLE", "REAL", "NUMERIC", "DECIMAL":
		k = sqlval.KindFloat
	case "VARCHAR", "TEXT", "CHAR":
		k = sqlval.KindString
	case "BOOLEAN":
		k = sqlval.KindBool
	case "TIMESTAMP", "DATETIME":
		k = sqlval.KindTime
	case "BLOB":
		k = sqlval.KindBytes
	default:
		return sqlval.KindNull, p.errorf("unknown type %q", t.text)
	}
	// Optional (n) or (p,s) size suffix.
	if p.accept(tokOp, "(") {
		if _, err := p.expect(tokNumber, ""); err != nil {
			return k, err
		}
		if p.accept(tokOp, ",") {
			if _, err := p.expect(tokNumber, ""); err != nil {
				return k, err
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return k, err
		}
	}
	return k, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	if p.acceptKw("INDEX") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Name: name, Table: table}, nil
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	dt := &DropTable{}
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		dt.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	dt.Table = name
	return dt, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.accept(tokOp, "(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
	}
	if p.atKw("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = sel
		return ins, nil
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var row []*Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	up := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assignment{Column: col, Value: e})
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = e
	}
	return up, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	sel.Distinct = p.acceptKw("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		first := true
		for {
			var tr TableRef
			if first {
				first = false
			} else if p.accept(tokOp, ",") || p.acceptKw("CROSS") && p.acceptKw("JOIN") {
				tr.Join = JoinCross
			} else if p.acceptKw("JOIN") || p.acceptKw("INNER") && p.acceptKw("JOIN") {
				tr.Join = JoinInner
			} else if p.acceptKw("LEFT") {
				p.acceptKw("OUTER")
				if err := p.expectKw("JOIN"); err != nil {
					return nil, err
				}
				tr.Join = JoinLeft
			} else {
				break
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			tr.Table = name
			if p.acceptKw("AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				tr.Alias = a
			} else if p.at(tokIdent, "") {
				tr.Alias, _ = p.ident()
			}
			if len(sel.From) > 0 && tr.Join != JoinCross {
				if err := p.expectKw("ON"); err != nil {
					return nil, err
				}
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				tr.On = on
			}
			sel.From = append(sel.From, tr)
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				oi.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, oi)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
		if p.acceptKw("OFFSET") {
			o, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.Offset = o
		} else if p.accept(tokOp, ",") {
			// MySQL LIMIT offset, count form.
			c, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.Offset = sel.Limit
			sel.Limit = c
		}
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokOp, "*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form: identifier '.' '*'
	if p.cur().kind == tokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokOp && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokOp && p.toks[p.pos+2].text == "*" {
		tbl := p.next().text
		p.next()
		p.next()
		return SelectItem{Star: true, Table: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return item, err
		}
		item.Alias = a
	} else if p.at(tokIdent, "") {
		item.Alias, _ = p.ident()
	}
	return item, nil
}

// Expression parsing: precedence climbing.
// OR < AND < NOT < comparison/IN/LIKE/BETWEEN/IS < add < mul < unary < primary.

func (p *parser) parseExpr() (*Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (*Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Expr{Kind: ExprBinary, Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (*Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Expr{Kind: ExprBinary, Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (*Expr, error) {
	if p.acceptKw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprUnary, Op: "NOT", Left: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (*Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokOp, "="), p.at(tokOp, "<"), p.at(tokOp, ">"),
			p.at(tokOp, "<="), p.at(tokOp, ">="), p.at(tokOp, "<>"), p.at(tokOp, "!="):
			op := p.next().text
			if op == "!=" {
				op = "<>"
			}
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			left = &Expr{Kind: ExprBinary, Op: op, Left: left, Right: right}
		case p.atKw("LIKE"), p.atKw("IN"), p.atKw("BETWEEN"), p.atKw("IS"), p.atKw("NOT"):
			not := p.acceptKw("NOT")
			switch {
			case p.acceptKw("LIKE"):
				right, err := p.parseAdd()
				if err != nil {
					return nil, err
				}
				left = &Expr{Kind: ExprBinary, Op: "LIKE", Left: left, Right: right, Not: not}
			case p.acceptKw("IN"):
				if _, err := p.expect(tokOp, "("); err != nil {
					return nil, err
				}
				var list []*Expr
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					list = append(list, e)
					if !p.accept(tokOp, ",") {
						break
					}
				}
				if _, err := p.expect(tokOp, ")"); err != nil {
					return nil, err
				}
				left = &Expr{Kind: ExprIn, Left: left, List: list, Not: not}
			case p.acceptKw("BETWEEN"):
				low, err := p.parseAdd()
				if err != nil {
					return nil, err
				}
				if err := p.expectKw("AND"); err != nil {
					return nil, err
				}
				high, err := p.parseAdd()
				if err != nil {
					return nil, err
				}
				left = &Expr{Kind: ExprBetween, Left: left, Low: low, High: high, Not: not}
			case !not && p.acceptKw("IS"):
				isNot := p.acceptKw("NOT")
				if err := p.expectKw("NULL"); err != nil {
					return nil, err
				}
				left = &Expr{Kind: ExprIsNull, Left: left, Not: isNot}
			default:
				return nil, p.errorf("expected LIKE, IN or BETWEEN after NOT")
			}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseAdd() (*Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.at(tokOp, "+"), p.at(tokOp, "-"), p.at(tokOp, "||"):
			op = p.next().text
		default:
			return left, nil
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &Expr{Kind: ExprBinary, Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMul() (*Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.at(tokOp, "*"), p.at(tokOp, "/"), p.at(tokOp, "%"):
			op = p.next().text
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Expr{Kind: ExprBinary, Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (*Expr, error) {
	if p.accept(tokOp, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if e.Kind == ExprLiteral {
			// Fold -literal so INSERT VALUES stay literal-only.
			switch e.Lit.K {
			case sqlval.KindInt:
				return &Expr{Kind: ExprLiteral, Lit: sqlval.Int(-e.Lit.I)}, nil
			case sqlval.KindFloat:
				return &Expr{Kind: ExprLiteral, Lit: sqlval.Float(-e.Lit.F)}, nil
			}
		}
		return &Expr{Kind: ExprUnary, Op: "-", Left: e}, nil
	}
	p.accept(tokOp, "+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &Expr{Kind: ExprLiteral, Lit: sqlval.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &Expr{Kind: ExprLiteral, Lit: sqlval.Int(i)}, nil
	case tokString:
		p.pos++
		return &Expr{Kind: ExprLiteral, Lit: sqlval.String_(t.text)}, nil
	case tokParam:
		p.pos++
		e := &Expr{Kind: ExprParam, ParamIdx: p.nparams}
		p.nparams++
		return e, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.pos++
			return &Expr{Kind: ExprLiteral, Lit: sqlval.Null}, nil
		case "TRUE":
			p.pos++
			return &Expr{Kind: ExprLiteral, Lit: sqlval.Bool(true)}, nil
		case "FALSE":
			p.pos++
			return &Expr{Kind: ExprLiteral, Lit: sqlval.Bool(false)}, nil
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.text)
	case tokOp:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "*" {
			p.pos++
			return &Expr{Kind: ExprStar}, nil
		}
		return nil, p.errorf("unexpected %q in expression", t.text)
	case tokIdent:
		name := p.next().text
		if p.accept(tokOp, "(") {
			return p.parseCall(name)
		}
		if p.accept(tokOp, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprColumn, Table: strings.ToLower(name), Column: strings.ToLower(col)}, nil
		}
		return &Expr{Kind: ExprColumn, Column: strings.ToLower(name)}, nil
	}
	return nil, p.errorf("unexpected token %q", t.text)
}

func (p *parser) parseCall(name string) (*Expr, error) {
	e := &Expr{Kind: ExprFunc, Func: strings.ToUpper(name)}
	if p.accept(tokOp, ")") {
		return e, nil
	}
	e.Distinct = p.acceptKw("DISTINCT")
	for {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		e.Args = append(e.Args, arg)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return e, nil
}
