package conflictsched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolPreservesPerKeyOrder: tasks sharing a key run in submission
// order; the recorded sequence restricted to any key must be ascending.
func TestPoolPreservesPerKeyOrder(t *testing.T) {
	for _, workers := range []int{-1, 1, 4} {
		p := NewPool(workers)
		var mu sync.Mutex
		order := make(map[string][]int)
		const n = 200
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%d", i%4)
			i := i
			p.Submit([]string{key}, false, func() {
				mu.Lock()
				order[key] = append(order[key], i)
				mu.Unlock()
			})
		}
		p.Stop()
		for key, seq := range order {
			for j := 1; j < len(seq); j++ {
				if seq[j] < seq[j-1] {
					t.Fatalf("workers=%d: key %s ran out of order: %v", workers, key, seq)
				}
			}
		}
	}
}

// TestPoolBarrierSplitsPhases: everything before a barrier finishes before
// it runs, and everything after waits for it.
func TestPoolBarrierSplitsPhases(t *testing.T) {
	p := NewPool(4)
	var before, after atomic.Int32
	var barrierSawBefore, afterSawBarrier atomic.Int32
	for i := 0; i < 16; i++ {
		p.Submit([]string{fmt.Sprintf("k%d", i)}, false, func() {
			time.Sleep(time.Millisecond)
			before.Add(1)
		})
	}
	var barrierDone atomic.Bool
	p.Submit(nil, true, func() {
		barrierSawBefore.Store(before.Load())
		barrierDone.Store(true)
	})
	for i := 0; i < 16; i++ {
		p.Submit([]string{fmt.Sprintf("k%d", i)}, false, func() {
			if barrierDone.Load() {
				afterSawBarrier.Add(1)
			}
			after.Add(1)
		})
	}
	p.Stop()
	if barrierSawBefore.Load() != 16 {
		t.Fatalf("barrier ran after %d/16 predecessors", barrierSawBefore.Load())
	}
	if afterSawBarrier.Load() != 16 {
		t.Fatalf("%d/16 successors ran before the barrier finished", afterSawBarrier.Load())
	}
	if after.Load() != 16 {
		t.Fatalf("after = %d", after.Load())
	}
}

// TestPoolGateParksTask: a gated task does not run — and does not occupy a
// worker — until its gate is released, even on a one-worker pool.
func TestPoolGateParksTask(t *testing.T) {
	p := NewPool(1)
	var gatedRan, freeRan atomic.Bool
	release := p.SubmitGated([]string{"hot"}, false, func() { gatedRan.Store(true) })
	p.Submit([]string{"cold"}, false, func() { freeRan.Store(true) })
	deadline := time.Now().Add(2 * time.Second)
	for !freeRan.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !freeRan.Load() {
		t.Fatal("a parked gated task starved the single worker")
	}
	if gatedRan.Load() {
		t.Fatal("gated task ran before its gate was released")
	}
	release()
	release() // idempotent
	p.Stop()
	if !gatedRan.Load() {
		t.Fatal("gated task never ran after release")
	}
}

// TestPoolForceGates: ForceGates opens outstanding gates and makes new
// gates open immediately, so a shutdown can always drain.
func TestPoolForceGates(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int32
	p.SubmitGated([]string{"a"}, false, func() { ran.Add(1) })
	p.SubmitGated([]string{"b"}, false, func() { ran.Add(1) })
	p.ForceGates()
	p.SubmitGated([]string{"c"}, false, func() { ran.Add(1) }) // post-force gate opens immediately
	p.Stop()
	if ran.Load() != 3 {
		t.Fatalf("ran = %d, want 3", ran.Load())
	}
}

// TestPoolDrainWaitsForAll: Drain returns only after every submitted task
// (including chained dependents) finished.
func TestPoolDrainWaitsForAll(t *testing.T) {
	p := NewPool(3)
	var ran atomic.Int32
	for i := 0; i < 50; i++ {
		p.Submit([]string{"k"}, false, func() { ran.Add(1) })
	}
	p.Drain()
	if ran.Load() != 50 {
		t.Fatalf("Drain returned with %d/50 done", ran.Load())
	}
	p.Stop()
}

// TestPoolOpenGatesIsOneShot: OpenGates flushes every currently parked
// gated task but, unlike ForceGates, leaves the gating mechanism intact —
// a gate created afterwards parks its task again until released.
func TestPoolOpenGatesIsOneShot(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int32
	p.SubmitGated([]string{"a"}, false, func() { ran.Add(1) })
	p.SubmitGated([]string{"b"}, false, func() { ran.Add(1) })
	p.OpenGates()
	p.Drain()
	if ran.Load() != 2 {
		t.Fatalf("OpenGates flushed %d/2 parked tasks", ran.Load())
	}
	var lateRan atomic.Bool
	release := p.SubmitGated([]string{"c"}, false, func() { lateRan.Store(true) })
	time.Sleep(10 * time.Millisecond)
	if lateRan.Load() {
		t.Fatal("a gate created after OpenGates did not park its task")
	}
	release()
	p.Stop()
	if !lateRan.Load() {
		t.Fatal("released task never ran")
	}
}
