package conflictsched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDisjointKeysShareNoDependencies: tasks on disjoint keys get only the
// (already closed) initial barrier as dependency, so neither waits on the
// other.
func TestDisjointKeysShareNoDependencies(t *testing.T) {
	tr := NewTracker()
	depsA, finA := tr.Enter([]string{"a"}, false)
	depsB, finB := tr.Enter([]string{"b"}, false)
	defer close(finA)
	defer close(finB)

	done := make(chan struct{})
	go func() {
		Wait(depsB) // must not block on task A
		Wait(depsA)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("disjoint tasks blocked on each other")
	}
}

// TestSameKeyChainsInOrder: tasks sharing a key run strictly in Enter
// order.
func TestSameKeyChainsInOrder(t *testing.T) {
	tr := NewTracker()
	const n = 50
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		deps, fin := tr.Enter([]string{"t"}, false)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			Wait(deps)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			close(fin)
		}(i)
	}
	wg.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-key order violated: %v", order)
		}
	}
}

// TestBarrierOrdersEverything: a barrier waits for all earlier tasks and
// every later task waits for the barrier, across all keys.
func TestBarrierOrdersEverything(t *testing.T) {
	tr := NewTracker()
	var phase atomic.Int32 // 0: before barrier, 1: barrier ran, 2: after ran

	depsA, finA := tr.Enter([]string{"a"}, false)
	depsBar, finBar := tr.Enter(nil, true)
	depsB, finB := tr.Enter([]string{"b"}, false) // disjoint key, still behind the barrier

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		Wait(depsB)
		if phase.Load() != 1 {
			t.Error("post-barrier task ran before the barrier completed")
		}
		phase.Store(2)
		close(finB)
	}()
	go func() {
		defer wg.Done()
		Wait(depsBar)
		if phase.Load() != 0 {
			t.Error("barrier ran before earlier tasks completed")
		}
		phase.Store(1)
		close(finBar)
	}()
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond) // let the others reach their waits
		Wait(depsA)
		close(finA)
	}()
	wg.Wait()
}

// TestConcurrentEnterIsSafe: Enter under -race from many goroutines.
func TestConcurrentEnterIsSafe(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	keys := []string{"a", "b", "c", "d"}
	for i := 0; i < 200; i++ {
		deps, fin := tr.Enter([]string{keys[i%len(keys)]}, i%17 == 0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			Wait(deps)
			close(fin)
		}()
	}
	wg.Wait()
}

// TestMultiKeyTaskJoinsAllChains: a task with footprint {a,b} waits for the
// newest task of both chains and becomes the head of both.
func TestMultiKeyTaskJoinsAllChains(t *testing.T) {
	tr := NewTracker()
	_, finA := tr.Enter([]string{"a"}, false)
	_, finB := tr.Enter([]string{"b"}, false)
	depsAB, finAB := tr.Enter([]string{"a", "b"}, false)
	defer close(finAB)

	ran := make(chan struct{})
	go func() {
		Wait(depsAB)
		close(ran)
	}()
	select {
	case <-ran:
		t.Fatal("multi-key task ran before its chains completed")
	case <-time.After(10 * time.Millisecond):
	}
	close(finA)
	select {
	case <-ran:
		t.Fatal("multi-key task ran with one chain still pending")
	case <-time.After(10 * time.Millisecond):
	}
	close(finB)
	select {
	case <-ran:
	case <-time.After(time.Second):
		t.Fatal("multi-key task never ran")
	}
}
