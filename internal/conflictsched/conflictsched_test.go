package conflictsched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDisjointKeysDoNotChain: a task on key b runs to completion while an
// earlier task on key a is still blocked mid-execution.
func TestDisjointKeysDoNotChain(t *testing.T) {
	p := NewPool(2)
	hold := make(chan struct{})
	var bRan atomic.Bool
	p.Submit([]string{"a"}, false, func() { <-hold })
	p.Submit([]string{"b"}, false, func() { bRan.Store(true) })
	deadline := time.Now().Add(time.Second)
	for !bRan.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !bRan.Load() {
		t.Fatal("disjoint tasks chained on each other")
	}
	close(hold)
	p.Stop()
}

// TestMultiKeyTaskJoinsAllChains: a task with footprint {a,b} waits for the
// newest task of both chains and becomes the head of both.
func TestMultiKeyTaskJoinsAllChains(t *testing.T) {
	p := NewPool(3)
	holdA := make(chan struct{})
	holdB := make(chan struct{})
	var abRan, afterARan atomic.Bool
	p.Submit([]string{"a"}, false, func() { <-holdA })
	p.Submit([]string{"b"}, false, func() { <-holdB })
	p.Submit([]string{"a", "b"}, false, func() { abRan.Store(true) })
	// A later task on key a must chain through the multi-key task.
	p.Submit([]string{"a"}, false, func() {
		if !abRan.Load() {
			t.Error("task on {a} overtook the multi-key head of its chain")
		}
		afterARan.Store(true)
	})

	time.Sleep(10 * time.Millisecond)
	if abRan.Load() {
		t.Fatal("multi-key task ran before its chains completed")
	}
	close(holdA)
	time.Sleep(10 * time.Millisecond)
	if abRan.Load() {
		t.Fatal("multi-key task ran with one chain still pending")
	}
	close(holdB)
	p.Stop()
	if !abRan.Load() || !afterARan.Load() {
		t.Fatalf("abRan=%v afterARan=%v, want both", abRan.Load(), afterARan.Load())
	}
}

// TestConcurrentSubmitIsSafe: Submit and worker completion race under
// -race; per-key ordering among one submitter's tasks is exercised by
// TestPoolPreservesPerKeyOrder — here only safety is asserted.
func TestConcurrentSubmitIsSafe(t *testing.T) {
	p := NewPool(4)
	var wg sync.WaitGroup
	var ran atomic.Int32
	keys := []string{"a", "b", "c", "d"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Submit([]string{keys[(g+i)%len(keys)]}, i%17 == 0, func() { ran.Add(1) })
			}
		}(g)
	}
	wg.Wait()
	p.Stop()
	if ran.Load() != 400 {
		t.Fatalf("ran = %d, want 400", ran.Load())
	}
}
