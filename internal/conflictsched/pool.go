package conflictsched

import (
	"runtime"
	"sync"
)

// Pool executes a totally ordered stream of submitted tasks on a fixed set
// of worker goroutines, honoring the package's conflict-class dependency
// rule without a goroutine per task: a submitted task is parked until
// every dependency has finished (dependency counting, not channel waits) and
// its readiness gate — an external ordering signal such as an engine lock
// ticket being granted — has opened, then pushed onto one shared ready
// queue. Any idle worker pulls the oldest ready task regardless of which
// conflict lane it belongs to (lane work-stealing: workers are not bound to
// lanes, so a deep lane cannot idle workers while other lanes have ready
// work).
//
// Submission order is the serialization order the pool preserves per key:
// callers must Submit in that order.
type Pool struct {
	mu          sync.Mutex
	cond        *sync.Cond
	lastByKey   map[string]*ptask
	lastBarrier *ptask
	readyHead   *ptask
	readyTail   *ptask
	inflight    int  // submitted but not finished
	stopped     bool // workers exit once the ready queue is empty
	gatesForced bool // ForceGates was called: new gates open immediately
	gated       map[*ptask]struct{}
	legacy      bool // goroutine-per-ready-task baseline (workers < 0)
	workers     sync.WaitGroup
}

// ptask is one submitted task with its dependency bookkeeping. All fields
// are guarded by the pool mutex.
type ptask struct {
	run        func()
	pending    int      // unfinished dependencies
	gate       bool     // readiness also requires the gate to open
	dependents []*ptask // tasks waiting on this one (one entry per key edge)
	done       bool
	queued     bool
	next       *ptask // ready-queue link
}

// NewPool creates a pool. workers > 0 runs that many workers; 0 defaults to
// GOMAXPROCS; negative runs no resident workers and instead spawns one
// goroutine per task when it becomes ready — the goroutine-per-write
// execution model the pool replaces, kept as the measurement baseline for
// benchmarks and equivalence tests.
func NewPool(workers int) *Pool {
	p := &Pool{
		lastByKey: make(map[string]*ptask),
		gated:     make(map[*ptask]struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	if workers < 0 {
		p.legacy = true
		return p
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p.workers.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Submit registers the next task of the sequence with its conflict
// footprint (keys, or barrier) and schedules it once every conflicting
// predecessor has finished. run is executed exactly once, on a worker.
func (p *Pool) Submit(keys []string, barrier bool, run func()) {
	p.submit(keys, barrier, false, run)
}

// SubmitGated is Submit with an additional readiness gate: the task also
// waits for the returned release function to be called (for example by an
// engine lock ticket's grant notification). release is idempotent and safe
// to call from any goroutine, including synchronously during SubmitGated's
// caller.
func (p *Pool) SubmitGated(keys []string, barrier bool, run func()) (release func()) {
	t := p.submit(keys, barrier, true, run)
	return func() {
		p.mu.Lock()
		p.openGateLocked(t)
		p.mu.Unlock()
	}
}

func (p *Pool) submit(keys []string, barrier, gate bool, run func()) *ptask {
	t := &ptask{run: run, gate: gate}
	p.mu.Lock()
	if p.gatesForced {
		t.gate = false
	}
	if t.gate {
		p.gated[t] = struct{}{}
	}
	p.inflight++
	addDep := func(d *ptask) {
		if d != nil && !d.done {
			d.dependents = append(d.dependents, t)
			t.pending++
		}
	}
	// A barrier clears the key map, so lastByKey only ever holds
	// non-barrier tasks newer than lastBarrier.
	addDep(p.lastBarrier)
	if barrier {
		for _, d := range p.lastByKey {
			addDep(d)
		}
		p.lastByKey = make(map[string]*ptask)
		p.lastBarrier = t
	} else {
		for _, k := range keys {
			addDep(p.lastByKey[k])
			p.lastByKey[k] = t
		}
	}
	p.maybeReadyLocked(t)
	p.mu.Unlock()
	return t
}

// openGateLocked opens a task's readiness gate (idempotent).
func (p *Pool) openGateLocked(t *ptask) {
	if !t.gate {
		return
	}
	t.gate = false
	delete(p.gated, t)
	p.maybeReadyLocked(t)
}

// maybeReadyLocked pushes the task onto the ready queue when runnable.
func (p *Pool) maybeReadyLocked(t *ptask) {
	if t.pending != 0 || t.gate || t.queued || t.done {
		return
	}
	t.queued = true
	if p.legacy {
		go func() {
			t.run()
			p.finish(t)
		}()
		return
	}
	if p.readyTail == nil {
		p.readyHead = t
	} else {
		p.readyTail.next = t
	}
	p.readyTail = t
	p.cond.Broadcast()
}

// finish marks a task complete and wakes its runnable dependents.
func (p *Pool) finish(t *ptask) {
	p.mu.Lock()
	t.done = true
	p.inflight--
	for _, d := range t.dependents {
		d.pending--
		p.maybeReadyLocked(d)
	}
	t.dependents = nil
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *Pool) worker() {
	defer p.workers.Done()
	p.mu.Lock()
	for {
		for p.readyHead == nil && !p.stopped {
			p.cond.Wait()
		}
		t := p.readyHead
		if t == nil {
			p.mu.Unlock()
			return
		}
		p.readyHead = t.next
		if p.readyHead == nil {
			p.readyTail = nil
		}
		t.next = nil
		p.mu.Unlock()
		t.run()
		p.finish(t)
		p.mu.Lock()
	}
}

// ForceGates opens every outstanding readiness gate and makes all future
// gates open immediately. A shutting-down owner calls it so tasks whose
// external signal will never arrive (for example an engine ticket queued
// behind a transaction that will not end) still run — and observe the
// owner's closed state — instead of parking forever.
func (p *Pool) ForceGates() {
	p.mu.Lock()
	p.gatesForced = true
	for t := range p.gated {
		p.openGateLocked(t)
	}
	p.mu.Unlock()
}

// OpenGates opens every readiness gate outstanding right now, one-shot:
// unlike ForceGates it leaves future gates intact, so the pool keeps
// honoring external ordering signals afterwards. A backend's
// crash-consistent disable uses it to flush the tasks parked on tickets a
// dead transaction will never grant — they run, observe the disabled state,
// and release their pre-bound connections — while the backend itself stays
// usable for re-integration and re-enable.
func (p *Pool) OpenGates() {
	p.mu.Lock()
	for t := range p.gated {
		p.openGateLocked(t)
	}
	p.mu.Unlock()
}

// Drain blocks until every submitted task has finished. The caller must
// ensure no concurrent Submit races the drain if it needs "all work done"
// semantics.
func (p *Pool) Drain() {
	p.mu.Lock()
	for p.inflight > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Stop drains the pool and terminates its workers. The pool must not be
// used afterwards.
func (p *Pool) Stop() {
	p.mu.Lock()
	for p.inflight > 0 {
		p.cond.Wait()
	}
	p.stopped = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.workers.Wait()
}
