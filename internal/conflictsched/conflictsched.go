// Package conflictsched implements the conflict-class dependency rule
// shared by every pipeline that turns a totally ordered stream of write
// operations into parallel execution: the backend's auto-commit write
// pool, the parallel recovery-log replayer, and the distributed
// controller's delivery applier. A task entering the pool waits only on
// the completion of the newest earlier task per key of its conflict
// footprint (keys are table names, plus synthetic keys such as transaction
// identifiers); a barrier task — DDL, an unknown footprint — waits for
// everything ahead of it and everything behind it waits for the barrier.
// Because each per-key chain is linked through the newest task, waiting on
// the newest transitively waits on the whole chain, so submission order
// restricted to any conflict class is preserved while disjoint classes run
// concurrently. The rule lives in Pool (pool.go), which also supplies the
// execution vehicle: dependency-counted ready-task handoff onto a fixed
// worker set.
package conflictsched

import "strconv"

// TxKey returns the synthetic pool key chaining the operations of one
// transaction: they must keep their submission order even when their table
// footprints are disjoint. Table names are SQL identifiers, so the NUL
// prefix cannot collide with a table key.
func TxKey(id uint64) string {
	return "\x00tx:" + strconv.FormatUint(id, 10)
}

// KeysWithTx returns a task's pool keys: its table footprint plus, for
// a transactional task (txID != 0), the transaction key. The result is a
// fresh slice; tables is not modified.
func KeysWithTx(tables []string, txID uint64) []string {
	if txID == 0 {
		return tables
	}
	return append(append(make([]string, 0, len(tables)+1), tables...), TxKey(txID))
}
