// Package conflictsched implements the conflict-class dependency rule
// shared by every pipeline that turns a totally ordered stream of write
// operations into parallel execution: the backend's auto-commit write
// lanes, the parallel recovery-log replayer, and the distributed
// controller's delivery applier. A task entering the tracker waits only on
// the completion of the newest earlier task per key of its conflict
// footprint (keys are table names, plus synthetic keys such as transaction
// identifiers); a barrier task — DDL, an unknown footprint — waits for
// everything ahead of it and everything behind it waits for the barrier.
// Because each per-key chain is linked through the newest task, waiting on
// the newest transitively waits on the whole chain, so submission order
// restricted to any conflict class is preserved while disjoint classes run
// concurrently.
package conflictsched

import (
	"strconv"
	"sync"
)

// Done is one task's completion signal: closed by the task when it
// finishes. Tasks wait on the Done signals the tracker hands them.
type Done <-chan struct{}

// Tracker assigns dependencies to a sequence of tasks submitted in their
// required serialization order. Enter is safe for concurrent use, but the
// order of Enter calls is the order the tracker preserves per key — callers
// that need a specific serialization (delivery order, log sequence order)
// must call Enter in that order.
type Tracker struct {
	mu        sync.Mutex
	lastByKey map[string]chan struct{}
	// lastBarrier is the newest barrier task's completion signal; it starts
	// closed so the first tasks have no barrier to wait for.
	lastBarrier chan struct{}
}

// NewTracker creates an empty tracker.
func NewTracker() *Tracker {
	closed := make(chan struct{})
	close(closed)
	return &Tracker{
		lastByKey:   make(map[string]chan struct{}),
		lastBarrier: closed,
	}
}

// Enter registers the next task of the sequence. keys is the task's
// conflict footprint; barrier marks a task that conflicts with everything
// (ignored keys). It returns the dependencies the task must wait for before
// running, and the task's own completion signal fin, which the caller MUST
// close when the task finishes (whether it succeeded, failed or was
// skipped) — a fin left open blocks every later task of the same class
// forever.
func (t *Tracker) Enter(keys []string, barrier bool) (deps []Done, fin chan struct{}) {
	fin = make(chan struct{})
	t.mu.Lock()
	defer t.mu.Unlock()
	deps = append(deps, Done(t.lastBarrier))
	if barrier {
		// Wait for every chain's newest task (transitively, the whole
		// chain), then become the signal every later task waits on.
		for _, ch := range t.lastByKey {
			deps = append(deps, Done(ch))
		}
		t.lastByKey = make(map[string]chan struct{})
		t.lastBarrier = fin
		return deps, fin
	}
	for _, k := range keys {
		if ch, ok := t.lastByKey[k]; ok {
			deps = append(deps, Done(ch))
		}
		t.lastByKey[k] = fin
	}
	return deps, fin
}

// Wait blocks until every dependency has completed.
func Wait(deps []Done) {
	for _, d := range deps {
		<-d
	}
}

// TxKey returns the synthetic tracker key chaining the operations of one
// transaction: they must keep their submission order even when their table
// footprints are disjoint. Table names are SQL identifiers, so the NUL
// prefix cannot collide with a table key.
func TxKey(id uint64) string {
	return "\x00tx:" + strconv.FormatUint(id, 10)
}

// KeysWithTx returns a task's tracker keys: its table footprint plus, for
// a transactional task (txID != 0), the transaction key. The result is a
// fresh slice; tables is not modified.
func KeysWithTx(tables []string, txID uint64) []string {
	if txID == 0 {
		return tables
	}
	return append(append(make([]string, 0, len(tables)+1), tables...), TxKey(txID))
}
