package admin

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"cjdbc/internal/backend"
	"cjdbc/internal/balancer"
	"cjdbc/internal/controller"
	"cjdbc/internal/recovery"
	"cjdbc/internal/sqlengine"
)

func newTestServer(t *testing.T) (*Server, *controller.VirtualDatabase) {
	t.Helper()
	c := controller.New("ctrl", 1)
	vdb, err := c.AddVirtualDatabase(controller.VDBConfig{
		Name: "app", ParallelTx: true, RecoveryLog: recovery.NewMemoryLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	b := backend.New(backend.Config{Name: "db0", Driver: &backend.EngineDriver{Engine: sqlengine.New("db0")}})
	t.Cleanup(b.Close)
	if err := vdb.AddBackend(b); err != nil {
		t.Fatal(err)
	}
	return New(c), vdb
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestListVDBs(t *testing.T) {
	s, _ := newTestServer(t)
	rec := get(t, s.Handler(), "/vdbs")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var names []string
	if err := json.Unmarshal(rec.Body.Bytes(), &names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "app" {
		t.Errorf("names = %v", names)
	}
}

func TestVDBInfo(t *testing.T) {
	s, _ := newTestServer(t)
	rec := get(t, s.Handler(), "/vdbs/app")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var info VDBInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "app" || len(info.Backends) != 1 || info.Backends[0].State != "enabled" {
		t.Errorf("info = %+v", info)
	}
}

func TestMissingVDB404(t *testing.T) {
	s, _ := newTestServer(t)
	if rec := get(t, s.Handler(), "/vdbs/none"); rec.Code != 404 {
		t.Errorf("status = %d", rec.Code)
	}
}

func TestDisableEnableBackend(t *testing.T) {
	s, vdb := newTestServer(t)
	if rec := get(t, s.Handler(), "/vdbs/app/disable?backend=db0"); rec.Code != 200 {
		t.Fatalf("disable status = %d", rec.Code)
	}
	b, _ := vdb.Backend("db0")
	if b.Enabled() {
		t.Fatal("backend still enabled")
	}
	if rec := get(t, s.Handler(), "/vdbs/app/enable?backend=db0"); rec.Code != 200 {
		t.Fatalf("enable status = %d", rec.Code)
	}
	if !b.Enabled() {
		t.Fatal("backend still disabled")
	}
	if rec := get(t, s.Handler(), "/vdbs/app/enable?backend=missing"); rec.Code != 404 {
		t.Errorf("enable missing backend = %d", rec.Code)
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	s, vdb := newTestServer(t)
	if rec := get(t, s.Handler(), "/vdbs/app/checkpoint?name=cp1"); rec.Code != 200 {
		t.Fatalf("checkpoint status = %d, body=%s", rec.Code, rec.Body.String())
	}
	seq, ok, err := vdb.RecoveryLog().CheckpointSeq("cp1")
	if err != nil || !ok || seq == 0 {
		t.Errorf("checkpoint not recorded: %d %v %v", seq, ok, err)
	}
	if rec := get(t, s.Handler(), "/vdbs/app/checkpoint"); rec.Code != 400 {
		t.Errorf("nameless checkpoint = %d", rec.Code)
	}
}

func TestUnknownAction(t *testing.T) {
	s, _ := newTestServer(t)
	if rec := get(t, s.Handler(), "/vdbs/app/frobnicate"); rec.Code != 404 {
		t.Errorf("unknown action = %d", rec.Code)
	}
}

func TestPlacementEndpoints(t *testing.T) {
	c := controller.New("ctrl", 1)
	vdb, err := c.AddVirtualDatabase(controller.VDBConfig{
		Name:        "papp",
		Replication: balancer.NewPartialReplication(nil),
		ParallelTx:  true,
		RecoveryLog: recovery.NewMemoryLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tables := range [][]string{{"a"}, nil} {
		name := "db" + string(rune('0'+i))
		e := sqlengine.New(name)
		if i == 0 {
			es := e.NewSession()
			if _, err := es.ExecSQL("CREATE TABLE a (id INTEGER PRIMARY KEY, v INTEGER)"); err != nil {
				t.Fatal(err)
			}
			if _, err := es.ExecSQL("INSERT INTO a (id, v) VALUES (1, 0)"); err != nil {
				t.Fatal(err)
			}
			es.Close()
		}
		b := backend.New(backend.Config{Name: name, Driver: &backend.EngineDriver{Engine: e}, Tables: tables})
		t.Cleanup(b.Close)
		if err := vdb.AddBackend(b); err != nil {
			t.Fatal(err)
		}
	}
	s := New(c)

	// One read through the vdb so the load counters are non-empty.
	sess, err := vdb.NewSession("user", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Exec("SELECT COUNT(*) FROM a", nil); err != nil {
		t.Fatal(err)
	}

	var info VDBInfo
	rec := get(t, s.Handler(), "/vdbs/papp")
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if len(info.Placement["a"]) != 1 || info.Placement["a"][0] != "db0" {
		t.Fatalf("placement = %v", info.Placement)
	}
	if len(info.TableLoads) == 0 || info.TableLoads[0].Table != "a" || info.TableLoads[0].Reads == 0 {
		t.Fatalf("tableLoads = %+v", info.TableLoads)
	}

	if rec := get(t, s.Handler(), "/vdbs/papp/addtablehost?table=a&backend=db1"); rec.Code != 200 {
		t.Fatalf("addtablehost = %d, body=%s", rec.Code, rec.Body.String())
	}
	rec = get(t, s.Handler(), "/vdbs/papp")
	info = VDBInfo{}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if len(info.Placement["a"]) != 2 {
		t.Fatalf("placement after add = %v", info.Placement)
	}

	if rec := get(t, s.Handler(), "/vdbs/papp/addtablehost?table=a&backend=db1"); rec.Code != 409 {
		t.Fatalf("duplicate addtablehost = %d", rec.Code)
	}
	if rec := get(t, s.Handler(), "/vdbs/papp/removetablehost?table=a&backend=db0"); rec.Code != 200 {
		t.Fatalf("removetablehost = %d, body=%s", rec.Code, rec.Body.String())
	}
	if rec := get(t, s.Handler(), "/vdbs/papp/removetablehost?table=a&backend=db1"); rec.Code != 409 {
		t.Fatalf("last-host removetablehost = %d", rec.Code)
	}
	if rec := get(t, s.Handler(), "/vdbs/papp/addtablehost?table=a"); rec.Code != 400 {
		t.Fatalf("missing backend param = %d", rec.Code)
	}
}

func TestListenServesHTTP(t *testing.T) {
	s, _ := newTestServer(t)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + addr + "/vdbs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
