// Package admin exposes the controller's monitoring and administration
// surface over HTTP/JSON, standing in for the JMX server and administration
// console of the paper (§2.1: "the controller can be dynamically configured
// and monitored through JMX").
package admin

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"cjdbc/internal/balancer"
	"cjdbc/internal/controller"
)

// BackendInfo is the monitoring view of one backend.
type BackendInfo struct {
	Name     string `json:"name"`
	State    string `json:"state"`
	Weight   int    `json:"weight"`
	Pending  int    `json:"pending"`
	Ops      int64  `json:"ops"`
	Failures int64  `json:"failures"`
}

// VDBInfo is the monitoring view of one virtual database. Placement and
// TableLoads are present only under partial replication: the current
// table -> hosts map (which placement moves mutate at runtime) and the
// cumulative per-table read/write counters feeding the placement policy.
type VDBInfo struct {
	Name       string               `json:"name"`
	Stats      controller.Stats     `json:"stats"`
	Backends   []BackendInfo        `json:"backends"`
	Placement  map[string][]string  `json:"placement,omitempty"`
	TableLoads []balancer.TableLoad `json:"tableLoads,omitempty"`
}

// Server serves the admin API for one controller.
type Server struct {
	ctrl *controller.Controller
	mux  *http.ServeMux
	ln   net.Listener
}

// New builds the admin server.
func New(c *controller.Controller) *Server {
	s := &Server{ctrl: c, mux: http.NewServeMux()}
	s.mux.HandleFunc("/vdbs", s.handleVDBs)
	s.mux.HandleFunc("/vdbs/", s.handleVDB)
	return s
}

// Handler returns the HTTP handler (for embedding in other servers).
func (s *Server) Handler() http.Handler { return s.mux }

// Listen starts serving on addr and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go func() { _ = http.Serve(ln, s.mux) }()
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *Server) Close() {
	if s.ln != nil {
		_ = s.ln.Close()
	}
}

// handleVDBs lists the hosted virtual databases.
func (s *Server) handleVDBs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ctrl.VirtualDatabases())
}

// handleVDB serves /vdbs/{name} (info), /vdbs/{name}/disable?backend=x,
// /vdbs/{name}/enable?backend=x and /vdbs/{name}/checkpoint?name=cp.
func (s *Server) handleVDB(w http.ResponseWriter, r *http.Request) {
	rest := r.URL.Path[len("/vdbs/"):]
	name, action := rest, ""
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			name, action = rest[:i], rest[i+1:]
			break
		}
	}
	vdb, err := s.ctrl.VirtualDatabase(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	switch action {
	case "":
		writeJSON(w, vdbInfo(vdb))
	case "disable":
		b := r.URL.Query().Get("backend")
		vdb.DisableBackend(b)
		writeJSON(w, map[string]string{"disabled": b})
	case "enable":
		bName := r.URL.Query().Get("backend")
		b, err := vdb.Backend(bName)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		b.Enable()
		writeJSON(w, map[string]string{"enabled": bName})
	case "checkpoint":
		cp := r.URL.Query().Get("name")
		if cp == "" {
			http.Error(w, "admin: checkpoint requires ?name=", http.StatusBadRequest)
			return
		}
		seq, err := vdb.Checkpoint(cp)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{"checkpoint": cp, "seq": seq})
	case "addtablehost", "removetablehost":
		table := r.URL.Query().Get("table")
		bName := r.URL.Query().Get("backend")
		if table == "" || bName == "" {
			http.Error(w, "admin: placement moves require ?table=&backend=", http.StatusBadRequest)
			return
		}
		var err error
		if action == "addtablehost" {
			err = vdb.AddTableHost(table, bName)
		} else {
			err = vdb.RemoveTableHost(table, bName)
		}
		if err != nil {
			// Refused moves (last host, already hosted, no placement) are
			// client-resolvable conflicts, not server faults.
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]string{action: table, "backend": bName})
	default:
		http.Error(w, fmt.Sprintf("admin: unknown action %q", action), http.StatusNotFound)
	}
}

func vdbInfo(v *controller.VirtualDatabase) VDBInfo {
	info := VDBInfo{Name: v.Name(), Stats: v.StatsSnapshot()}
	for _, b := range v.Backends() {
		info.Backends = append(info.Backends, BackendInfo{
			Name:     b.Name(),
			State:    b.State().String(),
			Weight:   b.Weight(),
			Pending:  b.Pending(),
			Ops:      b.Ops(),
			Failures: b.Failures(),
		})
	}
	if tables := v.PlacementTables(); len(tables) > 0 {
		info.Placement = make(map[string][]string, len(tables))
		for _, t := range tables {
			info.Placement[t] = v.Replication().Hosts(t)
		}
		info.TableLoads = v.LoadStats().Snapshot(false)
	}
	return info
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
