// Package shardutil holds the shard-count and key-hash helpers shared by
// the sharded LRU caches (the result cache and the parsing cache), so both
// caches stay tuned identically.
package shardutil

// MaxShards caps the shard count (power of two for mask indexing).
// MinEntriesPerShard keeps small caches on a single shard, where eviction
// is exact global LRU; sharding (with per-shard LRU) only kicks in for
// caches large enough that lock contention outweighs slightly approximate
// recency.
const (
	MaxShards          = 16
	MinEntriesPerShard = 64
)

// Count picks a power-of-two shard count for a capacity.
func Count(maxEntries int) int {
	n := 1
	for n < MaxShards && (n<<1)*MinEntriesPerShard <= maxEntries {
		n <<= 1
	}
	return n
}

// Hash is FNV-1a over the key, used for shard selection.
func Hash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
