package sqlengine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestPropertyEngineMatchesModel runs random insert/update/delete/rollback
// sequences against both the engine and a trivial in-memory model, checking
// that visible state agrees after every committed operation.
func TestPropertyEngineMatchesModel(t *testing.T) {
	const ops = 400
	rng := rand.New(rand.NewSource(99))
	e := New("prop")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE m (id INTEGER PRIMARY KEY, v INTEGER)")

	model := make(map[int64]int64) // id -> v
	var inTx bool
	txModel := make(map[int64]int64)
	snapshot := func() map[int64]int64 {
		cp := make(map[int64]int64, len(model))
		for k, v := range model {
			cp[k] = v
		}
		return cp
	}
	cur := func() map[int64]int64 {
		if inTx {
			return txModel
		}
		return model
	}

	for i := 0; i < ops; i++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert
			id := rng.Int63n(200)
			v := rng.Int63n(1000)
			_, err := s.ExecSQL(fmt.Sprintf("INSERT INTO m (id, v) VALUES (%d, %d)", id, v))
			if _, exists := cur()[id]; exists {
				if err == nil {
					t.Fatalf("op %d: duplicate insert of %d accepted", i, id)
				}
			} else {
				if err != nil {
					t.Fatalf("op %d: insert: %v", i, err)
				}
				cur()[id] = v
			}
		case op < 6: // update
			id := rng.Int63n(200)
			v := rng.Int63n(1000)
			res, err := s.ExecSQL(fmt.Sprintf("UPDATE m SET v = %d WHERE id = %d", v, id))
			if err != nil {
				t.Fatalf("op %d: update: %v", i, err)
			}
			if _, exists := cur()[id]; exists {
				if res.RowsAffected != 1 {
					t.Fatalf("op %d: update affected %d", i, res.RowsAffected)
				}
				cur()[id] = v
			} else if res.RowsAffected != 0 {
				t.Fatalf("op %d: phantom update", i)
			}
		case op < 7: // delete
			id := rng.Int63n(200)
			res, err := s.ExecSQL(fmt.Sprintf("DELETE FROM m WHERE id = %d", id))
			if err != nil {
				t.Fatalf("op %d: delete: %v", i, err)
			}
			_, exists := cur()[id]
			if exists != (res.RowsAffected == 1) {
				t.Fatalf("op %d: delete mismatch", i)
			}
			delete(cur(), id)
		case op < 8 && !inTx: // begin
			mustExec(t, s, "BEGIN")
			inTx = true
			txModel = snapshot()
		case op < 9 && inTx: // commit
			mustExec(t, s, "COMMIT")
			model = txModel
			inTx = false
		case inTx: // rollback
			mustExec(t, s, "ROLLBACK")
			inTx = false
		}
		// Verify visible state.
		res := mustExec(t, s, "SELECT id, v FROM m ORDER BY id")
		want := cur()
		if len(res.Rows) != len(want) {
			t.Fatalf("op %d: %d rows, model has %d", i, len(res.Rows), len(want))
		}
		for _, row := range res.Rows {
			id, v := row[0].I, row[1].I
			if mv, ok := want[id]; !ok || mv != v {
				t.Fatalf("op %d: row (%d,%d) vs model %v", i, id, v, want[id])
			}
		}
	}
}

// Property: the sum of values is invariant under any interleaving of
// balanced transfer transactions (each moves an amount between two rows and
// commits or aborts).
func TestPropertyTransfersPreserveSum(t *testing.T) {
	e := New("bank")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)")
	const accounts = 8
	for i := 0; i < accounts; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO acct (id, bal) VALUES (%d, 100)", i))
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 150; i++ {
		a, b := rng.Intn(accounts), rng.Intn(accounts)
		amt := rng.Intn(50)
		mustExec(t, s, "BEGIN")
		mustExec(t, s, fmt.Sprintf("UPDATE acct SET bal = bal - %d WHERE id = %d", amt, a))
		mustExec(t, s, fmt.Sprintf("UPDATE acct SET bal = bal + %d WHERE id = %d", amt, b))
		if rng.Intn(3) == 0 {
			mustExec(t, s, "ROLLBACK")
		} else {
			mustExec(t, s, "COMMIT")
		}
		res := mustExec(t, s, "SELECT SUM(bal) FROM acct")
		if res.Rows[0][0].I != accounts*100 {
			t.Fatalf("iteration %d: sum = %v", i, res.Rows[0][0])
		}
	}
}

// Property (testing/quick): inserting any batch of distinct int pairs and
// reading them back returns exactly the batch.
func TestQuickInsertReadBack(t *testing.T) {
	f := func(vals []int16) bool {
		e := New("q")
		s := e.NewSession()
		if _, err := s.ExecSQL("CREATE TABLE q (id INTEGER PRIMARY KEY, v INTEGER)"); err != nil {
			return false
		}
		want := make(map[int64]int64)
		for i, v := range vals {
			want[int64(i)] = int64(v)
			if _, err := s.ExecSQL(fmt.Sprintf("INSERT INTO q (id, v) VALUES (%d, %d)", i, v)); err != nil {
				return false
			}
		}
		res, err := s.ExecSQL("SELECT id, v FROM q")
		if err != nil || len(res.Rows) != len(want) {
			return false
		}
		for _, row := range res.Rows {
			if want[row[0].I] != row[1].I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): WHERE range predicates agree with a direct scan
// of the model for arbitrary thresholds.
func TestQuickRangePredicates(t *testing.T) {
	e := New("q2")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE r (id INTEGER PRIMARY KEY, v INTEGER)")
	vals := make(map[int64]int64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		v := rng.Int63n(1000) - 500
		vals[int64(i)] = v
		mustExec(t, s, fmt.Sprintf("INSERT INTO r (id, v) VALUES (%d, %d)", i, v))
	}
	f := func(threshold int16) bool {
		res, err := s.ExecSQL(fmt.Sprintf("SELECT COUNT(*) FROM r WHERE v >= %d", threshold))
		if err != nil {
			return false
		}
		want := int64(0)
		for _, v := range vals {
			if v >= int64(threshold) {
				want++
			}
		}
		return res.Rows[0][0].I == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyIndexPlanMatchesFullScan proves the access planner is pure
// candidate narrowing: every random query returns exactly the same rows
// whether executed through index planning or with planning forced off
// (full scan), on a table mixing unique and non-unique indexes, deleted
// rows (tombstones) and unindexed columns.
func TestPropertyIndexPlanMatchesFullScan(t *testing.T) {
	e := New("planprop")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE p (id INTEGER PRIMARY KEY, v INTEGER, w INTEGER, name VARCHAR)")
	mustExec(t, s, "CREATE INDEX p_v ON p (v)")
	mustExec(t, s, "CREATE INDEX p_name ON p (name)")
	mustExec(t, s, "CREATE TABLE q (id INTEGER PRIMARY KEY, x INTEGER)")
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 400; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO p (id, v, w, name) VALUES (%d, %d, %d, 'n%d')",
			i, rng.Intn(40), rng.Intn(40), rng.Intn(25)))
	}
	for i := 0; i < 150; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO q (id, x) VALUES (%d, %d)", i*2, rng.Intn(40)))
	}
	for i := 0; i < 80; i++ {
		mustExec(t, s, fmt.Sprintf("DELETE FROM p WHERE id = %d", rng.Intn(400)))
	}

	render := func(res *Result) []string {
		out := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			out[i] = rowKey(r)
		}
		sort.Strings(out)
		return out
	}
	both := func(sql string) (planned, scanned []string) {
		e.noIndexPlan.Store(false)
		r1, err := s.ExecSQL(sql)
		if err != nil {
			t.Fatalf("planned %q: %v", sql, err)
		}
		planned = render(r1)
		e.noIndexPlan.Store(true)
		r2, err := s.ExecSQL(sql)
		e.noIndexPlan.Store(false)
		if err != nil {
			t.Fatalf("scanned %q: %v", sql, err)
		}
		return planned, render(r2)
	}

	lit := func() int { return rng.Intn(45) }
	queries := make([]string, 0, 300)
	for i := 0; i < 40; i++ {
		queries = append(queries,
			fmt.Sprintf("SELECT * FROM p WHERE id = %d", rng.Intn(420)),
			fmt.Sprintf("SELECT id, v FROM p WHERE v = %d", lit()),
			fmt.Sprintf("SELECT id FROM p WHERE v = %d AND w > %d", lit(), lit()),
			fmt.Sprintf("SELECT id FROM p WHERE w = %d AND v = %d", lit(), lit()),
			fmt.Sprintf("SELECT id FROM p WHERE v IN (%d, %d, %d)", lit(), lit(), lit()),
			fmt.Sprintf("SELECT id FROM p WHERE v IN (%d, %d.0)", lit(), lit()),
			fmt.Sprintf("SELECT id FROM p WHERE name = 'n%d'", rng.Intn(28)),
			fmt.Sprintf("SELECT id FROM p WHERE id = %d OR v = %d", rng.Intn(420), lit()),
			fmt.Sprintf("SELECT id FROM p WHERE id = '%d'", rng.Intn(420)),
			fmt.Sprintf("SELECT name, COUNT(*) FROM p WHERE v = %d GROUP BY name", lit()),
			fmt.Sprintf("SELECT DISTINCT v FROM p WHERE name = 'n%d'", rng.Intn(28)),
			fmt.Sprintf("SELECT p.id, q.x FROM p JOIN q ON p.id = q.id WHERE p.v = %d", lit()),
			fmt.Sprintf("SELECT p.id, q.x FROM p LEFT JOIN q ON p.id = q.id WHERE p.v = %d", lit()),
			fmt.Sprintf("SELECT id, v FROM p WHERE v = %d ORDER BY id LIMIT 3", lit()),
		)
	}
	for _, sql := range queries {
		planned, scanned := both(sql)
		if len(planned) != len(scanned) {
			t.Fatalf("%q: planned %d rows, scan %d rows", sql, len(planned), len(scanned))
		}
		for i := range planned {
			if planned[i] != scanned[i] {
				t.Fatalf("%q: row %d differs:\n  planned %q\n  scanned %q", sql, i, planned[i], scanned[i])
			}
		}
	}

	// LIMIT without ORDER BY may legally pick different rows per plan; the
	// property is count-equivalence plus membership in the full result.
	for i := 0; i < 40; i++ {
		v, k := lit(), 1+rng.Intn(4)
		full, _ := both(fmt.Sprintf("SELECT id, v FROM p WHERE v = %d", v))
		universe := make(map[string]bool, len(full))
		for _, r := range full {
			universe[r] = true
		}
		want := len(full)
		if k < want {
			want = k
		}
		limited, scanLimited := both(fmt.Sprintf("SELECT id, v FROM p WHERE v = %d LIMIT %d", v, k))
		if len(limited) != want || len(scanLimited) != want {
			t.Fatalf("v=%d LIMIT %d: planned %d, scanned %d, want %d rows",
				v, k, len(limited), len(scanLimited), want)
		}
		for _, r := range limited {
			if !universe[r] {
				t.Fatalf("v=%d LIMIT %d: planned row %q not in full result", v, k, r)
			}
		}
	}
}

// TestJoinIndexProbeCrossClass: the indexed equi-join must not miss rows
// whose join keys compare equal across kind classes (string '5' vs integer
// 5 hash differently but compare equal), falling back to a scan instead.
func TestJoinIndexProbeCrossClass(t *testing.T) {
	e := New("xclass")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE a (id INTEGER PRIMARY KEY, sv VARCHAR)")
	mustExec(t, s, "CREATE TABLE b (bi INTEGER PRIMARY KEY, tag VARCHAR)")
	mustExec(t, s, "INSERT INTO a (id, sv) VALUES (1, '5')")
	mustExec(t, s, "INSERT INTO b (bi, tag) VALUES (5, 'five')")
	res := mustExec(t, s, "SELECT a.id, b.tag FROM a JOIN b ON a.sv = b.bi")
	if len(res.Rows) != 1 || res.Rows[0][1].AsString() != "five" {
		t.Fatalf("cross-class join returned %v, want one row joining '5' to 5", res.Rows)
	}
	// Same-class keys still use the index path and agree.
	res = mustExec(t, s, "SELECT a.id, b.tag FROM a JOIN b ON a.id = b.bi")
	if len(res.Rows) != 0 {
		t.Fatalf("1 should not join 5: %v", res.Rows)
	}
}
