package sqlengine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyEngineMatchesModel runs random insert/update/delete/rollback
// sequences against both the engine and a trivial in-memory model, checking
// that visible state agrees after every committed operation.
func TestPropertyEngineMatchesModel(t *testing.T) {
	const ops = 400
	rng := rand.New(rand.NewSource(99))
	e := New("prop")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE m (id INTEGER PRIMARY KEY, v INTEGER)")

	model := make(map[int64]int64) // id -> v
	var inTx bool
	txModel := make(map[int64]int64)
	snapshot := func() map[int64]int64 {
		cp := make(map[int64]int64, len(model))
		for k, v := range model {
			cp[k] = v
		}
		return cp
	}
	cur := func() map[int64]int64 {
		if inTx {
			return txModel
		}
		return model
	}

	for i := 0; i < ops; i++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert
			id := rng.Int63n(200)
			v := rng.Int63n(1000)
			_, err := s.ExecSQL(fmt.Sprintf("INSERT INTO m (id, v) VALUES (%d, %d)", id, v))
			if _, exists := cur()[id]; exists {
				if err == nil {
					t.Fatalf("op %d: duplicate insert of %d accepted", i, id)
				}
			} else {
				if err != nil {
					t.Fatalf("op %d: insert: %v", i, err)
				}
				cur()[id] = v
			}
		case op < 6: // update
			id := rng.Int63n(200)
			v := rng.Int63n(1000)
			res, err := s.ExecSQL(fmt.Sprintf("UPDATE m SET v = %d WHERE id = %d", v, id))
			if err != nil {
				t.Fatalf("op %d: update: %v", i, err)
			}
			if _, exists := cur()[id]; exists {
				if res.RowsAffected != 1 {
					t.Fatalf("op %d: update affected %d", i, res.RowsAffected)
				}
				cur()[id] = v
			} else if res.RowsAffected != 0 {
				t.Fatalf("op %d: phantom update", i)
			}
		case op < 7: // delete
			id := rng.Int63n(200)
			res, err := s.ExecSQL(fmt.Sprintf("DELETE FROM m WHERE id = %d", id))
			if err != nil {
				t.Fatalf("op %d: delete: %v", i, err)
			}
			_, exists := cur()[id]
			if exists != (res.RowsAffected == 1) {
				t.Fatalf("op %d: delete mismatch", i)
			}
			delete(cur(), id)
		case op < 8 && !inTx: // begin
			mustExec(t, s, "BEGIN")
			inTx = true
			txModel = snapshot()
		case op < 9 && inTx: // commit
			mustExec(t, s, "COMMIT")
			model = txModel
			inTx = false
		case inTx: // rollback
			mustExec(t, s, "ROLLBACK")
			inTx = false
		}
		// Verify visible state.
		res := mustExec(t, s, "SELECT id, v FROM m ORDER BY id")
		want := cur()
		if len(res.Rows) != len(want) {
			t.Fatalf("op %d: %d rows, model has %d", i, len(res.Rows), len(want))
		}
		for _, row := range res.Rows {
			id, v := row[0].I, row[1].I
			if mv, ok := want[id]; !ok || mv != v {
				t.Fatalf("op %d: row (%d,%d) vs model %v", i, id, v, want[id])
			}
		}
	}
}

// Property: the sum of values is invariant under any interleaving of
// balanced transfer transactions (each moves an amount between two rows and
// commits or aborts).
func TestPropertyTransfersPreserveSum(t *testing.T) {
	e := New("bank")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)")
	const accounts = 8
	for i := 0; i < accounts; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO acct (id, bal) VALUES (%d, 100)", i))
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 150; i++ {
		a, b := rng.Intn(accounts), rng.Intn(accounts)
		amt := rng.Intn(50)
		mustExec(t, s, "BEGIN")
		mustExec(t, s, fmt.Sprintf("UPDATE acct SET bal = bal - %d WHERE id = %d", amt, a))
		mustExec(t, s, fmt.Sprintf("UPDATE acct SET bal = bal + %d WHERE id = %d", amt, b))
		if rng.Intn(3) == 0 {
			mustExec(t, s, "ROLLBACK")
		} else {
			mustExec(t, s, "COMMIT")
		}
		res := mustExec(t, s, "SELECT SUM(bal) FROM acct")
		if res.Rows[0][0].I != accounts*100 {
			t.Fatalf("iteration %d: sum = %v", i, res.Rows[0][0])
		}
	}
}

// Property (testing/quick): inserting any batch of distinct int pairs and
// reading them back returns exactly the batch.
func TestQuickInsertReadBack(t *testing.T) {
	f := func(vals []int16) bool {
		e := New("q")
		s := e.NewSession()
		if _, err := s.ExecSQL("CREATE TABLE q (id INTEGER PRIMARY KEY, v INTEGER)"); err != nil {
			return false
		}
		want := make(map[int64]int64)
		for i, v := range vals {
			want[int64(i)] = int64(v)
			if _, err := s.ExecSQL(fmt.Sprintf("INSERT INTO q (id, v) VALUES (%d, %d)", i, v)); err != nil {
				return false
			}
		}
		res, err := s.ExecSQL("SELECT id, v FROM q")
		if err != nil || len(res.Rows) != len(want) {
			return false
		}
		for _, row := range res.Rows {
			if want[row[0].I] != row[1].I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): WHERE range predicates agree with a direct scan
// of the model for arbitrary thresholds.
func TestQuickRangePredicates(t *testing.T) {
	e := New("q2")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE r (id INTEGER PRIMARY KEY, v INTEGER)")
	vals := make(map[int64]int64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		v := rng.Int63n(1000) - 500
		vals[int64(i)] = v
		mustExec(t, s, fmt.Sprintf("INSERT INTO r (id, v) VALUES (%d, %d)", i, v))
	}
	f := func(threshold int16) bool {
		res, err := s.ExecSQL(fmt.Sprintf("SELECT COUNT(*) FROM r WHERE v >= %d", threshold))
		if err != nil {
			return false
		}
		want := int64(0)
		for _, v := range vals {
			if v >= int64(threshold) {
				want++
			}
		}
		return res.Rows[0][0].I == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
