package sqlengine

import (
	"fmt"
	"testing"

	"cjdbc/internal/sqlparser"
)

// benchEngine builds a 10k-row table with a primary-key index on id and a
// secondary index on cat, the shape of the RUBiS/TPC-W point-query hot path.
func benchEngine(b *testing.B) (*Engine, *Session) {
	b.Helper()
	e := New("bench")
	s := e.NewSession()
	if _, err := s.ExecSQL("CREATE TABLE items (id INTEGER PRIMARY KEY, cat INTEGER, name VARCHAR)"); err != nil {
		b.Fatal(err)
	}
	if _, err := s.ExecSQL("CREATE INDEX items_cat ON items (cat)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		sql := fmt.Sprintf("INSERT INTO items (id, cat, name) VALUES (%d, %d, 'item-%d')", i, i%100, i)
		if _, err := s.ExecSQL(sql); err != nil {
			b.Fatal(err)
		}
	}
	return e, s
}

// mustParse parses one statement for reuse across iterations, so benchmarks
// measure the engine and not the parser (the controller's plan cache already
// amortizes parsing).
func mustParse(b *testing.B, sql string) sqlparser.Statement {
	b.Helper()
	st, err := sqlparser.Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkPointSelect measures a primary-key point query on a 10k-row
// table: the engine's ability to answer WHERE id = k from the hash index
// instead of a full scan.
func BenchmarkPointSelect(b *testing.B) {
	_, s := benchEngine(b)
	stmts := make([]sqlparser.Statement, 64)
	for i := range stmts {
		stmts[i] = mustParse(b, fmt.Sprintf("SELECT id, cat, name FROM items WHERE id = %d", (i*157)%10000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Exec(stmts[i%len(stmts)])
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkPointSelectFullScan is the same query with index planning
// disabled: the pre-PR behaviour, kept as the comparison baseline.
func BenchmarkPointSelectFullScan(b *testing.B) {
	e, s := benchEngine(b)
	e.noIndexPlan.Store(true)
	st := mustParse(b, "SELECT id, cat, name FROM items WHERE id = 4711")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Exec(st)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkSecondaryIndexSelect measures an equality on a non-unique
// secondary index (100 matching rows of 10k).
func BenchmarkSecondaryIndexSelect(b *testing.B) {
	_, s := benchEngine(b)
	st := mustParse(b, "SELECT id, name FROM items WHERE cat = 42")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Exec(st)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 100 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkParallelEngineRead runs point selects from concurrent sessions.
// With the engine's read path under an RWMutex, throughput should scale
// with GOMAXPROCS instead of flattening on a global mutex.
func BenchmarkParallelEngineRead(b *testing.B) {
	e, _ := benchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Only Error/Errorf here: Fatal must not be called from the
		// goroutines RunParallel spawns.
		s := e.NewSession()
		defer s.Close()
		st, err := sqlparser.Parse("SELECT id, cat, name FROM items WHERE id = 4711")
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			res, err := s.Exec(st)
			if err != nil {
				b.Error(err)
				return
			}
			if len(res.Rows) != 1 {
				b.Errorf("rows = %d", len(res.Rows))
				return
			}
		}
	})
}

// BenchmarkInsertIndexed measures the write path's per-row index
// maintenance cost (two indexes), the target of the byte-scratch key work.
func BenchmarkInsertIndexed(b *testing.B) {
	e := New("bench-ins")
	s := e.NewSession()
	if _, err := s.ExecSQL("CREATE TABLE w (id INTEGER PRIMARY KEY, cat INTEGER, name VARCHAR)"); err != nil {
		b.Fatal(err)
	}
	if _, err := s.ExecSQL("CREATE INDEX w_cat ON w (cat)"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sql := fmt.Sprintf("INSERT INTO w (id, cat, name) VALUES (%d, %d, 'n%d')", i, i%100, i)
		if _, err := s.ExecSQL(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointSelectUnderWriteLoad is the MVCC acceptance benchmark: a
// primary-key point select while a concurrent session continuously updates
// the same table. Pre-MVCC every read waited behind the writer's storage
// latch (and the writer behind the readers'); with snapshot reads the
// reader takes no latch and no lock-manager lock, so the point read should
// stay within ~2x of its idle cost (scheduling noise on a single-CPU host),
// not degrade to the write's latency.
func BenchmarkPointSelectUnderWriteLoad(b *testing.B) {
	e, s := benchEngine(b)
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		ws := e.NewSession()
		defer ws.Close()
		st := mustParse(b, "UPDATE items SET name = 'churn' WHERE id = 9000")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ws.Exec(st); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	st := mustParse(b, "SELECT id, cat, name FROM items WHERE id = 4711")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Exec(st)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
	b.StopTimer()
	close(stop)
	<-writerDone
}

// BenchmarkSnapshotScan prices the snapshot read path's full-table scan
// (resolve each chain against the pinned epoch, no latch): the per-row
// version-resolution overhead every aggregate query pays. The pre-MVCC
// latched comparison mode is retired; this keeps its snapshot half as the
// regression baseline.
func BenchmarkSnapshotScan(b *testing.B) {
	_, s := benchEngine(b)
	st := mustParse(b, "SELECT COUNT(*), MAX(cat) FROM items")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Exec(st)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows[0][0].I != 10000 {
			b.Fatalf("count = %d", res.Rows[0][0].I)
		}
	}
}

// BenchmarkRangeSelect measures an ordered-index range scan at several
// range widths on the 10k-row table. The acceptance property is that cost
// scales with the result size (rows in [lo, lo+width)), not the table
// size: doubling the width should roughly double ns/op while the 10k-row
// table stays fixed. The fullscan variants are the forced-scan baseline,
// whose cost is flat in the width and proportional to the table instead.
func BenchmarkRangeSelect(b *testing.B) {
	for _, width := range []int{10, 100, 1000} {
		for _, scan := range []bool{false, true} {
			name := fmt.Sprintf("width=%d", width)
			if scan {
				name += "/fullscan"
			} else {
				name += "/indexed"
			}
			b.Run(name, func(b *testing.B) {
				e, s := benchEngine(b)
				e.noIndexPlan.Store(scan)
				st := mustParse(b, fmt.Sprintf("SELECT id, name FROM items WHERE id >= 4000 AND id < %d", 4000+width))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := s.Exec(st)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Rows) != width {
						b.Fatalf("rows = %d, want %d", len(res.Rows), width)
					}
				}
			})
		}
	}
}

// BenchmarkOrderByLimitTopK is the PR-8 acceptance benchmark: ORDER BY on
// an indexed column with LIMIT 10 over 10k rows. The indexed variant walks
// the ordered index in key order and stops after ten live rows — touching
// ~10 rows, allocating ~10 rows. The fullscan variant is the forced
// baseline: materialize all 10k rows, sort, take ten. Acceptance requires
// the indexed path to be at least 10x cheaper in both ns/op and allocs/op.
func BenchmarkOrderByLimitTopK(b *testing.B) {
	for _, mode := range []struct {
		name string
		scan bool
	}{{"indexed", false}, {"fullscan", true}} {
		b.Run(mode.name, func(b *testing.B) {
			e, s := benchEngine(b)
			e.noIndexPlan.Store(mode.scan)
			st := mustParse(b, "SELECT id, cat, name FROM items ORDER BY id LIMIT 10")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := s.Exec(st)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 10 || res.Rows[0][0].I != 0 {
					b.Fatalf("rows = %d, first id = %v", len(res.Rows), res.Rows[0][0])
				}
			}
		})
	}
}
