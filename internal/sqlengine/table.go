// Package sqlengine implements the database backend engine the cluster
// replicates: an in-memory relational engine with a catalog, typed rows,
// hash indexes, strict two-phase table locking for writes, undo-log
// transactions and MVCC snapshot reads. It plays the role
// MySQL/PostgreSQL/Firebird play in the paper: a black box behind a driver
// interface that executes SQL statements transactionally.
package sqlengine

import (
	"strings"
	"sync"
	"sync/atomic"

	"cjdbc/internal/sqlparser"
	"cjdbc/internal/sqlval"
)

// Column describes one column of a table schema.
type Column struct {
	Name          string // lower-cased
	Type          sqlval.Kind
	NotNull       bool
	PrimaryKey    bool
	AutoIncrement bool
	Default       *sqlparser.Expr
}

// Schema is the ordered column list of a table.
type Schema struct {
	Name    string // lower-cased table name
	Columns []Column
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	name = strings.ToLower(name)
	for i := range s.Columns {
		if s.Columns[i].Name == name {
			return i
		}
	}
	return -1
}

// ColumnNames returns the column names in declaration order.
func (s *Schema) ColumnNames() []string {
	out := make([]string, len(s.Columns))
	for i := range s.Columns {
		out[i] = s.Columns[i].Name
	}
	return out
}

// index is a hash index over one or more columns. Buckets hold chain refs
// and are insert-only: updates and deletes never remove entries, because a
// reader pinned at an older epoch must still find the old version of a row
// through the key it had then. Stale refs are harmless — every access path
// re-evaluates its full predicate against the resolved row — and the
// garbage collector prunes refs whose chains it reclaims. Buckets are held
// by pointer so the hot add path mutates in place: with the byte-scratch
// key building, inserting into an existing bucket costs no string
// allocation (Go elides the string(b) copy for map lookups), and only a
// brand-new key materializes a string.
type index struct {
	name    string
	columns []int // column positions
	unique  bool
	m       map[string]*idBucket // value key -> chain refs
	// ord is the ordered view of a single-column index: a skiplist over the
	// same insert-only refs, keyed by sqlval collation order, serving range
	// predicates and ORDER BY ... LIMIT scans. Multi-column indexes stay
	// hash-only. See ordered.go.
	ord *ordIndex
}

// ordInsert mirrors an addRef into the ordered view, keyed by the row's
// value in the indexed column. Caller holds the table latch exclusively.
func (ix *index) ordInsert(t *table, row []sqlval.Value, id int64, ch *rowChain) {
	if ix.ord != nil {
		ix.ord.insert(t, row[ix.columns[0]], id, ch)
	}
}

// idBucket is one hash bucket's chain-ref list.
type idBucket struct{ refs []chainRef }

// appendKey appends the index key of row to b and returns the extended
// buffer. The layout matches what lookup builds from a probe value.
func (ix *index) appendKey(b []byte, row []sqlval.Value) []byte {
	if len(ix.columns) == 1 {
		return row[ix.columns[0]].AppendKey(b)
	}
	for _, c := range ix.columns {
		b = append(row[c].AppendKey(b), 0x1f)
	}
	return b
}

// liveConflict reports whether some row other than selfID is currently
// live (writer view) under the given key. Because buckets keep stale refs,
// presence alone proves nothing: each candidate's current row is resolved
// and its key rebuilt for comparison. Caller holds the table latch
// exclusively.
func (ix *index) liveConflict(selfID int64, key []byte) bool {
	bkt := ix.m[string(key)]
	if bkt == nil {
		return false
	}
	var sb [48]byte
	for _, ref := range bkt.refs {
		if ref.id == selfID {
			continue
		}
		row := ref.ch.latestRow()
		if row == nil {
			continue
		}
		b := ix.appendKey(sb[:0], row)
		if string(b) == string(key) {
			return true
		}
	}
	return false
}

// table is the storage for one table: schema, version chains keyed by
// rowid, an atomically published scan order, and insert-only hash indexes.
//
// Locking: store is the per-table storage latch, held exclusively by DML,
// undo replay and GC — never by readers. SELECT resolves rows through the
// MVCC snapshot machinery: the scan order is read through an atomic slab
// pointer, index buckets are copied under idxMu (held only for the length
// of a map probe), and each chain resolves to the newest version visible at
// the session's pinned epoch. DDL holds the engine lock fully exclusive.
// rows and keyBuf are touched only under store exclusive (or the full
// engine lock), so they are never shared between concurrent writers.
type table struct {
	store   sync.RWMutex
	schema  *Schema
	rows    map[int64]*rowChain // writer/GC side only; readers go via order/indexes
	order   atomic.Pointer[orderSlab]
	nextID  int64
	autoInc int64
	// idxMu guards the index maps and bucket ref slices against latch-free
	// readers. Writers (who already hold store exclusive) take it only
	// around individual map/bucket mutations, readers only around probes,
	// so neither side ever holds it for a statement's duration.
	idxMu   sync.RWMutex
	indexes map[string]*index
	keyBuf  []byte // reusable index-key scratch for the write path
	garbage int    // versions superseded/popped since the last GC, under store
	// gcCursor is the incremental GC's resume position in the order slab:
	// chains below it were truncated this lap. Guarded by store exclusive.
	gcCursor int
	// cols is the prebuilt environment column map ("col" and "table.col"
	// keys). The engine has no ALTER TABLE, so it is immutable after
	// creation and shared by every unaliased single-table statement
	// instead of being rebuilt per execution.
	cols map[string]int
}

func newTable(schema *Schema) *table {
	t := &table{
		schema:  schema,
		rows:    make(map[int64]*rowChain),
		indexes: make(map[string]*index),
	}
	t.order.Store(&orderSlab{})
	t.cols = make(map[string]int, len(schema.Columns)*2)
	for i := range schema.Columns {
		t.cols[schema.Columns[i].Name] = i
		t.cols[schema.Name+"."+schema.Columns[i].Name] = i
	}
	// Implicit unique index on the primary key column(s).
	var pkCols []int
	for i, c := range schema.Columns {
		if c.PrimaryKey {
			pkCols = append(pkCols, i)
		}
	}
	if len(pkCols) > 0 {
		pk := &index{name: "__pk", columns: pkCols, unique: true, m: map[string]*idBucket{}}
		if len(pkCols) == 1 {
			pk.ord = newOrdIndex()
		}
		t.indexes["__pk"] = pk
	}
	return t
}

// appendOrder publishes a new rowid at the tail of the scan order. Within
// slab capacity the entry is written in place and published by the atomic
// length store; growth allocates a doubled slab and republishes the
// pointer. Caller holds the table latch exclusively.
func (t *table) appendOrder(id int64, ch *rowChain) {
	slab := t.order.Load()
	n := int(slab.n.Load())
	if n == len(slab.entries) {
		newCap := 2 * len(slab.entries)
		if newCap < 16 {
			newCap = 16
		}
		ns := &orderSlab{entries: make([]orderEntry, newCap)}
		copy(ns.entries, slab.entries[:n])
		ns.entries[n] = orderEntry{id: id, ch: ch}
		ns.n.Store(int64(n + 1))
		t.order.Store(ns)
		return
	}
	slab.entries[n] = orderEntry{id: id, ch: ch}
	slab.n.Store(int64(n + 1))
}

// addRef appends a chain ref under key unless the bucket already holds the
// rowid (re-updating back to a previous key must not duplicate the ref, or
// scans through the bucket would return the row twice). Caller holds the
// table latch exclusively; idxMu is taken around the mutation because
// readers probe buckets with no latch.
func (ix *index) addRef(t *table, key []byte, id int64, ch *rowChain) {
	bkt := ix.m[string(key)]
	if bkt != nil {
		for _, ref := range bkt.refs {
			if ref.id == id {
				return
			}
		}
		t.idxMu.Lock()
		bkt.refs = append(bkt.refs, chainRef{id: id, ch: ch})
		t.idxMu.Unlock()
		return
	}
	t.idxMu.Lock()
	ix.m[string(key)] = &idBucket{refs: []chainRef{{id: id, ch: ch}}}
	t.idxMu.Unlock()
}

// insertRow adds a row as a new version chain stamped with the writer's
// stamp, maintains all indexes, and returns the rowid and the version (for
// the session's commit-stamping dirty list).
func (t *table) insertRow(row []sqlval.Value, stamp uint64) (int64, *rowVersion, error) {
	// Check all unique indexes before mutating any.
	for _, ix := range t.indexes {
		if !ix.unique {
			continue
		}
		t.keyBuf = ix.appendKey(t.keyBuf[:0], row)
		if ix.liveConflict(-1, t.keyBuf) {
			return 0, nil, errf("unique constraint violation on %s.%s", t.schema.Name, ix.name)
		}
	}
	id := t.nextID
	t.nextID++
	ch := &rowChain{}
	v := ch.push(stamp, row)
	t.rows[id] = ch
	for _, ix := range t.indexes {
		t.keyBuf = ix.appendKey(t.keyBuf[:0], row)
		ix.addRef(t, t.keyBuf, id, ch)
		ix.ordInsert(t, row, id, ch)
	}
	t.appendOrder(id, ch)
	return id, v, nil
}

// deleteRow pushes a tombstone version onto the row's chain. Index refs
// stay: older snapshots still resolve the previous versions through them.
func (t *table) deleteRow(id int64, stamp uint64) *rowVersion {
	ch := t.rows[id]
	if ch == nil {
		return nil
	}
	v := ch.push(stamp, nil)
	t.garbage++
	return v
}

// updateRow pushes a new version of the row, maintaining indexes and
// checking unique constraints against other live rows.
func (t *table) updateRow(id int64, newRow []sqlval.Value, stamp uint64) (*rowVersion, error) {
	ch := t.rows[id]
	if ch == nil {
		return nil, errf("row %d vanished during update of %s", id, t.schema.Name)
	}
	old := ch.latestRow()
	for _, ix := range t.indexes {
		if !ix.unique {
			continue
		}
		nb := ix.appendKey(t.keyBuf[:0], newRow)
		ob := ix.appendKey(nb, old) // old key appended after the new one
		t.keyBuf = ob
		if string(nb) == string(ob[len(nb):]) {
			continue
		}
		if ix.liveConflict(id, nb) {
			return nil, errf("unique constraint violation on %s.%s", t.schema.Name, ix.name)
		}
	}
	v := ch.push(stamp, newRow)
	t.garbage++
	// Publish the new key in every index whose key changed; the old ref
	// stays behind for older snapshots.
	for _, ix := range t.indexes {
		nb := ix.appendKey(t.keyBuf[:0], newRow)
		ob := ix.appendKey(nb, old)
		t.keyBuf = ob
		if string(nb) == string(ob[len(nb):]) {
			continue
		}
		ix.addRef(t, nb, id, ch)
		ix.ordInsert(t, newRow, id, ch)
	}
	return v, nil
}

// popVersion undoes the newest version of a row if it carries the given
// writer stamp (rollback / failed-statement undo).
func (t *table) popVersion(id int64, stamp uint64) {
	if ch := t.rows[id]; ch != nil && ch.pop(stamp) {
		t.garbage++
	}
}

// scanSnap calls f for each row visible to the read view, in insertion
// order. It takes no latch: the order slab is an atomic snapshot and each
// chain resolves against the pinned epoch.
func (t *table) scanSnap(rv readView, f func(row []sqlval.Value) bool) {
	slab := t.order.Load()
	n := int(slab.n.Load())
	for i := 0; i < n; i++ {
		if row := rv.resolve(slab.entries[i].ch); row != nil {
			if !f(row) {
				return
			}
		}
	}
}

// lookup returns a copy of the chain refs matching a single-column equality
// using the first usable index, and ok=false when no index covers the
// column. It runs on the latch-free read path: the probe key is built in a
// stack buffer and idxMu is held only for the probe and copy, so the
// returned slice is safe to use while writers keep appending. Refs may be
// stale; callers must resolve each chain and re-check their predicate.
func (t *table) lookup(colIdx int, v sqlval.Value) (refs []chainRef, ok bool) {
	for _, ix := range t.indexes {
		if len(ix.columns) == 1 && ix.columns[0] == colIdx {
			var buf [48]byte
			b := v.AppendKey(buf[:0])
			t.idxMu.RLock()
			if bkt := t.lookupBucket(ix, b); bkt != nil {
				refs = append([]chainRef(nil), bkt.refs...)
			}
			t.idxMu.RUnlock()
			return refs, true
		}
	}
	return nil, false
}

// lookupBucket probes one index bucket. Caller holds idxMu (either mode).
func (t *table) lookupBucket(ix *index, key []byte) *idBucket {
	return ix.m[string(key)]
}

// hasIndexOn reports whether a single-column index covers colIdx (join
// planning probes this without building a key).
func (t *table) hasIndexOn(colIdx int) bool {
	for _, ix := range t.indexes {
		if len(ix.columns) == 1 && ix.columns[0] == colIdx {
			return true
		}
	}
	return false
}

// addIndex builds a new index over existing rows. It indexes the key of
// every version of every chain — not just the latest — because a reader
// pinned before the index existed may plan through it and must still find
// its older versions. Uniqueness is checked against live (latest) rows
// only. Caller holds the engine lock exclusively, so no reader runs.
func (t *table) addIndex(name string, cols []int, unique bool) error {
	if _, dup := t.indexes[name]; dup {
		return errf("index %s already exists on %s", name, t.schema.Name)
	}
	ix := &index{name: name, columns: cols, unique: unique, m: map[string]*idBucket{}}
	if len(cols) == 1 {
		ix.ord = newOrdIndex()
	}
	if unique {
		seen := make(map[string]int64, len(t.rows))
		for id, ch := range t.rows {
			row := ch.latestRow()
			if row == nil {
				continue
			}
			t.keyBuf = ix.appendKey(t.keyBuf[:0], row)
			if _, dup := seen[string(t.keyBuf)]; dup {
				return errf("unique constraint violation on %s.%s", t.schema.Name, ix.name)
			}
			seen[string(t.keyBuf)] = id
		}
	}
	for id, ch := range t.rows {
		for v := ch.head.Load(); v != nil; v = v.prev.Load() {
			if v.row == nil {
				continue
			}
			t.keyBuf = ix.appendKey(t.keyBuf[:0], v.row)
			ix.addRef(t, t.keyBuf, id, ch)
			ix.ordInsert(t, v.row, id, ch)
		}
	}
	t.indexes[name] = ix
	return nil
}

// orderedOn returns the ordered view of a single-column index on colIdx, or
// nil. Tower links are immutable pointers on the index struct, so probing
// needs no lock (the indexes map itself only changes under the engine-
// exclusive DDL lock, which excludes readers entirely).
func (t *table) orderedOn(colIdx int) *ordIndex {
	for _, ix := range t.indexes {
		if len(ix.columns) == 1 && ix.columns[0] == colIdx && ix.ord != nil {
			return ix.ord
		}
	}
	return nil
}
