// Package sqlengine implements the database backend engine the cluster
// replicates: an in-memory relational engine with a catalog, typed rows,
// hash indexes, strict two-phase table locking and undo-log transactions.
// It plays the role MySQL/PostgreSQL/Firebird play in the paper: a black box
// behind a driver interface that executes SQL statements transactionally.
package sqlengine

import (
	"strings"
	"sync"

	"cjdbc/internal/sqlparser"
	"cjdbc/internal/sqlval"
)

// Column describes one column of a table schema.
type Column struct {
	Name          string // lower-cased
	Type          sqlval.Kind
	NotNull       bool
	PrimaryKey    bool
	AutoIncrement bool
	Default       *sqlparser.Expr
}

// Schema is the ordered column list of a table.
type Schema struct {
	Name    string // lower-cased table name
	Columns []Column
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	name = strings.ToLower(name)
	for i := range s.Columns {
		if s.Columns[i].Name == name {
			return i
		}
	}
	return -1
}

// ColumnNames returns the column names in declaration order.
func (s *Schema) ColumnNames() []string {
	out := make([]string, len(s.Columns))
	for i := range s.Columns {
		out[i] = s.Columns[i].Name
	}
	return out
}

// index is a hash index over one or more columns. Buckets are held by
// pointer so that the hot add-a-rowid path mutates in place: together with
// the byte-scratch key building, inserting into an existing bucket costs no
// string allocation (Go elides the string(b) copy for map lookups), and only
// a brand-new key materializes a string.
type index struct {
	name    string
	columns []int // column positions
	unique  bool
	m       map[string]*idBucket // value key -> rowids
}

// idBucket is one hash bucket's rowid list.
type idBucket struct{ ids []int64 }

// appendKey appends the index key of row to b and returns the extended
// buffer. The layout matches what lookup builds from a probe value.
func (ix *index) appendKey(b []byte, row []sqlval.Value) []byte {
	if len(ix.columns) == 1 {
		return row[ix.columns[0]].AppendKey(b)
	}
	for _, c := range ix.columns {
		b = append(row[c].AppendKey(b), 0x1f)
	}
	return b
}

// conflicts reports whether inserting row would violate a unique index.
// scratch is reused and returned grown.
func (ix *index) conflicts(row []sqlval.Value, scratch []byte) (bool, []byte) {
	b := ix.appendKey(scratch[:0], row)
	bkt := ix.m[string(b)]
	return bkt != nil && len(bkt.ids) > 0, b
}

func (ix *index) insert(rowid int64, row []sqlval.Value, scratch []byte) ([]byte, error) {
	b := ix.appendKey(scratch[:0], row)
	bkt := ix.m[string(b)]
	if bkt == nil {
		ix.m[string(b)] = &idBucket{ids: []int64{rowid}}
		return b, nil
	}
	if ix.unique && len(bkt.ids) > 0 {
		return b, errf("unique constraint violation on index %s", ix.name)
	}
	bkt.ids = append(bkt.ids, rowid)
	return b, nil
}

func (ix *index) remove(rowid int64, row []sqlval.Value, scratch []byte) []byte {
	b := ix.appendKey(scratch[:0], row)
	bkt := ix.m[string(b)]
	if bkt == nil {
		return b
	}
	ids := bkt.ids
	for i, id := range ids {
		if id == rowid {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(ix.m, string(b))
	} else {
		bkt.ids = ids
	}
	return b
}

// table is the storage for one table: schema, rows keyed by rowid, an
// append-only scan order, and indexes.
//
// Locking: store is the per-table storage latch. DML (INSERT/UPDATE/DELETE)
// holds the engine lock shared plus store exclusive, so writes to disjoint
// tables mutate concurrently; SELECT and snapshots hold the engine lock
// shared plus store shared for every table they scan. DDL and undo replay
// hold the engine lock fully exclusive and need no latches. keyBuf (the
// write-path scratch) is only touched under store exclusive or the full
// engine lock, so it is never shared between concurrent writers.
type table struct {
	store   sync.RWMutex
	schema  *Schema
	rows    map[int64][]sqlval.Value
	order   []int64            // insertion order; may contain ids of deleted rows
	dead    map[int64]struct{} // tombstones: ids still in order but deleted
	nextID  int64
	autoInc int64
	indexes map[string]*index
	keyBuf  []byte // reusable index-key scratch for the write path
	// cols is the prebuilt environment column map ("col" and "table.col"
	// keys). The engine has no ALTER TABLE, so it is immutable after
	// creation and shared by every unaliased single-table statement
	// instead of being rebuilt per execution.
	cols map[string]int
}

func newTable(schema *Schema) *table {
	t := &table{
		schema:  schema,
		rows:    make(map[int64][]sqlval.Value),
		dead:    make(map[int64]struct{}),
		indexes: make(map[string]*index),
	}
	t.cols = make(map[string]int, len(schema.Columns)*2)
	for i := range schema.Columns {
		t.cols[schema.Columns[i].Name] = i
		t.cols[schema.Name+"."+schema.Columns[i].Name] = i
	}
	// Implicit unique index on the primary key column(s).
	var pkCols []int
	for i, c := range schema.Columns {
		if c.PrimaryKey {
			pkCols = append(pkCols, i)
		}
	}
	if len(pkCols) > 0 {
		t.indexes["__pk"] = &index{name: "__pk", columns: pkCols, unique: true, m: map[string]*idBucket{}}
	}
	return t
}

// insertRow adds a row and maintains all indexes, returning its rowid.
func (t *table) insertRow(row []sqlval.Value) (int64, error) {
	id := t.nextID
	// Check all unique indexes before mutating any.
	for _, ix := range t.indexes {
		if ix.unique {
			var dup bool
			dup, t.keyBuf = ix.conflicts(row, t.keyBuf)
			if dup {
				return 0, errf("unique constraint violation on %s.%s", t.schema.Name, ix.name)
			}
		}
	}
	for _, ix := range t.indexes {
		var err error
		t.keyBuf, err = ix.insert(id, row, t.keyBuf)
		if err != nil {
			return 0, err
		}
	}
	t.nextID++
	t.rows[id] = row
	t.order = append(t.order, id)
	return id, nil
}

// insertRowAt re-inserts a row under a known rowid (undo of delete).
// deleteRow leaves a tombstone in the scan order; the dead set records
// exactly those ids, so membership is O(1) and rolling back a large delete
// stays linear instead of rescanning order per row.
func (t *table) insertRowAt(id int64, row []sqlval.Value) {
	for _, ix := range t.indexes {
		b := ix.appendKey(t.keyBuf[:0], row)
		t.keyBuf = b
		if bkt := ix.m[string(b)]; bkt != nil {
			bkt.ids = append(bkt.ids, id)
		} else {
			ix.m[string(b)] = &idBucket{ids: []int64{id}}
		}
	}
	_, wasLive := t.rows[id]
	t.rows[id] = row
	if _, tomb := t.dead[id]; tomb {
		delete(t.dead, id)
	} else if !wasLive {
		t.order = append(t.order, id)
	}
	if id >= t.nextID {
		t.nextID = id + 1
	}
}

// deleteRow removes a row by id and maintains indexes.
func (t *table) deleteRow(id int64) {
	row, ok := t.rows[id]
	if !ok {
		return
	}
	for _, ix := range t.indexes {
		t.keyBuf = ix.remove(id, row, t.keyBuf)
	}
	delete(t.rows, id)
	t.dead[id] = struct{}{}
	t.maybeCompact()
}

// updateRow replaces the row stored under id, maintaining indexes and
// checking unique constraints against other rows.
func (t *table) updateRow(id int64, newRow []sqlval.Value) error {
	old := t.rows[id]
	for _, ix := range t.indexes {
		if !ix.unique {
			continue
		}
		nb := ix.appendKey(t.keyBuf[:0], newRow)
		ob := ix.appendKey(nb, old) // old key appended after the new one
		t.keyBuf = ob
		if string(nb) == string(ob[len(nb):]) {
			continue
		}
		if bkt := ix.m[string(nb)]; bkt != nil && len(bkt.ids) > 0 {
			return errf("unique constraint violation on %s.%s", t.schema.Name, ix.name)
		}
	}
	for _, ix := range t.indexes {
		t.keyBuf = ix.remove(id, old, t.keyBuf)
		var err error
		t.keyBuf, err = ix.insert(id, newRow, t.keyBuf)
		if err != nil {
			return err
		}
	}
	t.rows[id] = newRow
	return nil
}

func (t *table) maybeCompact() {
	if len(t.order) < 64 || len(t.order) < 2*len(t.rows) {
		return
	}
	live := t.order[:0]
	for _, id := range t.order {
		if _, ok := t.rows[id]; ok {
			live = append(live, id)
		}
	}
	t.order = live
	// Compaction dropped every tombstoned id from the scan order.
	t.dead = make(map[int64]struct{})
}

// scan calls f for each live row in insertion order; f returning false
// stops the scan.
func (t *table) scan(f func(id int64, row []sqlval.Value) bool) {
	for _, id := range t.order {
		row, ok := t.rows[id]
		if !ok {
			continue
		}
		if !f(id, row) {
			return
		}
	}
}

// lookup returns the rowids matching a single-column equality using the
// first usable index, and ok=false when no index covers the column. It runs
// on the concurrent read path, so the probe key is built in a stack buffer
// (never the shared write-path scratch) and typically costs no allocation.
func (t *table) lookup(colIdx int, v sqlval.Value) (ids []int64, ok bool) {
	for _, ix := range t.indexes {
		if len(ix.columns) == 1 && ix.columns[0] == colIdx {
			var buf [48]byte
			b := v.AppendKey(buf[:0])
			if bkt := ix.m[string(b)]; bkt != nil {
				return bkt.ids, true
			}
			return nil, true
		}
	}
	return nil, false
}

// addIndex builds a new index over existing rows.
func (t *table) addIndex(name string, cols []int, unique bool) error {
	if _, dup := t.indexes[name]; dup {
		return errf("index %s already exists on %s", name, t.schema.Name)
	}
	ix := &index{name: name, columns: cols, unique: unique, m: map[string]*idBucket{}}
	for id, row := range t.rows {
		var err error
		t.keyBuf, err = ix.insert(id, row, t.keyBuf)
		if err != nil {
			return err
		}
	}
	t.indexes[name] = ix
	return nil
}
