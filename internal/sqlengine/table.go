// Package sqlengine implements the database backend engine the cluster
// replicates: an in-memory relational engine with a catalog, typed rows,
// hash indexes, strict two-phase table locking and undo-log transactions.
// It plays the role MySQL/PostgreSQL/Firebird play in the paper: a black box
// behind a driver interface that executes SQL statements transactionally.
package sqlengine

import (
	"fmt"
	"strings"

	"cjdbc/internal/sqlparser"
	"cjdbc/internal/sqlval"
)

// Column describes one column of a table schema.
type Column struct {
	Name          string // lower-cased
	Type          sqlval.Kind
	NotNull       bool
	PrimaryKey    bool
	AutoIncrement bool
	Default       *sqlparser.Expr
}

// Schema is the ordered column list of a table.
type Schema struct {
	Name    string // lower-cased table name
	Columns []Column
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	name = strings.ToLower(name)
	for i := range s.Columns {
		if s.Columns[i].Name == name {
			return i
		}
	}
	return -1
}

// ColumnNames returns the column names in declaration order.
func (s *Schema) ColumnNames() []string {
	out := make([]string, len(s.Columns))
	for i := range s.Columns {
		out[i] = s.Columns[i].Name
	}
	return out
}

// index is a hash index over one or more columns.
type index struct {
	name    string
	columns []int // column positions
	unique  bool
	m       map[string][]int64 // value key -> rowids
}

func (ix *index) keyFor(row []sqlval.Value) string {
	if len(ix.columns) == 1 {
		return row[ix.columns[0]].Key()
	}
	var b strings.Builder
	for _, c := range ix.columns {
		b.WriteString(row[c].Key())
		b.WriteByte(0x1f)
	}
	return b.String()
}

func (ix *index) insert(rowid int64, row []sqlval.Value) error {
	k := ix.keyFor(row)
	if ix.unique && len(ix.m[k]) > 0 {
		return fmt.Errorf("unique constraint violation on index %s", ix.name)
	}
	ix.m[k] = append(ix.m[k], rowid)
	return nil
}

func (ix *index) remove(rowid int64, row []sqlval.Value) {
	k := ix.keyFor(row)
	ids := ix.m[k]
	for i, id := range ids {
		if id == rowid {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(ix.m, k)
	} else {
		ix.m[k] = ids
	}
}

// table is the storage for one table: schema, rows keyed by rowid, an
// append-only scan order, and indexes.
type table struct {
	schema  *Schema
	rows    map[int64][]sqlval.Value
	order   []int64 // insertion order; may contain ids of deleted rows
	nextID  int64
	autoInc int64
	indexes map[string]*index
}

func newTable(schema *Schema) *table {
	t := &table{
		schema:  schema,
		rows:    make(map[int64][]sqlval.Value),
		indexes: make(map[string]*index),
	}
	// Implicit unique index on the primary key column(s).
	var pkCols []int
	for i, c := range schema.Columns {
		if c.PrimaryKey {
			pkCols = append(pkCols, i)
		}
	}
	if len(pkCols) > 0 {
		t.indexes["__pk"] = &index{name: "__pk", columns: pkCols, unique: true, m: map[string][]int64{}}
	}
	return t
}

// insertRow adds a row and maintains all indexes, returning its rowid.
func (t *table) insertRow(row []sqlval.Value) (int64, error) {
	id := t.nextID
	// Check all unique indexes before mutating any.
	for _, ix := range t.indexes {
		if ix.unique {
			if len(ix.m[ix.keyFor(row)]) > 0 {
				return 0, fmt.Errorf("engine: unique constraint violation on %s.%s", t.schema.Name, ix.name)
			}
		}
	}
	for _, ix := range t.indexes {
		if err := ix.insert(id, row); err != nil {
			return 0, err
		}
	}
	t.nextID++
	t.rows[id] = row
	t.order = append(t.order, id)
	return id, nil
}

// insertRowAt re-inserts a row under a known rowid (undo of delete).
// deleteRow leaves a tombstone in the scan order, so the id may still be
// present there; appending it again would make the row scan twice.
func (t *table) insertRowAt(id int64, row []sqlval.Value) {
	for _, ix := range t.indexes {
		ix.m[ix.keyFor(row)] = append(ix.m[ix.keyFor(row)], id)
	}
	t.rows[id] = row
	present := false
	for _, oid := range t.order {
		if oid == id {
			present = true
			break
		}
	}
	if !present {
		t.order = append(t.order, id)
	}
	if id >= t.nextID {
		t.nextID = id + 1
	}
}

// deleteRow removes a row by id and maintains indexes.
func (t *table) deleteRow(id int64) {
	row, ok := t.rows[id]
	if !ok {
		return
	}
	for _, ix := range t.indexes {
		ix.remove(id, row)
	}
	delete(t.rows, id)
	t.maybeCompact()
}

// updateRow replaces the row stored under id, maintaining indexes and
// checking unique constraints against other rows.
func (t *table) updateRow(id int64, newRow []sqlval.Value) error {
	old := t.rows[id]
	for _, ix := range t.indexes {
		if !ix.unique {
			continue
		}
		nk := ix.keyFor(newRow)
		if nk == ix.keyFor(old) {
			continue
		}
		if len(ix.m[nk]) > 0 {
			return fmt.Errorf("engine: unique constraint violation on %s.%s", t.schema.Name, ix.name)
		}
	}
	for _, ix := range t.indexes {
		ix.remove(id, old)
		ix.m[ix.keyFor(newRow)] = append(ix.m[ix.keyFor(newRow)], id)
	}
	t.rows[id] = newRow
	return nil
}

func (t *table) maybeCompact() {
	if len(t.order) < 64 || len(t.order) < 2*len(t.rows) {
		return
	}
	live := t.order[:0]
	for _, id := range t.order {
		if _, ok := t.rows[id]; ok {
			live = append(live, id)
		}
	}
	t.order = live
}

// scan calls f for each live row in insertion order; f returning false
// stops the scan.
func (t *table) scan(f func(id int64, row []sqlval.Value) bool) {
	for _, id := range t.order {
		row, ok := t.rows[id]
		if !ok {
			continue
		}
		if !f(id, row) {
			return
		}
	}
}

// lookup returns the rowids matching a single-column equality using the
// first usable index, and ok=false when no index covers the column.
func (t *table) lookup(colIdx int, v sqlval.Value) (ids []int64, ok bool) {
	for _, ix := range t.indexes {
		if len(ix.columns) == 1 && ix.columns[0] == colIdx {
			return ix.m[v.Key()], true
		}
	}
	return nil, false
}

// addIndex builds a new index over existing rows.
func (t *table) addIndex(name string, cols []int, unique bool) error {
	if _, dup := t.indexes[name]; dup {
		return fmt.Errorf("engine: index %s already exists on %s", name, t.schema.Name)
	}
	ix := &index{name: name, columns: cols, unique: unique, m: map[string][]int64{}}
	for id, row := range t.rows {
		if err := ix.insert(id, row); err != nil {
			return err
		}
	}
	t.indexes[name] = ix
	return nil
}
