package sqlengine

import "testing"

// TestPositionalOrderByWithStar: a positional ORDER BY key after a star in
// the select list refers to a post-expansion output column, which the
// planner cannot resolve at the AST level (the star's width is unknown
// there). The planned result must match the full-scan sort, which resolves
// the position against the expanded output.
func TestPositionalOrderByWithStar(t *testing.T) {
	e := New("db")
	defer e.Close()
	s := e.NewSession()
	defer s.Close()
	mustExecSQL := func(q string) *Result {
		r, err := s.ExecSQL(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return r
	}
	mustExecSQL("CREATE TABLE t (x INTEGER PRIMARY KEY, y INTEGER)")
	mustExecSQL("INSERT INTO t (x, y) VALUES (1, 30)")
	mustExecSQL("INSERT INTO t (x, y) VALUES (2, 10)")
	mustExecSQL("INSERT INTO t (x, y) VALUES (3, 20)")
	// ORDER BY 2 refers to output column 2, which after * expansion is y.
	r1 := mustExecSQL("SELECT *, x FROM t ORDER BY 2")
	e.noIndexPlan.Store(true)
	r2 := mustExecSQL("SELECT *, x FROM t ORDER BY 2")
	e.noIndexPlan.Store(false)
	if len(r1.Rows) != 3 || len(r2.Rows) != 3 {
		t.Fatalf("row counts: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	for i := range r1.Rows {
		if r1.Rows[i][1].I != r2.Rows[i][1].I {
			t.Fatalf("row %d: planned y=%d, fullscan y=%d\nplanned=%v\nscan=%v",
				i, r1.Rows[i][1].I, r2.Rows[i][1].I, r1.Rows, r2.Rows)
		}
	}
}
