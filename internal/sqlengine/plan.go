package sqlengine

import (
	"sort"

	"cjdbc/internal/sqlparser"
	"cjdbc/internal/sqlval"
)

// This file is the engine's access planner: the one place that decides how a
// statement reaches a table's rows. SELECT (single-table and join base
// table), UPDATE and DELETE all plan through it, so index exploitation is
// uniform across the read and write paths.
//
// The planner inspects the top-level AND conjuncts of a WHERE clause for
// predicates an index can answer — `col = literal` and `col IN (literals)`
// through the hash buckets, and `col </<=/>/>= literal` / `col BETWEEN a AND
// b` / `=` through the ordered skiplist view — and picks the most selective
// one. Planning is candidate narrowing only: the full WHERE clause is still
// evaluated against every candidate row, so a plan is correct as long as its
// candidate set is a superset of the true match set.
//
// planOrder additionally decides whether a single-table ORDER BY can be
// satisfied by scanning an ordered index in key order instead of sorting —
// the top-k path that makes ORDER BY col LIMIT n cost O(result), not
// O(table).

// accessPlan describes how to enumerate one table's rows.
type accessPlan struct {
	refs    []chainRef // candidate chains, ascending by rowid; meaningful when indexed
	indexed bool       // false means full scan
}

// colResolver maps a column expression to its position in a table's schema,
// or ok=false when the expression refers to some other table of the query.
type colResolver func(e *sqlparser.Expr) (int, bool)

// envResolver resolves columns exactly as the evaluation environment will:
// through the env column map, accepting only positions inside the table's
// slot [offset, offset+width). Using the same map as eval guarantees a
// pushed-down conjunct binds to the same column the WHERE filter sees.
func envResolver(cols map[string]int, offset, width int) colResolver {
	return func(e *sqlparser.Expr) (int, bool) {
		key := e.Column
		if e.Table != "" {
			key = e.Table + "." + e.Column
		}
		pos, ok := cols[key]
		if !ok || pos < offset || pos >= offset+width {
			return 0, false
		}
		return pos - offset, true
	}
}

// keyCompatible reports whether an index probe with lit can find every
// stored value of a column of type ct that compares equal to lit. Stored
// values are coerced to the column type on insert, so their hash keys are in
// the column type's key class; a literal from another class (e.g. the string
// '5' against an INTEGER column) can compare equal through sqlval's textual
// fallback while hashing differently, and must fall back to a scan. The
// same guard protects ordered-range probes: sqlval.Compare is only a total
// order within one class, so a cross-class bound could fence off rows it
// actually matches.
func keyCompatible(ct sqlval.Kind, lit sqlval.Value) bool {
	switch ct {
	case sqlval.KindInt, sqlval.KindFloat, sqlval.KindBool:
		return lit.K == sqlval.KindInt || lit.K == sqlval.KindFloat || lit.K == sqlval.KindBool
	default:
		// Strings, times and blobs only probe with their own kind: the
		// textual Compare fallback can equate values across classes.
		return lit.K == ct
	}
}

// colRange accumulates the intersection of a column's top-level range
// conjuncts: lo/hi are the tightest bounds seen (nil = unbounded).
type colRange struct {
	lo, hi *rangeBound
}

// tightenLo narrows the lower bound to b if b is tighter.
func (r *colRange) tightenLo(b rangeBound) {
	if r.lo == nil {
		r.lo = &b
		return
	}
	c := sqlval.Compare(b.v, r.lo.v)
	if c > 0 || (c == 0 && !b.incl && r.lo.incl) {
		r.lo = &b
	}
}

// tightenHi narrows the upper bound to b if b is tighter.
func (r *colRange) tightenHi(b rangeBound) {
	if r.hi == nil {
		r.hi = &b
		return
	}
	c := sqlval.Compare(b.v, r.hi.v)
	if c < 0 || (c == 0 && !b.incl && r.hi.incl) {
		r.hi = &b
	}
}

// walkConjuncts calls f for every top-level AND conjunct of where.
func walkConjuncts(where *sqlparser.Expr, f func(ex *sqlparser.Expr)) {
	if where == nil {
		return
	}
	if where.Kind == sqlparser.ExprBinary && where.Op == "AND" {
		walkConjuncts(where.Left, f)
		walkConjuncts(where.Right, f)
		return
	}
	f(where)
}

// colLit decomposes a binary comparison into (column, literal), flipping the
// operator when the literal is on the left (5 < v means v > 5).
func colLit(ex *sqlparser.Expr) (col, lit *sqlparser.Expr, op string, ok bool) {
	op = ex.Op
	col, lit = ex.Left, ex.Right
	if col.Kind != sqlparser.ExprColumn {
		col, lit = lit, col
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	}
	if col.Kind != sqlparser.ExprColumn || lit.Kind != sqlparser.ExprLiteral {
		return nil, nil, "", false
	}
	return col, lit, op, true
}

// extractRanges collects the per-column range bounds the top-level AND
// conjuncts imply: </<=/>/>= comparisons against literals and BETWEEN. Each
// bound literal passes the keyCompatible guard. Shared by candidate
// narrowing (planAccess) and bounded ordered scans (planOrder).
func extractRanges(t *table, resolve colResolver, where *sqlparser.Expr) map[int]*colRange {
	var ranges map[int]*colRange
	rangeOf := func(ci int) *colRange {
		if ranges == nil {
			ranges = make(map[int]*colRange)
		}
		r := ranges[ci]
		if r == nil {
			r = &colRange{}
			ranges[ci] = r
		}
		return r
	}
	walkConjuncts(where, func(ex *sqlparser.Expr) {
		switch {
		case ex.Kind == sqlparser.ExprBinary && (ex.Op == "<" || ex.Op == "<=" || ex.Op == ">" || ex.Op == ">="):
			col, lit, op, ok := colLit(ex)
			if !ok {
				return
			}
			ci, ok := resolve(col)
			if !ok || !keyCompatible(t.schema.Columns[ci].Type, lit.Lit) {
				return
			}
			switch op {
			case "<":
				rangeOf(ci).tightenHi(rangeBound{v: lit.Lit, incl: false})
			case "<=":
				rangeOf(ci).tightenHi(rangeBound{v: lit.Lit, incl: true})
			case ">":
				rangeOf(ci).tightenLo(rangeBound{v: lit.Lit, incl: false})
			case ">=":
				rangeOf(ci).tightenLo(rangeBound{v: lit.Lit, incl: true})
			}
		case ex.Kind == sqlparser.ExprBetween && !ex.Not:
			if ex.Left == nil || ex.Left.Kind != sqlparser.ExprColumn ||
				ex.Low == nil || ex.Low.Kind != sqlparser.ExprLiteral ||
				ex.High == nil || ex.High.Kind != sqlparser.ExprLiteral {
				return
			}
			ci, ok := resolve(ex.Left)
			if !ok {
				return
			}
			ct := t.schema.Columns[ci].Type
			if !keyCompatible(ct, ex.Low.Lit) || !keyCompatible(ct, ex.High.Lit) {
				return
			}
			rangeOf(ci).tightenLo(rangeBound{v: ex.Low.Lit, incl: true})
			rangeOf(ci).tightenHi(rangeBound{v: ex.High.Lit, incl: true})
		}
	})
	return ranges
}

// planAccess chooses an index-backed access path for t under the given WHERE
// clause, or a full scan when no top-level conjunct is indexable: hash-point
// probes for = and IN, ordered-range collection for </<=/>/>=/BETWEEN, most
// selective (fewest candidates) wins. The returned candidate list is a fresh
// slice sorted by rowid, so iterating it is deterministic (rowids are
// assigned in insertion order) and safe while writers keep appending refs.
// Candidates may be stale — index entries are insert-only — which is fine:
// every caller resolves each chain through its read view and re-evaluates
// the full WHERE clause. access, when non-nil, is the plan cache's
// precomputed shape summary; a statement it marks non-indexable skips the
// conjunct walk entirely.
func planAccess(e *Engine, t *table, resolve colResolver, where *sqlparser.Expr, access *sqlparser.AccessInfo) accessPlan {
	if where == nil || e.noIndexPlan.Load() {
		return accessPlan{}
	}
	if access != nil && !access.Indexable {
		return accessPlan{}
	}
	var best []chainRef
	found := false
	consider := func(refs []chainRef) {
		if found && len(refs) >= len(best) {
			return
		}
		best, found = refs, true
	}
	walkConjuncts(where, func(ex *sqlparser.Expr) {
		switch {
		case ex.Kind == sqlparser.ExprBinary && ex.Op == "=":
			col, lit, _, ok := colLit(ex)
			if !ok {
				return
			}
			ci, ok := resolve(col)
			if !ok || !keyCompatible(t.schema.Columns[ci].Type, lit.Lit) {
				return
			}
			if refs, indexed := t.lookup(ci, lit.Lit); indexed {
				consider(refs)
			}
		case ex.Kind == sqlparser.ExprIn && !ex.Not:
			if ex.Left == nil || ex.Left.Kind != sqlparser.ExprColumn {
				return
			}
			ci, ok := resolve(ex.Left)
			if !ok {
				return
			}
			ct := t.schema.Columns[ci].Type
			for _, item := range ex.List {
				if item.Kind != sqlparser.ExprLiteral || !keyCompatible(ct, item.Lit) {
					return
				}
			}
			var union []chainRef
			for _, item := range ex.List {
				refs, indexed := t.lookup(ci, item.Lit)
				if !indexed {
					return
				}
				union = append(union, refs...)
			}
			consider(union)
		}
	})
	// Ordered-range candidates: for every column with accumulated bounds and
	// an ordered index, collect the refs inside the range — aborting as soon
	// as the collection exceeds the best point probe, so a wide range never
	// costs more than the path it loses to.
	for ci, r := range extractRanges(t, resolve, where) {
		ox := t.orderedOn(ci)
		if ox == nil {
			continue
		}
		limit := -1
		if found {
			limit = len(best)
		}
		if refs, ok := ox.collectRange(t, r.lo, r.hi, limit); ok {
			consider(refs)
		}
	}
	if !found {
		return accessPlan{}
	}
	sort.Slice(best, func(i, j int) bool { return best[i].id < best[j].id })
	// Distinct IN-list values cannot share rowids, but values that hash to
	// the same key (1 and 1.0) duplicate their lists, and stale refs can
	// repeat a rowid across buckets or skiplist nodes; drop adjacent dups.
	out := best[:0]
	for i, ref := range best {
		if i == 0 || ref.id != best[i-1].id {
			out = append(out, ref)
		}
	}
	return accessPlan{refs: out, indexed: true}
}

// orderPlan describes how a single-table SELECT satisfies its ORDER BY.
type orderPlan struct {
	// done: the row stream needs no sort — either every ORDER BY key is
	// pinned to a constant by an = conjunct (any access path emits rows in
	// rowid order, which equals the stable sort's tie order), or scan below
	// is set.
	done bool
	// scan: enumerate rows through the ordered index in key order instead
	// of planAccess, bounded by lo/hi when range conjuncts constrain the
	// sort column.
	scan   bool
	ix     *ordIndex
	col    int // table-local column position of the sort key
	desc   bool
	lo, hi *rangeBound
}

// planOrder decides whether the ORDER BY of a single-table, non-grouped,
// non-DISTINCT SELECT is satisfiable without sorting. Keys whose columns are
// pinned by a top-level `col = literal` conjunct are dropped first (a
// constant column is sorted in any order); if nothing remains the order is
// trivially done, and if exactly one bare column with an ordered index
// remains the sort becomes a direction-aware index scan. access, when
// non-nil, lets statements the plan cache marked non-elidable skip the
// analysis.
func planOrder(e *Engine, t *table, resolve colResolver, sel *sqlparser.Select, access *sqlparser.AccessInfo) orderPlan {
	if len(sel.OrderBy) == 0 {
		return orderPlan{done: true}
	}
	if e.noIndexPlan.Load() {
		return orderPlan{}
	}
	if access != nil && !access.OrderElidable {
		return orderPlan{}
	}
	if !sqlparser.AnalyzeAccess(nil, sel.OrderBy, sel.Items).OrderElidable {
		return orderPlan{}
	}
	// Columns pinned to a constant by an = conjunct. No keyCompatible guard
	// needed here: whatever the literal's class, at most one stored value of
	// the column compares equal to it, so every surviving row carries the
	// same key value.
	var eqCols map[int]bool
	walkConjuncts(sel.Where, func(ex *sqlparser.Expr) {
		if ex.Kind != sqlparser.ExprBinary || ex.Op != "=" {
			return
		}
		col, _, _, ok := colLit(ex)
		if !ok {
			return
		}
		if ci, ok := resolve(col); ok {
			if eqCols == nil {
				eqCols = make(map[int]bool)
			}
			eqCols[ci] = true
		}
	})
	keyCol, keyDesc, nKeys := -1, false, 0
	for _, oi := range sel.OrderBy {
		ex := oi.Expr
		if ex.Kind == sqlparser.ExprLiteral && ex.Lit.K == sqlval.KindInt {
			pos := int(ex.Lit.I) - 1
			if pos < 0 || pos >= len(sel.Items) || sel.Items[pos].Star {
				return orderPlan{}
			}
			ex = sel.Items[pos].Expr
		}
		if ex == nil || ex.Kind != sqlparser.ExprColumn {
			return orderPlan{}
		}
		ci, ok := resolve(ex)
		if !ok {
			return orderPlan{}
		}
		if eqCols[ci] {
			continue // constant column: satisfied by any order
		}
		nKeys++
		if nKeys > 1 {
			if ci != keyCol || oi.Desc != keyDesc {
				return orderPlan{}
			}
			nKeys-- // duplicate of the surviving key
			continue
		}
		keyCol, keyDesc = ci, oi.Desc
	}
	if nKeys == 0 {
		return orderPlan{done: true}
	}
	ox := t.orderedOn(keyCol)
	if ox == nil {
		return orderPlan{}
	}
	op := orderPlan{done: true, scan: true, ix: ox, col: keyCol, desc: keyDesc}
	if r := extractRanges(t, resolve, sel.Where)[keyCol]; r != nil {
		op.lo, op.hi = r.lo, r.hi
	}
	return op
}

// candidateRefs returns the row chains a WHERE clause can possibly match:
// the planner's candidate list when an index applies (hash point, IN union
// or ordered range), the full scan order otherwise. UPDATE and DELETE
// iterate it while mutating the table, which is safe because the planner
// copies index slices and the order slab loaded here is immutable up to its
// published length. Caller holds the table latch exclusively and resolves
// liveness per chain (writer view).
func candidateRefs(e *Engine, t *table, cols map[string]int, where *sqlparser.Expr, access *sqlparser.AccessInfo) []chainRef {
	if plan := planAccess(e, t, envResolver(cols, 0, len(t.schema.Columns)), where, access); plan.indexed {
		return plan.refs
	}
	slab := t.order.Load()
	n := int(slab.n.Load())
	out := make([]chainRef, 0, n)
	for i := 0; i < n; i++ {
		en := slab.entries[i]
		out = append(out, chainRef{id: en.id, ch: en.ch})
	}
	return out
}
