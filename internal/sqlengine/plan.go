package sqlengine

import (
	"sort"

	"cjdbc/internal/sqlparser"
	"cjdbc/internal/sqlval"
)

// This file is the engine's access planner: the one place that decides how a
// statement reaches a table's rows. SELECT (single-table and join base
// table), UPDATE and DELETE all plan through it, so index exploitation is
// uniform across the read and write paths.
//
// The planner inspects the top-level AND conjuncts of a WHERE clause for
// predicates a hash index can answer — `col = literal` and
// `col IN (literals...)` — and picks the most selective one. Planning is
// candidate narrowing only: the full WHERE clause is still evaluated against
// every candidate row, so a plan is correct as long as its candidate set is
// a superset of the true match set.

// accessPlan describes how to enumerate one table's rows.
type accessPlan struct {
	refs    []chainRef // candidate chains, ascending by rowid; meaningful when indexed
	indexed bool       // false means full scan
}

// colResolver maps a column expression to its position in a table's schema,
// or ok=false when the expression refers to some other table of the query.
type colResolver func(e *sqlparser.Expr) (int, bool)

// envResolver resolves columns exactly as the evaluation environment will:
// through the env column map, accepting only positions inside the table's
// slot [offset, offset+width). Using the same map as eval guarantees a
// pushed-down conjunct binds to the same column the WHERE filter sees.
func envResolver(cols map[string]int, offset, width int) colResolver {
	return func(e *sqlparser.Expr) (int, bool) {
		key := e.Column
		if e.Table != "" {
			key = e.Table + "." + e.Column
		}
		pos, ok := cols[key]
		if !ok || pos < offset || pos >= offset+width {
			return 0, false
		}
		return pos - offset, true
	}
}

// keyCompatible reports whether an index probe with lit can find every
// stored value of a column of type ct that compares equal to lit. Stored
// values are coerced to the column type on insert, so their hash keys are in
// the column type's key class; a literal from another class (e.g. the string
// '5' against an INTEGER column) can compare equal through sqlval's textual
// fallback while hashing differently, and must fall back to a scan.
func keyCompatible(ct sqlval.Kind, lit sqlval.Value) bool {
	switch ct {
	case sqlval.KindInt, sqlval.KindFloat, sqlval.KindBool:
		return lit.K == sqlval.KindInt || lit.K == sqlval.KindFloat || lit.K == sqlval.KindBool
	default:
		// Strings, times and blobs only probe with their own kind: the
		// textual Compare fallback can equate values across classes.
		return lit.K == ct
	}
}

// planAccess chooses an index-backed access path for t under the given WHERE
// clause, or a full scan when no top-level conjunct is indexable. The
// returned candidate list is a fresh slice (lookup copies bucket refs under
// idxMu) sorted by rowid, so iterating it is deterministic (rowids are
// assigned in insertion order) and safe while writers keep appending refs.
// Candidates may be stale — index buckets are insert-only — which is fine:
// every caller resolves each chain through its read view and re-evaluates
// the full WHERE clause.
func planAccess(e *Engine, t *table, resolve colResolver, where *sqlparser.Expr) accessPlan {
	if where == nil || e.noIndexPlan {
		return accessPlan{}
	}
	var best []chainRef
	found := false
	consider := func(refs []chainRef) {
		if found && len(refs) >= len(best) {
			return
		}
		best, found = refs, true
	}
	var walk func(ex *sqlparser.Expr)
	walk = func(ex *sqlparser.Expr) {
		switch {
		case ex.Kind == sqlparser.ExprBinary && ex.Op == "AND":
			walk(ex.Left)
			walk(ex.Right)
		case ex.Kind == sqlparser.ExprBinary && ex.Op == "=":
			col, lit := ex.Left, ex.Right
			if col.Kind != sqlparser.ExprColumn {
				col, lit = lit, col
			}
			if col.Kind != sqlparser.ExprColumn || lit.Kind != sqlparser.ExprLiteral {
				return
			}
			ci, ok := resolve(col)
			if !ok || !keyCompatible(t.schema.Columns[ci].Type, lit.Lit) {
				return
			}
			if refs, indexed := t.lookup(ci, lit.Lit); indexed {
				consider(refs)
			}
		case ex.Kind == sqlparser.ExprIn && !ex.Not:
			if ex.Left == nil || ex.Left.Kind != sqlparser.ExprColumn {
				return
			}
			ci, ok := resolve(ex.Left)
			if !ok {
				return
			}
			ct := t.schema.Columns[ci].Type
			for _, item := range ex.List {
				if item.Kind != sqlparser.ExprLiteral || !keyCompatible(ct, item.Lit) {
					return
				}
			}
			var union []chainRef
			for _, item := range ex.List {
				refs, indexed := t.lookup(ci, item.Lit)
				if !indexed {
					return
				}
				union = append(union, refs...)
			}
			consider(union)
		}
	}
	walk(where)
	if !found {
		return accessPlan{}
	}
	sort.Slice(best, func(i, j int) bool { return best[i].id < best[j].id })
	// Distinct IN-list values cannot share rowids, but values that hash to
	// the same key (1 and 1.0) duplicate their lists, and stale refs can
	// repeat a rowid across buckets; drop adjacent dups.
	out := best[:0]
	for i, ref := range best {
		if i == 0 || ref.id != best[i-1].id {
			out = append(out, ref)
		}
	}
	return accessPlan{refs: out, indexed: true}
}

// candidateRefs returns the row chains a WHERE clause can possibly match:
// the planner's candidate list when an index applies, the full scan order
// otherwise. UPDATE and DELETE iterate it while mutating the table, which is
// safe because the planner copies index slices and the order slab loaded
// here is immutable up to its published length. Caller holds the table latch
// exclusively and resolves liveness per chain (writer view).
func candidateRefs(e *Engine, t *table, cols map[string]int, where *sqlparser.Expr) []chainRef {
	if plan := planAccess(e, t, envResolver(cols, 0, len(t.schema.Columns)), where); plan.indexed {
		return plan.refs
	}
	slab := t.order.Load()
	n := int(slab.n.Load())
	out := make([]chainRef, 0, n)
	for i := 0; i < n; i++ {
		en := slab.entries[i]
		out = append(out, chainRef{id: en.id, ch: en.ch})
	}
	return out
}
