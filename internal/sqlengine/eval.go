package sqlengine

import (
	"math"
	"math/rand"
	"strings"
	"time"

	"cjdbc/internal/sqlparser"
	"cjdbc/internal/sqlval"
)

// env is the evaluation environment of one (joined) row.
type env struct {
	cols map[string]int                   // "col", "alias.col", "table.col" -> position
	row  []sqlval.Value                   // the combined row
	aggs map[*sqlparser.Expr]sqlval.Value // computed aggregates, grouped queries only
	rng  *rand.Rand
}

// lookupColumn resolves a column reference in the environment.
func (ev *env) lookupColumn(e *sqlparser.Expr) (sqlval.Value, error) {
	key := e.Column
	if e.Table != "" {
		key = e.Table + "." + e.Column
	}
	idx, ok := ev.cols[key]
	if !ok {
		return sqlval.Null, errf("unknown column %q", key)
	}
	return ev.row[idx], nil
}

// eval evaluates an expression tree against the environment. Comparisons
// involving NULL yield NULL (three-valued logic); AND/OR follow Kleene
// semantics.
func (ev *env) eval(e *sqlparser.Expr) (sqlval.Value, error) {
	switch e.Kind {
	case sqlparser.ExprLiteral:
		return e.Lit, nil
	case sqlparser.ExprColumn:
		return ev.lookupColumn(e)
	case sqlparser.ExprParam:
		return sqlval.Null, errf("unbound parameter ?%d", e.ParamIdx+1)
	case sqlparser.ExprStar:
		return sqlval.Null, errf("'*' outside COUNT(*)")
	case sqlparser.ExprUnary:
		return ev.evalUnary(e)
	case sqlparser.ExprBinary:
		return ev.evalBinary(e)
	case sqlparser.ExprFunc:
		if ev.aggs != nil {
			if v, ok := ev.aggs[e]; ok {
				return v, nil
			}
		}
		return ev.evalFunc(e)
	case sqlparser.ExprIn:
		return ev.evalIn(e)
	case sqlparser.ExprBetween:
		return ev.evalBetween(e)
	case sqlparser.ExprIsNull:
		v, err := ev.eval(e.Left)
		if err != nil {
			return sqlval.Null, err
		}
		res := v.IsNull()
		if e.Not {
			res = !res
		}
		return sqlval.Bool(res), nil
	}
	return sqlval.Null, errf("cannot evaluate expression kind %d", e.Kind)
}

func (ev *env) evalUnary(e *sqlparser.Expr) (sqlval.Value, error) {
	v, err := ev.eval(e.Left)
	if err != nil {
		return sqlval.Null, err
	}
	switch e.Op {
	case "-":
		if v.IsNull() {
			return sqlval.Null, nil
		}
		if v.K == sqlval.KindInt {
			return sqlval.Int(-v.I), nil
		}
		f, err := v.AsFloat()
		if err != nil {
			return sqlval.Null, err
		}
		return sqlval.Float(-f), nil
	case "NOT":
		if v.IsNull() {
			return sqlval.Null, nil
		}
		return sqlval.Bool(!v.AsBool()), nil
	}
	return sqlval.Null, errf("unknown unary operator %q", e.Op)
}

func (ev *env) evalBinary(e *sqlparser.Expr) (sqlval.Value, error) {
	// AND/OR evaluate lazily with Kleene semantics.
	switch e.Op {
	case "AND":
		l, err := ev.eval(e.Left)
		if err != nil {
			return sqlval.Null, err
		}
		if !l.IsNull() && !l.AsBool() {
			return sqlval.Bool(false), nil
		}
		r, err := ev.eval(e.Right)
		if err != nil {
			return sqlval.Null, err
		}
		if !r.IsNull() && !r.AsBool() {
			return sqlval.Bool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqlval.Null, nil
		}
		return sqlval.Bool(true), nil
	case "OR":
		l, err := ev.eval(e.Left)
		if err != nil {
			return sqlval.Null, err
		}
		if !l.IsNull() && l.AsBool() {
			return sqlval.Bool(true), nil
		}
		r, err := ev.eval(e.Right)
		if err != nil {
			return sqlval.Null, err
		}
		if !r.IsNull() && r.AsBool() {
			return sqlval.Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqlval.Null, nil
		}
		return sqlval.Bool(false), nil
	}
	l, err := ev.eval(e.Left)
	if err != nil {
		return sqlval.Null, err
	}
	r, err := ev.eval(e.Right)
	if err != nil {
		return sqlval.Null, err
	}
	switch e.Op {
	case "+", "-", "*", "/", "%":
		switch e.Op {
		case "+":
			return sqlval.Add(l, r)
		case "-":
			return sqlval.Sub(l, r)
		case "*":
			return sqlval.Mul(l, r)
		case "/":
			return sqlval.Div(l, r)
		default:
			return sqlval.Mod(l, r)
		}
	case "||":
		if l.IsNull() || r.IsNull() {
			return sqlval.Null, nil
		}
		return sqlval.String_(l.AsString() + r.AsString()), nil
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return sqlval.Null, nil
		}
		c := sqlval.Compare(l, r)
		var res bool
		switch e.Op {
		case "=":
			res = c == 0
		case "<>":
			res = c != 0
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return sqlval.Bool(res), nil
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return sqlval.Null, nil
		}
		m := likeMatch(r.AsString(), l.AsString())
		if e.Not {
			m = !m
		}
		return sqlval.Bool(m), nil
	}
	return sqlval.Null, errf("unknown operator %q", e.Op)
}

func (ev *env) evalIn(e *sqlparser.Expr) (sqlval.Value, error) {
	v, err := ev.eval(e.Left)
	if err != nil {
		return sqlval.Null, err
	}
	if v.IsNull() {
		return sqlval.Null, nil
	}
	sawNull := false
	for _, item := range e.List {
		iv, err := ev.eval(item)
		if err != nil {
			return sqlval.Null, err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if sqlval.Equal(v, iv) {
			return sqlval.Bool(!e.Not), nil
		}
	}
	if sawNull {
		return sqlval.Null, nil
	}
	return sqlval.Bool(e.Not), nil
}

func (ev *env) evalBetween(e *sqlparser.Expr) (sqlval.Value, error) {
	v, err := ev.eval(e.Left)
	if err != nil {
		return sqlval.Null, err
	}
	lo, err := ev.eval(e.Low)
	if err != nil {
		return sqlval.Null, err
	}
	hi, err := ev.eval(e.High)
	if err != nil {
		return sqlval.Null, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return sqlval.Null, nil
	}
	in := sqlval.Compare(v, lo) >= 0 && sqlval.Compare(v, hi) <= 0
	if e.Not {
		in = !in
	}
	return sqlval.Bool(in), nil
}

func (ev *env) evalFunc(e *sqlparser.Expr) (sqlval.Value, error) {
	if sqlparser.IsAggregate(e.Func) {
		return sqlval.Null, errf("aggregate %s outside grouped query", e.Func)
	}
	args := make([]sqlval.Value, len(e.Args))
	for i, a := range e.Args {
		v, err := ev.eval(a)
		if err != nil {
			return sqlval.Null, err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return errf("%s expects %d argument(s), got %d", e.Func, n, len(args))
		}
		return nil
	}
	switch e.Func {
	case "NOW", "CURRENT_TIMESTAMP":
		return sqlval.Time(time.Now()), nil
	case "RAND":
		if ev.rng != nil {
			return sqlval.Float(ev.rng.Float64()), nil
		}
		return sqlval.Float(rand.Float64()), nil
	case "LENGTH":
		if err := need(1); err != nil {
			return sqlval.Null, err
		}
		if args[0].IsNull() {
			return sqlval.Null, nil
		}
		return sqlval.Int(int64(len(args[0].AsString()))), nil
	case "UPPER":
		if err := need(1); err != nil {
			return sqlval.Null, err
		}
		if args[0].IsNull() {
			return sqlval.Null, nil
		}
		return sqlval.String_(strings.ToUpper(args[0].AsString())), nil
	case "LOWER":
		if err := need(1); err != nil {
			return sqlval.Null, err
		}
		if args[0].IsNull() {
			return sqlval.Null, nil
		}
		return sqlval.String_(strings.ToLower(args[0].AsString())), nil
	case "ABS":
		if err := need(1); err != nil {
			return sqlval.Null, err
		}
		if args[0].IsNull() {
			return sqlval.Null, nil
		}
		if args[0].K == sqlval.KindInt {
			if args[0].I < 0 {
				return sqlval.Int(-args[0].I), nil
			}
			return args[0], nil
		}
		f, err := args[0].AsFloat()
		if err != nil {
			return sqlval.Null, err
		}
		return sqlval.Float(math.Abs(f)), nil
	case "FLOOR", "CEIL", "CEILING", "ROUND":
		if err := need(1); err != nil {
			return sqlval.Null, err
		}
		if args[0].IsNull() {
			return sqlval.Null, nil
		}
		f, err := args[0].AsFloat()
		if err != nil {
			return sqlval.Null, err
		}
		switch e.Func {
		case "FLOOR":
			return sqlval.Int(int64(math.Floor(f))), nil
		case "ROUND":
			return sqlval.Int(int64(math.Round(f))), nil
		default:
			return sqlval.Int(int64(math.Ceil(f))), nil
		}
	case "COALESCE", "IFNULL":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return sqlval.Null, nil
	case "NULLIF":
		if err := need(2); err != nil {
			return sqlval.Null, err
		}
		if !args[0].IsNull() && !args[1].IsNull() && sqlval.Equal(args[0], args[1]) {
			return sqlval.Null, nil
		}
		return args[0], nil
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			if a.IsNull() {
				return sqlval.Null, nil
			}
			b.WriteString(a.AsString())
		}
		return sqlval.String_(b.String()), nil
	case "SUBSTR", "SUBSTRING":
		if len(args) != 2 && len(args) != 3 {
			return sqlval.Null, errf("SUBSTR expects 2 or 3 arguments")
		}
		if args[0].IsNull() {
			return sqlval.Null, nil
		}
		s := args[0].AsString()
		start, err := args[1].AsInt()
		if err != nil {
			return sqlval.Null, err
		}
		if start < 1 {
			start = 1
		}
		if int(start) > len(s) {
			return sqlval.String_(""), nil
		}
		out := s[start-1:]
		if len(args) == 3 {
			n, err := args[2].AsInt()
			if err != nil {
				return sqlval.Null, err
			}
			if n < 0 {
				n = 0
			}
			if int(n) < len(out) {
				out = out[:n]
			}
		}
		return sqlval.String_(out), nil
	case "MOD":
		if err := need(2); err != nil {
			return sqlval.Null, err
		}
		return sqlval.Mod(args[0], args[1])
	}
	return sqlval.Null, errf("unknown function %s", e.Func)
}

// likeMatch implements SQL LIKE: '%' matches any run, '_' one character.
// Matching is case-insensitive, as MySQL's default collation is.
func likeMatch(pattern, s string) bool {
	return likeRec(strings.ToLower(pattern), strings.ToLower(s))
}

func likeRec(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}
