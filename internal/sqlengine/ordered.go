package sqlengine

import (
	"sort"
	"sync/atomic"

	"cjdbc/internal/sqlval"
)

// This file is the ordered half of the engine's secondary indexes: a
// skiplist keyed by sqlval collation order (sqlval.Compare, NULL-first) that
// coexists with MVCC under the same discipline as the hash buckets. Entries
// are insert-only (key, id, chain) refs: updates and deletes never unlink a
// ref, so a reader pinned at an older epoch still finds old versions through
// the key they had then, and every access path re-filters candidates through
// its full predicate at the pinned epoch. The tower links are atomics
// published bottom-up, so latch-free snapshot readers traverse a consistent
// list while the single writer (the table-latch holder) inserts; the level-0
// list is doubly linked so ORDER BY ... DESC scans walk backwards from the
// tail without materializing the table.
//
// Why stale refs stay harmless here, exactly as in the hash indexes: a node
// emits a row only when the row's current column value (resolved at the
// reader's pinned epoch) compares equal to the node key, so a row whose key
// changed is emitted once, at the node of the value the snapshot sees, and
// skipped everywhere else. Columns are coerced to their declared kind on
// insert, so within one column sqlval.Compare is a total order and
// "compares equal" means "is this node's key".

// maxSkipLevel bounds tower height; 2^16 expected keys per level-16 node is
// far beyond any in-memory table this engine serves.
const maxSkipLevel = 16

// skipNode is one distinct key of an ordered index. key and the tower size
// are immutable after publication; refs is guarded by table.idxMu exactly
// like a hash bucket's ref slice; next/prev are traversed latch-free.
type skipNode struct {
	key  sqlval.Value
	refs []chainRef                 // guarded by table.idxMu
	prev atomic.Pointer[skipNode]   // level-0 backward link; nil at the first node
	next []atomic.Pointer[skipNode] // tower; len(next) == the node's level
}

// ordIndex is the ordered view of one single-column index. The head sentinel
// carries a full-height tower; tail tracks the largest key for DESC scans.
// rnd is the level generator's xorshift state, touched only by writers, who
// already hold the table latch exclusively.
type ordIndex struct {
	head *skipNode
	tail atomic.Pointer[skipNode]
	rnd  uint64
}

func newOrdIndex() *ordIndex {
	return &ordIndex{
		head: &skipNode{next: make([]atomic.Pointer[skipNode], maxSkipLevel)},
		rnd:  0x9E3779B97F4A7C15,
	}
}

// randLevel draws a geometric(1/2) tower height from the writer-only
// xorshift state. Deterministic per insertion sequence, so replicas applying
// the same write stream build identical structures.
func (ox *ordIndex) randLevel() int {
	x := ox.rnd
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	ox.rnd = x
	lvl := 1
	for x&1 == 1 && lvl < maxSkipLevel {
		lvl++
		x >>= 1
	}
	return lvl
}

// findPreds fills preds[i] with the rightmost node at level i whose key is
// strictly below v and returns the level-0 successor (the first node with
// key >= v, or nil). Writer-side search; readers use seekGE/seekLE.
func (ox *ordIndex) findPreds(v sqlval.Value, preds *[maxSkipLevel]*skipNode) *skipNode {
	n := ox.head
	for i := maxSkipLevel - 1; i >= 0; i-- {
		for {
			nx := n.next[i].Load()
			if nx == nil || sqlval.Compare(nx.key, v) >= 0 {
				break
			}
			n = nx
		}
		preds[i] = n
	}
	return n.next[0].Load()
}

// insert records (id, ch) under key v, creating the node if the key is new.
// Caller holds the table latch exclusively. Publication order is the
// correctness argument for latch-free readers: the new node's entire tower,
// prev link and ref list are in place before the first predecessor pointer
// stores it, and the commit epoch that makes the row visible publishes only
// after insert returns — so any reader whose pinned epoch can see the row
// observes the node fully linked, and a reader racing ahead of the links
// merely misses rows its epoch filters out anyway.
func (ox *ordIndex) insert(t *table, v sqlval.Value, id int64, ch *rowChain) {
	var preds [maxSkipLevel]*skipNode
	succ := ox.findPreds(v, &preds)
	if succ != nil && sqlval.Compare(succ.key, v) == 0 {
		// Re-updating a row back to a key it already had must not duplicate
		// the ref (same rule as index.addRef). refs reads need no idxMu on
		// the writer side: only the latch holder mutates them.
		for _, ref := range succ.refs {
			if ref.id == id {
				return
			}
		}
		t.idxMu.Lock()
		succ.refs = append(succ.refs, chainRef{id: id, ch: ch})
		t.idxMu.Unlock()
		return
	}
	lvl := ox.randLevel()
	node := &skipNode{key: v, refs: []chainRef{{id: id, ch: ch}}, next: make([]atomic.Pointer[skipNode], lvl)}
	for i := 0; i < lvl; i++ {
		node.next[i].Store(preds[i].next[i].Load())
	}
	if preds[0] != ox.head {
		node.prev.Store(preds[0])
	}
	// Publish bottom-up: a node reachable at any level already has its full
	// tower set, so a reader descending into it continues correctly.
	for i := 0; i < lvl; i++ {
		preds[i].next[i].Store(node)
	}
	if succ != nil {
		succ.prev.Store(node)
	} else {
		ox.tail.Store(node)
	}
}

// rangeBound is one end of a key range; a nil *rangeBound is unbounded.
type rangeBound struct {
	v    sqlval.Value
	incl bool
}

// seekGE returns the first node satisfying the lower bound (key >= b.v, or
// > b.v when exclusive), or the first node overall when b is nil.
func (ox *ordIndex) seekGE(b *rangeBound) *skipNode {
	if b == nil {
		return ox.head.next[0].Load()
	}
	n := ox.head
	for i := maxSkipLevel - 1; i >= 0; i-- {
		for {
			nx := n.next[i].Load()
			if nx == nil {
				break
			}
			c := sqlval.Compare(nx.key, b.v)
			if c < 0 || (c == 0 && !b.incl) {
				n = nx
				continue
			}
			break
		}
	}
	return n.next[0].Load()
}

// seekLE returns the last node satisfying the upper bound (key <= b.v, or
// < b.v when exclusive), the tail when b is nil, or nil when no node
// qualifies. DESC scans start here and walk prev links.
func (ox *ordIndex) seekLE(b *rangeBound) *skipNode {
	if b == nil {
		return ox.tail.Load()
	}
	n := ox.head
	for i := maxSkipLevel - 1; i >= 0; i-- {
		for {
			nx := n.next[i].Load()
			if nx == nil {
				break
			}
			c := sqlval.Compare(nx.key, b.v)
			if c < 0 || (c == 0 && b.incl) {
				n = nx
				continue
			}
			break
		}
	}
	if n == ox.head {
		return nil
	}
	return n
}

// sortedRefs copies the node's refs under idxMu and sorts them ascending by
// rowid. Rowids are assigned in insertion order, so equal-key rows emit in
// the same tie order a stable sort over the scan order produces — the
// property the planned==full-scan byte-identity proof rests on.
func (n *skipNode) sortedRefs(t *table) []chainRef {
	t.idxMu.RLock()
	refs := append([]chainRef(nil), n.refs...)
	t.idxMu.RUnlock()
	sort.Slice(refs, func(i, j int) bool { return refs[i].id < refs[j].id })
	return refs
}

// scan walks nodes in key order (descending when desc) within [lo, hi],
// calling f once per node with a fresh id-sorted copy of its refs; f returns
// false to stop early (LIMIT budgets). Latch-free: bounds are checked
// against immutable node keys and links are atomic loads.
func (ox *ordIndex) scan(t *table, lo, hi *rangeBound, desc bool, f func(key sqlval.Value, refs []chainRef) bool) {
	if desc {
		for n := ox.seekLE(hi); n != nil; n = n.prev.Load() {
			if lo != nil {
				c := sqlval.Compare(n.key, lo.v)
				if c < 0 || (c == 0 && !lo.incl) {
					return
				}
			}
			if !f(n.key, n.sortedRefs(t)) {
				return
			}
		}
		return
	}
	for n := ox.seekGE(lo); n != nil; n = n.next[0].Load() {
		if hi != nil {
			c := sqlval.Compare(n.key, hi.v)
			if c > 0 || (c == 0 && !hi.incl) {
				return
			}
		}
		if !f(n.key, n.sortedRefs(t)) {
			return
		}
	}
}

// collectRange gathers the refs of every node in [lo, hi] for the access
// planner's candidate-narrowing mode, aborting with ok=false once more than
// limit refs accumulate (the planner already holds a better path, so there
// is no point materializing a wider one). limit < 0 means unbounded.
func (ox *ordIndex) collectRange(t *table, lo, hi *rangeBound, limit int) (out []chainRef, ok bool) {
	ok = true
	ox.scan(t, lo, hi, false, func(_ sqlval.Value, refs []chainRef) bool {
		out = append(out, refs...)
		if limit >= 0 && len(out) > limit {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		return nil, false
	}
	return out, true
}

// gcLocked prunes refs to reclaimed chains (their rowids left t.rows) and
// unlinks nodes whose ref lists emptied. Caller holds the table latch
// exclusively, so no insert races; in-flight latch-free readers are safe
// because an unlinked node keeps its own next/prev links — a reader standing
// on it traverses onward, and any row it could still resolve was already
// below every pinned snapshot's epoch (that is what made the chain
// reclaimable).
func (ox *ordIndex) gcLocked(t *table) {
	var dead map[*skipNode]bool
	for n := ox.head.next[0].Load(); n != nil; n = n.next[0].Load() {
		kept := n.refs[:0:0]
		dirty := false
		for _, ref := range n.refs {
			if _, ok := t.rows[ref.id]; ok {
				kept = append(kept, ref)
			} else {
				dirty = true
			}
		}
		if !dirty {
			continue
		}
		t.idxMu.Lock()
		n.refs = kept
		t.idxMu.Unlock()
		if len(kept) == 0 {
			if dead == nil {
				dead = make(map[*skipNode]bool)
			}
			dead[n] = true
		}
	}
	if dead == nil {
		return
	}
	// Bypass dead nodes level by level, then rewire the level-0 prev links
	// and the tail over the surviving list.
	for i := maxSkipLevel - 1; i >= 0; i-- {
		pred := ox.head
		for {
			nx := pred.next[i].Load()
			if nx == nil {
				break
			}
			if dead[nx] {
				sk := nx
				for sk != nil && dead[sk] {
					sk = sk.next[i].Load()
				}
				pred.next[i].Store(sk)
				continue
			}
			pred = nx
		}
	}
	var last *skipNode
	for n := ox.head.next[0].Load(); n != nil; n = n.next[0].Load() {
		if last == nil {
			if n.prev.Load() != nil {
				n.prev.Store(nil)
			}
		} else if n.prev.Load() != last {
			n.prev.Store(last)
		}
		last = n
	}
	ox.tail.Store(last)
}
