package sqlengine

import (
	"fmt"
	"sort"
	"strings"

	"cjdbc/internal/sqlparser"
	"cjdbc/internal/sqlval"
)

// srcTable is one resolved FROM entry.
type srcTable struct {
	t      *table
	name   string // table name, lower-cased
	alias  string // alias or name
	offset int    // column offset in the combined row
}

// outRow pairs a projected row with the environment it was produced from,
// so ORDER BY can reference non-projected columns.
type outRow struct {
	vals []sqlval.Value
	ev   *env
}

func (s *Session) execSelect(sel *sqlparser.Select) (*Result, error) {
	if len(sel.From) == 0 {
		return s.selectNoFrom(sel)
	}

	// Reads take no lock-manager table locks and no storage latches: like
	// the consistent nonblocking reads of the paper's InnoDB backends, a
	// SELECT resolves every row against a snapshot epoch pinned at statement
	// (auto-commit) or transaction start, plus the session's own uncommitted
	// writes. Readers never block writers, never wait for writers, and never
	// participate in deadlock cycles. The only lock held is one shard of the
	// engine's catalog RW lock, shared — excluding DDL and DDL-undo replay,
	// which rewrite the catalog itself under the full exclusive lock.
	e := s.engine
	e.mu.RLock(s.shard)
	defer e.mu.RUnlock(s.shard)
	rv := readView{stamp: s.stamp, ep: s.snapshotEpoch()}

	// Resolve sources and build the combined column map. An unaliased
	// single-table query — the point-query hot path — reuses the table's
	// prebuilt map instead of reassembling it per execution.
	srcs := make([]srcTable, len(sel.From))
	offset := 0
	for i, tr := range sel.From {
		name := strings.ToLower(tr.Table)
		t := s.resolveLocked(name)
		if t == nil {
			return nil, &TableNotFoundError{Table: tr.Table}
		}
		alias := strings.ToLower(tr.Alias)
		if alias == "" {
			alias = name
		}
		srcs[i] = srcTable{t: t, name: name, alias: alias, offset: offset}
		offset += len(t.schema.Columns)
	}
	totalCols := offset

	var cols map[string]int
	if len(srcs) == 1 && srcs[0].alias == srcs[0].name {
		cols = srcs[0].t.cols
	} else {
		cols = make(map[string]int)
		for _, src := range srcs {
			for j, c := range src.t.schema.Columns {
				if _, dup := cols[c.Name]; !dup {
					cols[c.Name] = src.offset + j
				}
				cols[src.alias+"."+c.Name] = src.offset + j
				if _, dup := cols[src.name+"."+c.Name]; !dup {
					cols[src.name+"."+c.Name] = src.offset + j
				}
			}
		}
	}

	// Collect aggregate expressions referenced anywhere in the query. This
	// happens before row materialization so the single-table path knows
	// whether LIMIT may stop the scan early.
	var aggExprs []*sqlparser.Expr
	collect := func(ex *sqlparser.Expr) {
		if ex == nil {
			return
		}
		ex.Walk(func(n *sqlparser.Expr) {
			if n.Kind == sqlparser.ExprFunc && sqlparser.IsAggregate(n.Func) {
				aggExprs = append(aggExprs, n)
			}
		})
	}
	for _, it := range sel.Items {
		collect(it.Expr)
	}
	collect(sel.Having)
	for _, o := range sel.OrderBy {
		collect(o.Expr)
	}
	grouped := len(sel.GroupBy) > 0 || len(aggExprs) > 0

	var rows [][]sqlval.Value
	var whereDone, orderDone bool
	var err error
	if len(srcs) == 1 {
		rows, whereDone, orderDone, err = s.singleTableRows(sel, srcs[0], cols, grouped, rv)
	} else {
		rows, err = s.joinRows(sel, srcs, cols, totalCols, rv)
	}
	if err != nil {
		return nil, err
	}

	// WHERE filter (the single-table path applies it during the scan).
	if sel.Where != nil && !whereDone {
		filtered := rows[:0]
		for _, r := range rows {
			ev := &env{cols: cols, row: r}
			m, err := ev.eval(sel.Where)
			if err != nil {
				return nil, err
			}
			if m.AsBool() {
				filtered = append(filtered, r)
			}
		}
		rows = filtered
	}

	var out []outRow
	if grouped {
		out, err = s.groupedRows(sel, rows, cols, aggExprs)
	} else {
		out, err = s.projectRows(sel, rows, cols)
	}
	if err != nil {
		return nil, err
	}

	outCols, err := outputColumns(sel, srcs)
	if err != nil {
		return nil, err
	}

	if sel.Distinct {
		seen := make(map[string]bool, len(out))
		dedup := out[:0]
		for _, r := range out {
			k := rowKey(r.vals)
			if !seen[k] {
				seen[k] = true
				dedup = append(dedup, r)
			}
		}
		out = dedup
	}

	if len(sel.OrderBy) > 0 && !orderDone {
		if err := orderRows(sel, out, outCols); err != nil {
			return nil, err
		}
	}

	out, err = applyLimit(sel, out)
	if err != nil {
		return nil, err
	}

	res := &Result{Columns: outCols, Rows: make([][]sqlval.Value, len(out))}
	for i, r := range out {
		res.Rows[i] = r.vals
	}
	return res, nil
}

// selectNoFrom evaluates a FROM-less select (SELECT 1, SELECT NOW()).
func (s *Session) selectNoFrom(sel *sqlparser.Select) (*Result, error) {
	ev := &env{}
	res := &Result{}
	row := make([]sqlval.Value, 0, len(sel.Items))
	for i, it := range sel.Items {
		if it.Star {
			return nil, errf("SELECT * requires FROM")
		}
		v, err := ev.eval(it.Expr)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
		res.Columns = append(res.Columns, itemName(it, i))
	}
	res.Rows = [][]sqlval.Value{row}
	return res, nil
}

// singleTableRows materializes a one-table FROM clause. Unlike the join
// path, rows are used as stored — no pad-to-width copy — because the engine
// never mutates a stored row in place (updates replace the whole slice).
// The access planner turns indexable WHERE conjuncts into rowid candidates,
// the WHERE clause is applied during the scan, and a LIMIT stops the scan as
// soon as enough rows matched whenever no later stage reorders, merges or
// dedups rows — including ORDER BY satisfied by an ordered-index scan, the
// top-k path: rows then stream out of the index in final order and the scan
// halts after LIMIT+OFFSET live-at-epoch matches. The returned flags report
// that WHERE has been applied and that the row order already satisfies
// ORDER BY.
func (s *Session) singleTableRows(sel *sqlparser.Select, src srcTable, cols map[string]int, grouped bool, rv readView) ([][]sqlval.Value, bool, bool, error) {
	t := src.t
	e := s.engine
	resolve := envResolver(cols, src.offset, len(t.schema.Columns))

	// Order plan: can the ORDER BY be satisfied without sorting? Grouping
	// and DISTINCT re-shuffle rows after the scan, so elision only applies
	// without them.
	var op orderPlan
	if !grouped && !sel.Distinct {
		op = planOrder(e, t, resolve, sel, sel.Access)
	} else if len(sel.OrderBy) == 0 {
		op = orderPlan{done: true}
	}

	// LIMIT pushdown budget: offset+limit matching rows suffice when no
	// later stage reorders, merges or dedups rows.
	budget := int64(-1)
	if sel.Limit != nil && op.done && !grouped && !sel.Distinct {
		ev := &env{}
		if lv, err := ev.eval(sel.Limit); err == nil {
			if limit, err := lv.AsInt(); err == nil && limit >= 0 {
				budget = limit
				if sel.Offset != nil {
					if ov, err := ev.eval(sel.Offset); err == nil {
						if off, err := ov.AsInt(); err == nil && off > 0 {
							budget += off
						}
					}
				}
			}
		}
	}
	if budget == 0 {
		return nil, true, op.done, nil
	}

	var rows [][]sqlval.Value
	var evalErr error
	add := func(row []sqlval.Value) bool {
		if sel.Where != nil {
			ev := &env{cols: cols, row: row}
			m, err := ev.eval(sel.Where)
			if err != nil {
				evalErr = err
				return false
			}
			if !m.AsBool() {
				return true
			}
		}
		rows = append(rows, row)
		return budget < 0 || int64(len(rows)) < budget
	}

	// Path choice. With a LIMIT, the ordered scan is the top-k play: it
	// stops after offset+limit live matches without materializing or sorting
	// anything. Without one, the ordered scan must visit the whole range
	// anyway, so a narrowing index path (point probe on another column, say)
	// plus an in-memory sort usually touches far fewer rows — take the
	// narrowing when one exists and keep the ordered scan as the no-sort
	// fallback.
	var plan accessPlan
	if !op.scan || sel.Limit == nil {
		plan = planAccess(e, t, resolve, sel.Where, sel.Access)
	}
	if op.scan && plan.indexed {
		op.scan = false
		op.done = false
	}

	if op.scan {
		// Ordered-index scan: nodes stream in key order (reversed for
		// DESC), each node's refs in ascending rowid order — exactly the
		// tie order a stable sort over the scan order produces. A row is
		// emitted only at the node whose key equals the value its snapshot
		// version carries, so rows whose key changed across versions appear
		// exactly once, in the right position.
		keyPos := src.offset + op.col
		op.ix.scan(t, op.lo, op.hi, op.desc, func(key sqlval.Value, refs []chainRef) bool {
			for _, ref := range refs {
				row := rv.resolve(ref.ch)
				if row == nil || sqlval.Compare(row[keyPos], key) != 0 {
					continue
				}
				if !add(row) {
					return false
				}
			}
			return evalErr == nil
		})
		return rows, true, true, evalErr
	}

	if plan.indexed {
		for _, ref := range plan.refs {
			if row := rv.resolve(ref.ch); row != nil {
				if !add(row) {
					break
				}
			}
		}
	} else {
		t.scanSnap(rv, add)
	}
	return rows, true, op.done, evalErr
}

// joinRows materializes the FROM clause with nested-loop joins, using a hash
// index for equi-joins when one is available.
func (s *Session) joinRows(sel *sqlparser.Select, srcs []srcTable, cols map[string]int, totalCols int, rv readView) ([][]sqlval.Value, error) {
	// Seed with the base table's rows, padded to the full width so that
	// the environment map works at every stage. WHERE conjuncts on the
	// base table narrow the seed through the access planner; the full
	// WHERE clause still filters after the join, so this only prunes rows
	// that could never survive it (valid for LEFT JOIN too, since the base
	// is the preserved side).
	base := srcs[0]
	var rows [][]sqlval.Value
	seed := func(r []sqlval.Value) bool {
		combined := make([]sqlval.Value, totalCols)
		copy(combined[base.offset:], r)
		rows = append(rows, combined)
		return true
	}
	if plan := planAccess(s.engine, base.t, envResolver(cols, base.offset, len(base.t.schema.Columns)), sel.Where, sel.Access); plan.indexed {
		for _, ref := range plan.refs {
			if r := rv.resolve(ref.ch); r != nil {
				seed(r)
			}
		}
	} else {
		base.t.scanSnap(rv, seed)
	}

	for i := 1; i < len(srcs); i++ {
		src := srcs[i]
		tr := sel.From[i]
		var next [][]sqlval.Value

		// Try an indexed equi-join: ON left.col = right.col with the new
		// table's column indexed.
		probe, buildCol, useIndex := equiJoinPlan(tr.On, src, cols)

		for _, left := range rows {
			matched := false
			tryRow := func(r []sqlval.Value) error {
				combined := make([]sqlval.Value, totalCols)
				copy(combined, left)
				copy(combined[src.offset:], r)
				if tr.On != nil {
					ev := &env{cols: cols, row: combined}
					m, err := ev.eval(tr.On)
					if err != nil {
						return err
					}
					if !m.AsBool() {
						return nil
					}
				}
				matched = true
				next = append(next, combined)
				return nil
			}
			// An index probe is only sound when the probe value's key class
			// matches the build column's: cross-class values (string '5'
			// against an INTEGER column) can compare equal through the
			// textual fallback while hashing differently, so they scan.
			if useIndex && keyCompatible(src.t.schema.Columns[buildCol].Type, left[probe]) {
				refs, _ := src.t.lookup(buildCol, left[probe])
				for _, ref := range refs {
					if r := rv.resolve(ref.ch); r != nil {
						if err := tryRow(r); err != nil {
							return nil, err
						}
					}
				}
			} else {
				var scanErr error
				src.t.scanSnap(rv, func(r []sqlval.Value) bool {
					if err := tryRow(r); err != nil {
						scanErr = err
						return false
					}
					return true
				})
				if scanErr != nil {
					return nil, scanErr
				}
			}
			if !matched && tr.Join == sqlparser.JoinLeft {
				// LEFT JOIN: keep the left row with NULLs on the right.
				combined := make([]sqlval.Value, totalCols)
				copy(combined, left)
				next = append(next, combined)
			}
		}
		rows = next
	}
	return rows, nil
}

// equiJoinPlan inspects an ON clause for left.col = right.col where the
// right (new) table has an index, returning the probe position in the
// combined row and the build column in the new table.
func equiJoinPlan(on *sqlparser.Expr, src srcTable, cols map[string]int) (probe, buildCol int, ok bool) {
	if on == nil || on.Kind != sqlparser.ExprBinary || on.Op != "=" {
		return 0, 0, false
	}
	l, r := on.Left, on.Right
	if l.Kind != sqlparser.ExprColumn || r.Kind != sqlparser.ExprColumn {
		return 0, 0, false
	}
	// Determine which side belongs to the new table.
	inNew := func(e *sqlparser.Expr) (int, bool) {
		if e.Table != "" && e.Table != src.alias && e.Table != src.name {
			return 0, false
		}
		idx := src.t.schema.ColumnIndex(e.Column)
		if idx < 0 {
			return 0, false
		}
		return idx, true
	}
	envPos := func(e *sqlparser.Expr) (int, bool) {
		key := e.Column
		if e.Table != "" {
			key = e.Table + "." + e.Column
		}
		p, found := cols[key]
		return p, found
	}
	if bc, isNew := inNew(r); isNew {
		if p, found := envPos(l); found && (p < src.offset || p >= src.offset+len(src.t.schema.Columns)) {
			if src.t.hasIndexOn(bc) {
				return p, bc, true
			}
		}
	}
	if bc, isNew := inNew(l); isNew {
		if p, found := envPos(r); found && (p < src.offset || p >= src.offset+len(src.t.schema.Columns)) {
			if src.t.hasIndexOn(bc) {
				return p, bc, true
			}
		}
	}
	return 0, 0, false
}

// projectRows evaluates the select list for each row of a non-grouped query.
func (s *Session) projectRows(sel *sqlparser.Select, rows [][]sqlval.Value, cols map[string]int) ([]outRow, error) {
	out := make([]outRow, 0, len(rows))
	for _, r := range rows {
		ev := &env{cols: cols, row: r}
		vals, err := projectOne(sel, ev)
		if err != nil {
			return nil, err
		}
		out = append(out, outRow{vals: vals, ev: ev})
	}
	return out, nil
}

// groupedRows implements GROUP BY / aggregate evaluation.
func (s *Session) groupedRows(sel *sqlparser.Select, rows [][]sqlval.Value, cols map[string]int, aggExprs []*sqlparser.Expr) ([]outRow, error) {
	type group struct {
		first []sqlval.Value
		rows  [][]sqlval.Value
	}
	groups := make(map[string]*group)
	var order []string
	for _, r := range rows {
		ev := &env{cols: cols, row: r}
		var key strings.Builder
		for _, g := range sel.GroupBy {
			v, err := ev.eval(g)
			if err != nil {
				return nil, err
			}
			key.WriteString(v.Key())
			key.WriteByte(0x1f)
		}
		k := key.String()
		grp, ok := groups[k]
		if !ok {
			grp = &group{first: r}
			groups[k] = grp
			order = append(order, k)
		}
		grp.rows = append(grp.rows, r)
	}
	// A query with aggregates but no GROUP BY forms one group, even when
	// there are no input rows (COUNT(*) of an empty table is 0).
	if len(sel.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{first: make([]sqlval.Value, 0)}
		order = append(order, "")
	}

	out := make([]outRow, 0, len(groups))
	for _, k := range order {
		grp := groups[k]
		aggs := make(map[*sqlparser.Expr]sqlval.Value, len(aggExprs))
		for _, ae := range aggExprs {
			v, err := computeAggregate(ae, grp.rows, cols)
			if err != nil {
				return nil, err
			}
			aggs[ae] = v
		}
		first := grp.first
		if len(first) == 0 && len(grp.rows) > 0 {
			first = grp.rows[0]
		}
		ev := &env{cols: cols, row: first, aggs: aggs}
		if sel.Having != nil {
			m, err := ev.eval(sel.Having)
			if err != nil {
				return nil, err
			}
			if !m.AsBool() {
				continue
			}
		}
		vals, err := projectOne(sel, ev)
		if err != nil {
			return nil, err
		}
		out = append(out, outRow{vals: vals, ev: ev})
	}
	return out, nil
}

// computeAggregate evaluates one aggregate call over the rows of a group.
func computeAggregate(ae *sqlparser.Expr, rows [][]sqlval.Value, cols map[string]int) (sqlval.Value, error) {
	isStar := len(ae.Args) == 1 && ae.Args[0].Kind == sqlparser.ExprStar
	if ae.Func == "COUNT" && (len(ae.Args) == 0 || isStar) {
		return sqlval.Int(int64(len(rows))), nil
	}
	if len(ae.Args) != 1 {
		return sqlval.Null, errf("%s expects one argument", ae.Func)
	}
	var (
		count   int64
		sum     float64
		sumInt  int64
		allInt  = true
		minV    sqlval.Value
		maxV    sqlval.Value
		seen    map[string]bool
		started bool
	)
	if ae.Distinct {
		seen = make(map[string]bool)
	}
	for _, r := range rows {
		ev := &env{cols: cols, row: r}
		v, err := ev.eval(ae.Args[0])
		if err != nil {
			return sqlval.Null, err
		}
		if v.IsNull() {
			continue
		}
		if ae.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		count++
		switch ae.Func {
		case "SUM", "AVG":
			f, err := v.AsFloat()
			if err != nil {
				return sqlval.Null, err
			}
			sum += f
			if v.K == sqlval.KindInt {
				sumInt += v.I
			} else {
				allInt = false
			}
		case "MIN":
			if !started || sqlval.Compare(v, minV) < 0 {
				minV = v
			}
		case "MAX":
			if !started || sqlval.Compare(v, maxV) > 0 {
				maxV = v
			}
		}
		started = true
	}
	switch ae.Func {
	case "COUNT":
		return sqlval.Int(count), nil
	case "SUM":
		if count == 0 {
			return sqlval.Null, nil
		}
		if allInt {
			return sqlval.Int(sumInt), nil
		}
		return sqlval.Float(sum), nil
	case "AVG":
		if count == 0 {
			return sqlval.Null, nil
		}
		return sqlval.Float(sum / float64(count)), nil
	case "MIN":
		if !started {
			return sqlval.Null, nil
		}
		return minV, nil
	case "MAX":
		if !started {
			return sqlval.Null, nil
		}
		return maxV, nil
	}
	return sqlval.Null, errf("unknown aggregate %s", ae.Func)
}

// projectOne evaluates the select list in one environment.
func projectOne(sel *sqlparser.Select, ev *env) ([]sqlval.Value, error) {
	var vals []sqlval.Value
	for _, it := range sel.Items {
		if it.Star {
			// Stars copy the underlying combined row directly; for
			// qualified stars (t.*) the output columns are computed by
			// outputColumns, and values are selected by position there.
			// Here we append every environment column in order.
			vals = append(vals, starValues(it, ev)...)
			continue
		}
		v, err := ev.eval(it.Expr)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// starValues returns the row values a star item expands to. The environment
// row is the concatenation of all source tables, so a bare * is the whole
// row. Qualified stars use the column map prefix positions.
func starValues(it sqlparser.SelectItem, ev *env) []sqlval.Value {
	if it.Table == "" {
		return ev.row
	}
	prefix := strings.ToLower(it.Table) + "."
	// Collect positions with that prefix, ordered.
	var idxs []int
	for k, pos := range ev.cols {
		if strings.HasPrefix(k, prefix) {
			idxs = append(idxs, pos)
		}
	}
	sort.Ints(idxs)
	out := make([]sqlval.Value, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, ev.row[i])
	}
	return out
}

// outputColumns computes the result column names.
func outputColumns(sel *sqlparser.Select, srcs []srcTable) ([]string, error) {
	var out []string
	for i, it := range sel.Items {
		switch {
		case it.Star && it.Table == "":
			for _, src := range srcs {
				out = append(out, src.t.schema.ColumnNames()...)
			}
		case it.Star:
			want := strings.ToLower(it.Table)
			found := false
			for _, src := range srcs {
				if src.alias == want || src.name == want {
					out = append(out, src.t.schema.ColumnNames()...)
					found = true
					break
				}
			}
			if !found {
				return nil, errf("unknown table %q in %s.*", it.Table, it.Table)
			}
		default:
			out = append(out, itemName(it, i))
		}
	}
	return out, nil
}

func itemName(it sqlparser.SelectItem, i int) string {
	if it.Alias != "" {
		return strings.ToLower(it.Alias)
	}
	if it.Expr != nil && it.Expr.Kind == sqlparser.ExprColumn {
		return it.Expr.Column
	}
	return fmt.Sprintf("column%d", i+1)
}

// orderRows sorts out in place according to ORDER BY. Keys resolve first to
// output aliases, then to positional integers, then evaluate in the source
// environment. Key extraction is hoisted out of the comparator
// (decorate-sort-undecorate): each row's keys are resolved exactly once —
// O(n·k) evaluations — instead of re-resolving aliases and re-evaluating
// expressions on every comparison of the O(n log n) sort.
func orderRows(sel *sqlparser.Select, out []outRow, outCols []string) error {
	type keyFn func(r outRow) (sqlval.Value, error)
	keys := make([]keyFn, len(sel.OrderBy))
	for i, oi := range sel.OrderBy {
		ex := oi.Expr
		switch {
		case ex.Kind == sqlparser.ExprLiteral && ex.Lit.K == sqlval.KindInt:
			pos := int(ex.Lit.I) - 1
			if pos < 0 || pos >= len(outCols) {
				return errf("ORDER BY position %d out of range", ex.Lit.I)
			}
			keys[i] = func(r outRow) (sqlval.Value, error) { return r.vals[pos], nil }
		case ex.Kind == sqlparser.ExprColumn && ex.Table == "":
			// Prefer an output column of the same name (alias reference).
			pos := -1
			for j, c := range outCols {
				if c == ex.Column {
					pos = j
					break
				}
			}
			if pos >= 0 {
				p := pos
				keys[i] = func(r outRow) (sqlval.Value, error) { return r.vals[p], nil }
			} else {
				e := ex
				keys[i] = func(r outRow) (sqlval.Value, error) { return r.ev.eval(e) }
			}
		default:
			e := ex
			keys[i] = func(r outRow) (sqlval.Value, error) { return r.ev.eval(e) }
		}
	}
	nk := len(keys)
	dec := make([]sqlval.Value, len(out)*nk)
	for r := range out {
		for i, fn := range keys {
			v, err := fn(out[r])
			if err != nil {
				return err
			}
			dec[r*nk+i] = v
		}
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := dec[idx[a]*nk:], dec[idx[b]*nk:]
		for i := 0; i < nk; i++ {
			c := sqlval.Compare(ka[i], kb[i])
			if c == 0 {
				continue
			}
			if sel.OrderBy[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sorted := make([]outRow, len(out))
	for i, j := range idx {
		sorted[i] = out[j]
	}
	copy(out, sorted)
	return nil
}

// applyLimit applies LIMIT/OFFSET.
func applyLimit(sel *sqlparser.Select, out []outRow) ([]outRow, error) {
	if sel.Limit == nil {
		return out, nil
	}
	ev := &env{}
	lv, err := ev.eval(sel.Limit)
	if err != nil {
		return nil, err
	}
	limit, err := lv.AsInt()
	if err != nil {
		return nil, err
	}
	var offset int64
	if sel.Offset != nil {
		ov, err := ev.eval(sel.Offset)
		if err != nil {
			return nil, err
		}
		offset, err = ov.AsInt()
		if err != nil {
			return nil, err
		}
	}
	if offset < 0 {
		offset = 0
	}
	if offset >= int64(len(out)) {
		return nil, nil
	}
	out = out[offset:]
	if limit >= 0 && int64(len(out)) > limit {
		out = out[:limit]
	}
	return out, nil
}

// rowKey builds a hash key over a projected row for DISTINCT.
func rowKey(vals []sqlval.Value) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteString(v.Key())
		b.WriteByte(0x1f)
	}
	return b.String()
}
