package sqlengine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cjdbc/internal/sqlval"
)

// testDB creates an engine with a small catalogue used across tests.
func testDB(t *testing.T) (*Engine, *Session) {
	t.Helper()
	e := New("test", WithLockTimeout(500*time.Millisecond))
	s := e.NewSession()
	mustExec(t, s, `CREATE TABLE item (
		i_id INTEGER PRIMARY KEY,
		i_title VARCHAR NOT NULL,
		i_cost FLOAT,
		i_a_id INTEGER
	)`)
	mustExec(t, s, `CREATE TABLE author (a_id INTEGER PRIMARY KEY, a_name VARCHAR)`)
	mustExec(t, s, `INSERT INTO author (a_id, a_name) VALUES (1, 'Knuth'), (2, 'Lamport'), (3, 'Gray')`)
	mustExec(t, s, `INSERT INTO item (i_id, i_title, i_cost, i_a_id) VALUES
		(1, 'TAOCP', 150.0, 1),
		(2, 'Paxos Made Simple', 10.0, 2),
		(3, 'Transaction Processing', 90.0, 3),
		(4, 'LaTeX', 40.0, 2),
		(5, 'Art of Programming II', 120.0, 1)`)
	return e, s
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.ExecSQL(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "SELECT i_id, i_title FROM item WHERE i_cost > 50 ORDER BY i_id")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if res.Rows[0][1].AsString() != "TAOCP" {
		t.Errorf("first row = %v", res.Rows[0])
	}
	if res.Columns[0] != "i_id" || res.Columns[1] != "i_title" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "SELECT * FROM author ORDER BY a_id")
	if len(res.Columns) != 2 || len(res.Rows) != 3 {
		t.Fatalf("star: cols=%v rows=%d", res.Columns, len(res.Rows))
	}
}

func TestSelectQualifiedStar(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "SELECT a.* FROM author a JOIN item i ON i.i_a_id = a.a_id WHERE i.i_id = 1")
	if len(res.Columns) != 2 || res.Rows[0][1].AsString() != "Knuth" {
		t.Fatalf("qualified star: %v %v", res.Columns, res.Rows)
	}
}

func TestWhereOperators(t *testing.T) {
	_, s := testDB(t)
	cases := []struct {
		where string
		want  int
	}{
		{"i_cost = 10.0", 1},
		{"i_cost <> 10.0", 4},
		{"i_cost >= 90", 3},
		{"i_cost < 40", 1},
		{"i_cost BETWEEN 40 AND 120", 3},
		{"i_cost NOT BETWEEN 40 AND 120", 2},
		{"i_id IN (1, 3, 5)", 3},
		{"i_id NOT IN (1, 3, 5)", 2},
		{"i_title LIKE '%of%'", 1},
		{"i_title LIKE 'taocp'", 1},   // LIKE is case-insensitive
		{"i_title NOT LIKE '%o%'", 1}, // only 'LaTeX' lacks an 'o'
		{"i_cost > 50 AND i_a_id = 1", 2},
		{"i_cost > 100 OR i_a_id = 3", 3},
		{"NOT (i_cost > 50)", 2},
		{"i_cost IS NULL", 0},
		{"i_cost IS NOT NULL", 5},
	}
	for _, c := range cases {
		res := mustExec(t, s, "SELECT i_id FROM item WHERE "+c.where)
		if len(res.Rows) != c.want {
			t.Errorf("WHERE %s: got %d rows, want %d", c.where, len(res.Rows), c.want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "INSERT INTO item (i_id, i_title, i_cost, i_a_id) VALUES (6, 'Unknown', NULL, NULL)")
	// NULL comparisons never match.
	res := mustExec(t, s, "SELECT i_id FROM item WHERE i_cost = NULL")
	if len(res.Rows) != 0 {
		t.Error("= NULL must match nothing")
	}
	res = mustExec(t, s, "SELECT i_id FROM item WHERE i_cost <> 10")
	if len(res.Rows) != 4 { // row 6 has NULL cost, excluded
		t.Errorf("<> with NULL: %d rows", len(res.Rows))
	}
	res = mustExec(t, s, "SELECT i_id FROM item WHERE i_cost IS NULL")
	if len(res.Rows) != 1 {
		t.Errorf("IS NULL: %d rows", len(res.Rows))
	}
	// Aggregates skip NULLs.
	res = mustExec(t, s, "SELECT COUNT(i_cost), COUNT(*) FROM item")
	if res.Rows[0][0].I != 5 || res.Rows[0][1].I != 6 {
		t.Errorf("COUNT with NULL: %v", res.Rows[0])
	}
}

func TestJoins(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, `SELECT i.i_title, a.a_name FROM item i JOIN author a ON i.i_a_id = a.a_id WHERE a.a_name = 'Knuth' ORDER BY i.i_id`)
	if len(res.Rows) != 2 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
	// LEFT JOIN keeps unmatched left rows.
	mustExec(t, s, "INSERT INTO item (i_id, i_title, i_cost, i_a_id) VALUES (7, 'Anon', 5.0, 99)")
	res = mustExec(t, s, `SELECT i.i_id, a.a_name FROM item i LEFT JOIN author a ON i.i_a_id = a.a_id WHERE i.i_id = 7`)
	if len(res.Rows) != 1 || !res.Rows[0][1].IsNull() {
		t.Errorf("left join: %v", res.Rows)
	}
	// Cross join.
	res = mustExec(t, s, "SELECT COUNT(*) FROM item, author")
	if res.Rows[0][0].I != 6*3 {
		t.Errorf("cross join count = %v", res.Rows[0][0])
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "SELECT SUM(i_cost), MIN(i_cost), MAX(i_cost), AVG(i_cost), COUNT(*) FROM item")
	row := res.Rows[0]
	if f, _ := row[0].AsFloat(); f != 410 {
		t.Errorf("SUM = %v", row[0])
	}
	if f, _ := row[1].AsFloat(); f != 10 {
		t.Errorf("MIN = %v", row[1])
	}
	if f, _ := row[2].AsFloat(); f != 150 {
		t.Errorf("MAX = %v", row[2])
	}
	if f, _ := row[3].AsFloat(); f != 82 {
		t.Errorf("AVG = %v", row[3])
	}
	if row[4].I != 5 {
		t.Errorf("COUNT = %v", row[4])
	}

	res = mustExec(t, s, `SELECT i_a_id, COUNT(*) AS n, SUM(i_cost) AS total FROM item GROUP BY i_a_id HAVING COUNT(*) > 1 ORDER BY n DESC, i_a_id`)
	if len(res.Rows) != 2 {
		t.Fatalf("grouped rows = %d: %v", len(res.Rows), res.Rows)
	}
	if res.Rows[0][0].I != 1 && res.Rows[0][0].I != 2 {
		t.Errorf("group key: %v", res.Rows[0])
	}

	// COUNT on empty set is one row of zero.
	res = mustExec(t, s, "SELECT COUNT(*) FROM item WHERE i_id > 1000")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Errorf("COUNT empty = %v", res.Rows)
	}

	// DISTINCT aggregate.
	res = mustExec(t, s, "SELECT COUNT(DISTINCT i_a_id) FROM item")
	if res.Rows[0][0].I != 3 {
		t.Errorf("COUNT DISTINCT = %v", res.Rows[0][0])
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "SELECT i_id FROM item ORDER BY i_cost DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 1 || res.Rows[1][0].I != 5 {
		t.Fatalf("order/limit: %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT i_id FROM item ORDER BY i_cost DESC LIMIT 2 OFFSET 2")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 3 {
		t.Fatalf("offset: %v", res.Rows)
	}
	// ORDER BY alias and by position.
	res = mustExec(t, s, "SELECT i_id, i_cost AS c FROM item ORDER BY c LIMIT 1")
	if res.Rows[0][0].I != 2 {
		t.Errorf("order by alias: %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT i_id, i_cost FROM item ORDER BY 2 DESC LIMIT 1")
	if res.Rows[0][0].I != 1 {
		t.Errorf("order by position: %v", res.Rows)
	}
	// ORDER BY a column not in the select list.
	res = mustExec(t, s, "SELECT i_title FROM item ORDER BY i_cost LIMIT 1")
	if res.Rows[0][0].AsString() != "Paxos Made Simple" {
		t.Errorf("order by hidden column: %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "SELECT DISTINCT i_a_id FROM item ORDER BY i_a_id")
	if len(res.Rows) != 3 {
		t.Fatalf("distinct: %v", res.Rows)
	}
}

func TestUpdateDelete(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "UPDATE item SET i_cost = i_cost + 10 WHERE i_a_id = 1")
	if res.RowsAffected != 2 {
		t.Fatalf("update affected = %d", res.RowsAffected)
	}
	r := mustExec(t, s, "SELECT i_cost FROM item WHERE i_id = 1")
	if f, _ := r.Rows[0][0].AsFloat(); f != 160 {
		t.Errorf("updated cost = %v", r.Rows[0][0])
	}
	res = mustExec(t, s, "DELETE FROM item WHERE i_cost < 50")
	if res.RowsAffected != 2 {
		t.Fatalf("delete affected = %d", res.RowsAffected)
	}
	r = mustExec(t, s, "SELECT COUNT(*) FROM item")
	if r.Rows[0][0].I != 3 {
		t.Errorf("rows after delete = %v", r.Rows[0][0])
	}
}

func TestTransactionsCommitRollback(t *testing.T) {
	e, s := testDB(t)
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO author (a_id, a_name) VALUES (10, 'Codd')")
	mustExec(t, s, "UPDATE author SET a_name = 'E.F. Codd' WHERE a_id = 10")
	mustExec(t, s, "COMMIT")
	r := mustExec(t, s, "SELECT a_name FROM author WHERE a_id = 10")
	if r.Rows[0][0].AsString() != "E.F. Codd" {
		t.Fatalf("committed value: %v", r.Rows)
	}

	mustExec(t, s, "BEGIN")
	mustExec(t, s, "DELETE FROM author")
	mustExec(t, s, "INSERT INTO author (a_id, a_name) VALUES (42, 'Ghost')")
	mustExec(t, s, "UPDATE item SET i_cost = 0")
	mustExec(t, s, "ROLLBACK")

	r = mustExec(t, s, "SELECT COUNT(*) FROM author")
	if r.Rows[0][0].I != 4 {
		t.Errorf("authors after rollback = %v", r.Rows[0][0])
	}
	r = mustExec(t, s, "SELECT COUNT(*) FROM author WHERE a_id = 42")
	if r.Rows[0][0].I != 0 {
		t.Error("ghost row survived rollback")
	}
	r = mustExec(t, s, "SELECT SUM(i_cost) FROM item")
	if f, _ := r.Rows[0][0].AsFloat(); f != 410 {
		t.Errorf("item costs after rollback = %v", r.Rows[0][0])
	}
	if st := e.StatsSnapshot(); st.Aborts != 1 {
		t.Errorf("aborts = %d", st.Aborts)
	}
}

func TestTransactionErrors(t *testing.T) {
	_, s := testDB(t)
	if _, err := s.ExecSQL("COMMIT"); !errors.Is(err, ErrNoTransaction) {
		t.Errorf("commit outside tx: %v", err)
	}
	if _, err := s.ExecSQL("ROLLBACK"); !errors.Is(err, ErrNoTransaction) {
		t.Errorf("rollback outside tx: %v", err)
	}
	mustExec(t, s, "BEGIN")
	if _, err := s.ExecSQL("BEGIN"); !errors.Is(err, ErrTxInProgress) {
		t.Errorf("nested begin: %v", err)
	}
	mustExec(t, s, "ROLLBACK")
}

func TestAutoCommitRollbackOnError(t *testing.T) {
	_, s := testDB(t)
	// Multi-row insert where the second row violates the primary key: the
	// whole statement must be undone.
	_, err := s.ExecSQL("INSERT INTO author (a_id, a_name) VALUES (50, 'X'), (1, 'Dup')")
	if err == nil {
		t.Fatal("expected unique violation")
	}
	r := mustExec(t, s, "SELECT COUNT(*) FROM author WHERE a_id = 50")
	if r.Rows[0][0].I != 0 {
		t.Error("partial insert not rolled back")
	}
}

func TestRollbackRestoresRowsOnCrossSessionVisibility(t *testing.T) {
	e, s := testDB(t)
	s2 := e.NewSession()
	defer s2.Close()
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE author SET a_name = 'hidden' WHERE a_id = 1")
	mustExec(t, s, "ROLLBACK")
	r := mustExec(t, s2, "SELECT a_name FROM author WHERE a_id = 1")
	if r.Rows[0][0].AsString() != "Knuth" {
		t.Errorf("after rollback: %v", r.Rows[0][0])
	}
}

func TestPrimaryKeyUniqueness(t *testing.T) {
	_, s := testDB(t)
	if _, err := s.ExecSQL("INSERT INTO author (a_id, a_name) VALUES (1, 'Dup')"); err == nil {
		t.Fatal("duplicate primary key accepted")
	}
	// Update to a conflicting key must fail too.
	if _, err := s.ExecSQL("UPDATE author SET a_id = 2 WHERE a_id = 1"); err == nil {
		t.Fatal("update to duplicate primary key accepted")
	}
	// Update keeping the same key is fine.
	mustExec(t, s, "UPDATE author SET a_id = 1 WHERE a_id = 1")
}

func TestNotNullEnforcement(t *testing.T) {
	_, s := testDB(t)
	if _, err := s.ExecSQL("INSERT INTO item (i_id, i_title) VALUES (100, NULL)"); err == nil {
		t.Fatal("NULL in NOT NULL column accepted")
	}
}

func TestAutoIncrement(t *testing.T) {
	e := New("t")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE u (id INTEGER PRIMARY KEY AUTO_INCREMENT, name VARCHAR)")
	r1 := mustExec(t, s, "INSERT INTO u (name) VALUES ('a')")
	r2 := mustExec(t, s, "INSERT INTO u (name) VALUES ('b')")
	if r1.LastInsertID != 1 || r2.LastInsertID != 2 {
		t.Fatalf("auto ids = %d, %d", r1.LastInsertID, r2.LastInsertID)
	}
	// Explicit id bumps the counter.
	mustExec(t, s, "INSERT INTO u (id, name) VALUES (10, 'c')")
	r3 := mustExec(t, s, "INSERT INTO u (name) VALUES ('d')")
	if r3.LastInsertID != 11 {
		t.Fatalf("auto id after explicit = %d", r3.LastInsertID)
	}
	// Rollback restores the counter.
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO u (name) VALUES ('e')")
	mustExec(t, s, "ROLLBACK")
	r4 := mustExec(t, s, "INSERT INTO u (name) VALUES ('f')")
	if r4.LastInsertID != 12 {
		t.Fatalf("auto id after rollback = %d", r4.LastInsertID)
	}
}

func TestDefaults(t *testing.T) {
	e := New("t")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE d (a INTEGER, b VARCHAR DEFAULT 'none', c FLOAT DEFAULT 1.5)")
	mustExec(t, s, "INSERT INTO d (a) VALUES (1)")
	r := mustExec(t, s, "SELECT b, c FROM d")
	if r.Rows[0][0].AsString() != "none" {
		t.Errorf("default b = %v", r.Rows[0][0])
	}
	if f, _ := r.Rows[0][1].AsFloat(); f != 1.5 {
		t.Errorf("default c = %v", r.Rows[0][1])
	}
}

func TestIndexUseAndCorrectness(t *testing.T) {
	e := New("t")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE big (id INTEGER PRIMARY KEY, grp INTEGER, val VARCHAR)")
	mustExec(t, s, "CREATE INDEX idx_grp ON big (grp)")
	for i := 0; i < 200; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO big (id, grp, val) VALUES (%d, %d, 'v%d')", i, i%10, i))
	}
	r := mustExec(t, s, "SELECT COUNT(*) FROM big WHERE grp = 3")
	if r.Rows[0][0].I != 20 {
		t.Fatalf("indexed count = %v", r.Rows[0][0])
	}
	// Index maintained across update and delete.
	mustExec(t, s, "UPDATE big SET grp = 99 WHERE id = 3")
	r = mustExec(t, s, "SELECT COUNT(*) FROM big WHERE grp = 3")
	if r.Rows[0][0].I != 19 {
		t.Fatalf("after update: %v", r.Rows[0][0])
	}
	mustExec(t, s, "DELETE FROM big WHERE grp = 99")
	r = mustExec(t, s, "SELECT COUNT(*) FROM big WHERE grp = 99")
	if r.Rows[0][0].I != 0 {
		t.Fatalf("after delete: %v", r.Rows[0][0])
	}
	ix, err := e.Indexes("big")
	if err != nil || len(ix) != 1 || ix[0] != "idx_grp" {
		t.Errorf("Indexes = %v, %v", ix, err)
	}
	mustExec(t, s, "DROP INDEX idx_grp ON big")
	ix, _ = e.Indexes("big")
	if len(ix) != 0 {
		t.Error("index not dropped")
	}
}

func TestUniqueIndex(t *testing.T) {
	e := New("t")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE u (a INTEGER, b INTEGER)")
	mustExec(t, s, "INSERT INTO u (a, b) VALUES (1, 1), (2, 2)")
	mustExec(t, s, "CREATE UNIQUE INDEX ux ON u (a)")
	if _, err := s.ExecSQL("INSERT INTO u (a, b) VALUES (1, 3)"); err == nil {
		t.Fatal("unique index violation accepted")
	}
	// Creating a unique index over duplicate data fails.
	mustExec(t, s, "INSERT INTO u (a, b) VALUES (3, 2)")
	if _, err := s.ExecSQL("CREATE UNIQUE INDEX ub ON u (b)"); err == nil {
		t.Fatal("unique index over duplicates accepted")
	}
}

func TestTemporaryTables(t *testing.T) {
	e, s := testDB(t)
	mustExec(t, s, `CREATE TEMPORARY TABLE best AS SELECT i_a_id, COUNT(*) AS n FROM item GROUP BY i_a_id`)
	r := mustExec(t, s, "SELECT COUNT(*) FROM best")
	if r.Rows[0][0].I != 3 {
		t.Fatalf("temp table rows = %v", r.Rows[0][0])
	}
	// Invisible to other sessions.
	s2 := e.NewSession()
	defer s2.Close()
	if _, err := s2.ExecSQL("SELECT * FROM best"); err == nil {
		t.Fatal("temp table visible to other session")
	}
	// Not in the catalog.
	for _, n := range e.TableNames() {
		if n == "best" {
			t.Fatal("temp table in catalog")
		}
	}
	mustExec(t, s, "DROP TABLE best")
	if _, err := s.ExecSQL("SELECT * FROM best"); err == nil {
		t.Fatal("temp table survived drop")
	}
}

func TestInsertSelect(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "CREATE TABLE cheap (id INTEGER, title VARCHAR)")
	mustExec(t, s, "INSERT INTO cheap SELECT i_id, i_title FROM item WHERE i_cost < 50")
	r := mustExec(t, s, "SELECT COUNT(*) FROM cheap")
	if r.Rows[0][0].I != 2 {
		t.Fatalf("insert-select rows = %v", r.Rows[0][0])
	}
}

func TestDropTable(t *testing.T) {
	e, s := testDB(t)
	mustExec(t, s, "DROP TABLE author")
	if _, err := s.ExecSQL("SELECT * FROM author"); err == nil {
		t.Fatal("dropped table still queryable")
	}
	var tnf *TableNotFoundError
	_, err := s.ExecSQL("DROP TABLE author")
	if !errors.As(err, &tnf) {
		t.Errorf("second drop: %v", err)
	}
	mustExec(t, s, "DROP TABLE IF EXISTS author")

	// Drop inside a transaction rolls back.
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "DROP TABLE item")
	mustExec(t, s, "ROLLBACK")
	r := mustExec(t, s, "SELECT COUNT(*) FROM item")
	if r.Rows[0][0].I != 5 {
		t.Error("table not restored after rollback of DROP")
	}
	_ = e
}

func TestShowTablesAndMetadata(t *testing.T) {
	e, s := testDB(t)
	r := mustExec(t, s, "SHOW TABLES")
	if len(r.Rows) != 2 {
		t.Fatalf("show tables: %v", r.Rows)
	}
	sch, err := e.TableSchema("item")
	if err != nil || len(sch.Columns) != 4 || sch.Columns[0].Name != "i_id" {
		t.Fatalf("schema: %+v, %v", sch, err)
	}
	if !sch.Columns[0].PrimaryKey {
		t.Error("i_id should be primary key")
	}
	if _, err := e.TableSchema("none"); err == nil {
		t.Error("missing table schema should fail")
	}
}

func TestScalarFunctions(t *testing.T) {
	e := New("t")
	s := e.NewSession()
	cases := []struct {
		expr string
		want string
	}{
		{"LENGTH('hello')", "5"},
		{"UPPER('abc')", "ABC"},
		{"LOWER('ABC')", "abc"},
		{"ABS(-4)", "4"},
		{"FLOOR(2.7)", "2"},
		{"CEIL(2.1)", "3"},
		{"ROUND(2.5)", "3"},
		{"COALESCE(NULL, NULL, 7)", "7"},
		{"IFNULL(NULL, 'x')", "x"},
		{"NULLIF(3, 3)", "NULL"},
		{"CONCAT('a', 'b', 'c')", "abc"},
		{"SUBSTR('hello', 2, 3)", "ell"},
		{"SUBSTR('hello', 2)", "ello"},
		{"MOD(7, 3)", "1"},
		{"'a' || 'b'", "ab"},
		{"1 + 2 * 3", "7"},
		{"(1 + 2) * 3", "9"},
		{"10 / 4", "2.5"},
		{"10 % 3", "1"},
	}
	for _, c := range cases {
		r := mustExec(t, s, "SELECT "+c.expr)
		if got := r.Rows[0][0].AsString(); got != c.want {
			t.Errorf("SELECT %s = %q, want %q", c.expr, got, c.want)
		}
	}
	// Unknown function errors.
	if _, err := s.ExecSQL("SELECT FROBNICATE(1)"); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestTypeCoercionOnInsert(t *testing.T) {
	e := New("t")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE c (i INTEGER, f FLOAT, s VARCHAR, b BOOLEAN, ts TIMESTAMP)")
	mustExec(t, s, "INSERT INTO c (i, f, s, b, ts) VALUES ('42', '2.5', 99, 1, '2004-06-27 10:00:00')")
	r := mustExec(t, s, "SELECT i, f, s, b, ts FROM c")
	row := r.Rows[0]
	if row[0].K != sqlval.KindInt || row[0].I != 42 {
		t.Errorf("i = %v", row[0])
	}
	if row[1].K != sqlval.KindFloat || row[1].F != 2.5 {
		t.Errorf("f = %v", row[1])
	}
	if row[2].K != sqlval.KindString || row[2].S != "99" {
		t.Errorf("s = %v", row[2])
	}
	if row[3].K != sqlval.KindBool || !row[3].AsBool() {
		t.Errorf("b = %v", row[3])
	}
	if row[4].K != sqlval.KindTime || row[4].T.Year() != 2004 {
		t.Errorf("ts = %v", row[4])
	}
	if _, err := s.ExecSQL("INSERT INTO c (i) VALUES ('not a number')"); err == nil {
		t.Error("bad coercion accepted")
	}
}

func TestConcurrentReadersSharedLock(t *testing.T) {
	e, _ := testDB(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			for j := 0; j < 50; j++ {
				if _, err := s.ExecSQL("SELECT COUNT(*) FROM item"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestReadersDoNotBlockOnWriters(t *testing.T) {
	// Reads are nonblocking (like InnoDB's consistent reads): a reader
	// completes immediately even while a transaction holds the table's
	// exclusive lock, and never deadlocks against writers.
	e, _ := testDB(t)
	w := e.NewSession()
	defer w.Close()
	mustExec(t, w, "BEGIN")
	mustExec(t, w, "UPDATE item SET i_cost = 0 WHERE i_id = 1")

	r := e.NewSession()
	defer r.Close()
	start := time.Now()
	res, err := r.ExecSQL("SELECT i_cost FROM item WHERE i_id = 1")
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("reader blocked for %v on a write lock", elapsed)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	mustExec(t, w, "ROLLBACK")
	// After rollback the original value is restored for everyone.
	res = mustExec(t, r, "SELECT i_cost FROM item WHERE i_id = 1")
	if f, _ := res.Rows[0][0].AsFloat(); f != 150 {
		t.Errorf("after rollback: %v", res.Rows[0][0])
	}
}

func TestLockTimeoutOnConflict(t *testing.T) {
	e := New("t", WithLockTimeout(50*time.Millisecond))
	s1 := e.NewSession()
	s2 := e.NewSession()
	defer s1.Close()
	defer s2.Close()
	mustExec(t, s1, "CREATE TABLE x (a INTEGER)")
	mustExec(t, s1, "BEGIN")
	mustExec(t, s1, "INSERT INTO x (a) VALUES (1)")
	_, err := s2.ExecSQL("INSERT INTO x (a) VALUES (2)")
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("conflicting write: %v", err)
	}
	mustExec(t, s1, "COMMIT")
	mustExec(t, s2, "INSERT INTO x (a) VALUES (2)")
}

func TestDeadlockResolvedByTimeout(t *testing.T) {
	e := New("t", WithLockTimeout(100*time.Millisecond))
	s0 := e.NewSession()
	mustExec(t, s0, "CREATE TABLE a (x INTEGER)")
	mustExec(t, s0, "CREATE TABLE b (x INTEGER)")
	mustExec(t, s0, "INSERT INTO a (x) VALUES (1)")
	mustExec(t, s0, "INSERT INTO b (x) VALUES (1)")

	s1 := e.NewSession()
	s2 := e.NewSession()
	defer s1.Close()
	defer s2.Close()
	mustExec(t, s1, "BEGIN")
	mustExec(t, s2, "BEGIN")
	mustExec(t, s1, "UPDATE a SET x = 2")
	mustExec(t, s2, "UPDATE b SET x = 2")
	errCh := make(chan error, 2)
	go func() { _, err := s1.ExecSQL("UPDATE b SET x = 3"); errCh <- err }()
	go func() { _, err := s2.ExecSQL("UPDATE a SET x = 3"); errCh <- err }()
	e1, e2 := <-errCh, <-errCh
	if e1 == nil && e2 == nil {
		t.Fatal("deadlock not detected by either session")
	}
}

func TestSessionCloseRollsBack(t *testing.T) {
	e, _ := testDB(t)
	s := e.NewSession()
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "DELETE FROM item")
	s.Close()
	s2 := e.NewSession()
	defer s2.Close()
	r := mustExec(t, s2, "SELECT COUNT(*) FROM item")
	if r.Rows[0][0].I != 5 {
		t.Errorf("close did not roll back: %v", r.Rows[0][0])
	}
	if _, err := s.ExecSQL("SELECT 1"); !errors.Is(err, ErrClosed) {
		t.Errorf("closed session exec: %v", err)
	}
}

func TestEngineClose(t *testing.T) {
	e, s := testDB(t)
	e.Close()
	if _, err := s.ExecSQL("SELECT 1 FROM item"); !errors.Is(err, ErrClosed) {
		t.Errorf("closed engine exec: %v", err)
	}
}

func TestSnapshotTable(t *testing.T) {
	e, _ := testDB(t)
	sch, rows, err := e.SnapshotTable("author")
	if err != nil || len(rows) != 3 || len(sch.Columns) != 2 {
		t.Fatalf("snapshot: %v rows=%d", err, len(rows))
	}
	// Snapshot rows are copies.
	rows[0][1] = sqlval.String_("mutated")
	s := e.NewSession()
	defer s.Close()
	r := mustExec(t, s, "SELECT a_name FROM author WHERE a_id = 1")
	if r.Rows[0][0].AsString() != "Knuth" {
		t.Error("snapshot aliases storage")
	}
}

func TestBestSellerStyleTempTableFlow(t *testing.T) {
	// The TPC-W best-seller pattern: CREATE TEMP TABLE AS SELECT with
	// GROUP BY + ORDER BY + LIMIT, then join against it, then drop.
	_, s := testDB(t)
	mustExec(t, s, `CREATE TEMPORARY TABLE tmp AS
		SELECT i_a_id, SUM(i_cost) AS total FROM item GROUP BY i_a_id ORDER BY total DESC LIMIT 2`)
	r := mustExec(t, s, `SELECT a.a_name, t.total FROM tmp t JOIN author a ON a.a_id = t.i_a_id ORDER BY t.total DESC`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][0].AsString() != "Knuth" {
		t.Errorf("top seller = %v", r.Rows[0][0])
	}
	mustExec(t, s, "DROP TABLE tmp")
}

func TestStatsCounters(t *testing.T) {
	e, s := testDB(t)
	before := e.StatsSnapshot()
	mustExec(t, s, "SELECT 1")
	mustExec(t, s, "INSERT INTO author (a_id, a_name) VALUES (77, 'S')")
	after := e.StatsSnapshot()
	if after.Reads != before.Reads+1 || after.Writes != before.Writes+1 {
		t.Errorf("stats: %+v -> %+v", before, after)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%", "", true},
		{"%", "abc", true},
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "abbc", false},
		{"abc", "abc", true},
		{"ABC", "abc", true},
		{"a%z", "abc", false},
		{"", "", true},
		{"", "a", false},
		{"%%b", "ab", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestCompactionPreservesRows(t *testing.T) {
	e := New("t")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE c (id INTEGER PRIMARY KEY)")
	for i := 0; i < 300; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO c (id) VALUES (%d)", i))
	}
	mustExec(t, s, "DELETE FROM c WHERE id % 2 = 0")
	r := mustExec(t, s, "SELECT COUNT(*) FROM c")
	if r.Rows[0][0].I != 150 {
		t.Fatalf("after delete: %v", r.Rows[0][0])
	}
	// Survivors still scannable in insertion order.
	r = mustExec(t, s, "SELECT id FROM c LIMIT 3")
	if r.Rows[0][0].I != 1 || r.Rows[1][0].I != 3 || r.Rows[2][0].I != 5 {
		t.Errorf("scan order after compaction: %v", r.Rows)
	}
}

func TestErrorMessagesNameTheTable(t *testing.T) {
	e := New("t")
	s := e.NewSession()
	_, err := s.ExecSQL("SELECT * FROM missing")
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("error should name the table: %v", err)
	}
}
