package sqlengine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestConcurrentReadersWithWriter drives 16 reader sessions concurrently
// with one writer session on a single engine, the shape the RW read path
// must survive under -race: readers share the engine lock while the writer
// repeatedly takes it exclusively for inserts, updates, deletes, index DDL
// and transaction rollbacks.
func TestConcurrentReadersWithWriter(t *testing.T) {
	e := New("race")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE r (id INTEGER PRIMARY KEY, cat INTEGER, val INTEGER)")
	mustExec(t, s, "CREATE INDEX r_cat ON r (cat)")
	const seedRows = 400
	for i := 0; i < seedRows; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO r (id, cat, val) VALUES (%d, %d, %d)", i, i%20, i))
	}

	const readers = 16
	const iters = 300
	var wg sync.WaitGroup

	// Writer: churns rows, transactions and rollbacks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ws := e.NewSession()
		defer ws.Close()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < iters; i++ {
			id := seedRows + i
			if _, err := ws.ExecSQL(fmt.Sprintf("INSERT INTO r (id, cat, val) VALUES (%d, %d, %d)", id, id%20, id)); err != nil {
				t.Errorf("writer insert: %v", err)
				return
			}
			switch rng.Intn(4) {
			case 0:
				if _, err := ws.ExecSQL(fmt.Sprintf("UPDATE r SET val = val + 1 WHERE id = %d", rng.Intn(seedRows))); err != nil {
					t.Errorf("writer update: %v", err)
					return
				}
			case 1:
				if _, err := ws.ExecSQL(fmt.Sprintf("DELETE FROM r WHERE id = %d", seedRows+rng.Intn(i+1))); err != nil {
					t.Errorf("writer delete: %v", err)
					return
				}
			case 2:
				// A transaction that always rolls back exercises the undo
				// log's exclusive-lock replay against concurrent readers.
				for _, sql := range []string{
					"BEGIN",
					fmt.Sprintf("UPDATE r SET val = -1 WHERE cat = %d", rng.Intn(20)),
					"ROLLBACK",
				} {
					if _, err := ws.ExecSQL(sql); err != nil {
						t.Errorf("writer %q: %v", sql, err)
						return
					}
				}
			}
		}
	}()

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rs := e.NewSession()
			defer rs.Close()
			rng := rand.New(rand.NewSource(int64(g) + 100))
			for i := 0; i < iters; i++ {
				switch rng.Intn(4) {
				case 0:
					id := rng.Intn(seedRows)
					res, err := rs.ExecSQL(fmt.Sprintf("SELECT id, cat, val FROM r WHERE id = %d", id))
					if err != nil {
						t.Errorf("reader point: %v", err)
						return
					}
					for _, row := range res.Rows {
						if row[0].I != int64(id) {
							t.Errorf("point query for %d returned id %d", id, row[0].I)
							return
						}
					}
				case 1:
					cat := rng.Intn(20)
					res, err := rs.ExecSQL(fmt.Sprintf("SELECT id FROM r WHERE cat = %d", cat))
					if err != nil {
						t.Errorf("reader index scan: %v", err)
						return
					}
					for _, row := range res.Rows {
						if row[0].I%20 != int64(cat) {
							t.Errorf("cat query for %d returned id %d", cat, row[0].I)
							return
						}
					}
				case 2:
					if _, err := rs.ExecSQL(fmt.Sprintf("SELECT id FROM r WHERE cat IN (%d, %d) LIMIT 5", rng.Intn(20), rng.Intn(20))); err != nil {
						t.Errorf("reader IN: %v", err)
						return
					}
				default:
					res, err := rs.ExecSQL("SELECT COUNT(*), MIN(id), MAX(val) FROM r")
					if err != nil {
						t.Errorf("reader agg: %v", err)
						return
					}
					if res.Rows[0][0].I < 1 {
						t.Errorf("count dropped to %d", res.Rows[0][0].I)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The engine must still be internally consistent: the scan count, the
	// row map and an index-planned count all agree.
	res := mustExec(t, s, "SELECT COUNT(*) FROM r")
	n, err := e.RowCount("r")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != int64(n) {
		t.Fatalf("COUNT(*) = %d, RowCount = %d", res.Rows[0][0].I, n)
	}
	var byCat int64
	for c := 0; c < 20; c++ {
		r := mustExec(t, s, fmt.Sprintf("SELECT COUNT(*) FROM r WHERE cat = %d", c))
		byCat += r.Rows[0][0].I
	}
	if byCat != int64(n) {
		t.Fatalf("sum of per-cat counts = %d, total = %d", byCat, n)
	}
}

// TestSelectCompletesWhileWriteInFlight proves the MVCC read-path claims
// deterministically (independent of core count): a SELECT of table g
// completes — and returns the last committed value — while a conflicting
// write holds g's lock-manager ticket (uncommitted transaction), and even
// while a writer holds g's storage latch exclusively mid-statement. Readers
// never appear in the lock manager and never touch the latch, so neither
// can block them.
func TestSelectCompletesWhileWriteInFlight(t *testing.T) {
	e := New("mvcc")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE g (id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, s, "INSERT INTO g (id, v) VALUES (1, 10)")

	// An uncommitted transaction holds g's exclusive table lock (ticket
	// FIFO) and has pushed an uncommitted version of the row.
	ws := e.NewSession()
	defer ws.Close()
	mustExec(t, ws, "BEGIN")
	mustExec(t, ws, "UPDATE g SET v = 99 WHERE id = 1")

	readDone := make(chan struct{})
	var got int64
	go func() {
		defer close(readDone)
		rs := e.NewSession()
		defer rs.Close()
		res, err := rs.ExecSQL("SELECT v FROM g WHERE id = 1")
		if err != nil {
			t.Errorf("read under in-flight write: %v", err)
			return
		}
		if len(res.Rows) != 1 {
			t.Errorf("read under in-flight write: %d rows, want 1", len(res.Rows))
			return
		}
		got = res.Rows[0][0].I
	}()
	select {
	case <-readDone:
		if got != 10 {
			t.Fatalf("snapshot read saw v=%d, want committed 10 (uncommitted was 99)", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("a SELECT blocked behind a conflicting write's ticket")
	}
	// The writer itself still sees its own uncommitted version.
	if res := mustExec(t, ws, "SELECT v FROM g WHERE id = 1"); res.Rows[0][0].I != 99 {
		t.Fatalf("writer saw v=%d, want own uncommitted 99", res.Rows[0][0].I)
	}
	mustExec(t, ws, "COMMIT")
	if res := mustExec(t, s, "SELECT v FROM g WHERE id = 1"); res.Rows[0][0].I != 99 {
		t.Fatalf("post-commit read saw v=%d, want 99", res.Rows[0][0].I)
	}

	// Harsher: a writer parked mid-statement, holding g's storage latch
	// exclusively. Pre-MVCC this latch blocked every reader of g; now a
	// SELECT must still complete.
	e.tables["g"].store.Lock()
	rs := e.NewSession()
	latchedRead := make(chan struct{})
	go func() {
		defer close(latchedRead)
		res, err := rs.ExecSQL("SELECT v FROM g WHERE id = 1")
		if err != nil {
			t.Errorf("read under held latch: %v", err)
			return
		}
		if res.Rows[0][0].I != 99 {
			t.Errorf("read under held latch saw v=%d, want 99", res.Rows[0][0].I)
		}
	}()
	select {
	case <-latchedRead:
	case <-time.After(5 * time.Second):
		e.tables["g"].store.Unlock()
		t.Fatal("a SELECT blocked on the table's storage latch: readers latch")
	}
	// Close only after the latch drops: session close may run a GC sweep,
	// which (like any writer) takes the storage latch.
	e.tables["g"].store.Unlock()
	rs.Close()
}

// TestCreateTableAsSelectConcurrentReaders: CREATE TABLE ... AS SELECT must
// populate the table before publishing it — once a concurrent reader can
// resolve the name, it must see the complete row set (run with -race).
func TestCreateTableAsSelectConcurrentReaders(t *testing.T) {
	e := New("ctas")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE src (id INTEGER PRIMARY KEY, v INTEGER)")
	const rows = 100
	for i := 0; i < rows; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO src (id, v) VALUES (%d, %d)", i, i))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs := e.NewSession()
			defer rs.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := rs.ExecSQL("SELECT COUNT(*) FROM c")
				if err != nil {
					continue // not yet created or just dropped
				}
				if n := res.Rows[0][0].I; n != rows {
					t.Errorf("reader saw %d of %d rows in a published table", n, rows)
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		mustExec(t, s, "CREATE TABLE c AS SELECT id, v FROM src")
		mustExec(t, s, "DROP TABLE c")
	}
	close(stop)
	wg.Wait()
}

// TestOppositeOrderJoinsDoNotDeadlockWithWriters is the regression guard
// for reader-latch ordering: sync.RWMutex blocks new readers behind a
// pending writer, so if joins latched tables in FROM-clause order, a
// `FROM a, b` reader and a `FROM b, a` reader plus one pending writer per
// table could cycle and hang forever (no timeout covers storage latches).
// Latching in sorted name order makes the cycle impossible; this drives
// the exact adversarial mix under a watchdog.
func TestOppositeOrderJoinsDoNotDeadlockWithWriters(t *testing.T) {
	e := New("latchorder")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE a (id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, s, "CREATE TABLE b (id INTEGER PRIMARY KEY, v INTEGER)")
	for i := 0; i < 4; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO a (id, v) VALUES (%d, 0)", i))
		mustExec(t, s, fmt.Sprintf("INSERT INTO b (id, v) VALUES (%d, 0)", i))
	}

	const iters = 300
	var wg sync.WaitGroup
	work := []string{
		"SELECT COUNT(*) FROM a, b",
		"SELECT COUNT(*) FROM b, a",
		"UPDATE a SET v = v + 1 WHERE id = 1",
		"UPDATE b SET v = v + 1 WHERE id = 1",
	}
	for _, q := range work {
		wg.Add(1)
		go func(q string) {
			defer wg.Done()
			ws := e.NewSession()
			defer ws.Close()
			for i := 0; i < iters; i++ {
				if _, err := ws.ExecSQL(q); err != nil {
					t.Errorf("%q: %v", q, err)
					return
				}
			}
		}(q)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("opposite-order joins deadlocked against pending writers")
	}
}
