package sqlengine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// runBothPlans executes the query twice against the same snapshot — once
// index-planned (hash probes, ordered-range scans, ORDER BY elision) and
// once with planning forced off (full scan plus in-memory sort) — and
// asserts byte-identical results, order included. This is the snapshot-vs-
// snapshot oracle that replaced the retired latched-read mode: both
// executions resolve rows through the same MVCC read view, so any
// divergence is a planner or ordered-index bug, not a visibility race.
func runBothPlans(t *testing.T, e *Engine, s *Session, query string) {
	t.Helper()
	planned, err := s.ExecSQL(query)
	if err != nil {
		t.Fatalf("%q (planned): %v", query, err)
	}
	e.noIndexPlan.Store(true)
	scanned, err := s.ExecSQL(query)
	e.noIndexPlan.Store(false)
	if err != nil {
		t.Fatalf("%q (full scan): %v", query, err)
	}
	if len(planned.Rows) != len(scanned.Rows) {
		t.Fatalf("%q: planned %d rows, full scan %d rows", query, len(planned.Rows), len(scanned.Rows))
	}
	for i := range planned.Rows {
		if rowKey(planned.Rows[i]) != rowKey(scanned.Rows[i]) {
			t.Fatalf("%q row %d: planned %v, full scan %v", query, i, planned.Rows[i], scanned.Rows[i])
		}
	}
}

// TestSnapshotPlannedEqualsFullScan is the property test backing the
// ordered-index work (and the successor of the retired snapshot==latched
// oracle): at any quiescent point — and, for the writing session itself, at
// any point inside its own transaction — every planned execution returns
// exactly what a forced full scan returns, across point lookups, IN plans,
// range predicates, BETWEEN, ORDER BY [DESC] ... LIMIT/OFFSET top-k scans,
// NULL sort boundaries, joins and aggregates. A seeded random workload of
// inserts (including NULL keys), updates, deletes and rollbacks drives the
// comparison.
func TestSnapshotPlannedEqualsFullScan(t *testing.T) {
	e := New("prop")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE p (id INTEGER PRIMARY KEY, cat INTEGER, val INTEGER)")
	mustExec(t, s, "CREATE TABLE q (id INTEGER PRIMARY KEY, pid INTEGER, w INTEGER)")
	mustExec(t, s, "CREATE INDEX p_cat ON p (cat)")
	mustExec(t, s, "CREATE INDEX q_pid ON q (pid)")

	queries := []string{
		"SELECT id, cat, val FROM p",
		"SELECT id, cat, val FROM p WHERE cat = 3",
		"SELECT id FROM p WHERE cat IN (1, 4, 7)",
		"SELECT id, val FROM p WHERE id = 17",
		"SELECT id, cat FROM p WHERE cat > 3 AND cat <= 7",
		"SELECT id, cat FROM p WHERE cat BETWEEN 2 AND 5 AND val < 50",
		"SELECT id, cat FROM p WHERE id >= 40 AND id < 60",
		"SELECT id, cat, val FROM p ORDER BY cat LIMIT 7",
		"SELECT id, cat, val FROM p ORDER BY cat DESC LIMIT 7",
		"SELECT id, cat, val FROM p ORDER BY cat LIMIT 5 OFFSET 3",
		"SELECT id, cat, val FROM p ORDER BY id DESC LIMIT 4",
		"SELECT id, cat FROM p WHERE cat >= 2 ORDER BY cat LIMIT 6",
		"SELECT id, cat FROM p WHERE val < 70 ORDER BY cat DESC LIMIT 6",
		"SELECT id, val FROM p WHERE cat = 4 ORDER BY cat LIMIT 5",
		"SELECT id, cat, val FROM p ORDER BY cat, id",
		"SELECT COUNT(*), MIN(val), MAX(val) FROM p",
		"SELECT cat, COUNT(*) FROM p GROUP BY cat ORDER BY cat",
		"SELECT p.id, q.w FROM p, q WHERE p.id = q.pid ORDER BY p.id, q.w",
		"SELECT COUNT(*) FROM p, q WHERE p.id = q.pid AND p.cat = 2",
	}
	check := func() {
		for _, q := range queries {
			runBothPlans(t, e, s, q)
		}
	}

	rng := rand.New(rand.NewSource(42))
	nextID := 0
	for round := 0; round < 30; round++ {
		for i := 0; i < 10; i++ {
			switch rng.Intn(5) {
			case 0, 1:
				cat := fmt.Sprintf("%d", rng.Intn(10))
				if rng.Intn(8) == 0 {
					cat = "NULL" // exercise NULL-first ordering boundaries
				}
				mustExec(t, s, fmt.Sprintf("INSERT INTO p (id, cat, val) VALUES (%d, %s, %d)", nextID, cat, rng.Intn(100)))
				if rng.Intn(2) == 0 {
					mustExec(t, s, fmt.Sprintf("INSERT INTO q (id, pid, w) VALUES (%d, %d, %d)", nextID, rng.Intn(nextID+1), rng.Intn(100)))
				}
				nextID++
			case 2:
				mustExec(t, s, fmt.Sprintf("UPDATE p SET val = val + 1, cat = %d WHERE id = %d", rng.Intn(10), rng.Intn(nextID+1)))
			case 3:
				mustExec(t, s, fmt.Sprintf("DELETE FROM p WHERE id = %d", rng.Intn(nextID+1)))
			case 4:
				// A rolled-back transaction must leave both plans unchanged.
				mustExec(t, s, "BEGIN")
				mustExec(t, s, fmt.Sprintf("UPDATE p SET val = -1 WHERE cat = %d", rng.Intn(10)))
				// Own uncommitted writes are visible to both plans.
				check()
				mustExec(t, s, "ROLLBACK")
			}
		}
		check()
	}
}

// TestTransactionSnapshotStability: a transaction pins its snapshot at
// BEGIN, so its reads are repeatable — a concurrent commit is invisible
// until the transaction ends, and visible right after.
func TestTransactionSnapshotStability(t *testing.T) {
	e := New("stable")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE a (id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, s, "INSERT INTO a (id, v) VALUES (1, 1)")

	r := e.NewSession()
	defer r.Close()
	mustExec(t, r, "BEGIN")
	if res := mustExec(t, r, "SELECT v FROM a WHERE id = 1"); res.Rows[0][0].I != 1 {
		t.Fatalf("first read saw %d, want 1", res.Rows[0][0].I)
	}
	mustExec(t, s, "UPDATE a SET v = 2 WHERE id = 1")
	mustExec(t, s, "INSERT INTO a (id, v) VALUES (2, 2)")
	if res := mustExec(t, r, "SELECT v FROM a WHERE id = 1"); res.Rows[0][0].I != 1 {
		t.Fatalf("repeated read saw %d, want pinned 1", res.Rows[0][0].I)
	}
	if res := mustExec(t, r, "SELECT COUNT(*) FROM a"); res.Rows[0][0].I != 1 {
		t.Fatalf("pinned COUNT(*) = %d, want 1", res.Rows[0][0].I)
	}
	mustExec(t, r, "COMMIT")
	if res := mustExec(t, r, "SELECT v FROM a WHERE id = 1"); res.Rows[0][0].I != 2 {
		t.Fatalf("post-commit read saw %d, want 2", res.Rows[0][0].I)
	}
	if res := mustExec(t, r, "SELECT COUNT(*) FROM a"); res.Rows[0][0].I != 2 {
		t.Fatalf("post-commit COUNT(*) = %d, want 2", res.Rows[0][0].I)
	}
}

// TestGCReclaimsVersionsAfterReadersDrain is the version-leak check: a
// pinned reader holds the GC watermark back while a writer churns versions;
// once the reader drains, the next sweep reclaims every superseded version.
func TestGCReclaimsVersionsAfterReadersDrain(t *testing.T) {
	e := New("gc", WithGCThreshold(1)) // sweep at every opportunity
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE g (id INTEGER PRIMARY KEY, v INTEGER)")
	const rows = 8
	for i := 0; i < rows; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO g (id, v) VALUES (%d, 0)", i))
	}

	// Reader pins an old epoch for the duration of its transaction.
	r := e.NewSession()
	mustExec(t, r, "BEGIN")
	mustExec(t, r, "SELECT COUNT(*) FROM g")

	const churn = 50
	for i := 0; i < churn; i++ {
		mustExec(t, s, fmt.Sprintf("UPDATE g SET v = %d WHERE id = %d", i+1, i%rows))
	}
	// The pinned reader must keep the superseded versions alive.
	if vs := e.VersionStatsSnapshot(); vs.Versions <= rows {
		t.Fatalf("versions = %d with a pinned reader, want > %d (GC ran past the pin)", vs.Versions, rows)
	}
	// The reader still sees its pinned snapshot through the churn.
	if res := mustExec(t, r, "SELECT COUNT(*) FROM g WHERE v = 0"); res.Rows[0][0].I != rows {
		t.Fatalf("pinned reader saw %d unmodified rows, want %d", res.Rows[0][0].I, rows)
	}
	mustExec(t, r, "COMMIT")
	r.Close()

	// One more write gives the (threshold-1) engine a sweep opportunity with
	// the watermark now unpinned: every superseded version must go.
	mustExec(t, s, "UPDATE g SET v = -1 WHERE id = 0")
	vs := e.VersionStatsSnapshot()
	if vs.Chains != rows {
		t.Fatalf("chains = %d, want %d", vs.Chains, rows)
	}
	if vs.Versions != rows {
		t.Fatalf("versions = %d after readers drained, want %d (superseded versions leaked)", vs.Versions, rows)
	}
}

// TestGCSweepOnSessionClose: when the draining session was itself the pin
// holding the watermark back, its Close runs the sweep — no later write is
// needed for reclamation.
func TestGCSweepOnSessionClose(t *testing.T) {
	e := New("gcclose", WithGCThreshold(1000000)) // never sweep on threshold
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE g (id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, s, "INSERT INTO g (id, v) VALUES (1, 0)")
	for i := 0; i < 20; i++ {
		mustExec(t, s, fmt.Sprintf("UPDATE g SET v = %d WHERE id = 1", i+1))
	}
	if vs := e.VersionStatsSnapshot(); vs.Versions <= 1 {
		t.Fatalf("versions = %d before close, want > 1", vs.Versions)
	}
	s.Close()
	if vs := e.VersionStatsSnapshot(); vs.Versions != 1 {
		t.Fatalf("versions = %d after close, want 1", vs.Versions)
	}
}

// TestConcurrentSnapshotReadersSeeOneEpoch: a multi-row transfer commits
// atomically — every concurrent snapshot scan must observe an invariant sum
// (no torn read can mix pre- and post-transfer rows), under -race.
func TestConcurrentSnapshotReadersSeeOneEpoch(t *testing.T) {
	e := New("epoch")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)")
	const accts = 10
	const each = 100
	for i := 0; i < accts; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO acct (id, bal) VALUES (%d, %d)", i, each))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rs := e.NewSession()
			defer rs.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := rs.ExecSQL("SELECT SUM(bal) FROM acct")
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if sum := res.Rows[0][0].I; sum != accts*each {
					t.Errorf("torn snapshot: SUM(bal) = %d, want %d", sum, accts*each)
					return
				}
			}
		}(g)
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		from, to := rng.Intn(accts), rng.Intn(accts)
		amt := rng.Intn(20)
		mustExec(t, s, "BEGIN")
		mustExec(t, s, fmt.Sprintf("UPDATE acct SET bal = bal - %d WHERE id = %d", amt, from))
		mustExec(t, s, fmt.Sprintf("UPDATE acct SET bal = bal + %d WHERE id = %d", amt, to))
		mustExec(t, s, "COMMIT")
	}
	close(stop)
	wg.Wait()
}
