package sqlengine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// brwMutex is a "big-reader" sharded reader/writer lock. Readers lock one
// shard — chosen per session, so concurrent SELECTs land on different
// cache lines — and writers lock every shard in order. A single
// sync.RWMutex makes every reader bounce the same reader-count word
// between cores, which caps read throughput on many-core machines even
// though no reader ever waits; sharding removes that ping-pong at the cost
// of a slightly more expensive (already heavyweight, fully serialized)
// write path.
type brwMutex struct {
	shards []brwShard
	mask   uint32
}

// brwShard pads each RWMutex onto its own cache-line pair so reader
// counts on different shards never share a line.
type brwShard struct {
	mu sync.RWMutex
	_  [104]byte
}

func newBRWMutex() brwMutex {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 32 {
		n <<= 1
	}
	return brwMutex{shards: make([]brwShard, n), mask: uint32(n - 1)}
}

// RLock locks one shard shared. idx is any stable per-session value;
// sessions spread round-robin so a session's reads always touch the same
// shard. Writers hold every shard, so a single shared shard suffices.
func (m *brwMutex) RLock(idx uint32) {
	m.shards[idx&m.mask].mu.RLock()
}

// RUnlock releases the shard RLock(idx) took.
func (m *brwMutex) RUnlock(idx uint32) {
	m.shards[idx&m.mask].mu.RUnlock()
}

// Lock locks every shard exclusively, in shard order (all writers take the
// same order, so writers never deadlock each other).
func (m *brwMutex) Lock() {
	for i := range m.shards {
		m.shards[i].mu.Lock()
	}
}

// Unlock releases every shard in reverse order.
func (m *brwMutex) Unlock() {
	for i := len(m.shards) - 1; i >= 0; i-- {
		m.shards[i].mu.Unlock()
	}
}

// statShard holds one shard of the engine's statement counters, padded so
// sessions on different shards never contend on a counter cache line.
type statShard struct {
	statements   atomic.Int64
	reads        atomic.Int64
	writes       atomic.Int64
	transactions atomic.Int64
	aborts       atomic.Int64
	_            [88]byte
}
