package sqlengine

import (
	"strings"
	"time"

	"cjdbc/internal/sqlparser"
	"cjdbc/internal/sqlval"
)

// Result is the outcome of one statement: either a row set (reads) or an
// affected-row count (writes). It is the engine-side analogue of a JDBC
// ResultSet plus update count.
type Result struct {
	Columns      []string
	Rows         [][]sqlval.Value
	RowsAffected int64
	LastInsertID int64
}

// ExecSQL parses and executes a statement.
func (s *Session) ExecSQL(sql string) (*Result, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.Exec(st)
}

// Exec executes a parsed statement. Statements outside an explicit
// transaction auto-commit; on error their partial effects are undone.
func (s *Session) Exec(st sqlparser.Statement) (*Result, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if s.killed.Load() {
		return nil, ErrKilled
	}
	e := s.engine
	if e.closed.Load() {
		return nil, ErrClosed
	}
	sh := s.statShard()
	sh.statements.Add(1)
	switch sqlparser.Classify(st) {
	case sqlparser.ClassRead:
		sh.reads.Add(1)
	case sqlparser.ClassWrite:
		sh.writes.Add(1)
	}

	switch t := st.(type) {
	case *sqlparser.Begin:
		if err := s.Begin(); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.Commit:
		if err := s.Commit(); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.Rollback:
		if err := s.Rollback(); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.ShowTables:
		res := &Result{Columns: []string{"table_name"}}
		for _, n := range s.engine.TableNames() {
			res.Rows = append(res.Rows, []sqlval.Value{sqlval.String_(n)})
		}
		return res, nil
	case *sqlparser.CreateTable:
		return s.execWithCleanup(func() (*Result, error) { return s.execCreateTable(t) })
	case *sqlparser.DropTable:
		return s.execWithCleanup(func() (*Result, error) { return s.execDropTable(t) })
	case *sqlparser.CreateIndex:
		return s.execWithCleanup(func() (*Result, error) { return s.execCreateIndex(t) })
	case *sqlparser.DropIndex:
		return s.execWithCleanup(func() (*Result, error) { return s.execDropIndex(t) })
	case *sqlparser.Insert:
		return s.execWithCleanup(func() (*Result, error) { return s.execInsert(t) })
	case *sqlparser.Update:
		return s.execWithCleanup(func() (*Result, error) { return s.execUpdate(t) })
	case *sqlparser.Delete:
		return s.execWithCleanup(func() (*Result, error) { return s.execDelete(t) })
	case *sqlparser.Select:
		return s.execWithCleanup(func() (*Result, error) { return s.execSelect(t) })
	}
	return nil, errf("unsupported statement %T", st)
}

// execWithCleanup runs one statement body and applies auto-commit cleanup.
func (s *Session) execWithCleanup(body func() (*Result, error)) (*Result, error) {
	res, err := body()
	if err2 := s.endStatement(err); err2 != nil {
		return nil, err2
	}
	return res, nil
}

func (s *Session) execCreateTable(ct *sqlparser.CreateTable) (*Result, error) {
	name := strings.ToLower(ct.Table)
	e := s.engine

	var schema *Schema
	var rows [][]sqlval.Value
	if ct.AsSelect != nil {
		// Evaluate the SELECT first (takes shared locks), then create.
		sel, err := s.execSelect(ct.AsSelect)
		if err != nil {
			return nil, err
		}
		schema = &Schema{Name: name}
		for i, col := range sel.Columns {
			kind := sqlval.KindString
			for _, r := range sel.Rows {
				if !r[i].IsNull() {
					kind = r[i].K
					break
				}
			}
			schema.Columns = append(schema.Columns, Column{Name: strings.ToLower(col), Type: kind})
		}
		rows = sel.Rows
	} else {
		schema = &Schema{Name: name}
		for _, cd := range ct.Columns {
			schema.Columns = append(schema.Columns, Column{
				Name:          strings.ToLower(cd.Name),
				Type:          cd.Type,
				NotNull:       cd.NotNull,
				PrimaryKey:    cd.PrimaryKey,
				AutoIncrement: cd.AutoIncrement,
				Default:       cd.Default,
			})
		}
		for _, pk := range ct.PrimaryKey {
			idx := schema.ColumnIndex(pk)
			if idx < 0 {
				return nil, errf("PRIMARY KEY column %q not in table %s", pk, name)
			}
			schema.Columns[idx].PrimaryKey = true
			schema.Columns[idx].NotNull = true
		}
	}

	if ct.Temporary {
		// Temporary tables are session-private: no lock needed, and any
		// reservation placed by the dispatcher must be dropped.
		s.engine.locks.cancelReservations(s, name)
	} else {
		if err := s.lockTable(name, true, s.lockDeadline()); err != nil {
			return nil, err
		}
	}
	// Populate the table before publishing it: once it is visible in the
	// catalog, concurrent readers may scan it, so no unlocked mutation can
	// follow publication. Rows are stamped with epoch 0 — visible to every
	// snapshot — which is sound precisely because nobody can hold a ref to
	// the table before it is published; rollback undoes the whole CREATE.
	tbl := newTable(schema)
	for _, r := range rows {
		if _, _, err := tbl.insertRow(r, 0); err != nil {
			return nil, err
		}
	}
	e.mu.Lock()
	if s.resolveLocked(name) != nil {
		e.mu.Unlock()
		if ct.IfNotExists {
			return &Result{}, nil
		}
		return nil, errf("table %q already exists", name)
	}
	if ct.Temporary {
		s.tempSet(name, tbl)
	} else {
		e.tables[name] = tbl
	}
	s.undo = append(s.undo, undoOp{kind: 'c', table: name, tbl: tbl})
	e.mu.Unlock()
	return &Result{RowsAffected: int64(len(rows))}, nil
}

func (s *Session) execDropTable(dt *sqlparser.DropTable) (*Result, error) {
	name := strings.ToLower(dt.Table)
	e := s.engine
	if _, isTemp := s.tempGet(name); isTemp {
		s.engine.locks.cancelReservations(s, name)
	} else {
		if err := s.lockTable(name, true, s.lockDeadline()); err != nil {
			return nil, err
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := s.tempGet(name); ok {
		// Temporary tables are session-private and non-durable; dropping
		// one is not transactional (it cannot be observed by anyone else).
		s.tempDelete(name)
		return &Result{}, nil
	}
	t, ok := e.tables[name]
	if !ok {
		if dt.IfExists {
			return &Result{}, nil
		}
		return nil, &TableNotFoundError{Table: name}
	}
	delete(e.tables, name)
	s.undo = append(s.undo, undoOp{kind: 'r', table: name, tbl: t})
	return &Result{}, nil
}

func (s *Session) execCreateIndex(ci *sqlparser.CreateIndex) (*Result, error) {
	name := strings.ToLower(ci.Table)
	if err := s.lockTable(name, true, s.lockDeadline()); err != nil {
		return nil, err
	}
	e := s.engine
	e.mu.Lock()
	defer e.mu.Unlock()
	t := s.resolveLocked(name)
	if t == nil {
		return nil, &TableNotFoundError{Table: name}
	}
	var cols []int
	for _, c := range ci.Columns {
		idx := t.schema.ColumnIndex(c)
		if idx < 0 {
			return nil, errf("unknown column %q in index %s", c, ci.Name)
		}
		cols = append(cols, idx)
	}
	ixName := strings.ToLower(ci.Name)
	if err := t.addIndex(ixName, cols, ci.Unique); err != nil {
		return nil, err
	}
	s.undo = append(s.undo, undoOp{kind: 'x', table: name, index: ixName})
	return &Result{}, nil
}

func (s *Session) execDropIndex(di *sqlparser.DropIndex) (*Result, error) {
	name := strings.ToLower(di.Table)
	if err := s.lockTable(name, true, s.lockDeadline()); err != nil {
		return nil, err
	}
	e := s.engine
	e.mu.Lock()
	defer e.mu.Unlock()
	t := s.resolveLocked(name)
	if t == nil {
		return nil, &TableNotFoundError{Table: name}
	}
	ixName := strings.ToLower(di.Name)
	if _, ok := t.indexes[ixName]; !ok {
		return nil, errf("index %q does not exist on %s", di.Name, name)
	}
	t.idxMu.Lock()
	delete(t.indexes, ixName)
	t.idxMu.Unlock()
	// Dropping an index is not undone (index rebuild on rollback is not
	// supported); like MySQL, DDL here is effectively auto-committing.
	return &Result{}, nil
}

// coerce converts v to the column's kind, returning an error when the value
// cannot represent the column type.
func coerce(v sqlval.Value, col *Column) (sqlval.Value, error) {
	if v.IsNull() {
		if col.NotNull && !col.AutoIncrement {
			return v, errf("NULL in NOT NULL column %q", col.Name)
		}
		return v, nil
	}
	switch col.Type {
	case sqlval.KindInt:
		i, err := v.AsInt()
		if err != nil {
			return v, err
		}
		return sqlval.Int(i), nil
	case sqlval.KindFloat:
		f, err := v.AsFloat()
		if err != nil {
			return v, err
		}
		return sqlval.Float(f), nil
	case sqlval.KindString:
		return sqlval.String_(v.AsString()), nil
	case sqlval.KindBool:
		return sqlval.Bool(v.AsBool()), nil
	case sqlval.KindTime:
		if v.K == sqlval.KindTime {
			return v, nil
		}
		t, err := parseTime(v.AsString())
		if err != nil {
			return v, err
		}
		return sqlval.Time(t), nil
	case sqlval.KindBytes:
		if v.K == sqlval.KindBytes {
			return v, nil
		}
		return sqlval.Bytes([]byte(v.AsString())), nil
	}
	return v, nil
}

func (s *Session) execInsert(ins *sqlparser.Insert) (*Result, error) {
	name := strings.ToLower(ins.Table)
	e := s.engine

	// INSERT ... SELECT reads first, from the statement's snapshot.
	var srcRows [][]sqlval.Value
	if ins.Query != nil {
		sel, err := s.execSelect(ins.Query)
		if err != nil {
			return nil, err
		}
		srcRows = sel.Rows
	}

	if err := s.lockTable(name, true, s.lockDeadline()); err != nil {
		return nil, err
	}
	// DML holds the engine lock shared (excluding DDL and undo replay) plus
	// this table's storage latch exclusive, so inserts into disjoint tables
	// run concurrently on one backend.
	e.mu.RLock(s.shard)
	defer e.mu.RUnlock(s.shard)
	t := s.resolveLocked(name)
	if t == nil {
		return nil, &TableNotFoundError{Table: name}
	}
	t.store.Lock()
	defer t.store.Unlock()
	schema := t.schema

	// Map statement columns to schema positions.
	var colIdx []int
	if len(ins.Columns) > 0 {
		for _, c := range ins.Columns {
			idx := schema.ColumnIndex(c)
			if idx < 0 {
				return nil, errf("unknown column %q in INSERT into %s", c, name)
			}
			colIdx = append(colIdx, idx)
		}
	} else {
		for i := range schema.Columns {
			colIdx = append(colIdx, i)
		}
	}

	ev := &env{}
	buildRow := func(vals []sqlval.Value) ([]sqlval.Value, error) {
		if len(vals) != len(colIdx) {
			return nil, errf("INSERT into %s: %d values for %d columns", name, len(vals), len(colIdx))
		}
		row := make([]sqlval.Value, len(schema.Columns))
		set := make([]bool, len(schema.Columns))
		for i, v := range vals {
			row[colIdx[i]] = v
			set[colIdx[i]] = true
		}
		for i := range schema.Columns {
			col := &schema.Columns[i]
			if !set[i] || row[i].IsNull() {
				switch {
				case col.AutoIncrement && (!set[i] || row[i].IsNull()):
					t.autoInc++
					row[i] = sqlval.Int(t.autoInc)
					continue
				case !set[i] && col.Default != nil:
					dv, err := ev.eval(col.Default)
					if err != nil {
						return nil, err
					}
					row[i] = dv
				}
			}
			cv, err := coerce(row[i], col)
			if err != nil {
				return nil, err
			}
			row[i] = cv
			if col.AutoIncrement && row[i].K == sqlval.KindInt && row[i].I > t.autoInc {
				t.autoInc = row[i].I
			}
		}
		return row, nil
	}

	autoIncBefore := t.autoInc
	var inserted int64
	var lastID int64
	insertOne := func(row []sqlval.Value) error {
		id, v, err := t.insertRow(row, s.stamp)
		if err != nil {
			return err
		}
		s.undo = append(s.undo, undoOp{kind: 'i', table: name, rowid: id})
		s.dirty = append(s.dirty, v)
		inserted++
		// LastInsertID reports the auto-increment value when one was assigned.
		for i := range schema.Columns {
			if schema.Columns[i].AutoIncrement {
				lastID, _ = row[i].AsInt()
			}
		}
		return nil
	}

	if ins.Query != nil {
		for _, r := range srcRows {
			row, err := buildRow(r)
			if err != nil {
				return nil, err
			}
			if err := insertOne(row); err != nil {
				return nil, err
			}
		}
	} else {
		for _, exprRow := range ins.Rows {
			vals := make([]sqlval.Value, len(exprRow))
			for i, ex := range exprRow {
				v, err := ev.eval(ex)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			row, err := buildRow(vals)
			if err != nil {
				return nil, err
			}
			if err := insertOne(row); err != nil {
				return nil, err
			}
		}
	}
	if t.autoInc != autoIncBefore {
		s.undo = append(s.undo, undoOp{kind: 'a', table: name, autoInc: autoIncBefore})
	}
	return &Result{RowsAffected: inserted, LastInsertID: lastID}, nil
}

func (s *Session) execUpdate(up *sqlparser.Update) (*Result, error) {
	name := strings.ToLower(up.Table)
	if err := s.lockTable(name, true, s.lockDeadline()); err != nil {
		return nil, err
	}
	e := s.engine
	e.mu.RLock(s.shard)
	defer e.mu.RUnlock(s.shard)
	t := s.resolveLocked(name)
	if t == nil {
		return nil, &TableNotFoundError{Table: name}
	}
	t.store.Lock()
	defer t.store.Unlock()
	schema := t.schema
	cols := t.cols

	var setIdx []int
	for _, a := range up.Set {
		idx := schema.ColumnIndex(a.Column)
		if idx < 0 {
			return nil, errf("unknown column %q in UPDATE %s", a.Column, name)
		}
		setIdx = append(setIdx, idx)
	}

	refs := candidateRefs(e, t, cols, up.Where, up.Access)
	var affected int64
	for _, ref := range refs {
		// Writer view: the chain head is committed or this session's own.
		row := ref.ch.latestRow()
		if row == nil {
			continue
		}
		ev := &env{cols: cols, row: row}
		if up.Where != nil {
			m, err := ev.eval(up.Where)
			if err != nil {
				return nil, err
			}
			if !m.AsBool() {
				continue
			}
		}
		// Copy-on-write: the stored version is immutable once published, so
		// the new image is built on a fresh slice and pushed as a new version.
		// No old-image clone is needed for undo — the previous version stays
		// on the chain and undo simply pops ours.
		newRow := sqlval.CloneRow(row)
		for i, a := range up.Set {
			v, err := ev.eval(a.Value)
			if err != nil {
				return nil, err
			}
			cv, err := coerce(v, &schema.Columns[setIdx[i]])
			if err != nil {
				return nil, err
			}
			newRow[setIdx[i]] = cv
		}
		v, err := t.updateRow(ref.id, newRow, s.stamp)
		if err != nil {
			return nil, err
		}
		s.undo = append(s.undo, undoOp{kind: 'u', table: name, rowid: ref.id})
		s.dirty = append(s.dirty, v)
		affected++
	}
	return &Result{RowsAffected: affected}, nil
}

func (s *Session) execDelete(del *sqlparser.Delete) (*Result, error) {
	name := strings.ToLower(del.Table)
	if err := s.lockTable(name, true, s.lockDeadline()); err != nil {
		return nil, err
	}
	e := s.engine
	e.mu.RLock(s.shard)
	defer e.mu.RUnlock(s.shard)
	t := s.resolveLocked(name)
	if t == nil {
		return nil, &TableNotFoundError{Table: name}
	}
	t.store.Lock()
	defer t.store.Unlock()
	cols := t.cols
	refs := candidateRefs(e, t, cols, del.Where, del.Access)
	var affected int64
	for _, ref := range refs {
		row := ref.ch.latestRow()
		if row == nil {
			continue
		}
		if del.Where != nil {
			ev := &env{cols: cols, row: row}
			m, err := ev.eval(del.Where)
			if err != nil {
				return nil, err
			}
			if !m.AsBool() {
				continue
			}
		}
		// A delete is a tombstone version; the old image stays on the chain
		// for older snapshots and for undo.
		v := t.deleteRow(ref.id, s.stamp)
		if v == nil {
			continue
		}
		s.undo = append(s.undo, undoOp{kind: 'd', table: name, rowid: ref.id})
		s.dirty = append(s.dirty, v)
		affected++
	}
	return &Result{RowsAffected: affected}, nil
}

func parseTime(s string) (time.Time, error) {
	for _, layout := range []string{
		"2006-01-02 15:04:05", "2006-01-02T15:04:05", "2006-01-02",
		"2006-01-02 15:04:05.999999999",
	} {
		if tt, err := time.Parse(layout, s); err == nil {
			return tt, nil
		}
	}
	return time.Time{}, errf("cannot parse %q as timestamp", s)
}
