package sqlengine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cjdbc/internal/sqlval"
)

// --- skiplist structure tests (standalone index, minimal table) ------------

// skipTestTable builds the minimal table an ordIndex needs: idxMu for ref
// copies and a rows map for gcLocked's liveness check.
func skipTestTable() *table {
	return &table{rows: make(map[int64]*rowChain)}
}

func skipKeys(ox *ordIndex, t *table, lo, hi *rangeBound, desc bool) []sqlval.Value {
	var keys []sqlval.Value
	ox.scan(t, lo, hi, desc, func(k sqlval.Value, _ []chainRef) bool {
		keys = append(keys, k)
		return true
	})
	return keys
}

// TestSkiplistOrderAndBounds inserts shuffled keys (including NULL) and
// checks collation order, NULL-first placement, DESC reversal and
// inclusive/exclusive bound handling.
func TestSkiplistOrderAndBounds(t *testing.T) {
	ox := newOrdIndex()
	tbl := skipTestTable()
	rng := rand.New(rand.NewSource(7))
	vals := []int64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	id := int64(0)
	for _, v := range vals {
		ch := &rowChain{}
		tbl.rows[id] = ch
		ox.insert(tbl, sqlval.Int(v), id, ch)
		id++
	}
	chNull := &rowChain{}
	tbl.rows[id] = chNull
	ox.insert(tbl, sqlval.Null, id, chNull)

	asc := skipKeys(ox, tbl, nil, nil, false)
	if len(asc) != 11 || !asc[0].IsNull() {
		t.Fatalf("asc scan: %d keys, first %v (want 11 keys, NULL first)", len(asc), asc[0])
	}
	for i := 1; i < len(asc); i++ {
		if sqlval.Compare(asc[i-1], asc[i]) >= 0 {
			t.Fatalf("asc keys out of order at %d: %v >= %v", i, asc[i-1], asc[i])
		}
	}
	desc := skipKeys(ox, tbl, nil, nil, true)
	if len(desc) != len(asc) {
		t.Fatalf("desc scan: %d keys, want %d", len(desc), len(asc))
	}
	for i := range desc {
		if sqlval.Compare(desc[i], asc[len(asc)-1-i]) != 0 {
			t.Fatalf("desc scan is not the reverse of asc at %d: %v vs %v", i, desc[i], asc[len(asc)-1-i])
		}
	}

	// Bounds: (3, 7] ascending must be 4..7; [3, 7) descending must be 6..3.
	lo := &rangeBound{v: sqlval.Int(3)}
	hi := &rangeBound{v: sqlval.Int(7), incl: true}
	got := skipKeys(ox, tbl, lo, hi, false)
	want := []int64{4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("(3,7] scan: %v", got)
	}
	for i, k := range got {
		if k.I != want[i] {
			t.Fatalf("(3,7] scan: %v", got)
		}
	}
	got = skipKeys(ox, tbl, &rangeBound{v: sqlval.Int(3), incl: true}, &rangeBound{v: sqlval.Int(7)}, true)
	want = []int64{6, 5, 4, 3}
	if len(got) != len(want) {
		t.Fatalf("[3,7) desc scan: %v", got)
	}
	for i, k := range got {
		if k.I != want[i] {
			t.Fatalf("[3,7) desc scan: %v", got)
		}
	}
	// A NULL-excluding lower bound skips the NULL node (SQL comparisons
	// reject NULL rows, so bounded scans must agree).
	got = skipKeys(ox, tbl, &rangeBound{v: sqlval.Int(0), incl: true}, nil, false)
	if len(got) != 10 || got[0].IsNull() {
		t.Fatalf(">=0 scan must exclude NULL: %v", got)
	}

	// collectRange abort: more refs than the limit returns ok=false.
	if _, ok := ox.collectRange(tbl, nil, nil, 3); ok {
		t.Fatal("collectRange over limit must abort")
	}
	if refs, ok := ox.collectRange(tbl, lo, hi, -1); !ok || len(refs) != 4 {
		t.Fatalf("collectRange (3,7] = %d refs, ok=%v", len(refs), ok)
	}
}

// TestSkiplistDuplicateAndRepeatedInsert checks the two ref-dedup rules:
// same id under the same key is dropped, different ids under one key
// accumulate and come back rowid-sorted.
func TestSkiplistDuplicateAndRepeatedInsert(t *testing.T) {
	ox := newOrdIndex()
	tbl := skipTestTable()
	ch := func(id int64) *rowChain {
		c := &rowChain{}
		tbl.rows[id] = c
		return c
	}
	ox.insert(tbl, sqlval.Int(1), 30, ch(30))
	ox.insert(tbl, sqlval.Int(1), 10, ch(10))
	ox.insert(tbl, sqlval.Int(1), 20, ch(20))
	ox.insert(tbl, sqlval.Int(1), 10, tbl.rows[10]) // update back to same key: no dup
	var refs []chainRef
	ox.scan(tbl, nil, nil, false, func(_ sqlval.Value, rs []chainRef) bool {
		refs = rs
		return true
	})
	if len(refs) != 3 || refs[0].id != 10 || refs[1].id != 20 || refs[2].id != 30 {
		t.Fatalf("refs = %+v, want ids 10,20,30", refs)
	}
}

// TestSkiplistGCUnlinksEmptyNodes deletes every row of some keys and runs
// the index sweep: refs to reclaimed chains disappear, emptied nodes
// unlink, and the prev chain and tail are rewired over the survivors.
func TestSkiplistGCUnlinksEmptyNodes(t *testing.T) {
	ox := newOrdIndex()
	tbl := skipTestTable()
	for i := int64(0); i < 20; i++ {
		c := &rowChain{}
		tbl.rows[i] = c
		ox.insert(tbl, sqlval.Int(i%5), i, c) // keys 0..4, 4 rows each
	}
	// Reclaim every row of keys 1 and 3, and one row of key 2.
	for i := int64(0); i < 20; i++ {
		if k := i % 5; k == 1 || k == 3 || (k == 2 && i == 2) {
			delete(tbl.rows, i)
		}
	}
	ox.gcLocked(tbl)

	asc := skipKeys(ox, tbl, nil, nil, false)
	if len(asc) != 3 || asc[0].I != 0 || asc[1].I != 2 || asc[2].I != 4 {
		t.Fatalf("surviving keys = %v, want 0,2,4", asc)
	}
	desc := skipKeys(ox, tbl, nil, nil, true)
	if len(desc) != 3 || desc[0].I != 4 || desc[2].I != 0 {
		t.Fatalf("desc keys after GC = %v, want 4,2,0", desc)
	}
	if tail := ox.tail.Load(); tail == nil || tail.key.I != 4 {
		t.Fatalf("tail after GC = %v", tail)
	}
	total := 0
	ox.scan(tbl, nil, nil, false, func(_ sqlval.Value, rs []chainRef) bool {
		total += len(rs)
		return true
	})
	if total != 11 { // 4 + 3 + 4 surviving refs
		t.Fatalf("surviving refs = %d, want 11", total)
	}
}

// TestSkiplistLevelDeterminism: two indexes fed the same insertion sequence
// draw identical towers (replicas applying one write stream must build
// byte-identical structures).
func TestSkiplistLevelDeterminism(t *testing.T) {
	a, b := newOrdIndex(), newOrdIndex()
	for i := 0; i < 200; i++ {
		la, lb := a.randLevel(), b.randLevel()
		if la != lb {
			t.Fatalf("draw %d: %d vs %d", i, la, lb)
		}
		if la < 1 || la > maxSkipLevel {
			t.Fatalf("draw %d out of range: %d", i, la)
		}
	}
}

// --- planner/executor property tests (SQL level) ---------------------------

// TestOrderedRangeMatchesFullScanRandom is the randomized oracle for the
// ordered-index read paths: random range predicates (open/closed/BETWEEN,
// NULL boundaries), ORDER BY ASC/DESC with LIMIT and OFFSET, and mixed
// hash+range conjuncts must return byte-identical rows (order included)
// with planning on and off, across inserts, key updates and deletes.
func TestOrderedRangeMatchesFullScanRandom(t *testing.T) {
	e := New("ordprop")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE r (id INTEGER PRIMARY KEY, k INTEGER, g INTEGER, s VARCHAR)")
	mustExec(t, s, "CREATE INDEX r_k ON r (k)")
	mustExec(t, s, "CREATE INDEX r_s ON r (s)")
	rng := rand.New(rand.NewSource(1234))
	n := 0
	mutate := func() {
		switch rng.Intn(6) {
		case 0, 1, 2:
			k := fmt.Sprintf("%d", rng.Intn(30)-5)
			if rng.Intn(10) == 0 {
				k = "NULL"
			}
			mustExec(t, s, fmt.Sprintf("INSERT INTO r (id, k, g, s) VALUES (%d, %s, %d, 's%02d')",
				n, k, rng.Intn(8), rng.Intn(20)))
			n++
		case 3:
			mustExec(t, s, fmt.Sprintf("UPDATE r SET k = %d WHERE id = %d", rng.Intn(30)-5, rng.Intn(n+1)))
		case 4:
			mustExec(t, s, fmt.Sprintf("UPDATE r SET g = g + 1 WHERE k >= %d AND k < %d", rng.Intn(20), rng.Intn(20)+5))
		case 5:
			mustExec(t, s, fmt.Sprintf("DELETE FROM r WHERE id = %d", rng.Intn(n+1)))
		}
	}
	ops := []string{"<", "<=", ">", ">=", "="}
	randQuery := func() string {
		a, b := rng.Intn(30)-5, rng.Intn(30)-5
		switch rng.Intn(8) {
		case 0:
			return fmt.Sprintf("SELECT id, k FROM r WHERE k %s %d", ops[rng.Intn(len(ops))], a)
		case 1:
			return fmt.Sprintf("SELECT id, k, g FROM r WHERE k > %d AND k <= %d", a, b)
		case 2:
			return fmt.Sprintf("SELECT id, k FROM r WHERE k BETWEEN %d AND %d AND g < %d", a, b, rng.Intn(8))
		case 3:
			return fmt.Sprintf("SELECT id, k, s FROM r ORDER BY k LIMIT %d", 1+rng.Intn(12))
		case 4:
			return fmt.Sprintf("SELECT id, k, s FROM r ORDER BY k DESC LIMIT %d OFFSET %d", 1+rng.Intn(12), rng.Intn(5))
		case 5:
			return fmt.Sprintf("SELECT id, k FROM r WHERE k >= %d ORDER BY k LIMIT %d", a, 1+rng.Intn(8))
		case 6:
			return fmt.Sprintf("SELECT id, s FROM r WHERE s >= 's%02d' AND s < 's%02d' ORDER BY s LIMIT %d", rng.Intn(20), rng.Intn(20), 1+rng.Intn(6))
		default:
			return fmt.Sprintf("SELECT id, k FROM r WHERE g = %d AND k BETWEEN %d AND %d ORDER BY k", rng.Intn(8), a, b)
		}
	}
	for round := 0; round < 60; round++ {
		for i := 0; i < 8; i++ {
			mutate()
		}
		for i := 0; i < 6; i++ {
			runBothPlans(t, e, s, randQuery())
		}
	}
}

// TestOrderedTopKUnderConcurrentWriters runs the planned==full-scan oracle
// while writer goroutines churn the indexed key. Each comparison executes
// inside one reader transaction, so both plans resolve against the same
// pinned epoch and must agree byte-for-byte no matter what commits around
// them. Run under -race this also exercises the latch-free skiplist reads
// against concurrent inserts and the background of index GC.
func TestOrderedTopKUnderConcurrentWriters(t *testing.T) {
	e := New("ordrace", WithGCThreshold(64))
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE hot (id INTEGER PRIMARY KEY, k INTEGER, pad VARCHAR)")
	mustExec(t, s, "CREATE INDEX hot_k ON hot (k)")
	for i := 0; i < 300; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO hot (id, k, pad) VALUES (%d, %d, 'p')", i, i%50))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			ws := e.NewSession()
			defer ws.Close()
			wr := rand.New(rand.NewSource(seed))
			next := 1000 + seed*100000
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				switch wr.Intn(4) {
				case 0:
					_, err = ws.ExecSQL(fmt.Sprintf("INSERT INTO hot (id, k, pad) VALUES (%d, %d, 'w')", next, wr.Intn(50)))
					next++
				case 1, 2:
					_, err = ws.ExecSQL(fmt.Sprintf("UPDATE hot SET k = %d WHERE id = %d", wr.Intn(50), wr.Int63n(300)))
				case 3:
					_, err = ws.ExecSQL(fmt.Sprintf("DELETE FROM hot WHERE id = %d", 1000+wr.Int63n(next-999)))
				}
				if err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}(int64(w) + 1)
	}

	queries := []string{
		"SELECT id, k FROM hot ORDER BY k LIMIT 10",
		"SELECT id, k FROM hot ORDER BY k DESC LIMIT 10",
		"SELECT id, k FROM hot WHERE k BETWEEN 10 AND 20",
		"SELECT id, k FROM hot WHERE k >= 40 ORDER BY k LIMIT 5",
		"SELECT COUNT(*) FROM hot WHERE k < 25",
	}
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		mustExec(t, s, "BEGIN")
		runBothPlans(t, e, s, queries[i%len(queries)])
		mustExec(t, s, "COMMIT")
	}
	close(stop)
	wg.Wait()
}

// TestUpdateDeleteCandidateSets drives twin engines — one planning through
// the indexes, one forced to full scans — with the identical seeded
// statement stream of range-predicated UPDATEs and DELETEs, asserting every
// statement touches the same number of rows and both end in the same state.
// This is the oracle for candidateRefs on the write paths.
func TestUpdateDeleteCandidateSets(t *testing.T) {
	ep := New("candA")
	ef := New("candB")
	ef.noIndexPlan.Store(true)
	sp, sf := ep.NewSession(), ef.NewSession()
	for _, s := range []*Session{sp, sf} {
		mustExec(t, s, "CREATE TABLE c (id INTEGER PRIMARY KEY, k INTEGER, v INTEGER)")
		mustExec(t, s, "CREATE INDEX c_k ON c (k)")
	}
	rng := rand.New(rand.NewSource(88))
	n := 0
	for i := 0; i < 500; i++ {
		var sql string
		switch rng.Intn(6) {
		case 0, 1:
			sql = fmt.Sprintf("INSERT INTO c (id, k, v) VALUES (%d, %d, %d)", n, rng.Intn(40), rng.Intn(100))
			n++
		case 2:
			sql = fmt.Sprintf("UPDATE c SET v = v + 1 WHERE k BETWEEN %d AND %d", rng.Intn(40), rng.Intn(40))
		case 3:
			sql = fmt.Sprintf("UPDATE c SET k = %d WHERE k > %d AND v < %d", rng.Intn(40), rng.Intn(40), rng.Intn(100))
		case 4:
			sql = fmt.Sprintf("DELETE FROM c WHERE k >= %d AND k < %d AND v > %d", rng.Intn(40), rng.Intn(40), rng.Intn(100))
		case 5:
			sql = fmt.Sprintf("DELETE FROM c WHERE k = %d AND v <= %d", rng.Intn(40), rng.Intn(100))
		}
		rp, err := sp.ExecSQL(sql)
		if err != nil {
			t.Fatalf("planned %q: %v", sql, err)
		}
		rf, err := sf.ExecSQL(sql)
		if err != nil {
			t.Fatalf("fullscan %q: %v", sql, err)
		}
		if rp.RowsAffected != rf.RowsAffected {
			t.Fatalf("%q: planned affected %d, full scan %d", sql, rp.RowsAffected, rf.RowsAffected)
		}
	}
	finalP := mustExec(t, sp, "SELECT id, k, v FROM c ORDER BY id")
	finalF := mustExec(t, sf, "SELECT id, k, v FROM c ORDER BY id")
	if len(finalP.Rows) != len(finalF.Rows) {
		t.Fatalf("final state: %d vs %d rows", len(finalP.Rows), len(finalF.Rows))
	}
	for i := range finalP.Rows {
		if rowKey(finalP.Rows[i]) != rowKey(finalF.Rows[i]) {
			t.Fatalf("final row %d: %v vs %v", i, finalP.Rows[i], finalF.Rows[i])
		}
	}
}

// TestOrderByEqualityElision covers the satellite fix: an ORDER BY key
// pinned by an equality conjunct is trivially satisfied, with or without a
// surviving second key, and must not disturb results.
func TestOrderByEqualityElision(t *testing.T) {
	e := New("eqelide")
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE o (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)")
	mustExec(t, s, "CREATE INDEX o_a ON o (a)")
	for i := 0; i < 40; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO o (id, a, b) VALUES (%d, %d, %d)", i, i%4, i%7))
	}
	for _, q := range []string{
		"SELECT id, a, b FROM o WHERE a = 2 ORDER BY a",
		"SELECT id, a, b FROM o WHERE a = 2 ORDER BY a LIMIT 5",
		"SELECT id, a, b FROM o WHERE a = 2 ORDER BY a, b",
		"SELECT id, a FROM o WHERE a = 1 AND b = 3 ORDER BY a, b LIMIT 4",
		"SELECT id, a, b FROM o WHERE a = 2 ORDER BY b DESC",
	} {
		runBothPlans(t, e, s, q)
	}
	// Sanity: the second query really is a = 2 only, ordered correctly.
	res := mustExec(t, s, "SELECT id, a FROM o WHERE a = 2 ORDER BY a LIMIT 5")
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].I != 2 {
			t.Fatalf("row %v not a=2", r)
		}
	}
}

// TestBackgroundGCReclaims proves WithBackgroundGC moves version reclamation
// off the write path: churning updates past the debt threshold wakes the
// sweeper, which drains chains back toward one live version per row without
// any session calling GC.
func TestBackgroundGCReclaims(t *testing.T) {
	e := New("bggc", WithGCThreshold(32), WithBackgroundGC())
	defer e.Close()
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE g (id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, s, "CREATE INDEX g_v ON g (v)")
	const rows = 16
	for i := 0; i < rows; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO g (id, v) VALUES (%d, 0)", i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for round := 1; ; round++ {
		for i := 0; i < rows; i++ {
			mustExec(t, s, fmt.Sprintf("UPDATE g SET v = %d WHERE id = %d", round, i))
		}
		vs := e.VersionStatsSnapshot()
		if vs.Chains == rows && vs.Versions <= 2*rows {
			break // sweeper kept up: at most the current + one stale version
		}
		if time.Now().After(deadline) {
			t.Fatalf("background GC never caught up: %+v after %d rounds", vs, round)
		}
	}
}
