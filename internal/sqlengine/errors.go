package sqlengine

import (
	"errors"
	"fmt"

	"cjdbc/internal/senterr"
)

// ErrSemantic is the errors.Is sentinel for statement-level failures:
// errors that are a property of the statement and the (replicated) data, so
// every replica fails identically — bad SQL semantics, missing tables or
// columns, constraint violations, lock timeouts, transaction-state misuse.
// The clustering middleware uses it to separate "the statement is wrong"
// from "this backend is broken": semantic errors must never trigger
// failover or disable a backend. Every error the engine constructs carries
// this sentinel; match with errors.Is(err, ErrSemantic) instead of sniffing
// the "engine:" message prefix.
var ErrSemantic = errors.New("engine: semantic statement error")

// ErrKilled is returned by statements (and in-flight lock waits) of a
// session that was killed via Session.Kill. It deliberately does NOT carry
// the ErrSemantic sentinel: a kill is an administrative/failure-path event
// local to one backend, never a property of the statement, so the
// clustering middleware must not treat it like a replica-identical error.
var ErrKilled = errors.New("engine: session killed")

// errf builds an engine error carrying the ErrSemantic sentinel. All engine
// statement errors are constructed through it.
func errf(format string, args ...any) error {
	return senterr.Wrap(ErrSemantic, fmt.Errorf("engine: "+format, args...))
}

// Is marks missing-table errors as semantic.
func (e *TableNotFoundError) Is(target error) bool { return target == ErrSemantic }
