package sqlengine

import (
	"sort"
	"sync"
	"sync/atomic"

	"cjdbc/internal/sqlval"
)

// This file is the engine's MVCC core: epoch-stamped immutable row versions,
// the global commit-epoch clock, per-session snapshot pins and the min-epoch
// garbage collector. Together they give the engine InnoDB-style consistent
// nonblocking reads — the property the paper's read-one-write-all design
// leans on: SELECTs resolve every row against a pinned epoch and never take
// the per-table storage latch, so readers never wait for writers, ever.

// uncommittedBit marks a rowVersion.from value as a writer stamp rather than
// a commit epoch: while a statement or transaction is in flight its versions
// carry uncommittedBit|writerID, visible only to the writing session itself.
// Commit replaces the stamp with the allocated commit epoch.
const uncommittedBit = uint64(1) << 63

// rowVersion is one immutable version of a row. row is the full column
// slice (nil for a delete tombstone) and is never mutated after publication;
// updates push a fresh version instead. from and prev are atomics because
// readers traverse chains with no latch while commit re-stamps from and the
// garbage collector truncates tails.
type rowVersion struct {
	from atomic.Uint64  // commit epoch, or uncommittedBit|writerID
	row  []sqlval.Value // nil = tombstone
	prev atomic.Pointer[rowVersion]
}

// rowChain is the version chain of one rowid, newest first. The chain
// pointer itself is stable for the life of the rowid: order entries and
// index buckets reference chains, so readers resolve visibility without
// touching the rows map.
type rowChain struct {
	head atomic.Pointer[rowVersion]
}

// visibleRow returns the newest version visible to a reader pinned at epoch
// ep with writer stamp stamp: the session's own uncommitted versions, or
// committed versions with epoch <= ep. nil means no visible version (never
// existed at ep, or tombstoned).
func (ch *rowChain) visibleRow(ep, stamp uint64) []sqlval.Value {
	for v := ch.head.Load(); v != nil; v = v.prev.Load() {
		f := v.from.Load()
		if f == stamp || (f&uncommittedBit == 0 && f <= ep) {
			return v.row
		}
	}
	return nil
}

// latestRow returns the chain head's row image — the writer view. Callers
// hold the table's exclusive lock (or have otherwise excluded concurrent
// writers), so the head is either committed or the caller's own version.
func (ch *rowChain) latestRow() []sqlval.Value {
	if v := ch.head.Load(); v != nil {
		return v.row
	}
	return nil
}

// push prepends a new version with the given stamp and returns it.
func (ch *rowChain) push(stamp uint64, row []sqlval.Value) *rowVersion {
	v := &rowVersion{row: row}
	v.from.Store(stamp)
	v.prev.Store(ch.head.Load())
	ch.head.Store(v)
	return v
}

// pop removes the chain head if it carries the given writer stamp (undo of
// an uncommitted insert/update/delete; LIFO matches undo-log order).
func (ch *rowChain) pop(stamp uint64) bool {
	v := ch.head.Load()
	if v == nil || v.from.Load() != stamp {
		return false
	}
	ch.head.Store(v.prev.Load())
	return true
}

// versionCount walks the chain and counts versions (GC accounting, tests).
func (ch *rowChain) versionCount() int {
	n := 0
	for v := ch.head.Load(); v != nil; v = v.prev.Load() {
		n++
	}
	return n
}

// orderEntry pairs a rowid with its chain in the table's scan order.
type orderEntry struct {
	id int64
	ch *rowChain
}

// orderSlab is one atomically published snapshot of a table's scan order.
// entries has fixed capacity; entries[:n] are valid. The single writer (the
// table latch holder) appends in place and publishes by storing n, so the
// common insert costs no allocation; growth and GC compaction allocate a
// fresh slab and republish the pointer, leaving concurrent readers iterating
// their own consistent snapshot.
type orderSlab struct {
	n       atomic.Int64
	entries []orderEntry
}

// chainRef is one index-bucket entry: a rowid and its chain. Index entries
// are insert-only — updates and deletes leave stale refs behind so readers
// pinned at older epochs can still find old versions through them; lookups
// always re-evaluate the full predicate, which makes stale refs harmless.
type chainRef struct {
	id int64
	ch *rowChain
}

// epochClock is the engine's global commit-epoch clock. published is the
// newest epoch whose commit — and every earlier commit — has finished
// stamping its versions; readers pin it. Allocation and completion may
// interleave across disjoint-table committers, so completion advances
// published only across a gap-free prefix: a reader must never pin an epoch
// whose versions are not fully stamped yet.
type epochClock struct {
	published atomic.Uint64
	mu        sync.Mutex
	last      uint64          // newest allocated epoch
	done      map[uint64]bool // completed but not yet published (holes ahead)
}

// begin allocates the next commit epoch.
func (c *epochClock) begin() uint64 {
	c.mu.Lock()
	c.last++
	f := c.last
	c.mu.Unlock()
	return f
}

// complete marks epoch f fully stamped and advances published across the
// contiguous completed prefix.
func (c *epochClock) complete(f uint64) {
	c.mu.Lock()
	if c.done == nil {
		c.done = make(map[uint64]bool)
	}
	c.done[f] = true
	p := c.published.Load()
	for c.done[p+1] {
		delete(c.done, p+1)
		p++
	}
	c.published.Store(p)
	c.mu.Unlock()
}

// pinShard is one shard of the engine's session registry, padded so that
// session open/close on different shards never contend on a cache line. The
// GC watermark walks every shard; sessions register at NewSession and
// deregister at Close.
type pinShard struct {
	mu sync.Mutex
	m  map[*Session]struct{}
	_  [88]byte
}

// snapshotEpoch returns the session's pinned snapshot epoch, pinning the
// clock's current published epoch on first use (statement start in
// auto-commit, BEGIN in a transaction). The store-then-recheck loop closes
// the race with the garbage collector: once the second load confirms
// published has not moved past the pin, any later watermark must observe
// either the pin or a published value <= it.
func (s *Session) snapshotEpoch() uint64 {
	if p := s.pin.Load(); p != 0 {
		return p - 1
	}
	c := &s.engine.clock
	for {
		ep := c.published.Load()
		s.pin.Store(ep + 1) // pins store epoch+1 so 0 means "unpinned"
		if c.published.Load() == ep {
			return ep
		}
	}
}

// unpin releases the session's snapshot pin (statement end in auto-commit,
// COMMIT/ROLLBACK in a transaction).
func (s *Session) unpin() { s.pin.Store(0) }

// readView is the visibility context of one statement: a pinned snapshot
// epoch plus the session's own-writes stamp. (The pre-MVCC latched read
// mode it used to carry was retired in PR 8: the snapshot==latched oracle
// was re-proven as a planned==full-scan snapshot oracle over the ordered-
// index paths, so the latched branch had no remaining caller.)
type readView struct {
	ep    uint64
	stamp uint64
}

// resolve returns the row the view sees in ch, or nil.
func (rv readView) resolve(ch *rowChain) []sqlval.Value {
	return ch.visibleRow(rv.ep, rv.stamp)
}

// commitVersions stamps every version the session's current work created
// with a freshly allocated commit epoch and publishes it. It runs before
// lock release, so by the time the next ticket holder (or any later
// snapshot) proceeds, the data it must observe is committed — the ordering
// the cluster's replica-determinism argument relies on.
func (s *Session) commitVersions() {
	if len(s.dirty) == 0 {
		return
	}
	c := &s.engine.clock
	f := c.begin()
	for _, v := range s.dirty {
		v.from.Store(f)
	}
	c.complete(f)
	s.dirty = nil
}

// watermark returns the newest epoch no live snapshot can be pinned before:
// min(published, every session pin). Superseded versions at or below it are
// unreachable and may be reclaimed.
func (e *Engine) watermark() uint64 {
	w := e.clock.published.Load()
	for i := range e.pins {
		sh := &e.pins[i]
		sh.mu.Lock()
		for s := range sh.m {
			if p := s.pin.Load(); p != 0 && p-1 < w {
				w = p - 1
			}
		}
		sh.mu.Unlock()
	}
	return w
}

// registerSession adds s to the pin registry.
func (e *Engine) registerSession(s *Session) {
	sh := &e.pins[s.shard&e.mu.mask]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[*Session]struct{})
	}
	sh.m[s] = struct{}{}
	sh.mu.Unlock()
}

// deregisterSession removes s from the pin registry.
func (e *Engine) deregisterSession(s *Session) {
	sh := &e.pins[s.shard&e.mu.mask]
	sh.mu.Lock()
	delete(sh.m, s)
	sh.mu.Unlock()
}

// noteGarbage accrues superseded-version debt; once it crosses the engine's
// GC threshold the debt is handed to the incremental sweeper — a bounded
// per-table step inline, or a kick to the background goroutine when the
// engine was built WithBackgroundGC — so a writer's statement end never pays
// for a whole-catalog sweep.
func (e *Engine) noteGarbage(n int) {
	if n <= 0 {
		return
	}
	if e.gcDebt.Add(int64(n)) >= e.gcEvery {
		e.gcDebt.Store(0)
		if e.gcKick != nil {
			select {
			case e.gcKick <- struct{}{}:
			default: // a sweep is already pending; debt folds into it
			}
			return
		}
		e.gcStep()
	}
}

// gcChainBatch bounds how many chains one incremental GC step touches.
// Tables at or below the batch get the full sweep (truncation, chain
// removal, slab compaction, index pruning) in one step — which keeps the
// small-table reclamation tests exact — while larger tables amortize
// truncation across steps and pay the compaction pass only once per lap.
const gcChainBatch = 4096

// gcStep runs one bounded increment of the garbage collector: it picks the
// next table in round-robin order that has reclaimable debt and sweeps at
// most gcChainBatch of its chains, resuming at the table's cursor. Steps are
// serialized by gcBusy; a trigger that finds a step in flight simply drops
// its turn (the running step is already draining the same debt).
func (e *Engine) gcStep() {
	if !e.gcBusy.CompareAndSwap(false, true) {
		return
	}
	defer e.gcBusy.Store(false)
	w := e.watermark()
	sh := e.rshard()
	e.mu.RLock(sh)
	names := make([]string, 0, len(e.tables))
	for name := range e.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	tables := make([]*table, len(names))
	for i, name := range names {
		tables[i] = e.tables[name]
	}
	e.mu.RUnlock(sh)
	// One full rotation at most: sweep the first table with pending garbage
	// or an unfinished incremental lap, starting after the last table swept.
	for range tables {
		t := tables[e.gcNext%len(tables)]
		e.gcNext++
		t.store.Lock()
		if t.garbage == 0 && t.gcCursor == 0 {
			t.store.Unlock()
			continue
		}
		t.gcStepLocked(w, gcChainBatch)
		t.store.Unlock()
		return
	}
}

// GC reclaims row versions no pinned snapshot can reach across the whole
// catalog: for every chain it drops versions strictly older than the newest
// committed version at or below the watermark, removes chains whose
// surviving state is a committed tombstone (or an undone insert), and prunes
// index refs — hash buckets, ordered-view nodes — and order entries pointing
// at removed chains. It takes each table's latch briefly — never the
// engine-exclusive lock — so it runs concurrently with reads and with writes
// to other tables. Session close and tests use it for exact reclamation; the
// write path goes through gcStep instead.
func (e *Engine) GC() {
	e.gcDebt.Store(0)
	w := e.watermark()
	sh := e.rshard()
	e.mu.RLock(sh)
	tables := make([]*table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	e.mu.RUnlock(sh)
	for _, t := range tables {
		t.store.Lock()
		t.gcCursor = 0
		t.gcLocked(w)
		t.store.Unlock()
	}
}

// VersionStats reports chain/version totals across the catalog, for leak
// checks and monitoring.
type VersionStats struct {
	Chains   int
	Versions int
}

// VersionStatsSnapshot counts chains and versions in every catalog table.
func (e *Engine) VersionStatsSnapshot() VersionStats {
	sh := e.rshard()
	e.mu.RLock(sh)
	tables := make([]*table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	e.mu.RUnlock(sh)
	var vs VersionStats
	for _, t := range tables {
		t.store.Lock()
		for _, ch := range t.rows {
			vs.Chains++
			vs.Versions += ch.versionCount()
		}
		t.store.Unlock()
	}
	return vs
}

// truncateChain drops the versions of one chain that no snapshot pinned at
// or after watermark w can reach: everything strictly older than the newest
// version committed at or below w. It reports whether the chain has
// collapsed to nothing a future snapshot could see — a committed tombstone
// (collapsed=true with a surviving head) or an undone insert (empty=true) —
// so callers can retire the rowid.
func truncateChain(ch *rowChain, w uint64) (empty, collapsed bool) {
	head := ch.head.Load()
	if head == nil {
		return true, false
	}
	var keep *rowVersion
	for v := head; v != nil; v = v.prev.Load() {
		f := v.from.Load()
		if f&uncommittedBit == 0 && f <= w {
			keep = v
			break
		}
	}
	if keep == nil {
		return false, false
	}
	keep.prev.Store(nil)
	return false, keep == head && keep.row == nil
}

// gcStepLocked runs one bounded GC increment on this table. Small tables
// (at or below batch chains) get the exact full sweep. Larger tables pay
// truncation — the per-chain O(versions) part, which is the bulk of GC work
// under update churn — over successive batches tracked by gcCursor, and run
// the full sweep (which also removes dead chains, compacts the order slab
// and prunes indexes) only on the step that finishes a lap. Caller holds the
// table latch exclusively.
func (t *table) gcStepLocked(w uint64, batch int) {
	slab := t.order.Load()
	n := int(slab.n.Load())
	if n <= batch {
		t.gcCursor = 0
		t.gcLocked(w)
		return
	}
	end := t.gcCursor + batch
	if end >= n {
		end = n
	}
	for i := t.gcCursor; i < end; i++ {
		truncateChain(slab.entries[i].ch, w)
	}
	if end >= n {
		// Lap complete: the full sweep retires dead chains and re-zeroes the
		// garbage counter; chains truncated above are cheap to revisit.
		t.gcCursor = 0
		t.gcLocked(w)
		return
	}
	t.gcCursor = end
}

// gcLocked reclaims unreachable versions of one table. Caller holds the
// table latch exclusively; index buckets are swapped wholesale under idxMu
// so latch-free readers always see a complete bucket.
func (t *table) gcLocked(w uint64) {
	t.garbage = 0
	removed := false
	for id, ch := range t.rows {
		empty, collapsed := truncateChain(ch, w)
		if empty || collapsed {
			// An undone insert that never committed anything, or a chain
			// collapsed to a committed tombstone every live snapshot agrees
			// on: the rowid is gone.
			delete(t.rows, id)
			removed = true
		}
	}
	if !removed {
		return
	}
	// Compact the scan order into a fresh slab (readers keep iterating the
	// slab they loaded) and prune index refs to removed chains.
	slab := t.order.Load()
	n := int(slab.n.Load())
	live := make([]orderEntry, 0, len(t.rows))
	for i := 0; i < n; i++ {
		en := slab.entries[i]
		if _, ok := t.rows[en.id]; ok {
			live = append(live, en)
		}
	}
	ns := &orderSlab{entries: live[:cap(live)]}
	ns.n.Store(int64(len(live)))
	t.order.Store(ns)

	for _, ix := range t.indexes {
		type bucketEdit struct {
			key  string
			refs []chainRef // nil = delete the bucket
		}
		var edits []bucketEdit
		for key, bkt := range ix.m {
			dirty := false
			kept := bkt.refs[:0:0]
			for _, ref := range bkt.refs {
				if _, ok := t.rows[ref.id]; ok {
					kept = append(kept, ref)
				} else {
					dirty = true
				}
			}
			if dirty {
				edits = append(edits, bucketEdit{key: key, refs: kept})
			}
		}
		if len(edits) == 0 {
			continue
		}
		t.idxMu.Lock()
		for _, ed := range edits {
			if len(ed.refs) == 0 {
				delete(ix.m, ed.key)
			} else {
				ix.m[ed.key] = &idBucket{refs: ed.refs}
			}
		}
		t.idxMu.Unlock()
	}
	for _, ix := range t.indexes {
		if ix.ord != nil {
			ix.ord.gcLocked(t)
		}
	}
}
