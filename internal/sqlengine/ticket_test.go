package sqlengine

import (
	"sync/atomic"
	"testing"
	"time"
)

func ticketTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New("tickets", WithLockTimeout(5*time.Second))
	s := e.NewSession()
	if _, err := s.ExecSQL("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecSQL("INSERT INTO t (id, v) VALUES (1, 0)"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	return e
}

// TestTicketGrantNotifies: a ticket queued behind a transaction's exclusive
// lock reports its grant exactly when the transaction ends, not before —
// the signal the backend's worker pool parks on.
func TestTicketGrantNotifies(t *testing.T) {
	e := ticketTestEngine(t)
	holder := e.NewSession()
	defer holder.Close()
	if _, err := holder.ExecSQL("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := holder.ExecSQL("UPDATE t SET v = 99 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}

	var granted atomic.Bool
	w := e.NewSession()
	defer w.Close()
	w.ReserveWriteLockNotify("t", func() { granted.Store(true) })
	time.Sleep(20 * time.Millisecond)
	if granted.Load() {
		t.Fatal("ticket granted while the transaction held the lock")
	}
	if _, err := holder.ExecSQL("COMMIT"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !granted.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !granted.Load() {
		t.Fatal("ticket grant never notified after the lock released")
	}
	// The granted ticket is consumed by the write without further waiting.
	if _, err := w.ExecSQL("UPDATE t SET v = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
}

// TestTicketGrantNotifiesImmediatelyWhenFree: an uncontended reservation
// reports its grant synchronously.
func TestTicketGrantNotifiesImmediatelyWhenFree(t *testing.T) {
	e := ticketTestEngine(t)
	var granted atomic.Bool
	s := e.NewSession()
	defer s.Close()
	s.ReserveWriteLockNotify("t", func() { granted.Store(true) })
	if !granted.Load() {
		t.Fatal("uncontended ticket not granted synchronously")
	}
}

// TestDroppedTicketNotifies: closing a session with an ungranted queued
// ticket still fires the notification, so a parked owner is never
// stranded.
func TestDroppedTicketNotifies(t *testing.T) {
	e := ticketTestEngine(t)
	holder := e.NewSession()
	defer holder.Close()
	if _, err := holder.ExecSQL("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := holder.ExecSQL("UPDATE t SET v = 5 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	var notified atomic.Bool
	w := e.NewSession()
	w.ReserveWriteLockNotify("t", func() { notified.Store(true) })
	if notified.Load() {
		t.Fatal("queued ticket reported granted")
	}
	w.Close() // drops the unconsumed ticket
	if !notified.Load() {
		t.Fatal("dropped ticket never notified")
	}
	if _, err := holder.ExecSQL("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
}

// TestExecutionTimeAcquisitionJoinsTicketQueue: an exclusive acquisition
// with no enqueue-time reservation issues its ticket at the tail of the
// same FIFO, so it cannot overtake an earlier-issued ticket even while that
// ticket's owner has not executed yet.
func TestExecutionTimeAcquisitionJoinsTicketQueue(t *testing.T) {
	e := ticketTestEngine(t)

	// first holds an enqueue-time ticket (granted: table is free).
	first := e.NewSession()
	defer first.Close()
	first.ReserveWriteLock("t")

	// second writes without a reservation: its execution-time ticket joins
	// the queue behind first's granted ticket and must wait.
	done := make(chan error, 1)
	second := e.NewSession()
	defer second.Close()
	go func() {
		_, err := second.ExecSQL("UPDATE t SET v = v * 10 WHERE id = 1")
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("execution-time acquisition overtook a granted ticket (err=%v)", err)
	case <-time.After(30 * time.Millisecond):
	}

	// first consumes its ticket; its write applies, then second's.
	if _, err := first.ExecSQL("UPDATE t SET v = v + 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	r := e.NewSession()
	defer r.Close()
	res, err := r.ExecSQL("SELECT v FROM t WHERE id = 1")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("read back: %v %v", res, err)
	}
	if got, _ := res.Rows[0][0].AsInt(); got != 10 {
		t.Fatalf("final v = %d, want 10 ((0+1)*10: ticket order)", got)
	}
}
