package sqlengine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cjdbc/internal/sqlval"
)

// Errors reported by the engine. All carry the ErrSemantic sentinel
// (errors.Is-able): they fail identically on every replica, so the
// clustering middleware never treats them as backend faults.
var (
	// ErrLockTimeout is returned when a statement cannot acquire its table
	// locks within the engine's lock timeout; the paper's backends would
	// report a deadlock or lock-wait timeout the same way.
	ErrLockTimeout = errf("lock wait timeout (possible deadlock)")
	// ErrNoTransaction is returned by COMMIT/ROLLBACK outside a transaction.
	ErrNoTransaction = errf("no transaction in progress")
	// ErrTxInProgress is returned by BEGIN inside a transaction.
	ErrTxInProgress = errf("transaction already in progress")
	// ErrClosed is returned when the engine has been shut down.
	ErrClosed = errf("closed")
)

// TableNotFoundError reports a reference to a missing table.
type TableNotFoundError struct{ Table string }

// Error implements the error interface.
func (e *TableNotFoundError) Error() string {
	return fmt.Sprintf("engine: table %q does not exist", e.Table)
}

// Engine is one database backend instance. It is safe for concurrent use by
// multiple sessions.
//
// Concurrency model: mu is a sharded read/write lock over the catalog;
// each table additionally carries its own storage latch (table.store).
// Reads (SELECT and the metadata accessors) hold one mu shard shared and
// nothing else: they resolve rows through MVCC version chains against a
// snapshot epoch pinned at statement (auto-commit) or transaction start, so
// a reader never waits for an in-flight write. DML holds one mu shard
// shared plus its target table's latch exclusive, so writes to disjoint
// tables execute concurrently on one backend while writes to the same
// table are serialized by the lock manager's ticket FIFO. Commit stamps the
// transaction's versions with a fresh epoch from the global clock before
// releasing its locks. Undo replay pops uncommitted versions under the
// table latch; only DDL (and undo of DDL) holds every mu shard exclusively
// and serializes against everything. Stats counters are sharded atomics so
// the read path never takes the exclusive lock and sessions do not contend
// on one counter.
type Engine struct {
	name string

	mu     brwMutex // guards catalog and all table storage
	tables map[string]*table
	closed atomic.Bool

	locks       *lockManager
	lockTimeout time.Duration

	// clock is the global commit-epoch clock; writerSeq hands each session
	// a unique uncommitted-version stamp; pins registers sessions for the
	// GC watermark; gcDebt accrues superseded versions until an incremental
	// sweep step (gcBusy serializes steps, gcNext round-robins tables).
	// gcKick/gcStop/gcWG exist only WithBackgroundGC: triggers then kick the
	// engine-owned sweeper goroutine instead of sweeping inline, and Close
	// drains it.
	clock     epochClock
	writerSeq atomic.Uint64
	pins      []pinShard
	gcDebt    atomic.Int64
	gcEvery   int64
	gcBusy    atomic.Bool
	gcNext    int // next round-robin table; touched only while gcBusy is held
	gcKick    chan struct{}
	gcStop    chan struct{}
	gcWG      sync.WaitGroup

	// noIndexPlan forces full scans in the access planner and disables
	// ordered-index ORDER BY elision. Tests toggle it (atomically, under
	// concurrent load) to prove index-planned execution equivalent to
	// scanning.
	noIndexPlan atomic.Bool

	sessionSeq atomic.Uint32 // round-robins sessions over lock/stat shards
	stats      []statShard
}

// Stats counts engine work, exported for monitoring.
type Stats struct {
	Statements   int64
	Reads        int64
	Writes       int64
	Transactions int64
	Aborts       int64
}

// Option configures an Engine.
type Option func(*Engine)

// WithLockTimeout sets how long a statement waits for table locks before
// failing with ErrLockTimeout. Deadlocks resolve through this timeout.
func WithLockTimeout(d time.Duration) Option {
	return func(e *Engine) { e.lockTimeout = d }
}

// WithGCThreshold sets how many superseded row versions may accrue before an
// incremental garbage-collection step runs (folded into statement end and
// session close). Tests lower it to exercise reclamation.
func WithGCThreshold(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.gcEvery = int64(n)
		}
	}
}

// WithBackgroundGC moves garbage-collection steps off the write path onto an
// engine-owned goroutine: crossing the debt threshold kicks the sweeper
// instead of sweeping inline, so a writer's statement end never carries even
// one bounded GC batch. The goroutine is drained by Close.
func WithBackgroundGC() Option {
	return func(e *Engine) {
		e.gcKick = make(chan struct{}, 1)
		e.gcStop = make(chan struct{})
	}
}

// New creates an empty database engine with the given name.
func New(name string, opts ...Option) *Engine {
	e := &Engine{
		name:        name,
		mu:          newBRWMutex(),
		tables:      make(map[string]*table),
		lockTimeout: 2 * time.Second,
		gcEvery:     16384,
	}
	e.stats = make([]statShard, len(e.mu.shards))
	e.pins = make([]pinShard, len(e.mu.shards))
	e.locks = newLockManager()
	for _, o := range opts {
		o(e)
	}
	if e.gcKick != nil {
		e.gcWG.Add(1)
		go func() {
			defer e.gcWG.Done()
			for {
				select {
				case <-e.gcStop:
					return
				case <-e.gcKick:
					e.gcStep()
				}
			}
		}()
	}
	return e
}

// Name returns the engine's name.
func (e *Engine) Name() string { return e.name }

// rshard picks a lock shard for engine-level (sessionless) readers like the
// metadata accessors, rotating so concurrent calls spread over shards
// instead of piling onto one reader count.
func (e *Engine) rshard() uint32 { return e.sessionSeq.Add(1) }

// StatsSnapshot returns a copy of the engine counters.
func (e *Engine) StatsSnapshot() Stats {
	var out Stats
	for i := range e.stats {
		sh := &e.stats[i]
		out.Statements += sh.statements.Load()
		out.Reads += sh.reads.Load()
		out.Writes += sh.writes.Load()
		out.Transactions += sh.transactions.Load()
		out.Aborts += sh.aborts.Load()
	}
	return out
}

// Close shuts the engine down; subsequent sessions fail. A background GC
// sweeper, if one was started, is stopped and drained — Close only returns
// once no engine-owned goroutine can touch the tables again.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	if e.gcStop != nil {
		close(e.gcStop)
		e.gcWG.Wait()
	}
}

// TableNames returns the sorted names of the catalog's tables.
func (e *Engine) TableNames() []string {
	sh := e.rshard()
	e.mu.RLock(sh)
	defer e.mu.RUnlock(sh)
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TableSchema returns a copy of the named table's schema, for metadata
// gathering (the JDBC DatabaseMetaData of the paper).
func (e *Engine) TableSchema(name string) (*Schema, error) {
	sh := e.rshard()
	e.mu.RLock(sh)
	defer e.mu.RUnlock(sh)
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return nil, &TableNotFoundError{Table: name}
	}
	cp := *t.schema
	cp.Columns = append([]Column(nil), t.schema.Columns...)
	return &cp, nil
}

// RowCount returns the number of live rows in a table, for tests and dumps.
func (e *Engine) RowCount(name string) (int, error) {
	sh := e.rshard()
	e.mu.RLock(sh)
	defer e.mu.RUnlock(sh)
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return 0, &TableNotFoundError{Table: name}
	}
	// Latch-free snapshot count at the newest published epoch.
	rv := readView{ep: e.clock.published.Load()}
	n := 0
	t.scanSnap(rv, func([]sqlval.Value) bool { n++; return true })
	return n, nil
}

// SnapshotTable returns the schema and all rows of a table in insertion
// order. The recovery dump machinery uses it; rows are deep copies.
func (e *Engine) SnapshotTable(name string) (*Schema, [][]sqlval.Value, error) {
	sh := e.rshard()
	e.mu.RLock(sh)
	defer e.mu.RUnlock(sh)
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return nil, nil, &TableNotFoundError{Table: name}
	}
	cp := *t.schema
	cp.Columns = append([]Column(nil), t.schema.Columns...)
	// Latch-free snapshot scan at the newest published epoch: the dump is a
	// consistent committed view even while writers are mid-statement.
	rv := readView{ep: e.clock.published.Load()}
	var rows [][]sqlval.Value
	t.scanSnap(rv, func(row []sqlval.Value) bool {
		rows = append(rows, sqlval.CloneRow(row))
		return true
	})
	return &cp, rows, nil
}

// Indexes returns the explicitly created index names of a table, sorted.
func (e *Engine) Indexes(name string) ([]string, error) {
	sh := e.rshard()
	e.mu.RLock(sh)
	defer e.mu.RUnlock(sh)
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return nil, &TableNotFoundError{Table: name}
	}
	var out []string
	for n := range t.indexes {
		if n != "__pk" {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out, nil
}

// PendingTickets returns the number of queued (ungranted) lock tickets
// across all tables. A quiesced engine — no statement in flight, every
// session reset or closed — must report zero: a nonzero count at quiesce
// means a ticket FIFO head is stranded behind a session that will never
// release it, the failure mode the crash-consistent disable path exists to
// prevent. The chaos harness asserts on it.
func (e *Engine) PendingTickets() int {
	e.locks.mu.Lock()
	defer e.locks.mu.Unlock()
	n := 0
	for _, l := range e.locks.locks {
		n += len(l.queue)
	}
	return n
}

// HeldLocks returns the number of granted table locks (shared holders plus
// exclusive holders) currently outstanding. Like PendingTickets it must be
// zero at quiesce; a leftover holder is a leaked session.
func (e *Engine) HeldLocks() int {
	e.locks.mu.Lock()
	defer e.locks.mu.Unlock()
	n := 0
	for _, l := range e.locks.locks {
		n += len(l.readers)
		if l.writer != nil {
			n++
		}
	}
	return n
}

// lockManager grants table-granularity shared/exclusive locks with
// timeout-based deadlock resolution (strict two-phase locking: locks are
// held until commit or rollback). Every exclusive acquisition flows through
// a per-table FIFO of reservation tickets: the clustering middleware issues
// a ticket at enqueue time (in cluster submission order) for transactional
// and auto-commit writes alike, and a standalone engine user's exclusive
// acquisition issues its ticket at execution time, at the tail of the same
// queue. Tickets are granted strictly in issue order, which makes the
// conflict-resolution order on every replica follow the cluster's write
// submission order — the single ordering authority §2.4.1's total write
// order needs. A ticket may carry a grant callback, so a scheduler can park
// the work bound to the ticket until the engine grants it instead of
// blocking a thread on the wait.
type lockManager struct {
	mu    sync.Mutex
	locks map[string]*tableLock
}

// lockRequest is one queued lock ticket.
type lockRequest struct {
	s         *Session
	exclusive bool
	ready     chan struct{} // closed when granted
	// granted, when set, is invoked (outside the lock-manager mutex) exactly
	// once: when the ticket is granted, or when it is dropped unconsumed so
	// a parked owner is never stranded waiting for a grant that cannot come.
	granted func()
}

type tableLock struct {
	readers map[*Session]int
	writer  *Session
	queue   []*lockRequest
}

func newLockManager() *lockManager {
	return &lockManager{locks: make(map[string]*tableLock)}
}

func (lm *lockManager) get(tbl string) *tableLock {
	l, ok := lm.locks[tbl]
	if !ok {
		l = &tableLock{readers: make(map[*Session]int)}
		lm.locks[tbl] = l
	}
	return l
}

// grantableLocked reports whether the request is compatible with current
// holders. Re-entrant grants (the session already holds the lock) pass.
func (l *tableLock) grantableLocked(s *Session, exclusive bool) bool {
	if exclusive {
		for r := range l.readers {
			if r != s {
				return false
			}
		}
		return l.writer == nil || l.writer == s
	}
	return l.writer == nil || l.writer == s
}

func (l *tableLock) grantLocked(s *Session, tbl string, exclusive bool) {
	if exclusive {
		l.writer = s
	} else {
		l.readers[s]++
	}
	s.held[tbl] = true
	s.lockState.Store(true)
}

// pumpLocked grants queued requests in FIFO order while the head is
// compatible; consecutive shared requests batch. Grant callbacks are
// collected into fire, to be invoked by the caller after releasing the
// lock-manager mutex.
func (l *tableLock) pumpLocked(tbl string, fire *[]func()) {
	for len(l.queue) > 0 {
		head := l.queue[0]
		if !l.grantableLocked(head.s, head.exclusive) {
			return
		}
		l.grantLocked(head.s, tbl, head.exclusive)
		close(head.ready)
		if head.granted != nil {
			*fire = append(*fire, head.granted)
		}
		l.queue = l.queue[1:]
	}
}

// fireAll invokes collected grant callbacks; callers run it after unlocking
// the lock-manager mutex.
func fireAll(fire []func()) {
	for _, f := range fire {
		f()
	}
}

// reserve appends an exclusive lock ticket for s to the table's FIFO queue
// without blocking, granting immediately when possible. The cluster's
// scheduler calls this at dispatch time, in cluster submission order, so
// every replica queues conflicting writes — transactional and auto-commit —
// identically and grants them in the same order; without this, two
// conflicting writes can take the same lock in opposite orders on two
// replicas and diverge or deadlock the cluster (§2.4.1's "updates are sent
// to all backends in the same order"). granted, when non-nil, is notified
// once the ticket is granted (possibly synchronously, before reserve
// returns) or dropped.
func (lm *lockManager) reserve(s *Session, tbl string, granted func()) {
	var fire []func()
	lm.mu.Lock()
	l := lm.get(tbl)
	req := &lockRequest{s: s, exclusive: true, ready: make(chan struct{}), granted: granted}
	// Immediate grant when compatible and either nothing is queued or the
	// session already holds the lock (re-entrant requests may jump the
	// queue: the holder cannot wait behind requests blocked on it).
	if l.grantableLocked(s, true) && (len(l.queue) == 0 || l.writer == s || l.readers[s] > 0) {
		l.grantLocked(s, tbl, true)
		close(req.ready)
		if granted != nil {
			fire = append(fire, granted)
		}
	} else {
		l.queue = append(l.queue, req)
	}
	s.reserved[tbl] = append(s.reserved[tbl], req)
	s.lockState.Store(true)
	lm.mu.Unlock()
	fireAll(fire)
}

// takeReservation pops the oldest unconsumed reservation of s on tbl.
func (lm *lockManager) takeReservation(s *Session, tbl string) *lockRequest {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	list := s.reserved[tbl]
	if len(list) == 0 {
		return nil
	}
	req := list[0]
	if len(list) == 1 {
		delete(s.reserved, tbl)
	} else {
		s.reserved[tbl] = list[1:]
	}
	return req
}

// cancelReservations drops every unconsumed reservation of s on tbl (used
// for temporary tables, which are session-private and never lock).
func (lm *lockManager) cancelReservations(s *Session, tbl string) {
	var fire []func()
	lm.mu.Lock()
	lm.dropReservationsLocked(s, tbl, &fire)
	lm.mu.Unlock()
	fireAll(fire)
}

func (lm *lockManager) dropReservationsLocked(s *Session, tbl string, fire *[]func()) {
	list := s.reserved[tbl]
	if len(list) == 0 {
		return
	}
	delete(s.reserved, tbl)
	l := lm.locks[tbl]
	if l == nil {
		return
	}
	for _, req := range list {
		select {
		case <-req.ready:
			// Already granted: the lock itself is released via releaseAll.
			continue
		default:
		}
		for i, q := range l.queue {
			if q == req {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				break
			}
		}
		if req.granted != nil {
			// Dropped unconsumed: notify so a parked owner is not stranded.
			*fire = append(*fire, req.granted)
		}
	}
	l.pumpLocked(tbl, fire)
}

// waitReservation blocks on a ticket until granted, the deadline, or the
// session being killed (a killed session must not sit in a lock wait: the
// disable path needs its worker back to run the teardown rollback).
func (lm *lockManager) waitReservation(req *lockRequest, tbl string, deadline time.Time) error {
	select {
	case <-req.ready:
		return nil
	default:
	}
	failErr := ErrLockTimeout
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case <-req.ready:
		return nil
	case <-timer.C:
	case <-req.s.killCh:
		failErr = ErrKilled
	}
	var fire []func()
	lm.mu.Lock()
	select {
	case <-req.ready:
		lm.mu.Unlock()
		return nil
	default:
	}
	if l := lm.locks[tbl]; l != nil {
		for i, q := range l.queue {
			if q == req {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				break
			}
		}
		l.pumpLocked(tbl, &fire)
	}
	lm.mu.Unlock()
	fireAll(fire)
	return failErr
}

// issueNow issues an exclusive ticket at the tail of the table's queue for
// immediate consumption — the execution-time form of reserve, used by
// statements that carry no enqueue-time ticket (standalone engine use).
// Together with reserve it makes the ticket FIFO the single path every
// exclusive table-lock grant flows through.
func (lm *lockManager) issueNow(s *Session, tbl string) *lockRequest {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	l := lm.get(tbl)
	req := &lockRequest{s: s, exclusive: true, ready: make(chan struct{})}
	// Grant immediately when compatible and nobody is queued ahead
	// (re-entrant grants may jump the queue: the holder cannot wait behind
	// requests that are blocked on it).
	if (len(l.queue) == 0 || s.held[tbl]) && l.grantableLocked(s, true) {
		l.grantLocked(s, tbl, true)
		close(req.ready)
	} else {
		l.queue = append(l.queue, req)
	}
	return req
}

// acquireShared blocks until a shared lock is granted or the deadline
// passes. Shared requests join the same FIFO queue as tickets, so a reader
// cannot overtake an already-queued writer of the same table.
func (lm *lockManager) acquireShared(s *Session, tbl string, deadline time.Time) error {
	lm.mu.Lock()
	l := lm.get(tbl)
	if (len(l.queue) == 0 || s.held[tbl]) && l.grantableLocked(s, false) {
		l.grantLocked(s, tbl, false)
		lm.mu.Unlock()
		return nil
	}
	req := &lockRequest{s: s, exclusive: false, ready: make(chan struct{})}
	l.queue = append(l.queue, req)
	lm.mu.Unlock()

	failErr := ErrLockTimeout
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case <-req.ready:
		return nil
	case <-timer.C:
	case <-s.killCh:
		failErr = ErrKilled
	}
	// Timed out (or killed): remove the request unless granted concurrently.
	var fire []func()
	lm.mu.Lock()
	select {
	case <-req.ready:
		lm.mu.Unlock()
		return nil
	default:
	}
	for i, q := range l.queue {
		if q == req {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			break
		}
	}
	l.pumpLocked(tbl, &fire) // our departure may unblock the new head
	lm.mu.Unlock()
	fireAll(fire)
	return failErr
}

// releaseShared drops the session's shared locks while keeping its
// exclusive ones: shared locks live for one statement (read committed, the
// behaviour of the paper's MySQL/InnoDB backends), while exclusive locks
// are strict two-phase and only release at commit or rollback. Without
// this, a long transaction's read of a hot table would serialize against
// every writer of that table for the whole transaction.
func (lm *lockManager) releaseShared(s *Session) {
	if !s.lockState.Load() {
		return
	}
	var fire []func()
	lm.mu.Lock()
	for tbl := range s.held {
		l := lm.locks[tbl]
		if l == nil {
			delete(s.held, tbl)
			continue
		}
		if l.writer == s {
			// Keep the exclusive lock; drop any redundant shared count.
			delete(l.readers, s)
			continue
		}
		delete(l.readers, s)
		delete(s.held, tbl)
		l.pumpLocked(tbl, &fire)
		if l.writer == nil && len(l.readers) == 0 && len(l.queue) == 0 {
			delete(lm.locks, tbl)
		}
	}
	if len(s.held) == 0 && len(s.reserved) == 0 {
		s.lockState.Store(false)
	}
	lm.mu.Unlock()
	fireAll(fire)
}

// releaseAll drops every lock the session holds, purges its unconsumed
// reservations, and grants waiters.
func (lm *lockManager) releaseAll(s *Session) {
	if !s.lockState.Load() {
		return
	}
	var fire []func()
	lm.mu.Lock()
	for tbl := range s.reserved {
		lm.dropReservationsLocked(s, tbl, &fire)
	}
	for tbl := range s.held {
		l := lm.locks[tbl]
		if l == nil {
			continue
		}
		delete(l.readers, s)
		if l.writer == s {
			l.writer = nil
		}
		l.pumpLocked(tbl, &fire)
		if l.writer == nil && len(l.readers) == 0 && len(l.queue) == 0 {
			delete(lm.locks, tbl)
		}
	}
	s.held = make(map[string]bool)
	s.lockState.Store(false)
	lm.mu.Unlock()
	fireAll(fire)
}

// undoOp is one entry of a transaction's undo log. DML undo ('i'/'d'/'u')
// carries no row image: the pre-statement state lives in the row's version
// chain, and undo pops the session's own uncommitted version off the chain
// head (newest first, matching the log's LIFO replay).
type undoOp struct {
	kind    uint8 // 'i' undo-insert, 'd' undo-delete, 'u' undo-update, 'c' undo-create, 'r' undo-drop, 'x' undo-create-index, 'a' autoInc restore
	table   string
	rowid   int64
	tbl     *table // for undo of DROP TABLE / CREATE TABLE
	index   string
	autoInc int64
}

// Session is one client connection to the engine. Sessions are not safe for
// concurrent use; the connection manager hands each client its own.
type Session struct {
	engine *Engine
	// shard selects the session's read-lock and stats shard; sessions are
	// assigned round-robin so concurrent readers spread across shards.
	shard uint32

	inTx bool
	undo []undoOp

	// stamp marks this session's uncommitted row versions
	// (uncommittedBit|writerID); commit re-stamps them with a commit epoch.
	stamp uint64
	// pin holds the session's snapshot epoch + 1 while a statement (auto-
	// commit) or transaction is reading; 0 means unpinned. The GC watermark
	// reads it from other goroutines.
	pin atomic.Uint64
	// dirty collects the versions the current statement/transaction pushed,
	// for commit-time epoch stamping.
	dirty []*rowVersion

	// held and reserved are guarded by the engine lock manager's mutex:
	// reservations are placed by the dispatcher goroutine while statements
	// execute on a worker goroutine.
	held     map[string]bool
	reserved map[string][]*lockRequest
	// lockState is true while the session may hold locks or queued
	// reservations (set under the lock manager's mutex). The statement-end
	// release paths skip the global lock-manager mutex when it is false —
	// the common case for reads, which take no table locks — so concurrent
	// readers do not serialize on that mutex either.
	lockState atomic.Bool

	// temp holds the session-local temporary tables as an immutable map
	// behind an atomic pointer. Mutations happen only on the goroutine
	// executing the session's statements and swap in a fresh copy; the
	// dispatcher goroutine reads it concurrently (ReserveWriteLockNotify
	// checks the temp namespace while a prior statement may still be
	// creating a temporary table), so a plain map would race.
	temp atomic.Pointer[map[string]*table]

	// killed/killCh implement Session.Kill: killed flips exactly once and
	// killCh closes with it, so in-flight lock waits can select on it.
	killed atomic.Bool
	killCh chan struct{}

	closed bool
}

// NewSession opens a session on the engine.
func (e *Engine) NewSession() *Session {
	s := &Session{
		engine:   e,
		shard:    e.sessionSeq.Add(1),
		stamp:    uncommittedBit | e.writerSeq.Add(1),
		held:     make(map[string]bool),
		reserved: make(map[string][]*lockRequest),
		killCh:   make(chan struct{}),
	}
	s.tempClear()
	e.registerSession(s)
	return s
}

// tempGet looks a name up in the session's temporary-table namespace. Safe
// from any goroutine (single atomic load of the immutable map).
func (s *Session) tempGet(name string) (*table, bool) {
	t, ok := (*s.temp.Load())[name]
	return t, ok
}

// tempSet publishes a temporary table. Owner goroutine only: copies the
// current map and swaps it in.
func (s *Session) tempSet(name string, t *table) {
	old := *s.temp.Load()
	m := make(map[string]*table, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[name] = t
	s.temp.Store(&m)
}

// tempDelete removes a temporary table. Owner goroutine only.
func (s *Session) tempDelete(name string) {
	old := *s.temp.Load()
	if _, ok := old[name]; !ok {
		return
	}
	m := make(map[string]*table, len(old))
	for k, v := range old {
		if k != name {
			m[k] = v
		}
	}
	s.temp.Store(&m)
}

// tempClear drops the whole temporary namespace. Owner goroutine only.
func (s *Session) tempClear() {
	if p := s.temp.Load(); p != nil && len(*p) == 0 {
		return
	}
	m := make(map[string]*table)
	s.temp.Store(&m)
}

// statShard returns the session's slice of the engine counters.
func (s *Session) statShard() *statShard {
	return &s.engine.stats[s.shard&s.engine.mu.mask]
}

// ReserveWriteLock queues an exclusive lock ticket for a table without
// blocking. The clustering middleware calls it at dispatch time, in cluster
// submission order, so that conflicting writes are granted in the same
// order on every replica. Temporary tables are session-private and are not
// reserved.
func (s *Session) ReserveWriteLock(table string) {
	s.ReserveWriteLockNotify(table, nil)
}

// ReserveWriteLockNotify is ReserveWriteLock with a grant notification:
// granted (when non-nil) is invoked exactly once, as soon as the ticket is
// granted — possibly synchronously, before this call returns — or when the
// ticket is dropped unconsumed (session close). A scheduler uses it to park
// the write bound to this ticket until the engine reaches it in the FIFO,
// instead of blocking a worker on the wait.
func (s *Session) ReserveWriteLockNotify(table string, granted func()) {
	table = strings.ToLower(table)
	if _, isTemp := s.tempGet(table); isTemp {
		if granted != nil {
			granted()
		}
		return
	}
	s.engine.locks.reserve(s, table, granted)
}

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.inTx }

// Begin starts an explicit transaction.
func (s *Session) Begin() error {
	if s.closed {
		return ErrClosed
	}
	if s.inTx {
		return ErrTxInProgress
	}
	s.inTx = true
	s.statShard().transactions.Add(1)
	// Pin the transaction's snapshot now: every read in the transaction sees
	// one consistent epoch (plus the session's own writes).
	_ = s.snapshotEpoch()
	return nil
}

// Commit makes the transaction's effects durable and releases its locks.
// The transaction's versions are stamped with a fresh commit epoch and
// published before any lock releases, so the next ticket holder — and every
// snapshot pinned after it — observes the commit.
func (s *Session) Commit() error {
	if s.killed.Load() {
		// A killed transaction must not publish: the cluster-side disable
		// already counted it dead. Its undo stays intact for the teardown
		// rollback (or Close) to apply.
		return ErrKilled
	}
	if !s.inTx {
		return ErrNoTransaction
	}
	s.inTx = false
	n := len(s.undo)
	s.commitVersions()
	s.undo = nil
	s.unpin()
	s.engine.locks.releaseAll(s)
	s.engine.noteGarbage(n)
	return nil
}

// Rollback undoes the transaction's effects and releases its locks.
func (s *Session) Rollback() error {
	if !s.inTx {
		return ErrNoTransaction
	}
	s.inTx = false
	n := len(s.undo)
	s.applyUndo()
	s.unpin()
	s.engine.locks.releaseAll(s)
	s.statShard().aborts.Add(1)
	s.engine.noteGarbage(n)
	return nil
}

// applyUndo reverses the undo log (newest first). DML-only logs — the
// common case — replay under the catalog's shared lock plus each target
// table's latch: undoing insert/update/delete pops the session's own
// uncommitted version off the row's chain head (the versions are invisible
// to every other session, so reverting them needs no engine-exclusive
// lock). A log containing DDL falls back to the engine-exclusive path,
// since it rewrites the catalog itself.
func (s *Session) applyUndo() {
	e := s.engine
	ddl := false
	for i := range s.undo {
		switch s.undo[i].kind {
		case 'c', 'r', 'x':
			ddl = true
		}
	}
	if ddl {
		e.mu.Lock()
		defer e.mu.Unlock()
	} else {
		e.mu.RLock(s.shard)
		defer e.mu.RUnlock(s.shard)
	}
	for i := len(s.undo) - 1; i >= 0; i-- {
		op := s.undo[i]
		switch op.kind {
		case 'i', 'd', 'u': // pop the session's uncommitted version
			if t := s.resolveLocked(op.table); t != nil {
				t.store.Lock()
				t.popVersion(op.rowid, s.stamp)
				t.store.Unlock()
			}
		case 'c': // undo create table: drop it
			if t, ok := s.tempGet(op.table); ok && op.tbl != nil && t == op.tbl {
				s.tempDelete(op.table)
			} else {
				delete(e.tables, op.table)
			}
		case 'r': // undo drop table: restore it
			e.tables[op.table] = op.tbl
		case 'x': // undo create index
			if t := s.resolveLocked(op.table); t != nil {
				t.idxMu.Lock()
				delete(t.indexes, op.index)
				t.idxMu.Unlock()
			}
		case 'a': // restore auto-increment counter
			if t := s.resolveLocked(op.table); t != nil {
				t.store.Lock()
				t.autoInc = op.autoInc
				t.store.Unlock()
			}
		}
	}
	s.undo = nil
	s.dirty = nil
}

// resolveLocked finds a table by name, checking the session's temporary
// namespace first. Caller holds e.mu (shared suffices: catalog writers hold
// it exclusively).
func (s *Session) resolveLocked(name string) *table {
	if t, ok := s.tempGet(name); ok {
		return t
	}
	return s.engine.tables[name]
}

// Kill marks the session dead from another goroutine: the one Session
// method that is safe to call concurrently with a statement executing on
// the session's own goroutine. An in-flight lock wait aborts with
// ErrKilled, and every subsequent statement or Commit fails with ErrKilled,
// but Kill itself releases nothing — Rollback, Reset and Close still work
// on a killed session and remain the paths that undo its writes and release
// its locks and tickets, on the goroutine that owns the session. The
// backend's crash-consistent disable uses this pair: Kill to unblock the
// transaction worker wherever it is parked, then a rollback on that worker
// to tear the transaction down.
func (s *Session) Kill() {
	if s.killed.CompareAndSwap(false, true) {
		close(s.killCh)
	}
}

// Killed reports whether Kill was called.
func (s *Session) Killed() bool { return s.killed.Load() }

// Reset returns the session to its pristine just-opened state without
// closing it: any open transaction rolls back, locks and unconsumed
// reservations release, the snapshot pin drops and temporary tables are
// discarded. The backend's dedicated-session free-list recycles auto-commit
// writer sessions through it instead of paying open/close per write.
func (s *Session) Reset() {
	if s.closed {
		return
	}
	if s.inTx {
		_ = s.Rollback()
	}
	s.unpin()
	s.engine.locks.releaseAll(s)
	s.tempClear()
	s.undo = nil
	s.dirty = nil
}

// Close rolls back any open transaction and drops temporary tables. Closing
// also releases the session's snapshot pin and, when superseded versions
// have accrued, runs a GC sweep — a draining reader may have been the pin
// holding the watermark back.
func (s *Session) Close() {
	if s.closed {
		return
	}
	if s.inTx {
		_ = s.Rollback()
	}
	s.unpin()
	s.engine.locks.releaseAll(s)
	s.tempClear()
	s.closed = true
	s.engine.deregisterSession(s)
	if s.engine.gcDebt.Load() > 0 {
		s.engine.GC()
	}
}

// lockDeadline computes the lock wait deadline for one statement.
func (s *Session) lockDeadline() time.Time {
	return time.Now().Add(s.engine.lockTimeout)
}

// lockTable acquires a table lock for the current statement. Exclusive
// acquisition always goes through the ticket FIFO: it consumes the oldest
// pending reservation when the dispatcher issued one at enqueue time, and
// issues a ticket at the tail of the queue otherwise — so every exclusive
// grant follows one per-table ticket order, whatever path requested it.
// Temporary tables are session-private and need no locks. When the session
// is not in an explicit transaction the caller releases locks at statement
// end.
func (s *Session) lockTable(name string, exclusive bool, deadline time.Time) error {
	if _, isTemp := s.tempGet(name); isTemp {
		s.engine.locks.cancelReservations(s, name)
		return nil
	}
	if exclusive {
		req := s.engine.locks.takeReservation(s, name)
		if req == nil {
			req = s.engine.locks.issueNow(s, name)
		}
		return s.engine.locks.waitReservation(req, name, deadline)
	}
	return s.engine.locks.acquireShared(s, name, deadline)
}

// endStatement commits or undoes an auto-commit statement and releases its
// locks and snapshot pin. Inside a transaction it releases shared locks
// only (exclusive locks are strict 2PL and the transaction's snapshot pin
// stays until commit or rollback).
func (s *Session) endStatement(err error) error {
	if s.inTx {
		s.engine.locks.releaseShared(s)
		return err
	}
	n := len(s.undo)
	if err != nil {
		s.applyUndo()
	} else {
		s.commitVersions()
		s.undo = nil
	}
	s.unpin()
	s.engine.locks.releaseAll(s)
	s.engine.noteGarbage(n)
	return err
}
