package chaos

import (
	"runtime"
	"testing"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/controller"
)

// testHealth is the aggressive self-healing configuration the scenarios
// run under: short probe and backoff intervals so a CI run converges fast,
// unlimited re-integration attempts because the scripts decide when a
// backend heals, not an attempt budget.
func testHealth() controller.HealthConfig {
	return controller.HealthConfig{
		SuspectThreshold:      1,
		ProbeInterval:         5 * time.Millisecond,
		AutoReintegrate:       true,
		ReintegrateBackoff:    5 * time.Millisecond,
		ReintegrateBackoffCap: 50 * time.Millisecond,
		ReintegrateAttempts:   -1,
	}
}

// checkReport fails the test on any violated invariant and logs the
// scenario's vital signs.
func checkReport(t *testing.T, rep *Report) {
	t.Helper()
	t.Logf("chaos: ops=%d errors=%d disables=%d", rep.Ops, rep.Errors, rep.Disables)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// settleGoroutines waits for the goroutine count to fall back near the
// baseline; a leak here means some teardown path left a worker behind.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosCrashAndReintegrate is the headline scenario: a sustained mixed
// workload while one backend crashes mid-transaction (its commit is lost),
// heals, and re-integrates under live traffic; then a second backend
// crashes on a plain write and recovers the same way. At quiesce every
// replica — the survivors and both re-integrated backends — must be
// byte-identical, no client operation may have hung, and no engine lock
// state may be stranded.
func TestChaosCrashAndReintegrate(t *testing.T) {
	base := runtime.NumGoroutine()
	rep, err := Run(Config{
		Backends:     3,
		Writers:      6,
		OpsPerWriter: 60,
		Tables:       4,
		Seed:         42,
		Health:       testHealth(),
		Events: []Event{
			// Crash-mid-transaction on db1: its third commit fails and the
			// whole backend goes dark until healed.
			{AtOp: 40, Backend: 1, Plan: backend.NewFaultPlan(backend.CrashOnCommit(3, nil))},
			{AtOp: 200, Backend: 1, Heal: true},
			// While db1 may still be catching up, db2 crashes on a write.
			{AtOp: 280, Backend: 2, Plan: backend.NewFaultPlan(
				&backend.Rule{Kind: backend.OpWrite, AfterN: 2, Times: 1, Crash: true})},
			{AtOp: 420, Backend: 2, Heal: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep)
	if rep.Disables == 0 {
		t.Fatal("scenario never disabled a backend; the faults did not fire")
	}
	settleGoroutines(t, base)
}

// TestChaosPartialPlacementCrashHostMidTransaction runs the headline
// scenario under RAIDb-2 partial replication: every table lives on two of
// the three backends, and db1 — a host of every partially-replicated table
// it shares — crashes mid-transaction under live traffic. While it is
// down, routing must degrade to each table's surviving host (or fail with
// the typed no-host error, which the workload tolerates); after the heal,
// auto-re-integration must restore db1's hosted subset only. At quiesce:
// zero lost acks, every host of every table byte-identical, and no backend
// holding a table it does not host.
func TestChaosPartialPlacementCrashHostMidTransaction(t *testing.T) {
	base := runtime.NumGoroutine()
	rep, err := Run(Config{
		Backends:     3,
		Writers:      6,
		OpsPerWriter: 60,
		Tables:       4,
		Seed:         42,
		Health:       testHealth(),
		// db1 hosts c0, c1 and c3; db0 and db2 cover the rest.
		Placement: [][]int{
			{0, 1},    // c0
			{1, 2},    // c1
			{0, 2},    // c2
			{0, 1, 2}, // c3
		},
		Events: []Event{
			// Crash-mid-transaction on db1: its third commit fails and the
			// whole backend goes dark until healed. c0 degrades to db0, c1
			// to db2, c3 to the other two.
			{AtOp: 40, Backend: 1, Plan: backend.NewFaultPlan(backend.CrashOnCommit(3, nil))},
			{AtOp: 240, Backend: 1, Heal: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep)
	if rep.Disables == 0 {
		t.Fatal("scenario never disabled a backend; the fault did not fire")
	}
	settleGoroutines(t, base)
}

// TestChaosCrashBackendMidPlacementChange crashes the *target* of a dynamic
// placement move with the bootstrap in flight: db2's fault plan crashes the
// backend on the third direct statement — its own restore lane — so the
// AddHost of c1 onto it deterministically dies mid-restore, before the
// routing flip. The half-restored copy must never flip into routing; the
// crash disables db2, and once the epilogue heals it (no scripted heal: the
// crash must stay armed however late the bootstrap runs), auto-
// re-integration brings it back with the leftover partial copy swept away.
// A RemoveHost on the healthy db1 rides along and must land. At quiesce:
// zero lost acks, a valid converged placement, and every live host of every
// table byte-identical to its peers.
func TestChaosCrashBackendMidPlacementChange(t *testing.T) {
	base := runtime.NumGoroutine()
	rep, err := Run(Config{
		Backends:     3,
		Writers:      6,
		OpsPerWriter: 100,
		Tables:       4,
		Seed:         42,
		Health:       testHealth(),
		// db0 hosts everything (the genesis-backup source and default donor),
		// db1 and db2 hold partial subsets the moves reshuffle.
		Placement: [][]int{
			{0, 1}, // c0
			{0, 1}, // c1
			{0, 2}, // c2
			{0, 2}, // c3
		},
		Events: []Event{
			// Arm db2: the third direct statement (restore/replay lane)
			// crashes the backend, and the preceding ones are slowed so the
			// bootstrap window is wide. The crash rule comes first: rules
			// are first-match, and the latency rule would otherwise swallow
			// every operation.
			{AtOp: 30, Backend: 2, Plan: backend.NewFaultPlan(
				&backend.Rule{Kind: backend.OpDirect, AfterN: 3, Times: 1, Crash: true},
				backend.Slow(backend.OpDirect, 2*time.Millisecond))},
			{AtOp: 40, Backend: 2, AddHost: true, Table: 1},
			{AtOp: 300, Backend: 1, RemoveHost: true, Table: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep)
	if rep.Disables == 0 {
		t.Fatal("scenario never disabled a backend; the mid-bootstrap crash did not fire")
	}
	if rep.Moves == 0 {
		t.Fatal("no placement move completed; the scenario exercised nothing")
	}
	settleGoroutines(t, base)
}

// TestChaosSlowReplica injects latency, not failure: one backend runs its
// writes slower than the others for the whole scenario. Nothing should be
// disabled — latency is not an error — and the replicas must still end
// byte-identical.
func TestChaosSlowReplica(t *testing.T) {
	base := runtime.NumGoroutine()
	rep, err := Run(Config{
		Backends:     3,
		Writers:      4,
		OpsPerWriter: 40,
		Tables:       3,
		Seed:         7,
		Health:       testHealth(),
		Events: []Event{
			{AtOp: 20, Backend: 2, Plan: backend.NewFaultPlan(
				backend.Slow(backend.OpWrite, 500*time.Microsecond))},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep)
	if rep.Disables != 0 {
		t.Fatalf("latency skew disabled %d backends; slow is not down", rep.Disables)
	}
	settleGoroutines(t, base)
}

// TestChaosTransientFault exercises the fail-once-then-heal fault: a single
// injected write error must disable the backend (writes are one-strike, no
// 2PC), after which the supervisor re-integrates it without any scripted
// heal, because the plan only ever fired once.
func TestChaosTransientFault(t *testing.T) {
	base := runtime.NumGoroutine()
	rep, err := Run(Config{
		Backends:     3,
		Writers:      4,
		OpsPerWriter: 40,
		Tables:       3,
		Seed:         1234,
		Health:       testHealth(),
		Events: []Event{
			{AtOp: 30, Backend: 1, Plan: backend.NewFaultPlan(
				backend.FailNth(backend.OpWrite, 1, nil))},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep)
	settleGoroutines(t, base)
}
