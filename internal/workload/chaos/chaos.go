// Package chaos is a deterministic failure-injection harness: it sustains a
// seeded, randomized mixed workload (auto-commit writes, multi-statement
// transactions, reads) against a replicated virtual database while a
// scripted fault plan crashes, degrades, and heals backends, then checks
// the invariants the self-healing design promises at quiesce:
//
//   - every surviving replica is byte-identical;
//   - every re-integrated replica is byte-identical to the survivors;
//   - zero lost acks — every operation a client issued got a terminal
//     answer (success or error), none hung;
//   - zero stranded engine lock tickets and zero held locks;
//   - the cluster converged back to every backend healthy.
//
// Faults are scripted by operation count against a seeded workload, not by
// wall clock, so a scenario replays the same fault positions run after run.
// Under partial replication a script can also fire dynamic placement moves
// (AddHost/RemoveHost events), including against a backend that crashes with
// the bootstrap in flight; the quiesce check then judges hosted-subset
// identity against the live placement the moves produced.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/balancer"
	"cjdbc/internal/controller"
	"cjdbc/internal/recovery"
	"cjdbc/internal/sqlengine"
)

// Event is one scripted fault action, fired when the cluster-wide count of
// completed client operations passes AtOp.
type Event struct {
	AtOp    int64
	Backend int // backend index the action targets
	// Plan, when non-nil, is installed on the backend (replacing any
	// previous plan).
	Plan *backend.FaultPlan
	// Heal heals the backend's installed plan instead: the crashed state
	// clears and every rule expires, so the backend starts answering again
	// and the re-integration supervisor's next attempt succeeds.
	Heal bool
	// AddHost / RemoveHost fire a dynamic placement move of table c<Table>
	// targeting the backend, asynchronously (a bootstrap runs under live
	// traffic and live faults — that interleaving is the point). Move errors
	// are tolerated: a crashed target legitimately refuses a move, and the
	// quiesce consistency check judges the *live* placement instead.
	AddHost    bool
	RemoveHost bool
	Table      int
}

// Config sizes one scenario.
type Config struct {
	Backends     int
	Writers      int
	OpsPerWriter int
	Tables       int
	SeedRows     int
	Seed         int64
	Events       []Event
	Health       controller.HealthConfig
	// Placement, when non-empty, runs the scenario under RAIDb-2 partial
	// replication: Placement[ti] lists the backend indices hosting table
	// c<ti>, each backend is seeded with and declares exactly its hosted
	// tables, and the quiesce consistency check becomes hosted-subset
	// identity (every host of a table byte-identical, every non-host
	// holding nothing). Must have one non-empty entry per table.
	Placement [][]int
	// LockTimeout is the engines' lock-wait timeout (default 10s).
	LockTimeout time.Duration
	// ConvergeTimeout bounds the post-quiesce wait for every backend to
	// return to healthy (default 30s).
	ConvergeTimeout time.Duration
}

// Report is a scenario's outcome. A scenario "passes" when Err() is nil.
type Report struct {
	Ops      int64 // client operations completed (reads, writes, demarcations)
	Errors   int64 // operations that returned an error (tolerated)
	LostAcks int   // writers still blocked at quiesce: operations that never returned
	Disables int64 // backend disables observed by the controller
	// Divergence describes the first replica mismatch found; "" when every
	// backend is byte-identical.
	Divergence string
	// Moves counts the placement moves that completed (scripted moves that
	// were refused — crashed target, last host — do not count).
	Moves int64
	// StrandedTickets and HeldLocks sum the engines' leftover lock state.
	StrandedTickets int
	HeldLocks       int
	// Unconverged lists backends not healthy at the end.
	Unconverged []string
}

// Err folds the report's invariant checks into one error, nil on success.
func (r *Report) Err() error {
	switch {
	case r.LostAcks > 0:
		return fmt.Errorf("chaos: %d operations never received a terminal outcome", r.LostAcks)
	case len(r.Unconverged) > 0:
		return fmt.Errorf("chaos: backends never converged back to healthy: %v", r.Unconverged)
	case r.Divergence != "":
		return fmt.Errorf("chaos: replicas diverged: %s", r.Divergence)
	case r.StrandedTickets > 0:
		return fmt.Errorf("chaos: %d engine lock tickets stranded after quiesce", r.StrandedTickets)
	case r.HeldLocks > 0:
		return fmt.Errorf("chaos: %d engine locks still held after quiesce", r.HeldLocks)
	}
	return nil
}

// Run executes one scenario and reports the invariant checks. It builds its
// own cluster: cfg.Backends in-process engines behind one virtual database
// with a recovery log and the given health configuration, seeded with
// cfg.Tables tables of cfg.SeedRows rows. A genesis backup is taken before
// traffic starts so the re-integration supervisor always has a dump to
// restore from.
func Run(cfg Config) (*Report, error) {
	if cfg.Backends <= 0 {
		cfg.Backends = 3
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 4
	}
	if cfg.OpsPerWriter <= 0 {
		cfg.OpsPerWriter = 50
	}
	if cfg.Tables <= 0 {
		cfg.Tables = 4
	}
	if cfg.SeedRows <= 0 {
		cfg.SeedRows = 8
	}
	if cfg.LockTimeout <= 0 {
		cfg.LockTimeout = 10 * time.Second
	}
	if cfg.ConvergeTimeout <= 0 {
		cfg.ConvergeTimeout = 30 * time.Second
	}
	// hostsOf maps a table index to the backends hosting it; full
	// replication means everyone hosts everything.
	hostsOf := func(ti int) []int {
		if len(cfg.Placement) == 0 {
			all := make([]int, cfg.Backends)
			for i := range all {
				all[i] = i
			}
			return all
		}
		return cfg.Placement[ti]
	}
	if len(cfg.Placement) > 0 {
		if len(cfg.Placement) != cfg.Tables {
			return nil, fmt.Errorf("chaos: placement has %d entries for %d tables", len(cfg.Placement), cfg.Tables)
		}
		for ti, hosts := range cfg.Placement {
			if len(hosts) == 0 {
				return nil, fmt.Errorf("chaos: table c%d has no hosts", ti)
			}
		}
	}

	vcfg := controller.VDBConfig{
		Name:        "chaos",
		ParallelTx:  true,
		RecoveryLog: recovery.NewMemoryLog(),
		Health:      cfg.Health,
	}
	if len(cfg.Placement) > 0 {
		vcfg.Replication = balancer.NewPartialReplication(nil)
	}
	v := controller.NewVirtualDatabase(vcfg)
	defer v.Close()

	engines := make([]*sqlengine.Engine, cfg.Backends)
	backends := make([]*backend.Backend, cfg.Backends)
	for i := range engines {
		e := sqlengine.New(fmt.Sprintf("db%d", i), sqlengine.WithLockTimeout(cfg.LockTimeout))
		s := e.NewSession()
		var hosted []string
		for ti := 0; ti < cfg.Tables; ti++ {
			mine := false
			for _, h := range hostsOf(ti) {
				if h == i {
					mine = true
					break
				}
			}
			if !mine {
				continue
			}
			if len(cfg.Placement) > 0 {
				hosted = append(hosted, fmt.Sprintf("c%d", ti))
			}
			if _, err := s.ExecSQL(fmt.Sprintf("CREATE TABLE c%d (id INTEGER PRIMARY KEY, v INTEGER)", ti)); err != nil {
				return nil, fmt.Errorf("chaos: seed: %w", err)
			}
			for r := 0; r < cfg.SeedRows; r++ {
				if _, err := s.ExecSQL(fmt.Sprintf("INSERT INTO c%d (id, v) VALUES (%d, 0)", ti, r)); err != nil {
					return nil, fmt.Errorf("chaos: seed: %w", err)
				}
			}
		}
		s.Close()
		engines[i] = e
		b := backend.New(backend.Config{
			Name:   fmt.Sprintf("db%d", i),
			Driver: &backend.EngineDriver{Engine: e},
			Tables: hosted,
		})
		backends[i] = b
		if err := v.AddBackend(b); err != nil {
			return nil, err
		}
	}
	if err := v.ValidatePlacement(); err != nil {
		return nil, err
	}
	defer func() {
		for _, b := range backends {
			b.Close()
		}
	}()

	// Genesis backup, before any traffic: the supervisor restores from it.
	if _, err := v.BackupBackend(backends[0].Name(), "genesis"); err != nil {
		return nil, fmt.Errorf("chaos: genesis backup: %w", err)
	}

	rep := &Report{}
	var done atomic.Int64 // completed client operations, the events' clock

	// Fault injector: fires each event when the operation counter passes
	// its position. Order events by AtOp so the script reads top to bottom.
	events := append([]Event(nil), cfg.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].AtOp < events[j].AtOp })
	stopInjector := make(chan struct{})
	var injectorWG, movesWG sync.WaitGroup
	injectorWG.Add(1)
	go func() {
		defer injectorWG.Done()
		for _, ev := range events {
			for done.Load() < ev.AtOp {
				select {
				case <-stopInjector:
					return
				case <-time.After(time.Millisecond):
				}
			}
			b := backends[ev.Backend]
			if ev.Heal {
				if p := b.FaultPlan(); p != nil {
					p.Heal()
				}
			}
			if ev.Plan != nil {
				b.SetFaultPlan(ev.Plan)
			}
			if ev.AddHost || ev.RemoveHost {
				tbl := fmt.Sprintf("c%d", ev.Table)
				movesWG.Add(1)
				go func(add bool) {
					defer movesWG.Done()
					if add {
						_ = v.AddTableHost(tbl, b.Name())
					} else {
						_ = v.RemoveTableHost(tbl, b.Name())
					}
				}(ev.AddHost)
			}
		}
	}()

	// Writers: the seeded mixed workload. Errors are tolerated (a crash
	// window can fail an operation on every backend at once); hangs are
	// not — a writer that never finishes is a lost ack.
	var wg sync.WaitGroup
	var finished atomic.Int64
	writerDone := make(chan struct{})
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(w)))
			s, err := v.NewSession("user", "pw")
			if err != nil {
				atomic.AddInt64(&rep.Errors, 1)
				finished.Add(1)
				return
			}
			defer finished.Add(1)
			defer s.Close()
			op := func(sql string) {
				_, err := s.Exec(sql, nil)
				if err != nil {
					atomic.AddInt64(&rep.Errors, 1)
				}
				done.Add(1)
			}
			for i := 0; i < cfg.OpsPerWriter; i++ {
				tbl := (w + rng.Intn(3)) % cfg.Tables
				switch rng.Intn(6) {
				case 0:
					op(fmt.Sprintf("INSERT INTO c%d (id, v) VALUES (%d, %d)",
						tbl, 1000+w*cfg.OpsPerWriter+i, rng.Intn(100)))
				case 1:
					op(fmt.Sprintf("DELETE FROM c%d WHERE id = %d", tbl, rng.Intn(cfg.SeedRows)))
				case 2:
					op(fmt.Sprintf("SELECT v FROM c%d WHERE id = %d", tbl, rng.Intn(cfg.SeedRows)))
				case 3:
					// Cross-table transaction; tables in index order (the
					// client-side deadlock-avoidance discipline).
					lo, hi := tbl, (tbl+1)%cfg.Tables
					if lo > hi {
						lo, hi = hi, lo
					}
					op("BEGIN")
					op(fmt.Sprintf("UPDATE c%d SET v = v + 1 WHERE id = %d", lo, rng.Intn(cfg.SeedRows)))
					op(fmt.Sprintf("UPDATE c%d SET v = %d WHERE id = %d", hi, rng.Intn(100), rng.Intn(cfg.SeedRows)))
					if rng.Intn(8) == 0 {
						op("ROLLBACK")
					} else {
						op("COMMIT")
					}
					// A failed write mid-transaction leaves the session in
					// the transaction; clear it so the next loop starts
					// clean.
					if s.InTransaction() {
						op("ROLLBACK")
					}
				default:
					op(fmt.Sprintf("UPDATE c%d SET v = %d WHERE id = %d",
						tbl, rng.Intn(100), rng.Intn(cfg.SeedRows)))
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(writerDone) }()

	// Quiesce: join the writers with a deadline. Writers that never return
	// are the lost acks the harness exists to catch.
	select {
	case <-writerDone:
	case <-time.After(cfg.ConvergeTimeout + 2*cfg.LockTimeout):
		rep.LostAcks = cfg.Writers - int(finished.Load())
	}
	close(stopInjector)
	injectorWG.Wait()
	// Join the in-flight placement moves before touching cluster state: every
	// move path is internally deadline-bounded, so this terminates.
	movesWG.Wait()
	rep.Ops = done.Load()
	rep.Moves = v.PlacementMoves()
	if rep.LostAcks > 0 {
		// Writers are still wedged; the consistency checks below would race
		// with them, and the report already fails.
		rep.Disables = v.StatsSnapshot().BackendsDisabled
		return rep, nil
	}

	// Epilogue: heal every fault so the supervisor can finish
	// re-integrating, then wait for convergence.
	for _, b := range backends {
		if p := b.FaultPlan(); p != nil {
			p.Heal()
		}
	}
	deadline := time.Now().Add(cfg.ConvergeTimeout)
	for {
		allHealthy := true
		for _, b := range backends {
			if !b.Enabled() || v.BackendHealth(b.Name()) != controller.StatusHealthy {
				allHealthy = false
				break
			}
		}
		if allHealthy {
			break
		}
		if time.Now().After(deadline) {
			for _, b := range backends {
				if st := v.BackendHealth(b.Name()); st != controller.StatusHealthy {
					rep.Unconverged = append(rep.Unconverged, fmt.Sprintf("%s=%s", b.Name(), st))
				}
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	rep.Disables = v.StatsSnapshot().BackendsDisabled

	// Byte-identical replicas, re-integrated ones included. Under partial
	// replication the invariant is hosted-subset identity — judged against
	// the *live* placement, which scripted moves mutate at runtime: every
	// current host of a table matches the first host, no current non-host
	// holds the table, and the converged placement still validates.
	if len(cfg.Placement) > 0 {
		if err := v.ValidatePlacement(); err != nil {
			rep.Divergence = fmt.Sprintf("placement did not converge valid: %v", err)
		}
	}
	for ti := 0; ti < cfg.Tables && rep.Divergence == ""; ti++ {
		tbl := fmt.Sprintf("c%d", ti)
		var hosts []int
		if len(cfg.Placement) > 0 {
			for _, h := range v.Replication().Hosts(tbl) {
				var bi int
				if _, err := fmt.Sscanf(h, "db%d", &bi); err == nil {
					hosts = append(hosts, bi)
				}
			}
			sort.Ints(hosts)
			if len(hosts) == 0 {
				rep.Divergence = fmt.Sprintf("table %s has no live host", tbl)
				break
			}
		} else {
			hosts = hostsOf(ti)
		}
		hostSet := make(map[int]bool, len(hosts))
		for _, h := range hosts {
			hostSet[h] = true
		}
		want, err := sortedDump(engines[hosts[0]], tbl)
		if err != nil {
			return nil, err
		}
		for bi := 0; bi < cfg.Backends; bi++ {
			if !hostSet[bi] {
				if _, _, err := engines[bi].SnapshotTable(tbl); err == nil {
					rep.Divergence = fmt.Sprintf("db%d holds table %s it does not host", bi, tbl)
				}
				continue
			}
			got, err := sortedDump(engines[bi], tbl)
			if err != nil {
				return nil, err
			}
			if got != want {
				rep.Divergence = fmt.Sprintf("table %s differs between db%d and db%d:\n--- db%d:\n%s\n--- db%d:\n%s",
					tbl, hosts[0], bi, hosts[0], want, bi, got)
				break
			}
		}
	}

	// No stranded lock tickets, no held locks: the crash-consistent disable
	// released everything it tore down. Settle briefly — released tickets
	// pump asynchronously.
	settle := time.Now().Add(2 * time.Second)
	for {
		tickets, locks := 0, 0
		for _, e := range engines {
			tickets += e.PendingTickets()
			locks += e.HeldLocks()
		}
		rep.StrandedTickets, rep.HeldLocks = tickets, locks
		if tickets == 0 && locks == 0 || time.Now().After(settle) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	return rep, nil
}

// sortedDump renders a table's contents in canonical order for
// byte-identical comparison across engines.
func sortedDump(e *sqlengine.Engine, table string) (string, error) {
	_, rows, err := e.SnapshotTable(table)
	if err != nil {
		return "", fmt.Errorf("chaos: snapshot %s on %s: %w", table, e.Name(), err)
	}
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.Key())
			b.WriteByte('|')
		}
		lines = append(lines, b.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n"), nil
}
