// Package harness drives closed-loop emulated clients against a virtual
// database and measures what the paper's evaluation reports: throughput in
// SQL requests per minute, mean interaction response time, and CPU-load
// proxies for the database backends and the controller (§6).
package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cjdbc"
	"cjdbc/internal/backend"
	"cjdbc/internal/controller"
)

// Interactor performs one emulated-browser interaction, returning the
// number of SQL requests it issued.
type Interactor interface {
	Interaction() (int, error)
}

// ClientFactory builds the per-client session and interactor.
type ClientFactory func(id int, rng *rand.Rand) (Interactor, func(), error)

// Config configures a measurement run.
type Config struct {
	Clients  int
	Warmup   time.Duration
	Duration time.Duration
	Seed     int64
	// ThinkTime is the emulated-browser pause between interactions. With
	// it the offered load is roughly Clients/(ThinkTime+latency), which is
	// how the paper's 450 RUBiS clients present a fixed demand; without it
	// clients saturate whatever resource is slowest.
	ThinkTime time.Duration
}

// Result is one measurement.
type Result struct {
	Requests     int64         // SQL requests completed in the window
	Interactions int64         // interactions completed in the window
	Errors       int64         // failed interactions (e.g. lock timeouts)
	Elapsed      time.Duration // measurement window
	// ThroughputRPM is SQL requests per minute, the paper's unit.
	ThroughputRPM float64
	// AvgResponseMs is the mean interaction latency in milliseconds.
	AvgResponseMs float64
	// BackendLoad is the mean backend CPU-load proxy in [0,1]: simulated
	// busy time divided by (window x pool size).
	BackendLoad float64
	// CtrlLoad is the controller CPU-load proxy in [0,1].
	CtrlLoad float64
	// FirstError samples one interaction failure for diagnostics.
	FirstError error
}

// Run drives cfg.Clients concurrent closed-loop clients. Backends and vdb
// are observed for the load proxies; vdb may be nil when clients bypass the
// controller (the single-database baseline).
func Run(cfg Config, vdb *controller.VirtualDatabase, backends []*backend.Backend, factory ClientFactory) (Result, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	type clientState struct {
		in      Interactor
		cleanup func()
	}
	clients := make([]clientState, cfg.Clients)
	for i := range clients {
		in, cleanup, err := factory(i, rand.New(rand.NewSource(cfg.Seed+int64(i)*7919)))
		if err != nil {
			for j := 0; j < i; j++ {
				clients[j].cleanup()
			}
			return Result{}, fmt.Errorf("harness: client %d: %w", i, err)
		}
		clients[i] = clientState{in: in, cleanup: cleanup}
	}
	defer func() {
		for _, c := range clients {
			if c.cleanup != nil {
				c.cleanup()
			}
		}
	}()

	var (
		measuring  atomic.Bool
		stop       atomic.Bool
		requests   atomic.Int64
		iacts      atomic.Int64
		errs       atomic.Int64
		latencyNs  atomic.Int64
		latencyCnt atomic.Int64
		firstErr   atomic.Value
	)
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(cs clientState) {
			defer wg.Done()
			for !stop.Load() {
				start := time.Now()
				n, err := cs.in.Interaction()
				if !measuring.Load() {
					if cfg.ThinkTime > 0 {
						time.Sleep(cfg.ThinkTime)
					}
					continue
				}
				if err != nil {
					errs.Add(1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				requests.Add(int64(n))
				iacts.Add(1)
				latencyNs.Add(int64(time.Since(start)))
				latencyCnt.Add(1)
				if cfg.ThinkTime > 0 {
					time.Sleep(cfg.ThinkTime)
				}
			}
		}(clients[i])
	}

	time.Sleep(cfg.Warmup)
	busy0 := totalBusy(backends)
	var ctrl0 int64
	if vdb != nil {
		ctrl0 = vdb.CtrlBusyNanos()
	}
	t0 := time.Now()
	measuring.Store(true)
	time.Sleep(cfg.Duration)
	measuring.Store(false)
	elapsed := time.Since(t0)
	busy1 := totalBusy(backends)
	var ctrl1 int64
	if vdb != nil {
		ctrl1 = vdb.CtrlBusyNanos()
	}
	stop.Store(true)
	wg.Wait()

	res := Result{
		Requests:     requests.Load(),
		Interactions: iacts.Load(),
		Errors:       errs.Load(),
		Elapsed:      elapsed,
	}
	res.ThroughputRPM = float64(res.Requests) / elapsed.Minutes()
	if e, ok := firstErr.Load().(error); ok {
		res.FirstError = e
	}
	if n := latencyCnt.Load(); n > 0 {
		res.AvgResponseMs = float64(latencyNs.Load()) / float64(n) / 1e6
	}
	if len(backends) > 0 {
		capacity := float64(elapsed) * float64(len(backends)) * float64(CostParallelism)
		res.BackendLoad = clamp01(float64(busy1-busy0) / capacity)
	}
	if vdb != nil {
		res.CtrlLoad = clamp01(float64(ctrl1-ctrl0) / float64(elapsed))
	}
	return res, nil
}

// CostParallelism is the service parallelism the sweeps configure on every
// backend; it models one database machine's CPU/disk parallelism and
// normalizes the CPU-load proxy.
const CostParallelism = 2

func totalBusy(backends []*backend.Backend) int64 {
	var total int64
	for _, b := range backends {
		total += b.BusyNanos()
	}
	return total
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// SessionFactory adapts a vdb into a session-per-client provider.
func SessionFactory(vdb *cjdbc.VirtualDatabase) func() (cjdbc.Session, func(), error) {
	return func() (cjdbc.Session, func(), error) {
		s, err := vdb.OpenSession("bench", "")
		if err != nil {
			return nil, nil, err
		}
		return s, func() { s.Close() }, nil
	}
}
