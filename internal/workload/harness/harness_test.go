package harness

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"cjdbc"
	"cjdbc/internal/backend"
	"cjdbc/internal/sqlengine"
)

// fakeInteractor counts invocations and optionally fails.
type fakeInteractor struct {
	n      int
	reqs   int
	delay  time.Duration
	failAt int
}

func (f *fakeInteractor) Interaction() (int, error) {
	f.n++
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.failAt > 0 && f.n%f.failAt == 0 {
		return 0, errors.New("synthetic failure")
	}
	f.reqs += 2
	return 2, nil
}

func TestRunCountsRequestsAndThroughput(t *testing.T) {
	factory := func(id int, rng *rand.Rand) (Interactor, func(), error) {
		return &fakeInteractor{delay: time.Millisecond}, func() {}, nil
	}
	res, err := Run(Config{Clients: 4, Warmup: 20 * time.Millisecond, Duration: 150 * time.Millisecond},
		nil, nil, factory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interactions == 0 || res.Requests != res.Interactions*2 {
		t.Fatalf("counts: %+v", res)
	}
	wantRPM := float64(res.Requests) / res.Elapsed.Minutes()
	if res.ThroughputRPM < wantRPM*0.99 || res.ThroughputRPM > wantRPM*1.01 {
		t.Errorf("rpm = %f, want %f", res.ThroughputRPM, wantRPM)
	}
	if res.AvgResponseMs < 0.5 {
		t.Errorf("latency = %f ms, expected >= 1ms delay", res.AvgResponseMs)
	}
}

func TestRunRecordsErrors(t *testing.T) {
	factory := func(id int, rng *rand.Rand) (Interactor, func(), error) {
		return &fakeInteractor{failAt: 3}, func() {}, nil
	}
	res, err := Run(Config{Clients: 2, Warmup: 10 * time.Millisecond, Duration: 60 * time.Millisecond},
		nil, nil, factory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 || res.FirstError == nil {
		t.Fatalf("errors not recorded: %+v", res)
	}
}

func TestRunPropagatesFactoryError(t *testing.T) {
	boom := errors.New("no session")
	cleaned := 0
	factory := func(id int, rng *rand.Rand) (Interactor, func(), error) {
		if id == 2 {
			return nil, nil, boom
		}
		return &fakeInteractor{}, func() { cleaned++ }, nil
	}
	_, err := Run(Config{Clients: 4, Duration: 10 * time.Millisecond}, nil, nil, factory)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if cleaned != 2 {
		t.Errorf("cleanups = %d, want 2 (clients before the failing one)", cleaned)
	}
}

func TestThinkTimeLimitsOfferedLoad(t *testing.T) {
	factory := func(id int, rng *rand.Rand) (Interactor, func(), error) {
		return &fakeInteractor{}, func() {}, nil
	}
	res, err := Run(Config{
		Clients: 2, Warmup: 10 * time.Millisecond, Duration: 200 * time.Millisecond,
		ThinkTime: 50 * time.Millisecond,
	}, nil, nil, factory)
	if err != nil {
		t.Fatal(err)
	}
	// 2 clients with 50ms think time can do at most ~2*200/50 = 8
	// interactions in the window (plus boundary effects).
	if res.Interactions > 12 {
		t.Errorf("think time ignored: %d interactions", res.Interactions)
	}
}

func TestBackendLoadProxy(t *testing.T) {
	e := sqlengine.New("db")
	s := e.NewSession()
	s.ExecSQL("CREATE TABLE t (a INTEGER)")
	s.Close()
	b := backend.New(backend.Config{
		Name:            "db",
		Driver:          &backend.EngineDriver{Engine: e},
		Cost:            backend.DefaultCostModel(500 * time.Microsecond),
		CostParallelism: CostParallelism,
	})
	b.Enable()
	defer b.Close()

	factory := func(id int, rng *rand.Rand) (Interactor, func(), error) {
		return interactorFunc(func() (int, error) {
			_, err := b.Read(0, nil, "SELECT * FROM t")
			return 1, err
		}), func() {}, nil
	}
	res, err := Run(Config{Clients: 8, Warmup: 30 * time.Millisecond, Duration: 200 * time.Millisecond},
		nil, []*backend.Backend{b}, factory)
	if err != nil {
		t.Fatal(err)
	}
	// 8 clients of 3-unit reads (1.5ms) against 2 slots: saturated.
	if res.BackendLoad < 0.5 {
		t.Errorf("backend load = %.2f, expected saturation", res.BackendLoad)
	}
}

type interactorFunc func() (int, error)

func (f interactorFunc) Interaction() (int, error) { return f() }

func TestSessionFactory(t *testing.T) {
	ctrl := cjdbc.NewController("h", 1)
	defer ctrl.Close()
	vdb, err := ctrl.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	vdb.AddInMemoryBackend("db0")
	open := SessionFactory(vdb)
	s, cleanup, err := open()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if _, err := s.Exec("SELECT 1"); err != nil {
		t.Fatal(err)
	}
}
