// Package striping is the RAIDb-0 workload: zero-redundancy placement with
// every table hosted by exactly one backend (min-hosts = 1), the mode the
// paper positions as pure capacity aggregation — no copy to read-balance
// to, no copy to fail over to. A seeded mixed workload runs table-local
// traffic over the stripes and the harness checks the mode's defining
// properties at quiesce: every table lives on exactly its one stripe host,
// write fan-out is 1 (cluster write amplification ~1, unlike replication),
// and, optionally, one stripe is migrated to another backend mid-traffic —
// the AddTableHost/RemoveTableHost pair that RAIDb-0 turns into a pure
// migration because the copy count passes through 2 but starts and ends
// at 1.
package striping

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/balancer"
	"cjdbc/internal/controller"
	"cjdbc/internal/recovery"
	"cjdbc/internal/sqlengine"
)

// Config sizes one striping run.
type Config struct {
	Backends     int
	Tables       int // striped round-robin over the backends
	Writers      int
	OpsPerWriter int
	SeedRows     int
	Seed         int64
	// Migrate moves table s0 from its stripe host to the next backend
	// mid-traffic (AddTableHost, then RemoveTableHost of the old host):
	// a live stripe migration that never drops below one host.
	Migrate bool
}

// Report is a run's outcome.
type Report struct {
	Ops        int64   // client operations completed
	Errors     int64   // operations that returned an error
	Writes     int64   // client write statements issued
	BackendOps []int64 // per-backend executed operations
	// WriteAmplification is backend write executions per client write; in
	// RAIDb-0 every table has one host, so this is ~1 (replication would
	// push it toward the backend count).
	WriteAmplification float64
	// Migrated reports whether the scripted migration completed.
	Migrated bool
	// Violation describes the first broken invariant; "" when the run held
	// every RAIDb-0 property.
	Violation string
}

// stripeHost maps table index to its backend index.
func stripeHost(cfg Config, ti int) int { return ti % cfg.Backends }

// Run executes one RAIDb-0 scenario: cfg.Tables tables striped one-per-host
// over cfg.Backends backends behind one virtual database, a seeded mixed
// workload, and the single-host invariant checks.
func Run(cfg Config) (*Report, error) {
	if cfg.Backends <= 0 {
		cfg.Backends = 3
	}
	if cfg.Tables <= 0 {
		cfg.Tables = cfg.Backends * 2
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 4
	}
	if cfg.OpsPerWriter <= 0 {
		cfg.OpsPerWriter = 50
	}
	if cfg.SeedRows <= 0 {
		cfg.SeedRows = 8
	}

	v := controller.NewVirtualDatabase(controller.VDBConfig{
		Name:        "raidb0",
		Replication: balancer.NewPartialReplication(nil),
		ParallelTx:  true,
		RecoveryLog: recovery.NewMemoryLog(),
	})
	defer v.Close()

	engines := make([]*sqlengine.Engine, cfg.Backends)
	backends := make([]*backend.Backend, cfg.Backends)
	for i := range engines {
		e := sqlengine.New(fmt.Sprintf("db%d", i), sqlengine.WithLockTimeout(10*time.Second))
		s := e.NewSession()
		var hosted []string
		for ti := 0; ti < cfg.Tables; ti++ {
			if stripeHost(cfg, ti) != i {
				continue
			}
			hosted = append(hosted, fmt.Sprintf("s%d", ti))
			if _, err := s.ExecSQL(fmt.Sprintf("CREATE TABLE s%d (id INTEGER PRIMARY KEY, v INTEGER)", ti)); err != nil {
				return nil, fmt.Errorf("striping: seed: %w", err)
			}
			for r := 0; r < cfg.SeedRows; r++ {
				if _, err := s.ExecSQL(fmt.Sprintf("INSERT INTO s%d (id, v) VALUES (%d, 0)", ti, r)); err != nil {
					return nil, fmt.Errorf("striping: seed: %w", err)
				}
			}
		}
		s.Close()
		engines[i] = e
		b := backend.New(backend.Config{
			Name:   fmt.Sprintf("db%d", i),
			Driver: &backend.EngineDriver{Engine: e},
			Tables: hosted,
		})
		backends[i] = b
		if err := v.AddBackend(b); err != nil {
			return nil, err
		}
	}
	if err := v.ValidatePlacement(); err != nil {
		return nil, err
	}
	defer func() {
		for _, b := range backends {
			b.Close()
		}
	}()

	rep := &Report{}
	var writes atomic.Int64
	var wg sync.WaitGroup
	migrateGate := make(chan struct{})
	var gateOnce sync.Once
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(w)))
			s, err := v.NewSession("user", "pw")
			if err != nil {
				atomic.AddInt64(&rep.Errors, 1)
				return
			}
			defer s.Close()
			for i := 0; i < cfg.OpsPerWriter; i++ {
				if i == cfg.OpsPerWriter/4 {
					// A quarter in, let the migration start: it then runs
					// under the remaining three quarters of live traffic.
					gateOnce.Do(func() { close(migrateGate) })
				}
				ti := rng.Intn(cfg.Tables)
				var sql string
				isWrite := true
				switch rng.Intn(5) {
				case 0:
					sql = fmt.Sprintf("INSERT INTO s%d (id, v) VALUES (%d, %d)",
						ti, 1000+w*cfg.OpsPerWriter+i, rng.Intn(100))
				case 1:
					sql = fmt.Sprintf("SELECT v FROM s%d WHERE id = %d", ti, rng.Intn(cfg.SeedRows))
					isWrite = false
				default:
					sql = fmt.Sprintf("UPDATE s%d SET v = %d WHERE id = %d", ti, rng.Intn(100), rng.Intn(cfg.SeedRows))
				}
				if _, err := s.Exec(sql, nil); err != nil {
					atomic.AddInt64(&rep.Errors, 1)
				} else if isWrite {
					writes.Add(1)
				}
				atomic.AddInt64(&rep.Ops, 1)
			}
		}(w)
	}

	var migErr error
	var migWG sync.WaitGroup
	if cfg.Migrate {
		migWG.Add(1)
		go func() {
			defer migWG.Done()
			<-migrateGate
			from := fmt.Sprintf("db%d", stripeHost(cfg, 0))
			to := fmt.Sprintf("db%d", (stripeHost(cfg, 0)+1)%cfg.Backends)
			if err := v.AddTableHost("s0", to); err != nil {
				migErr = fmt.Errorf("striping: migrate add: %w", err)
				return
			}
			if err := v.RemoveTableHost("s0", from); err != nil {
				migErr = fmt.Errorf("striping: migrate remove: %w", err)
				return
			}
			rep.Migrated = true
		}()
	}

	wg.Wait()
	gateOnce.Do(func() { close(migrateGate) })
	migWG.Wait()
	if migErr != nil {
		return nil, migErr
	}

	rep.Writes = writes.Load()
	for _, b := range backends {
		rep.BackendOps = append(rep.BackendOps, b.Ops())
	}

	// Invariants. Every table must be hosted by exactly one backend (the
	// migration target for s0, the stripe host for the rest), materialized
	// there and nowhere else.
	for ti := 0; ti < cfg.Tables; ti++ {
		tbl := fmt.Sprintf("s%d", ti)
		hosts := v.Replication().Hosts(tbl)
		if len(hosts) != 1 {
			rep.Violation = fmt.Sprintf("table %s has %d hosts %v, want exactly 1", tbl, len(hosts), hosts)
			break
		}
		wantHost := stripeHost(cfg, ti)
		if cfg.Migrate && ti == 0 {
			wantHost = (wantHost + 1) % cfg.Backends
		}
		if hosts[0] != fmt.Sprintf("db%d", wantHost) {
			rep.Violation = fmt.Sprintf("table %s hosted on %s, want db%d", tbl, hosts[0], wantHost)
			break
		}
		for bi, e := range engines {
			_, _, err := e.SnapshotTable(tbl)
			if bi == wantHost && err != nil {
				rep.Violation = fmt.Sprintf("stripe host db%d does not materialize %s: %v", bi, tbl, err)
				break
			}
			if bi != wantHost && err == nil {
				rep.Violation = fmt.Sprintf("db%d holds %s outside its stripe", bi, tbl)
				break
			}
		}
		if rep.Violation != "" {
			break
		}
	}

	// Write amplification ~1: each client write executes on one backend.
	// Count backend write executions as total ops minus read-ish traffic —
	// conservatively, just bound total backend ops by client ops plus the
	// migration's bounded bootstrap traffic.
	var backendTotal int64
	for _, n := range rep.BackendOps {
		backendTotal += n
	}
	if rep.Writes > 0 {
		rep.WriteAmplification = float64(backendTotal) / float64(rep.Ops)
	}
	return rep, nil
}
