package striping

import "testing"

// TestStripedWorkloadSingleHostTables runs the RAIDb-0 scenario without any
// placement change: six tables striped over three backends, every table on
// exactly one host, mixed traffic, and the single-copy invariants at quiesce.
func TestStripedWorkloadSingleHostTables(t *testing.T) {
	rep, err := Run(Config{
		Backends:     3,
		Tables:       6,
		Writers:      4,
		OpsPerWriter: 50,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("striping: ops=%d errors=%d writes=%d backendOps=%v amp=%.2f",
		rep.Ops, rep.Errors, rep.Writes, rep.BackendOps, rep.WriteAmplification)
	if rep.Violation != "" {
		t.Fatal(rep.Violation)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d operations failed", rep.Errors)
	}
	// Zero redundancy: cluster-wide backend executions stay ~1 per client
	// operation instead of multiplying by the replica count.
	if rep.WriteAmplification > 1.3 {
		t.Fatalf("write amplification %.2f; RAIDb-0 must not replicate writes", rep.WriteAmplification)
	}
	for bi, n := range rep.BackendOps {
		if n == 0 {
			t.Fatalf("backend db%d served no operations; striping did not spread load", bi)
		}
	}
}

// TestStripedWorkloadLiveMigration repeats the scenario with a live stripe
// migration riding on the traffic: s0 moves from db0 to db1 via AddTableHost
// then RemoveTableHost, the copy count passing through 2 but starting and
// ending at 1, while writers keep hitting it.
func TestStripedWorkloadLiveMigration(t *testing.T) {
	for _, seed := range []int64{11, 29} {
		rep, err := Run(Config{
			Backends:     3,
			Tables:       6,
			Writers:      4,
			OpsPerWriter: 60,
			Seed:         seed,
			Migrate:      true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("striping seed=%d: ops=%d errors=%d migrated=%v backendOps=%v",
			seed, rep.Ops, rep.Errors, rep.Migrated, rep.BackendOps)
		if rep.Violation != "" {
			t.Fatal(rep.Violation)
		}
		if !rep.Migrated {
			t.Fatal("migration did not complete")
		}
		if rep.Errors != 0 {
			t.Fatalf("%d operations failed during the migration", rep.Errors)
		}
	}
}
