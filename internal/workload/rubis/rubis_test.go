package rubis

import (
	"math/rand"
	"testing"

	"cjdbc"
)

func newVDB(t *testing.T) *cjdbc.VirtualDatabase {
	t.Helper()
	ctrl := cjdbc.NewController("rubis-test", 1)
	t.Cleanup(ctrl.Close)
	vdb, err := ctrl.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{Name: "rubis"})
	if err != nil {
		t.Fatal(err)
	}
	if err := vdb.AddInMemoryBackend("db0"); err != nil {
		t.Fatal(err)
	}
	return vdb
}

func TestLoadPopulatesTables(t *testing.T) {
	vdb := newVDB(t)
	sess, _ := vdb.OpenSession("u", "")
	defer sess.Close()
	sc := Scale{Users: 20, Items: 40, Categories: 5, Regions: 3}
	if err := Load(sess, sc, 1); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{
		"users": 20, "items": 40, "categories": 5, "regions": 3, "bids": 120,
	}
	for table, want := range counts {
		rows, err := sess.Query("SELECT COUNT(*) FROM " + table)
		if err != nil {
			t.Fatalf("count %s: %v", table, err)
		}
		rows.Next()
		var n int64
		rows.Scan(&n)
		if n != want {
			t.Errorf("%s rows = %d, want %d", table, n, want)
		}
	}
}

func TestBiddingMixRuns(t *testing.T) {
	vdb := newVDB(t)
	loader, _ := vdb.OpenSession("u", "")
	sc := Scale{Users: 20, Items: 40, Categories: 5, Regions: 3}
	if err := Load(loader, sc, 1); err != nil {
		t.Fatal(err)
	}
	loader.Close()

	sess, _ := vdb.OpenSession("u", "")
	defer sess.Close()
	c := NewClient(sess, sc, rand.New(rand.NewSource(9)), NewIDAllocator(10000))
	total := 0
	for i := 0; i < 300; i++ {
		n, err := c.Interaction()
		if err != nil {
			t.Fatalf("interaction %d: %v", i, err)
		}
		total += n
	}
	if total < 300 {
		t.Errorf("requests = %d", total)
	}
	// Bids were stored and counters bumped.
	rows, _ := sess.Query("SELECT COUNT(*) FROM bids")
	rows.Next()
	var bids int64
	rows.Scan(&bids)
	if bids <= 120 {
		t.Errorf("no new bids stored: %d", bids)
	}
	rows, _ = sess.Query("SELECT MAX(it_nb_bids) FROM items")
	rows.Next()
	var maxBids int64
	rows.Scan(&maxBids)
	if maxBids == 0 {
		t.Error("bid counters never bumped")
	}
}

func TestStoreBidConsistency(t *testing.T) {
	vdb := newVDB(t)
	loader, _ := vdb.OpenSession("u", "")
	sc := Scale{Users: 5, Items: 5, Categories: 2, Regions: 2}
	if err := Load(loader, sc, 1); err != nil {
		t.Fatal(err)
	}
	loader.Close()
	sess, _ := vdb.OpenSession("u", "")
	defer sess.Close()
	c := NewClient(sess, sc, rand.New(rand.NewSource(1)), NewIDAllocator(1000))
	before, _ := sess.Query("SELECT COUNT(*) FROM bids")
	before.Next()
	var nb int64
	before.Scan(&nb)
	if _, err := c.storeBid(); err != nil {
		t.Fatal(err)
	}
	after, _ := sess.Query("SELECT COUNT(*) FROM bids")
	after.Next()
	var na int64
	after.Scan(&na)
	if na != nb+1 {
		t.Errorf("bids %d -> %d", nb, na)
	}
}
