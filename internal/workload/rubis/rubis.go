// Package rubis implements the database side of the RUBiS auction-site
// benchmark (§6.6): an eBay-like schema, a scaled-down loader, and the SQL
// of the bidding mix (80 % read-only, 20 % read-write interactions) used
// to evaluate the query result cache in Table 1.
package rubis

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"cjdbc"
)

// Scale controls the generated database size.
type Scale struct {
	Users      int
	Items      int
	Categories int
	Regions    int
}

// DefaultScale is the scaled-down default.
func DefaultScale() Scale { return Scale{Users: 100, Items: 200, Categories: 10, Regions: 5} }

// Tables lists the RUBiS tables.
var Tables = []string{"users", "items", "categories", "regions", "bids", "comments"}

// SchemaSQL returns the DDL creating the RUBiS schema.
func SchemaSQL() []string {
	return []string{
		`CREATE TABLE regions (r_id INTEGER PRIMARY KEY, r_name VARCHAR)`,
		`CREATE TABLE categories (cat_id INTEGER PRIMARY KEY, cat_name VARCHAR)`,
		`CREATE TABLE users (
			u_id INTEGER PRIMARY KEY,
			u_nickname VARCHAR NOT NULL,
			u_password VARCHAR,
			u_email VARCHAR,
			u_rating INTEGER,
			u_balance FLOAT,
			u_r_id INTEGER)`,
		`CREATE TABLE items (
			it_id INTEGER PRIMARY KEY,
			it_name VARCHAR NOT NULL,
			it_description VARCHAR,
			it_seller INTEGER,
			it_cat_id INTEGER,
			it_initial_price FLOAT,
			it_max_bid FLOAT,
			it_nb_bids INTEGER,
			it_end_date TIMESTAMP)`,
		`CREATE TABLE bids (
			b_id INTEGER PRIMARY KEY,
			b_u_id INTEGER,
			b_it_id INTEGER,
			b_qty INTEGER,
			b_bid FLOAT,
			b_date TIMESTAMP)`,
		`CREATE TABLE comments (
			cm_id INTEGER PRIMARY KEY,
			cm_from INTEGER,
			cm_to INTEGER,
			cm_rating INTEGER,
			cm_text VARCHAR)`,
		`CREATE INDEX idx_items_cat ON items (it_cat_id)`,
		`CREATE INDEX idx_bids_item ON bids (b_it_id)`,
		`CREATE INDEX idx_users_region ON users (u_r_id)`,
		// Ordered (skiplist) views on the auction hot paths: closing-soon
		// item lists (ORDER BY it_end_date LIMIT n) and top-bid lookups
		// (ORDER BY b_bid DESC LIMIT n) run as bounded index scans.
		`CREATE INDEX idx_items_end_date ON items (it_end_date)`,
		`CREATE INDEX idx_bids_bid ON bids (b_bid)`,
	}
}

// Load populates the virtual database through a session.
func Load(sess cjdbc.Session, sc Scale, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for _, ddl := range SchemaSQL() {
		if _, err := sess.Exec(ddl); err != nil {
			return fmt.Errorf("rubis: schema: %w", err)
		}
	}
	batch := func(prefix string, n int, row func(i int) string) error {
		const chunk = 50
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			sql := prefix
			for i := lo; i < hi; i++ {
				if i > lo {
					sql += ", "
				}
				sql += row(i)
			}
			if _, err := sess.Exec(sql); err != nil {
				return fmt.Errorf("rubis: load: %w", err)
			}
		}
		return nil
	}
	if err := batch("INSERT INTO regions (r_id, r_name) VALUES ", sc.Regions, func(i int) string {
		return fmt.Sprintf("(%d, 'region%d')", i+1, i+1)
	}); err != nil {
		return err
	}
	if err := batch("INSERT INTO categories (cat_id, cat_name) VALUES ", sc.Categories, func(i int) string {
		return fmt.Sprintf("(%d, 'category%d')", i+1, i+1)
	}); err != nil {
		return err
	}
	if err := batch("INSERT INTO users (u_id, u_nickname, u_password, u_email, u_rating, u_balance, u_r_id) VALUES ", sc.Users, func(i int) string {
		return fmt.Sprintf("(%d, 'nick%d', 'pw', 'u%d@rubis.org', %d, 0, %d)",
			i+1, i+1, i+1, rng.Intn(10), i%sc.Regions+1)
	}); err != nil {
		return err
	}
	if err := batch("INSERT INTO items (it_id, it_name, it_description, it_seller, it_cat_id, it_initial_price, it_max_bid, it_nb_bids, it_end_date) VALUES ", sc.Items, func(i int) string {
		// Auction deadlines spread over the month so the closing-soon
		// range browse (BETWEEN two dates) selects real subsets.
		return fmt.Sprintf("(%d, 'item%d', 'a fine item %d', %d, %d, %g, %g, %d, '2004-12-%02d 00:00:00')",
			i+1, i+1, i+1, rng.Intn(sc.Users)+1, i%sc.Categories+1,
			float64(5+i%50), float64(5+i%50), 0, i%28+1)
	}); err != nil {
		return err
	}
	nBids := sc.Items * 3
	if err := batch("INSERT INTO bids (b_id, b_u_id, b_it_id, b_qty, b_bid, b_date) VALUES ", nBids, func(i int) string {
		return fmt.Sprintf("(%d, %d, %d, 1, %g, '2004-06-01 00:00:00')",
			i+1, rng.Intn(sc.Users)+1, i/3+1, float64(6+i%60))
	}); err != nil {
		return err
	}
	return nil
}

// Client drives the RUBiS bidding mix against one session.
type Client struct {
	sess    cjdbc.Session
	scale   Scale
	rng     *rand.Rand
	idAlloc *atomic.Int64
}

// NewIDAllocator creates the shared id source for a run.
func NewIDAllocator(start int64) *atomic.Int64 {
	a := &atomic.Int64{}
	a.Store(start)
	return a
}

// NewClient builds a bidding-mix client.
func NewClient(sess cjdbc.Session, sc Scale, rng *rand.Rand, alloc *atomic.Int64) *Client {
	return &Client{sess: sess, scale: sc, rng: rng, idAlloc: alloc}
}

// Interaction runs one interaction of the bidding mix (80 % read-only) and
// returns the number of SQL requests issued.
func (c *Client) Interaction() (int, error) {
	x := c.rng.Float64() * 100
	switch {
	case x < 12: // browse categories
		return c.one("SELECT cat_id, cat_name FROM categories ORDER BY cat_name")
	case x < 24: // search items in category
		return c.one("SELECT it_id, it_name, it_max_bid, it_nb_bids FROM items WHERE it_cat_id = ? ORDER BY it_end_date LIMIT 25",
			c.rng.Intn(c.scale.Categories)+1)
	case x < 32: // browse auctions closing soon: a date-range window over the
		// it_end_date ordered index, the shape RUBiS renders on its front page.
		d := c.rng.Intn(21) + 1
		return c.one("SELECT it_id, it_name, it_max_bid, it_end_date FROM items WHERE it_end_date BETWEEN ? AND ? ORDER BY it_end_date LIMIT 25",
			fmt.Sprintf("2004-12-%02d 00:00:00", d), fmt.Sprintf("2004-12-%02d 23:59:59", d+7))
	case x < 57: // view item
		return c.one("SELECT it_name, it_description, it_initial_price, it_max_bid, it_nb_bids, u_nickname FROM items JOIN users ON it_seller = u_id WHERE it_id = ?",
			c.randItem())
	case x < 70: // view user info + comments
		n, err := c.one("SELECT u_nickname, u_rating FROM users WHERE u_id = ?", c.randUser())
		if err != nil {
			return n, err
		}
		m, err := c.one("SELECT cm_rating, cm_text FROM comments WHERE cm_to = ? LIMIT 10", c.randUser())
		return n + m, err
	case x < 80: // view bid history
		return c.one("SELECT b_bid, b_date, u_nickname FROM bids JOIN users ON b_u_id = u_id WHERE b_it_id = ? ORDER BY b_bid DESC LIMIT 10",
			c.randItem())
	case x < 91: // store bid (read item, insert bid, bump counters)
		return c.storeBid()
	case x < 96: // store comment
		return c.one("INSERT INTO comments (cm_id, cm_from, cm_to, cm_rating, cm_text) VALUES (?, ?, ?, ?, 'nice')",
			c.idAlloc.Add(1), c.randUser(), c.randUser(), c.rng.Intn(5)+1)
	case x < 99: // register item
		return c.one("INSERT INTO items (it_id, it_name, it_description, it_seller, it_cat_id, it_initial_price, it_max_bid, it_nb_bids, it_end_date) VALUES (?, ?, 'fresh', ?, ?, ?, ?, 0, '2004-12-31 00:00:00')",
			c.idAlloc.Add(1), fmt.Sprintf("item-new-%d", c.idAlloc.Add(1)), c.randUser(),
			c.rng.Intn(c.scale.Categories)+1, 10.0, 10.0)
	default: // register user
		id := c.idAlloc.Add(1)
		return c.one("INSERT INTO users (u_id, u_nickname, u_password, u_email, u_rating, u_balance, u_r_id) VALUES (?, ?, 'pw', ?, 0, 0, ?)",
			id, fmt.Sprintf("nick-new-%d", id), fmt.Sprintf("n%d@rubis.org", id), c.rng.Intn(c.scale.Regions)+1)
	}
}

func (c *Client) one(sql string, args ...any) (int, error) {
	if _, err := c.sess.Exec(sql, args...); err != nil {
		return 0, err
	}
	return 1, nil
}

func (c *Client) randItem() int { return c.rng.Intn(c.scale.Items) + 1 }
func (c *Client) randUser() int { return c.rng.Intn(c.scale.Users) + 1 }

func (c *Client) storeBid() (int, error) {
	n := 0
	it := c.randItem()
	if _, err := c.sess.Query("SELECT it_max_bid, it_nb_bids FROM items WHERE it_id = ?", it); err != nil {
		return n, err
	}
	n++
	bid := 10 + c.rng.Float64()*90
	if _, err := c.sess.Exec("INSERT INTO bids (b_id, b_u_id, b_it_id, b_qty, b_bid, b_date) VALUES (?, ?, ?, 1, ?, NOW())",
		c.idAlloc.Add(1), c.randUser(), it, bid); err != nil {
		return n, err
	}
	n++
	if _, err := c.sess.Exec("UPDATE items SET it_max_bid = ?, it_nb_bids = it_nb_bids + 1 WHERE it_id = ?", bid, it); err != nil {
		return n, err
	}
	n++
	return n, nil
}
