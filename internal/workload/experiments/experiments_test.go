package experiments

import (
	"fmt"
	"testing"
	"time"

	"cjdbc/internal/workload/rubis"
	"cjdbc/internal/workload/tpcw"
)

// quickCfg shrinks the sweep so the shape checks run in CI time.
func quickCfg(mix tpcw.Mix) TPCWConfig {
	cfg := DefaultTPCWConfig(mix)
	cfg.Scale = tpcw.Scale{Items: 60, Customers: 60, Authors: 12}
	cfg.Warmup = 100 * time.Millisecond
	cfg.Duration = 500 * time.Millisecond
	return cfg
}

// retryShape runs a timing-sensitive workload-shape measurement up to
// attempts times: the simulated cost model's shapes hold reliably on an
// idle machine, but when the whole test suite shares one CPU a measurement
// can be distorted by unrelated packages' load, so a failed attempt is
// re-measured instead of failing the suite. The asserted property must
// still hold on a full fresh measurement to pass.
func retryShape(t *testing.T, attempts int, run func() error) {
	t.Helper()
	var err error
	for i := 0; i < attempts; i++ {
		if err = run(); err == nil {
			return
		}
		t.Logf("attempt %d/%d: %v (re-measuring)", i+1, attempts, err)
	}
	t.Fatal(err)
}

func TestTPCWThroughputScalesWithBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	retryShape(t, 3, func() error {
		cfg := quickCfg(tpcw.Shopping)
		p1, err := RunTPCWPoint(cfg, "full", 1)
		if err != nil {
			return err
		}
		p4, err := RunTPCWPoint(cfg, "full", 4)
		if err != nil {
			return err
		}
		t.Logf("1 node: %.0f rq/min, 4 nodes: %.0f rq/min", p1.ThroughputRPM, p4.ThroughputRPM)
		if p4.ThroughputRPM < p1.ThroughputRPM*2 {
			return fmt.Errorf("shopping mix did not scale: 1 node %.0f, 4 nodes %.0f rq/min",
				p1.ThroughputRPM, p4.ThroughputRPM)
		}
		if p1.Errors > p1.Interactions/10 || p4.Errors > p4.Interactions/10 {
			return fmt.Errorf("too many errors: %d/%d and %d/%d",
				p1.Errors, p1.Interactions, p4.Errors, p4.Interactions)
		}
		return nil
	})
}

func TestTPCWPartialBeatsFullOnBrowsing(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	// Figure 10's claim: with the best-seller temporary table confined to
	// two backends, partial replication outperforms full replication.
	retryShape(t, 3, func() error {
		cfg := quickCfg(tpcw.Browsing)
		full, err := RunTPCWPoint(cfg, "full", 4)
		if err != nil {
			return err
		}
		partial, err := RunTPCWPoint(cfg, "partial", 4)
		if err != nil {
			return err
		}
		t.Logf("full: %.0f rq/min, partial: %.0f rq/min", full.ThroughputRPM, partial.ThroughputRPM)
		if partial.ThroughputRPM <= full.ThroughputRPM {
			return fmt.Errorf("partial (%.0f) should beat full (%.0f) on the browsing mix",
				partial.ThroughputRPM, full.ThroughputRPM)
		}
		return nil
	})
}

func TestTPCWSingleBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	cfg := quickCfg(tpcw.Shopping)
	p, err := runTPCWSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Replication != "single" || p.ThroughputRPM <= 0 {
		t.Fatalf("baseline: %+v", p)
	}
	if p.Errors > p.Interactions/10 {
		t.Errorf("baseline errors: %d/%d", p.Errors, p.Interactions)
	}
}

func TestTable1CacheShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	retryShape(t, 3, func() error {
		cfg := DefaultTable1Config()
		cfg.Scale = rubis.Scale{Users: 50, Items: 100, Categories: 8, Regions: 4}
		cfg.Clients = 30
		cfg.Warmup = 80 * time.Millisecond
		cfg.Duration = 400 * time.Millisecond
		rows, err := RunTable1(cfg)
		if err != nil {
			return err
		}
		if len(rows) != 3 {
			return fmt.Errorf("rows = %d", len(rows))
		}
		no, coh, rel := rows[0], rows[1], rows[2]
		t.Logf("no cache: %.0f rq/min %.2f ms DB %.0f%%", no.ThroughputRPM, no.AvgResponseMs, no.BackendLoad*100)
		t.Logf("coherent: %.0f rq/min %.2f ms DB %.0f%% ctrl %.0f%%", coh.ThroughputRPM, coh.AvgResponseMs, coh.BackendLoad*100, coh.CtrlLoad*100)
		t.Logf("relaxed:  %.0f rq/min %.2f ms DB %.0f%% ctrl %.0f%%", rel.ThroughputRPM, rel.AvgResponseMs, rel.BackendLoad*100, rel.CtrlLoad*100)

		// Table 1 shape: with a fixed offered load (think time), caching must
		// not lose throughput, must cut response time, and must offload the
		// database — hardest with the relaxed cache.
		if coh.ThroughputRPM < no.ThroughputRPM*0.9 {
			return fmt.Errorf("coherent cache lowered throughput: %.0f < %.0f", coh.ThroughputRPM, no.ThroughputRPM)
		}
		if coh.AvgResponseMs > no.AvgResponseMs {
			return fmt.Errorf("coherent cache slower than no cache: %.2f > %.2f ms", coh.AvgResponseMs, no.AvgResponseMs)
		}
		if rel.AvgResponseMs > coh.AvgResponseMs {
			return fmt.Errorf("relaxed cache slower than coherent: %.2f > %.2f ms", rel.AvgResponseMs, coh.AvgResponseMs)
		}
		if rel.BackendLoad >= no.BackendLoad {
			return fmt.Errorf("relaxed cache did not offload the DB: %.2f >= %.2f", rel.BackendLoad, no.BackendLoad)
		}
		if coh.BackendLoad >= no.BackendLoad {
			return fmt.Errorf("coherent cache did not offload the DB: %.2f >= %.2f", coh.BackendLoad, no.BackendLoad)
		}
		return nil
	})
}

func TestFormatters(t *testing.T) {
	pts := []TPCWPoint{{Replication: "full", Nodes: 2}}
	if s := FormatTPCWPoints(tpcw.Browsing, pts); len(s) == 0 {
		t.Error("empty figure format")
	}
	rows := []Table1Row{{Config: "no cache"}}
	if s := FormatTable1(rows); len(s) == 0 {
		t.Error("empty table format")
	}
}
