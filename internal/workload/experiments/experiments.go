// Package experiments regenerates the paper's evaluation (§6): Figures 10,
// 11 and 12 (TPC-W maximum throughput versus number of backends for full
// and partial replication, plus the single-database baseline) and Table 1
// (RUBiS bidding mix with the query result cache off, coherent, and
// relaxed). Absolute numbers depend on the simulated service-cost scale;
// the shapes — speedups, crossovers, the best-seller effect, the cache's
// CPU offload — are the reproduction targets.
package experiments

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"cjdbc"
	"cjdbc/internal/backend"
	"cjdbc/internal/sqlengine"
	"cjdbc/internal/sqlparser"
	"cjdbc/internal/sqlval"
	"cjdbc/internal/workload/harness"
	"cjdbc/internal/workload/rubis"
	"cjdbc/internal/workload/tpcw"
)

// TPCWConfig parameterizes one figure sweep.
type TPCWConfig struct {
	Mix            tpcw.Mix
	MaxNodes       int           // sweep 1..MaxNodes backends
	Scale          tpcw.Scale    // database size
	CostScale      time.Duration // wall time of one service-cost unit
	ClientsPerNode int           // emulated browsers per backend
	BaseClients    int           // additional flat client count
	Warmup         time.Duration
	Duration       time.Duration
	Seed           int64
	// ParallelTx / EarlyResponse match the paper's TPC-W configuration
	// (§6.2: parallel transactions + early response to updates/commits);
	// the ablation benches flip them.
	DisableParallelTx bool
	EarlyResponse     string
}

// DefaultTPCWConfig returns the configuration used by the figure benches.
// CostScale is chosen so the simulated service time dominates the real CPU
// time of the in-process engines by more than an order of magnitude; this
// is what lets a single-core CI machine measure the scaling of a simulated
// six-machine cluster (see DESIGN.md, substitutions).
func DefaultTPCWConfig(mix tpcw.Mix) TPCWConfig {
	return TPCWConfig{
		Mix:            mix,
		MaxNodes:       6,
		Scale:          tpcw.DefaultScale(),
		CostScale:      1200 * time.Microsecond,
		ClientsPerNode: 12,
		BaseClients:    10,
		Warmup:         250 * time.Millisecond,
		Duration:       time.Second,
		Seed:           42,
		EarlyResponse:  "first",
	}
}

// TPCWPoint is one measured configuration of a figure.
type TPCWPoint struct {
	Replication string // "single", "full", "partial"
	Nodes       int
	harness.Result
}

// RunTPCWFigure produces every point of one of Figures 10-12: the
// single-database baseline, then full and partial replication from 1 to
// MaxNodes backends.
func RunTPCWFigure(cfg TPCWConfig) ([]TPCWPoint, error) {
	var points []TPCWPoint
	single, err := runTPCWSingle(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: single baseline: %w", err)
	}
	points = append(points, single)
	for _, repl := range []string{"full", "partial"} {
		for n := 1; n <= cfg.MaxNodes; n++ {
			p, err := RunTPCWPoint(cfg, repl, n)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s %d nodes: %w", repl, n, err)
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// RunTPCWPoint measures one (replication, nodes) configuration.
func RunTPCWPoint(cfg TPCWConfig, repl string, nodes int) (TPCWPoint, error) {
	ctrl := cjdbc.NewController("bench-ctrl", 1)
	defer ctrl.Close()

	vcfg := cjdbc.VirtualDatabaseConfig{
		Name:                        "tpcw",
		LoadBalancer:                "lprf",
		EarlyResponse:               cfg.EarlyResponse,
		DisableParallelTransactions: cfg.DisableParallelTx,
	}
	if repl == "partial" && nodes >= 2 {
		// The Figure 10 configuration: the order-path tables (and with
		// them the best-seller temporary tables) live on two backends
		// only; everything else is replicated everywhere.
		pr := make(map[string][]string)
		all := make([]string, nodes)
		for i := range all {
			all[i] = fmt.Sprintf("db%d", i)
		}
		for _, t := range tpcw.Tables {
			pr[t] = all
		}
		for _, t := range tpcw.OrderTables {
			pr[t] = all[:2]
		}
		vcfg.PartialReplication = pr
	}
	vdb, err := ctrl.CreateVirtualDatabase(vcfg)
	if err != nil {
		return TPCWPoint{}, err
	}
	for i := 0; i < nodes; i++ {
		if err := vdb.AddInMemoryBackend(fmt.Sprintf("db%d", i),
			cjdbc.WithServiceCost(cfg.CostScale),
			cjdbc.WithCostParallelism(harness.CostParallelism)); err != nil {
			return TPCWPoint{}, err
		}
	}
	loader, err := vdb.OpenSession("load", "")
	if err != nil {
		return TPCWPoint{}, err
	}
	if err := tpcw.Load(loader, cfg.Scale, cfg.Seed); err != nil {
		loader.Close()
		return TPCWPoint{}, err
	}
	loader.Close()

	alloc := tpcw.NewIDAllocator(int64(cfg.Scale.Items+cfg.Scale.Customers+cfg.Scale.Orders()*4) + 1000)
	factory := func(id int, rng *rand.Rand) (harness.Interactor, func(), error) {
		sess, err := vdb.OpenSession("bench", "")
		if err != nil {
			return nil, nil, err
		}
		c := tpcw.NewClient(id, sess, cfg.Scale, cfg.Mix, rng, alloc)
		return c, func() { sess.Close() }, nil
	}
	res, err := harness.Run(harness.Config{
		Clients:  cfg.BaseClients + cfg.ClientsPerNode*nodes,
		Warmup:   cfg.Warmup,
		Duration: cfg.Duration,
		Seed:     cfg.Seed,
	}, vdb.Internal(), vdb.Internal().Backends(), factory)
	if err != nil {
		return TPCWPoint{}, err
	}
	return TPCWPoint{Replication: repl, Nodes: nodes, Result: res}, nil
}

// runTPCWSingle measures the paper's "single database without C-JDBC"
// baseline: clients talk to one backend directly, no controller involved.
func runTPCWSingle(cfg TPCWConfig) (TPCWPoint, error) {
	eng, b, err := newCostedBackend("single", cfg.CostScale)
	if err != nil {
		return TPCWPoint{}, err
	}
	defer b.Close()
	_ = eng

	loadSess := newDirectSession(b)
	if err := tpcw.Load(loadSess, cfg.Scale, cfg.Seed); err != nil {
		return TPCWPoint{}, err
	}
	loadSess.Close()

	alloc := tpcw.NewIDAllocator(int64(cfg.Scale.Items+cfg.Scale.Customers+cfg.Scale.Orders()*4) + 1000)
	factory := func(id int, rng *rand.Rand) (harness.Interactor, func(), error) {
		sess := newDirectSession(b)
		c := tpcw.NewClient(id, sess, cfg.Scale, cfg.Mix, rng, alloc)
		return c, func() { sess.Close() }, nil
	}
	res, err := harness.Run(harness.Config{
		Clients:  cfg.BaseClients + cfg.ClientsPerNode,
		Warmup:   cfg.Warmup,
		Duration: cfg.Duration,
		Seed:     cfg.Seed,
	}, nil, []*backend.Backend{b}, factory)
	if err != nil {
		return TPCWPoint{}, err
	}
	return TPCWPoint{Replication: "single", Nodes: 1, Result: res}, nil
}

func newCostedBackend(name string, scale time.Duration) (*backend.EngineDriver, *backend.Backend, error) {
	drv := &backend.EngineDriver{Engine: sqlengine.New(name)}
	b := backend.New(backend.Config{
		Name:            name,
		Driver:          drv,
		Cost:            backend.DefaultCostModel(scale),
		CostParallelism: harness.CostParallelism,
	})
	b.Enable()
	return drv, b, nil
}

// Table1Config parameterizes the RUBiS cache experiment.
type Table1Config struct {
	Clients   int
	Scale     rubis.Scale
	CostScale time.Duration
	Warmup    time.Duration
	Duration  time.Duration
	Seed      int64
	Staleness time.Duration // relaxed-cache staleness limit (paper: 1 min)
	// ThinkTime emulates browser pauses, fixing the offered load across
	// the three cache configurations as the paper's 450 clients did.
	ThinkTime time.Duration
}

// DefaultTable1Config returns the configuration used by the Table 1 bench.
// The paper emulates 450 clients; the default here is scaled with the
// database so the single backend saturates the same way.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		Clients:   60,
		Scale:     rubis.DefaultScale(),
		CostScale: 1200 * time.Microsecond,
		// The cache must be warm before measuring, as it was in the
		// paper's steady-state runs.
		Warmup:    1200 * time.Millisecond,
		Duration:  time.Second,
		Seed:      7,
		Staleness: time.Minute,
		ThinkTime: 100 * time.Millisecond,
	}
}

// Table1Row is one column of Table 1.
type Table1Row struct {
	Config string // "no cache", "coherent cache", "relaxed cache"
	harness.Result
}

// RunTable1 measures the RUBiS bidding mix on a single backend with the
// query result cache disabled, coherent, and relaxed (§6.6).
func RunTable1(cfg Table1Config) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, 3)
	for _, mode := range []string{"no cache", "coherent cache", "relaxed cache"} {
		res, err := RunTable1Mode(cfg, mode, "table")
		if err != nil {
			return nil, fmt.Errorf("experiments: table1 %s: %w", mode, err)
		}
		rows = append(rows, Table1Row{Config: mode, Result: res})
	}
	return rows, nil
}

// RunTable1Mode measures one cache configuration of Table 1; granularity
// selects the invalidation granularity ("database", "table" or "column")
// for the cache ablation bench.
func RunTable1Mode(cfg Table1Config, mode, granularity string) (harness.Result, error) {
	ctrl := cjdbc.NewController("rubis-ctrl", 1)
	defer ctrl.Close()
	vcfg := cjdbc.VirtualDatabaseConfig{
		Name:          "rubis",
		LoadBalancer:  "lprf",
		EarlyResponse: "first",
		// Controller CPU accounting: serving a hit and invalidating
		// entries is controller work; these drive the "C-JDBC CPU load"
		// row. They are accounted, not slept.
		CtrlCostPerRequest:      30 * time.Microsecond,
		CtrlCostPerCacheHit:     60 * time.Microsecond,
		CtrlCostPerInvalidation: 150 * time.Microsecond,
	}
	switch mode {
	case "coherent cache":
		vcfg.Cache = &cjdbc.CacheConfig{Granularity: granularity, MaxEntries: 16384}
	case "relaxed cache":
		vcfg.Cache = &cjdbc.CacheConfig{Granularity: granularity, MaxEntries: 16384, Staleness: cfg.Staleness}
	}
	vdb, err := ctrl.CreateVirtualDatabase(vcfg)
	if err != nil {
		return harness.Result{}, err
	}
	if err := vdb.AddInMemoryBackend("mysql-1",
		cjdbc.WithServiceCost(cfg.CostScale),
		cjdbc.WithCostParallelism(harness.CostParallelism)); err != nil {
		return harness.Result{}, err
	}
	loader, err := vdb.OpenSession("load", "")
	if err != nil {
		return harness.Result{}, err
	}
	if err := rubis.Load(loader, cfg.Scale, cfg.Seed); err != nil {
		loader.Close()
		return harness.Result{}, err
	}
	loader.Close()

	alloc := rubis.NewIDAllocator(int64(cfg.Scale.Users+cfg.Scale.Items*4) + 1000)
	factory := func(id int, rng *rand.Rand) (harness.Interactor, func(), error) {
		sess, err := vdb.OpenSession("bench", "")
		if err != nil {
			return nil, nil, err
		}
		return rubis.NewClient(sess, cfg.Scale, rng, alloc), func() { sess.Close() }, nil
	}
	return harness.Run(harness.Config{
		Clients:   cfg.Clients,
		Warmup:    cfg.Warmup,
		Duration:  cfg.Duration,
		Seed:      cfg.Seed,
		ThinkTime: cfg.ThinkTime,
	}, vdb.Internal(), vdb.Internal().Backends(), factory)
}

// directTxSeq allocates transaction ids for baseline sessions; it is
// shared so concurrent clients never collide on one backend transaction.
var directTxSeq atomic.Uint64

// directSession adapts a bare backend to the cjdbc.Session interface for
// the single-database baseline (no controller in the path).
type directSession struct {
	b      *backend.Backend
	txID   uint64
	closed bool
}

func newDirectSession(b *backend.Backend) *directSession {
	return &directSession{b: b}
}

var _ cjdbc.Session = (*directSession)(nil)

// Exec parses and routes one statement straight to the backend.
func (d *directSession) Exec(sql string, args ...any) (*cjdbc.Rows, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	if len(args) > 0 {
		vals := make([]sqlval.Value, len(args))
		for i, a := range args {
			vals[i], err = anyToValue(a)
			if err != nil {
				return nil, err
			}
		}
		if err := sqlparser.BindParams(st, vals); err != nil {
			return nil, err
		}
		sql = sqlparser.Render(st)
	}
	switch sqlparser.Classify(st) {
	case sqlparser.ClassBegin:
		d.txID = directTxSeq.Add(1)
		return cjdbc.NewRows(nil), nil
	case sqlparser.ClassCommit, sqlparser.ClassRollback:
		tx := d.txID
		d.txID = 0
		out := <-d.b.EnqueueWrite(tx, sqlparser.Classify(st), st, sql)
		return cjdbc.NewRows(out.Res), out.Err
	case sqlparser.ClassRead:
		res, err := d.b.Read(d.txID, st, sql)
		return cjdbc.NewRows(res), err
	default:
		out := <-d.b.EnqueueWrite(d.txID, sqlparser.ClassWrite, st, sql)
		return cjdbc.NewRows(out.Res), out.Err
	}
}

// Query is Exec.
func (d *directSession) Query(sql string, args ...any) (*cjdbc.Rows, error) {
	return d.Exec(sql, args...)
}

// Begin starts a transaction.
func (d *directSession) Begin() error { _, err := d.Exec("BEGIN"); return err }

// Commit commits.
func (d *directSession) Commit() error { _, err := d.Exec("COMMIT"); return err }

// Rollback aborts.
func (d *directSession) Rollback() error { _, err := d.Exec("ROLLBACK"); return err }

// Close aborts any open transaction.
func (d *directSession) Close() error {
	if d.txID != 0 {
		d.b.AbortTx(d.txID)
		d.txID = 0
	}
	d.closed = true
	return nil
}

func anyToValue(a any) (sqlval.Value, error) {
	switch x := a.(type) {
	case nil:
		return sqlval.Null, nil
	case int:
		return sqlval.Int(int64(x)), nil
	case int64:
		return sqlval.Int(x), nil
	case float64:
		return sqlval.Float(x), nil
	case string:
		return sqlval.String_(x), nil
	case bool:
		return sqlval.Bool(x), nil
	case time.Time:
		return sqlval.Time(x), nil
	case []byte:
		return sqlval.Bytes(x), nil
	default:
		return sqlval.Null, fmt.Errorf("experiments: unsupported arg type %T", a)
	}
}

// FormatTPCWPoints renders figure points as the rows the paper plots.
func FormatTPCWPoints(mix tpcw.Mix, pts []TPCWPoint) string {
	out := fmt.Sprintf("TPC-W %s mix (%.0f%% read-only) — max throughput in SQL requests/minute\n",
		mix, tpcw.Mix(mix).ReadOnlyFraction()*100)
	out += fmt.Sprintf("%-10s %-6s %14s %12s %10s %8s\n", "repl", "nodes", "rq/min", "resp(ms)", "DB load", "errors")
	for _, p := range pts {
		out += fmt.Sprintf("%-10s %-6d %14.0f %12.2f %9.0f%% %8d\n",
			p.Replication, p.Nodes, p.ThroughputRPM, p.AvgResponseMs, p.BackendLoad*100, p.Errors)
	}
	return out
}

// FormatTable1 renders the RUBiS cache comparison as Table 1.
func FormatTable1(rows []Table1Row) string {
	out := "RUBiS bidding mix — query result caching on a single backend (Table 1)\n"
	out += fmt.Sprintf("%-16s %14s %12s %10s %12s\n", "config", "rq/min", "resp(ms)", "DB CPU", "C-JDBC CPU")
	for _, r := range rows {
		out += fmt.Sprintf("%-16s %14.0f %12.2f %9.0f%% %11.0f%%\n",
			r.Config, r.ThroughputRPM, r.AvgResponseMs, r.BackendLoad*100, r.CtrlLoad*100)
	}
	return out
}
