package tpcw

import (
	"fmt"
	"math/rand"
	"testing"

	"cjdbc"
)

func newVDB(t *testing.T) *cjdbc.VirtualDatabase {
	t.Helper()
	ctrl := cjdbc.NewController("tpcw-test", 1)
	t.Cleanup(ctrl.Close)
	vdb, err := ctrl.CreateVirtualDatabase(cjdbc.VirtualDatabaseConfig{Name: "tpcw"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := vdb.AddInMemoryBackend(fmt.Sprintf("db%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return vdb
}

func TestLoadPopulatesAllTables(t *testing.T) {
	vdb := newVDB(t)
	sess, _ := vdb.OpenSession("u", "")
	defer sess.Close()
	sc := Scale{Items: 30, Customers: 20, Authors: 5}
	if err := Load(sess, sc, 1); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{
		"item": 30, "customer": 20, "author": 5, "address": 20,
		"orders": int64(sc.Orders()), "order_line": int64(sc.Orders() * 3),
		"cc_xacts": int64(sc.Orders()),
	}
	for table, want := range counts {
		rows, err := sess.Query("SELECT COUNT(*) FROM " + table)
		if err != nil {
			t.Fatalf("count %s: %v", table, err)
		}
		rows.Next()
		var n int64
		rows.Scan(&n)
		if n != want {
			t.Errorf("%s rows = %d, want %d", table, n, want)
		}
	}
}

func TestAllInteractionsExecute(t *testing.T) {
	vdb := newVDB(t)
	loader, _ := vdb.OpenSession("u", "")
	sc := Scale{Items: 30, Customers: 20, Authors: 5}
	if err := Load(loader, sc, 1); err != nil {
		t.Fatal(err)
	}
	loader.Close()

	sess, _ := vdb.OpenSession("u", "")
	defer sess.Close()
	alloc := NewIDAllocator(10000)
	c := NewClient(0, sess, sc, Shopping, rand.New(rand.NewSource(2)), alloc)

	// Force every interaction type at least once.
	runs := []struct {
		name string
		f    func() (int, error)
	}{
		{"home", c.home},
		{"newProducts", c.newProducts},
		{"bestSellers", c.bestSellers},
		{"productDetail", c.productDetail},
		{"search", c.search},
		{"orderInquiry", c.orderInquiry},
		{"shoppingCart", c.shoppingCart},
		{"customerRegistration", c.customerRegistration},
		{"buyRequest", c.buyRequest},
		{"buyConfirm", c.buyConfirm},
		{"adminUpdate", c.adminUpdate},
	}
	for _, r := range runs {
		n, err := r.f()
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if n == 0 {
			t.Errorf("%s issued no SQL requests", r.name)
		}
	}
	// The buyConfirm left a consistent order behind.
	rows, err := sess.Query("SELECT COUNT(*) FROM orders WHERE o_status = 'pending'")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var pending int64
	rows.Scan(&pending)
	if pending != 1 {
		t.Errorf("pending orders = %d", pending)
	}
}

func TestMixReadOnlyFractions(t *testing.T) {
	cases := map[Mix]float64{Browsing: 0.95, Shopping: 0.80, Ordering: 0.50}
	for mix, want := range cases {
		got := mix.ReadOnlyFraction()
		if got < want-0.03 || got > want+0.03 {
			t.Errorf("%s read-only fraction = %.3f, want ~%.2f", mix, got, want)
		}
	}
}

func TestMixDrawsFollowWeights(t *testing.T) {
	vdb := newVDB(t)
	sess, _ := vdb.OpenSession("u", "")
	defer sess.Close()
	c := NewClient(0, sess, DefaultScale(), Browsing, rand.New(rand.NewSource(3)), NewIDAllocator(1))
	counts := make(map[interaction]int)
	for i := 0; i < 20000; i++ {
		counts[c.pick()]++
	}
	// Home should be ~29% of browsing draws.
	frac := float64(counts[iHome]) / 20000
	if frac < 0.26 || frac > 0.32 {
		t.Errorf("home fraction = %.3f, want ~0.29", frac)
	}
	// Best sellers ~11%.
	frac = float64(counts[iBestSellers]) / 20000
	if frac < 0.08 || frac > 0.14 {
		t.Errorf("best-seller fraction = %.3f, want ~0.11", frac)
	}
}

func TestInteractionsKeepReplicasConsistent(t *testing.T) {
	vdb := newVDB(t)
	loader, _ := vdb.OpenSession("u", "")
	sc := Scale{Items: 20, Customers: 10, Authors: 4}
	if err := Load(loader, sc, 1); err != nil {
		t.Fatal(err)
	}
	loader.Close()

	sess, _ := vdb.OpenSession("u", "")
	alloc := NewIDAllocator(10000)
	c := NewClient(0, sess, sc, Ordering, rand.New(rand.NewSource(4)), alloc)
	for i := 0; i < 120; i++ {
		if _, err := c.Interaction(); err != nil {
			t.Fatalf("interaction %d: %v", i, err)
		}
	}
	sess.Close()

	// Compare row counts of every table across the two backends.
	bs := vdb.Internal().Backends()
	for _, table := range Tables {
		var counts []int64
		for _, b := range bs {
			res, err := b.Read(0, nil, "SELECT COUNT(*) FROM "+table)
			if err != nil {
				t.Fatalf("%s on %s: %v", table, b.Name(), err)
			}
			counts = append(counts, res.Rows[0][0].I)
		}
		if counts[0] != counts[1] {
			t.Errorf("table %s diverged: %v", table, counts)
		}
	}
}

func TestIDAllocatorUnique(t *testing.T) {
	a := NewIDAllocator(100)
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		id := a.Next()
		if id <= 100 || seen[id] {
			t.Fatalf("bad id %d", id)
		}
		seen[id] = true
	}
}
