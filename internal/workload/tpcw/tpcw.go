// Package tpcw implements the database side of the TPC-W transactional web
// benchmark (§6.2): the online-bookstore schema, a scaled-down data loader,
// and the SQL of the 14 web interactions grouped into the browsing,
// shopping and ordering mixes (95 %, 80 % and 50 % read-only
// respectively). The paper drives these interactions from servlets; the
// database tier sees exactly the SQL reproduced here, which is the level at
// which throughput in "SQL requests per minute" is measured.
package tpcw

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"cjdbc"
)

// Scale controls the generated database size. The paper uses 10,000 items
// and 288,000 customers (350 MB on MySQL); the defaults here are scaled
// down so sweeps finish quickly, preserving the ratios that matter
// (orders ≈ 0.9 × customers, ~3 lines per order).
type Scale struct {
	Items     int
	Customers int
	Authors   int
}

// DefaultScale is the scaled-down default.
func DefaultScale() Scale { return Scale{Items: 100, Customers: 100, Authors: 25} }

// Orders derives the initial order count.
func (s Scale) Orders() int { return s.Customers * 9 / 10 }

// Tables lists the TPC-W tables, used to build partial replication maps.
var Tables = []string{
	"customer", "address", "author", "item",
	"orders", "order_line", "cc_xacts",
	"shopping_cart", "shopping_cart_line",
}

// OrderTables are the order-path tables that partial replication confines
// to a subset of the backends (the Figure 10 configuration limiting
// best-seller temporary tables to two backends).
var OrderTables = []string{"orders", "order_line", "cc_xacts"}

// SchemaSQL returns the DDL creating the TPC-W schema.
func SchemaSQL() []string {
	return []string{
		`CREATE TABLE customer (
			c_id INTEGER PRIMARY KEY,
			c_uname VARCHAR NOT NULL,
			c_passwd VARCHAR NOT NULL,
			c_fname VARCHAR,
			c_lname VARCHAR,
			c_email VARCHAR,
			c_since TIMESTAMP,
			c_discount FLOAT,
			c_addr_id INTEGER)`,
		`CREATE TABLE address (
			addr_id INTEGER PRIMARY KEY,
			addr_street VARCHAR,
			addr_city VARCHAR,
			addr_state VARCHAR,
			addr_zip VARCHAR,
			addr_country VARCHAR)`,
		`CREATE TABLE author (
			a_id INTEGER PRIMARY KEY,
			a_fname VARCHAR,
			a_lname VARCHAR)`,
		`CREATE TABLE item (
			i_id INTEGER PRIMARY KEY,
			i_title VARCHAR NOT NULL,
			i_a_id INTEGER,
			i_subject VARCHAR,
			i_pub_date TIMESTAMP,
			i_cost FLOAT,
			i_srp FLOAT,
			i_stock INTEGER,
			i_isbn VARCHAR)`,
		`CREATE TABLE orders (
			o_id INTEGER PRIMARY KEY,
			o_c_id INTEGER,
			o_date TIMESTAMP,
			o_sub_total FLOAT,
			o_total FLOAT,
			o_status VARCHAR)`,
		`CREATE TABLE order_line (
			ol_id INTEGER PRIMARY KEY,
			ol_o_id INTEGER,
			ol_i_id INTEGER,
			ol_qty INTEGER,
			ol_discount FLOAT)`,
		`CREATE TABLE cc_xacts (
			cx_o_id INTEGER PRIMARY KEY,
			cx_type VARCHAR,
			cx_amount FLOAT,
			cx_auth_date TIMESTAMP)`,
		`CREATE TABLE shopping_cart (
			sc_id INTEGER PRIMARY KEY,
			sc_time TIMESTAMP,
			sc_c_id INTEGER)`,
		`CREATE TABLE shopping_cart_line (
			scl_id INTEGER PRIMARY KEY,
			scl_sc_id INTEGER,
			scl_i_id INTEGER,
			scl_qty INTEGER)`,
		`CREATE INDEX idx_item_author ON item (i_a_id)`,
		`CREATE INDEX idx_orders_cust ON orders (o_c_id)`,
		`CREATE INDEX idx_ol_order ON order_line (ol_o_id)`,
		`CREATE INDEX idx_ol_item ON order_line (ol_i_id)`,
		`CREATE INDEX idx_scl_cart ON shopping_cart_line (scl_sc_id)`,
		// Single-column indexes carry an ordered (skiplist) view: the browse
		// mix's subject filters, new-products date ranges and best-seller
		// ORDER BY ... LIMIT queries plan as bounded index scans.
		`CREATE INDEX idx_item_subject ON item (i_subject)`,
		`CREATE INDEX idx_item_pub_date ON item (i_pub_date)`,
		`CREATE INDEX idx_item_title ON item (i_title)`,
		`CREATE INDEX idx_orders_date ON orders (o_date)`,
	}
}

var subjects = []string{
	"ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS",
	"COOKING", "HEALTH", "HISTORY", "HOME", "HUMOR",
}

// Load populates the virtual database through a session so that every
// backend receives identical data, batching inserts for speed.
func Load(sess cjdbc.Session, sc Scale, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for _, ddl := range SchemaSQL() {
		if _, err := sess.Exec(ddl); err != nil {
			return fmt.Errorf("tpcw: schema: %w", err)
		}
	}
	batch := func(prefix string, n int, row func(i int) string) error {
		const chunk = 50
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			sql := prefix
			for i := lo; i < hi; i++ {
				if i > lo {
					sql += ", "
				}
				sql += row(i)
			}
			if _, err := sess.Exec(sql); err != nil {
				return fmt.Errorf("tpcw: load: %w", err)
			}
		}
		return nil
	}

	if err := batch("INSERT INTO author (a_id, a_fname, a_lname) VALUES ", sc.Authors, func(i int) string {
		return fmt.Sprintf("(%d, 'fn%d', 'ln%d')", i+1, i+1, i+1)
	}); err != nil {
		return err
	}
	if err := batch("INSERT INTO address (addr_id, addr_street, addr_city, addr_state, addr_zip, addr_country) VALUES ", sc.Customers, func(i int) string {
		return fmt.Sprintf("(%d, 'street%d', 'city%d', 'st', 'zip%d', 'country')", i+1, i+1, i%17, i+1)
	}); err != nil {
		return err
	}
	if err := batch("INSERT INTO customer (c_id, c_uname, c_passwd, c_fname, c_lname, c_email, c_since, c_discount, c_addr_id) VALUES ", sc.Customers, func(i int) string {
		return fmt.Sprintf("(%d, 'user%d', 'pw%d', 'first%d', 'last%d', 'u%d@tpcw.org', '2003-0%d-01 00:00:00', %g, %d)",
			i+1, i+1, i+1, i+1, i+1, i+1, i%9+1, float64(i%5)/100, i+1)
	}); err != nil {
		return err
	}
	if err := batch("INSERT INTO item (i_id, i_title, i_a_id, i_subject, i_pub_date, i_cost, i_srp, i_stock, i_isbn) VALUES ", sc.Items, func(i int) string {
		return fmt.Sprintf("(%d, 'Title of Book %d', %d, '%s', '200%d-0%d-01 00:00:00', %g, %g, %d, 'isbn%d')",
			i+1, i+1, i%sc.Authors+1, subjects[i%len(subjects)], i%4, i%9+1,
			10+float64(i%50), 12+float64(i%50), 50+i%100, i+1)
	}); err != nil {
		return err
	}
	nOrders := sc.Orders()
	if err := batch("INSERT INTO orders (o_id, o_c_id, o_date, o_sub_total, o_total, o_status) VALUES ", nOrders, func(i int) string {
		return fmt.Sprintf("(%d, %d, '2003-1%d-0%d 00:00:00', %g, %g, 'shipped')",
			i+1, rng.Intn(sc.Customers)+1, i%3, i%9+1, float64(20+i%80), float64(25+i%80))
	}); err != nil {
		return err
	}
	nLines := nOrders * 3
	if err := batch("INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount) VALUES ", nLines, func(i int) string {
		return fmt.Sprintf("(%d, %d, %d, %d, 0)",
			i+1, i/3+1, rng.Intn(sc.Items)+1, rng.Intn(5)+1)
	}); err != nil {
		return err
	}
	if err := batch("INSERT INTO cc_xacts (cx_o_id, cx_type, cx_amount, cx_auth_date) VALUES ", nOrders, func(i int) string {
		return fmt.Sprintf("(%d, 'VISA', %g, '2003-12-01 00:00:00')", i+1, float64(25+i%80))
	}); err != nil {
		return err
	}
	return nil
}

// Mix selects one of the three TPC-W workload mixes.
type Mix string

// The three TPC-W mixes (§6.2).
const (
	Browsing Mix = "browsing" // 95 % read-only
	Shopping Mix = "shopping" // 80 % read-only (most representative)
	Ordering Mix = "ordering" // 50 % read-only
)

// interaction identifies one of the 14 TPC-W web interactions (those with
// identical database footprints are folded together).
type interaction int

const (
	iHome interaction = iota
	iNewProducts
	iBestSellers
	iProductDetail
	iSearch
	iOrderInquiry
	iShoppingCart
	iCustomerRegistration
	iBuyRequest
	iBuyConfirm
	iAdminUpdate
	nInteractions
)

// readOnly reports whether the interaction issues only reads.
func (i interaction) readOnly() bool { return i <= iOrderInquiry }

// mixWeights approximates the TPC-W interaction frequencies of each mix;
// read-only weights sum to ~95/80/50 % as specified.
var mixWeights = map[Mix][nInteractions]float64{
	Browsing: {29, 11, 11, 21, 23, 0.55, 2, 0.82, 0.75, 0.69, 0.19},
	Shopping: {16, 5, 5, 17, 36.25, 0.75, 11.6, 2.6, 2.6, 1.2, 2},
	Ordering: {9.12, 0.46, 0.46, 12.35, 17.2, 10.41, 13.53, 12.86, 12.73, 10.18, 0.7},
}

// ReadOnlyFraction returns the mix's read-only share, for reporting.
func (m Mix) ReadOnlyFraction() float64 {
	w := mixWeights[m]
	var ro, total float64
	for i := interaction(0); i < nInteractions; i++ {
		total += w[i]
		if i.readOnly() {
			ro += w[i]
		}
	}
	return ro / total
}

// Client drives the TPC-W interactions against one session, the role an
// emulated browser plays in the paper's setup.
type Client struct {
	sess    cjdbc.Session
	scale   Scale
	mix     Mix
	rng     *rand.Rand
	id      int
	weights [nInteractions]float64
	totalW  float64
	cartSeq atomic.Int64

	// idAlloc allocates cluster-unique ids for inserts; shared by all
	// clients of one run.
	idAlloc *IDAllocator
}

// IDAllocator hands out unique primary keys to concurrent clients.
type IDAllocator struct {
	next atomic.Int64
}

// NewIDAllocator starts allocation above the loaded data.
func NewIDAllocator(start int64) *IDAllocator {
	a := &IDAllocator{}
	a.next.Store(start)
	return a
}

// Next returns a fresh id.
func (a *IDAllocator) Next() int64 { return a.next.Add(1) }

// NewClient builds a workload client.
func NewClient(id int, sess cjdbc.Session, sc Scale, mix Mix, rng *rand.Rand, alloc *IDAllocator) *Client {
	c := &Client{sess: sess, scale: sc, mix: mix, rng: rng, id: id, idAlloc: alloc}
	c.weights = mixWeights[mix]
	for _, w := range c.weights {
		c.totalW += w
	}
	return c
}

// pick draws an interaction according to the mix weights.
func (c *Client) pick() interaction {
	x := c.rng.Float64() * c.totalW
	for i := interaction(0); i < nInteractions; i++ {
		x -= c.weights[i]
		if x < 0 {
			return i
		}
	}
	return iHome
}

// Interaction runs one randomly chosen interaction, returning the number of
// SQL requests it issued (the unit of Figures 10-12).
func (c *Client) Interaction() (int, error) {
	switch c.pick() {
	case iHome:
		return c.home()
	case iNewProducts:
		return c.newProducts()
	case iBestSellers:
		return c.bestSellers()
	case iProductDetail:
		return c.productDetail()
	case iSearch:
		return c.search()
	case iOrderInquiry:
		return c.orderInquiry()
	case iShoppingCart:
		return c.shoppingCart()
	case iCustomerRegistration:
		return c.customerRegistration()
	case iBuyRequest:
		return c.buyRequest()
	case iBuyConfirm:
		return c.buyConfirm()
	default:
		return c.adminUpdate()
	}
}

func (c *Client) randCustomer() int { return c.rng.Intn(c.scale.Customers) + 1 }
func (c *Client) randItem() int     { return c.rng.Intn(c.scale.Items) + 1 }

func (c *Client) home() (int, error) {
	n := 0
	if _, err := c.sess.Query("SELECT c_fname, c_lname FROM customer WHERE c_id = ?", c.randCustomer()); err != nil {
		return n, err
	}
	n++
	if _, err := c.sess.Query("SELECT i_id, i_title FROM item WHERE i_id = ?", c.randItem()); err != nil {
		return n, err
	}
	n++
	return n, nil
}

// newProducts is TPC-W's recency browse: newest items in a subject. It
// alternates the plain subject scan with the full spec shape — a
// publication-date *range* (only items newer than a cutoff) ordered
// newest-first and truncated, which plans as a bounded reverse scan of the
// i_pub_date ordered index.
func (c *Client) newProducts() (int, error) {
	subject := subjects[c.rng.Intn(len(subjects))]
	var err error
	if c.rng.Intn(2) == 0 {
		_, err = c.sess.Query(
			"SELECT i_id, i_title, i_pub_date, a_fname, a_lname FROM item JOIN author ON i_a_id = a_id WHERE i_subject = ? AND i_pub_date >= ? ORDER BY i_pub_date DESC, i_title LIMIT 50",
			subject, fmt.Sprintf("200%d-01-01 00:00:00", c.rng.Intn(4)))
	} else {
		_, err = c.sess.Query(
			"SELECT i_id, i_title, a_fname, a_lname FROM item JOIN author ON i_a_id = a_id WHERE i_subject = ? ORDER BY i_pub_date DESC, i_title LIMIT 50",
			subject)
	}
	if err != nil {
		return 0, err
	}
	return 1, nil
}

// bestSellers is the interaction behind Figure 10's sub-linear scaling
// under full replication: a temporary table is created (a write, broadcast
// to every backend hosting order_line), queried on one backend, and
// dropped. The whole flow runs in a transaction so the temporary table
// lives on a pinned connection.
func (c *Client) bestSellers() (int, error) {
	tmp := fmt.Sprintf("besttmp_%d_%d", c.id, c.cartSeq.Add(1))
	n := 0
	if err := c.sess.Begin(); err != nil {
		return n, err
	}
	abort := func(err error) (int, error) {
		_ = c.sess.Rollback()
		return n, err
	}
	if _, err := c.sess.Exec(fmt.Sprintf(
		"CREATE TEMPORARY TABLE %s AS SELECT ol_i_id, SUM(ol_qty) AS total FROM order_line GROUP BY ol_i_id ORDER BY total DESC LIMIT 50", tmp)); err != nil {
		return abort(err)
	}
	n++
	if _, err := c.sess.Query(fmt.Sprintf(
		"SELECT i_id, i_title, a_fname, a_lname, t.total FROM %s t JOIN item ON i_id = t.ol_i_id JOIN author ON a_id = i_a_id ORDER BY t.total DESC", tmp)); err != nil {
		return abort(err)
	}
	n++
	if _, err := c.sess.Exec("DROP TABLE " + tmp); err != nil {
		return abort(err)
	}
	n++
	if err := c.sess.Commit(); err != nil {
		return n, err
	}
	return n, nil
}

func (c *Client) productDetail() (int, error) {
	_, err := c.sess.Query(
		"SELECT i_id, i_title, i_cost, i_srp, i_stock, a_fname, a_lname FROM item JOIN author ON i_a_id = a_id WHERE i_id = ?",
		c.randItem())
	if err != nil {
		return 0, err
	}
	return 1, nil
}

func (c *Client) search() (int, error) {
	switch c.rng.Intn(3) {
	case 0:
		if _, err := c.sess.Query("SELECT i_id, i_title FROM item WHERE i_title LIKE ? LIMIT 50",
			fmt.Sprintf("%%Book %d%%", c.rng.Intn(c.scale.Items))); err != nil {
			return 0, err
		}
	case 1:
		if _, err := c.sess.Query(
			"SELECT i_id, i_title FROM item JOIN author ON i_a_id = a_id WHERE a_lname LIKE ? LIMIT 50",
			fmt.Sprintf("ln%d%%", c.rng.Intn(c.scale.Authors)+1)); err != nil {
			return 0, err
		}
	default:
		if _, err := c.sess.Query("SELECT i_id, i_title FROM item WHERE i_subject = ? ORDER BY i_title LIMIT 50",
			subjects[c.rng.Intn(len(subjects))]); err != nil {
			return 0, err
		}
	}
	return 1, nil
}

func (c *Client) orderInquiry() (int, error) {
	cid := c.randCustomer()
	n := 0
	rows, err := c.sess.Query(
		"SELECT o_id, o_date, o_total, o_status FROM orders WHERE o_c_id = ? ORDER BY o_date DESC LIMIT 1", cid)
	if err != nil {
		return n, err
	}
	n++
	if rows.Len() > 0 {
		rows.Next()
		var oid int64
		if err := rows.Scan(&oid); err != nil {
			return n, err
		}
		if _, err := c.sess.Query(
			"SELECT ol_i_id, ol_qty, i_title FROM order_line JOIN item ON ol_i_id = i_id WHERE ol_o_id = ?", oid); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (c *Client) shoppingCart() (int, error) {
	scID := c.idAlloc.Next()
	n := 0
	if _, err := c.sess.Exec("INSERT INTO shopping_cart (sc_id, sc_time, sc_c_id) VALUES (?, NOW(), ?)",
		scID, c.randCustomer()); err != nil {
		return n, err
	}
	n++
	lines := c.rng.Intn(3) + 1
	for i := 0; i < lines; i++ {
		if _, err := c.sess.Exec(
			"INSERT INTO shopping_cart_line (scl_id, scl_sc_id, scl_i_id, scl_qty) VALUES (?, ?, ?, ?)",
			c.idAlloc.Next(), scID, c.randItem(), c.rng.Intn(4)+1); err != nil {
			return n, err
		}
		n++
	}
	if _, err := c.sess.Query(
		"SELECT scl_i_id, scl_qty, i_title, i_cost FROM shopping_cart_line JOIN item ON scl_i_id = i_id WHERE scl_sc_id = ?", scID); err != nil {
		return n, err
	}
	n++
	return n, nil
}

func (c *Client) customerRegistration() (int, error) {
	id := c.idAlloc.Next()
	n := 0
	if _, err := c.sess.Exec(
		"INSERT INTO address (addr_id, addr_street, addr_city, addr_state, addr_zip, addr_country) VALUES (?, ?, ?, 'st', 'zip', 'country')",
		id, fmt.Sprintf("street%d", id), "newcity"); err != nil {
		return n, err
	}
	n++
	if _, err := c.sess.Exec(
		"INSERT INTO customer (c_id, c_uname, c_passwd, c_fname, c_lname, c_email, c_since, c_discount, c_addr_id) VALUES (?, ?, ?, 'new', 'customer', ?, NOW(), 0, ?)",
		id, fmt.Sprintf("nuser%d", id), "pw", fmt.Sprintf("n%d@tpcw.org", id), id); err != nil {
		return n, err
	}
	n++
	return n, nil
}

func (c *Client) buyRequest() (int, error) {
	n := 0
	if _, err := c.sess.Query("SELECT c_fname, c_lname, c_discount FROM customer WHERE c_id = ?", c.randCustomer()); err != nil {
		return n, err
	}
	n++
	if _, err := c.sess.Query("SELECT i_id, i_cost, i_stock FROM item WHERE i_id = ?", c.randItem()); err != nil {
		return n, err
	}
	n++
	return n, nil
}

// buyConfirm creates the order inside a transaction: insert into orders and
// order_line, decrement stock, record the credit-card transaction.
func (c *Client) buyConfirm() (int, error) {
	n := 0
	if err := c.sess.Begin(); err != nil {
		return n, err
	}
	abort := func(err error) (int, error) {
		_ = c.sess.Rollback()
		return n, err
	}
	oid := c.idAlloc.Next()
	if _, err := c.sess.Exec(
		"INSERT INTO orders (o_id, o_c_id, o_date, o_sub_total, o_total, o_status) VALUES (?, ?, NOW(), ?, ?, 'pending')",
		oid, c.randCustomer(), 30.0, 33.0); err != nil {
		return abort(err)
	}
	n++
	// All order lines in one multi-row insert, as the servlet
	// implementation batches them: this keeps the transaction's exclusive
	// lock window short.
	lines := c.rng.Intn(3) + 1
	items := make([]int, lines)
	insert := "INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount) VALUES "
	for i := 0; i < lines; i++ {
		items[i] = c.randItem()
		if i > 0 {
			insert += ", "
		}
		insert += fmt.Sprintf("(%d, %d, %d, %d, 0)", c.idAlloc.Next(), oid, items[i], c.rng.Intn(4)+1)
	}
	if _, err := c.sess.Exec(insert); err != nil {
		return abort(err)
	}
	n++
	for _, it := range items {
		if _, err := c.sess.Exec("UPDATE item SET i_stock = i_stock - 1 WHERE i_id = ? AND i_stock > 0", it); err != nil {
			return abort(err)
		}
		n++
	}
	if _, err := c.sess.Exec(
		"INSERT INTO cc_xacts (cx_o_id, cx_type, cx_amount, cx_auth_date) VALUES (?, 'VISA', 33.0, NOW())", oid); err != nil {
		return abort(err)
	}
	n++
	if err := c.sess.Commit(); err != nil {
		return n, err
	}
	return n, nil
}

func (c *Client) adminUpdate() (int, error) {
	if _, err := c.sess.Exec("UPDATE item SET i_cost = ?, i_pub_date = NOW() WHERE i_id = ?",
		10+c.rng.Float64()*50, c.randItem()); err != nil {
		return 0, err
	}
	return 1, nil
}
