// Package netproto is the wire protocol between the C-JDBC driver and the
// controller (§2.3): a length-framed gob stream over TCP. Result sets are
// fully serialized to the driver, which then browses them locally, exactly
// as the paper's hybrid type 3/4 driver does. The same protocol serves
// vertical scalability: a controller can be the client of another
// controller.
package netproto

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"cjdbc/internal/backend"
	"cjdbc/internal/controller"
	"cjdbc/internal/sqlval"
)

// Op codes of the protocol.
const (
	OpConnect uint8 = iota + 1
	OpExec
	OpPing
)

// Request is one client->controller message.
type Request struct {
	Op       uint8
	VDB      string // OpConnect
	User     string
	Password string
	SQL      string // OpExec
	Params   []sqlval.Value
}

// Response is one controller->client message. Err is a string because gob
// cannot carry arbitrary error implementations.
type Response struct {
	OK           bool
	Err          string
	Columns      []string
	Rows         [][]sqlval.Value
	RowsAffected int64
	LastInsertID int64
}

// Server exposes a controller's virtual databases over TCP.
type Server struct {
	ctrl *controller.Controller

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]bool
	closed   bool
	sessions sync.WaitGroup
}

// NewServer wraps a controller.
func NewServer(c *controller.Controller) *Server {
	return &Server{ctrl: c, conns: make(map[net.Conn]bool)}
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("netproto: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.sessions.Add(1)
		go func() {
			defer s.sessions.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listener, severs every active driver connection (their
// controller sessions roll back), and waits for the handlers to wind down.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.sessions.Wait()
}

// serveConn handles one driver connection: a connect handshake followed by
// a stream of statement executions. The controller session dies with the
// connection, rolling back any open transaction.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	var hello Request
	if err := dec.Decode(&hello); err != nil {
		return
	}
	if hello.Op != OpConnect {
		_ = enc.Encode(Response{Err: "netproto: expected connect"})
		return
	}
	vdb, err := s.ctrl.VirtualDatabase(hello.VDB)
	if err != nil {
		_ = enc.Encode(Response{Err: err.Error()})
		return
	}
	sess, err := vdb.NewSession(hello.User, hello.Password)
	if err != nil {
		_ = enc.Encode(Response{Err: err.Error()})
		return
	}
	defer sess.Close()
	if err := enc.Encode(Response{OK: true}); err != nil {
		return
	}

	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // includes io.EOF: client gone, session cleanup above
		}
		switch req.Op {
		case OpPing:
			if err := enc.Encode(Response{OK: true}); err != nil {
				return
			}
		case OpExec:
			res, err := sess.Exec(req.SQL, req.Params)
			var resp Response
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.OK = true
				resp.Columns = res.Columns
				resp.Rows = res.Rows
				resp.RowsAffected = res.RowsAffected
				resp.LastInsertID = res.LastInsertID
			}
			if err := enc.Encode(resp); err != nil {
				return
			}
		default:
			_ = enc.Encode(Response{Err: fmt.Sprintf("netproto: unknown op %d", req.Op)})
			return
		}
	}
}

// Client is one driver connection to a controller.
type Client struct {
	conn net.Conn
	dec  *gob.Decoder
	enc  *gob.Encoder
	mu   sync.Mutex
}

// Dial connects and authenticates against one controller.
func Dial(addr, vdb, user, password string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, dec: gob.NewDecoder(conn), enc: gob.NewEncoder(conn)}
	if err := c.enc.Encode(Request{Op: OpConnect, VDB: vdb, User: user, Password: password}); err != nil {
		conn.Close()
		return nil, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		conn.Close()
		return nil, err
	}
	if !resp.OK {
		conn.Close()
		return nil, errors.New(resp.Err)
	}
	return c, nil
}

// Exec runs one statement remotely, returning the fully materialized
// result. A transport error is reported as ErrConnLost wrapped around the
// cause, so the driver can fail over to another controller.
func (c *Client) Exec(sql string, params []sqlval.Value) (*backend.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(Request{Op: OpExec, SQL: sql, Params: params}); err != nil {
		return nil, &ConnLostError{Cause: err}
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, &ConnLostError{Cause: err}
	}
	if !resp.OK {
		return nil, errors.New(resp.Err)
	}
	return &backend.Result{
		Columns:      resp.Columns,
		Rows:         resp.Rows,
		RowsAffected: resp.RowsAffected,
		LastInsertID: resp.LastInsertID,
	}, nil
}

// Ping verifies the connection is alive.
func (c *Client) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(Request{Op: OpPing}); err != nil {
		return &ConnLostError{Cause: err}
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return &ConnLostError{Cause: err}
	}
	if !resp.OK {
		return errors.New(resp.Err)
	}
	return nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// ConnLostError marks transport-level failures eligible for controller
// failover (§2.3: the driver transparently fails over between controllers).
type ConnLostError struct{ Cause error }

// Error implements error.
func (e *ConnLostError) Error() string { return "netproto: connection lost: " + e.Cause.Error() }

// Unwrap exposes the cause.
func (e *ConnLostError) Unwrap() error { return e.Cause }

// IsConnLost reports whether err is a transport failure.
func IsConnLost(err error) bool {
	var cl *ConnLostError
	return errors.As(err, &cl) || errors.Is(err, io.EOF)
}
