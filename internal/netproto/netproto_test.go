package netproto

import (
	"strings"
	"sync"
	"testing"

	"cjdbc/internal/backend"
	"cjdbc/internal/controller"
	"cjdbc/internal/sqlengine"
	"cjdbc/internal/sqlval"
)

func newServer(t *testing.T) (*Server, string) {
	t.Helper()
	c := controller.New("ctrl", 1)
	auth := controller.NewAuthManager()
	auth.AddUser("alice", "pw")
	vdb, err := c.AddVirtualDatabase(controller.VDBConfig{Name: "app", ParallelTx: true, Auth: auth})
	if err != nil {
		t.Fatal(err)
	}
	e := sqlengine.New("db0")
	s := e.NewSession()
	s.ExecSQL("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)")
	s.Close()
	b := backend.New(backend.Config{Name: "db0", Driver: &backend.EngineDriver{Engine: e}})
	t.Cleanup(b.Close)
	if err := vdb.AddBackend(b); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(c)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, addr
}

func TestConnectExecRoundTrip(t *testing.T) {
	_, addr := newServer(t)
	c, err := Dial(addr, "app", "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Exec("INSERT INTO t (id, v) VALUES (?, ?)",
		[]sqlval.Value{sqlval.Int(1), sqlval.String_("hello")})
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("insert: %+v, %v", res, err)
	}
	res, err = c.Exec("SELECT v FROM t WHERE id = 1", nil)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].AsString() != "hello" {
		t.Fatalf("select: %+v, %v", res, err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

func TestAllValueKindsSurviveTheWire(t *testing.T) {
	_, addr := newServer(t)
	c, err := Dial(addr, "app", "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE k (i INTEGER, f FLOAT, s VARCHAR, b BOOLEAN, ts TIMESTAMP, bl BLOB)", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO k (i, f, s, b, ts, bl) VALUES (1, 2.5, 'x''y', TRUE, '2004-06-27 10:00:00', 'bin')", nil); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("SELECT i, f, s, b, ts, bl FROM k", nil)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].I != 1 || row[1].F != 2.5 || row[2].S != "x'y" || !row[3].AsBool() ||
		row[4].T.Year() != 2004 || string(row[5].B) != "bin" {
		t.Fatalf("row: %v", row)
	}
}

func TestAuthFailures(t *testing.T) {
	_, addr := newServer(t)
	if _, err := Dial(addr, "app", "alice", "wrong"); err == nil {
		t.Fatal("bad password accepted")
	}
	if _, err := Dial(addr, "missing", "alice", "pw"); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing vdb: %v", err)
	}
}

func TestSQLErrorsAreNotConnLost(t *testing.T) {
	_, addr := newServer(t)
	c, err := Dial(addr, "app", "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("SELECT * FROM nope", nil)
	if err == nil || IsConnLost(err) {
		t.Fatalf("semantic error misclassified: %v", err)
	}
	// Connection still usable.
	if _, err := c.Exec("SELECT COUNT(*) FROM t", nil); err != nil {
		t.Fatalf("after error: %v", err)
	}
}

func TestServerCloseSeversClientsAndRollsBack(t *testing.T) {
	srv, addr := newServer(t)
	c, err := Dial(addr, "app", "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("BEGIN", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO t (id, v) VALUES (9, 'ghost')", nil); err != nil {
		t.Fatal(err)
	}
	srv.Close() // must not hang, and must kill the session

	_, err = c.Exec("COMMIT", nil)
	if err == nil || !IsConnLost(err) {
		t.Fatalf("exec after server close: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := newServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, "app", "alice", "pw")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				if _, err := c.Exec("SELECT COUNT(*) FROM t", nil); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTransactionOverWire(t *testing.T) {
	_, addr := newServer(t)
	c, _ := Dial(addr, "app", "alice", "pw")
	defer c.Close()
	c.Exec("BEGIN", nil)
	c.Exec("INSERT INTO t (id, v) VALUES (5, 'tx')", nil)
	c.Exec("ROLLBACK", nil)
	res, err := c.Exec("SELECT COUNT(*) FROM t", nil)
	if err != nil || res.Rows[0][0].I != 0 {
		t.Fatalf("rollback over wire: %v %v", res, err)
	}
}
