package controller

import (
	"fmt"
	"strings"
	"testing"

	"cjdbc/internal/backend"
	"cjdbc/internal/recovery"
)

// TestRestoreBackendParallelReplayManyClasses: re-integration replays a log
// spanning several disjoint conflict classes on parallel appliers (the
// default RecoveryWorkers = GOMAXPROCS) and converges to the same content
// as the live backend.
func TestRestoreBackendParallelReplayManyClasses(t *testing.T) {
	schema := make([]string, 0, 8)
	for i := 0; i < 4; i++ {
		schema = append(schema, fmt.Sprintf("CREATE TABLE t%d (id INTEGER PRIMARY KEY, v INTEGER)", i))
	}
	log := recovery.NewMemoryLog()
	v, engines := mkVDB(t, 2, VDBConfig{RecoveryLog: log, ParallelTx: true}, schema...)
	s := openSession(t, v)

	dump, err := v.BackupBackend("db0", "cp-par")
	if err != nil {
		t.Fatal(err)
	}
	// Writes over four disjoint classes land after the checkpoint.
	for i := 0; i < 40; i++ {
		exec(t, s, fmt.Sprintf("INSERT INTO t%d (id, v) VALUES (%d, %d)", i%4, i, i))
	}

	v.DisableBackend("db1")
	sess := engines[1].NewSession()
	for i := 0; i < 4; i++ {
		sess.ExecSQL(fmt.Sprintf("DELETE FROM t%d", i))
	}
	sess.Close()

	if err := v.RestoreBackend("db1", dump); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := countOn(t, engines[1], fmt.Sprintf("SELECT COUNT(*) FROM t%d", i)); got != 10 {
			t.Errorf("t%d restored rows = %d, want 10", i, got)
		}
	}
}

// TestRestoreBackendStaysDisabledOnReplayFailure: crash consistency of the
// parallel replay pipeline at the controller level — when an entry fails
// mid-replay, the error surfaces from RestoreBackend, the appliers drain
// cleanly (RestoreBackend returns), and the backend stays disabled: a
// partially replayed backend may hold different conflict classes at
// different log positions and must never serve clients.
func TestRestoreBackendStaysDisabledOnReplayFailure(t *testing.T) {
	log := recovery.NewMemoryLog()
	v, engines := mkVDB(t, 2, VDBConfig{RecoveryLog: log, ParallelTx: true}, seedSchema...)
	s := openSession(t, v)

	dump, err := v.BackupBackend("db0", "cp-bad")
	if err != nil {
		t.Fatal(err)
	}
	exec(t, s, "INSERT INTO item (i_id, i_title, i_cost) VALUES (4, 'd', 40)")
	// Poison the log: an entry whose SQL can never replay (its table does
	// not exist in the dump).
	if _, err := log.Append(recovery.Entry{
		Class: recovery.ClassWrite, SQL: "INSERT INTO vanished (a) VALUES (1)",
		Tables: []string{"vanished"}, V: recovery.FootprintVersion,
	}); err != nil {
		t.Fatal(err)
	}
	exec(t, s, "INSERT INTO item (i_id, i_title, i_cost) VALUES (5, 'e', 50)")

	v.DisableBackend("db1")
	err = v.RestoreBackend("db1", dump)
	if err == nil {
		t.Fatal("restore over a poisoned log must fail")
	}
	if !strings.Contains(err.Error(), "vanished") {
		t.Fatalf("replay failure does not name the entry: %v", err)
	}
	b1, _ := v.Backend("db1")
	if b1.State() != backend.StateDisabled {
		t.Fatalf("backend state after failed restore = %v, want disabled", b1.State())
	}
	// The cluster keeps serving from the healthy backend, and a later
	// restore after the operator fixes the problem succeeds.
	exec(t, s, "INSERT INTO item (i_id, i_title, i_cost) VALUES (6, 'f', 60)")
	sess := engines[1].NewSession()
	if _, err := sess.ExecSQL("CREATE TABLE vanished (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	if err := v.RestoreBackend("db1", dump); err != nil {
		t.Fatalf("restore after repair: %v", err)
	}
	if !b1.Enabled() {
		t.Fatal("backend not enabled after successful restore")
	}
	if got := countOn(t, engines[1], "SELECT COUNT(*) FROM item"); got != 6 {
		t.Errorf("restored rows = %d, want 6", got)
	}
}

// TestSequentialRecoveryWorkersConfig: RecoveryWorkers = 1 keeps the legacy
// sequential replay and still restores correctly.
func TestSequentialRecoveryWorkersConfig(t *testing.T) {
	log := recovery.NewMemoryLog()
	v, engines := mkVDB(t, 2, VDBConfig{RecoveryLog: log, ParallelTx: true, RecoveryWorkers: 1}, seedSchema...)
	s := openSession(t, v)
	dump, err := v.BackupBackend("db0", "cp-seq")
	if err != nil {
		t.Fatal(err)
	}
	exec(t, s, "INSERT INTO item (i_id, i_title, i_cost) VALUES (4, 'd', 40)")
	v.DisableBackend("db1")
	if err := v.RestoreBackend("db1", dump); err != nil {
		t.Fatal(err)
	}
	if got := countOn(t, engines[1], "SELECT COUNT(*) FROM item"); got != 4 {
		t.Errorf("restored rows = %d, want 4", got)
	}
}
