package controller

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/sqlparser"
)

// ResponsePolicy selects when a write (update, commit or abort) is
// acknowledged to the client (§2.4.4 early response): after the first
// backend, after a majority, or after all backends complete.
type ResponsePolicy int

// Response policies.
const (
	// ResponseAll waits for every involved backend (the default; fully
	// synchronous as §2.4.1 describes).
	ResponseAll ResponsePolicy = iota
	// ResponseFirst returns as soon as one backend has executed the
	// operation, offering the latency of the fastest backend.
	ResponseFirst
	// ResponseMajority returns once a majority of the involved backends
	// have executed the operation.
	ResponseMajority
)

// String names the policy.
func (p ResponsePolicy) String() string {
	switch p {
	case ResponseAll:
		return "all"
	case ResponseFirst:
		return "first"
	case ResponseMajority:
		return "majority"
	}
	return "unknown"
}

// Scheduler implements §2.4.1's ordering duty with conflict-class
// scheduling instead of a single total order: updates, commits and aborts
// are sequenced per conflict class — the set of tables a statement touches —
// so writes on disjoint tables flow concurrently while writes sharing a
// table, and everything global (DDL, unknown footprints), keep a strict
// relative order. The invariant replicas need is not "one global order" but
// "every pair of conflicting writes is enqueued to all backends in the same
// relative order"; writes on disjoint table sets commute, so their relative
// order is free. The scheduler also rewrites non-deterministic macros and
// allocates transaction identifiers.
type Scheduler struct {
	// gate is the global ordering point: per-class lockers hold it shared,
	// global operations (DDL, unknown footprints, checkpoint quiesce — and
	// every write when parallelism is disabled) hold it exclusively.
	gate sync.RWMutex

	// classMu guards the class-lock table and the per-transaction write
	// footprints.
	classMu sync.Mutex
	classes map[string]*classLock
	txFeet  map[uint64]*txFootprint

	// readers tracks in-flight reads: every read holds it shared for its
	// duration, and WaitReaders takes it exclusively as a barrier. Placement
	// changes use it after flipping routing away from a backend: once
	// WaitReaders returns, no read chosen under the old placement can still
	// be executing, so the stale copy is safe to drop.
	readers sync.RWMutex

	// serializeAll disables the parallel-transactions optimization
	// (§2.4.4): when set, reads and writes all serialize through the gate.
	serializeAll bool

	early ResponsePolicy

	txSeq  atomic.Uint64
	txBase uint64 // controller-unique prefix for distributed uniqueness

	rngMu sync.Mutex
	rng   *rand.Rand
	clock func() time.Time
}

// classLock is one table's write-sequencing lock, reference-counted so the
// table map does not grow without bound.
type classLock struct {
	mu   sync.Mutex
	refs int
}

// txFootprint accumulates the tables a transaction has written, so its
// commit or abort orders against every class the transaction touched.
type txFootprint struct {
	tables map[string]bool
	global bool
}

// NewScheduler creates a scheduler. controllerID disambiguates transaction
// identifiers when several controllers host the same virtual database.
func NewScheduler(controllerID uint16, early ResponsePolicy, parallelTx bool) *Scheduler {
	return &Scheduler{
		classes:      make(map[string]*classLock),
		txFeet:       make(map[uint64]*txFootprint),
		serializeAll: !parallelTx,
		early:        early,
		txBase:       uint64(controllerID) << 48,
		rng:          rand.New(rand.NewSource(time.Now().UnixNano())),
		clock:        time.Now,
	}
}

// NextTxID allocates a cluster-unique transaction identifier. Identifiers
// are never zero (zero means auto-commit).
func (s *Scheduler) NextTxID() uint64 {
	return s.txBase | s.txSeq.Add(1)
}

// Policy returns the early-response policy.
func (s *Scheduler) Policy() ResponsePolicy { return s.early }

// RewriteMacros replaces NOW()/RAND() style macros with values computed
// once by the scheduler, so every backend stores exactly the same data.
func (s *Scheduler) RewriteMacros(st sqlparser.Statement) {
	if !sqlparser.HasMacros(st) {
		return
	}
	s.rngMu.Lock()
	now := s.clock()
	rng := s.rng
	sqlparser.RewriteMacros(st, now, rng)
	s.rngMu.Unlock()
}

// WriteTicket is one held conflict-class critical section. Logging and
// enqueueing to every backend happen while it is held, which is what makes
// conflicting writes reach all backends in the same relative order; it is
// released before waiting on backend execution.
type WriteTicket struct {
	s      *Scheduler
	global bool
	names  []string
	locks  []*classLock
}

// LockClass enters the critical section of one conflict class. tables must
// be sorted and deduplicated (sqlparser.ConflictClass and the plan cache
// both provide that); the sorted acquisition order makes class lockers
// deadlock-free. global (or a scheduler with parallelism disabled) takes
// the whole gate exclusively, serializing against every class.
func (s *Scheduler) LockClass(tables []string, global bool) *WriteTicket {
	if global || s.serializeAll {
		s.gate.Lock()
		return &WriteTicket{s: s, global: true}
	}
	s.gate.RLock()
	t := &WriteTicket{s: s, names: tables, locks: make([]*classLock, 0, len(tables))}
	s.classMu.Lock()
	for _, name := range tables {
		cl := s.classes[name]
		if cl == nil {
			cl = &classLock{}
			s.classes[name] = cl
		}
		cl.refs++
		t.locks = append(t.locks, cl)
	}
	s.classMu.Unlock()
	for _, cl := range t.locks {
		cl.mu.Lock()
	}
	return t
}

// LockAllWrites quiesces every write class (checkpointing, backend
// re-integration). Identical to a global LockClass.
func (s *Scheduler) LockAllWrites() *WriteTicket { return s.LockClass(nil, true) }

// Unlock leaves the conflict class's critical section.
func (t *WriteTicket) Unlock() {
	s := t.s
	if t.global {
		s.gate.Unlock()
		return
	}
	for i := len(t.locks) - 1; i >= 0; i-- {
		t.locks[i].mu.Unlock()
	}
	s.classMu.Lock()
	for i, cl := range t.locks {
		cl.refs--
		if cl.refs == 0 {
			delete(s.classes, t.names[i])
		}
	}
	s.classMu.Unlock()
	s.gate.RUnlock()
}

// NoteTxWrite accumulates a transaction's conflict footprint: the tables
// (or global-ness) of every write it issued, so that its commit or abort
// locks the same classes and orders against everything the transaction
// touched.
func (s *Scheduler) NoteTxWrite(txID uint64, tables []string, global bool) {
	if txID == 0 {
		return
	}
	s.classMu.Lock()
	defer s.classMu.Unlock()
	f := s.txFeet[txID]
	if f == nil {
		f = &txFootprint{tables: make(map[string]bool)}
		s.txFeet[txID] = f
	}
	if global {
		f.global = true
	}
	for _, t := range tables {
		f.tables[t] = true
	}
}

// TakeTxFootprint removes and returns a transaction's accumulated conflict
// footprint (sorted), for its commit or abort to lock. A transaction that
// never wrote has an empty, non-global footprint: its demarcation conflicts
// with nothing.
func (s *Scheduler) TakeTxFootprint(txID uint64) (tables []string, global bool) {
	s.classMu.Lock()
	f := s.txFeet[txID]
	delete(s.txFeet, txID)
	s.classMu.Unlock()
	if f == nil {
		return nil, false
	}
	tables = make([]string, 0, len(f.tables))
	for t := range f.tables {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	return tables, f.global
}

// PeekTxFootprint returns a transaction's accumulated conflict footprint
// (sorted) without clearing it. The distributed request manager attaches it
// to commit/abort broadcasts so every controller's applier can chain the
// demarcation through the conflict tracker instead of treating it as a
// barrier; the sequencer itself still takes (and clears) the footprint at
// lock time via TakeTxFootprint.
func (s *Scheduler) PeekTxFootprint(txID uint64) (tables []string, global bool) {
	s.classMu.Lock()
	f := s.txFeet[txID]
	if f != nil {
		tables = make([]string, 0, len(f.tables))
		for t := range f.tables {
			tables = append(tables, t)
		}
		global = f.global
	}
	s.classMu.Unlock()
	sort.Strings(tables)
	return tables, global
}

// TxActive reports whether a transaction still has an unclaimed write
// footprint — it wrote at least once and its commit or abort has not yet
// passed the sequencing point. Backend re-integration uses it (under
// LockAllWrites, so no new demarcations can race in) to decide whether a
// transaction the backend abandoned at disable time is finished
// cluster-wide and therefore fully present in the recovery log.
func (s *Scheduler) TxActive(txID uint64) bool {
	s.classMu.Lock()
	_, ok := s.txFeet[txID]
	s.classMu.Unlock()
	return ok
}

// AnyTxActive reports whether any transaction holds an unclaimed write
// footprint. Checkpointing uses it to find a moment no write transaction
// spans: a dump taken at such a checkpoint contains exactly the effects of
// the log entries at or below the marker.
func (s *Scheduler) AnyTxActive() bool {
	s.classMu.Lock()
	n := len(s.txFeet)
	s.classMu.Unlock()
	return n > 0
}

// ForgetTx drops a transaction's footprint without locking anything, for
// abort paths that bypass SQL demarcation.
func (s *Scheduler) ForgetTx(txID uint64) {
	s.classMu.Lock()
	delete(s.txFeet, txID)
	s.classMu.Unlock()
}

// GateRead blocks reads while parallel transactions are disabled, and is
// otherwise free. Static-placement vdbs use it instead of BeginRead: with
// no placement moves, no copy can be dropped out from under a routed read,
// so the readers barrier is unnecessary overhead there.
func (s *Scheduler) GateRead() {
	if s.serializeAll {
		s.gate.Lock()
	}
}

// UngateRead matches GateRead.
func (s *Scheduler) UngateRead() {
	if s.serializeAll {
		s.gate.Unlock()
	}
}

// BeginRead marks a read in flight (see readers); it additionally blocks
// reads when parallel transactions are disabled.
func (s *Scheduler) BeginRead() {
	s.readers.RLock()
	s.GateRead()
}

// EndRead matches BeginRead.
func (s *Scheduler) EndRead() {
	s.UngateRead()
	s.readers.RUnlock()
}

// WaitReaders blocks until every read that began before the call has
// finished. New reads may start as soon as it returns: the barrier orders
// "reads routed under the old placement" before "drop the copy", nothing
// more.
func (s *Scheduler) WaitReaders() {
	s.readers.Lock()
	s.readers.Unlock() // the empty critical section is the barrier
}

// WaitOutcomes applies the early-response policy to a cluster write's
// shared outcome channel: it blocks until enough backends answered and
// returns the first successful result; if every backend failed, it returns
// the first error. The channel is buffered for one outcome per backend, so
// stragglers complete without a drain goroutine — their failures still
// disable backends through the backends' own failure callbacks.
func (s *Scheduler) WaitOutcomes(policy ResponsePolicy, outs backend.Outcomes) (*backend.Result, error) {
	n := outs.N
	if n == 0 {
		return nil, ErrNoWriteTarget
	}
	need := n
	switch policy {
	case ResponseFirst:
		need = 1
	case ResponseMajority:
		need = n/2 + 1
	}

	var firstRes *backend.Result
	var firstErr error
	successes := 0
	for received := 0; received < n; received++ {
		o := <-outs.C
		if o.Err == nil {
			successes++
			if firstRes == nil {
				firstRes = o.Res
			}
		} else if firstErr == nil {
			firstErr = o.Err
		}
		if successes >= need {
			return firstRes, nil
		}
	}
	if successes > 0 {
		// Partial success: the failing backends have been disabled (no
		// 2PC, §2.4.1); the operation stands on the survivors.
		return firstRes, nil
	}
	return nil, firstErr
}
