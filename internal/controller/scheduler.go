package controller

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/sqlparser"
)

// ResponsePolicy selects when a write (update, commit or abort) is
// acknowledged to the client (§2.4.4 early response): after the first
// backend, after a majority, or after all backends complete.
type ResponsePolicy int

// Response policies.
const (
	// ResponseAll waits for every involved backend (the default; fully
	// synchronous as §2.4.1 describes).
	ResponseAll ResponsePolicy = iota
	// ResponseFirst returns as soon as one backend has executed the
	// operation, offering the latency of the fastest backend.
	ResponseFirst
	// ResponseMajority returns once a majority of the involved backends
	// have executed the operation.
	ResponseMajority
)

// String names the policy.
func (p ResponsePolicy) String() string {
	switch p {
	case ResponseAll:
		return "all"
	case ResponseFirst:
		return "first"
	case ResponseMajority:
		return "majority"
	}
	return "unknown"
}

// Scheduler implements §2.4.1: it imposes a total order on updates, commits
// and aborts (one in progress per virtual database at a time), lets reads
// from different transactions proceed concurrently, rewrites
// non-deterministic macros, and allocates transaction identifiers.
type Scheduler struct {
	// writeMu is the total-order point: writes are sequenced, logged and
	// enqueued to the backends' FIFO queues while holding it.
	writeMu sync.Mutex

	// serializeAll disables the parallel-transactions optimization
	// (§2.4.4): when set, reads serialize through writeMu as well.
	serializeAll bool

	early ResponsePolicy

	txSeq  atomic.Uint64
	txBase uint64 // controller-unique prefix for distributed uniqueness

	rngMu sync.Mutex
	rng   *rand.Rand
	clock func() time.Time
}

// NewScheduler creates a scheduler. controllerID disambiguates transaction
// identifiers when several controllers host the same virtual database.
func NewScheduler(controllerID uint16, early ResponsePolicy, parallelTx bool) *Scheduler {
	return &Scheduler{
		serializeAll: !parallelTx,
		early:        early,
		txBase:       uint64(controllerID) << 48,
		rng:          rand.New(rand.NewSource(time.Now().UnixNano())),
		clock:        time.Now,
	}
}

// NextTxID allocates a cluster-unique transaction identifier. Identifiers
// are never zero (zero means auto-commit).
func (s *Scheduler) NextTxID() uint64 {
	return s.txBase | s.txSeq.Add(1)
}

// Policy returns the early-response policy.
func (s *Scheduler) Policy() ResponsePolicy { return s.early }

// RewriteMacros replaces NOW()/RAND() style macros with values computed
// once by the scheduler, so every backend stores exactly the same data.
func (s *Scheduler) RewriteMacros(st sqlparser.Statement) {
	if !sqlparser.HasMacros(st) {
		return
	}
	s.rngMu.Lock()
	now := s.clock()
	rng := s.rng
	sqlparser.RewriteMacros(st, now, rng)
	s.rngMu.Unlock()
}

// LockWrites enters the total-order critical section.
func (s *Scheduler) LockWrites() { s.writeMu.Lock() }

// UnlockWrites leaves the total-order critical section.
func (s *Scheduler) UnlockWrites() { s.writeMu.Unlock() }

// BeginRead blocks reads only when parallel transactions are disabled.
func (s *Scheduler) BeginRead() {
	if s.serializeAll {
		s.writeMu.Lock()
	}
}

// EndRead matches BeginRead.
func (s *Scheduler) EndRead() {
	if s.serializeAll {
		s.writeMu.Unlock()
	}
}

// WaitOutcomes applies the early-response policy to a cluster write's
// shared outcome channel: it blocks until enough backends answered and
// returns the first successful result; if every backend failed, it returns
// the first error. The channel is buffered for one outcome per backend, so
// stragglers complete without a drain goroutine — their failures still
// disable backends through the backends' own failure callbacks.
func (s *Scheduler) WaitOutcomes(policy ResponsePolicy, outs backend.Outcomes) (*backend.Result, error) {
	n := outs.N
	if n == 0 {
		return nil, ErrNoWriteTarget
	}
	need := n
	switch policy {
	case ResponseFirst:
		need = 1
	case ResponseMajority:
		need = n/2 + 1
	}

	var firstRes *backend.Result
	var firstErr error
	successes := 0
	for received := 0; received < n; received++ {
		o := <-outs.C
		if o.Err == nil {
			successes++
			if firstRes == nil {
				firstRes = o.Res
			}
		} else if firstErr == nil {
			firstErr = o.Err
		}
		if successes >= need {
			return firstRes, nil
		}
	}
	if successes > 0 {
		// Partial success: the failing backends have been disabled (no
		// 2PC, §2.4.1); the operation stands on the survivors.
		return firstRes, nil
	}
	return nil, firstErr
}
