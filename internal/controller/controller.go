package controller

import (
	"fmt"
	"sort"
	"sync"
)

// Controller hosts one or more virtual databases, as in Figure 1 where a
// single controller serves two virtual databases with independent request
// managers.
type Controller struct {
	name string
	id   uint16

	mu   sync.RWMutex
	vdbs map[string]*VirtualDatabase
}

// New creates a controller. id must be unique among controllers sharing a
// distributed virtual database (it prefixes transaction identifiers).
func New(name string, id uint16) *Controller {
	return &Controller{name: name, id: id, vdbs: make(map[string]*VirtualDatabase)}
}

// Name returns the controller name.
func (c *Controller) Name() string { return c.name }

// ID returns the controller's numeric identity.
func (c *Controller) ID() uint16 { return c.id }

// AddVirtualDatabase creates and registers a virtual database from cfg,
// forcing the controller's identity into the scheduler.
func (c *Controller) AddVirtualDatabase(cfg VDBConfig) (*VirtualDatabase, error) {
	cfg.ControllerID = c.id
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.vdbs[cfg.Name]; dup {
		return nil, fmt.Errorf("controller: virtual database %q already loaded", cfg.Name)
	}
	v := NewVirtualDatabase(cfg)
	c.vdbs[cfg.Name] = v
	return v, nil
}

// VirtualDatabase looks a virtual database up by name.
func (c *Controller) VirtualDatabase(name string) (*VirtualDatabase, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.vdbs[name]
	if !ok {
		return nil, fmt.Errorf("controller: no virtual database %q", name)
	}
	return v, nil
}

// VirtualDatabases returns the sorted names of the hosted vdbs.
func (c *Controller) VirtualDatabases() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.vdbs))
	for n := range c.vdbs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Close shuts down every backend of every virtual database.
func (c *Controller) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range c.vdbs {
		v.Close()
		for _, b := range v.Backends() {
			b.Close()
		}
	}
}
