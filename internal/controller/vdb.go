package controller

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/balancer"
	"cjdbc/internal/cache"
	"cjdbc/internal/plancache"
	"cjdbc/internal/recovery"
	"cjdbc/internal/sqlengine"
	"cjdbc/internal/sqlparser"
	"cjdbc/internal/sqlval"
)

// Errors reported by the virtual database.
var (
	// ErrNoWriteTarget is returned when no enabled backend hosts the
	// tables a write affects.
	ErrNoWriteTarget = errors.New("controller: no enabled backend hosts the written tables")
	// ErrUnknownBackend is returned for operations naming a backend the
	// virtual database does not contain.
	ErrUnknownBackend = errors.New("controller: unknown backend")
	// ErrSessionClosed is returned for operations on a closed session.
	ErrSessionClosed = errors.New("controller: session closed")
)

// CtrlCost attributes virtual CPU time to the controller itself, the proxy
// for the "C-JDBC CPU load" row of Table 1. The durations are accounted,
// not slept: the controller is never the deliberate bottleneck.
type CtrlCost struct {
	PerRequest      time.Duration
	PerCacheHit     time.Duration
	PerInvalidation time.Duration
}

// VDBConfig configures a virtual database.
type VDBConfig struct {
	Name          string
	ControllerID  uint16
	Replication   balancer.Replication // nil means full replication
	Balancer      balancer.Balancer    // nil means least-pending-requests-first
	Cache         *cache.ResultCache   // nil disables result caching
	RecoveryLog   recovery.Log         // nil disables logging
	EarlyResponse ResponsePolicy       // applies to update/commit/abort
	ParallelTx    bool                 // §2.4.4 parallel transactions
	CtrlCost      CtrlCost             // controller CPU accounting
	Auth          *AuthManager         // nil accepts everyone
	// PlanCacheSize bounds the parsing cache (§2.4.2): 0 means the default
	// capacity, negative disables the cache (every request re-parses).
	PlanCacheSize int
	// RecoveryWorkers is the number of parallel appliers recovery-log
	// replay fans out on when a backend re-integrates (disjoint conflict
	// classes replay concurrently; see recovery.ReplayParallel). 0 means
	// GOMAXPROCS; 1 replays sequentially in Seq order (the paper's §3.2
	// behavior).
	RecoveryWorkers int
	// Health configures failure containment and automatic re-integration
	// (§3: "tools to automatically re-integrate failed backends"). The zero
	// value keeps the classic behavior: one-strike disable, no probing, no
	// automatic re-integration.
	Health HealthConfig
	// Placement configures the load-driven dynamic-placement policy. The
	// zero value disables the policy goroutine; manual AddTableHost /
	// RemoveTableHost moves work regardless (under partial replication).
	Placement PlacementPolicy
}

// Stats counts virtual database activity.
type Stats struct {
	Reads            int64
	Writes           int64
	Begins           int64
	Commits          int64
	Rollbacks        int64
	CacheHits        int64
	CacheMisses      int64
	BackendsDisabled int64
}

// VirtualDatabase presents one single-database view over a set of backends
// (§2.2). All request routing happens here: this is the request manager.
type VirtualDatabase struct {
	name  string
	auth  *AuthManager
	repl  balancer.Replication
	bal   balancer.Balancer
	cache *cache.ResultCache
	plans *plancache.Cache
	log   recovery.Log
	sched *Scheduler
	cost  CtrlCost

	// recoveryWorkers is the replay fan-out for backend re-integration
	// (VDBConfig.RecoveryWorkers): 0 = GOMAXPROCS, 1 = sequential.
	recoveryWorkers int

	// health is the per-backend failure containment and re-integration
	// state machine; always non-nil, its goroutines run only when
	// configured (probe interval or auto-reintegration).
	health *healthMonitor

	// dynamic is set when the replication policy supports placement
	// changes; loads is the per-table per-backend read/write counter
	// feeding the dynamic-placement policy (nil unless dynamic); placer
	// executes placement moves (always non-nil, its policy goroutine runs
	// only when configured).
	dynamic bool
	loads   *balancer.LoadStats
	placer  *placementManager

	// lastDump caches the most recent successful backup so automatic
	// re-integration can restore a failed backend without re-dumping a
	// healthy one.
	lastDump atomic.Pointer[recovery.Dump]

	mu       sync.RWMutex
	backends []*backend.Backend

	// distributor, when set, carries writes to the other controllers
	// hosting this virtual database (horizontal scalability, §4.1).
	distributor Distributor

	reads            atomic.Int64
	writes           atomic.Int64
	begins           atomic.Int64
	commits          atomic.Int64
	rollbacks        atomic.Int64
	cacheHits        atomic.Int64
	cacheMisses      atomic.Int64
	backendsDisabled atomic.Int64
	ctrlBusy         atomic.Int64
}

// Distributor forwards ordered write operations to every controller of a
// distributed virtual database; implemented in the distributed package.
type Distributor interface {
	// SubmitWrite broadcasts one write/commit/abort with total order and
	// returns the local application outcome.
	SubmitWrite(txID uint64, class sqlparser.StatementClass, sql string) (*backend.Result, error)
}

// NewVirtualDatabase builds a virtual database from its configuration.
func NewVirtualDatabase(cfg VDBConfig) *VirtualDatabase {
	repl := cfg.Replication
	if repl == nil {
		repl = balancer.FullReplication{}
	}
	bal := cfg.Balancer
	if bal == nil {
		bal = &balancer.LeastPending{}
	}
	auth := cfg.Auth
	if auth == nil {
		auth = NewAuthManager()
	}
	var plans *plancache.Cache
	if cfg.PlanCacheSize >= 0 {
		plans = plancache.New(cfg.PlanCacheSize)
	}
	v := &VirtualDatabase{
		name:            cfg.Name,
		auth:            auth,
		repl:            repl,
		bal:             bal,
		cache:           cfg.Cache,
		plans:           plans,
		log:             cfg.RecoveryLog,
		sched:           NewScheduler(cfg.ControllerID, cfg.EarlyResponse, cfg.ParallelTx),
		cost:            cfg.CtrlCost,
		recoveryWorkers: cfg.RecoveryWorkers,
	}
	if _, ok := repl.(balancer.Placement); ok {
		// Load accounting and the read barrier only serve dynamic
		// placement; full-replication vdbs never consult either, so they
		// skip the per-read costs entirely (loads stays nil: the Note
		// methods no-op on a nil receiver).
		v.dynamic = true
		v.loads = balancer.NewLoadStats()
	}
	v.health = newHealthMonitor(v, cfg.Health)
	v.health.start()
	v.placer = newPlacementManager(v, cfg.Placement)
	v.placer.start()
	return v
}

// Close stops the virtual database's background goroutines (health prober,
// re-integration supervisor, placement policy). Backends are not closed;
// they belong to the caller. Safe to call more than once.
func (v *VirtualDatabase) Close() {
	v.placer.close()
	v.health.close()
}

// Name returns the virtual database name.
func (v *VirtualDatabase) Name() string { return v.name }

// Auth returns the authentication manager.
func (v *VirtualDatabase) Auth() *AuthManager { return v.auth }

// Scheduler exposes the scheduler (for the distributed request manager).
func (v *VirtualDatabase) Scheduler() *Scheduler { return v.sched }

// Cache returns the result cache, or nil.
func (v *VirtualDatabase) Cache() *cache.ResultCache { return v.cache }

// PlanCache returns the parsing cache, or nil when disabled.
func (v *VirtualDatabase) PlanCache() *plancache.Cache { return v.plans }

// RecoveryLog returns the recovery log, or nil.
func (v *VirtualDatabase) RecoveryLog() recovery.Log { return v.log }

// Replication returns the replication policy.
func (v *VirtualDatabase) Replication() balancer.Replication { return v.repl }

// LoadStats returns the per-table per-backend traffic counters.
func (v *VirtualDatabase) LoadStats() *balancer.LoadStats { return v.loads }

// SetDistributor installs the horizontal-scalability write path.
func (v *VirtualDatabase) SetDistributor(d Distributor) {
	v.mu.Lock()
	v.distributor = d
	v.mu.Unlock()
}

// AddBackend attaches a backend, wires its failure callback, gathers its
// schema (dynamic schema gathering, §2.4.3) and enables it. A backend
// declaring a hosted-table subset (RAIDb-2) pins that placement on the
// replication policy before gathering, so the declaration — not the
// backend's current contents — is what routing trusts.
func (v *VirtualDatabase) AddBackend(b *backend.Backend) error {
	b.OnWriteFailure(v.writeFailureCallback)
	if decl := b.DeclaredTables(); len(decl) > 0 {
		pl, ok := v.repl.(balancer.Placement)
		if !ok {
			return fmt.Errorf("controller: backend %s declares hosted tables but virtual database %s uses %s replication; declared subsets need partial replication",
				b.Name(), v.name, v.repl.Name())
		}
		for _, t := range decl {
			pl.DeclareHost(t, b.Name())
		}
	}
	if v.repl.RequiresParsing() {
		names, err := b.TableNames()
		if err != nil {
			return fmt.Errorf("controller: gather schema of %s: %w", b.Name(), err)
		}
		for _, t := range names {
			hosts := v.repl.Hosts(t)
			hosts = append(hosts, b.Name())
			v.repl.NoteCreate(t, hosts)
		}
	}
	v.mu.Lock()
	v.backends = append(v.backends, b)
	v.mu.Unlock()
	b.Enable()
	return nil
}

// ValidatePlacement checks the declared table placement against the
// attached backends (every declared table hosted by at least one of them,
// no unknown host names). A no-op under full replication.
func (v *VirtualDatabase) ValidatePlacement() error {
	pl, ok := v.repl.(balancer.Placement)
	if !ok {
		return nil
	}
	bs := v.Backends()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name()
	}
	return pl.Validate(names)
}

// hostFilter returns the recovery host filter restricting a backend's
// checkpoint and replay streams to its hosted tables, or nil (host
// everything) when the replication policy has no explicit placement.
func (v *VirtualDatabase) hostFilter(b *backend.Backend) recovery.HostFilter {
	pl, ok := v.repl.(balancer.Placement)
	if !ok {
		return nil
	}
	name := b.Name()
	return func(table string) bool { return pl.Hosted(table, name) }
}

// Backends returns a snapshot of the backend list.
func (v *VirtualDatabase) Backends() []*backend.Backend {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return append([]*backend.Backend(nil), v.backends...)
}

// Backend looks a backend up by name.
func (v *VirtualDatabase) Backend(name string) (*backend.Backend, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, b := range v.backends {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrUnknownBackend, name)
}

// writeFailureCallback disables a backend that failed a write (§2.4.1).
// Statement-level errors (bad SQL, constraint violations, lock timeouts)
// fail identically on every replica and must not disable anything. Write
// failures never go through the suspect threshold: without 2PC a backend
// that failed a write has already diverged from the replicas that applied
// it, so the only safe containment is immediate disable.
func (v *VirtualDatabase) writeFailureCallback(fb *backend.Backend, err error) {
	if isSemanticError(err) {
		return
	}
	v.DisableBackend(fb.Name())
}

// DisableBackend disables a backend (after a write failure or for
// maintenance); the virtual database keeps serving from the others. The
// disable is crash-consistent (backend.Disable tears down in-flight work so
// every enqueued write still gets a terminal outcome) and counted exactly
// once even when several failures race: backend.Disable's state CAS decides
// the winner. The health monitor is notified so the re-integration
// supervisor, when enabled, starts bringing the backend back.
func (v *VirtualDatabase) DisableBackend(name string) {
	b, err := v.Backend(name)
	if err != nil {
		return
	}
	if b.Disable() {
		v.backendsDisabled.Add(1)
	}
	v.health.markDown(name)
}

// BackendHealth returns the health monitor's view of one backend.
func (v *VirtualDatabase) BackendHealth(name string) BackendStatus {
	return v.health.status(name)
}

// StatsSnapshot returns the counters.
func (v *VirtualDatabase) StatsSnapshot() Stats {
	return Stats{
		Reads:            v.reads.Load(),
		Writes:           v.writes.Load(),
		Begins:           v.begins.Load(),
		Commits:          v.commits.Load(),
		Rollbacks:        v.rollbacks.Load(),
		CacheHits:        v.cacheHits.Load(),
		CacheMisses:      v.cacheMisses.Load(),
		BackendsDisabled: v.backendsDisabled.Load(),
	}
}

// CtrlBusyNanos returns the accumulated controller CPU proxy.
func (v *VirtualDatabase) CtrlBusyNanos() int64 { return v.ctrlBusy.Load() }

func (v *VirtualDatabase) chargeCtrl(d time.Duration) {
	if d > 0 {
		v.ctrlBusy.Add(int64(d))
	}
}

// Session is one client connection to the virtual database, holding its
// transaction state. Sessions are not safe for concurrent use, matching a
// JDBC Connection.
type Session struct {
	vdb    *VirtualDatabase
	user   string
	txID   uint64
	closed bool
}

// NewSession authenticates and opens a session.
func (v *VirtualDatabase) NewSession(user, password string) (*Session, error) {
	if err := v.auth.Authenticate(user, password); err != nil {
		return nil, err
	}
	return &Session{vdb: v, user: user}, nil
}

// User returns the session's login.
func (s *Session) User() string { return s.user }

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.txID != 0 }

// TxID exposes the transaction identifier (0 when auto-committing).
func (s *Session) TxID() uint64 { return s.txID }

// Close rolls back any open transaction and invalidates the session. The
// rollback goes straight through the end-of-transaction path — no parse or
// plan-cache round trip for a fixed statement.
func (s *Session) Close() {
	if s.closed {
		return
	}
	if s.txID != 0 {
		_, _ = s.execEndTx(sqlparser.ClassRollback, &sqlparser.Rollback{})
	}
	s.closed = true
}

// Exec runs one SQL statement with optional positional parameters, routing
// it per §2.4.1: begin/commit/abort to all backends, reads to one backend
// chosen by the load balancer, updates to all backends hosting the affected
// tables. Repeat statements skip parsing and analysis entirely via the
// parsing cache (§2.4.2): the cached plan carries the parsed tree plus its
// precomputed class, table list, read columns and placeholder count.
func (s *Session) Exec(sql string, params []sqlval.Value) (*backend.Result, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	v := s.vdb
	plan, err := v.planFor(sql)
	if err != nil {
		return nil, err
	}
	// st is the cached shared tree until a mutating step (parameter
	// binding, macro rewriting) clones it; owned tracks that transition.
	st := plan.Stmt
	owned := false
	if len(params) > 0 || plan.NumParams > 0 {
		st = st.Clone()
		owned = true
		if err := sqlparser.BindParams(st, params); err != nil {
			return nil, err
		}
		sql = sqlparser.Render(st)
	} else {
		sql = plan.SQL
	}
	v.chargeCtrl(v.cost.PerRequest)

	switch plan.Class {
	case sqlparser.ClassBegin:
		return s.execBegin()
	case sqlparser.ClassCommit:
		return s.execEndTx(sqlparser.ClassCommit, st)
	case sqlparser.ClassRollback:
		return s.execEndTx(sqlparser.ClassRollback, st)
	case sqlparser.ClassRead:
		return v.execRead(s.txID, plan, st, sql)
	default:
		return s.execWrite(plan, st, sql, owned)
	}
}

// planFor returns the plan for a statement text, parsing and admitting it
// into the parsing cache on miss.
func (v *VirtualDatabase) planFor(sql string) (*plancache.Plan, error) {
	key := plancache.Normalize(sql)
	if v.plans != nil {
		if p := v.plans.Get(key); p != nil {
			return p, nil
		}
	}
	st, err := sqlparser.Parse(key)
	if err != nil {
		return nil, err
	}
	p := plancache.Build(key, st)
	if v.plans != nil {
		// Offer, not Put: literal-bound one-off statements pass the
		// admission doorkeeper so they cannot churn the LRU.
		v.plans.Offer(p)
	}
	return p, nil
}

// execBegin starts a transaction lazily: no backend is contacted until the
// transaction's first statement reaches it (§2.4.4 lazy transaction begin).
func (s *Session) execBegin() (*backend.Result, error) {
	v := s.vdb
	if s.txID != 0 {
		return nil, fmt.Errorf("controller: transaction already in progress")
	}
	s.txID = v.sched.NextTxID()
	v.begins.Add(1)
	if v.log != nil {
		if _, err := v.log.Append(recovery.Entry{User: s.user, TxID: s.txID, Class: recovery.ClassBegin}); err != nil {
			return nil, err
		}
	}
	return &backend.Result{}, nil
}

// execEndTx commits or aborts: the demarcation is sent to every backend
// (each no-ops if the transaction never started there).
func (s *Session) execEndTx(class sqlparser.StatementClass, st sqlparser.Statement) (*backend.Result, error) {
	v := s.vdb
	if s.txID == 0 {
		return nil, fmt.Errorf("controller: no transaction in progress")
	}
	txID := s.txID
	s.txID = 0
	if class == sqlparser.ClassCommit {
		v.commits.Add(1)
	} else {
		v.rollbacks.Add(1)
	}

	if d := v.distributorSnapshot(); d != nil {
		sql := "COMMIT"
		if class == sqlparser.ClassRollback {
			sql = "ROLLBACK"
		}
		return d.SubmitWrite(txID, class, sql)
	}

	outs, err := v.orderedWrite(txID, class, st, "", s.user, nil, false)
	if err != nil {
		return nil, err
	}
	return v.sched.WaitOutcomes(v.sched.Policy(), outs)
}

// dispatchEndTx enqueues the demarcation on every backend, delivering all
// outcomes on one shared channel. Must run inside the transaction's
// conflict-class critical section (orderedWrite).
func (v *VirtualDatabase) dispatchEndTx(txID uint64, class sqlparser.StatementClass, st sqlparser.Statement) backend.Outcomes {
	bs := v.Backends()
	outs := backend.Outcomes{C: make(chan backend.WriteOutcome, len(bs))}
	sql := "COMMIT"
	if class == sqlparser.ClassRollback {
		sql = "ROLLBACK"
	}
	for _, b := range bs {
		if !b.Enabled() {
			continue
		}
		b.EnqueueWriteTo(txID, class, st, sql, outs.C)
		outs.N++
	}
	return outs
}

// execWrite is the update path: macro rewriting, recovery logging, ordered
// dispatch to all backends hosting the affected tables, cache invalidation,
// then the early-response wait. owned reports whether st is already a
// private clone of the cached plan (after parameter binding); macro
// rewriting mutates the tree, so a shared tree is cloned first.
func (s *Session) execWrite(plan *plancache.Plan, st sqlparser.Statement, sql string, owned bool) (*backend.Result, error) {
	v := s.vdb
	v.writes.Add(1)

	if plan.HasMacros {
		if !owned {
			st = st.Clone()
		}
		v.sched.RewriteMacros(st)
		sql = sqlparser.Render(st)
	}

	if d := v.distributorSnapshot(); d != nil {
		return d.SubmitWrite(s.txID, sqlparser.ClassWrite, sql)
	}

	outs, err := v.orderedWrite(s.txID, sqlparser.ClassWrite, st, sql, s.user, plan.ConflictTables, plan.ConflictGlobal)
	if err != nil {
		return nil, err
	}
	return v.sched.WaitOutcomes(v.sched.Policy(), outs)
}

// orderedWrite is the single conflict-class sequencing point shared by the
// local and distributed write paths: it computes the operation's conflict
// class (a write's table footprint; a demarcation's accumulated transaction
// footprint), enters that class's critical section, appends the recovery
// log entry (with the footprint, so replay can reconstruct the partial
// order), enqueues the operation on the backends, and leaves the critical
// section without waiting for execution. Holding the class locks across log
// append and enqueue guarantees every pair of conflicting operations is
// logged and enqueued to all backends in one consistent relative order;
// disjoint classes run this section concurrently.
//
// For ClassWrite, tables/global is the statement's precomputed conflict
// class (from the plan cache); demarcations ignore it and lock their
// transaction's accumulated footprint instead.
func (v *VirtualDatabase) orderedWrite(txID uint64, class sqlparser.StatementClass, st sqlparser.Statement, sql, user string, tables []string, global bool) (backend.Outcomes, error) {
	lc := recovery.ClassWrite
	demarcation := false
	switch class {
	case sqlparser.ClassCommit:
		lc = recovery.ClassCommit
		demarcation = true
	case sqlparser.ClassRollback:
		lc = recovery.ClassRollback
		demarcation = true
	}
	if demarcation {
		// Peek, not take: the footprint must stay registered until the
		// demarcation is inside its critical section, so that a
		// re-integration holding LockAllWrites observes TxActive == false
		// only for transactions whose demarcation is already in the log.
		// (Only this session's goroutine appends to the footprint, so the
		// peeked copy cannot go stale between here and the lock.)
		tables, global = v.sched.PeekTxFootprint(txID)
	}

	ticket := v.sched.LockClass(tables, global)
	defer ticket.Unlock()
	if demarcation {
		v.sched.ForgetTx(txID)
	} else if class == sqlparser.ClassWrite {
		v.sched.NoteTxWrite(txID, tables, global)
	}
	if v.log != nil {
		logTables := tables
		if class == sqlparser.ClassWrite && global && len(logTables) == 0 && st != nil {
			// Globally sequenced statements (DDL) still reference concrete
			// tables; record them so a partially-replicated backend's replay
			// can keep only the DDL it hosts. Global stays set — the entry
			// remains an ordering barrier.
			logTables = st.Tables()
		}
		if _, err := v.log.Append(recovery.Entry{User: user, TxID: txID, Class: lc, SQL: sql, Tables: logTables, Global: global, V: recovery.FootprintVersion}); err != nil {
			return backend.Outcomes{}, err
		}
	}
	if class == sqlparser.ClassWrite {
		return v.dispatchWrite(txID, st, sql, tables, global)
	}
	return v.dispatchEndTx(txID, class, st), nil
}

// dispatchWrite enqueues a write on every backend hosting the affected
// tables and maintains the dynamic schema and the cache, delivering all
// outcomes on one shared channel. Must run inside the write's
// conflict-class critical section (orderedWrite): conflicting writes
// invalidate the cache and enqueue in one consistent order, and DDL holds
// the class gate exclusively so schema maintenance never races a write.
func (v *VirtualDatabase) dispatchWrite(txID uint64, st sqlparser.Statement, sql string, cTables []string, cGlobal bool) (backend.Outcomes, error) {
	tables := st.Tables()
	targets := v.repl.WriteTargets(tables, v.Backends())
	if len(targets) == 0 {
		if _, ok := v.repl.(balancer.Placement); ok {
			// Placement, not health, is the cause: name the footprint so the
			// client can tell a routing impossibility from a dead cluster.
			return backend.Outcomes{}, fmt.Errorf("%w: %w", ErrNoWriteTarget, &balancer.NoHostError{Tables: tables})
		}
		return backend.Outcomes{}, ErrNoWriteTarget
	}
	// Deterministic dispatch order keeps logs and traces comparable.
	sort.Slice(targets, func(i, j int) bool { return targets[i].Name() < targets[j].Name() })

	outs := backend.NewOutcomes(len(targets))
	for _, b := range targets {
		b.EnqueueWriteClassTo(txID, sqlparser.ClassWrite, st, sql, cTables, cGlobal, outs.C)
		v.loads.NoteWrite(tables, b.Name())
	}

	// Dynamic schema maintenance (§2.4.3: updated on each create or drop).
	switch t := st.(type) {
	case *sqlparser.CreateTable:
		names := make([]string, len(targets))
		for i, b := range targets {
			names[i] = b.Name()
		}
		v.repl.NoteCreate(t.Table, names)
	case *sqlparser.DropTable:
		v.repl.NoteDrop(t.Table)
	}

	if v.cache != nil {
		inv := v.cache.InvalidateWrite(st)
		if d := v.cost.PerInvalidation; d > 0 && inv > 0 {
			v.chargeCtrl(time.Duration(inv) * d)
		}
	}
	return outs, nil
}

// execRead is the read path: result cache, then load-balanced read-one.
// The plan supplies the precomputed table and column footprint, so a cache
// admission does not re-analyze the statement.
func (v *VirtualDatabase) execRead(txID uint64, plan *plancache.Plan, st sqlparser.Statement, sql string) (*backend.Result, error) {
	v.reads.Add(1)
	if v.cache != nil && txID == 0 {
		if res := v.cache.Get(sql); res != nil {
			v.cacheHits.Add(1)
			v.chargeCtrl(v.cost.PerCacheHit)
			return res, nil
		}
		v.cacheMisses.Add(1)
	}

	if v.dynamic {
		// The read barrier only matters when a placement move may drop a
		// copy out from under a routed read; static vdbs skip it.
		v.sched.BeginRead()
		defer v.sched.EndRead()
	} else {
		v.sched.GateRead()
		defer v.sched.UngateRead()
	}

	tables := plan.Tables
	var lastErr error
	// Retry on backend failure: the read fails over to another candidate
	// (the failed backend is disabled by its callback or explicitly here).
	for attempt := 0; attempt < 8; attempt++ {
		cands := v.repl.ReadCandidates(tables, v.Backends())
		b, err := v.bal.Choose(cands)
		if err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			if _, ok := v.repl.(balancer.Placement); ok && len(cands) == 0 {
				// No enabled backend hosts the read's full footprint (a
				// cross-partition join, or every host of a table down):
				// report the placement failure, not a generic no-backend.
				return nil, &balancer.NoHostError{Tables: tables}
			}
			return nil, err
		}
		res, err := b.Read(txID, st, sql)
		if err == nil {
			v.loads.NoteRead(tables, b.Name())
			if v.cache != nil && txID == 0 {
				v.cache.PutFootprint(sql, plan.Tables, plan.ReadCols, plan.ReadColsOK, res)
			}
			return res, nil
		}
		lastErr = err
		if errors.Is(err, backend.ErrDisabled) || errors.Is(err, backend.ErrClosed) {
			continue
		}
		if txID != 0 {
			// Inside a transaction the read is pinned to transactional
			// state; failing over silently would lose isolation.
			return nil, err
		}
		// Engine-level errors (bad SQL, missing table) are not failover
		// material: every replica would answer the same.
		if isSemanticError(err) {
			return nil, err
		}
		// Reads are retryable, so a read failure only raises suspicion;
		// the monitor disables the backend once the consecutive-failure
		// threshold trips (1 by default — the classic one-strike rule).
		v.health.failure(b.Name())
	}
	return nil, lastErr
}

// isSemanticError distinguishes statement errors (identical on every
// replica, so failover is pointless and disabling a backend would be wrong)
// from backend faults. The engine, parser, value layer and backend export
// errors.Is-able sentinels, so the classification survives message-text
// changes.
func isSemanticError(err error) bool {
	return errors.Is(err, sqlengine.ErrSemantic) ||
		errors.Is(err, sqlparser.ErrParse) ||
		errors.Is(err, sqlval.ErrValue) ||
		errors.Is(err, backend.ErrStatement)
}

func (v *VirtualDatabase) distributorSnapshot() Distributor {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.distributor
}

// PlanWrite resolves an ordered write delivery to its parsed statement and
// conflict footprint, the class DispatchPlanned will sequence it under. The
// parsing cache is consulted but not populated: ordered writes arrive with
// parameters already rendered as literals, so their texts rarely repeat and
// would only churn the LRU. Demarcations carry no statement footprint —
// their class is the transaction's accumulated footprint, resolved inside
// the sequencer at lock time.
func (v *VirtualDatabase) PlanWrite(class sqlparser.StatementClass, sql string) (st sqlparser.Statement, tables []string, global bool, err error) {
	switch class {
	case sqlparser.ClassCommit:
		return &sqlparser.Commit{}, nil, false, nil
	case sqlparser.ClassRollback:
		return &sqlparser.Rollback{}, nil, false, nil
	}
	key := plancache.Normalize(sql)
	if v.plans != nil {
		if p := v.plans.Get(key); p != nil {
			return p.Stmt, p.ConflictTables, p.ConflictGlobal, nil
		}
	}
	st, err = sqlparser.Parse(key)
	if err != nil {
		return nil, nil, false, err
	}
	tables, global = sqlparser.ConflictClass(st)
	return st, tables, global, nil
}

// DispatchPlanned hands one ordered delivery, pre-resolved by PlanWrite, to
// the same conflict-class sequencer the local path uses (orderedWrite), so
// conflicting deliveries keep their total-order position while disjoint
// classes execute in parallel on the backends' conflict lanes. It never
// blocks on backend execution, so a transactional write waiting on database
// locks cannot stall the delivery of the commit that would release them.
func (v *VirtualDatabase) DispatchPlanned(txID uint64, class sqlparser.StatementClass, st sqlparser.Statement, sql, user string, tables []string, global bool) (backend.Outcomes, error) {
	return v.orderedWrite(txID, class, st, sql, user, tables, global)
}

// WaitPolicy applies the virtual database's early-response policy to a
// cluster write's shared outcome channel (exported for the distributed
// request manager).
func (v *VirtualDatabase) WaitPolicy(outs backend.Outcomes) (*backend.Result, error) {
	return v.sched.WaitOutcomes(v.sched.Policy(), outs)
}

// AbortSessionTx releases a transaction's backend connections without going
// through SQL, used when a network session dies.
func (v *VirtualDatabase) AbortSessionTx(txID uint64) {
	v.sched.ForgetTx(txID)
	for _, b := range v.Backends() {
		b.AbortTx(txID)
	}
}
