package controller

import (
	"errors"
	"sync"
	"testing"
	"time"

	"cjdbc/internal/backend"
)

// outcomeSpec describes one backend's simulated outcome.
type outcomeSpec struct {
	res   *backend.Result
	err   error
	after time.Duration
}

// outcomesFrom builds the shared outcome channel of one cluster write:
// immediate outcomes are pre-buffered in order, delayed ones arrive later.
func outcomesFrom(specs ...outcomeSpec) backend.Outcomes {
	outs := backend.NewOutcomes(len(specs))
	for _, sp := range specs {
		if sp.after == 0 {
			outs.C <- backend.WriteOutcome{Res: sp.res, Err: sp.err}
		} else {
			go func(sp outcomeSpec) {
				time.Sleep(sp.after)
				outs.C <- backend.WriteOutcome{Res: sp.res, Err: sp.err}
			}(sp)
		}
	}
	return outs
}

func TestWaitOutcomesAllWaitsForEveryBackend(t *testing.T) {
	s := NewScheduler(1, ResponseAll, true)
	slow := 30 * time.Millisecond
	start := time.Now()
	res, err := s.WaitOutcomes(ResponseAll, outcomesFrom(
		outcomeSpec{res: &backend.Result{RowsAffected: 1}},
		outcomeSpec{res: &backend.Result{RowsAffected: 1}, after: slow},
	))
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if time.Since(start) < slow {
		t.Error("ResponseAll returned before the slow backend")
	}
}

func TestWaitOutcomesFirstReturnsEarly(t *testing.T) {
	s := NewScheduler(1, ResponseFirst, true)
	start := time.Now()
	res, err := s.WaitOutcomes(ResponseFirst, outcomesFrom(
		outcomeSpec{res: &backend.Result{RowsAffected: 1}},
		outcomeSpec{res: &backend.Result{RowsAffected: 1}, after: 200 * time.Millisecond},
	))
	if err != nil || res == nil {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("ResponseFirst waited for the slow backend")
	}
}

func TestWaitOutcomesMajority(t *testing.T) {
	s := NewScheduler(1, ResponseMajority, true)
	start := time.Now()
	_, err := s.WaitOutcomes(ResponseMajority, outcomesFrom(
		outcomeSpec{res: &backend.Result{}},
		outcomeSpec{res: &backend.Result{}, after: 10 * time.Millisecond},
		outcomeSpec{res: &backend.Result{}, after: 300 * time.Millisecond},
	))
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 150*time.Millisecond {
		t.Error("majority waited for the slowest backend")
	}
}

func TestWaitOutcomesPartialFailureSucceeds(t *testing.T) {
	// No 2PC (§2.4.1): a failed backend gets disabled, the operation
	// stands on the survivors.
	s := NewScheduler(1, ResponseAll, true)
	res, err := s.WaitOutcomes(ResponseAll, outcomesFrom(
		outcomeSpec{err: errors.New("disk died")},
		outcomeSpec{res: &backend.Result{RowsAffected: 1}},
	))
	if err != nil || res == nil {
		t.Fatalf("partial failure: res=%v err=%v", res, err)
	}
}

func TestWaitOutcomesTotalFailureFails(t *testing.T) {
	s := NewScheduler(1, ResponseAll, true)
	boom := errors.New("boom")
	_, err := s.WaitOutcomes(ResponseAll, outcomesFrom(
		outcomeSpec{err: boom},
		outcomeSpec{err: boom},
	))
	if !errors.Is(err, boom) {
		t.Fatalf("total failure: %v", err)
	}
	if _, err := s.WaitOutcomes(ResponseAll, backend.Outcomes{}); !errors.Is(err, ErrNoWriteTarget) {
		t.Fatalf("empty targets: %v", err)
	}
}

func TestWaitOutcomesFirstSkipsEarlyError(t *testing.T) {
	// With ResponseFirst, an early failure must not mask a later success.
	s := NewScheduler(1, ResponseFirst, true)
	res, err := s.WaitOutcomes(ResponseFirst, outcomesFrom(
		outcomeSpec{err: errors.New("bad disk")},
		outcomeSpec{res: &backend.Result{RowsAffected: 1}, after: 10 * time.Millisecond},
	))
	if err != nil || res == nil {
		t.Fatalf("first-with-error: res=%v err=%v", res, err)
	}
}

func TestTxIDsUniqueAcrossControllers(t *testing.T) {
	s1 := NewScheduler(1, ResponseAll, true)
	s2 := NewScheduler(2, ResponseAll, true)
	seen := make(map[uint64]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, s := range []*Scheduler{s1, s2} {
		wg.Add(1)
		go func(s *Scheduler) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				id := s.NextTxID()
				mu.Lock()
				if id == 0 || seen[id] {
					t.Errorf("duplicate or zero txid %d", id)
					mu.Unlock()
					return
				}
				seen[id] = true
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
}

func TestPolicyStrings(t *testing.T) {
	if ResponseAll.String() != "all" || ResponseFirst.String() != "first" || ResponseMajority.String() != "majority" {
		t.Error("policy names")
	}
}
