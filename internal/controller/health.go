package controller

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cjdbc/internal/backend"
)

// ErrNoReintegrationSource is returned when automatic re-integration needs a
// bootstrap backup but no enabled backend is available to dump.
var ErrNoReintegrationSource = errors.New("controller: no enabled backend to back up for re-integration")

// BackendStatus is the health monitor's view of one backend, a refinement of
// the backend's own enabled/disabled/recovering machine: it adds the suspect
// grace period before a disable and the terminal failed state after
// re-integration gives up.
type BackendStatus int

// Backend health statuses. The lifecycle is
// healthy → suspect → down → recovering → healthy, with failed as the
// terminal state when every re-integration attempt has been exhausted.
const (
	StatusHealthy BackendStatus = iota
	// StatusSuspect: one or more consecutive read/probe failures, still
	// below the disable threshold. The backend keeps serving.
	StatusSuspect
	// StatusDown: disabled; eligible for automatic re-integration.
	StatusDown
	// StatusRecovering: a re-integration attempt (restore + catch-up) is in
	// flight.
	StatusRecovering
	// StatusFailed: re-integration attempts exhausted; the backend stays
	// disabled until an operator intervenes (manual RestoreBackend).
	StatusFailed
)

// String names the status.
func (s BackendStatus) String() string {
	switch s {
	case StatusHealthy:
		return "healthy"
	case StatusSuspect:
		return "suspect"
	case StatusDown:
		return "down"
	case StatusRecovering:
		return "recovering"
	case StatusFailed:
		return "failed"
	}
	return "unknown"
}

// HealthConfig tunes failure containment and automatic re-integration. The
// zero value reproduces the pre-monitor behavior: every non-semantic read
// failure disables immediately (threshold 1), no background probing, no
// automatic re-integration.
type HealthConfig struct {
	// SuspectThreshold is the number of consecutive non-semantic read or
	// probe failures before a backend is disabled. 0 means 1 (one strike).
	// Write failures ignore the threshold and disable immediately: without
	// 2PC a backend that failed a write has diverged (§2.4.1).
	SuspectThreshold int
	// ProbeInterval enables a background prober that pings every enabled
	// backend each interval; probe failures count toward SuspectThreshold
	// and probe successes clear the suspect counter. 0 disables probing.
	ProbeInterval time.Duration
	// AutoReintegrate starts a supervisor goroutine that restores disabled
	// backends from the latest backup (taking a bootstrap backup from a
	// healthy backend if none exists) and re-enables them under live
	// traffic, with capped exponential backoff between attempts.
	AutoReintegrate bool
	// ReintegrateBackoff is the delay before the first retry after a failed
	// re-integration attempt (the first attempt runs immediately on
	// disable). 0 means 50ms.
	ReintegrateBackoff time.Duration
	// ReintegrateBackoffCap bounds the exponential backoff. 0 means 2s.
	ReintegrateBackoffCap time.Duration
	// ReintegrateAttempts is the number of attempts before the backend is
	// marked failed and left alone. 0 means 8; negative means unlimited.
	ReintegrateAttempts int
}

// backendHealth is one backend's monitor state. Guarded by healthMonitor.mu.
type backendHealth struct {
	status   BackendStatus
	failures int       // consecutive read/probe failures while serving
	attempts int       // re-integration attempts since the disable
	next     time.Time // earliest time for the next attempt
}

// healthMonitor runs the per-backend health state machine: it accumulates
// read/probe failures into a suspect counter, disables a backend at the
// threshold, and (when configured) drives automatic re-integration with
// capped exponential backoff. It replaces the one-strike
// writeFailureCallback-only policy: writes still disable on first failure
// (no 2PC), but reads and probes get a grace period, and disabled backends
// come back on their own.
type healthMonitor struct {
	v   *VirtualDatabase
	cfg HealthConfig

	mu     sync.Mutex
	states map[string]*backendHealth

	wake chan struct{} // kicks the supervisor out of its backoff sleep
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	backups atomic.Uint64 // names bootstrap checkpoints uniquely
}

func newHealthMonitor(v *VirtualDatabase, cfg HealthConfig) *healthMonitor {
	if cfg.SuspectThreshold <= 0 {
		cfg.SuspectThreshold = 1
	}
	if cfg.ReintegrateBackoff <= 0 {
		cfg.ReintegrateBackoff = 50 * time.Millisecond
	}
	if cfg.ReintegrateBackoffCap <= 0 {
		cfg.ReintegrateBackoffCap = 2 * time.Second
	}
	if cfg.ReintegrateAttempts == 0 {
		cfg.ReintegrateAttempts = 8
	}
	return &healthMonitor{
		v:      v,
		cfg:    cfg,
		states: make(map[string]*backendHealth),
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
}

// start launches the background goroutines actually configured; with the
// zero config it launches nothing, so virtual databases that never asked for
// probing or auto-reintegration carry no goroutines to leak.
func (m *healthMonitor) start() {
	if m.cfg.ProbeInterval > 0 {
		m.wg.Add(1)
		go m.prober()
	}
	if m.cfg.AutoReintegrate {
		m.wg.Add(1)
		go m.supervisor()
	}
}

// close stops the monitor's goroutines and waits for them. Idempotent.
func (m *healthMonitor) close() {
	m.once.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// stateLocked returns (creating if needed) a backend's state. Caller holds mu.
func (m *healthMonitor) stateLocked(name string) *backendHealth {
	st := m.states[name]
	if st == nil {
		st = &backendHealth{}
		m.states[name] = st
	}
	return st
}

// status returns the monitor's view of one backend.
func (m *healthMonitor) status(name string) BackendStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stateLocked(name).status
}

// failure records one non-semantic read or probe failure. At the threshold
// the backend is disabled; below it the backend turns suspect but keeps
// serving. Failures on backends already down/recovering/failed are the
// expected echo of the outage and are ignored.
func (m *healthMonitor) failure(name string) {
	m.mu.Lock()
	st := m.stateLocked(name)
	if st.status != StatusHealthy && st.status != StatusSuspect {
		m.mu.Unlock()
		return
	}
	st.failures++
	trip := st.failures >= m.cfg.SuspectThreshold
	if !trip {
		st.status = StatusSuspect
	}
	m.mu.Unlock()
	if trip {
		m.v.DisableBackend(name)
	}
}

// success clears the suspect counter after a successful probe.
func (m *healthMonitor) success(name string) {
	m.mu.Lock()
	st := m.stateLocked(name)
	if st.status == StatusSuspect {
		st.status = StatusHealthy
	}
	st.failures = 0
	m.mu.Unlock()
}

// markDown transitions a backend to down (idempotent) and kicks the
// supervisor. Attempts restart only when the backend was serving: a disable
// racing a recovery keeps the attempt budget it already spent.
func (m *healthMonitor) markDown(name string) {
	m.mu.Lock()
	st := m.stateLocked(name)
	switch st.status {
	case StatusHealthy, StatusSuspect:
		st.attempts = 0
		fallthrough
	case StatusRecovering:
		st.status = StatusDown
		st.failures = 0
		st.next = time.Time{} // due immediately
	}
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// markHealthy records a successful (manual or automatic) re-integration.
func (m *healthMonitor) markHealthy(name string) {
	m.mu.Lock()
	st := m.stateLocked(name)
	st.status = StatusHealthy
	st.failures = 0
	st.attempts = 0
	m.mu.Unlock()
}

// prober pings every enabled backend each interval. A probe is deliberately
// cheap (backend.Ping does not execute SQL), so the prober detects silent
// deaths between client requests without adding load.
func (m *healthMonitor) prober() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
		}
		for _, b := range m.v.Backends() {
			if !b.Enabled() {
				continue
			}
			if err := b.Ping(); err != nil {
				m.failure(b.Name())
			} else {
				m.success(b.Name())
			}
		}
	}
}

// supervisor drives automatic re-integration: whenever a backend is down and
// its backoff has elapsed, it retries restore-from-latest-dump plus log
// catch-up under live traffic, until the backend is serving again or the
// attempt budget is exhausted.
func (m *healthMonitor) supervisor() {
	defer m.wg.Done()
	for {
		wait := m.nextWait()
		timer := time.NewTimer(wait)
		select {
		case <-m.stop:
			timer.Stop()
			return
		case <-m.wake:
			timer.Stop()
		case <-timer.C:
		}
		for _, b := range m.v.Backends() {
			select {
			case <-m.stop:
				return
			default:
			}
			m.maybeReintegrate(b)
		}
	}
}

// nextWait computes how long the supervisor may sleep: until the earliest
// pending retry, or a long idle tick when nothing is down.
func (m *healthMonitor) nextWait() time.Duration {
	const idle = time.Minute
	m.mu.Lock()
	defer m.mu.Unlock()
	wait := idle
	now := time.Now()
	for _, st := range m.states {
		if st.status != StatusDown {
			continue
		}
		d := st.next.Sub(now)
		if d < time.Millisecond {
			d = time.Millisecond
		}
		if d < wait {
			wait = d
		}
	}
	return wait
}

// maybeReintegrate runs one re-integration attempt if the backend is down
// and due.
func (m *healthMonitor) maybeReintegrate(b *backend.Backend) {
	name := b.Name()
	m.mu.Lock()
	st := m.stateLocked(name)
	if st.status != StatusDown || time.Now().Before(st.next) {
		m.mu.Unlock()
		return
	}
	st.status = StatusRecovering
	st.attempts++
	attempt := st.attempts
	m.mu.Unlock()

	err := m.v.reintegrate(b)

	m.mu.Lock()
	defer m.mu.Unlock()
	st = m.stateLocked(name)
	if st.status != StatusRecovering {
		// A concurrent disable raced the attempt's tail; the backend is
		// down again and will be retried on its own schedule.
		return
	}
	if err == nil {
		st.status = StatusHealthy
		st.failures = 0
		st.attempts = 0
		return
	}
	if m.cfg.ReintegrateAttempts > 0 && attempt >= m.cfg.ReintegrateAttempts {
		st.status = StatusFailed
		return
	}
	st.status = StatusDown
	st.next = time.Now().Add(m.backoff(attempt))
}

// backoff returns the delay before the next attempt: capped exponential with
// deterministic jitter (derived from the attempt number, no randomness, so a
// seeded chaos scenario replays identically).
func (m *healthMonitor) backoff(attempt int) time.Duration {
	d := m.cfg.ReintegrateBackoff
	for i := 1; i < attempt && d < m.cfg.ReintegrateBackoffCap; i++ {
		d *= 2
	}
	if d > m.cfg.ReintegrateBackoffCap {
		d = m.cfg.ReintegrateBackoffCap
	}
	if j := d / 4; j > 0 {
		d += time.Duration(uint64(attempt)*2654435761%uint64(2*j)) - j
	}
	return d
}

// reintegrate brings one disabled backend back: restore from the latest
// backup, replay the recovery log from the backup's checkpoint, final
// catch-up under a write quiesce, enable. A backup is only usable if it
// covers every table the backend hosts (under RAIDb-2 partial replication a
// dump taken from one donor rarely does); when the cached dump falls short
// it bootstraps a fresh one — from a single covering donor when one exists
// (off-line dump, no write stall), otherwise assembled from several donors
// under the write quiesce (BootstrapBackupFor). The attempt fails fast
// while the backend's fault is still active (the restore's first DirectExec
// statement fails), so the supervisor's backoff loop is also the health
// probe for down backends.
func (v *VirtualDatabase) reintegrate(b *backend.Backend) error {
	needed := v.neededTables(b)
	if dump := v.lastDump.Load(); dump != nil && dumpCovers(dump, needed) {
		return v.RestoreBackend(b.Name(), dump)
	}
	var src *backend.Backend
	anyEnabled := false
	for _, cand := range v.Backends() {
		if cand == b || !cand.Enabled() {
			continue
		}
		anyEnabled = true
		names, err := cand.TableNames()
		if err != nil {
			continue
		}
		have := make(map[string]bool, len(names))
		for _, t := range names {
			have[t] = true
		}
		covers := true
		for _, t := range needed {
			if !have[t] {
				covers = false
				break
			}
		}
		if covers {
			src = cand
			break
		}
	}
	if !anyEnabled {
		return ErrNoReintegrationSource
	}
	name := fmt.Sprintf("auto-backup-%d", v.health.backups.Add(1))
	if src != nil {
		d, err := v.BackupBackend(src.Name(), name)
		if err != nil {
			return err
		}
		return v.RestoreBackend(b.Name(), d)
	}
	d, err := v.BootstrapBackupFor(b, name)
	if err != nil {
		return err
	}
	return v.RestoreBackend(b.Name(), d)
}
