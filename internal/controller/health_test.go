package controller

import (
	"errors"
	"testing"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/recovery"
)

var errProbe = errors.New("probe boom")

// waitStatus polls the monitor until the backend reaches the wanted status.
func waitStatus(t *testing.T, v *VirtualDatabase, name string, want BackendStatus) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got := v.BackendHealth(name); got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend %s health = %s, want %s", name, v.BackendHealth(name), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSuspectThresholdStateMachine drives the monitor's failure/success
// accounting directly: below the threshold a backend is suspect but stays
// enabled and serving; a success resets the count; reaching the threshold
// disables it.
func TestSuspectThresholdStateMachine(t *testing.T) {
	v, _ := mkVDB(t, 2, VDBConfig{ParallelTx: true, Health: HealthConfig{SuspectThreshold: 3}}, seedSchema...)
	t.Cleanup(v.Close)
	b, _ := v.Backend("db0")

	v.health.failure("db0")
	v.health.failure("db0")
	if got := v.BackendHealth("db0"); got != StatusSuspect {
		t.Fatalf("after 2 failures: %s, want suspect", got)
	}
	if !b.Enabled() {
		t.Fatal("suspect backend must stay enabled")
	}
	v.health.success("db0")
	if got := v.BackendHealth("db0"); got != StatusHealthy {
		t.Fatalf("after success: %s, want healthy", got)
	}
	// The reset means three more failures are needed, not one.
	v.health.failure("db0")
	v.health.failure("db0")
	if !b.Enabled() {
		t.Fatal("disabled before the threshold")
	}
	v.health.failure("db0")
	if b.Enabled() {
		t.Fatal("still enabled at the threshold")
	}
	if got := v.BackendHealth("db0"); got != StatusDown {
		t.Fatalf("after threshold: %s, want down", got)
	}
	if got := v.StatsSnapshot().BackendsDisabled; got != 1 {
		t.Fatalf("disabled count = %d, want 1", got)
	}
}

// TestProbeDisablesUnresponsiveBackend: the periodic ping trips the suspect
// threshold on a backend that stops answering, with no client traffic at
// all.
func TestProbeDisablesUnresponsiveBackend(t *testing.T) {
	v, _ := mkVDB(t, 2, VDBConfig{ParallelTx: true, Health: HealthConfig{
		SuspectThreshold: 2,
		ProbeInterval:    2 * time.Millisecond,
	}}, seedSchema...)
	t.Cleanup(v.Close)
	b, _ := v.Backend("db1")
	b.SetFaultPlan(backend.NewFaultPlan(&backend.Rule{Kind: backend.OpProbe, Err: errProbe}))
	waitStatus(t, v, "db1", StatusDown)
	if b.Enabled() {
		t.Fatal("unresponsive backend still enabled")
	}
	if st := v.BackendHealth("db0"); st != StatusHealthy {
		t.Fatalf("healthy backend got probed into %s", st)
	}
}

// TestWriteFailureBypassesSuspectThreshold: a failed write disables the
// backend immediately regardless of the threshold — there is no 2PC, so a
// backend that failed a write the others applied has already diverged
// (§2.4.1).
func TestWriteFailureBypassesSuspectThreshold(t *testing.T) {
	v, engines := mkVDB(t, 2, VDBConfig{ParallelTx: true, Health: HealthConfig{SuspectThreshold: 5}}, seedSchema...)
	t.Cleanup(v.Close)
	b, _ := v.Backend("db1")
	b.InjectFailure(errProbe)
	s := openSession(t, v)
	exec(t, s, "INSERT INTO item (i_id, i_title, i_cost) VALUES (4, 'd', 40)") // partial success on db0
	// The disable callback runs on its own goroutine; what "at once" means
	// is no suspect grace period, not synchronously-with-the-ack.
	deadline := time.Now().Add(10 * time.Second)
	for b.Enabled() {
		if time.Now().After(deadline) {
			t.Fatal("backend that failed a write must be disabled at once, not suspected")
		}
		time.Sleep(time.Millisecond)
	}
	if got := countOn(t, engines[0], "SELECT COUNT(*) FROM item"); got != 4 {
		t.Fatalf("survivor rows = %d, want 4", got)
	}
}

// TestAutoReintegration is the supervisor's happy path: a backend crashes
// on a write, the monitor disables it, and once the fault heals the
// supervisor restores it from the cached backup and replays it back to
// byte-parity — no operator involved. Writes issued while it was down must
// be present afterwards.
func TestAutoReintegration(t *testing.T) {
	v, engines := mkVDB(t, 2, VDBConfig{
		ParallelTx:  true,
		RecoveryLog: recovery.NewMemoryLog(),
		Health: HealthConfig{
			AutoReintegrate:       true,
			ReintegrateBackoff:    2 * time.Millisecond,
			ReintegrateBackoffCap: 20 * time.Millisecond,
			ReintegrateAttempts:   -1,
		},
	}, seedSchema...)
	t.Cleanup(v.Close)
	if _, err := v.BackupBackend("db0", "genesis"); err != nil {
		t.Fatal(err)
	}
	b, _ := v.Backend("db1")
	plan := backend.NewFaultPlan(&backend.Rule{Kind: backend.OpWrite, Times: 1, Crash: true})
	b.SetFaultPlan(plan)

	s := openSession(t, v)
	exec(t, s, "INSERT INTO item (i_id, i_title, i_cost) VALUES (4, 'd', 40)") // crashes db1
	// The write ack (partial success) can land before the failure callback
	// finishes disabling db1; while the plan is down every re-integration
	// attempt fails too, so the backend must settle disabled.
	deadline := time.Now().Add(10 * time.Second)
	for b.Enabled() {
		if time.Now().After(deadline) {
			t.Fatal("db1 should be disabled after the crash")
		}
		time.Sleep(time.Millisecond)
	}
	exec(t, s, "INSERT INTO item (i_id, i_title, i_cost) VALUES (5, 'e', 50)") // while down

	plan.Heal()
	waitStatus(t, v, "db1", StatusHealthy)
	if got := countOn(t, engines[1], "SELECT COUNT(*) FROM item"); got != 5 {
		t.Fatalf("re-integrated backend rows = %d, want 5", got)
	}
}

// TestReintegrationAttemptsExhausted: without a recovery log every restore
// attempt fails, and after the configured budget the backend lands in the
// terminal failed state instead of retrying forever.
func TestReintegrationAttemptsExhausted(t *testing.T) {
	v, _ := mkVDB(t, 2, VDBConfig{ParallelTx: true, Health: HealthConfig{
		AutoReintegrate:       true,
		ReintegrateBackoff:    time.Millisecond,
		ReintegrateBackoffCap: 2 * time.Millisecond,
		ReintegrateAttempts:   2,
	}}, seedSchema...)
	t.Cleanup(v.Close)
	v.DisableBackend("db1")
	waitStatus(t, v, "db1", StatusFailed)
	b, _ := v.Backend("db1")
	if b.Enabled() {
		t.Fatal("failed backend must not come back")
	}
}

// TestDisableBackendCountsOnce is the check-then-act regression test:
// concurrent disables of the same backend must increment the disabled
// counter exactly once.
func TestDisableBackendCountsOnce(t *testing.T) {
	v, _ := mkVDB(t, 2, VDBConfig{ParallelTx: true}, seedSchema...)
	t.Cleanup(v.Close)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			v.DisableBackend("db0")
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := v.StatsSnapshot().BackendsDisabled; got != 1 {
		t.Fatalf("disabled count = %d, want 1", got)
	}
}

// TestHealthStatusUnknownBackend: asking about a backend the monitor has
// never seen reports healthy (the zero value), not a phantom outage.
func TestHealthStatusUnknownBackend(t *testing.T) {
	v, _ := mkVDB(t, 1, VDBConfig{ParallelTx: true}, seedSchema...)
	t.Cleanup(v.Close)
	if got := v.BackendHealth("nope"); got != StatusHealthy {
		t.Fatalf("unknown backend health = %s, want healthy", got)
	}
}
