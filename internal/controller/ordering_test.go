package controller

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/sqlengine"
	"cjdbc/internal/sqlparser"
)

// gateDriver wraps the engine driver and blocks Exec calls whose SQL
// matches a prefix until the gate channel is closed, standing in for an
// arbitrarily slow replica. Reservation calls pass straight through: the
// gate delays execution, never ticket issuance — exactly the window in
// which a replica could reorder writes before this PR.
type gateDriver struct {
	inner backend.Driver
	match string
	gate  chan struct{}
}

func (d *gateDriver) Open() (backend.Conn, error) {
	c, err := d.inner.Open()
	if err != nil {
		return nil, err
	}
	return &gateConn{inner: c, d: d}, nil
}

type gateConn struct {
	inner backend.Conn
	d     *gateDriver
}

func (c *gateConn) Exec(st sqlparser.Statement, sql string) (*backend.Result, error) {
	if strings.HasPrefix(sql, c.d.match) {
		<-c.d.gate
	}
	return c.inner.Exec(st, sql)
}

func (c *gateConn) Begin() error    { return c.inner.Begin() }
func (c *gateConn) Commit() error   { return c.inner.Commit() }
func (c *gateConn) Rollback() error { return c.inner.Rollback() }
func (c *gateConn) Close() error    { return c.inner.Close() }

func (c *gateConn) ReserveWriteLock(table string) {
	c.inner.(backend.LockReserver).ReserveWriteLock(table)
}

func (c *gateConn) ReserveWriteLockNotify(table string, granted func()) {
	c.inner.(backend.TicketReserver).ReserveWriteLockNotify(table, granted)
}

// TestAutoCommitTransactionalPairAppliesInSequencerOrder is the
// deterministic acceptance test for reservation-ordered writes: a
// conflicting auto-commit/transactional pair must apply in sequencer order
// on every replica even when one replica is artificially slow.
//
// The sequencer admits the auto-commit write W1 (v = v + 1) before the
// transactional write W2 (v = v * 10). The slow replica's gate stalls W1's
// execution until after W2's transaction has committed cluster-wide (the
// early-response FIRST policy lets the client race ahead on the fast
// replica). Before this PR, W1 took its engine lock at execution time, so
// on the slow replica W2's enqueue-time reservation overtook it: final
// value 1 (0*10 + 1) there versus 10 ((0+1)*10) on the fast replica. With
// enqueue-time tickets for both, every replica must converge to 10.
func TestAutoCommitTransactionalPairAppliesInSequencerOrder(t *testing.T) {
	v := NewVirtualDatabase(VDBConfig{Name: "pair", ParallelTx: true, EarlyResponse: ResponseFirst})
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	// A test failure before the gate opens must not hang backend Close.
	t.Cleanup(openGate)
	var engines []*sqlengine.Engine
	for i := 0; i < 2; i++ {
		e := sqlengine.New(fmt.Sprintf("db%d", i), sqlengine.WithLockTimeout(30*time.Second))
		s := e.NewSession()
		for _, q := range []string{
			"CREATE TABLE t0 (id INTEGER PRIMARY KEY, v INTEGER)",
			"INSERT INTO t0 (id, v) VALUES (1, 0)",
		} {
			if _, err := s.ExecSQL(q); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		engines = append(engines, e)
		var drv backend.Driver = &backend.EngineDriver{Engine: e}
		if i == 1 {
			drv = &gateDriver{inner: drv, match: "UPDATE t0 SET v = v + 1", gate: gate}
		}
		b := backend.New(backend.Config{Name: fmt.Sprintf("db%d", i), Driver: drv})
		t.Cleanup(b.Close)
		if err := v.AddBackend(b); err != nil {
			t.Fatal(err)
		}
	}

	// W1: sequenced first. ResponseFirst returns once the fast replica
	// applied it; on the slow replica it is still stuck in the gate.
	sA := openSession(t, v)
	exec(t, sA, "UPDATE t0 SET v = v + 1 WHERE id = 1")

	// W2: a conflicting transactional write sequenced after W1, committed
	// while the slow replica still holds W1 in the gate.
	sB := openSession(t, v)
	exec(t, sB, "BEGIN")
	exec(t, sB, "UPDATE t0 SET v = v * 10 WHERE id = 1")
	exec(t, sB, "COMMIT")

	// ResponseFirst may have acknowledged the commit from either replica;
	// the ungated one converges to 10 on its own.
	waitForV := func(e *sqlengine.Engine, who string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if countOn(t, e, "SELECT v FROM t0 WHERE id = 1") == 10 {
				return
			}
			time.Sleep(time.Millisecond)
		}
		got := countOn(t, e, "SELECT v FROM t0 WHERE id = 1")
		if got == 1 {
			t.Fatalf("%s replica settled on v = 1: W2 applied before W1 — a conflicting auto-commit/transactional pair was reordered", who)
		}
		t.Fatalf("%s replica never converged: v = %d, want 10", who, got)
	}
	waitForV(engines[0], "fast")

	// Release the slow replica: it must apply W1 then W2 — the sequencer
	// order — not the order its own lock queue would have improvised.
	openGate()
	waitForV(engines[1], "slow")
}

// TestWorkerPoolMatchesGoroutineBaselineAcrossReplicas is the randomized
// equivalence property for the worker-pool refactor: under the
// goroutine-per-write baseline (-1) and a deliberately starved single
// worker (1), the same concurrent workload must leave all replicas
// byte-identical, exactly as the default pool does — the execution vehicle
// must not affect what the ordering authority decides. Run with -race.
func TestWorkerPoolMatchesGoroutineBaselineAcrossReplicas(t *testing.T) {
	for _, workers := range []int{-1, 1} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			runReplicaConsistency(t, workers, 3)
		})
	}
}
