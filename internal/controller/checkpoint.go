package controller

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/balancer"
	"cjdbc/internal/recovery"
)

// Errors reported by checkpoint and re-integration operations.
var (
	// ErrNoRecoveryLog is returned by checkpoint operations on a virtual
	// database configured without a recovery log.
	ErrNoRecoveryLog = errors.New("controller: virtual database has no recovery log")
	// ErrCheckpointBusy is returned when no transaction-free moment could be
	// found to place a backup's checkpoint marker.
	ErrCheckpointBusy = errors.New("controller: checkpoint timed out waiting for write transactions to finish")
)

// checkpointTxWait bounds how long a backup waits for a moment no write
// transaction spans; reintegrateTxWait bounds how long a re-integration
// waits for the transactions the backend abandoned to demarcate.
const (
	checkpointTxWait  = 10 * time.Second
	reintegrateTxWait = 10 * time.Second
)

// Checkpoint inserts a named checkpoint marker in the recovery log, atomic
// with respect to the cluster-wide write order (§3.1: "the checkpoint
// procedure starts by inserting a checkpoint marker in the recovery log").
func (v *VirtualDatabase) Checkpoint(name string) (uint64, error) {
	if v.log == nil {
		return 0, ErrNoRecoveryLog
	}
	ticket := v.sched.LockAllWrites()
	defer ticket.Unlock()
	return v.log.Checkpoint(name)
}

// BackupBackend takes an online backup of one backend (§3.1): a checkpoint
// marker is logged, the backend is disabled (the others keep serving), its
// content is dumped, the updates that arrived during the dump are replayed
// from the recovery log, and the backend is re-enabled. The returned dump
// can later integrate new or failed backends; it is also cached as the
// virtual database's latest dump for automatic re-integration.
//
// The checkpoint is quiesced: the marker is placed at a moment no write
// transaction spans, with the backend's already-enqueued writes drained, so
// the dump contains exactly the effects of the log entries at or below the
// marker — nothing a later replay would duplicate, nothing it would miss.
func (v *VirtualDatabase) BackupBackend(backendName, checkpointName string) (*recovery.Dump, error) {
	if v.log == nil {
		return nil, ErrNoRecoveryLog
	}
	b, err := v.Backend(backendName)
	if err != nil {
		return nil, err
	}
	sp, ok := b.Driver().(backend.SchemaProvider)
	if !ok {
		return nil, fmt.Errorf("controller: backend %s cannot be dumped (no schema provider)", backendName)
	}

	seq, err := v.quiescedCheckpoint(checkpointName, b)
	if err != nil {
		return nil, err
	}
	// Under partial replication the backend's engine holds exactly its
	// hosted tables, so the filter is normally a no-op — it guards against
	// leftovers from a past placement into the dump.
	dump, dumpErr := recovery.TakeDumpHosted(checkpointName, sp, v.hostFilter(b))
	// Catch up and re-enable even when the dump failed: writes rejected
	// while the backend was disabled are only recovered by replay.
	if err := v.catchUpAndEnable(b, seq); err != nil {
		return nil, err
	}
	if dumpErr != nil {
		return nil, dumpErr
	}
	v.lastDump.Store(dump)
	return dump, nil
}

// quiescedCheckpoint waits (bounded) for a moment with no active write
// transaction, then — still holding the cluster write quiesce — drains the
// backend's enqueued writes, logs the checkpoint marker, and disables the
// backend. No transaction spans the marker and every write at or below it
// has executed on b, which is what makes the dump taken afterwards exact.
func (v *VirtualDatabase) quiescedCheckpoint(name string, b *backend.Backend) (uint64, error) {
	deadline := time.Now().Add(checkpointTxWait)
	for {
		ticket := v.sched.LockAllWrites()
		if !v.sched.AnyTxActive() {
			b.DrainWrites()
			seq, err := v.log.Checkpoint(name)
			if err == nil {
				b.Disable()
			}
			ticket.Unlock()
			return seq, err
		}
		ticket.Unlock()
		if time.Now().After(deadline) {
			return 0, ErrCheckpointBusy
		}
		time.Sleep(time.Millisecond)
	}
}

// RestoreBackend re-integrates a failed or stale backend from a dump: the
// dump is restored, the log is replayed from the dump's checkpoint, and the
// backend is re-enabled (§3: "tools to automatically re-integrate failed
// backends into a virtual database").
func (v *VirtualDatabase) RestoreBackend(backendName string, dump *recovery.Dump) error {
	if v.log == nil {
		return ErrNoRecoveryLog
	}
	b, err := v.Backend(backendName)
	if err != nil {
		return err
	}
	seq, ok, err := v.log.CheckpointSeq(dump.Name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("controller: checkpoint %q not found in recovery log", dump.Name)
	}
	b.Disable()
	// Let the disable teardown's rollbacks finish before the restore starts
	// dropping the tables they undo into.
	b.DrainWrites()
	b.SetRecovering()
	// The dump may come from a donor hosting more tables than this backend
	// (RAIDb-2): restore only the hosted subset.
	if err := recovery.RestoreHosted(dump, b, v.hostFilter(b)); err != nil {
		b.Disable()
		return err
	}
	v.dropUnhostedLeftovers(b)
	return v.catchUpAndEnable(b, seq)
}

// dropUnhostedLeftovers removes tables the backend materializes but does not
// host — the stale copy a crashed RemoveTableHost could not drop, or an
// AddTableHost bootstrap aborted by the target's crash. A restored backend
// must hold exactly its hosted subset: catchUpAndEnable reattaches every
// table the backend contains, so a leftover copy would rejoin the placement
// and serve stale data.
func (v *VirtualDatabase) dropUnhostedLeftovers(b *backend.Backend) {
	hosted := v.hostFilter(b)
	if hosted == nil {
		return
	}
	names, err := b.TableNames()
	if err != nil {
		return
	}
	for _, t := range names {
		if !hosted(t) {
			_, _ = b.DirectExec(nil, "DROP TABLE IF EXISTS "+t)
		}
	}
}

// IntegrateBackend adds a brand-new backend and brings it up to date from a
// dump, the "bring new backends into the system" path of §3.
func (v *VirtualDatabase) IntegrateBackend(b *backend.Backend, dump *recovery.Dump) error {
	if v.log == nil {
		return ErrNoRecoveryLog
	}
	b.OnWriteFailure(v.writeFailureCallback)
	if decl := b.DeclaredTables(); len(decl) > 0 {
		pl, ok := v.repl.(balancer.Placement)
		if !ok {
			return fmt.Errorf("controller: backend %s declares hosted tables but virtual database %s uses %s replication; declared subsets need partial replication",
				b.Name(), v.name, v.repl.Name())
		}
		for _, t := range decl {
			pl.DeclareHost(t, b.Name())
		}
	}
	b.Disable()
	b.DrainWrites()
	b.SetRecovering()
	hosted := v.hostFilter(b)
	if err := recovery.RestoreHosted(dump, b, hosted); err != nil {
		return err
	}
	v.dropUnhostedLeftovers(b)
	seq, ok, err := v.log.CheckpointSeq(dump.Name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("controller: checkpoint %q not found in recovery log", dump.Name)
	}
	v.mu.Lock()
	v.backends = append(v.backends, b)
	v.mu.Unlock()
	if v.repl.RequiresParsing() {
		for _, td := range dump.Tables {
			if hosted != nil && !hosted(td.Name) {
				continue
			}
			hosts := append(v.repl.Hosts(td.Name), b.Name())
			v.repl.NoteCreate(td.Name, hosts)
		}
	}
	return v.catchUpAndEnable(b, seq)
}

// catchUpAndEnable replays the log from seq onto b, then performs a final
// catch-up inside the total-order critical section so no write lands
// between the last replayed entry and the enable. The bulk pass fans the
// log out on the configured number of parallel appliers (disjoint conflict
// classes replay concurrently, cutting re-integration time — the cost the
// paper attributes to adding or recovering replicas); on any replay error
// the backend stays disabled, because a partially replayed backend may hold
// a mix of conflict classes at different log positions.
//
// neededTables returns the tables the target backend hosts that currently
// exist on some enabled peer — the set a checkpoint dump must contain to
// fully reseed it. Tables whose every host is down are unrecoverable from
// live peers and are excluded (their data comes back when a host does).
func (v *VirtualDatabase) neededTables(target *backend.Backend) []string {
	hosted := v.hostFilter(target)
	seen := make(map[string]bool)
	var out []string
	for _, p := range v.Backends() {
		if p == target || !p.Enabled() {
			continue
		}
		names, err := p.TableNames()
		if err != nil {
			continue
		}
		for _, t := range names {
			if !seen[t] && (hosted == nil || hosted(t)) {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sort.Strings(out)
	return out
}

// dumpCovers reports whether the dump contains every needed table.
func dumpCovers(d *recovery.Dump, needed []string) bool {
	have := make(map[string]bool, len(d.Tables))
	for i := range d.Tables {
		have[d.Tables[i].Name] = true
	}
	for _, t := range needed {
		if !have[t] {
			return false
		}
	}
	return true
}

// BootstrapBackupFor takes a checkpoint dump covering every table the
// target backend hosts, drawing each table from an enabled peer that has it
// — the RAIDb-2 case where no single donor hosts the target's whole subset.
// Unlike BackupBackend (which disables its one donor and dumps it off-line)
// the snapshot happens under the cluster write quiesce: the marker is
// logged at a moment no write transaction spans, the claimed donors'
// enqueued writes are drained, and the tables are dumped while writes stay
// blocked, so the dump is exactly the state at the marker. Donors keep
// serving reads throughout and are never disabled.
func (v *VirtualDatabase) BootstrapBackupFor(target *backend.Backend, checkpointName string) (*recovery.Dump, error) {
	if v.log == nil {
		return nil, ErrNoRecoveryLog
	}
	hosted := v.hostFilter(target)
	deadline := time.Now().Add(checkpointTxWait)
	for {
		ticket := v.sched.LockAllWrites()
		if !v.sched.AnyTxActive() {
			dump, err := v.assembleDump(target, hosted, checkpointName)
			ticket.Unlock()
			return dump, err
		}
		ticket.Unlock()
		if time.Now().After(deadline) {
			return nil, ErrCheckpointBusy
		}
		time.Sleep(time.Millisecond)
	}
}

// assembleDump claims each needed table on an enabled donor, drains the
// claimed donors, logs the checkpoint marker, and snapshots the claimed
// tables. Runs under LockAllWrites with no write transaction active.
func (v *VirtualDatabase) assembleDump(target *backend.Backend, hosted recovery.HostFilter, name string) (*recovery.Dump, error) {
	type claim struct {
		sp     backend.SchemaProvider
		tables []string
	}
	var claims []claim
	claimed := make(map[string]bool)
	donors := 0
	for _, p := range v.Backends() {
		if p == target || !p.Enabled() {
			continue
		}
		sp, ok := p.Driver().(backend.SchemaProvider)
		if !ok {
			continue
		}
		donors++
		names, err := p.TableNames()
		if err != nil {
			continue
		}
		sort.Strings(names)
		var mine []string
		for _, t := range names {
			if !claimed[t] && (hosted == nil || hosted(t)) {
				claimed[t] = true
				mine = append(mine, t)
			}
		}
		if len(mine) > 0 {
			claims = append(claims, claim{sp: sp, tables: mine})
			p.DrainWrites()
		}
	}
	if donors == 0 {
		return nil, ErrNoReintegrationSource
	}
	if _, err := v.log.Checkpoint(name); err != nil {
		return nil, err
	}
	dump := &recovery.Dump{Name: name, Taken: time.Now()}
	for _, c := range claims {
		part, err := recovery.TakeDumpHosted(name, c.sp, func(t string) bool {
			for _, want := range c.tables {
				if want == t {
					return true
				}
			}
			return false
		})
		if err != nil {
			return nil, err
		}
		dump.Tables = append(dump.Tables, part.Tables...)
	}
	sort.Slice(dump.Tables, func(i, j int) bool { return dump.Tables[i].Name < dump.Tables[j].Name })
	return dump, nil
}

// Enabling is guarded against in-flight transactions: a transaction with
// writes in the replay window but no demarcation logged yet cannot be
// replayed (§3.2 replays only committed transactions), and if the backend
// were enabled before the transaction ends, the eventual commit broadcast
// would reach it as a lazy-begin no-op — the backend would silently miss the
// transaction's writes forever. Under the write quiesce, an unresolved
// transaction that is inactive in the scheduler can never demarcate again
// (it was abandoned), so waiting until every unresolved transaction is
// inactive closes the window: abandoned transactions are marked dead in the
// pass bookkeeping (they replay as rolled back) and one more pass applies
// whatever was held back behind them — a pass with entries deferred behind
// an unresolved transaction (Pass.Deferred) never enables directly, because
// per-conflict-class replay order must match the live order. Partial
// replication restricts every pass to the backend's hosted tables. The set
// of transactions the backend itself abandoned at disable time (killed by
// the teardown, or rejected with ErrDisabled) is a subset of the unresolved
// ones, so the same wait covers the crash-consistent disable's obligation.
func (v *VirtualDatabase) catchUpAndEnable(b *backend.Backend, seq uint64) error {
	hosted := v.hostFilter(b)
	// Bulk replay outside the write lock: may take a while on big logs.
	pass, _, _, err := recovery.ReplayPassHosted(v.log, seq, nil, b, v.recoveryWorkers, hosted)
	if err != nil {
		b.Disable()
		return err
	}
	deadline := time.Now().Add(reintegrateTxWait)
	for {
		ticket := v.sched.LockAllWrites()
		var unresolved []uint64
		pass, unresolved, _, err = recovery.ReplayPassHosted(v.log, seq, pass, b, v.recoveryWorkers, hosted)
		if err != nil {
			ticket.Unlock()
			b.Disable()
			return err
		}
		active := false
		for _, tx := range unresolved {
			if v.sched.TxActive(tx) {
				active = true
				break
			}
		}
		if !active {
			if len(unresolved) == 0 && pass.Deferred == 0 {
				if pl, ok := v.repl.(balancer.Placement); ok {
					// Route reads to the tables the restored state actually
					// contains, including any the placement map lost track of
					// while the backend was down.
					if names, err := b.TableNames(); err == nil {
						pl.ReattachHost(b.Name(), names)
					}
				}
				b.Enable()
				ticket.Unlock()
				v.health.markHealthy(b.Name())
				return nil
			}
			// Unresolved but inactive under the quiesce: abandoned. Mark
			// them dead so the next pass replays them as rolled back and
			// releases the entries held back behind them.
			if len(unresolved) > 0 {
				if pass.TxDead == nil {
					pass.TxDead = make(map[uint64]bool, len(unresolved))
				}
				for _, tx := range unresolved {
					pass.TxDead[tx] = true
				}
			}
		}
		ticket.Unlock()
		if time.Now().After(deadline) {
			b.Disable()
			return fmt.Errorf("controller: re-integration of %s timed out waiting for in-flight transactions to finish", b.Name())
		}
		if active {
			time.Sleep(2 * time.Millisecond)
		}
	}
}
