package controller

import (
	"errors"
	"fmt"

	"cjdbc/internal/backend"
	"cjdbc/internal/recovery"
)

// ErrNoRecoveryLog is returned by checkpoint operations on a virtual
// database configured without a recovery log.
var ErrNoRecoveryLog = errors.New("controller: virtual database has no recovery log")

// Checkpoint inserts a named checkpoint marker in the recovery log, atomic
// with respect to the cluster-wide write order (§3.1: "the checkpoint
// procedure starts by inserting a checkpoint marker in the recovery log").
func (v *VirtualDatabase) Checkpoint(name string) (uint64, error) {
	if v.log == nil {
		return 0, ErrNoRecoveryLog
	}
	ticket := v.sched.LockAllWrites()
	defer ticket.Unlock()
	return v.log.Checkpoint(name)
}

// BackupBackend takes an online backup of one backend (§3.1): a checkpoint
// marker is logged, the backend is disabled (the others keep serving), its
// content is dumped, the updates that arrived during the dump are replayed
// from the recovery log, and the backend is re-enabled. The returned dump
// can later integrate new or failed backends.
func (v *VirtualDatabase) BackupBackend(backendName, checkpointName string) (*recovery.Dump, error) {
	if v.log == nil {
		return nil, ErrNoRecoveryLog
	}
	b, err := v.Backend(backendName)
	if err != nil {
		return nil, err
	}
	sp, ok := b.Driver().(backend.SchemaProvider)
	if !ok {
		return nil, fmt.Errorf("controller: backend %s cannot be dumped (no schema provider)", backendName)
	}

	seq, err := v.Checkpoint(checkpointName)
	if err != nil {
		return nil, err
	}
	b.Disable()
	dump, err := recovery.TakeDump(checkpointName, sp)
	if err != nil {
		b.Enable()
		return nil, err
	}
	if err := v.catchUpAndEnable(b, seq); err != nil {
		return nil, err
	}
	return dump, nil
}

// RestoreBackend re-integrates a failed or stale backend from a dump: the
// dump is restored, the log is replayed from the dump's checkpoint, and the
// backend is re-enabled (§3: "tools to automatically re-integrate failed
// backends into a virtual database").
func (v *VirtualDatabase) RestoreBackend(backendName string, dump *recovery.Dump) error {
	if v.log == nil {
		return ErrNoRecoveryLog
	}
	b, err := v.Backend(backendName)
	if err != nil {
		return err
	}
	seq, ok, err := v.log.CheckpointSeq(dump.Name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("controller: checkpoint %q not found in recovery log", dump.Name)
	}
	b.Disable()
	b.SetRecovering()
	if err := recovery.Restore(dump, b); err != nil {
		b.Disable()
		return err
	}
	return v.catchUpAndEnable(b, seq)
}

// IntegrateBackend adds a brand-new backend and brings it up to date from a
// dump, the "bring new backends into the system" path of §3.
func (v *VirtualDatabase) IntegrateBackend(b *backend.Backend, dump *recovery.Dump) error {
	if v.log == nil {
		return ErrNoRecoveryLog
	}
	b.OnWriteFailure(v.writeFailureCallback)
	b.Disable()
	b.SetRecovering()
	if err := recovery.Restore(dump, b); err != nil {
		return err
	}
	seq, ok, err := v.log.CheckpointSeq(dump.Name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("controller: checkpoint %q not found in recovery log", dump.Name)
	}
	v.mu.Lock()
	v.backends = append(v.backends, b)
	v.mu.Unlock()
	if v.repl.RequiresParsing() {
		for _, td := range dump.Tables {
			hosts := append(v.repl.Hosts(td.Name), b.Name())
			v.repl.NoteCreate(td.Name, hosts)
		}
	}
	return v.catchUpAndEnable(b, seq)
}

// catchUpAndEnable replays the log from seq onto b, then performs a final
// catch-up inside the total-order critical section so no write lands
// between the last replayed entry and the enable. The bulk pass fans the
// log out on the configured number of parallel appliers (disjoint conflict
// classes replay concurrently, cutting re-integration time — the cost the
// paper attributes to adding or recovering replicas); on any replay error
// the backend stays disabled, because a partially replayed backend may hold
// a mix of conflict classes at different log positions.
func (v *VirtualDatabase) catchUpAndEnable(b *backend.Backend, seq uint64) error {
	// Bulk replay outside the write lock: may take a while on big logs.
	last, err := replayCommitted(v.log, seq, b, v.recoveryWorkers)
	if err != nil {
		b.Disable()
		return err
	}
	// Final catch-up with every write class quiesced, then enable
	// atomically.
	ticket := v.sched.LockAllWrites()
	defer ticket.Unlock()
	if _, err := replayCommitted(v.log, last, b, v.recoveryWorkers); err != nil {
		b.Disable()
		return err
	}
	b.Enable()
	return nil
}

// replayCommitted applies committed writes after seq on workers parallel
// appliers and returns the highest sequence number observed (so a second
// pass can resume there).
func replayCommitted(l recovery.Log, seq uint64, b *backend.Backend, workers int) (uint64, error) {
	entries, err := l.Since(seq)
	if err != nil {
		return seq, err
	}
	last := seq
	for _, e := range entries {
		if e.Seq > last {
			last = e.Seq
		}
	}
	if _, err := recovery.ReplayParallel(l, seq, b, workers); err != nil {
		return last, err
	}
	return last, nil
}
