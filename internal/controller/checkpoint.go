package controller

import (
	"errors"
	"fmt"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/recovery"
)

// Errors reported by checkpoint and re-integration operations.
var (
	// ErrNoRecoveryLog is returned by checkpoint operations on a virtual
	// database configured without a recovery log.
	ErrNoRecoveryLog = errors.New("controller: virtual database has no recovery log")
	// ErrCheckpointBusy is returned when no transaction-free moment could be
	// found to place a backup's checkpoint marker.
	ErrCheckpointBusy = errors.New("controller: checkpoint timed out waiting for write transactions to finish")
)

// checkpointTxWait bounds how long a backup waits for a moment no write
// transaction spans; reintegrateTxWait bounds how long a re-integration
// waits for the transactions the backend abandoned to demarcate.
const (
	checkpointTxWait  = 10 * time.Second
	reintegrateTxWait = 10 * time.Second
)

// Checkpoint inserts a named checkpoint marker in the recovery log, atomic
// with respect to the cluster-wide write order (§3.1: "the checkpoint
// procedure starts by inserting a checkpoint marker in the recovery log").
func (v *VirtualDatabase) Checkpoint(name string) (uint64, error) {
	if v.log == nil {
		return 0, ErrNoRecoveryLog
	}
	ticket := v.sched.LockAllWrites()
	defer ticket.Unlock()
	return v.log.Checkpoint(name)
}

// BackupBackend takes an online backup of one backend (§3.1): a checkpoint
// marker is logged, the backend is disabled (the others keep serving), its
// content is dumped, the updates that arrived during the dump are replayed
// from the recovery log, and the backend is re-enabled. The returned dump
// can later integrate new or failed backends; it is also cached as the
// virtual database's latest dump for automatic re-integration.
//
// The checkpoint is quiesced: the marker is placed at a moment no write
// transaction spans, with the backend's already-enqueued writes drained, so
// the dump contains exactly the effects of the log entries at or below the
// marker — nothing a later replay would duplicate, nothing it would miss.
func (v *VirtualDatabase) BackupBackend(backendName, checkpointName string) (*recovery.Dump, error) {
	if v.log == nil {
		return nil, ErrNoRecoveryLog
	}
	b, err := v.Backend(backendName)
	if err != nil {
		return nil, err
	}
	sp, ok := b.Driver().(backend.SchemaProvider)
	if !ok {
		return nil, fmt.Errorf("controller: backend %s cannot be dumped (no schema provider)", backendName)
	}

	seq, err := v.quiescedCheckpoint(checkpointName, b)
	if err != nil {
		return nil, err
	}
	dump, dumpErr := recovery.TakeDump(checkpointName, sp)
	// Catch up and re-enable even when the dump failed: writes rejected
	// while the backend was disabled are only recovered by replay.
	if err := v.catchUpAndEnable(b, seq); err != nil {
		return nil, err
	}
	if dumpErr != nil {
		return nil, dumpErr
	}
	v.lastDump.Store(dump)
	return dump, nil
}

// quiescedCheckpoint waits (bounded) for a moment with no active write
// transaction, then — still holding the cluster write quiesce — drains the
// backend's enqueued writes, logs the checkpoint marker, and disables the
// backend. No transaction spans the marker and every write at or below it
// has executed on b, which is what makes the dump taken afterwards exact.
func (v *VirtualDatabase) quiescedCheckpoint(name string, b *backend.Backend) (uint64, error) {
	deadline := time.Now().Add(checkpointTxWait)
	for {
		ticket := v.sched.LockAllWrites()
		if !v.sched.AnyTxActive() {
			b.DrainWrites()
			seq, err := v.log.Checkpoint(name)
			if err == nil {
				b.Disable()
			}
			ticket.Unlock()
			return seq, err
		}
		ticket.Unlock()
		if time.Now().After(deadline) {
			return 0, ErrCheckpointBusy
		}
		time.Sleep(time.Millisecond)
	}
}

// RestoreBackend re-integrates a failed or stale backend from a dump: the
// dump is restored, the log is replayed from the dump's checkpoint, and the
// backend is re-enabled (§3: "tools to automatically re-integrate failed
// backends into a virtual database").
func (v *VirtualDatabase) RestoreBackend(backendName string, dump *recovery.Dump) error {
	if v.log == nil {
		return ErrNoRecoveryLog
	}
	b, err := v.Backend(backendName)
	if err != nil {
		return err
	}
	seq, ok, err := v.log.CheckpointSeq(dump.Name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("controller: checkpoint %q not found in recovery log", dump.Name)
	}
	b.Disable()
	// Let the disable teardown's rollbacks finish before the restore starts
	// dropping the tables they undo into.
	b.DrainWrites()
	b.SetRecovering()
	if err := recovery.Restore(dump, b); err != nil {
		b.Disable()
		return err
	}
	return v.catchUpAndEnable(b, seq)
}

// IntegrateBackend adds a brand-new backend and brings it up to date from a
// dump, the "bring new backends into the system" path of §3.
func (v *VirtualDatabase) IntegrateBackend(b *backend.Backend, dump *recovery.Dump) error {
	if v.log == nil {
		return ErrNoRecoveryLog
	}
	b.OnWriteFailure(v.writeFailureCallback)
	b.Disable()
	b.DrainWrites()
	b.SetRecovering()
	if err := recovery.Restore(dump, b); err != nil {
		return err
	}
	seq, ok, err := v.log.CheckpointSeq(dump.Name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("controller: checkpoint %q not found in recovery log", dump.Name)
	}
	v.mu.Lock()
	v.backends = append(v.backends, b)
	v.mu.Unlock()
	if v.repl.RequiresParsing() {
		for _, td := range dump.Tables {
			hosts := append(v.repl.Hosts(td.Name), b.Name())
			v.repl.NoteCreate(td.Name, hosts)
		}
	}
	return v.catchUpAndEnable(b, seq)
}

// catchUpAndEnable replays the log from seq onto b, then performs a final
// catch-up inside the total-order critical section so no write lands
// between the last replayed entry and the enable. The bulk pass fans the
// log out on the configured number of parallel appliers (disjoint conflict
// classes replay concurrently, cutting re-integration time — the cost the
// paper attributes to adding or recovering replicas); on any replay error
// the backend stays disabled, because a partially replayed backend may hold
// a mix of conflict classes at different log positions.
//
// Enabling is guarded against in-flight transactions: a transaction with
// writes in the replay window but no demarcation logged yet cannot be
// replayed (§3.2 replays only committed transactions), and if the backend
// were enabled before the transaction ends, the eventual commit broadcast
// would reach it as a lazy-begin no-op — the backend would silently miss the
// transaction's writes forever. Under the write quiesce, an unresolved
// transaction that is inactive in the scheduler can never demarcate again
// (it was abandoned), so waiting until every unresolved transaction is
// inactive, then replaying one final time, closes the window. The set of
// transactions the backend itself abandoned at disable time (killed by the
// teardown, or rejected with ErrDisabled) is a subset of the unresolved
// ones, so the same wait covers the crash-consistent disable's obligation.
func (v *VirtualDatabase) catchUpAndEnable(b *backend.Backend, seq uint64) error {
	// Bulk replay outside the write lock: may take a while on big logs.
	pass, _, _, err := recovery.ReplayPass(v.log, seq, nil, b, v.recoveryWorkers)
	if err != nil {
		b.Disable()
		return err
	}
	deadline := time.Now().Add(reintegrateTxWait)
	for {
		ticket := v.sched.LockAllWrites()
		var unresolved []uint64
		pass, unresolved, _, err = recovery.ReplayPass(v.log, seq, pass, b, v.recoveryWorkers)
		if err != nil {
			ticket.Unlock()
			b.Disable()
			return err
		}
		active := false
		for _, tx := range unresolved {
			if v.sched.TxActive(tx) {
				active = true
				break
			}
		}
		if !active {
			b.Enable()
			ticket.Unlock()
			v.health.markHealthy(b.Name())
			return nil
		}
		ticket.Unlock()
		if time.Now().After(deadline) {
			b.Disable()
			return fmt.Errorf("controller: re-integration of %s timed out waiting for in-flight transactions to finish", b.Name())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
