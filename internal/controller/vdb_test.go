package controller

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/balancer"
	"cjdbc/internal/cache"
	"cjdbc/internal/recovery"
	"cjdbc/internal/sqlengine"
	"cjdbc/internal/sqlval"
)

// mkVDB builds a virtual database over n fresh engine backends, each seeded
// with the same schema.
func mkVDB(t *testing.T, n int, cfg VDBConfig, seed ...string) (*VirtualDatabase, []*sqlengine.Engine) {
	t.Helper()
	cfg.Name = "testdb"
	v := NewVirtualDatabase(cfg)
	engines := make([]*sqlengine.Engine, n)
	for i := 0; i < n; i++ {
		e := sqlengine.New(fmt.Sprintf("db%d", i))
		s := e.NewSession()
		for _, q := range seed {
			if _, err := s.ExecSQL(q); err != nil {
				t.Fatalf("seed: %v", err)
			}
		}
		s.Close()
		engines[i] = e
		b := backend.New(backend.Config{Name: fmt.Sprintf("db%d", i), Driver: &backend.EngineDriver{Engine: e}})
		t.Cleanup(b.Close)
		if err := v.AddBackend(b); err != nil {
			t.Fatal(err)
		}
	}
	return v, engines
}

var seedSchema = []string{
	"CREATE TABLE item (i_id INTEGER PRIMARY KEY, i_title VARCHAR, i_cost FLOAT)",
	"INSERT INTO item (i_id, i_title, i_cost) VALUES (1, 'a', 10), (2, 'b', 20), (3, 'c', 30)",
}

func openSession(t *testing.T, v *VirtualDatabase) *Session {
	t.Helper()
	s, err := v.NewSession("user", "pw")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func exec(t *testing.T, s *Session, sql string) *backend.Result {
	t.Helper()
	res, err := s.Exec(sql, nil)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func countOn(t *testing.T, e *sqlengine.Engine, sql string) int64 {
	t.Helper()
	s := e.NewSession()
	defer s.Close()
	res, err := s.ExecSQL(sql)
	if err != nil {
		t.Fatalf("count on engine: %v", err)
	}
	return res.Rows[0][0].I
}

func TestReadOneWriteAll(t *testing.T) {
	v, engines := mkVDB(t, 3, VDBConfig{ParallelTx: true}, seedSchema...)
	s := openSession(t, v)

	exec(t, s, "INSERT INTO item (i_id, i_title, i_cost) VALUES (4, 'd', 40)")
	// Write must land on every backend.
	for i, e := range engines {
		if got := countOn(t, e, "SELECT COUNT(*) FROM item"); got != 4 {
			t.Errorf("backend %d rows = %d, want 4", i, got)
		}
	}
	res := exec(t, s, "SELECT COUNT(*) FROM item")
	if res.Rows[0][0].I != 4 {
		t.Errorf("read: %v", res.Rows[0][0])
	}
	st := v.StatsSnapshot()
	if st.Reads != 1 || st.Writes != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestReadsSpreadAcrossBackends(t *testing.T) {
	v, _ := mkVDB(t, 3, VDBConfig{Balancer: &balancer.RoundRobin{}, ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	for i := 0; i < 9; i++ {
		exec(t, s, "SELECT i_title FROM item WHERE i_id = 1")
	}
	for _, b := range v.Backends() {
		if b.Ops() != 3 {
			t.Errorf("backend %s ops = %d, want 3", b.Name(), b.Ops())
		}
	}
}

func TestTransactionCommitVisibleEverywhere(t *testing.T) {
	v, engines := mkVDB(t, 2, VDBConfig{ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	exec(t, s, "BEGIN")
	if !s.InTransaction() {
		t.Fatal("not in transaction")
	}
	exec(t, s, "UPDATE item SET i_cost = 99 WHERE i_id = 1")
	// Read inside the transaction sees the uncommitted write.
	res := exec(t, s, "SELECT i_cost FROM item WHERE i_id = 1")
	if f, _ := res.Rows[0][0].AsFloat(); f != 99 {
		t.Errorf("in-tx read: %v", res.Rows[0][0])
	}
	exec(t, s, "COMMIT")
	if s.InTransaction() {
		t.Fatal("still in transaction")
	}
	for i, e := range engines {
		sess := e.NewSession()
		r, _ := sess.ExecSQL("SELECT i_cost FROM item WHERE i_id = 1")
		sess.Close()
		if f, _ := r.Rows[0][0].AsFloat(); f != 99 {
			t.Errorf("backend %d: %v", i, r.Rows[0][0])
		}
	}
}

func TestTransactionRollback(t *testing.T) {
	v, engines := mkVDB(t, 2, VDBConfig{ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	exec(t, s, "BEGIN")
	exec(t, s, "DELETE FROM item")
	exec(t, s, "ROLLBACK")
	for i, e := range engines {
		if got := countOn(t, e, "SELECT COUNT(*) FROM item"); got != 3 {
			t.Errorf("backend %d after rollback: %d", i, got)
		}
	}
}

func TestLazyTransactionBegin(t *testing.T) {
	v, engines := mkVDB(t, 3, VDBConfig{ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	before := make([]int64, 3)
	for i, e := range engines {
		before[i] = e.StatsSnapshot().Transactions
	}
	exec(t, s, "BEGIN")
	// A read-only transaction starts a backend transaction only on the one
	// backend that serves the read (§2.4.4).
	exec(t, s, "SELECT COUNT(*) FROM item")
	exec(t, s, "COMMIT")
	started := 0
	for i, e := range engines {
		started += int(e.StatsSnapshot().Transactions - before[i])
	}
	if started != 1 {
		t.Errorf("backend transactions started = %d, want 1 (lazy begin)", started)
	}
}

func TestMacroRewritingKeepsReplicasIdentical(t *testing.T) {
	v, engines := mkVDB(t, 3, VDBConfig{ParallelTx: true},
		"CREATE TABLE o (id INTEGER, stamp TIMESTAMP, disc FLOAT)")
	s := openSession(t, v)
	exec(t, s, "INSERT INTO o (id, stamp, disc) VALUES (1, NOW(), RAND())")
	exec(t, s, "INSERT INTO o (id, stamp, disc) VALUES (2, NOW(), RAND())")

	var ref [][]sqlval.Value
	for i, e := range engines {
		sess := e.NewSession()
		r, err := sess.ExecSQL("SELECT stamp, disc FROM o ORDER BY id")
		sess.Close()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = r.Rows
			continue
		}
		for j := range ref {
			for k := range ref[j] {
				if !sqlval.Equal(ref[j][k], r.Rows[j][k]) {
					t.Errorf("backend %d row %d col %d: %v != %v", i, j, k, r.Rows[j][k], ref[j][k])
				}
			}
		}
	}
}

func TestPartialReplicationRouting(t *testing.T) {
	// db0+db1 host order_line, all three host item.
	repl := balancer.NewPartialReplication(nil)
	cfg := VDBConfig{Replication: repl, ParallelTx: true}
	v := NewVirtualDatabase(cfg)
	engines := make([]*sqlengine.Engine, 3)
	for i := 0; i < 3; i++ {
		e := sqlengine.New(fmt.Sprintf("db%d", i))
		s := e.NewSession()
		s.ExecSQL("CREATE TABLE item (i_id INTEGER PRIMARY KEY, t VARCHAR)")
		if i < 2 {
			s.ExecSQL("CREATE TABLE order_line (ol_id INTEGER, i_id INTEGER)")
		}
		s.Close()
		engines[i] = e
		b := backend.New(backend.Config{Name: fmt.Sprintf("db%d", i), Driver: &backend.EngineDriver{Engine: e}})
		t.Cleanup(b.Close)
		if err := v.AddBackend(b); err != nil {
			t.Fatal(err)
		}
	}
	// Dynamic schema gathering discovered both tables.
	if got := repl.Hosts("order_line"); len(got) != 2 {
		t.Fatalf("order_line hosts: %v", got)
	}
	if got := repl.Hosts("item"); len(got) != 3 {
		t.Fatalf("item hosts: %v", got)
	}

	s := openSession(t, v)
	// Writes to order_line only hit its two hosts.
	exec(t, s, "INSERT INTO order_line (ol_id, i_id) VALUES (1, 1)")
	if got := countOn(t, engines[0], "SELECT COUNT(*) FROM order_line"); got != 1 {
		t.Error("db0 missing order_line write")
	}
	if got := countOn(t, engines[1], "SELECT COUNT(*) FROM order_line"); got != 1 {
		t.Error("db1 missing order_line write")
	}
	// db2 must not have received it (no table there): its ops counter
	// should show only the item write below.
	exec(t, s, "INSERT INTO item (i_id, t) VALUES (1, 'x')")
	for i, e := range engines {
		if got := countOn(t, e, "SELECT COUNT(*) FROM item"); got != 1 {
			t.Errorf("backend %d missing item write", i)
		}
	}
	// Reads joining item+order_line can only run on db0/db1.
	for i := 0; i < 6; i++ {
		exec(t, s, "SELECT COUNT(*) FROM order_line ol JOIN item i ON ol.i_id = i.i_id")
	}
	bs := v.Backends()
	if bs[2].Ops() != 1 { // only the item insert
		t.Errorf("db2 ops = %d, want 1", bs[2].Ops())
	}
}

func TestTempTableFlowUnderPartialReplication(t *testing.T) {
	repl := balancer.NewPartialReplication(nil)
	v := NewVirtualDatabase(VDBConfig{Replication: repl, ParallelTx: true})
	for i := 0; i < 3; i++ {
		e := sqlengine.New(fmt.Sprintf("db%d", i))
		s := e.NewSession()
		s.ExecSQL("CREATE TABLE item (i_id INTEGER PRIMARY KEY, t VARCHAR)")
		if i < 2 {
			s.ExecSQL("CREATE TABLE order_line (ol_id INTEGER, i_id INTEGER, qty INTEGER)")
		}
		s.ExecSQL("INSERT INTO item (i_id, t) VALUES (1, 'x')")
		if i < 2 {
			s.ExecSQL("INSERT INTO order_line (ol_id, i_id, qty) VALUES (1, 1, 5)")
		}
		s.Close()
		b := backend.New(backend.Config{Name: fmt.Sprintf("db%d", i), Driver: &backend.EngineDriver{Engine: e}})
		t.Cleanup(b.Close)
		if err := v.AddBackend(b); err != nil {
			t.Fatal(err)
		}
	}
	s := openSession(t, v)
	exec(t, s, "BEGIN")
	// The best-seller pattern: the temp table is created only on the
	// backends hosting order_line.
	exec(t, s, "CREATE TEMPORARY TABLE best AS SELECT i_id, SUM(qty) AS total FROM order_line GROUP BY i_id")
	if got := repl.Hosts("best"); len(got) != 2 {
		t.Fatalf("temp table hosts: %v", got)
	}
	// The join against it routes to those backends.
	res := exec(t, s, "SELECT i.t, b.total FROM best b JOIN item i ON i.i_id = b.i_id")
	if len(res.Rows) != 1 || res.Rows[0][1].I != 5 {
		t.Fatalf("bestseller join: %v", res.Rows)
	}
	exec(t, s, "DROP TABLE best")
	if got := repl.Hosts("best"); len(got) != 0 {
		t.Fatalf("temp table still registered: %v", got)
	}
	exec(t, s, "COMMIT")
}

func TestCacheServesRepeatedReads(t *testing.T) {
	rc := cache.New(cache.Config{Granularity: cache.GranTable})
	v, _ := mkVDB(t, 2, VDBConfig{Cache: rc, ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	q := "SELECT i_title FROM item WHERE i_id = 1"
	exec(t, s, q)
	opsAfterMiss := v.Backends()[0].Ops() + v.Backends()[1].Ops()
	for i := 0; i < 10; i++ {
		exec(t, s, q)
	}
	if got := v.Backends()[0].Ops() + v.Backends()[1].Ops(); got != opsAfterMiss {
		t.Errorf("cached reads hit backends: %d -> %d", opsAfterMiss, got)
	}
	st := v.StatsSnapshot()
	if st.CacheHits != 10 || st.CacheMisses != 1 {
		t.Errorf("cache stats: %+v", st)
	}
	// A write invalidates; next read goes to a backend again.
	exec(t, s, "UPDATE item SET i_title = 'new' WHERE i_id = 1")
	res := exec(t, s, q)
	if res.Rows[0][0].AsString() != "new" {
		t.Errorf("stale read after write: %v", res.Rows[0][0])
	}
}

func TestInTransactionReadsBypassCache(t *testing.T) {
	rc := cache.New(cache.Config{Granularity: cache.GranTable})
	v, _ := mkVDB(t, 1, VDBConfig{Cache: rc, ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	q := "SELECT i_cost FROM item WHERE i_id = 1"
	exec(t, s, q) // populate cache
	exec(t, s, "BEGIN")
	exec(t, s, "UPDATE item SET i_cost = 77 WHERE i_id = 1")
	res := exec(t, s, q)
	if f, _ := res.Rows[0][0].AsFloat(); f != 77 {
		t.Errorf("tx read served stale cache: %v", res.Rows[0][0])
	}
	exec(t, s, "ROLLBACK")
}

func TestWriteFailureDisablesBackend(t *testing.T) {
	v, _ := mkVDB(t, 2, VDBConfig{ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	bs := v.Backends()
	bs[1].InjectFailure(errors.New("disk died"))

	// The write succeeds on the healthy backend; the failing one is
	// disabled (§2.4.1: no 2PC).
	exec(t, s, "INSERT INTO item (i_id, i_title, i_cost) VALUES (9, 'z', 1)")
	deadline := time.Now().Add(time.Second)
	for bs[1].Enabled() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if bs[1].Enabled() {
		t.Fatal("failing backend not disabled")
	}
	if v.StatsSnapshot().BackendsDisabled != 1 {
		t.Error("disable counter")
	}
	// Reads keep working on the survivor.
	res := exec(t, s, "SELECT COUNT(*) FROM item")
	if res.Rows[0][0].I != 4 {
		t.Errorf("read after failure: %v", res.Rows[0][0])
	}
}

func TestReadFailsOverToAnotherBackend(t *testing.T) {
	v, _ := mkVDB(t, 2, VDBConfig{Balancer: &balancer.RoundRobin{}, ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	v.Backends()[0].InjectFailure(errors.New("net down"))
	for i := 0; i < 4; i++ {
		res, err := s.Exec("SELECT COUNT(*) FROM item", nil)
		if err != nil {
			t.Fatalf("read %d did not fail over: %v", i, err)
		}
		if res.Rows[0][0].I != 3 {
			t.Fatalf("read %d: %v", i, res.Rows[0][0])
		}
	}
}

func TestSemanticErrorsDoNotDisableBackends(t *testing.T) {
	v, _ := mkVDB(t, 2, VDBConfig{ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	if _, err := s.Exec("SELECT * FROM missing_table", nil); err == nil {
		t.Fatal("expected error")
	}
	for _, b := range v.Backends() {
		if !b.Enabled() {
			t.Error("semantic error disabled a backend")
		}
	}
}

func TestAllBackendsFailedWrite(t *testing.T) {
	v, _ := mkVDB(t, 2, VDBConfig{ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	for _, b := range v.Backends() {
		b.InjectFailure(errors.New("boom"))
	}
	if _, err := s.Exec("DELETE FROM item", nil); err == nil {
		t.Fatal("write should fail when every backend fails")
	}
}

func TestRecoveryLogRecordsWrites(t *testing.T) {
	log := recovery.NewMemoryLog()
	v, _ := mkVDB(t, 1, VDBConfig{RecoveryLog: log, ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	exec(t, s, "BEGIN")
	exec(t, s, "INSERT INTO item (i_id, i_title, i_cost) VALUES (5, 'e', 50)")
	exec(t, s, "COMMIT")
	exec(t, s, "UPDATE item SET i_cost = 1 WHERE i_id = 5")
	entries, _ := log.Since(0)
	var classes []string
	for _, e := range entries {
		classes = append(classes, string(e.Class))
	}
	want := "begin,write,commit,write"
	if got := strings.Join(classes, ","); got != want {
		t.Errorf("log classes = %s, want %s", got, want)
	}
	if entries[1].User != "user" || entries[1].TxID == 0 {
		t.Errorf("log entry fields: %+v", entries[1])
	}
}

func TestBackupAndRestoreBackend(t *testing.T) {
	log := recovery.NewMemoryLog()
	v, engines := mkVDB(t, 2, VDBConfig{RecoveryLog: log, ParallelTx: true}, seedSchema...)
	s := openSession(t, v)

	dump, err := v.BackupBackend("db0", "cp1")
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Tables) != 1 || len(dump.Tables[0].Rows) != 3 {
		t.Fatalf("dump shape: %+v", dump.Tables)
	}
	// The backend is re-enabled after backup.
	b0, _ := v.Backend("db0")
	if !b0.Enabled() {
		t.Fatal("backend not re-enabled after backup")
	}

	// More writes after the checkpoint.
	exec(t, s, "INSERT INTO item (i_id, i_title, i_cost) VALUES (4, 'd', 40)")

	// db1 "fails": disable and corrupt it, then restore from dump+log.
	v.DisableBackend("db1")
	sess := engines[1].NewSession()
	sess.ExecSQL("DELETE FROM item")
	sess.Close()

	if err := v.RestoreBackend("db1", dump); err != nil {
		t.Fatal(err)
	}
	b1, _ := v.Backend("db1")
	if !b1.Enabled() {
		t.Fatal("backend not enabled after restore")
	}
	if got := countOn(t, engines[1], "SELECT COUNT(*) FROM item"); got != 4 {
		t.Errorf("restored rows = %d, want 4", got)
	}
}

func TestIntegrateNewBackend(t *testing.T) {
	log := recovery.NewMemoryLog()
	v, _ := mkVDB(t, 1, VDBConfig{RecoveryLog: log, ParallelTx: true}, seedSchema...)
	s := openSession(t, v)

	dump, err := v.BackupBackend("db0", "cp-int")
	if err != nil {
		t.Fatal(err)
	}
	exec(t, s, "INSERT INTO item (i_id, i_title, i_cost) VALUES (10, 'j', 5)")

	eNew := sqlengine.New("db-new")
	bNew := backend.New(backend.Config{Name: "db-new", Driver: &backend.EngineDriver{Engine: eNew}})
	t.Cleanup(bNew.Close)
	if err := v.IntegrateBackend(bNew, dump); err != nil {
		t.Fatal(err)
	}
	if got := countOn(t, eNew, "SELECT COUNT(*) FROM item"); got != 4 {
		t.Errorf("integrated backend rows = %d, want 4", got)
	}
	// It now serves writes like any other backend.
	exec(t, s, "INSERT INTO item (i_id, i_title, i_cost) VALUES (11, 'k', 6)")
	if got := countOn(t, eNew, "SELECT COUNT(*) FROM item"); got != 5 {
		t.Errorf("integrated backend missing new write: %d", got)
	}
}

func TestAuthentication(t *testing.T) {
	auth := NewAuthManager()
	auth.AddUser("alice", "secret")
	v, _ := mkVDB(t, 1, VDBConfig{Auth: auth, ParallelTx: true}, seedSchema...)
	if _, err := v.NewSession("alice", "wrong"); !errors.Is(err, ErrAuth) {
		t.Fatalf("bad password: %v", err)
	}
	if _, err := v.NewSession("bob", "secret"); !errors.Is(err, ErrAuth) {
		t.Fatalf("unknown user: %v", err)
	}
	s, err := v.NewSession("alice", "secret")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Exec("SELECT 1", nil); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("closed session: %v", err)
	}
}

func TestParamsBindThroughVDB(t *testing.T) {
	v, _ := mkVDB(t, 2, VDBConfig{ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	res, err := s.Exec("SELECT i_title FROM item WHERE i_id = ?", []sqlval.Value{sqlval.Int(2)})
	if err != nil || res.Rows[0][0].AsString() != "b" {
		t.Fatalf("param read: %v %v", res, err)
	}
	_, err = s.Exec("UPDATE item SET i_title = ? WHERE i_id = ?",
		[]sqlval.Value{sqlval.String_("bee"), sqlval.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	res = exec(t, s, "SELECT i_title FROM item WHERE i_id = 2")
	if res.Rows[0][0].AsString() != "bee" {
		t.Errorf("param write: %v", res.Rows[0][0])
	}
}

func TestConcurrentSessionsParallelTransactions(t *testing.T) {
	v, engines := mkVDB(t, 3, VDBConfig{ParallelTx: true},
		"CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)",
		"INSERT INTO acct (id, bal) VALUES (1, 0), (2, 0), (3, 0), (4, 0)")
	const workers = 4
	const opsEach = 25
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := v.NewSession("u", "")
			if err != nil {
				errCh <- err
				return
			}
			defer s.Close()
			id := w + 1
			for i := 0; i < opsEach; i++ {
				if _, err := s.Exec("BEGIN", nil); err != nil {
					errCh <- err
					return
				}
				if _, err := s.Exec(fmt.Sprintf("UPDATE acct SET bal = bal + 1 WHERE id = %d", id), nil); err != nil {
					errCh <- err
					return
				}
				if _, err := s.Exec(fmt.Sprintf("SELECT bal FROM acct WHERE id = %d", id), nil); err != nil {
					errCh <- err
					return
				}
				if _, err := s.Exec("COMMIT", nil); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Every backend converged to the same state.
	for i, e := range engines {
		if got := countOn(t, e, "SELECT SUM(bal) FROM acct"); got != workers*opsEach {
			t.Errorf("backend %d sum = %d, want %d", i, got, workers*opsEach)
		}
	}
}

func TestEarlyResponseFirstReturnsBeforeSlowBackend(t *testing.T) {
	// One fast and one slow backend; early response "first" must return at
	// the fast backend's latency.
	v := NewVirtualDatabase(VDBConfig{Name: "t", EarlyResponse: ResponseFirst, ParallelTx: true})
	for i, scale := range []time.Duration{0, 20 * time.Millisecond} {
		e := sqlengine.New(fmt.Sprintf("db%d", i))
		s := e.NewSession()
		s.ExecSQL("CREATE TABLE t (a INTEGER)")
		s.Close()
		var cm *backend.CostModel
		if scale > 0 {
			cm = &backend.CostModel{TimeScale: scale, Write: 1}
		}
		b := backend.New(backend.Config{Name: fmt.Sprintf("db%d", i), Driver: &backend.EngineDriver{Engine: e}, Cost: cm})
		t.Cleanup(b.Close)
		if err := v.AddBackend(b); err != nil {
			t.Fatal(err)
		}
	}
	s := openSession(t, v)
	start := time.Now()
	exec(t, s, "INSERT INTO t (a) VALUES (1)")
	if elapsed := time.Since(start); elapsed > 15*time.Millisecond {
		t.Errorf("early response did not return early: %v", elapsed)
	}
	// The slow backend still applies the write (asynchronously).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		res, err := v.Backends()[1].Read(0, nil, "SELECT COUNT(*) FROM t")
		if err == nil && res.Rows[0][0].I == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("slow backend never applied the write")
}

func TestSerializedSchedulerStillCorrect(t *testing.T) {
	// ParallelTx disabled: everything serializes, results stay correct.
	v, _ := mkVDB(t, 2, VDBConfig{ParallelTx: false}, seedSchema...)
	s := openSession(t, v)
	exec(t, s, "INSERT INTO item (i_id, i_title, i_cost) VALUES (7, 'g', 70)")
	res := exec(t, s, "SELECT COUNT(*) FROM item")
	if res.Rows[0][0].I != 4 {
		t.Errorf("serialized count: %v", res.Rows[0][0])
	}
}

func TestControllerHostsMultipleVDBs(t *testing.T) {
	c := New("ctrl0", 1)
	if c.Name() != "ctrl0" || c.ID() != 1 {
		t.Fatal("identity")
	}
	v1, err := c.AddVirtualDatabase(VDBConfig{Name: "app"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddVirtualDatabase(VDBConfig{Name: "app"}); err == nil {
		t.Fatal("duplicate vdb accepted")
	}
	if _, err := c.AddVirtualDatabase(VDBConfig{Name: "logdb"}); err != nil {
		t.Fatal(err)
	}
	got, err := c.VirtualDatabase("app")
	if err != nil || got != v1 {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if _, err := c.VirtualDatabase("nope"); err == nil {
		t.Fatal("missing vdb lookup succeeded")
	}
	names := c.VirtualDatabases()
	if len(names) != 2 || names[0] != "app" || names[1] != "logdb" {
		t.Fatalf("names: %v", names)
	}
	c.Close()
}

func TestCheckpointWithoutLogFails(t *testing.T) {
	v, _ := mkVDB(t, 1, VDBConfig{ParallelTx: true}, seedSchema...)
	if _, err := v.Checkpoint("cp"); !errors.Is(err, ErrNoRecoveryLog) {
		t.Fatalf("checkpoint without log: %v", err)
	}
	if _, err := v.BackupBackend("db0", "cp"); !errors.Is(err, ErrNoRecoveryLog) {
		t.Fatalf("backup without log: %v", err)
	}
}

func TestSessionCloseRollsBackClusterWide(t *testing.T) {
	v, engines := mkVDB(t, 2, VDBConfig{ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	exec(t, s, "BEGIN")
	exec(t, s, "DELETE FROM item")
	s.Close()
	for i, e := range engines {
		if got := countOn(t, e, "SELECT COUNT(*) FROM item"); got != 3 {
			t.Errorf("backend %d after session close: %d", i, got)
		}
	}
}

// TestPlanCacheHitsSkipReparsing checks the parsing cache is active on the
// session hot path and that repeated statements hit it.
func TestPlanCacheHitsSkipReparsing(t *testing.T) {
	v, _ := mkVDB(t, 2, VDBConfig{ParallelTx: true}, seedSchema...)
	if v.PlanCache() == nil {
		t.Fatal("plan cache should be on by default")
	}
	s := openSession(t, v)
	// Literal-bound texts pass the admission doorkeeper: the first miss
	// only registers the text, the second admits, the rest hit.
	for i := 0; i < 6; i++ {
		exec(t, s, "SELECT i_title FROM item WHERE i_id = 1")
	}
	st := v.PlanCache().StatsSnapshot()
	if st.Hits < 4 {
		t.Errorf("plan cache hits = %d, want >= 4 (stats %+v)", st.Hits, st)
	}
	if st.Deferred == 0 {
		t.Errorf("doorkeeper never deferred a one-off admission (stats %+v)", st)
	}

	// Disabled plan cache still works.
	v2, _ := mkVDB(t, 1, VDBConfig{ParallelTx: true, PlanCacheSize: -1}, seedSchema...)
	if v2.PlanCache() != nil {
		t.Fatal("plan cache should be disabled")
	}
	s2 := openSession(t, v2)
	res, err := s2.Exec("SELECT i_title FROM item WHERE i_id = 2", nil)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

// TestPlanCacheHitNeverBypassesInvalidation is the strong-consistency
// acceptance check: a read served through the parsing cache must still go
// through the result cache, and a write must invalidate it, so the next
// read sees the new data — never a stale cached result.
func TestPlanCacheHitNeverBypassesInvalidation(t *testing.T) {
	for _, gran := range []cache.Granularity{cache.GranDatabase, cache.GranTable, cache.GranColumn} {
		rc := cache.New(cache.Config{Granularity: gran})
		v, _ := mkVDB(t, 2, VDBConfig{ParallelTx: true, Cache: rc}, seedSchema...)
		s := openSession(t, v)

		q := "SELECT i_title FROM item WHERE i_id = 1"
		if got := exec(t, s, q).Rows[0][0].AsString(); got != "a" {
			t.Fatalf("[%v] first read: %q", gran, got)
		}
		// Repeat until both caches are warm: plan hit + result hit.
		exec(t, s, q)
		if v.StatsSnapshot().CacheHits == 0 {
			t.Fatalf("[%v] result cache never hit", gran)
		}

		exec(t, s, "UPDATE item SET i_title = 'z' WHERE i_id = 1")
		if got := exec(t, s, q).Rows[0][0].AsString(); got != "z" {
			t.Errorf("[%v] stale read after write through plan cache: %q", gran, got)
		}

		// Parameterized form: same plan template, different bindings must
		// produce distinct results and respect invalidation too.
		pq := "SELECT i_title FROM item WHERE i_id = ?"
		for i := 0; i < 2; i++ {
			r1, err := s.Exec(pq, []sqlval.Value{sqlval.Int(2)})
			if err != nil || r1.Rows[0][0].AsString() != "b" {
				t.Fatalf("[%v] param read 2: %+v %v", gran, r1, err)
			}
			r2, err := s.Exec(pq, []sqlval.Value{sqlval.Int(3)})
			if err != nil || r2.Rows[0][0].AsString() != "c" {
				t.Fatalf("[%v] param read 3: %+v %v", gran, r2, err)
			}
		}
		if _, err := s.Exec("UPDATE item SET i_title = ? WHERE i_id = ?",
			[]sqlval.Value{sqlval.String_("q"), sqlval.Int(2)}); err != nil {
			t.Fatal(err)
		}
		r1, err := s.Exec(pq, []sqlval.Value{sqlval.Int(2)})
		if err != nil || r1.Rows[0][0].AsString() != "q" {
			t.Errorf("[%v] stale parameterized read after write: %+v %v", gran, r1, err)
		}
	}
}

// TestPlanCacheConcurrentSessions drives 16 sessions through the full
// controller path sharing one plan cache and one result cache; run with
// -race. Mixing reads, parameterized reads and writes exercises
// clone-on-bind under concurrency.
func TestPlanCacheConcurrentSessions(t *testing.T) {
	rc := cache.New(cache.Config{Granularity: cache.GranTable})
	v, _ := mkVDB(t, 3, VDBConfig{ParallelTx: true, Cache: rc}, seedSchema...)

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := v.NewSession("user", "pw")
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					if _, err := s.Exec("SELECT i_title FROM item WHERE i_id = 1", nil); err != nil {
						t.Error(err)
						return
					}
				case 1:
					id := int64(1 + (g+i)%3)
					res, err := s.Exec("SELECT i_cost FROM item WHERE i_id = ?", []sqlval.Value{sqlval.Int(id)})
					if err != nil || len(res.Rows) != 1 {
						t.Errorf("param read: %v", err)
						return
					}
				case 2:
					if _, err := s.Exec("UPDATE item SET i_cost = ? WHERE i_id = ?",
						[]sqlval.Value{sqlval.Float(float64(i)), sqlval.Int(int64(1 + i%3))}); err != nil {
						t.Error(err)
						return
					}
				case 3:
					if _, err := s.Exec("SELECT COUNT(*) FROM item", nil); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
