package controller

// BenchmarkPartialDisjointWrites measures the RAIDb-2 payoff the paper
// claims for partial replication: a disjoint-table write stream costs each
// backend only the writes for tables it hosts. With 4 backends and 8
// tables partitioned at factor f (each table hosted on 4/f backends), the
// backendops/op metric — backend write executions per client write — must
// fall from ~4 (full replication) toward ~1 (fully partitioned).

import (
	"fmt"
	"testing"
)

func BenchmarkPartialDisjointWrites(b *testing.B) {
	const (
		nBackends = 4
		nTables   = 8
		seedRows  = 64
	)
	for _, factor := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("factor=%d", factor), func(b *testing.B) {
			hostsPer := nBackends / factor
			placement := make(map[string][]int, nTables)
			for ti := 0; ti < nTables; ti++ {
				hosts := make([]int, hostsPer)
				for k := range hosts {
					hosts[k] = (ti + k) % nBackends
				}
				placement[fmt.Sprintf("t%d", ti)] = hosts
			}
			v, _ := mkPartialVDB(b, nBackends, placement, seedRows, nil)
			s, err := v.NewSession("user", "pw")
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()

			backendOps := func() int64 {
				var total int64
				for i := 0; i < nBackends; i++ {
					bk, err := v.Backend(fmt.Sprintf("db%d", i))
					if err != nil {
						b.Fatal(err)
					}
					total += bk.Ops()
				}
				return total
			}
			before := backendOps()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := fmt.Sprintf("UPDATE t%d SET v = %d WHERE id = %d",
					i%nTables, i, i%seedRows)
				if _, err := s.Exec(q, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(backendOps()-before)/float64(b.N), "backendops/op")
		})
	}
}
