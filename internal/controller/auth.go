// Package controller implements the C-JDBC controller: virtual databases
// exposing a single-database view over a set of backends, each with its own
// request manager (scheduler, optional query result cache, load balancer,
// optional recovery log) and authentication manager (§2).
package controller

import (
	"errors"
	"sync"
)

// ErrAuth is returned on bad credentials.
var ErrAuth = errors.New("controller: authentication failed")

// AuthManager validates virtual database logins. Virtual users are
// independent from the real backend logins, as in the paper.
type AuthManager struct {
	mu    sync.RWMutex
	users map[string]string
}

// NewAuthManager creates an empty authentication manager.
func NewAuthManager() *AuthManager {
	return &AuthManager{users: make(map[string]string)}
}

// AddUser registers (or replaces) a virtual login.
func (a *AuthManager) AddUser(user, password string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.users[user] = password
}

// RemoveUser deletes a virtual login.
func (a *AuthManager) RemoveUser(user string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.users, user)
}

// Authenticate checks credentials. An auth manager with no users accepts
// everyone (convenient for examples and tests).
func (a *AuthManager) Authenticate(user, password string) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if len(a.users) == 0 {
		return nil
	}
	if p, ok := a.users[user]; ok && p == password {
		return nil
	}
	return ErrAuth
}

// Users returns the registered user names.
func (a *AuthManager) Users() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.users))
	for u := range a.users {
		out = append(out, u)
	}
	return out
}
