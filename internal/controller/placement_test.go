package controller

// Dynamic placement tests (PR 10): AddTableHost bootstraps and flips without
// ever serving a read from the not-yet-caught-up copy, RemoveTableHost flips
// routing away before dropping and refuses (typed) to drop a table's last
// enabled host, moves stay correct under randomized live traffic, and the
// load-driven policy replicates hot tables and sheds cold replicas on its own.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/balancer"
	"cjdbc/internal/recovery"
	"cjdbc/internal/sqlengine"
)

// TestPlacementAddHostBootstrapAndFlip covers the logged AddTableHost path:
// the new copy is byte-identical to the donor, subsequent writes include the
// new host, reads are allowed to route to it, and the already-hosted /
// unknown-backend / unknown-table edges report errors.
func TestPlacementAddHostBootstrapAndFlip(t *testing.T) {
	placement := map[string][]int{"a": {0}, "b": {1}}
	v, engines := mkPartialVDB(t, 3, placement, 5, recovery.NewMemoryLog())
	s := openSession(t, v)

	exec(t, s, "UPDATE a SET v = 7 WHERE id = 0")
	exec(t, s, "INSERT INTO a (id, v) VALUES (100, 1)")

	if err := v.AddTableHost("a", "db2"); err != nil {
		t.Fatalf("AddTableHost: %v", err)
	}
	pl := v.Replication().(balancer.Placement)
	if !pl.Hosted("a", "db2") {
		t.Fatal("db2 not hosted after AddTableHost")
	}
	if want, got := sortedTableDump(t, engines[0], "a"), sortedTableDump(t, engines[2], "a"); got != want {
		t.Fatalf("bootstrapped copy diverged:\n--- donor:\n%s\n--- db2:\n%s", want, got)
	}
	if got := v.PlacementMoves(); got != 1 {
		t.Fatalf("PlacementMoves = %d, want 1", got)
	}

	// Post-flip writes reach the new host.
	exec(t, s, "INSERT INTO a (id, v) VALUES (200, 2)")
	if got := countOn(t, engines[2], "SELECT COUNT(*) FROM a WHERE id = 200"); got != 1 {
		t.Fatalf("post-flip write missed db2: %d rows", got)
	}

	// Post-flip reads may choose the new host: with two candidates and
	// round-robin tie-breaking, a burst of reads must land some on db2.
	b2, err := v.Backend("db2")
	if err != nil {
		t.Fatal(err)
	}
	before := b2.Ops()
	for i := 0; i < 20; i++ {
		exec(t, s, "SELECT COUNT(*) FROM a")
	}
	if b2.Ops() == before {
		t.Fatal("no read routed to the newly added host")
	}

	if err := v.AddTableHost("a", "db2"); !errors.Is(err, ErrAlreadyHosted) {
		t.Fatalf("re-add: got %v, want ErrAlreadyHosted", err)
	}
	if err := v.AddTableHost("a", "nope"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	// A table unknown to the placement map is implicitly hosted everywhere.
	if err := v.AddTableHost("zzz", "db2"); !errors.Is(err, ErrAlreadyHosted) {
		t.Fatalf("unknown table: got %v, want ErrAlreadyHosted", err)
	}
}

// TestPlacementRemoveHostAndLastHostGuard covers the flip-away ordering and
// the typed validation error: the dropped copy disappears, routing excludes
// the ex-host, and removing the last (or last *enabled*) host is refused
// with *balancer.LastHostError.
func TestPlacementRemoveHostAndLastHostGuard(t *testing.T) {
	placement := map[string][]int{"a": {0, 1}, "b": {1}, "c": {0, 1}}
	v, engines := mkPartialVDB(t, 2, placement, 4, nil)
	s := openSession(t, v)

	if err := v.RemoveTableHost("a", "db0"); err != nil {
		t.Fatalf("RemoveTableHost: %v", err)
	}
	pl := v.Replication().(balancer.Placement)
	if pl.Hosted("a", "db0") {
		t.Fatal("db0 still hosted after removal")
	}
	if hasTable(engines[0], "a") {
		t.Fatal("db0 still holds the dropped copy")
	}
	exec(t, s, "INSERT INTO a (id, v) VALUES (50, 5)")
	if got := countOn(t, engines[1], "SELECT COUNT(*) FROM a WHERE id = 50"); got != 1 {
		t.Fatalf("surviving host missed the write: %d rows", got)
	}

	var lh *balancer.LastHostError
	if err := v.RemoveTableHost("a", "db1"); !errors.As(err, &lh) {
		t.Fatalf("last host removal: got %v, want LastHostError", err)
	} else if lh.Table != "a" || lh.Host != "db1" {
		t.Fatalf("LastHostError = %+v", lh)
	}
	if err := v.RemoveTableHost("b", "db0"); err == nil {
		t.Fatal("removal from a non-host accepted")
	}

	// Stricter than the balancer's own rule: the remaining host must be
	// *enabled* for the removal to proceed.
	v.DisableBackend("db1")
	if err := v.RemoveTableHost("c", "db0"); !errors.As(err, &lh) {
		t.Fatalf("removal with disabled survivor: got %v, want LastHostError", err)
	}

	// Moves need an explicit placement.
	full := NewVirtualDatabase(VDBConfig{Name: "full-moves"})
	t.Cleanup(full.Close)
	if err := full.AddTableHost("a", "db0"); !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("full replication: got %v, want ErrNoPlacement", err)
	}
	if err := full.RemoveTableHost("a", "db0"); !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("full replication: got %v, want ErrNoPlacement", err)
	}
}

// TestPlacementNeverServesUncaughtUpCopy slows the target's restore path so
// the bootstrap window is wide, hammers reads throughout, and checks that no
// read ever observes the partially restored copy: routing includes the new
// host only after the flip, and the flip only happens caught-up.
func TestPlacementNeverServesUncaughtUpCopy(t *testing.T) {
	const seedRows = 250
	placement := map[string][]int{"a": {0}}
	v, engines := mkPartialVDB(t, 2, placement, seedRows, recovery.NewMemoryLog())
	pl := v.Replication().(balancer.Placement)
	target, err := v.Backend("db1")
	if err != nil {
		t.Fatal(err)
	}
	// Every direct statement of the restore/replay sleeps: the copy exists
	// in a partial state for a long, readable window.
	target.SetFaultPlan(backend.NewFaultPlan(backend.Slow(backend.OpDirect, 30*time.Millisecond)))

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			s, err := v.NewSession("user", "pw")
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Exec("SELECT COUNT(*) FROM a", nil)
				if err != nil {
					t.Errorf("read during bootstrap: %v", err)
					return
				}
				// One concurrent insert below: any committed state has
				// seedRows or seedRows+1 rows. A read served from the
				// mid-restore copy would see fewer.
				if n := res.Rows[0][0].I; n != seedRows && n != seedRows+1 {
					t.Errorf("read observed a partial copy: %d rows", n)
					return
				}
			}
		}()
	}

	addDone := make(chan error, 1)
	go func() { addDone <- v.AddTableHost("a", "db1") }()

	// A write lands mid-bootstrap; the catch-up replay must carry it over.
	time.Sleep(50 * time.Millisecond)
	if pl.Hosted("a", "db1") {
		t.Error("routing flipped before the bootstrap finished")
	}
	s := openSession(t, v)
	exec(t, s, "INSERT INTO a (id, v) VALUES (9999, 1)")

	if err := <-addDone; err != nil {
		t.Fatalf("AddTableHost: %v", err)
	}
	close(stop)
	readers.Wait()
	target.SetFaultPlan(nil)

	if !pl.Hosted("a", "db1") {
		t.Fatal("db1 not hosted after AddTableHost")
	}
	if want, got := sortedTableDump(t, engines[0], "a"), sortedTableDump(t, engines[1], "a"); got != want {
		t.Fatalf("caught-up copy diverged:\n--- donor:\n%s\n--- db1:\n%s", want, got)
	}
	if got := countOn(t, engines[1], "SELECT COUNT(*) FROM a WHERE id = 9999"); got != 1 {
		t.Fatal("mid-bootstrap write missed the new copy")
	}
}

// TestPlacementRemoveHostUnderLiveReads keeps slow reads in flight on the
// host being removed: the drop must wait out every read routed under the old
// placement, so no read errors or observes the table vanishing.
func TestPlacementRemoveHostUnderLiveReads(t *testing.T) {
	const seedRows = 6
	placement := map[string][]int{"a": {0, 1}}
	v, engines := mkPartialVDB(t, 2, placement, seedRows, nil)
	b0, err := v.Backend("db0")
	if err != nil {
		t.Fatal(err)
	}
	b0.SetFaultPlan(backend.NewFaultPlan(backend.Slow(backend.OpRead, 20*time.Millisecond)))

	stop := make(chan struct{})
	var readers sync.WaitGroup
	var nReads atomic.Int64
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			s, err := v.NewSession("user", "pw")
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Exec("SELECT COUNT(*) FROM a", nil)
				if err != nil {
					t.Errorf("read during removal: %v", err)
					return
				}
				if n := res.Rows[0][0].I; n != seedRows {
					t.Errorf("read lost rows during removal: %d", n)
					return
				}
				nReads.Add(1)
			}
		}()
	}

	time.Sleep(30 * time.Millisecond) // reads in flight on db0
	if err := v.RemoveTableHost("a", "db0"); err != nil {
		t.Fatalf("RemoveTableHost: %v", err)
	}
	// Keep reading after the flip: everything routes to db1 now.
	time.Sleep(60 * time.Millisecond)
	close(stop)
	readers.Wait()

	if hasTable(engines[0], "a") {
		t.Fatal("db0 still holds the removed copy")
	}
	if nReads.Load() == 0 {
		t.Fatal("no reads completed — the test exercised nothing")
	}
}

// TestReplicaConsistencyUnderPlacementChanges is the acceptance property
// test: randomized concurrent writers run against a partial placement while
// a mover performs random AddTableHost/RemoveTableHost moves on the non-
// oracle backends. Afterwards the live placement must validate and every
// current host must be byte-identical to the full-copy oracle on its hosted
// tables — and hold nothing it no longer hosts.
func TestReplicaConsistencyUnderPlacementChanges(t *testing.T) {
	for _, seed := range []int64{7, 23} {
		runPlacementChangeConsistency(t, seed)
	}
}

func runPlacementChangeConsistency(t *testing.T, seed int64) {
	const (
		nHosts   = 3 // db0..db2 are move targets; db3 is the untouched oracle
		nTables  = 4
		nWriters = 4
		nOps     = 30
		seedRows = 8
	)
	rng := rand.New(rand.NewSource(seed))
	placement := make(map[string][]int, nTables)
	for ti := 0; ti < nTables; ti++ {
		var hosts []int
		for len(hosts) == 0 {
			for b := 0; b < nHosts; b++ {
				if rng.Intn(2) == 1 {
					hosts = append(hosts, b)
				}
			}
		}
		placement[fmt.Sprintf("t%d", ti)] = append(hosts, nHosts)
	}
	v, engines := mkPartialVDB(t, nHosts+1, placement, seedRows, recovery.NewMemoryLog())

	var wg sync.WaitGroup
	writersDone := make(chan struct{})
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			s, err := v.NewSession("user", "pw")
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for i := 0; i < nOps; i++ {
				tbl := (w + rng.Intn(3)) % nTables
				switch rng.Intn(5) {
				case 0:
					_, err = s.Exec(fmt.Sprintf("INSERT INTO t%d (id, v) VALUES (%d, %d)",
						tbl, 1000+w*nOps+i, rng.Intn(100)), nil)
				case 1:
					_, err = s.Exec(fmt.Sprintf("DELETE FROM t%d WHERE id = %d", tbl, rng.Intn(seedRows)), nil)
				case 2:
					other := (tbl + 1) % nTables
					lo, hi := tbl, other
					if lo > hi {
						lo, hi = hi, lo
					}
					for _, q := range []string{
						"BEGIN",
						fmt.Sprintf("UPDATE t%d SET v = v + 1 WHERE id = %d", lo, rng.Intn(seedRows)),
						fmt.Sprintf("UPDATE t%d SET v = %d WHERE id = %d", hi, rng.Intn(100), rng.Intn(seedRows)),
						"COMMIT",
					} {
						if _, err = s.Exec(q, nil); err != nil {
							break
						}
					}
				default:
					_, err = s.Exec(fmt.Sprintf("UPDATE t%d SET v = %d WHERE id = %d",
						tbl, rng.Intn(100), rng.Intn(seedRows)), nil)
				}
				if err != nil {
					t.Errorf("writer %d op %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}

	// The mover keeps flipping placement under the writers' feet. Individual
	// moves may be legitimately refused (already hosted, last enabled host,
	// quiesce timeout) — correctness is judged by the final comparison.
	var moverWG sync.WaitGroup
	moverWG.Add(1)
	go func() {
		defer moverWG.Done()
		rng := rand.New(rand.NewSource(seed * 77))
		pl := v.Replication().(balancer.Placement)
		for {
			select {
			case <-writersDone:
				return
			default:
			}
			tbl := fmt.Sprintf("t%d", rng.Intn(nTables))
			host := fmt.Sprintf("db%d", rng.Intn(nHosts))
			if pl.Hosted(tbl, host) {
				_ = v.RemoveTableHost(tbl, host)
			} else {
				_ = v.AddTableHost(tbl, host)
			}
		}
	}()

	wg.Wait()
	close(writersDone)
	moverWG.Wait()

	if err := v.ValidatePlacement(); err != nil {
		t.Fatalf("seed %d: placement did not converge valid: %v", seed, err)
	}
	oracle := engines[nHosts]
	for ti := 0; ti < nTables; ti++ {
		tbl := fmt.Sprintf("t%d", ti)
		want := sortedTableDump(t, oracle, tbl)
		hosted := make(map[string]bool)
		for _, h := range v.Replication().Hosts(tbl) {
			hosted[h] = true
		}
		if !hosted[fmt.Sprintf("db%d", nHosts)] {
			t.Fatalf("seed %d: the oracle lost %s", seed, tbl)
		}
		for bi := 0; bi < nHosts; bi++ {
			name := fmt.Sprintf("db%d", bi)
			if hosted[name] {
				if got := sortedTableDump(t, engines[bi], tbl); got != want {
					t.Fatalf("seed %d: %s diverged from oracle on hosted %s:\n--- oracle:\n%s\n--- %s:\n%s",
						seed, name, tbl, want, name, got)
				}
			} else if hasTable(engines[bi], tbl) {
				t.Fatalf("seed %d: %s still holds %s it no longer hosts", seed, name, tbl)
			}
		}
	}
	if v.PlacementMoves() == 0 {
		t.Fatalf("seed %d: no move completed — the test exercised nothing", seed)
	}
}

// TestPlacementPolicyHotAndCold drives the load policy end to end: hammering
// one table past HotTableThreshold grows it a replica; letting it go cold
// sheds the surplus copy again.
func TestPlacementPolicyHotAndCold(t *testing.T) {
	e0 := seedPartialEngine(t, "db0", []string{"hot"}, 4)
	e1 := sqlengine.New("db1", sqlengine.WithLockTimeout(30*time.Second))
	v := NewVirtualDatabase(VDBConfig{
		Name:        "policy",
		Replication: balancer.NewPartialReplication(nil),
		ParallelTx:  true,
		RecoveryLog: recovery.NewMemoryLog(),
		Placement: PlacementPolicy{
			HotTableThreshold:  30,
			ColdTableThreshold: 5,
			ObserveWindow:      25 * time.Millisecond,
		},
	})
	t.Cleanup(v.Close)
	for i, e := range []*sqlengine.Engine{e0, e1} {
		var tables []string
		if i == 0 {
			tables = []string{"hot"}
		}
		b := backend.New(backend.Config{
			Name:   fmt.Sprintf("db%d", i),
			Driver: &backend.EngineDriver{Engine: e},
			Tables: tables,
		})
		t.Cleanup(b.Close)
		if err := v.AddBackend(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.ValidatePlacement(); err != nil {
		t.Fatal(err)
	}
	pl := v.Replication().(balancer.Placement)
	s := openSession(t, v)

	// Phase 1: hot. Hammer reads until the policy replicates onto db1.
	deadline := time.Now().Add(10 * time.Second)
	for !pl.Hosted("hot", "db1") {
		if time.Now().After(deadline) {
			t.Fatal("policy never replicated the hot table")
		}
		exec(t, s, "SELECT COUNT(*) FROM hot")
	}
	if v.PlacementMoves() == 0 {
		t.Fatal("policy move not counted")
	}

	// Phase 2: cold. With reads stopped the table drops under the cold
	// threshold and one replica is shed.
	deadline = time.Now().Add(10 * time.Second)
	for len(v.Replication().Hosts("hot")) > 1 {
		if time.Now().After(deadline) {
			t.Fatal("policy never shed the cold replica")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
