package controller

// Dynamic placement (PR 10): add or remove a host for one table while the
// cluster serves live traffic. AddTableHost bootstraps the new copy with the
// PR 7/9 machinery — a quiesced single-table checkpoint dump from an enabled
// donor, a hosted-filtered restore onto the (still enabled, still serving)
// target, and pass-based log replay with the unresolved-transaction guard —
// and only then flips routing, inside the cluster write quiesce, so a read
// can never be served from a not-yet-caught-up copy. RemoveTableHost runs
// the opposite order: flip routing away first (under the same quiesce, with
// the typed last-host guard), drain, wait out in-flight reads, then drop the
// stale copy. An optional policy goroutine watches the balancer's per-table
// load counters and proposes moves automatically — the hot-shard rebalancing
// the paper's static RAIDb-2 placement cannot express.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/balancer"
	"cjdbc/internal/recovery"
)

// Errors reported by placement moves.
var (
	// ErrNoPlacement is returned for placement moves on a virtual database
	// whose replication policy has no explicit placement (full replication).
	ErrNoPlacement = errors.New("controller: replication policy has no explicit placement; moves need partial replication")
	// ErrAlreadyHosted is returned when AddTableHost targets a backend that
	// already hosts the table.
	ErrAlreadyHosted = errors.New("controller: backend already hosts the table")
)

// PlacementPolicy configures the load-driven placement policy. The zero
// value disables the policy goroutine. At most one move is ever in flight:
// the policy proposes synchronously, and manual moves serialize on the same
// mutex.
type PlacementPolicy struct {
	// HotTableThreshold is the read count per observe window at or above
	// which a table is hot and gains a replica on an enabled backend not yet
	// hosting it. 0 disables replication moves.
	HotTableThreshold uint64
	// ColdTableThreshold is the total traffic (reads+writes) per observe
	// window at or below which a table sheds one surplus replica. 0 disables
	// shedding.
	ColdTableThreshold uint64
	// ObserveWindow is how often the policy snapshots the load counters.
	// <= 0 disables the policy goroutine entirely.
	ObserveWindow time.Duration
	// Cooldown is the minimum time between two policy-driven moves (manual
	// moves are not throttled). 0 means a move may follow every window.
	Cooldown time.Duration
}

// placementManager executes placement moves and hosts the policy goroutine.
type placementManager struct {
	v   *VirtualDatabase
	cfg PlacementPolicy

	// moveMu serializes placement moves: max-moves-in-flight = 1, manual and
	// policy-driven alike. A second move waits, it is not rejected.
	moveMu  sync.Mutex
	ckptSeq atomic.Uint64
	moves   atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newPlacementManager(v *VirtualDatabase, cfg PlacementPolicy) *placementManager {
	return &placementManager{v: v, cfg: cfg, stop: make(chan struct{})}
}

func (m *placementManager) start() {
	if m.cfg.ObserveWindow <= 0 {
		return
	}
	if _, ok := m.v.repl.(balancer.Placement); !ok {
		return
	}
	m.wg.Add(1)
	go m.run()
}

func (m *placementManager) close() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// AddTableHost replicates a table onto one more backend under live traffic:
// bootstrap first, routing flip last. The flip happens inside the cluster
// write quiesce after a catch-up pass proves the copy has every logged write
// of the table applied and no unresolved transaction touching it — from that
// critical section on, every write includes the new host (orderedWrite
// computes its targets under the same gate) and reads may choose it.
func (v *VirtualDatabase) AddTableHost(table, backendName string) error {
	return v.placer.addHost(table, backendName)
}

// RemoveTableHost sheds one replica of a table: routing flips away from the
// backend first (refusing, with the typed *balancer.LastHostError, to drop
// the last enabled host), its enqueued writes drain, in-flight reads routed
// under the old placement finish, and only then is the copy dropped.
func (v *VirtualDatabase) RemoveTableHost(table, backendName string) error {
	return v.placer.removeHost(table, backendName)
}

// PlacementMoves counts the completed placement moves (manual and policy).
func (v *VirtualDatabase) PlacementMoves() int64 { return v.placer.moves.Load() }

// PlacementTables lists the tables with explicit placement, or nil under
// full replication.
func (v *VirtualDatabase) PlacementTables() []string {
	if tp, ok := v.repl.(interface{ Tables() []string }); ok {
		return tp.Tables()
	}
	return nil
}

func (m *placementManager) addHost(table, backendName string) error {
	v := m.v
	pl, ok := v.repl.(balancer.Placement)
	if !ok {
		return ErrNoPlacement
	}
	table = strings.ToLower(table)
	b, err := v.Backend(backendName)
	if err != nil {
		return err
	}
	m.moveMu.Lock()
	defer m.moveMu.Unlock()
	// Hosted is also true for tables unknown to the placement map (hosted
	// everywhere), so past this check the table is known and has a host set.
	if pl.Hosted(table, b.Name()) {
		return fmt.Errorf("%w: %s on %s", ErrAlreadyHosted, table, b.Name())
	}
	if !b.Enabled() {
		return fmt.Errorf("controller: add host %s for %s: %w", b.Name(), table, backend.ErrDisabled)
	}
	if v.log == nil {
		// No recovery log means no catch-up replay: copy and flip inside one
		// write quiesce.
		err = m.addHostUnlogged(pl, table, b)
	} else {
		err = m.addHostLogged(pl, table, b)
	}
	if err != nil {
		return err
	}
	m.moves.Add(1)
	return nil
}

// addHostLogged is the live-traffic bootstrap: quiesced single-table dump,
// restore outside any lock, bulk replay, then the final catch-up pass and
// the routing flip inside the write quiesce.
func (m *placementManager) addHostLogged(pl balancer.Placement, table string, b *backend.Backend) error {
	name := fmt.Sprintf("placement-add-%s-%s-%d", table, b.Name(), m.ckptSeq.Add(1))
	seq, dump, err := m.bootstrapTableDump(pl, table, name)
	if err != nil {
		return err
	}
	only := func(t string) bool { return t == table }
	// The copy is invisible until the flip: the table does not route to b,
	// so restoring onto the enabled, serving backend disturbs nothing.
	if err := recovery.RestoreHosted(dump, b, only); err != nil {
		m.dropCopy(b, table)
		return err
	}
	if err := m.catchUpAndFlip(pl, table, b, seq); err != nil {
		m.dropCopy(b, table)
		return err
	}
	return nil
}

// bootstrapTableDump waits (bounded) for a moment no write transaction
// spans, then — still holding the cluster write quiesce — snapshots the one
// table from an enabled donor at a logged checkpoint marker.
func (m *placementManager) bootstrapTableDump(pl balancer.Placement, table, name string) (uint64, *recovery.Dump, error) {
	v := m.v
	deadline := time.Now().Add(checkpointTxWait)
	for {
		ticket := v.sched.LockAllWrites()
		if !v.sched.AnyTxActive() {
			seq, dump, err := m.claimTableDump(pl, table, name)
			ticket.Unlock()
			return seq, dump, err
		}
		ticket.Unlock()
		if time.Now().After(deadline) {
			return 0, nil, ErrCheckpointBusy
		}
		time.Sleep(time.Millisecond)
	}
}

// claimTableDump runs under LockAllWrites with no write transaction active:
// it drains one enabled donor hosting the table, logs the checkpoint marker
// and dumps the table. The donor keeps serving reads and is never disabled.
func (m *placementManager) claimTableDump(pl balancer.Placement, table, name string) (uint64, *recovery.Dump, error) {
	donor, sp := m.donorFor(pl, table)
	if donor == nil {
		return 0, nil, fmt.Errorf("controller: no enabled donor hosts %s: %w", table, ErrNoReintegrationSource)
	}
	donor.DrainWrites()
	seq, err := m.v.log.Checkpoint(name)
	if err != nil {
		return 0, nil, err
	}
	dump, err := recovery.TakeDumpHosted(name, sp, func(t string) bool { return t == table })
	if err != nil {
		return 0, nil, err
	}
	if len(dump.Tables) == 0 {
		return 0, nil, fmt.Errorf("controller: donor %s does not materialize table %s", donor.Name(), table)
	}
	return seq, dump, nil
}

// donorFor picks an enabled, dumpable backend hosting the table.
func (m *placementManager) donorFor(pl balancer.Placement, table string) (*backend.Backend, backend.SchemaProvider) {
	for _, p := range m.v.Backends() {
		if !p.Enabled() || !pl.Hosted(table, p.Name()) {
			continue
		}
		if sp, ok := p.Driver().(backend.SchemaProvider); ok {
			return p, sp
		}
	}
	return nil, nil
}

// catchUpAndFlip is catchUpAndEnable restricted to one table, ending in a
// routing flip instead of an enable. The same unresolved-transaction guard
// applies: a transaction with logged writes of the table but no demarcation
// yet blocks the flip (its eventual commit broadcast would reach the new
// host as a lazy-begin no-op and the writes would be missed forever); under
// the quiesce an unresolved-but-inactive transaction is abandoned and is
// marked dead so it replays as rolled back. Transactions active at flip time
// that never wrote the table are safe: any post-flip write they issue to it
// dispatches under the new placement and reaches the new host live.
func (m *placementManager) catchUpAndFlip(pl balancer.Placement, table string, b *backend.Backend, seq uint64) error {
	v := m.v
	only := func(t string) bool { return t == table }
	// Bulk replay outside the write lock: may take a while on big logs.
	pass, _, _, err := recovery.ReplayPassHosted(v.log, seq, nil, b, v.recoveryWorkers, only)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(reintegrateTxWait)
	for {
		ticket := v.sched.LockAllWrites()
		var unresolved []uint64
		pass, unresolved, _, err = recovery.ReplayPassHosted(v.log, seq, pass, b, v.recoveryWorkers, only)
		if err != nil {
			ticket.Unlock()
			return err
		}
		active := false
		for _, tx := range unresolved {
			if v.sched.TxActive(tx) {
				active = true
				break
			}
		}
		if !active {
			if len(unresolved) == 0 && pass.Deferred == 0 {
				if !b.Enabled() {
					// The target crashed during the bootstrap; its copy is
					// stale and must not be flipped in. Re-integration will
					// reseed it (and drop the leftover copy it does not host).
					ticket.Unlock()
					return fmt.Errorf("controller: add host for %s: backend %s: %w", table, b.Name(), backend.ErrDisabled)
				}
				pl.DeclareHost(table, b.Name())
				ticket.Unlock()
				return nil
			}
			if len(unresolved) > 0 {
				if pass.TxDead == nil {
					pass.TxDead = make(map[uint64]bool, len(unresolved))
				}
				for _, tx := range unresolved {
					pass.TxDead[tx] = true
				}
			}
		}
		ticket.Unlock()
		if time.Now().After(deadline) {
			return fmt.Errorf("controller: add host %s for %s timed out waiting for in-flight transactions to finish", b.Name(), table)
		}
		if active {
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// addHostUnlogged copies and flips inside one write quiesce: without a
// recovery log there is no catch-up replay, so the dump must be taken and
// routing flipped with no write in between.
func (m *placementManager) addHostUnlogged(pl balancer.Placement, table string, b *backend.Backend) error {
	v := m.v
	deadline := time.Now().Add(checkpointTxWait)
	for {
		ticket := v.sched.LockAllWrites()
		if !v.sched.AnyTxActive() {
			err := m.copyAndFlip(pl, table, b)
			ticket.Unlock()
			return err
		}
		ticket.Unlock()
		if time.Now().After(deadline) {
			return ErrCheckpointBusy
		}
		time.Sleep(time.Millisecond)
	}
}

// copyAndFlip runs under LockAllWrites with no write transaction active.
func (m *placementManager) copyAndFlip(pl balancer.Placement, table string, b *backend.Backend) error {
	donor, sp := m.donorFor(pl, table)
	if donor == nil {
		return fmt.Errorf("controller: no enabled donor hosts %s: %w", table, ErrNoReintegrationSource)
	}
	donor.DrainWrites()
	only := func(t string) bool { return t == table }
	dump, err := recovery.TakeDumpHosted("placement-add", sp, only)
	if err != nil {
		return err
	}
	if len(dump.Tables) == 0 {
		return fmt.Errorf("controller: donor %s does not materialize table %s", donor.Name(), table)
	}
	if err := recovery.RestoreHosted(dump, b, only); err != nil {
		m.dropCopy(b, table)
		return err
	}
	if !b.Enabled() {
		m.dropCopy(b, table)
		return fmt.Errorf("controller: add host for %s: backend %s: %w", table, b.Name(), backend.ErrDisabled)
	}
	pl.DeclareHost(table, b.Name())
	return nil
}

func (m *placementManager) removeHost(table, backendName string) error {
	v := m.v
	pl, ok := v.repl.(balancer.Placement)
	if !ok {
		return ErrNoPlacement
	}
	table = strings.ToLower(table)
	b, err := v.Backend(backendName)
	if err != nil {
		return err
	}
	m.moveMu.Lock()
	defer m.moveMu.Unlock()
	deadline := time.Now().Add(checkpointTxWait)
	for {
		ticket := v.sched.LockAllWrites()
		if !v.sched.AnyTxActive() {
			err := m.flipAwayAndDrain(pl, table, b)
			ticket.Unlock()
			if err != nil {
				return err
			}
			break
		}
		ticket.Unlock()
		if time.Now().After(deadline) {
			return ErrCheckpointBusy
		}
		time.Sleep(time.Millisecond)
	}
	// Routing no longer includes b for this table and its enqueued writes
	// have executed; once the reads routed under the old placement finish,
	// nothing can observe the copy.
	v.sched.WaitReaders()
	m.dropCopy(b, table)
	m.moves.Add(1)
	return nil
}

// flipAwayAndDrain runs under LockAllWrites with no write transaction
// active: it checks that another *enabled* backend keeps serving the table
// (stricter than the balancer's own last-host rule, which only counts
// declared hosts), removes the host from the placement atomically, and
// drains the backend so every write enqueued before the flip has executed
// before the copy is dropped.
func (m *placementManager) flipAwayAndDrain(pl balancer.Placement, table string, b *backend.Backend) error {
	if !pl.Hosted(table, b.Name()) {
		return fmt.Errorf("controller: backend %s does not host table %s", b.Name(), table)
	}
	remaining := false
	for _, h := range m.v.repl.Hosts(table) {
		if h == b.Name() {
			continue
		}
		if p, err := m.v.Backend(h); err == nil && p.Enabled() {
			remaining = true
			break
		}
	}
	if !remaining {
		return &balancer.LastHostError{Table: table, Host: b.Name()}
	}
	if err := pl.RemoveHost(table, b.Name()); err != nil {
		return err
	}
	b.DrainWrites()
	return nil
}

// dropCopy removes a stale or aborted table copy. If the drop fails on a
// still-enabled backend, the backend holds a partial unhosted copy it
// cannot clean up — its state is no longer trustworthy, so it is disabled
// explicitly; re-integration restores it from a donor and the restore's
// unhosted-leftover sweep removes the partial copy. Waiting for traffic or
// a probe to notice the failure instead would leave a window where the
// leftover survives a quiesce.
func (m *placementManager) dropCopy(b *backend.Backend, table string) {
	if _, err := b.DirectExec(nil, "DROP TABLE IF EXISTS "+table); err != nil && b.Enabled() {
		m.v.DisableBackend(b.Name())
	}
}

// run is the policy loop: once per observe window it snapshots (and resets)
// the load counters and proposes at most one move.
func (m *placementManager) run() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.ObserveWindow)
	defer ticker.Stop()
	var lastMove time.Time
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		loads := m.v.loads.Snapshot(true)
		if m.cfg.Cooldown > 0 && !lastMove.IsZero() && time.Since(lastMove) < m.cfg.Cooldown {
			continue
		}
		if m.propose(loads) {
			lastMove = time.Now()
		}
	}
}

// propose executes at most one policy move: replicate the hottest
// over-threshold table onto the least-loaded enabled non-host, else shed one
// replica of a cold table. Returns whether a move completed.
func (m *placementManager) propose(loads []balancer.TableLoad) bool {
	v := m.v
	pl, ok := v.repl.(balancer.Placement)
	if !ok {
		return false
	}
	if m.cfg.HotTableThreshold > 0 {
		for _, tl := range loads { // sorted by descending reads
			if tl.Reads < m.cfg.HotTableThreshold {
				break
			}
			if target := m.spreadTarget(pl, tl.Table); target != "" {
				if err := m.addHost(tl.Table, target); err == nil {
					return true
				}
			}
		}
	}
	if m.cfg.ColdTableThreshold > 0 {
		byTable := make(map[string]balancer.TableLoad, len(loads))
		for _, tl := range loads {
			byTable[tl.Table] = tl
		}
		for _, table := range v.PlacementTables() {
			tl := byTable[table] // zero traffic if absent: coldest possible
			if tl.Reads+tl.Writes > m.cfg.ColdTableThreshold {
				continue
			}
			hosts := v.repl.Hosts(table)
			if len(hosts) < 2 {
				continue
			}
			// Shed the host that served the fewest of the table's reads.
			shed, best := "", uint64(0)
			for _, h := range hosts {
				if n := tl.ByHost[h]; shed == "" || n < best {
					shed, best = h, n
				}
			}
			if err := m.removeHost(table, shed); err == nil {
				return true
			}
		}
	}
	return false
}

// spreadTarget picks the enabled backend with the fewest executed operations
// among those not hosting the table, or "" when the table is already
// everywhere (or unknown to the placement map).
func (m *placementManager) spreadTarget(pl balancer.Placement, table string) string {
	if len(m.v.repl.Hosts(table)) == 0 {
		return "" // unknown table: implicitly hosted everywhere already
	}
	var target *backend.Backend
	for _, p := range m.v.Backends() {
		if !p.Enabled() || pl.Hosted(table, p.Name()) {
			continue
		}
		if target == nil || p.Ops() < target.Ops() {
			target = p
		}
	}
	if target == nil {
		return ""
	}
	return target.Name()
}
