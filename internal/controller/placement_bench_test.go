package controller

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/balancer"
	"cjdbc/internal/recovery"
)

// BenchmarkHotTableAddHost measures the tentpole's payoff: a hot table
// hosted by one costed backend (simulated service time, bounded
// parallelism — the experiments package's 1-vCPU device for measuring
// cluster effects) saturates that machine; after AddTableHost copies it to
// a second backend and flips routing, the read-one balancer spreads the
// same offered load over both hosts. hosts=1 is the before, hosts=2 the
// after — the ratio of their throughputs is the benefit of the move.
func BenchmarkHotTableAddHost(b *testing.B) {
	for _, hosts := range []int{1, 2} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			const costScale = 200 * time.Microsecond
			const seedRows = 256
			v := NewVirtualDatabase(VDBConfig{
				Name:        "bench",
				Replication: balancer.NewPartialReplication(nil),
				ParallelTx:  true,
				RecoveryLog: recovery.NewMemoryLog(),
			})
			defer v.Close()
			var backends []*backend.Backend
			for i := 0; i < 2; i++ {
				name := fmt.Sprintf("db%d", i)
				var hosted []string
				if i == 0 {
					hosted = []string{"hot"}
				}
				e := seedPartialEngine(b, name, hosted, seedRows)
				bk := backend.New(backend.Config{
					Name:            name,
					Driver:          &backend.EngineDriver{Engine: e},
					Tables:          hosted,
					Cost:            backend.DefaultCostModel(costScale),
					CostParallelism: 2,
				})
				defer bk.Close()
				if err := v.AddBackend(bk); err != nil {
					b.Fatal(err)
				}
				backends = append(backends, bk)
			}
			if err := v.ValidatePlacement(); err != nil {
				b.Fatal(err)
			}
			if hosts == 2 {
				// The move under test: bootstrap db1's copy, flip routing.
				if err := v.AddTableHost("hot", "db1"); err != nil {
					b.Fatal(err)
				}
			}
			var before int64
			for _, bk := range backends {
				before += bk.Ops()
			}
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				s, err := v.NewSession("user", "pw")
				if err != nil {
					b.Error(err)
					return
				}
				defer s.Close()
				rng := rand.New(rand.NewSource(1))
				for pb.Next() {
					sql := fmt.Sprintf("SELECT v FROM hot WHERE id = %d", rng.Intn(seedRows))
					if _, err := s.Exec(sql, nil); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			var after int64
			for _, bk := range backends {
				after += bk.Ops()
			}
			b.ReportMetric(float64(after-before)/float64(b.N), "backendops/op")
		})
	}
}
