package controller

// RAIDb-2 partial replication tests: placement-aware routing, hosted-subset
// replica consistency under concurrent writes, and hosted-only recovery
// streams. The oracle pattern: one backend hosts every table, so each
// partial backend's hosted tables can be compared byte-for-byte against the
// full copy.

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/balancer"
	"cjdbc/internal/recovery"
	"cjdbc/internal/sqlengine"
)

// partialTableSchema is the common test table shape.
const partialTableSchema = " (id INTEGER PRIMARY KEY, v INTEGER)"

// hostedTablesOf lists (sorted) the tables backend index bi hosts under a
// table -> backend-indices placement.
func hostedTablesOf(placement map[string][]int, bi int) []string {
	var out []string
	for tbl, hosts := range placement {
		for _, h := range hosts {
			if h == bi {
				out = append(out, tbl)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// seedPartialEngine creates an engine holding exactly the given tables,
// each with rows (0..seedRows-1, 0).
func seedPartialEngine(t testing.TB, name string, tables []string, seedRows int) *sqlengine.Engine {
	t.Helper()
	e := sqlengine.New(name, sqlengine.WithLockTimeout(30*time.Second))
	s := e.NewSession()
	defer s.Close()
	for _, tbl := range tables {
		if _, err := s.ExecSQL("CREATE TABLE " + tbl + partialTableSchema); err != nil {
			t.Fatalf("seed %s: %v", tbl, err)
		}
		for r := 0; r < seedRows; r++ {
			if _, err := s.ExecSQL(fmt.Sprintf("INSERT INTO %s (id, v) VALUES (%d, 0)", tbl, r)); err != nil {
				t.Fatalf("seed %s: %v", tbl, err)
			}
		}
	}
	return e
}

// mkPartialVDB builds a partially replicated vdb over n engines: placement
// maps each table to the backend indices hosting it, every backend is
// seeded with exactly its hosted tables and declares them in its config.
func mkPartialVDB(t testing.TB, n int, placement map[string][]int, seedRows int, log recovery.Log) (*VirtualDatabase, []*sqlengine.Engine) {
	t.Helper()
	v := NewVirtualDatabase(VDBConfig{
		Name:        "partial",
		Replication: balancer.NewPartialReplication(nil),
		ParallelTx:  true,
		RecoveryLog: log,
	})
	t.Cleanup(v.Close)
	engines := make([]*sqlengine.Engine, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("db%d", i)
		hosted := hostedTablesOf(placement, i)
		e := seedPartialEngine(t, name, hosted, seedRows)
		engines[i] = e
		b := backend.New(backend.Config{
			Name:   name,
			Driver: &backend.EngineDriver{Engine: e},
			Tables: hosted,
		})
		t.Cleanup(b.Close)
		if err := v.AddBackend(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.ValidatePlacement(); err != nil {
		t.Fatal(err)
	}
	return v, engines
}

// hasTable reports whether the engine contains the table.
func hasTable(e *sqlengine.Engine, table string) bool {
	_, _, err := e.SnapshotTable(table)
	return err == nil
}

// TestReplicaConsistencyPartialPlacement is the placement-aware extension
// of the replica-consistency property test: with every table hosted by a
// random subset of backends plus a full-copy oracle, randomized concurrent
// writers (auto-commit updates, inserts, deletes, cross-table transactions)
// must leave every backend byte-identical to the oracle restricted to its
// hosted tables — and hosting nothing it did not declare.
func TestReplicaConsistencyPartialPlacement(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		runPartialReplicaConsistency(t, seed)
	}
}

func runPartialReplicaConsistency(t *testing.T, seed int64) {
	const (
		nHosts   = 3 // db0..db2 host random subsets; db3 is the oracle
		nTables  = 4
		nWriters = 6
		nOps     = 40
		seedRows = 8
	)
	rng := rand.New(rand.NewSource(seed))
	placement := make(map[string][]int, nTables)
	for ti := 0; ti < nTables; ti++ {
		var hosts []int
		for len(hosts) == 0 {
			for b := 0; b < nHosts; b++ {
				if rng.Intn(2) == 1 {
					hosts = append(hosts, b)
				}
			}
		}
		placement[fmt.Sprintf("t%d", ti)] = append(hosts, nHosts) // oracle hosts all
	}
	v, engines := mkPartialVDB(t, nHosts+1, placement, seedRows, nil)

	var wg sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			s, err := v.NewSession("user", "pw")
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for i := 0; i < nOps; i++ {
				tbl := (w + rng.Intn(3)) % nTables
				switch rng.Intn(5) {
				case 0:
					_, err = s.Exec(fmt.Sprintf("INSERT INTO t%d (id, v) VALUES (%d, %d)",
						tbl, 1000+w*nOps+i, rng.Intn(100)), nil)
				case 1:
					_, err = s.Exec(fmt.Sprintf("DELETE FROM t%d WHERE id = %d", tbl, rng.Intn(seedRows)), nil)
				case 2:
					// A cross-table transaction writes two conflict classes
					// hosted on (generally) different backend subsets; its
					// commit must order against both on every host. Tables in
					// index order: client-side deadlock avoidance.
					other := (tbl + 1) % nTables
					lo, hi := tbl, other
					if lo > hi {
						lo, hi = hi, lo
					}
					for _, q := range []string{
						"BEGIN",
						fmt.Sprintf("UPDATE t%d SET v = v + 1 WHERE id = %d", lo, rng.Intn(seedRows)),
						fmt.Sprintf("UPDATE t%d SET v = %d WHERE id = %d", hi, rng.Intn(100), rng.Intn(seedRows)),
						"COMMIT",
					} {
						if _, err = s.Exec(q, nil); err != nil {
							break
						}
					}
				default:
					_, err = s.Exec(fmt.Sprintf("UPDATE t%d SET v = %d WHERE id = %d",
						tbl, rng.Intn(100), rng.Intn(seedRows)), nil)
				}
				if err != nil {
					t.Errorf("writer %d op %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	oracle := engines[nHosts]
	for tbl, hosts := range placement {
		want := sortedTableDump(t, oracle, tbl)
		hostSet := make(map[int]bool, len(hosts))
		for _, h := range hosts {
			hostSet[h] = true
		}
		for bi := 0; bi < nHosts; bi++ {
			if hostSet[bi] {
				if got := sortedTableDump(t, engines[bi], tbl); got != want {
					t.Fatalf("seed %d: db%d diverged from oracle on hosted %s:\n--- oracle:\n%s\n--- db%d:\n%s",
						seed, bi, tbl, want, bi, got)
				}
			} else if hasTable(engines[bi], tbl) {
				t.Fatalf("seed %d: db%d holds %s it does not host", seed, bi, tbl)
			}
		}
	}
}

// TestPartialRoutingFootprintAndNoHost pins the deterministic routing
// contract: reads route only to backends hosting the statement's whole
// footprint, cross-partition joins and fully-down tables fail with the
// typed NoHostError (which still matches ErrNoBackend), and writes land on
// exactly the hosting backends.
func TestPartialRoutingFootprintAndNoHost(t *testing.T) {
	placement := map[string][]int{"a": {0}, "b": {0, 1}, "c": {1}}
	v, engines := mkPartialVDB(t, 2, placement, 4, nil)
	s := openSession(t, v)

	// Single-table reads and a join with a common host (a⋈b on db0) work.
	for _, q := range []string{
		"SELECT COUNT(*) FROM a",
		"SELECT COUNT(*) FROM c",
		"SELECT a.id FROM a, b WHERE a.id = b.id",
	} {
		if _, err := s.Exec(q, nil); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}

	// A join across tables placed on disjoint backends has no host.
	_, err := s.Exec("SELECT a.id FROM a, c WHERE a.id = c.id", nil)
	var nh *balancer.NoHostError
	if !errors.As(err, &nh) {
		t.Fatalf("cross-partition join: got %v, want NoHostError", err)
	}
	if !errors.Is(err, balancer.ErrNoBackend) {
		t.Fatalf("NoHostError must match ErrNoBackend, got %v", err)
	}
	sort.Strings(nh.Tables)
	if fmt.Sprint(nh.Tables) != "[a c]" {
		t.Fatalf("NoHostError footprint = %v, want [a c]", nh.Tables)
	}

	// A write reaches exactly the hosting backends.
	if _, err := s.Exec("INSERT INTO a (id, v) VALUES (100, 1)", nil); err != nil {
		t.Fatal(err)
	}
	if got := countOn(t, engines[0], "SELECT COUNT(*) FROM a WHERE id = 100"); got != 1 {
		t.Fatalf("host db0 missed the write: %d rows", got)
	}
	if hasTable(engines[1], "a") {
		t.Fatal("db1 does not host a but holds it")
	}

	// With c's only host down, reads and writes on c degrade to the typed
	// no-host error; tables hosted elsewhere keep working.
	v.DisableBackend("db1")
	if _, err := s.Exec("SELECT COUNT(*) FROM c", nil); !errors.As(err, &nh) {
		t.Fatalf("read of down-hosted c: got %v, want NoHostError", err)
	}
	_, err = s.Exec("UPDATE c SET v = 1 WHERE id = 0", nil)
	if !errors.As(err, &nh) {
		t.Fatalf("write to down-hosted c: got %v, want NoHostError", err)
	}
	if !errors.Is(err, ErrNoWriteTarget) {
		t.Fatalf("write no-host must also match ErrNoWriteTarget, got %v", err)
	}
	if _, err := s.Exec("SELECT COUNT(*) FROM a", nil); err != nil {
		t.Fatalf("a should still be served by db0: %v", err)
	}
}

// TestPartialRoutingFuzzedStream is the routing property test: a fuzzed
// stream of SELECTs, joins, UPDATE/DELETE/INSERTs and DDL over a random
// placement must never dispatch a statement to a backend not hosting its
// full footprint (a misrouted statement errors on the missing table, which
// disables the backend — so "all backends still enabled" is the proof), and
// every write must reach every hosting backend exactly once (PK-unique
// inserts make a duplicate application fail, and the final model comparison
// catches a lost one).
func TestPartialRoutingFuzzedStream(t *testing.T) {
	for _, seed := range []int64{5, 17} {
		runPartialRoutingFuzz(t, seed)
	}
}

func runPartialRoutingFuzz(t *testing.T, seed int64) {
	const (
		nHosts   = 3
		nTables  = 4
		nOps     = 300
		seedRows = 4
	)
	rng := rand.New(rand.NewSource(seed))
	tables := make([]string, nTables)
	placement := make(map[string][]int, nTables)
	for ti := 0; ti < nTables; ti++ {
		tbl := fmt.Sprintf("t%d", ti)
		tables[ti] = tbl
		var hosts []int
		for len(hosts) == 0 {
			for b := 0; b < nHosts; b++ {
				if rng.Intn(2) == 1 {
					hosts = append(hosts, b)
				}
			}
		}
		placement[tbl] = hosts
	}
	v, engines := mkPartialVDB(t, nHosts, placement, seedRows, nil)
	s := openSession(t, v)

	commonHost := func(a, b string) bool {
		set := make(map[int]bool)
		for _, h := range placement[a] {
			set[h] = true
		}
		for _, h := range placement[b] {
			if set[h] {
				return true
			}
		}
		return false
	}

	// model[tbl] is the set of live row ids (value checks are covered by
	// the cross-host dump comparison below).
	model := make(map[string]map[int]bool, nTables)
	for _, tbl := range tables {
		ids := make(map[int]bool, seedRows)
		for r := 0; r < seedRows; r++ {
			ids[r] = true
		}
		model[tbl] = ids
	}
	nextID := 1000

	for i := 0; i < nOps; i++ {
		tbl := tables[rng.Intn(nTables)]
		switch rng.Intn(8) {
		case 0: // single-table read: always servable (≥1 host, all enabled)
			if _, err := s.Exec("SELECT COUNT(*) FROM "+tbl, nil); err != nil {
				t.Fatalf("op %d: read %s: %v", i, tbl, err)
			}
		case 1: // join: servable iff some backend hosts both tables
			other := tables[rng.Intn(nTables)]
			_, err := s.Exec(fmt.Sprintf("SELECT %s.id FROM %s, %s WHERE %s.id = %s.id",
				tbl, tbl, other, tbl, other), nil)
			if tbl == other || commonHost(tbl, other) {
				if err != nil {
					t.Fatalf("op %d: join %s⋈%s should be served: %v", i, tbl, other, err)
				}
			} else {
				var nh *balancer.NoHostError
				if !errors.As(err, &nh) {
					t.Fatalf("op %d: join %s⋈%s across partitions: got %v, want NoHostError", i, tbl, other, err)
				}
			}
		case 2: // insert with a globally unique id
			if _, err := s.Exec(fmt.Sprintf("INSERT INTO %s (id, v) VALUES (%d, %d)",
				tbl, nextID, rng.Intn(100)), nil); err != nil {
				t.Fatalf("op %d: insert %s: %v", i, tbl, err)
			}
			model[tbl][nextID] = true
			nextID++
		case 3: // delete a random live id
			for id := range model[tbl] {
				if _, err := s.Exec(fmt.Sprintf("DELETE FROM %s WHERE id = %d", tbl, id), nil); err != nil {
					t.Fatalf("op %d: delete %s: %v", i, tbl, err)
				}
				delete(model[tbl], id)
				break
			}
		case 4: // DDL cycle: drop and re-create a declared table. Placement
			// is pinned, so the re-created table must return to its declared
			// hosts — and only them.
			if _, err := s.Exec("DROP TABLE "+tbl, nil); err != nil {
				t.Fatalf("op %d: drop %s: %v", i, tbl, err)
			}
			if _, err := s.Exec("CREATE TABLE "+tbl+partialTableSchema, nil); err != nil {
				t.Fatalf("op %d: re-create %s: %v", i, tbl, err)
			}
			model[tbl] = make(map[int]bool)
		default: // update
			if _, err := s.Exec(fmt.Sprintf("UPDATE %s SET v = %d WHERE id >= 0", tbl, rng.Intn(100)), nil); err != nil {
				t.Fatalf("op %d: update %s: %v", i, tbl, err)
			}
		}
	}

	for name, state := range map[string]bool{"db0": true, "db1": true, "db2": true} {
		b, err := v.Backend(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Enabled() != state {
			t.Fatalf("seed %d: %s was disabled — a statement was dispatched to a backend missing its footprint", seed, name)
		}
	}
	for _, tbl := range tables {
		hosts := placement[tbl]
		ref := sortedTableDump(t, engines[hosts[0]], tbl)
		for _, h := range hosts[1:] {
			if got := sortedTableDump(t, engines[h], tbl); got != ref {
				t.Fatalf("seed %d: hosts of %s diverged:\n--- db%d:\n%s\n--- db%d:\n%s",
					seed, tbl, hosts[0], ref, h, got)
			}
		}
		if got := countOn(t, engines[hosts[0]], "SELECT COUNT(*) FROM "+tbl); got != int64(len(model[tbl])) {
			t.Fatalf("seed %d: %s has %d rows, model says %d — a write was lost or duplicated",
				seed, tbl, got, len(model[tbl]))
		}
		hostSet := make(map[int]bool, len(hosts))
		for _, h := range hosts {
			hostSet[h] = true
		}
		for bi := range engines {
			if !hostSet[bi] && hasTable(engines[bi], tbl) {
				t.Fatalf("seed %d: db%d holds %s it does not host", seed, bi, tbl)
			}
		}
	}
}

// TestRecoveryStreamHostedSubset asserts the per-backend recovery stream
// contract: the shared log records every write once with its footprint
// (DDL included, Global with tables), and a backend's replay stream — the
// hosted-filtered view — reproduces exactly its hosted tables. Replaying
// db0's stream onto a fresh engine must succeed without ever touching the
// unhosted table (whose entries would fail on the missing table) and land
// byte-identical to db0.
func TestRecoveryStreamHostedSubset(t *testing.T) {
	log := recovery.NewMemoryLog()
	placement := map[string][]int{"a": {0, 1}, "b": {1}}
	v, engines := mkPartialVDB(t, 2, placement, 2, log)
	s := openSession(t, v)

	exec(t, s, "UPDATE a SET v = 7 WHERE id = 0")
	exec(t, s, "INSERT INTO b (id, v) VALUES (10, 1)")
	exec(t, s, "BEGIN")
	exec(t, s, "UPDATE a SET v = 9 WHERE id = 1")
	exec(t, s, "COMMIT")
	// DDL through the vdb: undeclared table, replicated everywhere.
	exec(t, s, "CREATE TABLE d"+partialTableSchema)
	exec(t, s, "INSERT INTO d (id, v) VALUES (1, 5)")
	exec(t, s, "UPDATE b SET v = 2 WHERE id = 10")

	// The DDL entry must carry its footprint despite being global.
	entries, err := log.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	foundDDL := false
	for _, e := range entries {
		if e.Class == recovery.ClassWrite && e.SQL == "CREATE TABLE d"+partialTableSchema {
			foundDDL = true
			if !e.Global || len(e.Tables) != 1 || e.Tables[0] != "d" {
				t.Fatalf("DDL entry: Global=%v Tables=%v, want Global=true Tables=[d]", e.Global, e.Tables)
			}
		}
	}
	if !foundDDL {
		t.Fatal("CREATE TABLE d not found in the recovery log")
	}

	// Replay db0's hosted stream from the log's origin onto a fresh engine
	// seeded like db0 was: must apply only a and d entries.
	pl := v.Replication().(balancer.Placement)
	fresh := seedPartialEngine(t, "replay0", []string{"a"}, 2)
	fb := backend.New(backend.Config{Name: "replay0", Driver: &backend.EngineDriver{Engine: fresh}})
	t.Cleanup(fb.Close)
	fb.Enable()
	_, _, _, err = recovery.ReplayPassHosted(log, 0, nil, fb, 1,
		func(table string) bool { return pl.Hosted(table, "db0") })
	if err != nil {
		t.Fatalf("hosted replay dispatched an unhosted entry: %v", err)
	}
	for _, tbl := range []string{"a", "d"} {
		want := sortedTableDump(t, engines[0], tbl)
		if got := sortedTableDump(t, fresh, tbl); got != want {
			t.Fatalf("replayed stream diverged on %s:\n--- db0:\n%s\n--- replay:\n%s", tbl, want, got)
		}
	}
	if hasTable(fresh, "b") {
		t.Fatal("db0's recovery stream contained entries of unhosted table b")
	}
}

// TestPlacementValidation covers the configuration guards: a table hosted
// by nobody, a host naming no backend, and declared tables on a
// fully-replicated virtual database are all rejected.
func TestPlacementValidation(t *testing.T) {
	repl := balancer.NewPartialReplication(map[string][]string{"x": {"ghost"}})
	if err := repl.Validate([]string{"db0"}); err == nil {
		t.Fatal("unknown host name passed validation")
	}
	repl = balancer.NewPartialReplication(map[string][]string{"x": {}})
	if err := repl.Validate([]string{"db0"}); err == nil {
		t.Fatal("hostless table passed validation")
	}
	repl = balancer.NewPartialReplication(map[string][]string{"x": {"db0"}})
	if err := repl.Validate([]string{"db0"}); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}

	v := NewVirtualDatabase(VDBConfig{Name: "full"})
	t.Cleanup(v.Close)
	e := sqlengine.New("dbf")
	b := backend.New(backend.Config{
		Name:   "dbf",
		Driver: &backend.EngineDriver{Engine: e},
		Tables: []string{"x"},
	})
	t.Cleanup(b.Close)
	if err := v.AddBackend(b); err == nil {
		t.Fatal("declared tables accepted under full replication")
	}
}
