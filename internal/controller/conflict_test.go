package controller

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/recovery"
	"cjdbc/internal/sqlengine"
)

// mkConflictVDB builds a vdb over n engines seeded with k disjoint tables
// t0..t(k-1), each holding rows (id, v) = (0..rows-1, 0). Engines get a
// long lock timeout so deliberately blocked writers never time out in CI.
func mkConflictVDB(t *testing.T, n, k, rows int) (*VirtualDatabase, []*sqlengine.Engine) {
	return mkConflictVDBWorkers(t, n, k, rows, 0)
}

// mkConflictVDBWorkers is mkConflictVDB with the backends' auto-commit
// write worker pool size pinned (0 = default pool, negative = the
// goroutine-per-write baseline).
func mkConflictVDBWorkers(t *testing.T, n, k, rows, writeWorkers int) (*VirtualDatabase, []*sqlengine.Engine) {
	t.Helper()
	var seed []string
	for i := 0; i < k; i++ {
		seed = append(seed, fmt.Sprintf("CREATE TABLE t%d (id INTEGER PRIMARY KEY, v INTEGER)", i))
		for r := 0; r < rows; r++ {
			seed = append(seed, fmt.Sprintf("INSERT INTO t%d (id, v) VALUES (%d, 0)", i, r))
		}
	}
	v := NewVirtualDatabase(VDBConfig{Name: "conflict", ParallelTx: true})
	engines := make([]*sqlengine.Engine, n)
	for i := 0; i < n; i++ {
		e := sqlengine.New(fmt.Sprintf("db%d", i), sqlengine.WithLockTimeout(30*time.Second))
		s := e.NewSession()
		for _, q := range seed {
			if _, err := s.ExecSQL(q); err != nil {
				t.Fatalf("seed: %v", err)
			}
		}
		s.Close()
		engines[i] = e
		b := backend.New(backend.Config{
			Name:         fmt.Sprintf("db%d", i),
			Driver:       &backend.EngineDriver{Engine: e},
			WriteWorkers: writeWorkers,
		})
		t.Cleanup(b.Close)
		if err := v.AddBackend(b); err != nil {
			t.Fatal(err)
		}
	}
	return v, engines
}

// TestDisjointWritesDoNotBlockEachOther is the deterministic tentpole
// proof on one backend: a transaction holds t0's exclusive lock, so an
// auto-commit write to t0 blocks in execution; a subsequently submitted
// write to t1 must complete anyway. Pre-PR, the single global scheduler
// mutex plus the backend's single FIFO auto-commit lane plus the engine's
// all-shards write lock each head-of-line blocked the t1 write behind the
// stuck t0 write.
func TestDisjointWritesDoNotBlockEachOther(t *testing.T) {
	v, engines := mkConflictVDB(t, 1, 2, 2)
	b := v.Backends()[0]

	holder := openSession(t, v)
	exec(t, holder, "BEGIN")
	exec(t, holder, "UPDATE t0 SET v = 99 WHERE id = 0") // holds t0's lock

	// Submit the conflicting write first; it must stay blocked.
	blockedDone := make(chan error, 1)
	blocked := openSession(t, v)
	go func() {
		_, err := blocked.Exec("UPDATE t0 SET v = 1 WHERE id = 1", nil)
		blockedDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for b.Pending() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.Pending() == 0 {
		t.Fatal("blocked write never reached the backend")
	}

	// Now a write to a disjoint table must flow around it.
	freeDone := make(chan error, 1)
	free := openSession(t, v)
	go func() {
		_, err := free.Exec("UPDATE t1 SET v = 7 WHERE id = 0", nil)
		freeDone <- err
	}()
	select {
	case err := <-freeDone:
		if err != nil {
			t.Fatalf("disjoint write: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("a write to t1 blocked behind a stuck write to t0")
	}
	select {
	case err := <-blockedDone:
		t.Fatalf("t0 write completed while t0 was locked (err=%v)", err)
	default:
	}

	exec(t, holder, "COMMIT")
	if err := <-blockedDone; err != nil {
		t.Fatalf("t0 write after commit: %v", err)
	}
	if got := countOn(t, engines[0], "SELECT v FROM t1 WHERE id = 0"); got != 7 {
		t.Fatalf("t1 row = %d, want 7", got)
	}
	if got := countOn(t, engines[0], "SELECT v FROM t0 WHERE id = 1"); got != 1 {
		t.Fatalf("t0 row = %d, want 1", got)
	}
}

// TestSameTableWritesSerializeInOrder: two writes to the same table keep
// their submission order even while the table is blocked by a transaction —
// the final value must be the second writer's.
func TestSameTableWritesSerializeInOrder(t *testing.T) {
	v, engines := mkConflictVDB(t, 1, 1, 2)
	b := v.Backends()[0]

	holder := openSession(t, v)
	exec(t, holder, "BEGIN")
	exec(t, holder, "UPDATE t0 SET v = 99 WHERE id = 1") // holds t0's lock

	w1Done := make(chan error, 1)
	w1 := openSession(t, v)
	go func() {
		_, err := w1.Exec("UPDATE t0 SET v = 1 WHERE id = 0", nil)
		w1Done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for b.Pending() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.Pending() == 0 {
		t.Fatal("first write never reached the backend")
	}

	w2Done := make(chan error, 1)
	w2 := openSession(t, v)
	go func() {
		_, err := w2.Exec("UPDATE t0 SET v = 2 WHERE id = 0", nil)
		w2Done <- err
	}()
	// Both must stay queued behind the transaction's lock, in order.
	time.Sleep(50 * time.Millisecond)
	select {
	case <-w1Done:
		t.Fatal("w1 completed while t0 was locked")
	case <-w2Done:
		t.Fatal("w2 completed while t0 was locked")
	default:
	}

	exec(t, holder, "COMMIT")
	if err := <-w1Done; err != nil {
		t.Fatalf("w1: %v", err)
	}
	if err := <-w2Done; err != nil {
		t.Fatalf("w2: %v", err)
	}
	if got := countOn(t, engines[0], "SELECT v FROM t0 WHERE id = 0"); got != 2 {
		t.Fatalf("final value = %d, want 2 (second writer last)", got)
	}
}

// TestWriteThenCommitKeepsOrderOnSlowBackend: under the early-response
// FIRST policy the client races ahead of the slow replica; the per-
// transaction lane must still deliver write before commit there, so the
// committed row eventually appears on every backend.
func TestWriteThenCommitKeepsOrderOnSlowBackend(t *testing.T) {
	v := NewVirtualDatabase(VDBConfig{Name: "order", ParallelTx: true, EarlyResponse: ResponseFirst})
	var engines []*sqlengine.Engine
	for i := 0; i < 2; i++ {
		e := sqlengine.New(fmt.Sprintf("db%d", i))
		s := e.NewSession()
		if _, err := s.ExecSQL("CREATE TABLE t0 (id INTEGER PRIMARY KEY, v INTEGER)"); err != nil {
			t.Fatal(err)
		}
		s.Close()
		engines = append(engines, e)
		cfg := backend.Config{Name: fmt.Sprintf("db%d", i), Driver: &backend.EngineDriver{Engine: e}}
		if i == 1 {
			cfg.Cost = backend.DefaultCostModel(2 * time.Millisecond) // the slow replica
		}
		b := backend.New(cfg)
		t.Cleanup(b.Close)
		if err := v.AddBackend(b); err != nil {
			t.Fatal(err)
		}
	}
	s := openSession(t, v)
	exec(t, s, "BEGIN")
	exec(t, s, "INSERT INTO t0 (id, v) VALUES (1, 10)")
	exec(t, s, "COMMIT")

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if countOn(t, engines[1], "SELECT COUNT(*) FROM t0") == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("committed row never reached the slow backend: commit overtook the write")
}

// sortedTableDump renders a table's full contents in a canonical order for
// cross-backend comparison.
func sortedTableDump(t *testing.T, e *sqlengine.Engine, table string) string {
	t.Helper()
	_, rows, err := e.SnapshotTable(table)
	if err != nil {
		t.Fatalf("snapshot %s on %s: %v", table, e.Name(), err)
	}
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.Key())
			b.WriteByte('|')
		}
		lines = append(lines, b.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestReplicaConsistencyUnderConcurrentWrites is the replica-consistency
// property test: randomized concurrent writers over overlapping table sets
// — auto-commit updates, inserts, deletes, and multi-table transactions —
// must leave every backend with identical table contents, because
// conflicting writes are applied in one conflict-class order everywhere.
// Run with -race this doubles as the mixed disjoint/overlapping stress.
func TestReplicaConsistencyUnderConcurrentWrites(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		runReplicaConsistency(t, 0, seed)
	}
}

// runReplicaConsistency is the randomized replica-consistency property body
// shared with the worker-pool equivalence test: writeWorkers selects the
// auto-commit execution vehicle (0 = default worker pool, 1 = single
// worker, negative = the goroutine-per-write baseline); whatever runs the
// writes, all backends must stay byte-identical.
func runReplicaConsistency(t *testing.T, writeWorkers int, seed int64) {
	const (
		nBackends = 3
		nTables   = 4
		nWriters  = 8
		nOps      = 60
		seedRows  = 8
	)
	{
		v, engines := mkConflictVDBWorkers(t, nBackends, nTables, seedRows, writeWorkers)

		// Two extra tables carry the snapshot-reader assertions: inv holds a
		// conserved sum redistributed by multi-row transfer transactions
		// (any torn read breaks the invariant), mono a counter incremented
		// by auto-commit writes (any snapshot regression breaks per-session
		// monotonicity). Both are created through the VDB so every backend
		// replicates them.
		setup := openSession(t, v)
		exec(t, setup, "CREATE TABLE inv (id INTEGER PRIMARY KEY, v INTEGER)")
		const invRows, invEach = 5, 100
		for i := 0; i < invRows; i++ {
			exec(t, setup, fmt.Sprintf("INSERT INTO inv (id, v) VALUES (%d, %d)", i, invEach))
		}
		exec(t, setup, "CREATE TABLE mono (id INTEGER PRIMARY KEY, n INTEGER)")
		exec(t, setup, "INSERT INTO mono (id, n) VALUES (0, 0)")
		setup.Close()

		// Snapshot readers: one engine session per backend, reading
		// latch-free while the cluster writes. Every SUM over inv must land
		// on exactly one commit epoch, and mono's counter must never move
		// backwards within a session (epochs only advance on one engine).
		stopReaders := make(chan struct{})
		var readersWG sync.WaitGroup
		for bi := range engines {
			readersWG.Add(1)
			go func(e *sqlengine.Engine) {
				defer readersWG.Done()
				rs := e.NewSession()
				defer rs.Close()
				var lastN int64 = -1
				for {
					select {
					case <-stopReaders:
						return
					default:
					}
					res, err := rs.ExecSQL("SELECT SUM(v) FROM inv")
					if err != nil {
						t.Errorf("snapshot reader: %v", err)
						return
					}
					if sum := res.Rows[0][0].I; sum != invRows*invEach {
						t.Errorf("torn snapshot: SUM(inv.v) = %d, want %d", sum, invRows*invEach)
						return
					}
					res, err = rs.ExecSQL("SELECT n FROM mono WHERE id = 0")
					if err != nil {
						t.Errorf("snapshot reader: %v", err)
						return
					}
					if n := res.Rows[0][0].I; n < lastN {
						t.Errorf("snapshot went backwards: mono.n %d after %d", n, lastN)
						return
					} else {
						lastN = n
					}
				}
			}(engines[bi])
		}

		// Invariant-churning writers: transfers within inv and auto-commit
		// increments of mono, running alongside the main random workload.
		var invWG sync.WaitGroup
		invWG.Add(1)
		go func() {
			defer invWG.Done()
			rng := rand.New(rand.NewSource(seed * 31))
			s, err := v.NewSession("user", "pw")
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for i := 0; i < nOps; i++ {
				amt := rng.Intn(10)
				from, to := rng.Intn(invRows), rng.Intn(invRows)
				for _, q := range []string{
					"BEGIN",
					fmt.Sprintf("UPDATE inv SET v = v - %d WHERE id = %d", amt, from),
					fmt.Sprintf("UPDATE inv SET v = v + %d WHERE id = %d", amt, to),
					"COMMIT",
				} {
					if _, err := s.Exec(q, nil); err != nil {
						t.Errorf("transfer op %d %q: %v", i, q, err)
						return
					}
				}
				if _, err := s.Exec("UPDATE mono SET n = n + 1 WHERE id = 0", nil); err != nil {
					t.Errorf("mono increment %d: %v", i, err)
					return
				}
			}
		}()

		var wg sync.WaitGroup
		for w := 0; w < nWriters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
				s, err := v.NewSession("user", "pw")
				if err != nil {
					t.Error(err)
					return
				}
				defer s.Close()
				for i := 0; i < nOps; i++ {
					// Writers overlap: each favors two "home" tables but
					// sometimes strays, so disjoint and conflicting classes
					// mix continuously.
					tbl := (w + rng.Intn(3)) % nTables
					switch rng.Intn(5) {
					case 0:
						_, err = s.Exec(fmt.Sprintf("INSERT INTO t%d (id, v) VALUES (%d, %d)",
							tbl, 1000+w*nOps+i, rng.Intn(100)), nil)
					case 1:
						_, err = s.Exec(fmt.Sprintf("DELETE FROM t%d WHERE id = %d", tbl, rng.Intn(seedRows)), nil)
					case 2:
						// A cross-table transaction exercises footprint
						// accumulation: its commit must order against both
						// classes. Tables are acquired in index order — the
						// standard client-side deadlock-avoidance discipline;
						// opposite-order transactions would deadlock under
						// strict 2PL (resolved by lock timeout) on any
						// version of this engine.
						other := (tbl + 1) % nTables
						lo, hi := tbl, other
						if lo > hi {
							lo, hi = hi, lo
						}
						for _, q := range []string{
							"BEGIN",
							fmt.Sprintf("UPDATE t%d SET v = v + 1 WHERE id = %d", lo, rng.Intn(seedRows)),
							fmt.Sprintf("UPDATE t%d SET v = %d WHERE id = %d", hi, rng.Intn(100), rng.Intn(seedRows)),
							"COMMIT",
						} {
							if _, err = s.Exec(q, nil); err != nil {
								break
							}
						}
					default:
						_, err = s.Exec(fmt.Sprintf("UPDATE t%d SET v = %d WHERE id = %d",
							tbl, rng.Intn(100), rng.Intn(seedRows)), nil)
					}
					if err != nil {
						t.Errorf("writer %d op %d: %v", w, i, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		invWG.Wait()
		close(stopReaders)
		readersWG.Wait()

		tables := make([]string, 0, nTables+2)
		for ti := 0; ti < nTables; ti++ {
			tables = append(tables, fmt.Sprintf("t%d", ti))
		}
		tables = append(tables, "inv", "mono")
		for _, tbl := range tables {
			want := sortedTableDump(t, engines[0], tbl)
			for bi := 1; bi < nBackends; bi++ {
				got := sortedTableDump(t, engines[bi], tbl)
				if got != want {
					t.Fatalf("seed %d: backend %d diverged on %s:\n--- db0:\n%s\n--- db%d:\n%s",
						seed, bi, tbl, want, bi, got)
				}
			}
		}
	}
}

// TestSequencerDisjointClassesDoNotBlock exercises the scheduler's
// conflict-class sequencer directly: holding class {a} must not block class
// {b}, must block class {a,c}, and a global ticket must block everything.
func TestSequencerDisjointClassesDoNotBlock(t *testing.T) {
	s := NewScheduler(1, ResponseAll, true)

	a := s.LockClass([]string{"a"}, false)

	done := make(chan struct{})
	go func() {
		b := s.LockClass([]string{"b"}, false)
		b.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("class {b} blocked behind held class {a}")
	}

	acBlocked := make(chan struct{})
	go func() {
		ac := s.LockClass([]string{"a", "c"}, false)
		ac.Unlock()
		close(acBlocked)
	}()
	select {
	case <-acBlocked:
		t.Fatal("class {a,c} did not block behind held class {a}")
	case <-time.After(30 * time.Millisecond):
	}

	globalDone := make(chan struct{})
	go func() {
		g := s.LockClass(nil, true)
		g.Unlock()
		close(globalDone)
	}()
	select {
	case <-globalDone:
		t.Fatal("global ticket did not block behind held class {a}")
	case <-time.After(30 * time.Millisecond):
	}

	a.Unlock()
	<-acBlocked
	<-globalDone
}

// TestSequencerTxFootprintAccumulates: a transaction's commit footprint is
// the union of its writes' tables, and taking it clears it.
func TestSequencerTxFootprintAccumulates(t *testing.T) {
	s := NewScheduler(1, ResponseAll, true)
	s.NoteTxWrite(42, []string{"a", "b"}, false)
	s.NoteTxWrite(42, []string{"b", "c"}, false)
	tables, global := s.TakeTxFootprint(42)
	if global || fmt.Sprint(tables) != "[a b c]" {
		t.Fatalf("footprint = %v global=%v, want [a b c] false", tables, global)
	}
	if tables, global = s.TakeTxFootprint(42); len(tables) != 0 || global {
		t.Fatalf("footprint not cleared: %v %v", tables, global)
	}
	s.NoteTxWrite(7, []string{"a"}, true)
	if _, global = s.TakeTxFootprint(7); !global {
		t.Fatal("global write did not mark the transaction footprint global")
	}
	s.NoteTxWrite(9, []string{"z"}, false)
	s.ForgetTx(9)
	if tables, _ = s.TakeTxFootprint(9); len(tables) != 0 {
		t.Fatalf("ForgetTx left %v", tables)
	}
}

// TestReplicaConsistencyCrashMidTransaction is the replica-consistency
// property under failure: the same randomized mixed workload, but one
// backend crashes at its second in-transaction commit — the scripted
// crash-mid-transaction fault — and is then healed and automatically
// re-integrated from the genesis backup while traffic continues. At the
// end, the survivors must be byte-identical (the crash-consistent disable
// dropped the whole backend, never a prefix of a transaction) and the
// re-integrated backend must have converged to the same bytes.
func TestReplicaConsistencyCrashMidTransaction(t *testing.T) {
	const (
		nBackends = 3
		nTables   = 4
		nWriters  = 6
		nOps      = 30
		seedRows  = 8
	)
	v := NewVirtualDatabase(VDBConfig{
		Name:        "crash",
		ParallelTx:  true,
		RecoveryLog: recovery.NewMemoryLog(),
		Health: HealthConfig{
			ProbeInterval:         5 * time.Millisecond,
			AutoReintegrate:       true,
			ReintegrateBackoff:    5 * time.Millisecond,
			ReintegrateBackoffCap: 50 * time.Millisecond,
			ReintegrateAttempts:   -1, // the test heals the fault; keep retrying until then
		},
	})
	t.Cleanup(v.Close)
	engines := make([]*sqlengine.Engine, nBackends)
	backends := make([]*backend.Backend, nBackends)
	for i := range engines {
		e := sqlengine.New(fmt.Sprintf("db%d", i), sqlengine.WithLockTimeout(30*time.Second))
		s := e.NewSession()
		for ti := 0; ti < nTables; ti++ {
			if _, err := s.ExecSQL(fmt.Sprintf("CREATE TABLE t%d (id INTEGER PRIMARY KEY, v INTEGER)", ti)); err != nil {
				t.Fatalf("seed: %v", err)
			}
			for r := 0; r < seedRows; r++ {
				if _, err := s.ExecSQL(fmt.Sprintf("INSERT INTO t%d (id, v) VALUES (%d, 0)", ti, r)); err != nil {
					t.Fatalf("seed: %v", err)
				}
			}
		}
		s.Close()
		engines[i] = e
		b := backend.New(backend.Config{Name: fmt.Sprintf("db%d", i), Driver: &backend.EngineDriver{Engine: e}})
		t.Cleanup(b.Close)
		backends[i] = b
		if err := v.AddBackend(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.BackupBackend("db0", "genesis"); err != nil {
		t.Fatalf("genesis backup: %v", err)
	}

	// The scripted fault: db2 goes dark when it executes its second
	// transactional commit. Earlier writes of that transaction have applied
	// on db2; the disable teardown must roll them back, not leave a prefix.
	plan := backend.NewFaultPlan(backend.CrashOnCommit(2, nil))
	backends[2].SetFaultPlan(plan)

	var wg sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*977 + 13))
			s, err := v.NewSession("user", "pw")
			if err != nil {
				t.Errorf("session: %v", err)
				return
			}
			defer s.Close()
			op := func(sql string) {
				// Errors are tolerated: a write racing the crash window can
				// fail everywhere at once. Divergence is what the final dump
				// comparison catches.
				_, _ = s.Exec(sql, nil)
			}
			for i := 0; i < nOps; i++ {
				tbl := rng.Intn(nTables)
				switch rng.Intn(4) {
				case 0:
					op(fmt.Sprintf("INSERT INTO t%d (id, v) VALUES (%d, %d)",
						tbl, 1000+w*nOps+i, rng.Intn(100)))
				case 1:
					lo, hi := tbl, (tbl+1)%nTables
					if lo > hi {
						lo, hi = hi, lo
					}
					op("BEGIN")
					op(fmt.Sprintf("UPDATE t%d SET v = v + 1 WHERE id = %d", lo, rng.Intn(seedRows)))
					op(fmt.Sprintf("UPDATE t%d SET v = %d WHERE id = %d", hi, rng.Intn(100), rng.Intn(seedRows)))
					op("COMMIT")
					if s.InTransaction() {
						op("ROLLBACK")
					}
				default:
					op(fmt.Sprintf("UPDATE t%d SET v = %d WHERE id = %d",
						tbl, rng.Intn(100), rng.Intn(seedRows)))
				}
			}
		}(w)
	}
	wg.Wait()

	if backends[2].Enabled() && !plan.Down() {
		t.Fatal("fault never fired: the workload issued fewer than two transactional commits on db2")
	}

	// Heal and wait for the supervisor to re-integrate db2 under no load
	// (the writers are done; re-integration under load is the chaos
	// package's job).
	plan.Heal()
	deadline := time.Now().Add(15 * time.Second)
	for v.BackendHealth("db2") != StatusHealthy || !backends[2].Enabled() {
		if time.Now().After(deadline) {
			t.Fatalf("db2 never re-integrated; health=%s", v.BackendHealth("db2"))
		}
		time.Sleep(2 * time.Millisecond)
	}

	for ti := 0; ti < nTables; ti++ {
		table := fmt.Sprintf("t%d", ti)
		want := sortedTableDump(t, engines[0], table)
		for bi := 1; bi < nBackends; bi++ {
			if got := sortedTableDump(t, engines[bi], table); got != want {
				t.Errorf("table %s differs between db0 and db%d:\n--- db0:\n%s\n--- db%d:\n%s",
					table, bi, want, bi, got)
			}
		}
	}
}
