package controller

import (
	"errors"
	"testing"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/recovery"
	"cjdbc/internal/sqlengine"
	"cjdbc/internal/sqlparser"
)

// TestReadFailoverDisablesFailedBackend: a backend failing mid-read with a
// non-semantic fault is disabled and the read retries transparently on a
// replica — the caller never sees the fault.
func TestReadFailoverDisablesFailedBackend(t *testing.T) {
	v, _ := mkVDB(t, 2, VDBConfig{ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	bad := v.Backends()[0]
	bad.InjectFailure(errors.New("io: connection reset"))

	// Every read must succeed regardless of which backend the balancer
	// picks first.
	for i := 0; i < 4; i++ {
		res, err := s.Exec("SELECT COUNT(*) FROM item", nil)
		if err != nil {
			t.Fatalf("read %d did not fail over: %v", i, err)
		}
		if res.Rows[0][0].I != 3 {
			t.Fatalf("read %d returned %v rows", i, res.Rows[0][0])
		}
	}
	if bad.Enabled() {
		t.Fatal("backend that failed a read was not disabled")
	}
	if v.StatsSnapshot().BackendsDisabled != 1 {
		t.Errorf("disable counter = %d, want 1", v.StatsSnapshot().BackendsDisabled)
	}
	// The survivor keeps serving.
	if res := exec(t, s, "SELECT COUNT(*) FROM item"); res.Rows[0][0].I != 3 {
		t.Fatalf("survivor read: %v", res.Rows[0][0])
	}
}

// TestPartialWriteSuccessStandsOnSurvivors: one backend fails a write; the
// operation succeeds on the survivors (no 2PC, §2.4.1), the caller gets the
// successful result, and the failed backend is disabled via the write
// failure callback.
func TestPartialWriteSuccessStandsOnSurvivors(t *testing.T) {
	v, engines := mkVDB(t, 3, VDBConfig{ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	bad := v.Backends()[2]
	bad.InjectFailure(errors.New("disk died"))

	res, err := s.Exec("INSERT INTO item (i_id, i_title, i_cost) VALUES (50, 'survivor', 5)", nil)
	if err != nil {
		t.Fatalf("partial write did not stand on survivors: %v", err)
	}
	if res == nil || res.RowsAffected != 1 {
		t.Fatalf("partial write result: %+v", res)
	}
	for i := 0; i < 2; i++ {
		if n := countOn(t, engines[i], "SELECT COUNT(*) FROM item WHERE i_id = 50"); n != 1 {
			t.Fatalf("survivor %d missing the row", i)
		}
	}
	deadline := time.Now().Add(time.Second)
	for bad.Enabled() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if bad.Enabled() {
		t.Fatal("failed backend not disabled via callback")
	}
}

// TestErrorClassificationTyped: failover-vs-semantic classification works
// through errors.Is sentinels, not message sniffing — engine statement
// errors (including wrapped and sentinel ones) and parse errors are
// semantic; injected faults are not.
func TestErrorClassificationTyped(t *testing.T) {
	semantic := []error{
		sqlengine.ErrLockTimeout,
		sqlengine.ErrNoTransaction,
		&sqlengine.TableNotFoundError{Table: "missing"},
		backend.ErrStatement,
	}
	if _, err := sqlparser.Parse("SELECT FROM FROM"); err == nil {
		t.Fatal("bad SQL parsed")
	} else {
		semantic = append(semantic, err)
	}
	for _, err := range semantic {
		if !isSemanticError(err) {
			t.Errorf("%v not classified semantic", err)
		}
	}
	for _, err := range []error{
		errors.New("engine: impostor — a prefix is not a classification"),
		errors.New("disk died"),
		backend.ErrDisabled,
	} {
		if isSemanticError(err) {
			t.Errorf("%v wrongly classified semantic", err)
		}
	}

	// End to end: a missing table surfaced through a real engine keeps its
	// classification across the driver boundary.
	e := sqlengine.New("cls")
	ses := e.NewSession()
	_, err := ses.ExecSQL("SELECT * FROM nope")
	ses.Close()
	if err == nil || !isSemanticError(err) {
		t.Fatalf("engine error lost its sentinel: %v", err)
	}

	// Value-level failures (division by zero, bad conversions) fail
	// identically on every replica too: a single bad query must never
	// disable the cluster's backends.
	v, _ := mkVDB(t, 2, VDBConfig{ParallelTx: true}, seedSchema...)
	s := openSession(t, v)
	if _, err := s.Exec("UPDATE item SET i_cost = 1/0", nil); err == nil {
		t.Fatal("division by zero succeeded")
	} else if !isSemanticError(err) {
		t.Fatalf("division by zero classified as backend fault: %v", err)
	}
	time.Sleep(20 * time.Millisecond) // let any (wrong) disable callbacks land
	for _, b := range v.Backends() {
		if !b.Enabled() {
			t.Fatal("value error disabled a backend")
		}
	}
}

// TestRecoveryLogRecordsConflictFootprint: every sequenced operation logs
// the conflict class it was ordered under — a write its table set, a commit
// its transaction's accumulated footprint — and the recorded sequence is a
// valid serialization (conflicting entries are ordered; Seq is strictly
// increasing).
func TestRecoveryLogRecordsConflictFootprint(t *testing.T) {
	log := recovery.NewMemoryLog()
	v, _ := mkVDB(t, 1, VDBConfig{ParallelTx: true, RecoveryLog: log},
		append(seedSchema, "CREATE TABLE other (id INTEGER PRIMARY KEY)")...)
	s := openSession(t, v)
	exec(t, s, "INSERT INTO other (id) VALUES (1)")
	exec(t, s, "BEGIN")
	exec(t, s, "UPDATE item SET i_cost = 1 WHERE i_id = 1")
	exec(t, s, "INSERT INTO other (id) VALUES (2)")
	exec(t, s, "COMMIT")

	entries, err := log.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[recovery.EntryClass][]recovery.Entry{}
	var lastSeq uint64
	for _, e := range entries {
		if e.Seq <= lastSeq {
			t.Fatalf("sequence not strictly increasing at %+v", e)
		}
		lastSeq = e.Seq
		byClass[e.Class] = append(byClass[e.Class], e)
	}
	writes := byClass[recovery.ClassWrite]
	if len(writes) != 3 {
		t.Fatalf("writes logged = %d, want 3", len(writes))
	}
	if len(writes[0].Tables) != 1 || writes[0].Tables[0] != "other" {
		t.Fatalf("auto write footprint = %v", writes[0].Tables)
	}
	commits := byClass[recovery.ClassCommit]
	if len(commits) != 1 {
		t.Fatalf("commits logged = %d", len(commits))
	}
	// The commit's footprint is the union of the transaction's writes.
	if got := commits[0].Tables; len(got) != 2 || got[0] != "item" || got[1] != "other" {
		t.Fatalf("commit footprint = %v, want [item other]", got)
	}
	// The commit conflicts with both its writes; the two tx writes are on
	// disjoint tables but share the transaction, so they conflict too.
	for _, w := range writes[1:] {
		if !commits[0].ConflictsWith(&w) {
			t.Errorf("commit does not conflict with tx write %v", w.Tables)
		}
	}
	if writes[0].ConflictsWith(&writes[1]) {
		t.Errorf("disjoint auto write and tx item write reported conflicting: %v vs %v",
			writes[0].Tables, writes[1].Tables)
	}

	// A transaction that performed DDL was sequenced gate-exclusive; its
	// commit must carry the global marker so the recorded order keeps it
	// conflicting with everything.
	exec(t, s, "BEGIN")
	exec(t, s, "CREATE TABLE brand_new (id INTEGER PRIMARY KEY)")
	exec(t, s, "COMMIT")
	entries, err = log.Since(lastSeq)
	if err != nil {
		t.Fatal(err)
	}
	var ddlCommit *recovery.Entry
	for i := range entries {
		if entries[i].Class == recovery.ClassCommit {
			ddlCommit = &entries[i]
		}
	}
	if ddlCommit == nil || !ddlCommit.Global {
		t.Fatalf("DDL transaction's commit not marked global: %+v", ddlCommit)
	}
	if !ddlCommit.ConflictsWith(&writes[0]) {
		t.Fatal("global commit must conflict with every write")
	}
}
