package backend

import (
	"errors"
	"sync"
	"time"
)

// ErrInjected is the default error delivered by fault-plan rules that do
// not carry their own.
var ErrInjected = errors.New("backend: injected fault")

// OpKind classifies one backend operation for fault-plan matching. The
// checks sit at the driver seam — immediately before a connection would
// execute — so every path (pooled reads, transactional writes, the
// auto-commit worker pool, health probes, and the DirectExec traffic of
// checkpointing and recovery) observes the same plan.
type OpKind int

// Operation kinds a fault rule can match.
const (
	OpAny OpKind = iota // matches every kind
	OpRead
	OpWrite
	OpCommit
	OpRollback
	OpProbe  // health-monitor ping
	OpDirect // DirectExec: checkpoint dumps and recovery replay
)

// Op describes one backend operation presented to the fault plan.
type Op struct {
	Kind  OpKind
	Table string // first conflict-class table; "" when unknown
	TxID  uint64 // 0 = auto-commit
}

// Rule is one scripted fault. A rule counts the operations it matches and
// fires deterministically by position in that count — no randomness, so a
// chaos scenario driven by a seeded workload replays the same faults.
type Rule struct {
	Kind   OpKind // OpAny matches every kind
	Table  string // "" matches every table
	AfterN int    // fire from the Nth matching op on (1-based; 0 = first)
	Times  int    // number of firings; 0 = unlimited
	// Err is the injected error (ErrInjected when nil and the rule is not
	// latency-only). A rule with Err nil and Latency set delays the op
	// without failing it — the slow-replica skew fault.
	Err     error
	Latency time.Duration
	// Crash flips the whole plan into the crashed state when this rule
	// fires: every subsequent operation of any kind fails until Heal. A
	// Crash rule on OpCommit is the crash-mid-transaction fault.
	Crash bool

	seen  int
	fired int
}

func (r *Rule) matches(op Op) bool {
	if r.Kind != OpAny && r.Kind != op.Kind {
		return false
	}
	return r.Table == "" || r.Table == op.Table
}

// FaultPlan is a scripted, deterministic sequence of faults injected at a
// backend's driver seam. Rules are evaluated in order; the first rule that
// fires decides the operation's fate. Counters are plan-internal, so a plan
// is single-use: install a fresh plan per scenario.
type FaultPlan struct {
	mu    sync.Mutex
	rules []*Rule
	down  bool
	err   error
}

// NewFaultPlan builds a plan from rules, evaluated in the given order.
func NewFaultPlan(rules ...*Rule) *FaultPlan {
	return &FaultPlan{rules: rules}
}

// Heal clears the crashed state and expires every rule, so subsequent
// operations succeed. The re-integration supervisor's restore attempts
// start succeeding once a scenario heals the backend.
func (p *FaultPlan) Heal() {
	p.mu.Lock()
	p.down = false
	for _, r := range p.rules {
		if r.Times == 0 {
			r.Times = -1 // expire unlimited rules
		}
		r.fired = r.Times
	}
	p.mu.Unlock()
}

// Down reports whether the plan is in the crashed state.
func (p *FaultPlan) Down() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

// check runs one operation through the plan, returning the latency to
// apply and the error to inject (nil = proceed). The caller sleeps outside
// the plan mutex.
func (p *FaultPlan) check(op Op) (time.Duration, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return 0, p.err
	}
	for _, r := range p.rules {
		if !r.matches(op) {
			continue
		}
		r.seen++
		after := r.AfterN
		if after <= 0 {
			after = 1
		}
		if r.seen < after {
			continue
		}
		if r.Times != 0 && r.fired >= r.Times {
			continue
		}
		r.fired++
		err := r.Err
		if err == nil && r.Latency == 0 {
			err = ErrInjected
		}
		if r.Crash {
			p.down = true
			p.err = err
			if p.err == nil {
				p.err = ErrInjected
			}
		}
		return r.Latency, err
	}
	return 0, nil
}

// FailNth fails the nth matching operation of the given kind, once.
func FailNth(kind OpKind, n int, err error) *Rule {
	return &Rule{Kind: kind, AfterN: n, Times: 1, Err: err}
}

// FailTable fails every write touching the table.
func FailTable(table string, err error) *Rule {
	return &Rule{Kind: OpWrite, Table: table, Err: err}
}

// FailOnce fails the first matching operation, then heals.
func FailOnce(err error) *Rule {
	return &Rule{Times: 1, Err: err}
}

// CrashOnCommit crashes the backend at its nth commit — the
// crash-mid-transaction fault: the transaction's earlier writes applied,
// its commit is lost, and every later operation fails until Heal.
func CrashOnCommit(n int, err error) *Rule {
	return &Rule{Kind: OpCommit, AfterN: n, Times: 1, Err: err, Crash: true}
}

// Slow delays every matching operation without failing it (slow-replica
// skew).
func Slow(kind OpKind, d time.Duration) *Rule {
	return &Rule{Kind: kind, Latency: d}
}
