package backend

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cjdbc/internal/sqlengine"
	"cjdbc/internal/sqlparser"
)

var errBoom = errors.New("boom")

// TestFaultPlanRules drives the rule matcher directly: positional firing,
// firing budgets, table matching, latency-only rules, crash rules, and
// healing.
func TestFaultPlanRules(t *testing.T) {
	// FailNth: exactly the nth matching op fails, once.
	p := NewFaultPlan(FailNth(OpWrite, 2, errBoom))
	for i, want := range []error{nil, errBoom, nil} {
		if _, err := p.check(Op{Kind: OpWrite}); !errors.Is(err, want) {
			t.Fatalf("write %d: err = %v, want %v", i+1, err, want)
		}
	}
	// Kind filter: reads never match a write rule.
	p = NewFaultPlan(FailNth(OpWrite, 1, errBoom))
	if _, err := p.check(Op{Kind: OpRead}); err != nil {
		t.Fatalf("read matched a write rule: %v", err)
	}
	// Table filter.
	p = NewFaultPlan(FailTable("u", errBoom))
	if _, err := p.check(Op{Kind: OpWrite, Table: "t"}); err != nil {
		t.Fatalf("table t matched rule for u: %v", err)
	}
	if _, err := p.check(Op{Kind: OpWrite, Table: "u"}); !errors.Is(err, errBoom) {
		t.Fatalf("table u: err = %v, want boom", err)
	}
	// FailOnce with nil error injects ErrInjected, then heals by budget.
	p = NewFaultPlan(FailOnce(nil))
	if _, err := p.check(Op{Kind: OpCommit}); !errors.Is(err, ErrInjected) {
		t.Fatalf("first op: err = %v, want ErrInjected", err)
	}
	if _, err := p.check(Op{Kind: OpRead}); err != nil {
		t.Fatalf("second op after one-shot: %v", err)
	}
	// Latency-only rule: delay without error.
	p = NewFaultPlan(Slow(OpWrite, 42*time.Millisecond))
	d, err := p.check(Op{Kind: OpWrite})
	if err != nil || d != 42*time.Millisecond {
		t.Fatalf("slow rule: d=%v err=%v", d, err)
	}
	// Crash: the firing flips the plan down for every kind until Heal.
	p = NewFaultPlan(CrashOnCommit(1, errBoom))
	if _, err := p.check(Op{Kind: OpCommit}); !errors.Is(err, errBoom) {
		t.Fatalf("crash firing: %v", err)
	}
	if !p.Down() {
		t.Fatal("plan should be down after crash rule fired")
	}
	for _, k := range []OpKind{OpRead, OpWrite, OpProbe, OpDirect} {
		if _, err := p.check(Op{Kind: k}); !errors.Is(err, errBoom) {
			t.Fatalf("kind %d while down: %v", k, err)
		}
	}
	p.Heal()
	if p.Down() {
		t.Fatal("plan still down after Heal")
	}
	if _, err := p.check(Op{Kind: OpCommit}); err != nil {
		t.Fatalf("commit after heal: %v", err)
	}
	// Heal expires unlimited rules too.
	p = NewFaultPlan(&Rule{Kind: OpWrite, Err: errBoom})
	if _, err := p.check(Op{Kind: OpWrite}); !errors.Is(err, errBoom) {
		t.Fatalf("unlimited rule: %v", err)
	}
	p.Heal()
	if _, err := p.check(Op{Kind: OpWrite}); err != nil {
		t.Fatalf("unlimited rule survived Heal: %v", err)
	}
}

// TestPingProbeFault: Ping succeeds on a healthy backend, consults the
// fault plan as OpProbe, and recovers when the rule's budget runs out.
func TestPingProbeFault(t *testing.T) {
	b, _ := newTestBackend(t)
	if err := b.Ping(); err != nil {
		t.Fatalf("healthy ping: %v", err)
	}
	b.SetFaultPlan(NewFaultPlan(FailNth(OpProbe, 1, errBoom)))
	if err := b.Ping(); !errors.Is(err, errBoom) {
		t.Fatalf("faulted ping: %v", err)
	}
	if err := b.Ping(); err != nil {
		t.Fatalf("ping after one-shot fault: %v", err)
	}
}

// TestDisableKillsInFlightTransaction is the crash-consistent teardown
// proof: a transaction holds an engine lock, an auto-commit write is
// blocked behind it, and Disable must (a) deliver a terminal outcome to the
// blocked write, (b) roll the transaction back so no engine lock or ticket
// is stranded, and (c) record the killed transaction in DeadTxs until the
// backend is enabled again.
func TestDisableKillsInFlightTransaction(t *testing.T) {
	b, e := newTestBackend(t)
	const tx = uint64(7)
	out := <-b.EnqueueWrite(tx, sqlparser.ClassWrite, nil, "INSERT INTO t (id, v) VALUES (1, 'a')")
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	// Blocked behind tx's exclusive lock on t.
	blocked := b.EnqueueWrite(0, sqlparser.ClassWrite, nil, "UPDATE t SET v = 'b' WHERE id = 1")
	time.Sleep(10 * time.Millisecond) // let it reach the engine lock wait

	if !b.Disable() {
		t.Fatal("Disable returned false on an enabled backend")
	}
	select {
	case o := <-blocked:
		if o.Err == nil {
			t.Fatal("blocked write succeeded across a disable")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked write never got a terminal outcome: lost ack")
	}
	b.DrainWrites()

	found := false
	for _, id := range b.DeadTxs() {
		if id == tx {
			found = true
		}
	}
	if !found {
		t.Fatalf("DeadTxs() = %v, want to contain %d", b.DeadTxs(), tx)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.HeldLocks() != 0 || e.PendingTickets() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stranded engine state after disable: locks=%d tickets=%d",
				e.HeldLocks(), e.PendingTickets())
		}
		time.Sleep(time.Millisecond)
	}
	b.Enable()
	if n := len(b.DeadTxs()); n != 0 {
		t.Fatalf("DeadTxs not cleared by Enable: %d left", n)
	}
}

// TestDisableIdempotent: only the first Disable reports the transition, so
// the controller's disabled counter counts each outage once.
func TestDisableIdempotent(t *testing.T) {
	b, _ := newTestBackend(t)
	if !b.Disable() {
		t.Fatal("first Disable: want true")
	}
	if b.Disable() {
		t.Fatal("second Disable: want false")
	}
	// Disable from recovering tears the attempt down but reports false:
	// the backend was never re-enabled, so there is no new outage to count.
	b.SetRecovering()
	if b.Disable() {
		t.Fatal("Disable from recovering: want false (no enabled-to-disabled transition)")
	}
	if b.State() != StateDisabled {
		t.Fatal("Disable from recovering should still land in disabled")
	}
}

// TestDrainWritesFlushesOutcomes: after DrainWrites returns, every
// previously enqueued write has a buffered terminal outcome.
func TestDrainWritesFlushesOutcomes(t *testing.T) {
	b, _ := newTestBackend(t)
	var outs []<-chan WriteOutcome
	for i := 0; i < 40; i++ {
		outs = append(outs, b.EnqueueWrite(0, sqlparser.ClassWrite, nil,
			fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'x')", 100+i)))
	}
	b.DrainWrites()
	for i, o := range outs {
		select {
		case out := <-o:
			if out.Err != nil {
				t.Fatalf("write %d failed: %v", i, out.Err)
			}
		default:
			t.Fatalf("write %d has no outcome after DrainWrites", i)
		}
	}
}

// TestSlowFaultDelaysWrite: a latency rule slows the write path without
// failing it.
func TestSlowFaultDelaysWrite(t *testing.T) {
	b, _ := newTestBackend(t)
	b.SetFaultPlan(NewFaultPlan(Slow(OpWrite, 30*time.Millisecond)))
	start := time.Now()
	out := <-b.EnqueueWrite(0, sqlparser.ClassWrite, nil, "INSERT INTO t (id, v) VALUES (1, 'a')")
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("write completed in %v, latency rule not applied", d)
	}
}

// TestSessionKillUnblocksLockWait: the engine seam the teardown relies on —
// killing a session interrupts its lock wait with a non-semantic error.
func TestSessionKillUnblocksLockWait(t *testing.T) {
	e := sqlengine.New("kill")
	s := e.NewSession()
	if _, err := s.ExecSQL("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecSQL("INSERT INTO t (id, v) VALUES (1, 'a')"); err != nil {
		t.Fatal(err)
	}
	holder := e.NewSession()
	defer holder.Close()
	if _, err := holder.ExecSQL("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := holder.ExecSQL("UPDATE t SET v = 'h' WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	waiter := e.NewSession()
	defer waiter.Close()
	done := make(chan error, 1)
	go func() {
		_, err := waiter.ExecSQL("UPDATE t SET v = 'w' WHERE id = 1")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	waiter.Kill()
	select {
	case err := <-done:
		if !errors.Is(err, sqlengine.ErrKilled) {
			t.Fatalf("killed waiter returned %v, want ErrKilled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Kill did not unblock the lock wait")
	}
	if !waiter.Killed() {
		t.Fatal("Killed() should report true")
	}
	s.Close()
}
