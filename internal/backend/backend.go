package backend

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cjdbc/internal/conflictsched"
	"cjdbc/internal/senterr"
	"cjdbc/internal/sqlparser"
)

// Errors reported by backends.
var (
	// ErrDisabled is returned for operations on a disabled backend.
	ErrDisabled = errors.New("backend: disabled")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("backend: closed")
	// ErrStatement is the errors.Is sentinel for backend-level statement
	// errors — client misuse that fails identically on every replica (for
	// example writing to an already-ended transaction). Like the engine's
	// ErrSemantic, it must never trigger failover or disable a backend.
	ErrStatement = errors.New("backend: statement error")
)

// State is the backend lifecycle state (§3 of the paper: backends are
// disabled on failure or for checkpointing, then re-integrated).
type State int32

// Backend states.
const (
	StateDisabled State = iota
	StateEnabled
	StateRecovering
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateDisabled:
		return "disabled"
	case StateEnabled:
		return "enabled"
	case StateRecovering:
		return "recovering"
	}
	return "unknown"
}

// Config configures a Backend.
type Config struct {
	Name     string
	Driver   Driver
	Weight   int        // weighted-round-robin weight; 0 means 1
	MaxConns int        // connection pool size; 0 means 16
	Cost     *CostModel // nil disables service-time simulation
	// CostParallelism is the number of statements the simulated machine
	// serves concurrently (its CPU/disk parallelism); 0 means 4. Only
	// meaningful with a cost model.
	CostParallelism int
	// WriteWorkers sizes the auto-commit write worker pool: 0 means
	// GOMAXPROCS (minimum 2, so a write parked on a remote driver's locks
	// cannot starve disjoint writes on a one-CPU host); negative spawns one
	// goroutine per ready write instead of resident workers — the execution
	// model the pool replaced, kept as the measurement baseline.
	WriteWorkers int
	// Tables declares the subset of the virtual database's tables this
	// backend hosts (RAIDb-2 partial replication, §2.4.3). Empty means the
	// backend hosts everything (RAIDb-1 full replication). The controller
	// pins each declared table's placement to the declaring backends and
	// routes reads, writes, and recovery streams accordingly.
	Tables []string
}

// Backend is one database of a virtual database: a native driver plus the
// connection manager, the ordered write pipeline, and monitoring counters.
//
// Writes execute on two paths, mirroring C-JDBC's per-transaction backend
// worker threads: each transaction has its own connection and worker (so a
// transaction blocked on database locks never prevents another
// transaction's commit from being delivered), and auto-commit writes run on
// a per-backend worker pool fed by conflict lanes — each task waits only
// for the previously enqueued tasks whose conflict footprint (table set)
// intersects its own, so writes to disjoint tables execute concurrently
// while writes sharing a table apply strictly in enqueue order. DDL and
// statements with unknown footprints are barriers: they wait for everything
// ahead and everything behind waits for them.
//
// Enqueue-time reservation is the single ordering authority: while the
// scheduler holds the conflict class's locks across the enqueues to all
// backends, every write — transactional or auto-commit — queues its engine
// lock ticket in that cluster submission order. Transactional writes
// reserve on their dedicated connection; auto-commit writes pre-bind a
// dedicated connection at enqueue (drawn from a reset-and-reuse free-list,
// not opened per write) and hold its ticket from enqueue to apply, parked
// out of the worker pool until the engine grants it. The
// engine's per-table FIFO of tickets then grants conflicting writes —
// including auto-commit/transactional pairs — in the same order on every
// replica; non-conflicting writes commute, so their order is free. Drivers
// whose connections cannot reserve (remote backends) fall back to
// execution-time locking and rely on their database's own lock queueing,
// as C-JDBC did.
type Backend struct {
	name     string
	weight   int
	driver   Driver
	cost     *CostModel
	maxConns int
	declared []string // lower-cased declared hosted tables; nil = all

	state atomic.Int32

	// Connection pool: sem bounds total connections, idle holds returned ones.
	sem  chan struct{}
	idle chan Conn

	// costSem models the machine's service parallelism: every costed
	// statement (read or write, pooled or transactional) occupies one slot
	// for its simulated service time, so writes broadcast to a replica
	// consume capacity that its reads can no longer use — the effect
	// behind Figure 10's sub-linear full-replication scaling.
	costSem chan struct{}

	mu  sync.Mutex
	txs map[uint64]*txConn
	// deadTxs records (under mu) the transactions this backend abandoned
	// while disabled: transactions killed by the disable teardown plus
	// transactions whose writes were rejected with ErrDisabled. Their
	// cluster-side fate is still open, so re-integration must not re-enable
	// the backend until each of them has demarcated (its entries are then
	// fully in the recovery log and the catch-up replay covers it) — see
	// the controller's catchUpAndEnable. Enable clears the set.
	deadTxs map[uint64]struct{}

	// Auto-commit worker pool: pool assigns each task its lane dependencies
	// (the newest earlier task per table of its footprint; DDL / unknown
	// footprints are barriers — the shared conflict-class dependency rule in
	// internal/conflictsched) plus a readiness gate tied to the task's
	// engine lock ticket, and runs ready tasks on a fixed set of workers
	// with lane work-stealing. autoSem bounds queued-plus-running
	// auto-commit tasks (the backpressure the bounded FIFO queue used to
	// provide). noTickets caches that the driver's connections cannot
	// reserve, so the pre-bind probe is not repeated per write.
	pool      *conflictsched.Pool
	autoSem   chan struct{}
	noTickets atomic.Bool

	// prebound is the free-list of dedicated auto-commit connections. Each
	// write's enqueue-time lock ticket needs a connection of its own (the
	// ticket lives from enqueue to apply), but opening a fresh session per
	// write puts session setup and teardown on the broadcast path; instead a
	// finished task resets its connection (ConnResetter) and parks it here
	// for the next enqueue.
	prebound chan Conn
	// preGen is the free-list generation: the disable teardown bumps it and
	// drains the list, and a task releasing its pre-bound connection re-parks
	// it only when the generation still matches the one it was drawn under —
	// so a re-enabled backend never hands out a session bound to pre-restore
	// engine state. preMu serializes re-park against the teardown's drain,
	// closing the bump/park race.
	preGen atomic.Uint64
	preMu  sync.Mutex

	// chargeMu serializes the cost-model charge of auto-commit writes: the
	// simulated machine applies broadcast updates on one write thread (the
	// calibration behind Figure 10's shapes, and how the era's replication
	// appliers behaved), even though real engine execution of disjoint
	// writes proceeds concurrently. Without a cost model it is untouched.
	chargeMu sync.Mutex

	closed chan struct{}

	// onFailure is invoked (on its own goroutine) when a write fails, so
	// the request manager can react (§2.4.1: no 2PC; a backend failing a
	// write is disabled).
	onFailure atomic.Value // func(*Backend, error)

	// fault is the installed fault plan (nil = healthy); see faultplan.go.
	fault atomic.Pointer[FaultPlan]

	pending   atomic.Int64
	busyNanos atomic.Int64
	ops       atomic.Int64
	failures  atomic.Int64
}

// txConn is the per-transaction connection with its own worker lane and
// write-completion tracking (read-your-writes under early response).
type txConn struct {
	conn   Conn
	mu     sync.Mutex
	wrote  sync.WaitGroup
	queue  chan *writeTask
	ending bool // an end-of-transaction task has been enqueued
	dead   bool // the disable teardown (not the client) ended it
}

type writeTask struct {
	txID  uint64 // 0 = auto-commit
	class sqlparser.StatementClass
	st    sqlparser.Statement
	sql   string
	done  chan<- WriteOutcome
	// conn is the pre-bound connection holding the task's engine lock
	// ticket from enqueue to apply (auto-commit path); nil means the task
	// checks a pooled connection out at execution time instead. gen is the
	// free-list generation conn was drawn under.
	conn Conn
	gen  uint64
}

// WriteOutcome is the terminal result of an asynchronous write.
type WriteOutcome struct {
	Backend *Backend
	Res     *Result
	Err     error
}

// Outcomes aggregates the outcomes of one cluster-wide write operation on a
// single shared channel allocated at enqueue time. Each of the N involved
// backends delivers exactly one WriteOutcome; the channel's capacity is N,
// so senders never block and a waiter applying an early-response policy may
// simply abandon the channel once satisfied — no fan-in goroutines, no
// drain goroutine.
type Outcomes struct {
	C chan WriteOutcome
	N int
}

// NewOutcomes allocates the shared channel for n backends.
func NewOutcomes(n int) Outcomes {
	return Outcomes{C: make(chan WriteOutcome, n), N: n}
}

// New creates a backend in the disabled state.
func New(cfg Config) *Backend {
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 16
	}
	if cfg.Weight <= 0 {
		cfg.Weight = 1
	}
	if cfg.CostParallelism <= 0 {
		cfg.CostParallelism = 4
	}
	workers := cfg.WriteWorkers
	if workers == 0 {
		workers = max(2, runtime.GOMAXPROCS(0))
	}
	var declared []string
	if len(cfg.Tables) > 0 {
		seen := make(map[string]bool, len(cfg.Tables))
		for _, t := range cfg.Tables {
			lt := strings.ToLower(strings.TrimSpace(t))
			if lt != "" && !seen[lt] {
				seen[lt] = true
				declared = append(declared, lt)
			}
		}
		sort.Strings(declared)
	}
	b := &Backend{
		name:     cfg.Name,
		weight:   cfg.Weight,
		declared: declared,
		driver:   cfg.Driver,
		cost:     cfg.Cost,
		maxConns: cfg.MaxConns,
		sem:      make(chan struct{}, cfg.MaxConns),
		idle:     make(chan Conn, cfg.MaxConns),
		costSem:  make(chan struct{}, cfg.CostParallelism),
		txs:      make(map[uint64]*txConn),
		deadTxs:  make(map[uint64]struct{}),
		pool:     conflictsched.NewPool(workers),
		autoSem:  make(chan struct{}, 4096),
		prebound: make(chan Conn, cfg.MaxConns),
		closed:   make(chan struct{}),
	}
	return b
}

// Name returns the backend name.
func (b *Backend) Name() string { return b.name }

// DeclaredTables returns the backend's declared hosted-table subset
// (lower-cased, sorted, deduplicated), or nil when it hosts everything.
func (b *Backend) DeclaredTables() []string {
	out := make([]string, len(b.declared))
	copy(out, b.declared)
	if len(out) == 0 {
		return nil
	}
	return out
}

// Weight returns the load-balancing weight.
func (b *Backend) Weight() int { return b.weight }

// Driver exposes the native driver (for metadata and checkpointing).
func (b *Backend) Driver() Driver { return b.driver }

// State returns the current lifecycle state.
func (b *Backend) State() State { return State(b.state.Load()) }

// Enable moves the backend to the enabled state and forgets its dead
// transactions: the caller (the controller's catch-up) has verified they
// are all resolved in the recovery log.
func (b *Backend) Enable() {
	b.mu.Lock()
	b.deadTxs = make(map[uint64]struct{})
	b.mu.Unlock()
	b.state.Store(int32(StateEnabled))
}

// Disable moves the backend to the disabled state and tears its in-flight
// work down crash-consistently (§2.4.1: no 2PC — a backend failing a write
// is disabled; §3: it re-integrates later by replaying the recovery log):
//
//   - auto-commit tasks parked on engine lock tickets are flushed through
//     the pool's gates, run, observe the disabled state, and release their
//     pre-bound connections — so no per-table ticket FIFO head strands;
//   - the pre-bound free-list is invalidated and drained (a re-enabled
//     backend must never hand out a pre-restore session);
//   - every in-flight transaction is killed and rolled back through its own
//     worker, releasing its engine locks and unconsumed tickets, and is
//     recorded dead so re-integration waits for its cluster-side fate;
//   - every already-enqueued write still delivers exactly one terminal
//     Outcome (ErrDisabled once the teardown has passed it) — zero lost
//     acks.
//
// The enabled→disabled transition is a compare-and-swap; Disable reports
// whether this call performed it, so concurrent failure paths disable (and
// count) a backend exactly once. A second caller returns false immediately
// without waiting for the first caller's teardown.
func (b *Backend) Disable() bool {
	wasEnabled := b.state.CompareAndSwap(int32(StateEnabled), int32(StateDisabled))
	if !wasEnabled && !b.state.CompareAndSwap(int32(StateRecovering), int32(StateDisabled)) {
		return false // already disabled; a teardown has run
	}
	b.teardown()
	return wasEnabled
}

// teardown is the disable-time cleanup. It must run after the state is
// already StateDisabled and must not wait on client work: it unblocks
// everything (kills plus gate flushes) and lets the workers drain.
func (b *Backend) teardown() {
	// Invalidate and drain the pre-bound free-list. The generation bump
	// precedes the drain: a task releasing its connection concurrently
	// either parked before the drain (and is drained here) or checks the
	// generation under preMu after the bump and closes instead of parking.
	b.preGen.Add(1)
	b.preMu.Lock()
	for {
		select {
		case c := <-b.prebound:
			_ = c.Close()
		default:
			b.preMu.Unlock()
			goto drained
		}
	}
drained:

	// Flush auto-commit tasks parked on tickets a dead transaction would
	// never grant. One-shot: future gates keep working, so the backend can
	// re-enable later (Close uses ForceGates instead).
	b.pool.OpenGates()

	// Kill and roll back in-flight transactions. A transaction already
	// ending (its commit/rollback is queued) is left alone: its own
	// demarcation tears it down. Kills fire first so every worker parked in
	// an engine lock wait aborts; the synthetic rollbacks then run on each
	// transaction's own worker — the one goroutine allowed to touch its
	// session — undoing its writes and releasing its locks and tickets.
	b.mu.Lock()
	type dying struct {
		id uint64
		tc *txConn
	}
	var list []dying
	for id, tc := range b.txs {
		if tc.ending || tc.conn == nil {
			// conn == nil: txConnFor is still opening it; the opener re-checks
			// the state afterwards and reaps it (reapTxIfDisabled).
			continue
		}
		tc.ending = true
		tc.dead = true
		b.deadTxs[id] = struct{}{}
		b.pending.Add(1)
		list = append(list, dying{id, tc})
	}
	b.mu.Unlock()
	for _, d := range list {
		if k, ok := d.tc.conn.(ConnKiller); ok {
			k.Kill()
		}
	}
	for _, d := range list {
		done := make(chan WriteOutcome, 1) // internal; outcome discarded
		d.tc.queue <- &writeTask{txID: d.id, class: sqlparser.ClassRollback, sql: "ROLLBACK", done: done}
	}
}

// reapTxIfDisabled closes the race between a concurrent Disable and a
// client path that just created or used this transaction's connection: the
// teardown can only kill the transactions it finds in b.txs, so after
// touching a txConn the client path re-checks the state and, if the backend
// went disabled meanwhile, performs the same kill-and-rollback itself. The
// ending flag makes teardown and reap mutually idempotent.
func (b *Backend) reapTxIfDisabled(txID uint64) {
	if b.State() == StateEnabled {
		return
	}
	b.mu.Lock()
	tc, ok := b.txs[txID]
	if !ok || tc.ending || tc.conn == nil {
		b.mu.Unlock()
		return
	}
	tc.ending = true
	tc.dead = true
	b.deadTxs[txID] = struct{}{}
	b.pending.Add(1)
	b.mu.Unlock()
	if k, ok := tc.conn.(ConnKiller); ok {
		k.Kill()
	}
	done := make(chan WriteOutcome, 1)
	tc.queue <- &writeTask{txID: txID, class: sqlparser.ClassRollback, sql: "ROLLBACK", done: done}
}

// DeadTxs returns the transactions abandoned while disabled (killed by the
// teardown or rejected with ErrDisabled); see catchUpAndEnable.
func (b *Backend) DeadTxs() []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]uint64, 0, len(b.deadTxs))
	for id := range b.deadTxs {
		out = append(out, id)
	}
	return out
}

// DrainWrites blocks until every write enqueued so far has delivered its
// terminal outcome: the auto-commit worker pool is drained and every
// transaction lane with a queued end-of-transaction task has ended.
// Read-only transactions (open lanes that never wrote and are not ending)
// are not waited on — they hold no writes to flush. The caller must have
// stopped new write enqueues (for example by holding the cluster write
// quiesce, or after Disable); reads may continue. Checkpointing uses it so a
// dump contains every write at or below the checkpoint marker, and
// re-integration uses it so the disable teardown's rollbacks have finished
// before the restore starts dropping tables under them.
func (b *Backend) DrainWrites() {
	b.pool.Drain()
	for {
		busy := false
		b.mu.Lock()
		for _, tc := range b.txs {
			if tc.ending {
				busy = true
				break
			}
		}
		b.mu.Unlock()
		if !busy {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// SetRecovering marks the backend as replaying the recovery log.
func (b *Backend) SetRecovering() { b.state.Store(int32(StateRecovering)) }

// Enabled reports whether the backend accepts client operations.
func (b *Backend) Enabled() bool { return b.State() == StateEnabled }

// Pending returns the number of queued plus executing requests, the gauge
// the least-pending-requests-first balancer reads.
func (b *Backend) Pending() int { return int(b.pending.Load()) }

// BusyNanos returns the cumulative simulated busy time, the CPU-load proxy.
func (b *Backend) BusyNanos() int64 { return b.busyNanos.Load() }

// Ops returns the number of operations executed.
func (b *Backend) Ops() int64 { return b.ops.Load() }

// Failures returns the number of failed operations.
func (b *Backend) Failures() int64 { return b.failures.Load() }

// OnWriteFailure registers the request manager's failure callback.
func (b *Backend) OnWriteFailure(f func(*Backend, error)) { b.onFailure.Store(f) }

// InjectFailure makes every subsequent operation fail with err, for fault
// injection tests. Pass nil to heal. It is the all-or-nothing special case
// of SetFaultPlan.
func (b *Backend) InjectFailure(err error) {
	if err == nil {
		b.fault.Store(nil)
	} else {
		b.fault.Store(NewFaultPlan(&Rule{Err: err}))
	}
}

// SetFaultPlan installs a scripted fault plan (nil clears). Every backend
// operation — reads, writes, commits, probes, and DirectExec — consults the
// plan at its driver seam before executing.
func (b *Backend) SetFaultPlan(p *FaultPlan) { b.fault.Store(p) }

// FaultPlan returns the installed plan, nil when healthy.
func (b *Backend) FaultPlan() *FaultPlan { return b.fault.Load() }

// faultCheck runs one operation through the installed fault plan. st (may
// be nil) supplies the op's table lazily, only when a plan is active, so
// the healthy hot path pays a single atomic load.
func (b *Backend) faultCheck(kind OpKind, st sqlparser.Statement, txID uint64) error {
	p := b.fault.Load()
	if p == nil {
		return nil
	}
	op := Op{Kind: kind, TxID: txID}
	if st != nil {
		if tbl, ok := sqlparser.WriteTarget(st); ok {
			op.Table = tbl
		} else if tables, _ := sqlparser.ConflictClass(st); len(tables) > 0 {
			op.Table = tables[0]
		}
	}
	delay, err := p.check(op)
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// Ping is the health monitor's cheap probe: it consults the fault plan (so
// injected faults and crashes fail probes too) and validates that a
// connection can be produced. A saturated-but-serving pool passes — probe
// goroutines must never queue behind client load.
func (b *Backend) Ping() error {
	select {
	case <-b.closed:
		return ErrClosed
	default:
	}
	if err := b.faultCheck(OpProbe, nil, 0); err != nil {
		return err
	}
	select {
	case b.sem <- struct{}{}:
	default:
		return nil
	}
	var c Conn
	select {
	case c = <-b.idle:
	default:
		var err error
		c, err = b.driver.Open()
		if err != nil {
			<-b.sem
			return fmt.Errorf("backend %s: probe open: %w", b.name, err)
		}
	}
	b.checkin(c)
	return nil
}

func (b *Backend) notifyFailure(err error) {
	if errors.Is(err, ErrDisabled) || errors.Is(err, ErrClosed) {
		return
	}
	if f, ok := b.onFailure.Load().(func(*Backend, error)); ok && f != nil {
		go f(b, err)
	}
}

// Close shuts the backend down, closing pooled connections. Forcing the
// pool's readiness gates lets tasks whose lock tickets would never be
// granted (queued behind a transaction that will not end) run, observe the
// closed state, and release their pre-bound connections. Draining the lane
// semaphore to capacity then waits for every in-flight auto-commit task (a
// task releases its slot as its final action) and, because enqueuers
// re-check closed after acquiring a slot, guarantees no task can start
// afterwards; the worker pool is stopped once drained.
func (b *Backend) Close() {
	select {
	case <-b.closed:
		return
	default:
	}
	b.Disable()
	close(b.closed)
	b.pool.ForceGates()
	for i := 0; i < cap(b.autoSem); i++ {
		b.autoSem <- struct{}{}
	}
	b.pool.Stop()
	for {
		select {
		case c := <-b.idle:
			_ = c.Close()
		case c := <-b.prebound:
			_ = c.Close()
		default:
			return
		}
	}
}

// checkout obtains a pooled connection, opening a new one when under the
// connection cap. It blocks while the pool is exhausted, which is the
// queueing point that models the backend machine's capacity.
func (b *Backend) checkout() (Conn, error) {
	select {
	case <-b.closed:
		return nil, ErrClosed
	case b.sem <- struct{}{}:
	}
	select {
	case c := <-b.idle:
		return c, nil
	default:
	}
	c, err := b.driver.Open()
	if err != nil {
		<-b.sem
		return nil, fmt.Errorf("backend %s: open: %w", b.name, err)
	}
	return c, nil
}

func (b *Backend) checkin(c Conn) {
	select {
	case b.idle <- c:
	default:
		_ = c.Close()
	}
	<-b.sem
}

// charge applies the cost model and records busy time. The service
// semaphore bounds how many statements the simulated machine serves at
// once; without a cost model it is skipped entirely.
func (b *Backend) charge(st sqlparser.Statement) {
	if b.cost == nil || b.cost.TimeScale == 0 {
		return
	}
	b.costSem <- struct{}{}
	d := b.cost.charge(st)
	<-b.costSem
	if d > 0 {
		b.busyNanos.Add(int64(d))
	}
}

// Read executes a read on this backend. txID 0 means auto-commit. Within a
// transaction the read waits for the transaction's earlier asynchronous
// writes on this backend (§2.4.4: read-your-writes under early response).
func (b *Backend) Read(txID uint64, st sqlparser.Statement, sql string) (*Result, error) {
	if !b.Enabled() {
		return nil, ErrDisabled
	}
	if err := b.faultCheck(OpRead, st, txID); err != nil {
		b.failures.Add(1)
		return nil, err
	}
	b.pending.Add(1)
	defer b.pending.Add(-1)
	b.ops.Add(1)

	if txID != 0 {
		tc, err := b.txConnFor(txID)
		if err != nil {
			return nil, err
		}
		b.reapTxIfDisabled(txID)
		tc.wrote.Wait()
		tc.mu.Lock()
		defer tc.mu.Unlock()
		b.charge(st)
		res, err := tc.conn.Exec(st, sql)
		if err != nil {
			b.failures.Add(1)
		}
		return res, err
	}

	c, err := b.checkout()
	if err != nil {
		return nil, err
	}
	defer b.checkin(c)
	b.charge(st)
	res, err := c.Exec(st, sql)
	if err != nil {
		b.failures.Add(1)
	}
	return res, err
}

// txConnFor returns (creating lazily) the transaction's connection on this
// backend. Lazy transaction begin (§2.4.4): the backend-side transaction
// starts only when the backend first needs to execute for it.
func (b *Backend) txConnFor(txID uint64) (*txConn, error) {
	b.mu.Lock()
	tc, ok := b.txs[txID]
	if ok {
		b.mu.Unlock()
		return tc, nil
	}
	tc = &txConn{queue: make(chan *writeTask, 1024)}
	b.txs[txID] = tc
	b.mu.Unlock()

	// Transaction connections are dedicated, not pooled: drawing them from
	// the bounded pool would let a burst of transactions exhaust it and
	// stall the scheduler's dispatch (which runs under the cluster write
	// lock). The cost semaphore, not the pool, models machine capacity.
	c, err := b.driver.Open()
	if err == nil {
		err = c.Begin()
		if err != nil {
			_ = c.Close()
		}
	}
	if err != nil {
		b.mu.Lock()
		delete(b.txs, txID)
		b.mu.Unlock()
		return nil, err
	}
	// Publish the connection under b.mu: the disable teardown reads it (and
	// skips still-opening entries) under the same mutex.
	b.mu.Lock()
	tc.conn = c
	b.mu.Unlock()
	go b.txWorker(txID, tc)
	return tc, nil
}

// txWorker drains one transaction's write lane in FIFO order and exits
// after the end-of-transaction task.
func (b *Backend) txWorker(txID uint64, tc *txConn) {
	for t := range tc.queue {
		res, err := b.execTxTask(txID, tc, t)
		if err != nil {
			b.failures.Add(1)
			b.notifyFailure(err)
		}
		b.pending.Add(-1)
		t.done <- WriteOutcome{Backend: b, Res: res, Err: err}
		if t.class != sqlparser.ClassWrite {
			break
		}
	}
	// The end-of-transaction task is the last task its lane ever carries:
	// every enqueue path checks tc.ending under b.mu before bumping the
	// pending gauge and sending (the teardown's synthetic rollback sets
	// ending under the same mutex). This sweep enforces that invariant
	// structurally: a task stranded behind the demarcation would otherwise
	// hold the pending gauge up forever — wedging least-pending balancing on
	// a crashed backend — and hang its waiter; deliver a terminal outcome
	// and rebalance the gauge instead.
	for {
		select {
		case t := <-tc.queue:
			if t.class == sqlparser.ClassWrite {
				tc.wrote.Done()
			}
			b.pending.Add(-1)
			t.done <- WriteOutcome{Backend: b, Err: ErrDisabled}
		default:
			return
		}
	}
}

func (b *Backend) execTxTask(txID uint64, tc *txConn, t *writeTask) (*Result, error) {
	if t.class == sqlparser.ClassCommit || t.class == sqlparser.ClassRollback {
		kind := OpCommit
		if t.class == sqlparser.ClassRollback {
			kind = OpRollback
		}
		tc.mu.Lock()
		b.charge(t.st)
		// A fault on the demarcation (the crash-mid-transaction case) skips
		// it; the close below still rolls the engine-side transaction back
		// and releases its locks and tickets.
		err := b.faultCheck(kind, nil, txID)
		if err == nil {
			if t.class == sqlparser.ClassCommit {
				err = tc.conn.Commit()
			} else {
				err = tc.conn.Rollback()
			}
		}
		tc.mu.Unlock()
		b.mu.Lock()
		delete(b.txs, txID)
		b.mu.Unlock()
		_ = tc.conn.Close()
		b.ops.Add(1)
		return &Result{}, err
	}

	defer tc.wrote.Done()
	if b.State() == StateDisabled {
		return nil, ErrDisabled
	}
	if err := b.faultCheck(OpWrite, t.st, txID); err != nil {
		return nil, err
	}
	b.ops.Add(1)
	tc.mu.Lock()
	defer tc.mu.Unlock()
	b.charge(t.st)
	return tc.conn.Exec(t.st, t.sql)
}

// HasTx reports whether the transaction has started on this backend.
func (b *Backend) HasTx(txID uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.txs[txID]
	return ok
}

// EnqueueWrite appends a write (or commit/rollback) to the backend's
// ordered write lanes and returns a channel delivering the outcome. The
// scheduler enqueues each cluster-wide write to all backends in the same
// order, which is what keeps replicas identical (§2.4.1).
func (b *Backend) EnqueueWrite(txID uint64, class sqlparser.StatementClass, st sqlparser.Statement, sql string) <-chan WriteOutcome {
	done := make(chan WriteOutcome, 1)
	b.EnqueueWriteTo(txID, class, st, sql, done)
	return done
}

// EnqueueWriteTo is EnqueueWrite delivering into a caller-supplied channel,
// so one cluster-wide operation spanning several backends shares a single
// buffered channel instead of one channel (and one fan-in goroutine) per
// backend. done must have spare capacity for one outcome per enqueued
// backend: exactly one WriteOutcome is sent, and the send must never block.
func (b *Backend) EnqueueWriteTo(txID uint64, class sqlparser.StatementClass, st sqlparser.Statement, sql string, done chan<- WriteOutcome) {
	tables, global := sqlparser.ConflictClass(st)
	b.EnqueueWriteClassTo(txID, class, st, sql, tables, global, done)
}

// EnqueueWriteClassTo is EnqueueWriteTo with the statement's conflict class
// (sorted, deduplicated tables, or global) precomputed by the caller — the
// request manager broadcasts one write to every backend and computes the
// class once, in its plan cache.
func (b *Backend) EnqueueWriteClassTo(txID uint64, class sqlparser.StatementClass, st sqlparser.Statement, sql string, tables []string, global bool, done chan<- WriteOutcome) {
	t := &writeTask{txID: txID, class: class, st: st, sql: sql, done: done}

	reply := func(res *Result, err error) {
		done <- WriteOutcome{Backend: b, Res: res, Err: err}
	}
	if !b.Enabled() {
		if txID != 0 {
			// The transaction's cluster-side fate is still open while this
			// backend misses its writes; record it so re-integration waits
			// for its demarcation to reach the recovery log.
			b.mu.Lock()
			b.deadTxs[txID] = struct{}{}
			b.mu.Unlock()
		}
		reply(nil, ErrDisabled)
		return
	}

	if txID != 0 {
		switch class {
		case sqlparser.ClassWrite:
			tc, err := b.txConnFor(txID)
			if err != nil {
				reply(nil, err)
				return
			}
			// The ending check, reservation, and queue send form one critical
			// section under b.mu: the disable teardown marks ending under the
			// same mutex before enqueueing its synthetic rollback, so an
			// end-of-transaction task is always the LAST task its worker sees
			// — a write can never land behind the rollback of a transaction
			// the teardown already ended (which would strand its ack).
			b.mu.Lock()
			if tc.dead {
				b.mu.Unlock()
				reply(nil, ErrDisabled)
				return
			}
			if tc.ending {
				b.mu.Unlock()
				reply(nil, senterr.Wrap(ErrStatement, fmt.Errorf("backend %s: transaction %d already ended", b.name, txID)))
				return
			}
			tc.wrote.Add(1)
			b.pending.Add(1)
			// Reserve the write lock now, in cluster submission order, so
			// conflicting transactions take their locks in the same order
			// on every replica (§2.4.1 total write order).
			if r, ok := tc.conn.(LockReserver); ok && t.st != nil {
				if tbl, isWrite := sqlparser.WriteTarget(t.st); isWrite {
					r.ReserveWriteLock(tbl)
				}
			}
			tc.queue <- t
			b.mu.Unlock()
			// A disable may have raced the txConn's creation; reap closes it.
			b.reapTxIfDisabled(txID)
			return
		case sqlparser.ClassCommit, sqlparser.ClassRollback:
			b.mu.Lock()
			tc, ok := b.txs[txID]
			if !ok {
				b.mu.Unlock()
				// Lazy begin: the transaction never touched this backend.
				reply(&Result{}, nil)
				return
			}
			if tc.dead {
				b.mu.Unlock()
				reply(nil, ErrDisabled)
				return
			}
			if tc.ending {
				b.mu.Unlock()
				// The end was already delivered.
				reply(&Result{}, nil)
				return
			}
			tc.ending = true
			b.pending.Add(1)
			tc.queue <- t
			b.mu.Unlock()
			return
		}
	}

	// Auto-commit worker pool. The semaphore preserves the bounded-queue
	// backpressure; the pool records which previously enqueued tasks this
	// one conflicts with (lane dependencies) and parks the task until its
	// engine lock ticket — issued below, still inside the scheduler's
	// critical section — is granted.
	if t.st == nil && sql != "" {
		// Direct callers (tests, ad-hoc tooling) may enqueue raw SQL; parse
		// it here so the task gets a real footprint and a lock ticket
		// instead of degrading to an unticketed barrier. Parse failures
		// stay barriers and surface at execution.
		if st, err := sqlparser.Parse(sql); err == nil {
			t.st = st
			tables, global = sqlparser.ConflictClass(st)
		}
	}
	select {
	case b.autoSem <- struct{}{}:
	case <-b.closed:
		reply(nil, ErrClosed)
		return
	}
	// Re-check after acquiring: Close drains the semaphore to capacity, so
	// once this check passes Close cannot complete its drain before this
	// task releases — the task is fully accounted for.
	select {
	case <-b.closed:
		<-b.autoSem
		reply(nil, ErrClosed)
		return
	default:
	}
	b.pending.Add(1)
	run := func() {
		b.runAuto(t)
		// Slot release is the task's final action; Close's drain keys on it.
		<-b.autoSem
	}

	// Pre-bind a dedicated connection and queue the write's engine lock
	// ticket now, in cluster submission order; the task becomes runnable
	// only once both its lane dependencies and its ticket grant arrive, so
	// a write parked behind a transaction's lock occupies no pool worker.
	// The ticket is reserved BEFORE the task is submitted: until the gate
	// opens, only this goroutine touches the pre-bound session, so even a
	// concurrent Close (which force-opens gates) cannot run the task — and
	// close its session — while the reservation is still being placed.
	if reserver, tbl := b.prebind(t); reserver != nil {
		g := &ticketGate{}
		reserver.ReserveWriteLockNotify(tbl, g.notify)
		g.bind(b.pool.SubmitGated(tables, global, run))
		return
	}
	b.pool.Submit(tables, global, run)
}

// ticketEscape bounds how long a write may stay parked on an ungranted
// ticket. The paper's backends resolve deadlock and starvation by lock
// timeout; a parked task sees no engine deadline (that clock starts at
// execution), so after this delay the task is released to a worker anyway
// and blocks in the engine's own lock wait, which fails with its
// ErrLockTimeout if the holder never lets go — restoring the pre-pool
// liveness bound (a stuck transaction can stall same-table writes only for
// ticketEscape + the engine lock timeout, never wedge the backend).
const ticketEscape = time.Second

// ticketGate splices an engine ticket's grant notification onto a pool
// task's readiness gate that does not exist yet when the ticket is
// reserved (the reservation must precede the task submission; see
// EnqueueWriteClassTo). notify may fire at any point — synchronously
// inside ReserveWriteLockNotify, or from a lock release on another
// goroutine — before or after bind supplies the gate's release function.
type ticketGate struct {
	mu      sync.Mutex
	release func()
	fired   bool
	timer   *time.Timer
}

// notify is the ticket's grant/drop callback.
func (g *ticketGate) notify() {
	g.mu.Lock()
	g.fired = true
	r := g.release
	if g.timer != nil {
		g.timer.Stop()
	}
	g.mu.Unlock()
	if r != nil {
		r()
	}
}

// bind wires the pool's release function and arms the escape timer when
// the grant has not already arrived. release is idempotent, so a racing
// grant, the timer, and a Close-time ForceGates may all fire it.
func (g *ticketGate) bind(release func()) {
	g.mu.Lock()
	g.release = release
	fired := g.fired
	if !fired {
		g.timer = time.AfterFunc(ticketEscape, release)
	}
	g.mu.Unlock()
	if fired {
		release()
	}
}

// prebind opens the dedicated connection an auto-commit write holds from
// enqueue to apply, returning its ticket interface and target table. It
// returns nil when the statement has no single write target (parse failure:
// a lane barrier) or the driver's connections cannot reserve — those tasks
// fall back to execution-time locking on a pooled connection.
func (b *Backend) prebind(t *writeTask) (TicketReserver, string) {
	if t.st == nil || b.noTickets.Load() {
		return nil, ""
	}
	tbl, ok := sqlparser.WriteTarget(t.st)
	if !ok {
		return nil, ""
	}
	gen := b.preGen.Load()
	var c Conn
	select {
	case c = <-b.prebound:
	default:
		var err error
		c, err = b.driver.Open()
		if err != nil {
			// Surface the failure at execution time, as the pooled path would.
			return nil, ""
		}
	}
	r, ok := c.(TicketReserver)
	if !ok {
		b.noTickets.Store(true)
		_ = c.Close()
		return nil, ""
	}
	t.conn = c
	t.gen = gen
	return r, tbl
}

// releasePrebound returns a task's dedicated connection to the free-list
// after resetting it — which releases the task's lock ticket (granted or
// not) exactly as closing would — or closes it when the free-list is full,
// the backend is shutting down, the free-list generation moved (a disable
// invalidated pre-disable sessions), or the connection cannot reset. The
// generation check and the park happen under preMu, serialized against the
// teardown's bump-and-drain, so a stale connection can never slip back in
// after the drain.
func (b *Backend) releasePrebound(c Conn, gen uint64) {
	if r, ok := c.(ConnResetter); ok {
		select {
		case <-b.closed:
		default:
			if r.Reset() == nil {
				b.preMu.Lock()
				if gen == b.preGen.Load() {
					select {
					case b.prebound <- c:
						b.preMu.Unlock()
						return
					default:
					}
				}
				b.preMu.Unlock()
			}
		}
	}
	_ = c.Close()
}

func (b *Backend) runAuto(t *writeTask) {
	res, err := b.execAuto(t)
	if err != nil {
		b.failures.Add(1)
		b.notifyFailure(err)
	}
	b.pending.Add(-1)
	t.done <- WriteOutcome{Backend: b, Res: res, Err: err}
}

func (b *Backend) execAuto(t *writeTask) (*Result, error) {
	if t.conn != nil {
		// Releasing the pre-bound connection is unconditional: the reset (or
		// close) drops the task's lock ticket (granted or not) whether the
		// write executed, failed, or was skipped because the backend shut
		// down.
		defer func() { b.releasePrebound(t.conn, t.gen) }()
	}
	if b.State() == StateDisabled {
		return nil, ErrDisabled
	}
	if err := b.faultCheck(OpWrite, t.st, 0); err != nil {
		return nil, err
	}
	b.ops.Add(1)
	c := t.conn
	if c == nil {
		pc, err := b.checkout()
		if err != nil {
			return nil, err
		}
		defer b.checkin(pc)
		c = pc
	}
	if b.cost != nil && b.cost.TimeScale != 0 {
		b.chargeMu.Lock()
		b.charge(t.st)
		b.chargeMu.Unlock()
	}
	return c.Exec(t.st, t.sql)
}

// AbortTx force-releases a transaction's connection (used when a client
// session dies without demarcating). It waits for the rollback to finish.
func (b *Backend) AbortTx(txID uint64) {
	out := b.EnqueueWrite(txID, sqlparser.ClassRollback, nil, "ROLLBACK")
	<-out
}

// TableNames gathers the backend's schema, preferring driver metadata and
// falling back to SHOW TABLES over a connection (§2.4.3: schema information
// is dynamically gathered when a backend is enabled).
func (b *Backend) TableNames() ([]string, error) {
	if sp, ok := b.driver.(SchemaProvider); ok {
		return sp.TableNames()
	}
	c, err := b.checkout()
	if err != nil {
		return nil, err
	}
	defer b.checkin(c)
	res, err := c.Exec(nil, "SHOW TABLES")
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[0].AsString())
	}
	return out, nil
}

// Exec executes any statement in auto-commit mode through the ordered
// write pipeline (for writes) or directly (for reads); a convenience used
// by recovery replay and examples.
func (b *Backend) Exec(st sqlparser.Statement, sql string) (*Result, error) {
	if st == nil {
		var err error
		st, err = sqlparser.Parse(sql)
		if err != nil {
			return nil, err
		}
	}
	if sqlparser.Classify(st) == sqlparser.ClassRead {
		return b.Read(0, st, sql)
	}
	out := <-b.EnqueueWrite(0, sqlparser.ClassWrite, st, sql)
	return out.Res, out.Err
}

// DirectExec bypasses the enabled-state check, executing directly on a
// fresh connection. Checkpointing and recovery use it while the backend is
// disabled for clients. It still consults the fault plan: a crashed backend
// cannot be restored until the fault heals, which is what the
// re-integration supervisor's retry loop rides on.
func (b *Backend) DirectExec(st sqlparser.Statement, sql string) (*Result, error) {
	if err := b.faultCheck(OpDirect, st, 0); err != nil {
		return nil, err
	}
	c, err := b.driver.Open()
	if err != nil {
		return nil, err
	}
	defer func() { _ = c.Close() }()
	return c.Exec(st, sql)
}
