package backend

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cjdbc/internal/sqlengine"
	"cjdbc/internal/sqlparser"
)

func newTestBackend(t *testing.T) (*Backend, *sqlengine.Engine) {
	t.Helper()
	e := sqlengine.New("db1")
	s := e.NewSession()
	if _, err := s.ExecSQL("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	b := New(Config{Name: "db1", Driver: &EngineDriver{Engine: e}})
	b.Enable()
	t.Cleanup(b.Close)
	return b, e
}

func TestStateMachine(t *testing.T) {
	b, _ := newTestBackend(t)
	if !b.Enabled() {
		t.Fatal("should be enabled")
	}
	b.Disable()
	if b.State() != StateDisabled {
		t.Fatal("should be disabled")
	}
	if _, err := b.Read(0, nil, "SELECT * FROM t"); !errors.Is(err, ErrDisabled) {
		t.Fatalf("read on disabled: %v", err)
	}
	out := <-b.EnqueueWrite(0, sqlparser.ClassWrite, nil, "INSERT INTO t (id, v) VALUES (1, 'x')")
	if !errors.Is(out.Err, ErrDisabled) {
		t.Fatalf("write on disabled: %v", out.Err)
	}
	b.SetRecovering()
	if b.State() != StateRecovering || b.State().String() != "recovering" {
		t.Fatal("recovering state")
	}
	b.Enable()
	if _, err := b.Read(0, nil, "SELECT * FROM t"); err != nil {
		t.Fatalf("read after re-enable: %v", err)
	}
}

func TestAutoCommitReadWrite(t *testing.T) {
	b, _ := newTestBackend(t)
	out := <-b.EnqueueWrite(0, sqlparser.ClassWrite, nil, "INSERT INTO t (id, v) VALUES (1, 'a')")
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Res.RowsAffected != 1 {
		t.Fatalf("affected = %d", out.Res.RowsAffected)
	}
	res, err := b.Read(0, nil, "SELECT v FROM t WHERE id = 1")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].AsString() != "a" {
		t.Fatalf("read: %v %v", res, err)
	}
}

func TestTransactionalWritesAndLazyBegin(t *testing.T) {
	b, e := newTestBackend(t)
	const tx = uint64(42)
	if b.HasTx(tx) {
		t.Fatal("transaction should not exist before first statement (lazy begin)")
	}
	before := e.StatsSnapshot().Transactions

	out := <-b.EnqueueWrite(tx, sqlparser.ClassWrite, nil, "INSERT INTO t (id, v) VALUES (1, 'a')")
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if !b.HasTx(tx) {
		t.Fatal("transaction should have lazily begun")
	}
	if got := e.StatsSnapshot().Transactions; got != before+1 {
		t.Fatalf("engine transactions = %d, want %d", got, before+1)
	}

	// Uncommitted data invisible to an auto-commit read... the engine uses
	// table locks, so the read would block; read through the tx instead.
	res, err := b.Read(tx, nil, "SELECT COUNT(*) FROM t")
	if err != nil || res.Rows[0][0].I != 1 {
		t.Fatalf("tx read: %v %v", res, err)
	}

	out = <-b.EnqueueWrite(tx, sqlparser.ClassCommit, mustStmt(t, "COMMIT"), "COMMIT")
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if b.HasTx(tx) {
		t.Fatal("transaction should be gone after commit")
	}
	res, err = b.Read(0, nil, "SELECT COUNT(*) FROM t")
	if err != nil || res.Rows[0][0].I != 1 {
		t.Fatalf("after commit: %v %v", res, err)
	}
}

func TestRollbackTx(t *testing.T) {
	b, _ := newTestBackend(t)
	const tx = uint64(7)
	<-b.EnqueueWrite(tx, sqlparser.ClassWrite, nil, "INSERT INTO t (id, v) VALUES (9, 'x')")
	out := <-b.EnqueueWrite(tx, sqlparser.ClassRollback, mustStmt(t, "ROLLBACK"), "ROLLBACK")
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	res, err := b.Read(0, nil, "SELECT COUNT(*) FROM t")
	if err != nil || res.Rows[0][0].I != 0 {
		t.Fatalf("after rollback: %v %v", res, err)
	}
}

func TestCommitWithoutLazyBeginIsNoop(t *testing.T) {
	b, e := newTestBackend(t)
	before := e.StatsSnapshot().Transactions
	out := <-b.EnqueueWrite(99, sqlparser.ClassCommit, mustStmt(t, "COMMIT"), "COMMIT")
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if got := e.StatsSnapshot().Transactions; got != before {
		t.Fatal("commit of untouched transaction must not start one")
	}
}

func TestWriteOrderPreserved(t *testing.T) {
	b, _ := newTestBackend(t)
	// Enqueue interleaved inserts and updates; FIFO order means the final
	// value is deterministic.
	<-b.EnqueueWrite(0, sqlparser.ClassWrite, nil, "INSERT INTO t (id, v) VALUES (1, 'v0')")
	var last <-chan WriteOutcome
	for i := 1; i <= 50; i++ {
		last = b.EnqueueWrite(0, sqlparser.ClassWrite, nil,
			fmt.Sprintf("UPDATE t SET v = 'v%d' WHERE id = 1", i))
	}
	if out := <-last; out.Err != nil {
		t.Fatal(out.Err)
	}
	res, err := b.Read(0, nil, "SELECT v FROM t WHERE id = 1")
	if err != nil || res.Rows[0][0].AsString() != "v50" {
		t.Fatalf("final value: %v %v", res, err)
	}
}

func TestReadYourWritesInTransaction(t *testing.T) {
	b, _ := newTestBackend(t)
	const tx = uint64(5)
	// Enqueue a write and immediately read without waiting for the write's
	// outcome: the read must observe it.
	b.EnqueueWrite(tx, sqlparser.ClassWrite, nil, "INSERT INTO t (id, v) VALUES (3, 'w')")
	res, err := b.Read(tx, nil, "SELECT v FROM t WHERE id = 3")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].AsString() != "w" {
		t.Fatalf("read-your-writes: %v %v", res, err)
	}
	<-b.EnqueueWrite(tx, sqlparser.ClassRollback, mustStmt(t, "ROLLBACK"), "ROLLBACK")
}

func TestWriteFailureCallback(t *testing.T) {
	b, _ := newTestBackend(t)
	called := make(chan error, 1)
	b.OnWriteFailure(func(fb *Backend, err error) {
		if fb != b {
			t.Error("wrong backend in callback")
		}
		called <- err
	})
	out := <-b.EnqueueWrite(0, sqlparser.ClassWrite, nil, "INSERT INTO missing (id) VALUES (1)")
	if out.Err == nil {
		t.Fatal("write to missing table should fail")
	}
	select {
	case <-called:
	case <-time.After(time.Second):
		t.Fatal("failure callback not invoked")
	}
	if b.Failures() == 0 {
		t.Error("failure counter not bumped")
	}
}

func TestInjectFailure(t *testing.T) {
	b, _ := newTestBackend(t)
	boom := errors.New("disk on fire")
	b.InjectFailure(boom)
	if _, err := b.Read(0, nil, "SELECT * FROM t"); !errors.Is(err, boom) {
		t.Fatalf("injected read: %v", err)
	}
	out := <-b.EnqueueWrite(0, sqlparser.ClassWrite, nil, "INSERT INTO t (id, v) VALUES (1, 'x')")
	if !errors.Is(out.Err, boom) {
		t.Fatalf("injected write: %v", out.Err)
	}
	b.InjectFailure(nil)
	if _, err := b.Read(0, nil, "SELECT * FROM t"); err != nil {
		t.Fatalf("healed read: %v", err)
	}
}

func TestPendingGauge(t *testing.T) {
	e := sqlengine.New("slow")
	s := e.NewSession()
	if _, err := s.ExecSQL("CREATE TABLE t (id INTEGER)"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	b := New(Config{
		Name:   "slow",
		Driver: &EngineDriver{Engine: e},
		Cost:   &CostModel{TimeScale: 5 * time.Millisecond, PointRead: 1, ScanRead: 4, Write: 1},
	})
	b.Enable()
	defer b.Close()

	if b.Pending() != 0 {
		t.Fatal("pending should start at 0")
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = b.Read(0, nil, "SELECT * FROM t")
		}()
	}
	time.Sleep(5 * time.Millisecond)
	if b.Pending() == 0 {
		t.Error("pending should be non-zero during slow reads")
	}
	wg.Wait()
	if b.Pending() != 0 {
		t.Errorf("pending after completion = %d", b.Pending())
	}
	if b.BusyNanos() == 0 {
		t.Error("busy time not accumulated")
	}
}

func TestConnectionPoolReuse(t *testing.T) {
	b, _ := newTestBackend(t)
	for i := 0; i < 100; i++ {
		if _, err := b.Read(0, nil, "SELECT COUNT(*) FROM t"); err != nil {
			t.Fatal(err)
		}
	}
	// The pool bounds connections; idle length cannot exceed MaxConns.
	if len(b.idle) > b.maxConns {
		t.Errorf("idle = %d > max %d", len(b.idle), b.maxConns)
	}
}

func TestConcurrentReadsBoundedByPool(t *testing.T) {
	e := sqlengine.New("db")
	s := e.NewSession()
	if _, err := s.ExecSQL("CREATE TABLE t (id INTEGER)"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	b := New(Config{Name: "db", Driver: &EngineDriver{Engine: e}, MaxConns: 2,
		Cost: &CostModel{TimeScale: 2 * time.Millisecond, ScanRead: 1, PointRead: 1}})
	b.Enable()
	defer b.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = b.Read(0, nil, "SELECT * FROM t")
		}()
	}
	wg.Wait()
	// 8 reads of 2ms with concurrency 2 need at least ~8ms.
	if elapsed := time.Since(start); elapsed < 6*time.Millisecond {
		t.Errorf("pool did not bound concurrency: %v", elapsed)
	}
}

func TestTableNamesViaMetadataAndShowTables(t *testing.T) {
	b, _ := newTestBackend(t)
	names, err := b.TableNames()
	if err != nil || len(names) != 1 || names[0] != "t" {
		t.Fatalf("metadata names: %v %v", names, err)
	}
	// Force the SHOW TABLES path with a driver that hides metadata.
	e := sqlengine.New("db2")
	s := e.NewSession()
	if _, err := s.ExecSQL("CREATE TABLE u (id INTEGER)"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	b2 := New(Config{Name: "db2", Driver: opaqueDriver{&EngineDriver{Engine: e}}})
	b2.Enable()
	defer b2.Close()
	names, err = b2.TableNames()
	if err != nil || len(names) != 1 || names[0] != "u" {
		t.Fatalf("show tables names: %v %v", names, err)
	}
}

// opaqueDriver hides the SchemaProvider interface.
type opaqueDriver struct{ d Driver }

func (o opaqueDriver) Open() (Conn, error) { return o.d.Open() }

func TestCostModelClassification(t *testing.T) {
	m := DefaultCostModel(time.Microsecond)
	cases := []struct {
		sql  string
		want float64
	}{
		{"SELECT v FROM t WHERE id = 1", m.PointRead},
		{"SELECT * FROM t", m.ScanRead},
		{"SELECT a FROM t JOIN u ON t.id = u.id WHERE t.id = 1", m.ScanRead},
		{"SELECT COUNT(*) FROM t", m.HeavyRead},
		{"SELECT a, SUM(b) FROM t GROUP BY a", m.HeavyRead},
		{"INSERT INTO t (id) VALUES (1)", m.Write},
		{"UPDATE t SET v = 1", m.Write},
		{"DELETE FROM t", m.Write},
		{"CREATE TEMPORARY TABLE x AS SELECT * FROM t", m.TempTable},
		{"CREATE TABLE y (a INTEGER)", m.DDL},
		{"DROP TABLE y", m.DDL},
		{"BEGIN", m.TxOverhead},
		{"COMMIT", m.TxOverhead},
	}
	for _, c := range cases {
		st := mustStmt(t, c.sql)
		if got := m.Classify(st); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.sql, got, c.want)
		}
	}
	var nilModel *CostModel
	if nilModel.Classify(mustStmt(t, "SELECT 1")) != 0 {
		t.Error("nil model must cost 0")
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	b, _ := newTestBackend(t)
	b.Close()
	out := <-b.EnqueueWrite(0, sqlparser.ClassWrite, nil, "INSERT INTO t (id, v) VALUES (1, 'x')")
	if !errors.Is(out.Err, ErrDisabled) && !errors.Is(out.Err, ErrClosed) {
		t.Fatalf("write after close: %v", out.Err)
	}
	b.Close() // idempotent
}

func TestAbortTx(t *testing.T) {
	b, _ := newTestBackend(t)
	const tx = uint64(11)
	<-b.EnqueueWrite(tx, sqlparser.ClassWrite, nil, "INSERT INTO t (id, v) VALUES (4, 'x')")
	b.AbortTx(tx)
	if b.HasTx(tx) {
		t.Fatal("tx should be gone")
	}
	res, err := b.Read(0, nil, "SELECT COUNT(*) FROM t")
	if err != nil || res.Rows[0][0].I != 0 {
		t.Fatalf("abort did not roll back: %v %v", res, err)
	}
}

func TestDirectExecBypassesDisabled(t *testing.T) {
	b, _ := newTestBackend(t)
	b.Disable()
	if _, err := b.DirectExec(nil, "INSERT INTO t (id, v) VALUES (8, 'r')"); err != nil {
		t.Fatalf("direct exec: %v", err)
	}
	b.Enable()
	res, err := b.Read(0, nil, "SELECT COUNT(*) FROM t")
	if err != nil || res.Rows[0][0].I != 1 {
		t.Fatalf("direct exec row missing: %v %v", res, err)
	}
}

func mustStmt(t *testing.T, sql string) sqlparser.Statement {
	t.Helper()
	st, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestParkedWriteEscapesStuckTransaction: a transaction that never ends
// holds a table lock; an auto-commit write to that table parks on its
// ungranted ticket, then the escape timer hands it to a worker where the
// engine's own lock timeout fails it — the backend must not wedge, and the
// failure must be the semantic lock-timeout, not a hang.
func TestParkedWriteEscapesStuckTransaction(t *testing.T) {
	b, _ := newTestBackend(t) // engine default lock timeout: 2s
	const tx = uint64(77)
	out := <-b.EnqueueWrite(tx, sqlparser.ClassWrite, nil, "INSERT INTO t (id, v) VALUES (1, 'x')")
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	done := b.EnqueueWrite(0, sqlparser.ClassWrite, nil, "UPDATE t SET v = 'y' WHERE id = 1")
	select {
	case o := <-done:
		if o.Err == nil {
			t.Fatal("write completed while the transaction held the lock")
		}
		if !errors.Is(o.Err, sqlengine.ErrLockTimeout) {
			t.Fatalf("want ErrLockTimeout, got %v", o.Err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("parked write never escaped a stuck transaction")
	}
	b.AbortTx(tx)
}

// countingDriver wraps a driver and counts Open calls.
type countingDriver struct {
	d     Driver
	opens atomic.Int64
}

func (c *countingDriver) Open() (Conn, error) {
	c.opens.Add(1)
	return c.d.Open()
}

// TestPreboundConnectionFreeList: sequential auto-commit writes must reuse
// the dedicated pre-bound connection through the reset free-list instead of
// opening a fresh session per write.
func TestPreboundConnectionFreeList(t *testing.T) {
	e := sqlengine.New("freelist")
	s := e.NewSession()
	if _, err := s.ExecSQL("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	cd := &countingDriver{d: &EngineDriver{Engine: e}}
	b := New(Config{Name: "freelist", Driver: cd})
	b.Enable()
	defer b.Close()

	const writes = 50
	for i := 0; i < writes; i++ {
		out := <-b.EnqueueWrite(0, sqlparser.ClassWrite, nil,
			fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'x')", i))
		if out.Err != nil {
			t.Fatal(out.Err)
		}
	}
	res, err := b.Read(0, nil, "SELECT COUNT(*) FROM t")
	if err != nil || res.Rows[0][0].I != writes {
		t.Fatalf("count: %v %v", res, err)
	}
	// Sequential writes return their connection before the next enqueue, so
	// the free-list satisfies nearly every prebind. Leave generous slack for
	// scheduling overlap; without reuse this would be >= 50.
	if n := cd.opens.Load(); n > writes/2 {
		t.Fatalf("driver opened %d connections for %d sequential writes; free-list not reusing", n, writes)
	}
}

// TestPreboundResetReleasesTicket: a reused connection must not carry its
// previous task's lock ticket — a conflicting transactional write afterwards
// must still be grantable, and the reused session must hold no stale state.
func TestPreboundResetReleasesTicket(t *testing.T) {
	b, _ := newTestBackend(t)
	for i := 0; i < 3; i++ {
		out := <-b.EnqueueWrite(0, sqlparser.ClassWrite, nil,
			fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'a')", i))
		if out.Err != nil {
			t.Fatal(out.Err)
		}
	}
	// A transaction writing the same table completes only if the pooled
	// connections dropped their tickets on reuse.
	done := make(chan error, 1)
	go func() {
		if out := <-b.EnqueueWrite(7, sqlparser.ClassWrite, nil, "UPDATE t SET v = 'b' WHERE id = 1"); out.Err != nil {
			done <- out.Err
			return
		}
		out := <-b.EnqueueWrite(7, sqlparser.ClassCommit, nil, "COMMIT")
		done <- out.Err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("transactional write blocked behind a stale pooled ticket")
	}
}
