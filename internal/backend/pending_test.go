package backend

// Regression tests for the pending-request gauge feeding the LeastPending
// balancer: every enqueue path bumps it and every outcome path — including
// the disable teardown's synthetic rollbacks and the transaction lane's
// residual sweep — decrements it, so a crashed backend's gauge can neither
// wedge high (starving it of reads forever after re-enable) nor go negative
// (hogging all reads).

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cjdbc/internal/sqlparser"
)

// TestPendingGaugeResidualLaneSweep forces the invariant violation the
// txWorker sweep guards against: a task stranded behind a transaction's
// demarcation. The sweep must deliver a terminal outcome and rebalance the
// gauge instead of leaking both.
func TestPendingGaugeResidualLaneSweep(t *testing.T) {
	b, _ := newTestBackend(t)
	// A slow first write keeps the lane's worker busy while the two tasks
	// below are queued behind it.
	b.SetFaultPlan(NewFaultPlan(Slow(OpWrite, 150*time.Millisecond)))
	const tx = uint64(9)
	first := b.EnqueueWrite(tx, sqlparser.ClassWrite, nil, "INSERT INTO t (id, v) VALUES (1, 'a')")
	b.mu.Lock()
	tc := b.txs[tx]
	b.mu.Unlock()
	if tc == nil {
		t.Fatal("transaction lane not created")
	}
	// Bypass the enqueue-side ending guard to simulate the broken ordering:
	// a demarcation with a write stranded behind it.
	d1 := make(chan WriteOutcome, 1)
	d2 := make(chan WriteOutcome, 1)
	b.pending.Add(1)
	tc.queue <- &writeTask{txID: tx, class: sqlparser.ClassRollback, sql: "ROLLBACK", done: d1}
	b.pending.Add(1)
	tc.wrote.Add(1)
	tc.queue <- &writeTask{txID: tx, class: sqlparser.ClassWrite, sql: "INSERT INTO t (id, v) VALUES (2, 'b')", done: d2}

	if out := <-first; out.Err != nil {
		t.Fatalf("first write: %v", out.Err)
	}
	<-d1
	out := <-d2
	if !errors.Is(out.Err, ErrDisabled) {
		t.Fatalf("stranded task outcome = %v, want ErrDisabled", out.Err)
	}
	if got := b.Pending(); got != 0 {
		t.Fatalf("pending gauge = %d after sweep, want 0", got)
	}
	b.SetFaultPlan(nil)
	// The sweep released the stranded task's wrote accounting too.
	b.DrainWrites()
}

// TestPendingGaugeBalancedAcrossCrashCycles hammers a backend with
// transactional and auto-commit writes through repeated crash/heal/re-enable
// cycles. Every enqueue must deliver exactly one outcome, the gauge must
// never go negative, and it must return to zero once everything drains.
func TestPendingGaugeBalancedAcrossCrashCycles(t *testing.T) {
	b, _ := newTestBackend(t)

	var negative atomic.Bool
	stop := make(chan struct{})
	var samplerDone sync.WaitGroup
	samplerDone.Add(1)
	go func() {
		defer samplerDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if b.Pending() < 0 {
				negative.Store(true)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	const (
		nWriters = 4
		nOps     = 50
	)
	outcomes := make(chan (<-chan WriteOutcome), nWriters*nOps*3)
	var wg sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < nOps; i++ {
				tx := uint64(w*1000 + i + 1)
				outcomes <- b.EnqueueWrite(tx, sqlparser.ClassWrite, nil,
					fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'x')", int(tx)*10))
				outcomes <- b.EnqueueWrite(tx, sqlparser.ClassCommit, nil, "COMMIT")
				outcomes <- b.EnqueueWrite(0, sqlparser.ClassWrite, nil,
					fmt.Sprintf("UPDATE t SET v = 'y' WHERE id = %d", w))
			}
		}(w)
	}

	for cycle := 0; cycle < 5; cycle++ {
		time.Sleep(2 * time.Millisecond)
		plan := NewFaultPlan(&Rule{Kind: OpWrite, Crash: true})
		b.SetFaultPlan(plan)
		b.Disable()
		time.Sleep(time.Millisecond)
		plan.Heal()
		b.SetFaultPlan(nil)
		b.Enable()
	}

	wg.Wait()
	close(outcomes)
	for ch := range outcomes {
		<-ch // exactly one terminal outcome per enqueue — zero lost acks
	}
	// Final teardown rolls back whatever transactions are still open.
	b.Disable()
	b.DrainWrites()

	deadline := time.Now().Add(5 * time.Second)
	for b.Pending() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	samplerDone.Wait()
	if got := b.Pending(); got != 0 {
		t.Fatalf("pending gauge = %d after full drain, want 0", got)
	}
	if negative.Load() {
		t.Fatal("pending gauge went negative")
	}
}
