// Package backend abstracts one database backend of a virtual database: a
// native driver, a connection manager (pool), an enable/disable state
// machine, a conflict-ordered write worker pool that preserves the
// cluster-wide order of conflicting writes — via enqueue-time lock tickets
// on pre-bound connections — while letting disjoint-table writes flow
// concurrently, and a service-cost model standing in for the paper's
// physical database machines.
package backend

import (
	"time"

	"cjdbc/internal/sqlengine"
	"cjdbc/internal/sqlparser"
	"cjdbc/internal/sqlval"
)

// Result is a fully materialized statement result, the analogue of the
// serialized JDBC ResultSet the C-JDBC driver ships to clients.
type Result struct {
	Columns      []string
	Rows         [][]sqlval.Value
	RowsAffected int64
	LastInsertID int64
}

// Conn is one connection to a database, the native-driver connection of the
// paper. Connections are not safe for concurrent use.
type Conn interface {
	// Exec runs one statement. st may be nil, in which case the
	// implementation parses sql itself.
	Exec(st sqlparser.Statement, sql string) (*Result, error)
	// Begin/Commit/Rollback demarcate a transaction on this connection.
	Begin() error
	Commit() error
	Rollback() error
	Close() error
}

// Driver opens connections to one database, as a native JDBC driver would.
type Driver interface {
	Open() (Conn, error)
}

// LockReserver is implemented by connections that support queueing a write
// lock request in cluster submission order ahead of executing the
// statement. The in-process engine supports it; remote drivers rely on
// their database's own lock queueing.
type LockReserver interface {
	ReserveWriteLock(table string)
}

// TicketReserver is implemented by connections whose enqueue-time lock
// tickets can report their grant asynchronously. The backend's auto-commit
// worker pool uses it to pre-bind a connection per write at enqueue time and
// park the task until the engine grants its ticket, so a write queued behind
// a transaction's lock never occupies a pool worker while it waits.
type TicketReserver interface {
	// ReserveWriteLockNotify queues an exclusive lock ticket for table and
	// invokes granted exactly once when the ticket is granted (possibly
	// synchronously) or dropped unconsumed.
	ReserveWriteLockNotify(table string, granted func())
}

// ConnResetter is implemented by connections that can be returned to a
// clean baseline state — open transaction rolled back, locks and lock
// tickets released, session-local state dropped — without closing. The
// backend's auto-commit write path uses it to keep a free-list of dedicated
// pre-bound connections instead of opening and closing one per write.
type ConnResetter interface {
	// Reset restores the connection to its just-opened state. A non-nil
	// error means the connection is unusable and must be closed instead.
	Reset() error
}

// ConnKiller is implemented by connections that can be marked dead from
// another goroutine: an in-flight statement aborts (including one parked in
// a lock wait) and subsequent statements fail, while rollback and close
// still work so the owner goroutine can tear the connection down. The
// backend's crash-consistent disable kills each in-flight transaction's
// connection, then drives a rollback through the transaction's own worker.
type ConnKiller interface {
	Kill()
}

// SchemaProvider is implemented by drivers that can describe their tables,
// the DatabaseMetaData facility of the paper used for dynamic schema
// gathering and checkpoint dumps.
type SchemaProvider interface {
	TableNames() ([]string, error)
	TableSchema(name string) (*sqlengine.Schema, error)
	SnapshotTable(name string) (*sqlengine.Schema, [][]sqlval.Value, error)
}

// EngineDriver is the native driver for the in-process sqlengine backend.
type EngineDriver struct {
	Engine *sqlengine.Engine
}

var _ Driver = (*EngineDriver)(nil)
var _ SchemaProvider = (*EngineDriver)(nil)

// Open creates a new engine session.
func (d *EngineDriver) Open() (Conn, error) {
	return &engineConn{s: d.Engine.NewSession()}, nil
}

// TableNames lists the engine's tables.
func (d *EngineDriver) TableNames() ([]string, error) { return d.Engine.TableNames(), nil }

// TableSchema returns a table's schema.
func (d *EngineDriver) TableSchema(name string) (*sqlengine.Schema, error) {
	return d.Engine.TableSchema(name)
}

// SnapshotTable returns a table's schema and rows for dumps.
func (d *EngineDriver) SnapshotTable(name string) (*sqlengine.Schema, [][]sqlval.Value, error) {
	return d.Engine.SnapshotTable(name)
}

type engineConn struct {
	s *sqlengine.Session
}

func (c *engineConn) Exec(st sqlparser.Statement, sql string) (*Result, error) {
	var res *sqlengine.Result
	var err error
	if st != nil {
		res, err = c.s.Exec(st)
	} else {
		res, err = c.s.ExecSQL(sql)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Columns:      res.Columns,
		Rows:         res.Rows,
		RowsAffected: res.RowsAffected,
		LastInsertID: res.LastInsertID,
	}, nil
}

// ReserveWriteLock queues a write lock ticket in submission order.
func (c *engineConn) ReserveWriteLock(table string) { c.s.ReserveWriteLock(table) }

// ReserveWriteLockNotify queues a write lock ticket and reports its grant.
func (c *engineConn) ReserveWriteLockNotify(table string, granted func()) {
	c.s.ReserveWriteLockNotify(table, granted)
}

// Reset returns the session to its just-opened state for free-list reuse.
func (c *engineConn) Reset() error { c.s.Reset(); return nil }

// Kill marks the session dead; see sqlengine.Session.Kill.
func (c *engineConn) Kill() { c.s.Kill() }

func (c *engineConn) Begin() error    { return c.s.Begin() }
func (c *engineConn) Commit() error   { return c.s.Commit() }
func (c *engineConn) Rollback() error { return c.s.Rollback() }
func (c *engineConn) Close() error    { c.s.Close(); return nil }

// CostModel charges simulated service time per statement class, standing in
// for the disk and CPU costs of the paper's PII-450 database machines. With
// real in-memory execution the controller would otherwise be the bottleneck,
// inverting the paper's premise that the database tier saturates first.
//
// Costs are expressed in abstract time units; TimeScale converts one unit to
// wall-clock time. A TimeScale of 0 disables charging entirely (unit tests).
type CostModel struct {
	TimeScale time.Duration // wall time per cost unit; 0 disables

	PointRead  float64 // indexed single-table read
	ScanRead   float64 // non-indexed or multi-table read
	HeavyRead  float64 // aggregation / GROUP BY read
	Write      float64 // INSERT/UPDATE/DELETE
	TempTable  float64 // CREATE TEMPORARY TABLE ... AS SELECT (best seller)
	DDL        float64 // other DDL
	TxOverhead float64 // begin/commit/rollback
}

// DefaultCostModel mirrors the relative costs of the TPC-W queries on the
// paper's testbed. The calibration follows the paper's own measurements:
// the ordering mix (50 % read-write interactions) still speeds up 5.3x over
// six replicas despite write-all replication, so single-row writes must be
// far cheaper than the search/display queries that dominate database time;
// the best-seller temporary table is the most expensive broadcast operation
// (it embeds an aggregation) and is what bends the browsing mix's full-
// replication curve sub-linear in Figure 10.
func DefaultCostModel(scale time.Duration) *CostModel {
	return &CostModel{
		TimeScale:  scale,
		PointRead:  1,
		ScanRead:   6,
		HeavyRead:  12,
		Write:      0.25,
		TempTable:  3,
		DDL:        0.4,
		TxOverhead: 0.2,
	}
}

// Classify returns the cost units of one statement.
func (m *CostModel) Classify(st sqlparser.Statement) float64 {
	if m == nil {
		return 0
	}
	switch s := st.(type) {
	case *sqlparser.Select:
		if len(s.GroupBy) > 0 || hasAggregateItems(s) {
			return m.HeavyRead
		}
		if len(s.From) > 1 || s.Where == nil {
			return m.ScanRead
		}
		return m.PointRead
	case *sqlparser.Insert, *sqlparser.Update, *sqlparser.Delete:
		return m.Write
	case *sqlparser.CreateTable:
		if s.Temporary || s.AsSelect != nil {
			return m.TempTable
		}
		return m.DDL
	case *sqlparser.DropTable, *sqlparser.CreateIndex, *sqlparser.DropIndex:
		return m.DDL
	case *sqlparser.Begin, *sqlparser.Commit, *sqlparser.Rollback:
		return m.TxOverhead
	}
	return m.ScanRead
}

func hasAggregateItems(s *sqlparser.Select) bool {
	for _, it := range s.Items {
		if it.Expr != nil && it.Expr.HasAggregate() {
			return true
		}
	}
	return false
}

// charge sleeps for the statement's simulated service time and returns the
// virtual busy duration added.
func (m *CostModel) charge(st sqlparser.Statement) time.Duration {
	if m == nil || m.TimeScale == 0 {
		return 0
	}
	d := time.Duration(m.Classify(st) * float64(m.TimeScale))
	if d > 0 {
		time.Sleep(d)
	}
	return d
}
