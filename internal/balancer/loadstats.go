package balancer

import (
	"sort"
	"strings"
	"sync"
)

// LoadStats aggregates per-table, per-backend read and write counts — the
// observation input of the dynamic-placement policy. The controller bumps it
// on every routed read (the chosen backend) and every dispatched write (each
// target backend); the placement policy snapshots and resets it once per
// observe window to compute per-window table heat.
type LoadStats struct {
	mu     sync.Mutex
	reads  map[string]map[string]uint64 // table -> backend -> count
	writes map[string]map[string]uint64
}

// NewLoadStats builds an empty counter set.
func NewLoadStats() *LoadStats {
	return &LoadStats{
		reads:  make(map[string]map[string]uint64),
		writes: make(map[string]map[string]uint64),
	}
}

func bump(m map[string]map[string]uint64, table, host string, n uint64) {
	t := strings.ToLower(table)
	set := m[t]
	if set == nil {
		set = make(map[string]uint64, 4)
		m[t] = set
	}
	set[host] += n
}

// NoteRead records one read of the given tables served by a backend.
func (s *LoadStats) NoteRead(tables []string, host string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for _, t := range tables {
		bump(s.reads, t, host, 1)
	}
	s.mu.Unlock()
}

// NoteWrite records one write of the given tables applied on a backend.
func (s *LoadStats) NoteWrite(tables []string, host string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for _, t := range tables {
		bump(s.writes, t, host, 1)
	}
	s.mu.Unlock()
}

// TableLoad is one table's traffic during a window.
type TableLoad struct {
	Table  string
	Reads  uint64            // total reads across backends
	Writes uint64            // total writes across backends
	ByHost map[string]uint64 // per-backend read counts
}

// Snapshot returns the per-table loads sorted by descending read count and,
// if reset is true, zeroes the counters for the next window.
func (s *LoadStats) Snapshot(reset bool) []TableLoad {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tables := make(map[string]bool, len(s.reads)+len(s.writes))
	for t := range s.reads {
		tables[t] = true
	}
	for t := range s.writes {
		tables[t] = true
	}
	out := make([]TableLoad, 0, len(tables))
	for t := range tables {
		tl := TableLoad{Table: t, ByHost: make(map[string]uint64, len(s.reads[t]))}
		for h, n := range s.reads[t] {
			tl.Reads += n
			tl.ByHost[h] = n
		}
		for _, n := range s.writes[t] {
			tl.Writes += n
		}
		out = append(out, tl)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Reads != out[j].Reads {
			return out[i].Reads > out[j].Reads
		}
		return out[i].Table < out[j].Table
	})
	if reset {
		s.reads = make(map[string]map[string]uint64)
		s.writes = make(map[string]map[string]uint64)
	}
	return out
}
