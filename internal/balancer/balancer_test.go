package balancer

import (
	"errors"
	"fmt"
	"testing"

	"cjdbc/internal/backend"
	"cjdbc/internal/sqlengine"
)

func mkBackends(t *testing.T, n int, weights ...int) []*backend.Backend {
	t.Helper()
	out := make([]*backend.Backend, n)
	for i := range out {
		w := 1
		if i < len(weights) {
			w = weights[i]
		}
		e := sqlengine.New(fmt.Sprintf("db%d", i))
		b := backend.New(backend.Config{
			Name:   fmt.Sprintf("db%d", i),
			Driver: &backend.EngineDriver{Engine: e},
			Weight: w,
		})
		b.Enable()
		t.Cleanup(b.Close)
		out[i] = b
	}
	return out
}

func TestRoundRobinCycles(t *testing.T) {
	bs := mkBackends(t, 3)
	rr := &RoundRobin{}
	counts := map[string]int{}
	for i := 0; i < 9; i++ {
		b, err := rr.Choose(bs)
		if err != nil {
			t.Fatal(err)
		}
		counts[b.Name()]++
	}
	for _, b := range bs {
		if counts[b.Name()] != 3 {
			t.Errorf("backend %s chosen %d times, want 3", b.Name(), counts[b.Name()])
		}
	}
}

func TestRoundRobinEmpty(t *testing.T) {
	rr := &RoundRobin{}
	if _, err := rr.Choose(nil); !errors.Is(err, ErrNoBackend) {
		t.Fatalf("empty: %v", err)
	}
}

func TestWeightedRoundRobinProportional(t *testing.T) {
	bs := mkBackends(t, 2, 3, 1)
	w := &WeightedRoundRobin{}
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		b, err := w.Choose(bs)
		if err != nil {
			t.Fatal(err)
		}
		counts[b.Name()]++
	}
	if counts["db0"] != 30 || counts["db1"] != 10 {
		t.Errorf("weighted distribution: %v", counts)
	}
}

func TestLeastPendingPrefersIdle(t *testing.T) {
	bs := mkBackends(t, 3)
	lp := &LeastPending{}
	// All idle: ties broken round-robin, every backend eventually used.
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		b, _ := lp.Choose(bs)
		seen[b.Name()] = true
	}
	if len(seen) != 3 {
		t.Errorf("ties not spread: %v", seen)
	}
}

func TestBalancerFactory(t *testing.T) {
	for _, name := range []string{"", "rr", "round-robin", "wrr", "lprf", "least-pending-requests-first"} {
		if _, err := New(name); err != nil {
			t.Errorf("New(%q): %v", name, err)
		}
	}
	if _, err := New("quantum"); err == nil {
		t.Error("unknown balancer accepted")
	}
}

func TestFullReplicationRouting(t *testing.T) {
	bs := mkBackends(t, 3)
	var f FullReplication
	if f.RequiresParsing() {
		t.Error("full replication must not require parsing")
	}
	if got := f.ReadCandidates([]string{"any"}, bs); len(got) != 3 {
		t.Errorf("read candidates = %d", len(got))
	}
	if got := f.WriteTargets([]string{"any"}, bs); len(got) != 3 {
		t.Errorf("write targets = %d", len(got))
	}
	bs[1].Disable()
	if got := f.ReadCandidates(nil, bs); len(got) != 2 {
		t.Errorf("disabled backend still candidate: %d", len(got))
	}
}

func TestPartialReplicationReads(t *testing.T) {
	bs := mkBackends(t, 3)
	p := NewPartialReplication(map[string][]string{
		"item":       {"db0", "db1", "db2"},
		"order_line": {"db0", "db1"},
		"customer":   {"db2"},
	})
	if !p.RequiresParsing() {
		t.Error("partial replication must require parsing")
	}
	// Query touching item+order_line can run on db0/db1 only.
	got := p.ReadCandidates([]string{"item", "order_line"}, bs)
	if len(got) != 2 || got[0].Name() != "db0" || got[1].Name() != "db1" {
		t.Errorf("candidates: %v", names(got))
	}
	// Query touching customer only on db2.
	got = p.ReadCandidates([]string{"customer"}, bs)
	if len(got) != 1 || got[0].Name() != "db2" {
		t.Errorf("candidates: %v", names(got))
	}
	// Join spanning disjoint partitions: impossible.
	got = p.ReadCandidates([]string{"order_line", "customer"}, bs)
	if len(got) != 0 {
		t.Errorf("impossible join candidates: %v", names(got))
	}
	// Unknown table: no candidates.
	got = p.ReadCandidates([]string{"nope"}, bs)
	if len(got) != 0 {
		t.Errorf("unknown table candidates: %v", names(got))
	}
	// Disabled hosts are skipped.
	bs[0].Disable()
	got = p.ReadCandidates([]string{"item", "order_line"}, bs)
	if len(got) != 1 || got[0].Name() != "db1" {
		t.Errorf("after disable: %v", names(got))
	}
}

func TestPartialReplicationWrites(t *testing.T) {
	bs := mkBackends(t, 3)
	p := NewPartialReplication(map[string][]string{
		"order_line": {"db0", "db1"},
		"item":       {"db0", "db1", "db2"},
	})
	got := p.WriteTargets([]string{"order_line"}, bs)
	if len(got) != 2 {
		t.Errorf("write targets: %v", names(got))
	}
	// Writes to an unknown table (fresh CREATE TABLE) go everywhere.
	got = p.WriteTargets([]string{"brand_new"}, bs)
	if len(got) != 3 {
		t.Errorf("fresh create targets: %v", names(got))
	}
	// CREATE TEMP TABLE AS SELECT over order_line: restricted to its hosts
	// (the Figure 10 best-seller optimization).
	got = p.WriteTargets([]string{"besttmp", "order_line"}, bs)
	if len(got) != 2 {
		t.Errorf("temp table targets: %v", names(got))
	}
}

func TestPartialReplicationDynamicSchema(t *testing.T) {
	bs := mkBackends(t, 2)
	p := NewPartialReplication(map[string][]string{"a": {"db0"}})
	p.NoteCreate("b", []string{"db1"})
	if got := p.Hosts("b"); len(got) != 1 || got[0] != "db1" {
		t.Errorf("hosts after create: %v", got)
	}
	if got := p.ReadCandidates([]string{"b"}, bs); len(got) != 1 || got[0].Name() != "db1" {
		t.Errorf("read after create: %v", names(got))
	}
	p.NoteDrop("b")
	if got := p.ReadCandidates([]string{"b"}, bs); len(got) != 0 {
		t.Errorf("read after drop: %v", names(got))
	}
	if ts := p.Tables(); len(ts) != 1 || ts[0] != "a" {
		t.Errorf("tables = %v", ts)
	}
}

func names(bs []*backend.Backend) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name()
	}
	return out
}
