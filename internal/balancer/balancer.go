// Package balancer implements C-JDBC's read load-balancing algorithms
// (round robin, weighted round robin, least pending requests first) and the
// replication policies (full and per-table partial replication) that decide
// which backends can serve a read and which must apply a write (§2.4.3).
package balancer

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cjdbc/internal/backend"
)

// ErrNoBackend is returned when no enabled backend can serve the request.
var ErrNoBackend = errors.New("balancer: no enabled backend can execute this request")

// NoHostError reports that routing found no enabled backend hosting every
// table a statement references — the RAIDb-2 failure mode where placement,
// not load or health, makes a request unservable (a join across tables
// placed on disjoint backends, or every host of a table being down). It
// matches ErrNoBackend under errors.Is so existing fallbacks keep working,
// and errors.As extracts the offending footprint.
type NoHostError struct {
	Tables []string
}

// Error names the unhostable footprint.
func (e *NoHostError) Error() string {
	return "balancer: no enabled backend hosts all of [" + strings.Join(e.Tables, ", ") + "]"
}

// Unwrap makes errors.Is(err, ErrNoBackend) hold.
func (e *NoHostError) Unwrap() error { return ErrNoBackend }

// LastHostError rejects a placement change that would leave a table with no
// host at all. A table below one copy is unservable for both reads and
// writes, so RemoveHost refuses the move instead of letting routing degrade
// to NoHostError later.
type LastHostError struct {
	Table string
	Host  string
}

// Error names the protected copy.
func (e *LastHostError) Error() string {
	return fmt.Sprintf("balancer: cannot remove %s from %s: it is the table's last host", e.Host, e.Table)
}

// Balancer picks one backend among the candidates able to serve a read.
type Balancer interface {
	Name() string
	Choose(candidates []*backend.Backend) (*backend.Backend, error)
}

// RoundRobin cycles through candidates.
type RoundRobin struct {
	ctr atomic.Uint64
}

// Name returns "round-robin".
func (*RoundRobin) Name() string { return "round-robin" }

// Choose picks the next backend in rotation.
func (rr *RoundRobin) Choose(cands []*backend.Backend) (*backend.Backend, error) {
	if len(cands) == 0 {
		return nil, ErrNoBackend
	}
	n := rr.ctr.Add(1) - 1
	return cands[n%uint64(len(cands))], nil
}

// WeightedRoundRobin cycles through candidates proportionally to their
// weights.
type WeightedRoundRobin struct {
	ctr atomic.Uint64
}

// Name returns "weighted-round-robin".
func (*WeightedRoundRobin) Name() string { return "weighted-round-robin" }

// Choose picks the next backend in the weight-expanded rotation.
func (w *WeightedRoundRobin) Choose(cands []*backend.Backend) (*backend.Backend, error) {
	if len(cands) == 0 {
		return nil, ErrNoBackend
	}
	total := 0
	for _, b := range cands {
		total += b.Weight()
	}
	if total == 0 {
		return nil, ErrNoBackend
	}
	x := int(w.ctr.Add(1)-1) % total
	for _, b := range cands {
		x -= b.Weight()
		if x < 0 {
			return b, nil
		}
	}
	return cands[len(cands)-1], nil
}

// LeastPending sends the request to the backend with the fewest pending
// queries, the paper's Least Pending Requests First policy and the one used
// for all TPC-W measurements.
type LeastPending struct {
	tie RoundRobin // breaks ties fairly
}

// Name returns "least-pending-requests-first".
func (*LeastPending) Name() string { return "least-pending-requests-first" }

// Choose picks the candidate with the lowest pending-request gauge.
func (lp *LeastPending) Choose(cands []*backend.Backend) (*backend.Backend, error) {
	if len(cands) == 0 {
		return nil, ErrNoBackend
	}
	best := -1
	var ties []*backend.Backend
	for _, b := range cands {
		p := b.Pending()
		switch {
		case best < 0 || p < best:
			best = p
			ties = ties[:0]
			ties = append(ties, b)
		case p == best:
			ties = append(ties, b)
		}
	}
	if len(ties) == 1 {
		return ties[0], nil
	}
	return lp.tie.Choose(ties)
}

// New constructs a balancer by policy name. Custom balancers can be used by
// implementing the Balancer interface directly (the paper allows
// user-defined strategies).
func New(name string) (Balancer, error) {
	switch strings.ToLower(name) {
	case "", "round-robin", "roundrobin", "rr":
		return &RoundRobin{}, nil
	case "weighted-round-robin", "wrr":
		return &WeightedRoundRobin{}, nil
	case "least-pending-requests-first", "least-pending", "lprf":
		return &LeastPending{}, nil
	}
	return nil, fmt.Errorf("balancer: unknown policy %q", name)
}

// Replication decides which backends host which tables.
type Replication interface {
	// Name identifies the policy.
	Name() string
	// RequiresParsing reports whether requests must be parsed to route
	// (full replication does not, §2.4.3).
	RequiresParsing() bool
	// ReadCandidates returns the enabled backends hosting all the tables
	// a read references.
	ReadCandidates(tables []string, all []*backend.Backend) []*backend.Backend
	// WriteTargets returns the enabled backends that must apply a write
	// affecting the given tables.
	WriteTargets(tables []string, all []*backend.Backend) []*backend.Backend
	// NoteCreate records a newly created table and its hosts, keeping the
	// dynamically gathered schema accurate (§2.4.3).
	NoteCreate(table string, hosts []string)
	// NoteDrop removes a dropped table from the schema.
	NoteDrop(table string)
	// Hosts lists the backends hosting a table (empty for full replication,
	// meaning "all").
	Hosts(table string) []string
}

// Placement is the optional interface a replication policy implements when
// table placement is explicit (RAIDb-2 partial replication). The controller
// type-asserts it to declare per-backend table subsets, build recovery host
// filters, and validate configurations; full replication does not implement
// it, so every placement-aware path degrades to "host everything".
type Placement interface {
	// DeclareHost pins a table to an additional host. Declared placement is
	// authoritative: dynamic schema gathering never overrides it.
	DeclareHost(table, host string)
	// Hosted reports whether a backend hosts a table. Tables absent from
	// the placement map count as hosted everywhere.
	Hosted(table, host string) bool
	// ReattachHost records that a re-integrated backend hosts the given
	// tables (the ones its restored state actually contains).
	ReattachHost(host string, tables []string)
	// RemoveHost atomically removes a backend from a table's host set. It
	// fails with a *LastHostError if the removal would leave the table
	// hostless, and with a plain error if the backend does not host the
	// table (or the table is unknown, i.e. implicitly hosted everywhere).
	RemoveHost(table, host string) error
	// Validate checks the placement against the cluster's backend names.
	Validate(backends []string) error
}

// FullReplication hosts every table on every backend.
type FullReplication struct{}

// Name returns "full".
func (FullReplication) Name() string { return "full" }

// RequiresParsing returns false: any backend can execute any query.
func (FullReplication) RequiresParsing() bool { return false }

// ReadCandidates returns all enabled backends.
func (FullReplication) ReadCandidates(_ []string, all []*backend.Backend) []*backend.Backend {
	return enabledOf(all)
}

// WriteTargets returns all enabled backends.
func (FullReplication) WriteTargets(_ []string, all []*backend.Backend) []*backend.Backend {
	return enabledOf(all)
}

// NoteCreate is a no-op under full replication.
func (FullReplication) NoteCreate(string, []string) {}

// NoteDrop is a no-op under full replication.
func (FullReplication) NoteDrop(string) {}

// Hosts returns nil, meaning every backend.
func (FullReplication) Hosts(string) []string { return nil }

// PartialReplication maps tables to the backends hosting them, configured
// per table and updated dynamically on CREATE/DROP (§2.4.3). Declared
// (pinned) tables — those in the initial map or added through DeclareHost —
// keep their operator-chosen placement: a CREATE observed while some host
// is down must not shrink the replica set, and a replayed DROP must not
// erase where the table belongs on re-create.
type PartialReplication struct {
	mu     sync.RWMutex
	hosts  map[string]map[string]bool // table -> backend name set
	pinned map[string]bool            // tables with operator-declared placement
}

// NewPartialReplication builds a policy from a table -> backend-names map.
// Every table in the map is pinned.
func NewPartialReplication(tables map[string][]string) *PartialReplication {
	p := &PartialReplication{
		hosts:  make(map[string]map[string]bool, len(tables)),
		pinned: make(map[string]bool, len(tables)),
	}
	for t, bs := range tables {
		set := make(map[string]bool, len(bs))
		for _, b := range bs {
			set[b] = true
		}
		p.hosts[strings.ToLower(t)] = set
		p.pinned[strings.ToLower(t)] = true
	}
	return p
}

// Name returns "partial".
func (*PartialReplication) Name() string { return "partial" }

// RequiresParsing returns true: routing needs the referenced tables.
func (*PartialReplication) RequiresParsing() bool { return true }

// ReadCandidates returns enabled backends hosting every referenced table.
// Unknown tables (e.g. just-created temporary tables of another session)
// exclude a backend unless it hosts them.
func (p *PartialReplication) ReadCandidates(tables []string, all []*backend.Backend) []*backend.Backend {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []*backend.Backend
	for _, b := range all {
		if !b.Enabled() {
			continue
		}
		ok := true
		for _, t := range tables {
			set, known := p.hosts[t]
			if !known {
				// Tables absent from the schema map cannot be served.
				ok = false
				break
			}
			if !set[b.Name()] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	return out
}

// WriteTargets returns enabled backends hosting at least one affected table.
// For a CREATE of a not-yet-known table the hosts of the other referenced
// tables decide (CREATE TEMPORARY TABLE ... AS SELECT under partial
// replication runs only where its sources live, which is what limits the
// TPC-W best-seller temp table to two backends in Figure 10).
func (p *PartialReplication) WriteTargets(tables []string, all []*backend.Backend) []*backend.Backend {
	p.mu.RLock()
	defer p.mu.RUnlock()
	known := false
	var out []*backend.Backend
	for _, b := range all {
		if !b.Enabled() {
			continue
		}
		hit := false
		for _, t := range tables {
			set, k := p.hosts[t]
			if !k {
				continue
			}
			known = true
			if set[b.Name()] {
				hit = true
			} else {
				// A backend missing any referenced known table cannot
				// execute the statement.
				hit = false
				break
			}
		}
		if hit {
			out = append(out, b)
		}
	}
	if !known {
		// Pure DDL creating a brand-new table: send everywhere.
		return enabledOf(all)
	}
	return out
}

// NoteCreate records a new table's hosts. Pinned tables are left alone:
// their placement is declared, not observed.
func (p *PartialReplication) NoteCreate(table string, hosts []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := strings.ToLower(table)
	if p.pinned[t] {
		return
	}
	set := make(map[string]bool, len(hosts))
	for _, h := range hosts {
		set[h] = true
	}
	p.hosts[t] = set
}

// NoteDrop removes a dynamically gathered table. A pinned table keeps its
// declared placement across DROP/CREATE cycles.
func (p *PartialReplication) NoteDrop(table string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := strings.ToLower(table)
	if p.pinned[t] {
		return
	}
	delete(p.hosts, t)
}

// DeclareHost pins a table to an additional host; the declared placement
// grows as backends declaring the table join the cluster.
func (p *PartialReplication) DeclareHost(table, host string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := strings.ToLower(table)
	set := p.hosts[t]
	if set == nil {
		set = make(map[string]bool, 1)
		p.hosts[t] = set
	}
	set[host] = true
	p.pinned[t] = true
}

// Hosted reports whether a backend hosts a table. Tables absent from the
// placement map were created before gathering or dropped since — they count
// as hosted everywhere, matching full-replication behavior.
func (p *PartialReplication) Hosted(table, host string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	set, known := p.hosts[strings.ToLower(table)]
	if !known {
		return true
	}
	return set[host]
}

// ReattachHost records that a backend hosts the given tables — called after
// re-integration with the tables the restored state actually contains, so
// reads route to the backend again even if the placement map drifted while
// it was down.
func (p *PartialReplication) ReattachHost(host string, tables []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, table := range tables {
		t := strings.ToLower(table)
		set := p.hosts[t]
		if set == nil {
			set = make(map[string]bool, 1)
			p.hosts[t] = set
		}
		set[host] = true
	}
}

// RemoveHost atomically removes a backend from a table's host set. The
// check-and-remove runs under one lock acquisition so concurrent removals
// of the same table cannot race past the last-host guard. The table stays
// pinned: its (shrunken) placement remains operator-declared.
func (p *PartialReplication) RemoveHost(table, host string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := strings.ToLower(table)
	set, known := p.hosts[t]
	if !known || !set[host] {
		return fmt.Errorf("balancer: backend %s does not host table %s", host, t)
	}
	if len(set) == 1 {
		return &LastHostError{Table: t, Host: host}
	}
	delete(set, host)
	return nil
}

// Validate checks the declared placement against the cluster's backend
// names: every declared table needs at least one host, and every host must
// name a configured backend. A table with no host could never execute a
// statement anywhere; a typo'd backend name would silently shrink a replica
// set.
func (p *PartialReplication) Validate(backends []string) error {
	known := make(map[string]bool, len(backends))
	for _, b := range backends {
		known[b] = true
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	tables := make([]string, 0, len(p.hosts))
	for t := range p.hosts {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		set := p.hosts[t]
		if len(set) == 0 {
			return fmt.Errorf("balancer: table %q is hosted by no backend", t)
		}
		for h := range set {
			if !known[h] {
				return fmt.Errorf("balancer: table %q lists unknown backend %q", t, h)
			}
		}
	}
	return nil
}

// Hosts returns the sorted backend names hosting a table.
func (p *PartialReplication) Hosts(table string) []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	set := p.hosts[strings.ToLower(table)]
	out := make([]string, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Tables returns the sorted known table names.
func (p *PartialReplication) Tables() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.hosts))
	for t := range p.hosts {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func enabledOf(all []*backend.Backend) []*backend.Backend {
	out := make([]*backend.Backend, 0, len(all))
	for _, b := range all {
		if b.Enabled() {
			out = append(out, b)
		}
	}
	return out
}
