package sqlval

import (
	"errors"
	"fmt"

	"cjdbc/internal/senterr"
)

// ErrValue is the errors.Is sentinel for value-level statement failures:
// division by zero, failed type conversions, unknown operators. These are
// properties of the statement and its (replicated) data — every replica
// fails identically — so the clustering middleware classifies them as
// semantic, never as backend faults. All sqlval errors carry it.
var ErrValue = errors.New("sqlval: value error")

// errf builds a value error carrying the ErrValue sentinel.
func errf(format string, args ...any) error {
	return senterr.Wrap(ErrValue, fmt.Errorf("sqlval: "+format, args...))
}
